#pragma once

#include <cstdint>
#include <string>

#include "snap/graph/types.hpp"
#include "snap/server/http.hpp"
#include "snap/stream/streaming_graph.hpp"
#include "snap/util/sync.hpp"

namespace snap::server {

/// The graph analytics service: a JSON-over-HTTP handler that owns one
/// StreamingGraph in eager-snapshot mode and answers every query from a
/// pinned epoch snapshot (snapshot isolation — see docs/SERVICE.md).
///
/// Concurrency model, single-writer / multi-reader:
///   - POST /ingest is serialized by `write_mu_`; the apply() publishes the
///     next epoch's CSR image on the writer thread before returning.
///   - Every read endpoint pins the published snapshot (a mutex-protected
///     shared_ptr copy), answers entirely from that immutable image, and
///     unpins on return.  Readers therefore never touch the mutating
///     DynamicGraph and never hold a lock across kernel work, so they
///     cannot block the writer.
///
/// Endpoints (all responses application/json; errors are
/// `{"error": "..."}` with a 4xx/5xx status):
///   POST /ingest                      body {"updates":[{op,u,v,time}...]}
///   GET  /stats
///   GET  /degree/{v}
///   GET  /neighbors/{v}
///   GET  /cc/{v}
///   GET  /clustering
///   GET  /community?algo=louvain|plp
///   GET  /bc-topk?k=K&samples=S[&seed=N]
///   GET  /pagerank-topk?k=K&iters=N
///   POST /shutdown
class GraphService final : public HttpHandler {
 public:
  /// Service over an initially empty graph on `num_vertices` vertices
  /// (ingest grows it when updates reference larger ids).  The community
  /// and clustering endpoints require an undirected graph; a directed
  /// service still serves the structural endpoints.
  explicit GraphService(vid_t num_vertices, bool directed = false);

  HttpResponse handle(const HttpRequest& request) override;

  /// True once POST /shutdown has been accepted.
  [[nodiscard]] bool shutdown_requested() const;

  /// Block until POST /shutdown arrives (the daemon loop of `snap-cli
  /// serve` parks here).
  void wait_for_shutdown();

  /// The underlying streaming graph — exposed for the replay bench, which
  /// compares service-side epochs against a direct-apply reference.  Do not
  /// mutate it while the server is running; use /ingest.
  [[nodiscard]] const stream::StreamingGraph& streaming() const { return sg_; }

 private:
  HttpResponse route(const HttpRequest& request);

  HttpResponse handle_ingest(const HttpRequest& request);
  HttpResponse handle_stats();
  HttpResponse handle_degree(const std::string& tail);
  HttpResponse handle_neighbors(const std::string& tail);
  HttpResponse handle_cc(const std::string& tail);
  HttpResponse handle_clustering();
  HttpResponse handle_community(const HttpRequest& request);
  HttpResponse handle_bc_topk(const HttpRequest& request);
  HttpResponse handle_pagerank_topk(const HttpRequest& request);
  HttpResponse handle_shutdown();

  // sg_ itself is not GUARDED_BY(write_mu_): its read surface (pin(),
  // epoch(), live_snapshots()) is lock-free reader-safe by the eager-mode
  // contract.  Only the mutating apply() path needs the single-writer
  // mutex, and ingest() below is the one place that calls it.
  stream::StreamingGraph sg_;
  sync::Mutex write_mu_;  // guards: sg_.apply() — the single-writer ingest path

  mutable sync::Mutex shutdown_mu_;  // guards: shutdown_
  sync::CondVar shutdown_cv_;
  bool shutdown_ GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace snap::server
