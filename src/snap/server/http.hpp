#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "snap/util/sync.hpp"

namespace snap::server {

/// One parsed HTTP request, as the service layer sees it.
struct HttpRequest {
  std::string method;        ///< "GET", "POST", ... (upper-case)
  std::string path;          ///< decoded path, query string stripped
  std::string query_string;  ///< raw text after '?', may be empty
  std::string body;

  /// Parsed `k=v` pairs of the query string (percent-decoded).
  std::vector<std::pair<std::string, std::string>> query;

  /// Value of query parameter `key`, or `dflt` when absent.
  [[nodiscard]] std::string query_value(std::string_view key,
                                        std::string_view dflt = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Request dispatch interface.  An implementation must be thread-safe:
/// the server calls handle() concurrently from every worker thread.
/// (A virtual interface rather than a callable member keeps the hot
/// per-neighbor visitor rule intact — no std::function in library code —
/// and one indirect call per HTTP request is noise next to the socket I/O.)
class HttpHandler {
 public:
  virtual ~HttpHandler() = default;
  virtual HttpResponse handle(const HttpRequest& request) = 0;
};

/// Self-contained blocking-socket HTTP/1.1 server — no external
/// dependencies, POSIX sockets only.  `threads` workers block in accept()
/// on one listening socket and serve their connections to completion;
/// keep-alive is honored, so a client can stream many requests over one
/// connection (what the replay bench's readers do).  Request-line/header
/// size and body size are capped (the service parses untrusted bodies).
///
/// Lifecycle: construct → start() → (serve) → stop().  stop() is
/// idempotent and also runs from the destructor; it closes the listening
/// socket, nudges the workers out of accept(), and joins them.
class HttpServer {
 public:
  explicit HttpServer(HttpHandler* handler, int threads = 4);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind + listen on host:port and launch the worker pool.  `host` must be
  /// an IPv4 literal (the daemon binds 127.0.0.1 by default; exposing it
  /// wider is a deployment decision, not a library default).  `port` 0
  /// binds an ephemeral port — read the actual one back from port().
  /// Returns false and fills `*error` on failure.
  bool start(const std::string& host, int port, std::string* error);

  /// Port actually bound (valid after a successful start()).
  [[nodiscard]] int port() const { return port_; }

  /// Stop accepting, drain workers, join.  Safe to call more than once.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Total requests served (all workers).
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_acquire);
  }

 private:
  /// Accept loop of one pool worker.  Workers never touch the guarded
  /// lifecycle state: the listening fd is captured by value at launch
  /// (valid until stop() joins them — stop() closes it only after the
  /// join), and shutdown is signalled through the `running_` atomic.
  void worker_loop(int listen_fd);
  void serve_connection(int fd);

  HttpHandler* handler_;
  int num_threads_;

  // Lifecycle state.  start() and stop() may be called from different
  // threads (the tests' main thread destroys the server while a signal
  // handler thread could be stopping it); lifecycle_mu_ serializes them.
  // port_ is written once inside start() before any worker launches and is
  // immutable afterwards (readers of port() see it via the caller's
  // happens-before on start() returning).
  sync::Mutex lifecycle_mu_;  // guards: listen_fd_, workers_
  int listen_fd_ GUARDED_BY(lifecycle_mu_) = -1;
  std::vector<std::thread> workers_ GUARDED_BY(lifecycle_mu_);
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
};

/// Result of one client-side HTTP exchange.  `status` 0 means a transport
/// failure, described in `error`.
struct HttpResult {
  int status = 0;
  std::string body;
  std::string error;
  [[nodiscard]] bool ok() const { return status >= 200 && status < 300; }
};

/// Minimal blocking HTTP/1.1 client connection (keep-alive): connect once,
/// issue any number of request()s, close on destruction.  Used by the CLI
/// `query` subcommand, the loopback tests, and the replay bench's reader
/// threads.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connect to an IPv4 literal host.  Returns false + error on failure.
  bool connect(const std::string& host, int port, std::string* error);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Issue one request and read the full response.  On transport failure
  /// the connection is closed and the result carries status 0 + error.
  HttpResult request(const std::string& method, const std::string& target,
                     std::string_view body = {});

 private:
  int fd_ = -1;
};

/// One-shot convenience: connect, request, close.
HttpResult http_request(const std::string& host, int port,
                        const std::string& method, const std::string& target,
                        std::string_view body = {});

}  // namespace snap::server
