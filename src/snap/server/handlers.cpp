#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "snap/centrality/betweenness.hpp"
#include "snap/community/label_prop.hpp"
#include "snap/community/louvain.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/kernels/pagerank.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/server/service.hpp"
#include "snap/stream/update_batch.hpp"
#include "snap/util/json.hpp"
#include "snap/util/rng.hpp"

namespace snap::server {

namespace {

using snap::json::Value;

HttpResponse json_response(int status, const Value& doc) {
  HttpResponse resp;
  resp.status = status;
  resp.body = doc.dump();
  return resp;
}

HttpResponse error_response(int status, const std::string& message) {
  Value doc = Value::object();
  doc.set("error", message);
  return json_response(status, doc);
}

/// Parse the `{v}` tail of /degree/{v}-style paths.  Returns false unless
/// the tail is a pure decimal integer (no sign, no trailing text).
bool parse_vertex(const std::string& tail, vid_t* out) {
  if (tail.empty() || tail.size() > 19) return false;
  for (const char c : tail)
    if (c < '0' || c > '9') return false;
  *out = static_cast<vid_t>(std::strtoll(tail.c_str(), nullptr, 10));
  return true;
}

/// Parse a non-negative integer query parameter with a default; false on
/// malformed text.
bool parse_int_param(const HttpRequest& req, std::string_view key,
                     std::int64_t dflt, std::int64_t* out) {
  const std::string raw = req.query_value(key);
  if (raw.empty()) {
    *out = dflt;
    return true;
  }
  if (raw.size() > 18) return false;
  for (const char c : raw)
    if (c < '0' || c > '9') return false;
  *out = std::strtoll(raw.c_str(), nullptr, 10);
  return true;
}

}  // namespace

GraphService::GraphService(vid_t num_vertices, bool directed)
    : sg_(num_vertices, directed) {
  // The whole point of the service: readers pin published epoch images and
  // never race the writer.  See StreamingGraph::set_eager_snapshots.
  sg_.set_eager_snapshots(true);
}

bool GraphService::shutdown_requested() const {
  sync::MutexLock lk(shutdown_mu_);
  return shutdown_;
}

void GraphService::wait_for_shutdown() {
  sync::MutexLock lk(shutdown_mu_);
  while (!shutdown_) shutdown_cv_.wait(shutdown_mu_);
}

HttpResponse GraphService::handle(const HttpRequest& request) {
  return route(request);
}

HttpResponse GraphService::route(const HttpRequest& request) {
  const std::string& p = request.path;
  const bool is_get = request.method == "GET";
  const bool is_post = request.method == "POST";

  if (p == "/ingest")
    return is_post ? handle_ingest(request)
                   : error_response(405, "use POST /ingest");
  if (p == "/shutdown")
    return is_post ? handle_shutdown()
                   : error_response(405, "use POST /shutdown");
  if (p == "/stats")
    return is_get ? handle_stats() : error_response(405, "use GET /stats");
  if (p == "/clustering")
    return is_get ? handle_clustering()
                  : error_response(405, "use GET /clustering");
  if (p == "/community")
    return is_get ? handle_community(request)
                  : error_response(405, "use GET /community");
  if (p == "/bc-topk")
    return is_get ? handle_bc_topk(request)
                  : error_response(405, "use GET /bc-topk");
  if (p == "/pagerank-topk")
    return is_get ? handle_pagerank_topk(request)
                  : error_response(405, "use GET /pagerank-topk");
  if (p.rfind("/degree/", 0) == 0)
    return is_get ? handle_degree(p.substr(8))
                  : error_response(405, "use GET /degree/{v}");
  if (p.rfind("/neighbors/", 0) == 0)
    return is_get ? handle_neighbors(p.substr(11))
                  : error_response(405, "use GET /neighbors/{v}");
  if (p.rfind("/cc/", 0) == 0)
    return is_get ? handle_cc(p.substr(4))
                  : error_response(405, "use GET /cc/{v}");
  return error_response(404, "no such route: " + p);
}

// --------------------------------------------------------------------------
// POST /ingest — the single writer.

HttpResponse GraphService::handle_ingest(const HttpRequest& request) {
  Value doc;
  std::string err;
  if (!json::parse(request.body, &doc, &err))
    return error_response(400, "malformed JSON body: " + err);
  const Value* updates = doc.find("updates");
  if (updates == nullptr || !updates->is_array())
    return error_response(400, "body must be {\"updates\": [...]}");

  stream::UpdateBatch batch;
  for (std::size_t i = 0; i < updates->size(); ++i) {
    const Value& rec = (*updates)[i];
    if (!rec.is_object())
      return error_response(400, "updates[" + std::to_string(i) +
                                     "] is not an object");
    const std::string op = rec.get("op").as_string();
    const Value* u = rec.find("u");
    const Value* v = rec.find("v");
    if (u == nullptr || !u->is_number() || v == nullptr || !v->is_number())
      return error_response(400, "updates[" + std::to_string(i) +
                                     "] needs numeric \"u\" and \"v\"");
    const auto uu = static_cast<vid_t>(u->as_int64());
    const auto vv = static_cast<vid_t>(v->as_int64());
    if (uu < 0 || vv < 0)
      return error_response(400, "updates[" + std::to_string(i) +
                                     "] has a negative vertex id");
    const auto time =
        static_cast<std::uint64_t>(rec.get("time").as_int64(0));
    if (op == "insert")
      batch.insert(uu, vv, time);
    else if (op == "delete")
      batch.erase(uu, vv, time);
    else
      return error_response(400, "updates[" + std::to_string(i) +
                                     "] \"op\" must be insert or delete");
  }

  stream::ApplyStats stats;
  std::uint64_t epoch = 0;
  {
    sync::MutexLock lk(write_mu_);
    stats = sg_.apply(batch);
    epoch = sg_.epoch();
  }
  Value out = Value::object();
  out.set("epoch", static_cast<std::int64_t>(epoch));
  out.set("raw_records", static_cast<std::int64_t>(stats.raw_records));
  out.set("canonical_arcs", static_cast<std::int64_t>(stats.canonical_arcs));
  out.set("applied_inserts",
          static_cast<std::int64_t>(stats.applied_inserts));
  out.set("applied_deletes",
          static_cast<std::int64_t>(stats.applied_deletes));
  return json_response(200, out);
}

// --------------------------------------------------------------------------
// Read endpoints — each pins one snapshot and answers only from it.

HttpResponse GraphService::handle_stats() {
  const stream::SnapshotHandle snap = sg_.pin();
  const CSRGraph& g = snap->graph();
  Value out = Value::object();
  out.set("epoch", static_cast<std::int64_t>(snap->epoch()));
  out.set("num_vertices", g.num_vertices());
  out.set("num_edges", g.num_edges());
  out.set("num_arcs", g.num_arcs());
  out.set("directed", g.directed());
  // Reclamation observability: epochs currently alive = the published
  // snapshot plus superseded ones still pinned by in-flight queries.  A
  // value stuck above 1 while the service is idle is a pin leak.
  out.set("live_snapshots",
          static_cast<std::int64_t>(sg_.live_snapshots()));
  return json_response(200, out);
}

HttpResponse GraphService::handle_degree(const std::string& tail) {
  vid_t v = 0;
  if (!parse_vertex(tail, &v))
    return error_response(400, "bad vertex id: " + tail);
  const stream::SnapshotHandle snap = sg_.pin();
  const CSRGraph& g = snap->graph();
  if (v >= g.num_vertices())
    return error_response(404, "vertex " + tail + " out of range");
  Value out = Value::object();
  out.set("epoch", static_cast<std::int64_t>(snap->epoch()));
  out.set("vertex", v);
  out.set("degree", g.degree(v));
  return json_response(200, out);
}

HttpResponse GraphService::handle_neighbors(const std::string& tail) {
  vid_t v = 0;
  if (!parse_vertex(tail, &v))
    return error_response(400, "bad vertex id: " + tail);
  const stream::SnapshotHandle snap = sg_.pin();
  const CSRGraph& g = snap->graph();
  if (v >= g.num_vertices())
    return error_response(404, "vertex " + tail + " out of range");
  Value nbrs = Value::array();
  for (const vid_t u : g.neighbors(v)) nbrs.push_back(u);
  Value out = Value::object();
  out.set("epoch", static_cast<std::int64_t>(snap->epoch()));
  out.set("vertex", v);
  out.set("degree", g.degree(v));
  out.set("neighbors", nbrs);
  return json_response(200, out);
}

HttpResponse GraphService::handle_cc(const std::string& tail) {
  vid_t v = 0;
  if (!parse_vertex(tail, &v))
    return error_response(400, "bad vertex id: " + tail);
  const stream::SnapshotHandle snap = sg_.pin();
  const CSRGraph& g = snap->graph();
  if (v >= g.num_vertices())
    return error_response(404, "vertex " + tail + " out of range");
  const Components comps = connected_components(g);
  const vid_t label = comps.label[static_cast<std::size_t>(v)];
  const std::vector<vid_t> sizes = comps.sizes();
  Value out = Value::object();
  out.set("epoch", static_cast<std::int64_t>(snap->epoch()));
  out.set("vertex", v);
  out.set("component", label);
  out.set("component_size", sizes[static_cast<std::size_t>(label)]);
  out.set("num_components", comps.count);
  return json_response(200, out);
}

HttpResponse GraphService::handle_clustering() {
  const stream::SnapshotHandle snap = sg_.pin();
  const CSRGraph& g = snap->graph();
  if (g.directed())
    return error_response(
        400, "clustering coefficients require an undirected graph");
  Value out = Value::object();
  out.set("epoch", static_cast<std::int64_t>(snap->epoch()));
  out.set("average", average_clustering_coefficient(g));
  out.set("global", global_clustering_coefficient(g));
  return json_response(200, out);
}

HttpResponse GraphService::handle_community(const HttpRequest& request) {
  const std::string algo = request.query_value("algo", "louvain");
  if (algo != "louvain" && algo != "plp")
    return error_response(400, "algo must be louvain or plp, got: " + algo);
  const stream::SnapshotHandle snap = sg_.pin();
  const CSRGraph& g = snap->graph();
  if (g.directed())
    return error_response(400,
                          "community detection requires an undirected graph");
  CommunityResult result;
  if (algo == "louvain")
    result = louvain(g).community;
  else
    result = label_propagation(g).community;
  Value out = Value::object();
  out.set("epoch", static_cast<std::int64_t>(snap->epoch()));
  out.set("algo", algo);
  out.set("num_communities", result.clustering.num_clusters);
  out.set("modularity", result.modularity);
  return json_response(200, out);
}

HttpResponse GraphService::handle_bc_topk(const HttpRequest& request) {
  std::int64_t k = 0;
  std::int64_t samples = 0;
  std::int64_t seed = 0;
  if (!parse_int_param(request, "k", 10, &k) ||
      !parse_int_param(request, "samples", 16, &samples) ||
      !parse_int_param(request, "seed", 42, &seed))
    return error_response(400, "k, samples and seed must be non-negative "
                               "integers");
  if (k < 1 || samples < 1)
    return error_response(400, "k and samples must be >= 1");

  const stream::SnapshotHandle snap = sg_.pin();
  const CSRGraph& g = snap->graph();
  const vid_t n = g.num_vertices();
  if (n == 0) return error_response(400, "graph is empty");

  // Distinct sample of source vertices, deterministic in `seed`.
  std::vector<vid_t> sources;
  if (samples >= n) {
    sources.resize(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
  } else {
    // Partial Fisher–Yates over the id range: draw `samples` distinct ids.
    std::vector<vid_t> pool(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) pool[static_cast<std::size_t>(v)] = v;
    SplitMix64 rng(static_cast<std::uint64_t>(seed));
    for (std::int64_t i = 0; i < samples; ++i) {
      const auto j = static_cast<std::size_t>(
          i + static_cast<std::int64_t>(rng.next_bounded(
                  static_cast<std::uint64_t>(n - i))));
      std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
    }
    sources.assign(pool.begin(), pool.begin() + samples);
  }

  const std::vector<double> scores = approx_vertex_betweenness(g, sources);

  // Top-k by score descending, ties toward the smaller vertex id.
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  const auto kk = static_cast<std::size_t>(std::min<std::int64_t>(k, n));
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(kk),
                    order.end(), [&scores](vid_t a, vid_t b) {
                      const double sa = scores[static_cast<std::size_t>(a)];
                      const double sb = scores[static_cast<std::size_t>(b)];
                      if (sa != sb) return sa > sb;
                      return a < b;
                    });

  Value top = Value::array();
  for (std::size_t i = 0; i < kk; ++i) {
    Value row = Value::object();
    row.set("vertex", order[i]);
    row.set("score", scores[static_cast<std::size_t>(order[i])]);
    top.push_back(row);
  }
  Value out = Value::object();
  out.set("epoch", static_cast<std::int64_t>(snap->epoch()));
  out.set("k", static_cast<std::int64_t>(kk));
  out.set("samples",
          static_cast<std::int64_t>(std::min<std::int64_t>(samples, n)));
  out.set("seed", seed);
  out.set("top", top);
  return json_response(200, out);
}

HttpResponse GraphService::handle_pagerank_topk(const HttpRequest& request) {
  std::int64_t k = 0;
  std::int64_t iters = 0;
  if (!parse_int_param(request, "k", 10, &k) ||
      !parse_int_param(request, "iters", 20, &iters))
    return error_response(400, "k and iters must be non-negative integers");
  if (k < 1 || iters < 1)
    return error_response(400, "k and iters must be >= 1");

  const stream::SnapshotHandle snap = sg_.pin();
  const CSRGraph& g = snap->graph();
  if (g.directed())
    return error_response(400, "pagerank requires an undirected graph");
  const vid_t n = g.num_vertices();
  if (n == 0) return error_response(400, "graph is empty");

  // Fixed work (tol = 0, exactly `iters` fixed-point iterations): the
  // response is a pure function of (snapshot epoch, k, iters) — byte-exact
  // across repeats, which the service test pins.
  PageRankParams params;
  params.max_iters = static_cast<int>(std::min<std::int64_t>(iters, 10000));
  params.tol = 0.0;
  const PageRankResult r = pagerank(g, params);

  // Top-k by rank descending, ties toward the smaller vertex id.
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  const auto kk = static_cast<std::size_t>(std::min<std::int64_t>(k, n));
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(kk),
                    order.end(), [&r](vid_t a, vid_t b) {
                      const double ra = r.rank[static_cast<std::size_t>(a)];
                      const double rb = r.rank[static_cast<std::size_t>(b)];
                      if (ra != rb) return ra > rb;
                      return a < b;
                    });

  Value top = Value::array();
  for (std::size_t i = 0; i < kk; ++i) {
    Value row = Value::object();
    row.set("vertex", order[i]);
    row.set("rank", r.rank[static_cast<std::size_t>(order[i])]);
    top.push_back(row);
  }
  Value out = Value::object();
  out.set("epoch", static_cast<std::int64_t>(snap->epoch()));
  out.set("k", static_cast<std::int64_t>(kk));
  out.set("iters", static_cast<std::int64_t>(params.max_iters));
  out.set("top", top);
  return json_response(200, out);
}

HttpResponse GraphService::handle_shutdown() {
  {
    sync::MutexLock lk(shutdown_mu_);
    shutdown_ = true;
  }
  shutdown_cv_.notify_all();
  Value out = Value::object();
  out.set("ok", true);
  return json_response(200, out);
}

}  // namespace snap::server
