#include "snap/server/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <string>

namespace snap::server {

namespace {

// Caps on untrusted input: a request head (request line + headers) beyond
// 64 KiB or a body beyond 64 MiB is rejected, not buffered.
constexpr std::size_t kMaxHeadBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 64 * 1024 * 1024;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    default: return "Status";
  }
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Percent-decode `s`; '+' becomes a space when `plus_is_space`.
std::string url_decode(std::string_view s, bool plus_is_space) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+' && plus_is_space) {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size()) {
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_response(int fd, const HttpResponse& resp, bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     status_text(resp.status) + "\r\n";
  head += "Content-Type: " + resp.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  head += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  head += "\r\n";
  return send_all(fd, head.data(), head.size()) &&
         send_all(fd, resp.body.data(), resp.body.size());
}

std::string lower(std::string s) {
  for (char& c : s)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// State of reading successive requests off one connection: bytes received
/// beyond the current request are kept for the next one (pipelining-safe).
struct ConnReader {
  int fd;
  std::string buffered;

  /// Pull more bytes; false on EOF/error.
  bool fill() {
    char chunk[8192];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffered.append(chunk, static_cast<std::size_t>(n));
    return true;
  }
};

/// Parse outcome for one request off the wire.
enum class ReadOutcome { kOk, kClosed, kTooLarge, kMalformed };

ReadOutcome read_request(ConnReader* rd, HttpRequest* req,
                         bool* keep_alive) {
  // 1. Accumulate the head.
  std::size_t head_end = std::string::npos;
  for (;;) {
    head_end = rd->buffered.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (rd->buffered.size() > kMaxHeadBytes) return ReadOutcome::kTooLarge;
    if (!rd->fill())
      return rd->buffered.empty() ? ReadOutcome::kClosed
                                  : ReadOutcome::kMalformed;
  }
  const std::string head = rd->buffered.substr(0, head_end);
  rd->buffered.erase(0, head_end + 4);

  // 2. Request line: METHOD SP target SP HTTP/1.x
  const std::size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return ReadOutcome::kMalformed;
  req->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/", 0) != 0) return ReadOutcome::kMalformed;

  // 3. Headers we act on: Content-Length, Connection.
  std::size_t content_length = 0;
  std::string connection;
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string hline = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = hline.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = lower(hline.substr(0, colon));
    std::size_t vstart = colon + 1;
    while (vstart < hline.size() && hline[vstart] == ' ') ++vstart;
    const std::string value = hline.substr(vstart);
    if (name == "content-length") {
      char* end = nullptr;
      const unsigned long long cl = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return ReadOutcome::kMalformed;
      content_length = static_cast<std::size_t>(cl);
    } else if (name == "connection") {
      connection = lower(value);
    }
  }
  if (content_length > kMaxBodyBytes) return ReadOutcome::kTooLarge;

  // HTTP/1.1 defaults to keep-alive; an explicit "close" wins either way.
  *keep_alive = version == "HTTP/1.1" ? connection != "close"
                                      : connection == "keep-alive";

  // 4. Body.
  while (rd->buffered.size() < content_length)
    if (!rd->fill()) return ReadOutcome::kMalformed;
  req->body = rd->buffered.substr(0, content_length);
  rd->buffered.erase(0, content_length);

  // 5. Split target into decoded path + query pairs.
  const std::size_t qmark = target.find('?');
  req->query_string =
      qmark == std::string::npos ? "" : target.substr(qmark + 1);
  req->path = url_decode(
      qmark == std::string::npos ? target : target.substr(0, qmark), false);
  req->query.clear();
  std::size_t qpos = 0;
  while (qpos < req->query_string.size()) {
    std::size_t amp = req->query_string.find('&', qpos);
    if (amp == std::string::npos) amp = req->query_string.size();
    const std::string pair = req->query_string.substr(qpos, amp - qpos);
    qpos = amp + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos)
      req->query.emplace_back(url_decode(pair, true), "");
    else
      req->query.emplace_back(url_decode(pair.substr(0, eq), true),
                              url_decode(pair.substr(eq + 1), true));
  }
  return ReadOutcome::kOk;
}

}  // namespace

std::string HttpRequest::query_value(std::string_view key,
                                     std::string_view dflt) const {
  for (const auto& [k, v] : query)
    if (k == key) return v;
  return std::string(dflt);
}

HttpServer::HttpServer(HttpHandler* handler, int threads)
    : handler_(handler), num_threads_(threads < 1 ? 1 : threads) {}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(const std::string& host, int port, std::string* error) {
  sync::MutexLock lk(lifecycle_mu_);
  if (running()) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "host must be an IPv4 literal: " + host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  running_.store(true, std::memory_order_release);
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  // Workers get the fd by value: they must stay off the guarded lifecycle
  // state, and the fd outlives them by construction (stop() closes it only
  // after joining every worker).
  for (int t = 0; t < num_threads_; ++t)
    workers_.emplace_back([this, fd = listen_fd_] { worker_loop(fd); });
  return true;
}

void HttpServer::stop() {
  sync::MutexLock lk(lifecycle_mu_);
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started (or already stopped): nothing to join.
    if (workers_.empty()) return;
  }
  // Unblock every worker's accept(); the fd itself is closed only after the
  // join so no worker can race a recycled descriptor.  Joining under
  // lifecycle_mu_ cannot deadlock: workers never take the lifecycle lock.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& w : workers_) w.join();
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::worker_loop(int listen_fd) {
  while (running()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener shut down
    }
    // A dead peer must not park a worker forever.
    timeval tv{};
    tv.tv_sec = 60;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  ConnReader rd{fd, {}};
  while (running()) {
    HttpRequest req;
    bool keep_alive = false;
    const ReadOutcome rc = read_request(&rd, &req, &keep_alive);
    if (rc == ReadOutcome::kClosed) return;
    if (rc == ReadOutcome::kTooLarge) {
      send_response(fd, {413, "application/json",
                         R"({"error":"request too large"})"},
                    false);
      return;
    }
    if (rc == ReadOutcome::kMalformed) {
      send_response(fd, {400, "application/json",
                         R"({"error":"malformed HTTP request"})"},
                    false);
      return;
    }
    HttpResponse resp;
    try {
      resp = handler_->handle(req);
    } catch (const std::exception& e) {
      resp.status = 500;
      resp.body = std::string(R"({"error":"internal: )") + e.what() + "\"}";
    }
    served_.fetch_add(1, std::memory_order_acq_rel);
    if (!send_response(fd, resp, keep_alive)) return;
    if (!keep_alive) return;
  }
}

// ---------------------------------------------------------------------------
// Client.

HttpClient::~HttpClient() { close(); }

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool HttpClient::connect(const std::string& host, int port,
                         std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "host must be an IPv4 literal: " + host;
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

HttpResult HttpClient::request(const std::string& method,
                               const std::string& target,
                               std::string_view body) {
  HttpResult res;
  if (fd_ < 0) {
    res.error = "not connected";
    return res;
  }
  std::string msg = method + " " + target + " HTTP/1.1\r\n";
  msg += "Host: snap\r\n";
  msg += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  msg += "Connection: keep-alive\r\n\r\n";
  msg.append(body.data(), body.size());
  if (!send_all(fd_, msg.data(), msg.size())) {
    res.error = "send failed";
    close();
    return res;
  }

  // Response: status line + headers, then content-length body bytes.
  ConnReader rd{fd_, {}};
  std::size_t head_end = std::string::npos;
  for (;;) {
    head_end = rd.buffered.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (rd.buffered.size() > kMaxHeadBytes || !rd.fill()) {
      res.error = "connection closed mid-response";
      close();
      return res;
    }
  }
  const std::string head = rd.buffered.substr(0, head_end);
  rd.buffered.erase(0, head_end + 4);
  // "HTTP/1.1 NNN text"
  const std::size_t sp = head.find(' ');
  if (sp == std::string::npos) {
    res.error = "malformed status line";
    close();
    return res;
  }
  res.status = std::atoi(head.c_str() + sp + 1);

  std::size_t content_length = 0;
  bool have_length = false;
  bool server_closes = false;
  std::size_t pos = head.find("\r\n");
  pos = pos == std::string::npos ? head.size() : pos + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string hline = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = hline.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = lower(hline.substr(0, colon));
    std::size_t vstart = colon + 1;
    while (vstart < hline.size() && hline[vstart] == ' ') ++vstart;
    if (name == "content-length") {
      content_length = static_cast<std::size_t>(
          std::strtoull(hline.c_str() + vstart, nullptr, 10));
      have_length = true;
    } else if (name == "connection") {
      server_closes = lower(hline.substr(vstart)) == "close";
    }
  }
  if (have_length) {
    while (rd.buffered.size() < content_length) {
      if (!rd.fill()) {
        res.error = "connection closed mid-body";
        close();
        return res;
      }
    }
    res.body = rd.buffered.substr(0, content_length);
    rd.buffered.erase(0, content_length);
  } else {
    // No length: body runs to EOF (and the connection is done).
    while (rd.fill()) {
    }
    res.body = std::move(rd.buffered);
    server_closes = true;
  }
  if (server_closes) close();
  return res;
}

HttpResult http_request(const std::string& host, int port,
                        const std::string& method, const std::string& target,
                        std::string_view body) {
  HttpClient client;
  std::string err;
  if (!client.connect(host, port, &err)) {
    HttpResult res;
    res.error = err;
    return res;
  }
  return client.request(method, target, body);
}

}  // namespace snap::server
