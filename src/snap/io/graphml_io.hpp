#pragma once

#include <string>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap::io {

/// Export `g` as GraphML for visualization tools (Gephi, yEd, Cytoscape —
/// the visual end of the exploratory workflow §3 motivates).  Edge weights
/// are written as a `weight` attribute; an optional per-vertex label column
/// (e.g. community membership) is written as a `community` attribute.
void write_graphml(const CSRGraph& g, const std::string& path,
                   const std::vector<vid_t>& vertex_labels = {});

}  // namespace snap::io
