#pragma once

#include <string>

#include "snap/graph/csr_graph.hpp"

namespace snap::io {

/// Read a graph in Pajek .net format — the native format of the Pajek SNA
/// package §3 compares SNAP against (`*Vertices n`, then `*Edges` /
/// `*Arcs` sections with 1-indexed endpoints and optional weights).
/// `*Edges` lines are undirected, `*Arcs` lines directed; a file mixing
/// both is folded to directed.
CSRGraph read_pajek(const std::string& path);

/// Write `g` in Pajek .net format (vertex labels are "v<id>").
void write_pajek(const CSRGraph& g, const std::string& path);

}  // namespace snap::io
