#include "snap/io/graphml_io.hpp"

#include <fstream>
#include <stdexcept>

namespace snap::io {

void write_graphml(const CSRGraph& g, const std::string& path,
                   const std::vector<vid_t>& vertex_labels) {
  if (!vertex_labels.empty() &&
      vertex_labels.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("write_graphml: label size mismatch");
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write GraphML file: " + path);

  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n"
      << "  <key id=\"w\" for=\"edge\" attr.name=\"weight\" "
         "attr.type=\"double\"/>\n";
  if (!vertex_labels.empty()) {
    out << "  <key id=\"c\" for=\"node\" attr.name=\"community\" "
           "attr.type=\"long\"/>\n";
  }
  out << "  <graph id=\"G\" edgedefault=\""
      << (g.directed() ? "directed" : "undirected") << "\">\n";
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    out << "    <node id=\"n" << v << "\"";
    if (!vertex_labels.empty()) {
      out << "><data key=\"c\">"
          << vertex_labels[static_cast<std::size_t>(v)]
          << "</data></node>\n";
    } else {
      out << "/>\n";
    }
  }
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    out << "    <edge source=\"n" << ed.u << "\" target=\"n" << ed.v
        << "\"><data key=\"w\">" << ed.w << "</data></edge>\n";
  }
  out << "  </graph>\n</graphml>\n";
}

}  // namespace snap::io
