#include "snap/io/edge_list_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace snap::io {

ParsedEdges read_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  ParsedEdges out;
  vid_t max_id = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Optional "# nodes: N" header.
      const auto pos = line.find("nodes:");
      if (pos != std::string::npos)
        out.n = std::stoll(line.substr(pos + 6));
      continue;
    }
    std::istringstream ls(line);
    Edge e;
    if (!(ls >> e.u >> e.v)) {
      throw std::runtime_error("malformed edge list line: " + line);
    }
    if (!(ls >> e.w)) e.w = 1.0;
    max_id = std::max({max_id, e.u, e.v});
    out.edges.push_back(e);
  }
  out.n = std::max(out.n, max_id + 1);
  return out;
}

CSRGraph read_edge_list_graph(const std::string& path, bool directed,
                              const BuildOptions& opts) {
  ParsedEdges p = read_edge_list(path);
  return CSRGraph::from_edges(p.n, p.edges, directed, opts);
}

void write_edge_list(const CSRGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write edge list: " + path);
  out << "# nodes: " << g.num_vertices() << "\n";
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << ' ' << e.w << "\n";
}

}  // namespace snap::io
