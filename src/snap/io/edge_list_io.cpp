#include "snap/io/edge_list_io.hpp"

#include <algorithm>
#include <charconv>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>

#include "snap/util/parallel.hpp"

namespace snap::io {

namespace {

constexpr std::size_t kNoError = std::numeric_limits<std::size_t>::max();

/// Files below this size parse on one thread: team startup costs more than
/// the parse.
constexpr std::size_t kParallelParseCutoff = 1 << 16;

inline const char* skip_ws(const char* p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  return p;
}

/// What one thread collects from its chunk of lines.
struct ChunkResult {
  EdgeList edges;
  vid_t max_id = -1;
  vid_t header_n = -1;      ///< last "# nodes: N" value seen, -1 if none
  std::size_t bad = kNoError;  ///< byte offset of first malformed line
};

/// Parse the lines in buf[lo, hi) (lo is a line start; hi is one past the
/// chunk's final newline, or buf.size() for the last chunk).
ChunkResult parse_chunk(const std::string& buf, std::size_t lo,
                        std::size_t hi) {
  ChunkResult r;
  const char* base = buf.data();
  std::size_t pos = lo;
  while (pos < hi) {
    const char* nl = static_cast<const char*>(
        std::memchr(base + pos, '\n', hi - pos));
    const std::size_t line_end = nl ? static_cast<std::size_t>(nl - base) : hi;
    const char* p = skip_ws(base + pos, base + line_end);
    const char* end = base + line_end;
    if (p == end) {
      pos = line_end + 1;
      continue;
    }
    if (*p == '%') {
      // KONECT-style comment line.
      pos = line_end + 1;
      continue;
    }
    if (*p == '#') {
      // SNAP-style comment line, with an optional "# nodes: N" header.
      const std::string_view line(p, static_cast<std::size_t>(end - p));
      const auto at = line.find("nodes:");
      if (at != std::string_view::npos) {
        const char* q = skip_ws(p + at + 6, end);
        vid_t n = 0;
        const auto [ptr, ec] = std::from_chars(q, end, n);
        if (ec != std::errc{} ) {
          if (r.bad == kNoError) r.bad = pos;
        } else {
          r.header_n = n;
        }
      }
      pos = line_end + 1;
      continue;
    }
    Edge e;
    auto [p1, ec1] = std::from_chars(p, end, e.u);
    const char* p2 = skip_ws(p1, end);
    auto [p3, ec2] = std::from_chars(p2, end, e.v);
    if (ec1 != std::errc{} || ec2 != std::errc{} || p2 == p1) {
      if (r.bad == kNoError) r.bad = pos;
      pos = line_end + 1;
      continue;
    }
    const char* p4 = skip_ws(p3, end);
    auto [p5, ec3] = std::from_chars(p4, end, e.w);
    if (ec3 != std::errc{}) e.w = 1.0;  // weight column absent (or junk)
    r.max_id = std::max({r.max_id, e.u, e.v});
    r.edges.push_back(e);
    pos = line_end + 1;
  }
  return r;
}

[[noreturn]] void throw_malformed(const std::string& buf, std::size_t at) {
  const char* nl = static_cast<const char*>(
      std::memchr(buf.data() + at, '\n', buf.size() - at));
  const std::size_t line_end =
      nl ? static_cast<std::size_t>(nl - buf.data()) : buf.size();
  throw std::runtime_error("malformed edge list line: " +
                           buf.substr(at, line_end - at));
}

}  // namespace

ParsedEdges read_edge_list(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  const auto sz = in.tellg();
  std::string buf(sz > 0 ? static_cast<std::size_t>(sz) : 0, '\0');
  in.seekg(0);
  if (!buf.empty()) in.read(buf.data(), static_cast<std::streamsize>(buf.size()));

  const std::size_t len = buf.size();
  int nt = parallel::num_threads();
  if (len < kParallelParseCutoff) nt = 1;

  // Chunk boundaries snap forward to the next line start, so every line is
  // parsed by exactly one thread and chunk order is file order.
  std::vector<std::size_t> start(static_cast<std::size_t>(nt) + 1, len);
  start[0] = 0;
  for (int t = 1; t < nt; ++t) {
    std::size_t at = len * static_cast<std::size_t>(t) /
                     static_cast<std::size_t>(nt);
    if (at < start[static_cast<std::size_t>(t) - 1])
      at = start[static_cast<std::size_t>(t) - 1];
    const char* nl = static_cast<const char*>(
        std::memchr(buf.data() + at, '\n', len - at));
    start[static_cast<std::size_t>(t)] =
        nl ? static_cast<std::size_t>(nl - buf.data()) + 1 : len;
  }

  std::vector<ChunkResult> chunk(static_cast<std::size_t>(nt));
  parallel::run_team(nt, [&](int t) {
    chunk[static_cast<std::size_t>(t)] =
        parse_chunk(buf, start[static_cast<std::size_t>(t)],
                    start[static_cast<std::size_t>(t) + 1]);
  });

  std::size_t bad = kNoError;
  for (const ChunkResult& c : chunk) bad = std::min(bad, c.bad);
  if (bad != kNoError) throw_malformed(buf, bad);

  ParsedEdges out;
  std::vector<std::size_t> sizes(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t)
    sizes[static_cast<std::size_t>(t)] =
        chunk[static_cast<std::size_t>(t)].edges.size();
  std::vector<std::size_t> offs;
  parallel::exclusive_prefix_sum(sizes, offs);
  out.edges.resize(offs[static_cast<std::size_t>(nt)]);
  parallel::run_team(nt, [&](int t) {
    const EdgeList& e = chunk[static_cast<std::size_t>(t)].edges;
    std::copy(e.begin(), e.end(),
              out.edges.begin() + static_cast<std::ptrdiff_t>(
                                      offs[static_cast<std::size_t>(t)]));
  });

  vid_t max_id = -1;
  for (const ChunkResult& c : chunk) max_id = std::max(max_id, c.max_id);
  for (const ChunkResult& c : chunk)  // last header in file order wins
    if (c.header_n >= 0) out.n = c.header_n;
  out.n = std::max(out.n, max_id + 1);
  return out;
}

CSRGraph read_edge_list_graph(const std::string& path, bool directed,
                              const BuildOptions& opts) {
  ParsedEdges p = read_edge_list(path);
  return CSRGraph::from_edges(p.n, p.edges, directed, opts);
}

void write_edge_list(const CSRGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write edge list: " + path);
  out << "# nodes: " << g.num_vertices() << "\n";
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << ' ' << e.w << "\n";
}

}  // namespace snap::io
