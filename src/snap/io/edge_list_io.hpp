#pragma once

#include <string>

#include "snap/graph/csr_graph.hpp"
#include "snap/graph/types.hpp"

namespace snap::io {

/// Raw parse result of an edge-list file: vertex count is inferred as
/// max id + 1 unless the file carries an explicit `# nodes: N` header.
struct ParsedEdges {
  vid_t n = 0;
  EdgeList edges;
};

/// Read a whitespace-separated edge list (`u v [w]` per line, `#` comments).
ParsedEdges read_edge_list(const std::string& path);

/// Convenience: read + build CSR.
CSRGraph read_edge_list_graph(const std::string& path, bool directed,
                              const BuildOptions& opts = {});

/// Write `g`'s logical edges as `u v w` lines with a `# nodes: N` header.
void write_edge_list(const CSRGraph& g, const std::string& path);

}  // namespace snap::io
