#include "snap/io/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace snap::io {

namespace {

constexpr char kMagicV1[8] = {'S', 'N', 'A', 'P', 'B', '1', '\n', '\0'};
constexpr char kMagicV2[8] = {'S', 'N', 'A', 'P', 'B', '2', '\n', '\0'};

// Legacy (v1) layout: 32-byte header + m RawEdge records.
struct HeaderV1 {
  char magic[8];
  std::int64_t n;
  std::int64_t m;
  std::uint8_t directed;
  std::uint8_t pad[7];
};
static_assert(sizeof(HeaderV1) == 32);

struct RawEdge {
  std::int64_t u, v;
  double w;
};
static_assert(sizeof(RawEdge) == 24);

// Flag bits of HeaderV2::flags.
constexpr std::uint32_t kFlagDirected = 1u << 0;
constexpr std::uint32_t kFlagWeighted = 1u << 1;
constexpr std::uint32_t kFlagSorted = 1u << 2;

/// v2 layout: this header, then the payload arrays in order — offsets
/// (n+1 x i64), adjacency (arcs x i64), arc edge ids (arcs x i64), arc
/// weights (arcs x f64, weighted only), logical edges (m x RawEdge when
/// weighted, m x {i64 u, i64 v} otherwise).  `checksum` is FNV-1a over the
/// payload bytes in that exact order.
struct HeaderV2 {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;
  std::int64_t n;
  std::int64_t m;
  std::uint64_t payload_bytes;
  std::uint64_t checksum;
};
static_assert(sizeof(HeaderV2) == 48);

class Fnv1a {
 public:
  void update(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = hash_;
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
    hash_ = h;
  }
  [[nodiscard]] std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("binary graph: " + what + ": " + path);
}

void write_all(std::ofstream& out, const void* data, std::size_t len) {
  if (len == 0) return;
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(len));
}

void read_all(std::ifstream& in, void* data, std::size_t len,
              const std::string& path) {
  if (len == 0) return;
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(len));
  if (!in) fail("truncated file", path);
}

CSRGraph read_binary_v1(std::ifstream& in, const HeaderV1& h,
                        const std::string& path) {
  if (h.n < 0 || h.m < 0) fail("bad header (negative n or m)", path);
  EdgeList edges(static_cast<std::size_t>(h.m));
  for (auto& e : edges) {
    RawEdge r{};
    read_all(in, &r, sizeof(r), path);
    e = Edge{r.u, r.v, r.w};
  }
  return CSRGraph::from_edges(h.n, edges, h.directed != 0);
}

CSRGraph read_binary_v2(std::ifstream& in, const HeaderV2& h,
                        const std::string& path) {
  if (h.version != kBinaryFormatVersion)
    fail("unsupported format version " + std::to_string(h.version) +
             " (this build reads version " +
             std::to_string(kBinaryFormatVersion) + ")",
         path);
  if (h.n < 0 || h.m < 0) fail("bad header (negative n or m)", path);
  const bool directed = (h.flags & kFlagDirected) != 0;
  const bool weighted = (h.flags & kFlagWeighted) != 0;
  const bool sorted = (h.flags & kFlagSorted) != 0;
  const auto n = static_cast<std::size_t>(h.n);
  const auto m = static_cast<std::size_t>(h.m);
  const std::size_t arcs = directed ? m : 2 * m;

  std::vector<eid_t> offsets(n + 1);
  std::vector<vid_t> adj(arcs);
  std::vector<eid_t> arc_edge_ids(arcs);
  std::vector<weight_t> weights;
  EdgeList edges(m);

  Fnv1a sum;
  std::uint64_t payload = 0;
  auto consume = [&](void* data, std::size_t len) {
    read_all(in, data, len, path);
    sum.update(data, len);
    payload += len;
  };

  consume(offsets.data(), offsets.size() * sizeof(eid_t));
  consume(adj.data(), adj.size() * sizeof(vid_t));
  consume(arc_edge_ids.data(), arc_edge_ids.size() * sizeof(eid_t));
  if (weighted) {
    weights.resize(arcs);
    consume(weights.data(), weights.size() * sizeof(weight_t));
    std::vector<RawEdge> raw(m);
    consume(raw.data(), raw.size() * sizeof(RawEdge));
    for (std::size_t e = 0; e < m; ++e)
      edges[e] = Edge{raw[e].u, raw[e].v, raw[e].w};
  } else {
    weights.assign(arcs, 1.0);
    std::vector<std::int64_t> raw(2 * m);
    consume(raw.data(), raw.size() * sizeof(std::int64_t));
    for (std::size_t e = 0; e < m; ++e)
      edges[e] = Edge{raw[2 * e], raw[2 * e + 1], 1.0};
  }

  if (payload != h.payload_bytes)
    fail("payload size mismatch (header says " +
             std::to_string(h.payload_bytes) + " bytes, file holds " +
             std::to_string(payload) + ")",
         path);
  if (sum.hash() != h.checksum)
    fail("FNV-1a checksum mismatch (file corrupt)", path);

  // Offsets must cover the arrays before from_parts indexes through them.
  if (offsets.front() != 0 ||
      offsets.back() != static_cast<eid_t>(arcs))
    fail("offsets array does not cover the adjacency", path);

  return CSRGraph::from_parts(h.n, h.m, directed, weighted, sorted,
                              std::move(offsets), std::move(adj),
                              std::move(weights), std::move(arc_edge_ids),
                              std::move(edges));
}

}  // namespace

void write_binary(const CSRGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open for writing", path);

  const auto offsets = g.row_offsets();
  const auto adj = g.adjacency();
  const auto ids = g.arc_edge_id_array();
  const auto weights = g.arc_weights();
  const auto& edges = g.edges();
  const auto m = static_cast<std::size_t>(g.num_edges());

  // Flatten the logical edge list once; it doubles as checksum input.
  std::vector<RawEdge> raw_weighted;
  std::vector<std::int64_t> raw_unweighted;
  if (g.weighted()) {
    raw_weighted.resize(m);
    for (std::size_t e = 0; e < m; ++e)
      raw_weighted[e] = RawEdge{edges[e].u, edges[e].v, edges[e].w};
  } else {
    raw_unweighted.resize(2 * m);
    for (std::size_t e = 0; e < m; ++e) {
      raw_unweighted[2 * e] = edges[e].u;
      raw_unweighted[2 * e + 1] = edges[e].v;
    }
  }

  Fnv1a sum;
  std::uint64_t payload = 0;
  auto tally = [&](const void* data, std::size_t len) {
    sum.update(data, len);
    payload += len;
  };
  tally(offsets.data(), offsets.size() * sizeof(eid_t));
  tally(adj.data(), adj.size() * sizeof(vid_t));
  tally(ids.data(), ids.size() * sizeof(eid_t));
  if (g.weighted()) {
    tally(weights.data(), weights.size() * sizeof(weight_t));
    tally(raw_weighted.data(), raw_weighted.size() * sizeof(RawEdge));
  } else {
    tally(raw_unweighted.data(),
          raw_unweighted.size() * sizeof(std::int64_t));
  }

  HeaderV2 h{};
  std::memcpy(h.magic, kMagicV2, sizeof(kMagicV2));
  h.version = kBinaryFormatVersion;
  h.flags = (g.directed() ? kFlagDirected : 0u) |
            (g.weighted() ? kFlagWeighted : 0u) |
            (g.adjacency_sorted() ? kFlagSorted : 0u);
  h.n = g.num_vertices();
  h.m = g.num_edges();
  h.payload_bytes = payload;
  h.checksum = sum.hash();

  write_all(out, &h, sizeof(h));
  write_all(out, offsets.data(), offsets.size() * sizeof(eid_t));
  write_all(out, adj.data(), adj.size() * sizeof(vid_t));
  write_all(out, ids.data(), ids.size() * sizeof(eid_t));
  if (g.weighted()) {
    write_all(out, weights.data(), weights.size() * sizeof(weight_t));
    write_all(out, raw_weighted.data(),
              raw_weighted.size() * sizeof(RawEdge));
  } else {
    write_all(out, raw_unweighted.data(),
              raw_unweighted.size() * sizeof(std::int64_t));
  }
  if (!out) fail("write failed", path);
}

CSRGraph read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open", path);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (!in) fail("truncated header", path);

  if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    HeaderV1 h{};
    std::memcpy(h.magic, magic, sizeof(magic));
    read_all(in, reinterpret_cast<char*>(&h) + sizeof(magic),
             sizeof(h) - sizeof(magic), path);
    return read_binary_v1(in, h, path);
  }
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    HeaderV2 h{};
    std::memcpy(h.magic, magic, sizeof(magic));
    read_all(in, reinterpret_cast<char*>(&h) + sizeof(magic),
             sizeof(h) - sizeof(magic), path);
    return read_binary_v2(in, h, path);
  }
  fail("unrecognized magic (not a SNAP binary graph)", path);
}

}  // namespace snap::io
