#include "snap/io/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace snap::io {

namespace {
constexpr char kMagic[8] = {'S', 'N', 'A', 'P', 'B', '1', '\n', '\0'};

struct Header {
  char magic[8];
  std::int64_t n;
  std::int64_t m;
  std::uint8_t directed;
  std::uint8_t pad[7];
};
static_assert(sizeof(Header) == 32);

struct RawEdge {
  std::int64_t u, v;
  double w;
};
static_assert(sizeof(RawEdge) == 24);
}  // namespace

void write_binary(const CSRGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write binary graph: " + path);
  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.n = g.num_vertices();
  h.m = g.num_edges();
  h.directed = g.directed() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  for (const Edge& e : g.edges()) {
    RawEdge r{e.u, e.v, e.w};
    out.write(reinterpret_cast<const char*>(&r), sizeof(r));
  }
}

CSRGraph read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open binary graph: " + path);
  Header h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in || std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("bad binary graph header: " + path);
  EdgeList edges(static_cast<std::size_t>(h.m));
  for (auto& e : edges) {
    RawEdge r{};
    in.read(reinterpret_cast<char*>(&r), sizeof(r));
    if (!in) throw std::runtime_error("binary graph truncated: " + path);
    e = Edge{r.u, r.v, r.w};
  }
  return CSRGraph::from_edges(h.n, edges, h.directed != 0);
}

}  // namespace snap::io
