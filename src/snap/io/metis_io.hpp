#pragma once

#include <string>

#include "snap/graph/csr_graph.hpp"

namespace snap::io {

/// Read an undirected graph in METIS .graph format: header `n m [fmt]`
/// (fmt 1 = edge weights present), then one 1-indexed adjacency line per
/// vertex; `%` starts a comment line.
CSRGraph read_metis(const std::string& path);

/// Write `g` (must be undirected) in METIS .graph format.
void write_metis(const CSRGraph& g, const std::string& path);

}  // namespace snap::io
