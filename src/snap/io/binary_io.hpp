#pragma once

#include <cstdint>
#include <string>

#include "snap/graph/csr_graph.hpp"

namespace snap::io {

/// Current binary snapshot format version ("SNAPB2").
inline constexpr std::uint32_t kBinaryFormatVersion = 2;

/// Write `g` in SNAP's binary snapshot format, version 2: a fixed header
/// (magic "SNAPB2\n", format version, flags, n, m, payload byte count and an
/// FNV-1a checksum of the payload) followed by the raw CSR arrays —
/// offsets, adjacency, arc edge ids, per-arc weights (weighted graphs only)
/// and the logical edge list.  Storing the CSR image directly makes a load
/// O(read): `read_binary` adopts the arrays via `CSRGraph::from_parts`
/// instead of re-running the sort/dedupe/placement build pipeline, which is
/// what lets the multi-GB bench corpus instances load in seconds.
void write_binary(const CSRGraph& g, const std::string& path);

/// Read a graph written by `write_binary`.  Understands both the current
/// "SNAPB2" CSR-array format (header checksum verified; corrupt or
/// truncated files are rejected with a clear error) and the legacy
/// "SNAPB1" edge-list format (no checksum; the CSR is rebuilt via
/// `from_edges`).
CSRGraph read_binary(const std::string& path);

}  // namespace snap::io
