#pragma once

#include <string>

#include "snap/graph/csr_graph.hpp"

namespace snap::io {

/// Write `g` in SNAP's compact binary snapshot format (magic "SNAPB1\n",
/// then n / m / flags and the raw logical-edge array).  Loads are an order of
/// magnitude faster than text parsing for the multi-million-edge instances.
void write_binary(const CSRGraph& g, const std::string& path);

/// Read a graph written by `write_binary`.
CSRGraph read_binary(const std::string& path);

}  // namespace snap::io
