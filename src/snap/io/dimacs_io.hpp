#pragma once

#include <string>

#include "snap/graph/csr_graph.hpp"

namespace snap::io {

/// Read a graph in DIMACS shortest-path format (`p sp n m`, `a u v w`,
/// 1-indexed vertices).  The `a` lines are treated as directed arcs;
/// pass `directed = false` to fold them into undirected edges.
CSRGraph read_dimacs(const std::string& path, bool directed = true);

/// Write `g` in DIMACS shortest-path format.
void write_dimacs(const CSRGraph& g, const std::string& path);

}  // namespace snap::io
