#include "snap/io/pajek_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace snap::io {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

CSRGraph read_pajek(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open Pajek file: " + path);

  vid_t n = 0;
  EdgeList undirected, directed;
  enum class Section { kNone, kVertices, kEdges, kArcs } section =
      Section::kNone;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    if (line[0] == '*') {
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      tag = lower(tag);
      if (tag == "*vertices") {
        if (!(ls >> n))
          throw std::runtime_error("Pajek *Vertices missing count: " + path);
        section = Section::kVertices;
      } else if (tag == "*edges" || tag == "*edgeslist") {
        section = Section::kEdges;
      } else if (tag == "*arcs" || tag == "*arcslist") {
        section = Section::kArcs;
      } else {
        section = Section::kNone;  // *Network, *Partition, ... skipped
      }
      continue;
    }
    if (section == Section::kEdges || section == Section::kArcs) {
      std::istringstream ls(line);
      Edge e;
      if (!(ls >> e.u >> e.v)) continue;
      if (!(ls >> e.w)) e.w = 1.0;
      --e.u;  // Pajek is 1-indexed
      --e.v;
      (section == Section::kEdges ? undirected : directed).push_back(e);
    }
  }
  if (n == 0)
    throw std::runtime_error("Pajek file missing *Vertices: " + path);

  if (!directed.empty()) {
    // Fold any undirected edges into two arcs.
    for (const Edge& e : undirected) {
      directed.push_back(e);
      directed.push_back({e.v, e.u, e.w});
    }
    return CSRGraph::from_edges(n, directed, /*directed=*/true);
  }
  return CSRGraph::from_edges(n, undirected, /*directed=*/false);
}

void write_pajek(const CSRGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write Pajek file: " + path);
  out << "*Vertices " << g.num_vertices() << "\n";
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    out << v + 1 << " \"v" << v << "\"\n";
  out << (g.directed() ? "*Arcs" : "*Edges") << "\n";
  for (const Edge& e : g.edges())
    out << e.u + 1 << ' ' << e.v + 1 << ' ' << e.w << "\n";
}

}  // namespace snap::io
