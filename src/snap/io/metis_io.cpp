#include "snap/io/metis_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace snap::io {

CSRGraph read_metis(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open METIS file: " + path);
  std::string line;
  auto next_content_line = [&](std::string& dst) {
    while (std::getline(in, dst))
      if (!dst.empty() && dst[0] != '%') return true;
    return false;
  };
  if (!next_content_line(line))
    throw std::runtime_error("empty METIS file: " + path);
  std::istringstream header(line);
  vid_t n = 0;
  eid_t m = 0;
  int fmt = 0;
  header >> n >> m;
  if (!(header >> fmt)) fmt = 0;
  const bool has_weights = (fmt % 10) == 1;

  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (vid_t u = 0; u < n; ++u) {
    if (!next_content_line(line))
      throw std::runtime_error("METIS file truncated: " + path);
    std::istringstream ls(line);
    vid_t v;
    while (ls >> v) {
      Edge e{u, v - 1, 1.0};
      if (has_weights && !(ls >> e.w))
        throw std::runtime_error("METIS edge weight missing: " + path);
      if (e.u < e.v) edges.push_back(e);  // each edge listed from both sides
    }
  }
  return CSRGraph::from_edges(n, edges, /*directed=*/false);
}

void write_metis(const CSRGraph& g, const std::string& path) {
  if (g.directed())
    throw std::invalid_argument("write_metis requires an undirected graph");
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write METIS file: " + path);
  const bool weighted = g.weighted();
  out << g.num_vertices() << ' ' << g.num_edges();
  if (weighted) out << " 1";
  out << "\n";
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (i) out << ' ';
      out << nb[i] + 1;
      if (weighted) out << ' ' << ws[i];
    }
    out << "\n";
  }
}

}  // namespace snap::io
