#include "snap/graph/dynamic_graph.hpp"

#include <algorithm>

#include "snap/graph/csr_graph.hpp"

namespace snap {

DynamicGraph::DynamicGraph(vid_t n, bool directed, eid_t promote_threshold)
    : directed_(directed),
      promote_threshold_(std::max<eid_t>(promote_threshold, 2)),
      flat_(static_cast<std::size_t>(n)),
      treap_(static_cast<std::size_t>(n)) {}

vid_t DynamicGraph::add_vertex() {
  flat_.emplace_back();
  treap_.emplace_back();
  return static_cast<vid_t>(flat_.size()) - 1;
}

bool DynamicGraph::insert_arc(vid_t u, vid_t v) {
  if (!treap_[u].empty()) return treap_[u].insert(v);
  auto& a = flat_[u];
  if (std::find(a.begin(), a.end(), v) != a.end()) return false;
  a.push_back(v);
  if (static_cast<eid_t>(a.size()) > promote_threshold_) {
    // Promote: migrate the flat array into a treap.
    std::sort(a.begin(), a.end());
    treap_[u] = Treap::from_sorted(a);
    a.clear();
    a.shrink_to_fit();
  }
  return true;
}

bool DynamicGraph::delete_arc(vid_t u, vid_t v) {
  if (!treap_[u].empty()) return treap_[u].erase(v);
  auto& a = flat_[u];
  auto it = std::find(a.begin(), a.end(), v);
  if (it == a.end()) return false;
  *it = a.back();
  a.pop_back();
  return true;
}

bool DynamicGraph::has_arc(vid_t u, vid_t v) const {
  if (!treap_[u].empty()) return treap_[u].contains(v);
  const auto& a = flat_[u];
  return std::find(a.begin(), a.end(), v) != a.end();
}

bool DynamicGraph::insert_edge(vid_t u, vid_t v) {
  if (has_arc(u, v)) return false;
  insert_arc(u, v);
  if (!directed_ && u != v) insert_arc(v, u);
  ++m_;
  return true;
}

bool DynamicGraph::delete_edge(vid_t u, vid_t v) {
  if (!delete_arc(u, v)) return false;
  if (!directed_ && u != v) delete_arc(v, u);
  --m_;
  return true;
}

bool DynamicGraph::has_edge(vid_t u, vid_t v) const { return has_arc(u, v); }

eid_t DynamicGraph::degree(vid_t v) const {
  return treap_[v].empty() ? static_cast<eid_t>(flat_[v].size())
                           : static_cast<eid_t>(treap_[v].size());
}

void DynamicGraph::for_each_neighbor(
    vid_t v, const std::function<void(vid_t)>& fn) const {
  if (!treap_[v].empty()) {
    treap_[v].for_each(fn);
  } else {
    for (vid_t u : flat_[v]) fn(u);
  }
}

CSRGraph DynamicGraph::to_csr() const {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(m_));
  const vid_t n = num_vertices();
  for (vid_t u = 0; u < n; ++u) {
    for_each_neighbor(u, [&](vid_t v) {
      if (directed_ || u <= v) edges.push_back({u, v, 1.0});
    });
  }
  return CSRGraph::from_edges(n, edges, directed_);
}

DynamicGraph DynamicGraph::from_csr(const CSRGraph& g, eid_t promote_threshold) {
  DynamicGraph d(g.num_vertices(), g.directed(), promote_threshold);
  for (const Edge& e : g.edges()) d.insert_edge(e.u, e.v);
  return d;
}

}  // namespace snap
