#include "snap/graph/dynamic_graph.hpp"

#include <algorithm>

#include "snap/debug/check.hpp"
#include "snap/debug/validate.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

DynamicGraph::DynamicGraph(vid_t n, bool directed, eid_t promote_threshold)
    : directed_(directed),
      promote_threshold_(std::max<eid_t>(promote_threshold, 2)),
      flat_(static_cast<std::size_t>(n)),
      treap_(static_cast<std::size_t>(n)) {}

vid_t DynamicGraph::add_vertex() {
  flat_.emplace_back();
  treap_.emplace_back();
  return static_cast<vid_t>(flat_.size()) - 1;
}

void DynamicGraph::ensure_vertices(vid_t n) {
  if (n <= num_vertices()) return;
  flat_.resize(static_cast<std::size_t>(n));
  treap_.resize(static_cast<std::size_t>(n));
}

bool DynamicGraph::insert_arc(vid_t u, vid_t v) {
  if (!treap_[u].empty()) return treap_[u].insert(v);
  auto& a = flat_[u];
  if (std::find(a.begin(), a.end(), v) != a.end()) return false;
  a.push_back(v);
  if (static_cast<eid_t>(a.size()) > promote_threshold_) {
    // Promote: migrate the flat array into a treap.
    std::sort(a.begin(), a.end());
    treap_[u] = Treap::from_sorted(a);
    a.clear();
    a.shrink_to_fit();
  }
  return true;
}

bool DynamicGraph::delete_arc(vid_t u, vid_t v) {
  if (!treap_[u].empty()) return treap_[u].erase(v);
  auto& a = flat_[u];
  auto it = std::find(a.begin(), a.end(), v);
  if (it == a.end()) return false;
  *it = a.back();
  a.pop_back();
  return true;
}

bool DynamicGraph::has_arc(vid_t u, vid_t v) const {
  if (!treap_[u].empty()) return treap_[u].contains(v);
  const auto& a = flat_[u];
  return std::find(a.begin(), a.end(), v) != a.end();
}

bool DynamicGraph::insert_edge(vid_t u, vid_t v) {
  if (has_arc(u, v)) return false;
  const bool fwd = insert_arc(u, v);
  SNAP_DCHECK(fwd, "arc (", u, ",", v, ") vanished between has_arc and insert");
  if (!directed_ && u != v) {
    const bool mirror = insert_arc(v, u);
    SNAP_DCHECK(mirror, "mirror arc (", v, ",", u,
                ") already present: adjacency asymmetry");
  }
  ++m_;
  return true;
}

bool DynamicGraph::delete_edge(vid_t u, vid_t v) {
  if (!delete_arc(u, v)) return false;
  if (!directed_ && u != v) {
    const bool mirror = delete_arc(v, u);
    SNAP_DCHECK(mirror, "mirror arc (", v, ",", u,
                ") missing on delete: adjacency asymmetry");
  }
  --m_;
  return true;
}

bool DynamicGraph::has_edge(vid_t u, vid_t v) const { return has_arc(u, v); }

eid_t DynamicGraph::degree(vid_t v) const {
  return treap_[v].empty() ? static_cast<eid_t>(flat_[v].size())
                           : static_cast<eid_t>(treap_[v].size());
}

void DynamicGraph::for_each_neighbor(
    vid_t v, const std::function<void(vid_t)>& fn)  // lint:allow(std-function)
    const {
  for_each_neighbor(v, [&fn](vid_t u) { fn(u); });
}

CSRGraph DynamicGraph::to_csr() const {
  const vid_t n = num_vertices();
  // Two passes: per-vertex emitted-edge counts -> prefix sum -> parallel fill
  // of disjoint slices.  Slice order is the deterministic per-vertex visit
  // order, so the edge list (and the CSR built from it) is identical at every
  // thread count.
  std::vector<eid_t> cnt(static_cast<std::size_t>(n), 0);
  parallel::parallel_for(n, [&](vid_t u) {
    eid_t c = 0;
    for_each_neighbor(u, [&](vid_t v) {
      if (directed_ || u <= v) ++c;
    });
    cnt[static_cast<std::size_t>(u)] = c;
  });
  std::vector<eid_t> offs;
  parallel::exclusive_prefix_sum(cnt, offs);
  EdgeList edges(static_cast<std::size_t>(offs[static_cast<std::size_t>(n)]));
  parallel::parallel_for(n, [&](vid_t u) {
    eid_t at = offs[static_cast<std::size_t>(u)];
    for_each_neighbor(u, [&](vid_t v) {
      if (directed_ || u <= v) edges[static_cast<std::size_t>(at++)] = {u, v, 1.0};
    });
  });
  // Keep self loops: the adjacency structures store them (one arc, one
  // logical edge), so the default remove_self_loops=true would silently
  // shrink the snapshot below num_edges().  Dedupe stays on purely for its
  // canonical (u, v, w) edge ordering — arcs are already unique here.
  BuildOptions opts;
  opts.remove_self_loops = false;
  CSRGraph g = CSRGraph::from_edges(n, edges, directed_, opts);
  SNAP_DCHECK(g.num_edges() == m_, "to_csr emitted ", g.num_edges(),
              " edges but the dynamic graph tracks ", m_);
  return g;
}

DynamicGraph DynamicGraph::from_csr(const CSRGraph& g, eid_t promote_threshold) {
  DynamicGraph d(g.num_vertices(), g.directed(), promote_threshold);
  for (const Edge& e : g.edges()) d.insert_edge(e.u, e.v);
  SNAP_VALIDATE(d);
  return d;
}

}  // namespace snap
