#include "snap/graph/reorder.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "snap/kernels/bfs.hpp"

namespace snap {

ReorderedGraph relabel(const CSRGraph& g,
                       const std::vector<vid_t>& new_to_old) {
  if (new_to_old.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("relabel: permutation size mismatch");
  ReorderedGraph r;
  r.new_to_old = new_to_old;
  r.old_to_new.assign(new_to_old.size(), kInvalidVid);
  for (std::size_t i = 0; i < new_to_old.size(); ++i) {
    const vid_t old = new_to_old[i];
    if (old < 0 || old >= g.num_vertices() ||
        r.old_to_new[static_cast<std::size_t>(old)] != kInvalidVid)
      throw std::invalid_argument("relabel: not a permutation");
    r.old_to_new[static_cast<std::size_t>(old)] = static_cast<vid_t>(i);
  }
  EdgeList edges;
  edges.reserve(g.edges().size());
  for (const Edge& e : g.edges()) {
    edges.push_back({r.old_to_new[static_cast<std::size_t>(e.u)],
                     r.old_to_new[static_cast<std::size_t>(e.v)], e.w});
  }
  r.graph = CSRGraph::from_edges(g.num_vertices(), edges, g.directed());
  return r;
}

ReorderedGraph relabel_by_degree(const CSRGraph& g) {
  std::vector<vid_t> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), vid_t{0});
  std::stable_sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    return g.degree(a) > g.degree(b);
  });
  return relabel(g, order);
}

ReorderedGraph relabel_by_bfs(const CSRGraph& g, vid_t source) {
  const BFSResult b = bfs_serial(g, source);
  std::vector<vid_t> order;
  order.reserve(static_cast<std::size_t>(g.num_vertices()));
  // Visitation order: stable by (distance, id); unreached go last.
  std::vector<vid_t> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), vid_t{0});
  std::stable_sort(all.begin(), all.end(), [&](vid_t x, vid_t y) {
    const auto dx = b.dist[static_cast<std::size_t>(x)];
    const auto dy = b.dist[static_cast<std::size_t>(y)];
    const auto kx = dx < 0 ? std::numeric_limits<std::int64_t>::max() : dx;
    const auto ky = dy < 0 ? std::numeric_limits<std::int64_t>::max() : dy;
    return kx < ky;
  });
  return relabel(g, all);
}

}  // namespace snap
