#include "snap/graph/reorder.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "snap/kernels/bfs.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

namespace {

/// BFS-visitation sort key: (distance with unreached last, old id).  A total
/// order, so the permutation is a pure function of the distance array.
std::vector<vid_t> bfs_order(const CSRGraph& g, const BFSResult& b) {
  std::vector<vid_t> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), vid_t{0});
  auto key = [&](vid_t v) {
    const auto d = b.dist[static_cast<std::size_t>(v)];
    return d < 0 ? std::numeric_limits<std::int64_t>::max() : d;
  };
  parallel::parallel_sort(order.begin(), order.end(), [&](vid_t x, vid_t y) {
    const auto kx = key(x);
    const auto ky = key(y);
    if (kx != ky) return kx < ky;
    return x < y;
  });
  return order;
}

}  // namespace

ReorderedGraph relabel(const CSRGraph& g,
                       const std::vector<vid_t>& new_to_old) {
  const vid_t n = g.num_vertices();
  if (new_to_old.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("relabel: permutation size mismatch");
  ReorderedGraph r;
  r.new_to_old = new_to_old;
  r.old_to_new.assign(new_to_old.size(), kInvalidVid);

  // Parallel inverse build + validation.  Out-of-range entries are detected
  // directly; duplicates (and by pigeonhole, missing values) surface as an
  // inverse that fails the round-trip check below — a racy double-write to
  // old_to_new[old] leaves at most one of the duplicates consistent.
  std::atomic<bool> out_of_range{false};
  parallel::parallel_for(n, [&](vid_t i) {
    const vid_t old = new_to_old[static_cast<std::size_t>(i)];
    if (old < 0 || old >= n) {
      out_of_range.store(true, std::memory_order_relaxed);
      return;
    }
    r.old_to_new[static_cast<std::size_t>(old)] = i;
  });
  if (out_of_range.load(std::memory_order_relaxed))
    throw std::invalid_argument("relabel: not a permutation");
  std::atomic<bool> not_bijective{false};
  parallel::parallel_for(n, [&](vid_t i) {
    const vid_t old = new_to_old[static_cast<std::size_t>(i)];
    if (r.old_to_new[static_cast<std::size_t>(old)] != i)
      not_bijective.store(true, std::memory_order_relaxed);
  });
  if (not_bijective.load(std::memory_order_relaxed))
    throw std::invalid_argument("relabel: not a permutation");

  // Permutation apply: map every logical edge's endpoints — embarrassingly
  // parallel.  The CSR rebuild runs with dedupe/self-loop-removal off so
  // the edge multiset (and every logical edge id) survives verbatim.
  EdgeList edges(g.edges().size());
  const EdgeList& src = g.edges();
  parallel::parallel_for(src.size(), [&](std::size_t e) {
    const Edge& in = src[e];
    edges[e] = Edge{r.old_to_new[static_cast<std::size_t>(in.u)],
                    r.old_to_new[static_cast<std::size_t>(in.v)], in.w};
  });
  BuildOptions opts;
  opts.remove_self_loops = false;
  opts.dedupe = false;
  r.graph = CSRGraph::from_edges(n, edges, g.directed(), opts);
  return r;
}

ReorderedGraph relabel_by_degree(const CSRGraph& g) {
  std::vector<vid_t> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), vid_t{0});
  parallel::parallel_sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    const eid_t da = g.degree(a);
    const eid_t db = g.degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  return relabel(g, order);
}

ReorderedGraph relabel_by_bfs(const CSRGraph& g, vid_t source) {
  const BFSResult b = bfs_serial(g, source);
  return relabel(g, bfs_order(g, b));
}

ReorderedGraph relabel_by_hub_cluster(const CSRGraph& g,
                                      const HubClusterParams& params) {
  const vid_t n = g.num_vertices();
  if (n == 0) return relabel(g, {});
  std::vector<vid_t> by_degree(static_cast<std::size_t>(n));
  std::iota(by_degree.begin(), by_degree.end(), vid_t{0});
  parallel::parallel_sort(by_degree.begin(), by_degree.end(),
                          [&](vid_t a, vid_t b) {
                            const eid_t da = g.degree(a);
                            const eid_t db = g.degree(b);
                            if (da != db) return da > db;
                            return a < b;
                          });
  const auto hubs = static_cast<std::size_t>(std::clamp<double>(
      params.hub_fraction * static_cast<double>(n), 1.0,
      static_cast<double>(n)));
  std::vector<std::uint8_t> is_hub(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < hubs; ++i)
    is_hub[static_cast<std::size_t>(by_degree[i])] = 1;

  const vid_t source =
      params.source == kInvalidVid ? by_degree[0] : params.source;
  const BFSResult b = bfs_serial(g, source);

  // Hub block first (descending degree), then the tail in BFS order.
  std::vector<vid_t> order(by_degree.begin(),
                           by_degree.begin() + static_cast<std::ptrdiff_t>(hubs));
  order.reserve(static_cast<std::size_t>(n));
  for (const vid_t v : bfs_order(g, b))
    if (!is_hub[static_cast<std::size_t>(v)]) order.push_back(v);
  return relabel(g, order);
}

}  // namespace snap
