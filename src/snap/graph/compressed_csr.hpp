#pragma once

// Delta/varint-compressed CSR neighbor lists.
//
// Pull-direction kernels on large small-world graphs are bandwidth-bound:
// the bottom-up BFS levels stream most of the adjacency array per level,
// and at 8 bytes per arc the memory system — not the core — sets the rate.
// CompressedCSR stores each vertex's neighbor list as a leading degree
// varint followed by zigzag-encoded deltas (first neighbor relative to the
// vertex id, then consecutive gaps), which lands at 1–2 bytes per arc on
// reordered small-world instances: the same traversal touches ~4–8x fewer
// bytes.  Decoding is branch-light shift/or work that pipelines under the
// memory latency the uncompressed scan would spend stalled.
//
// The encoding is a pure function of the graph: a two-pass parallel encode
// (exact per-vertex byte lengths, prefix sum, scatter into disjoint slices)
// produces byte-identical buffers at every thread count, which is what the
// determinism harness checks.  Decoding is exact — the block iterator
// replays the original adjacency span value for value (the differential
// test compares both, generator by generator).

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "snap/debug/check.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/kernels/bfs.hpp"

namespace snap {

namespace detail {

inline std::uint64_t zigzag_encode(std::int64_t x) {
  return (static_cast<std::uint64_t>(x) << 1) ^
         static_cast<std::uint64_t>(x >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

/// Bytes LEB128 needs for `u` (1..10).
inline std::size_t varint_length(std::uint64_t u) {
  std::size_t len = 1;
  while (u >= 0x80) {
    u >>= 7;
    ++len;
  }
  return len;
}

/// Append LEB128(u) at `out`; returns one past the last byte written.
inline std::uint8_t* varint_write(std::uint8_t* out, std::uint64_t u) {
  while (u >= 0x80) {
    *out++ = static_cast<std::uint8_t>(u) | 0x80;
    u >>= 7;
  }
  *out++ = static_cast<std::uint8_t>(u);
  return out;
}

/// Read LEB128 at `p`; advances `p`.
inline std::uint64_t varint_read(const std::uint8_t*& p) {
  std::uint64_t u = 0;
  int shift = 0;
  while (*p & 0x80) {
    u |= static_cast<std::uint64_t>(*p++ & 0x7f) << shift;
    shift += 7;
  }
  u |= static_cast<std::uint64_t>(*p++) << shift;
  return u;
}

}  // namespace detail

/// Compressed read-only adjacency (no weights, no edge ids): the
/// representation the bandwidth-bound pull kernels stream.  Build one from
/// a CSRGraph pre-pass; vertex ids and iteration order are identical to the
/// source graph's (`neighbors(v)` decoded == `g.neighbors(v)` verbatim).
class CompressedCSR {
 public:
  CompressedCSR() = default;

  /// Encode `g`'s adjacency.  Parallel and deterministic: the buffer is
  /// byte-identical at every thread count.
  static CompressedCSR from_graph(const CSRGraph& g);

  [[nodiscard]] vid_t num_vertices() const { return n_; }
  [[nodiscard]] eid_t num_arcs() const { return arcs_; }
  [[nodiscard]] bool directed() const { return directed_; }

  /// Compressed adjacency bytes (the uncompressed equivalent is
  /// num_arcs() * sizeof(vid_t)).
  [[nodiscard]] std::size_t byte_size() const { return bytes_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return bytes_; }
  [[nodiscard]] std::span<const std::uint64_t> byte_offsets() const {
    return offsets_;
  }

  [[nodiscard]] eid_t degree(vid_t v) const {
    const std::uint8_t* p = block(v);
    return static_cast<eid_t>(detail::varint_read(p));
  }

  /// Visit every neighbor of v in stored (ascending) order.
  template <typename F>
  void for_each_neighbor(vid_t v, F&& f) const {
    const std::uint8_t* p = block(v);
    const std::uint64_t deg = detail::varint_read(p);
    std::int64_t prev = v;
    for (std::uint64_t i = 0; i < deg; ++i) {
      prev += detail::zigzag_decode(detail::varint_read(p));
      f(static_cast<vid_t>(prev));
    }
  }

  /// Visit neighbors while `f` returns true (early-exit pull scans).
  template <typename F>
  void for_each_neighbor_while(vid_t v, F&& f) const {
    const std::uint8_t* p = block(v);
    const std::uint64_t deg = detail::varint_read(p);
    std::int64_t prev = v;
    for (std::uint64_t i = 0; i < deg; ++i) {
      prev += detail::zigzag_decode(detail::varint_read(p));
      if (!f(static_cast<vid_t>(prev))) return;
    }
  }

  /// Decode all of v's neighbors into `out` (resized to the degree).
  void decode_neighbors(vid_t v, std::vector<vid_t>& out) const {
    out.clear();
    for_each_neighbor(v, [&](vid_t w) { out.push_back(w); });
  }

  /// Block-decoding cursor over one vertex's neighbor list: `next()` fills
  /// an internal buffer with up to kBlock decoded neighbors and returns the
  /// filled span (empty at end).  This is the CSRGraph-compatible read
  /// path for kernels written against `std::span<const vid_t>` slices —
  /// they consume one block at a time instead of one `neighbors(v)` span.
  class NeighborCursor {
   public:
    static constexpr std::size_t kBlock = 64;

    NeighborCursor(const CompressedCSR& g, vid_t v) : p_(g.block(v)) {
      remaining_ = detail::varint_read(p_);
      prev_ = v;
    }

    /// Decode the next block; empty span = exhausted.
    std::span<const vid_t> next() {
      const std::size_t take = std::min<std::uint64_t>(remaining_, kBlock);
      for (std::size_t i = 0; i < take; ++i) {
        prev_ += detail::zigzag_decode(detail::varint_read(p_));
        buf_[i] = static_cast<vid_t>(prev_);
      }
      remaining_ -= take;
      return {buf_.data(), take};
    }

   private:
    const std::uint8_t* p_;
    std::uint64_t remaining_ = 0;
    std::int64_t prev_ = 0;
    std::array<vid_t, kBlock> buf_{};
  };

  [[nodiscard]] NeighborCursor neighbors(vid_t v) const {
    return NeighborCursor(*this, v);
  }

 private:
  [[nodiscard]] const std::uint8_t* block(vid_t v) const {
    SNAP_DCHECK(v >= 0 && v < n_, "CompressedCSR: vertex ", v,
                " out of [0, ", n_, ")");
    return bytes_.data() + offsets_[static_cast<std::size_t>(v)];
  }

  vid_t n_ = 0;
  eid_t arcs_ = 0;
  bool directed_ = false;
  std::vector<std::uint64_t> offsets_;  ///< n+1 byte offsets into bytes_
  std::vector<std::uint8_t> bytes_;
};

/// Direction-optimizing BFS over the compressed representation: sparse
/// levels run frontier push, dense levels run the bandwidth-bound bottom-up
/// pull the compression exists for.  Distances (and visited/level counts)
/// are identical to `bfs_serial` on the source graph; the parent array is
/// any valid BFS tree.
BFSResult bfs_compressed(const CompressedCSR& g, vid_t source);

}  // namespace snap
