#pragma once

#include <cstdint>
#include <vector>

namespace snap {

/// Vertex id.  64-bit throughout: the paper's stated ambition is graphs with
/// 100 million to 10 billion entities (§1).
using vid_t = std::int64_t;
/// Edge / arc id.
using eid_t = std::int64_t;
/// Edge weight.  The paper assumes positive weights, w(e) = 1 when unweighted.
using weight_t = double;

inline constexpr vid_t kInvalidVid = -1;
inline constexpr eid_t kInvalidEid = -1;

/// A single (possibly weighted) edge of the input interaction data.
struct Edge {
  vid_t u = kInvalidVid;
  vid_t v = kInvalidVid;
  weight_t w = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

}  // namespace snap
