#pragma once

#include <functional>
#include <vector>

#include "snap/debug/fwd.hpp"
#include "snap/ds/treap.hpp"
#include "snap/graph/types.hpp"

namespace snap {

class CSRGraph;

namespace stream {
class StreamingGraph;
}  // namespace stream

/// Dynamic graph with the degree-hybrid adjacency layout of §3 ("Data
/// Representation"): small-world degree distributions are heavily skewed, so
/// adjacencies of the many low-degree vertices live in simple unsorted
/// resizable arrays, while adjacencies of the few high-degree vertices are
/// promoted to treaps, which support fast insertion, deletion and search.
///
/// The structure is unweighted and stores both arcs for undirected graphs.
class DynamicGraph {
 public:
  /// `promote_threshold` — degree at which a vertex's adjacency is migrated
  /// from the flat array to a treap.
  explicit DynamicGraph(vid_t n = 0, bool directed = false,
                        eid_t promote_threshold = 128);

  [[nodiscard]] vid_t num_vertices() const {
    return static_cast<vid_t>(flat_.size());
  }
  [[nodiscard]] eid_t num_edges() const { return m_; }
  [[nodiscard]] bool directed() const { return directed_; }

  /// Append a fresh isolated vertex; returns its id.
  vid_t add_vertex();

  /// Grow to at least n vertices (no-op if already that large).
  void ensure_vertices(vid_t n);

  /// Insert edge (u, v); returns false if it already exists.
  bool insert_edge(vid_t u, vid_t v);

  /// Delete edge (u, v); returns false if absent.
  bool delete_edge(vid_t u, vid_t v);

  [[nodiscard]] bool has_edge(vid_t u, vid_t v) const;

  [[nodiscard]] eid_t degree(vid_t v) const;

  /// True if v's adjacency currently lives in a treap.
  [[nodiscard]] bool is_promoted(vid_t v) const { return !treap_[v].empty(); }

  /// Visit every neighbor of v.  Template form: the visitor inlines into the
  /// adjacency walk (flat array or treap), which is what the streaming
  /// observers' and to_csr's hot loops want.
  template <typename Fn>
  void for_each_neighbor(vid_t v, Fn&& fn) const {
    const auto s = static_cast<std::size_t>(v);
    if (!treap_[s].empty()) {
      treap_[s].for_each([&fn](std::int64_t k) { fn(static_cast<vid_t>(k)); });
    } else {
      for (vid_t u : flat_[s]) fn(u);
    }
  }

  /// ABI-friendly non-template overload (kept for existing out-of-line
  /// callers; lambdas resolve to the template above).
  void for_each_neighbor(vid_t v,
                         const std::function<void(vid_t)>& fn)  // lint:allow(std-function)
      const;

  /// Snapshot to the static CSR representation (sorted adjacency).  Edge
  /// extraction is parallel (per-vertex counts + prefix sum); the result is
  /// identical at every thread count.
  [[nodiscard]] CSRGraph to_csr() const;

  /// Load all edges of a CSR graph (must share directedness).
  static DynamicGraph from_csr(const CSRGraph& g, eid_t promote_threshold = 128);

 private:
  // The streaming engine applies canonicalized batches arc-by-arc, with every
  // vertex's adjacency owned by exactly one thread; it needs the arc
  // primitives and fixes up m_ itself.
  friend class stream::StreamingGraph;
  // Validators (and their mutation tests) read the raw adjacency state.
  friend struct debug::Access;

  bool directed_;
  eid_t promote_threshold_;
  eid_t m_ = 0;
  // Per vertex: flat adjacency until promoted, then the treap owns it.
  std::vector<std::vector<vid_t>> flat_;
  std::vector<Treap> treap_;

  bool insert_arc(vid_t u, vid_t v);
  bool delete_arc(vid_t u, vid_t v);
  bool has_arc(vid_t u, vid_t v) const;
};

}  // namespace snap
