#include "snap/graph/csr_graph.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

#include "snap/debug/check.hpp"
#include "snap/debug/validate.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

namespace {

/// Inputs below this many edges build serially: the parallel pipeline's
/// fork/join and scratch allocations cost more than the build itself.
constexpr std::size_t kParallelBuildCutoff = 1 << 15;

/// Total-order edge comparator used by dedupe on BOTH build paths.  Keying
/// on (u, v, w) — not just (u, v) — makes the sorted sequence unique, so
/// the edge a dedupe keeps (the smallest-weight one of each parallel group)
/// is the same at every thread count and for both pipelines.
inline bool edge_key_less(const Edge& a, const Edge& b) {
  if (a.u != b.u) return a.u < b.u;
  if (a.v != b.v) return a.v < b.v;
  return a.w < b.w;
}

inline bool same_endpoints(const Edge& a, const Edge& b) {
  return a.u == b.u && a.v == b.v;
}

[[noreturn]] void throw_out_of_range(std::size_t input_index) {
  throw std::out_of_range(
      "CSRGraph::from_edges: vertex id out of range at input edge " +
      std::to_string(input_index));
}

/// Serial validate/normalize/filter + dedupe — the reference semantics the
/// parallel path must reproduce exactly.
EdgeList prepare_edges_serial(vid_t n, const EdgeList& input, bool directed,
                              const BuildOptions& opts) {
  EdgeList edges;
  edges.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const Edge& e = input[i];
    if (e.u < 0 || e.u >= n || e.v < 0 || e.v >= n) throw_out_of_range(i);
    if (opts.remove_self_loops && e.u == e.v) continue;
    Edge c = e;
    if (!directed && c.u > c.v) std::swap(c.u, c.v);
    edges.push_back(c);
  }
  if (opts.dedupe) {
    std::sort(edges.begin(), edges.end(), edge_key_less);
    edges.erase(std::unique(edges.begin(), edges.end(), same_endpoints),
                edges.end());
  }
  return edges;
}

/// Parallel prepare: per-thread validate/normalize/filter buffers compacted
/// via a prefix sum over buffer sizes; out-of-range ids are aggregated (the
/// lowest offending input index) instead of thrown mid-loop, so the error a
/// caller sees does not depend on scheduling.  Dedupe is parallel_sort on
/// the (u, v, w) key followed by a keep-flag prefix-sum `unique` compaction.
EdgeList prepare_edges_parallel(vid_t n, const EdgeList& input, bool directed,
                                const BuildOptions& opts) {
  const std::size_t in_sz = input.size();
  const int nt = parallel::num_threads();
  constexpr std::size_t kNoError = std::numeric_limits<std::size_t>::max();

  std::vector<EdgeList> local(static_cast<std::size_t>(nt));
  std::vector<std::size_t> first_bad(static_cast<std::size_t>(nt), kNoError);
  parallel::run_team(nt, [&](int t) {
    const std::size_t lo = in_sz * static_cast<std::size_t>(t) /
                           static_cast<std::size_t>(nt);
    const std::size_t hi = in_sz * (static_cast<std::size_t>(t) + 1) /
                           static_cast<std::size_t>(nt);
    EdgeList& buf = local[static_cast<std::size_t>(t)];
    buf.reserve(hi - lo);
    std::size_t bad = kNoError;
    for (std::size_t i = lo; i < hi; ++i) {
      const Edge& e = input[i];
      if (e.u < 0 || e.u >= n || e.v < 0 || e.v >= n) {
        if (bad == kNoError) bad = i;
        continue;
      }
      if (opts.remove_self_loops && e.u == e.v) continue;
      Edge c = e;
      if (!directed && c.u > c.v) std::swap(c.u, c.v);
      buf.push_back(c);
    }
    first_bad[static_cast<std::size_t>(t)] = bad;
  });
  const std::size_t bad =
      *std::min_element(first_bad.begin(), first_bad.end());
  if (bad != kNoError) throw_out_of_range(bad);

  // Compact the per-thread buffers; block order == input order, so the
  // prepared list matches the serial pass element for element.
  std::vector<std::size_t> sizes(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t)
    sizes[static_cast<std::size_t>(t)] = local[static_cast<std::size_t>(t)].size();
  std::vector<std::size_t> offs;
  parallel::exclusive_prefix_sum(sizes, offs);
  EdgeList edges(offs[static_cast<std::size_t>(nt)]);
  parallel::run_team(nt, [&](int t) {
    const EdgeList& buf = local[static_cast<std::size_t>(t)];
    std::copy(buf.begin(), buf.end(),
              edges.begin() + static_cast<std::ptrdiff_t>(
                                  offs[static_cast<std::size_t>(t)]));
  });

  if (opts.dedupe && !edges.empty()) {
    parallel::parallel_sort(edges.begin(), edges.end(), edge_key_less);
    const std::size_t ne = edges.size();
    std::vector<std::size_t> keep(ne);
    parallel::parallel_for(ne, [&](std::size_t i) {
      keep[i] = (i == 0 || !same_endpoints(edges[i - 1], edges[i])) ? 1 : 0;
    });
    std::vector<std::size_t> kpos;
    parallel::exclusive_prefix_sum(keep, kpos);
    EdgeList out(kpos[ne]);
    parallel::parallel_for(ne, [&](std::size_t i) {
      if (keep[i]) out[kpos[i]] = edges[i];
    });
    edges.swap(out);
  }
  return edges;
}

/// Sort each vertex's adjacency slice by (neighbor, edge id).  The edge id
/// tiebreak makes the layout a pure function of the logical edge list —
/// arcs arriving in any placement order land identically — which is what
/// lets the parallel builder use unordered atomic-cursor placement and
/// still match the serial reference byte for byte.
void sort_adjacency_slices(vid_t n, const std::vector<eid_t>& offsets,
                           std::vector<vid_t>& adj,
                           std::vector<weight_t>& weights,
                           std::vector<eid_t>& arc_edge_ids) {
  parallel::parallel_for_dynamic(n, [&](vid_t v) {
    const eid_t lo = offsets[static_cast<std::size_t>(v)];
    const eid_t hi = offsets[static_cast<std::size_t>(v) + 1];
    const auto len = static_cast<std::size_t>(hi - lo);
    if (len < 2) return;
    std::vector<eid_t> idx(len);
    std::iota(idx.begin(), idx.end(), lo);
    std::sort(idx.begin(), idx.end(), [&](eid_t a, eid_t b) {
      const auto sa = static_cast<std::size_t>(a);
      const auto sb = static_cast<std::size_t>(b);
      if (adj[sa] != adj[sb]) return adj[sa] < adj[sb];
      return arc_edge_ids[sa] < arc_edge_ids[sb];
    });
    std::vector<vid_t> a2(len);
    std::vector<weight_t> w2(len);
    std::vector<eid_t> id2(len);
    for (std::size_t i = 0; i < len; ++i) {
      a2[i] = adj[idx[i]];
      w2[i] = weights[idx[i]];
      id2[i] = arc_edge_ids[idx[i]];
    }
    std::copy(a2.begin(), a2.end(),
              adj.begin() + static_cast<std::ptrdiff_t>(lo));
    std::copy(w2.begin(), w2.end(),
              weights.begin() + static_cast<std::ptrdiff_t>(lo));
    std::copy(id2.begin(), id2.end(),
              arc_edge_ids.begin() + static_cast<std::ptrdiff_t>(lo));
  });
}

}  // namespace

CSRGraph CSRGraph::from_edges(vid_t n, const EdgeList& input, bool directed,
                              const BuildOptions& opts) {
  const bool serial =
      opts.path == BuildPath::kSerial ||
      (opts.path == BuildPath::kAuto &&
       (input.size() < kParallelBuildCutoff || parallel::num_threads() <= 1));

  CSRGraph g;
  g.n_ = n;
  g.directed_ = directed;
  g.edge_endpoints_ = serial ? prepare_edges_serial(n, input, directed, opts)
                             : prepare_edges_parallel(n, input, directed, opts);
  g.m_ = static_cast<eid_t>(g.edge_endpoints_.size());
  const auto& edges = g.edge_endpoints_;
  [[maybe_unused]] const eid_t arcs = directed ? g.m_ : 2 * g.m_;
  g.offsets_.resize(static_cast<std::size_t>(n) + 1);

  if (serial) {
    g.weighted_ = std::any_of(edges.begin(), edges.end(),
                              [](const Edge& e) { return e.w != 1.0; });
    std::vector<eid_t> deg(static_cast<std::size_t>(n) + 1, 0);
    for (const Edge& e : edges) {
      ++deg[static_cast<std::size_t>(e.u)];
      if (!directed) ++deg[static_cast<std::size_t>(e.v)];
    }
    parallel::exclusive_prefix_sum(deg.data(), g.offsets_.data(),
                                   static_cast<std::size_t>(n));
    SNAP_DCHECK(g.offsets_[static_cast<std::size_t>(n)] == arcs,
                "serial degree prefix sum lost arcs: offsets[n]=",
                g.offsets_[static_cast<std::size_t>(n)], " expected ", arcs);

    g.adj_.resize(static_cast<std::size_t>(arcs));
    g.weights_.resize(static_cast<std::size_t>(arcs));
    g.arc_edge_ids_.resize(static_cast<std::size_t>(arcs));
    std::vector<eid_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (eid_t e = 0; e < g.m_; ++e) {
      const Edge& ed = edges[static_cast<std::size_t>(e)];
      eid_t a = cursor[static_cast<std::size_t>(ed.u)]++;
      g.adj_[static_cast<std::size_t>(a)] = ed.v;
      g.weights_[static_cast<std::size_t>(a)] = ed.w;
      g.arc_edge_ids_[static_cast<std::size_t>(a)] = e;
      if (!directed) {
        a = cursor[static_cast<std::size_t>(ed.v)]++;
        g.adj_[static_cast<std::size_t>(a)] = ed.u;
        g.weights_[static_cast<std::size_t>(a)] = ed.w;
        g.arc_edge_ids_[static_cast<std::size_t>(a)] = e;
      }
    }
  } else {
    // Per-thread degree histograms, with weighted-detection folded into the
    // same sweep (replacing the serial path's extra std::any_of pass).
    const int nt = parallel::num_threads();
    const eid_t m = g.m_;
    std::vector<std::vector<eid_t>> hist(static_cast<std::size_t>(nt));
    std::vector<unsigned char> wflag(static_cast<std::size_t>(nt), 0);
    parallel::run_team(nt, [&](int t) {
      auto& h = hist[static_cast<std::size_t>(t)];
      h.assign(static_cast<std::size_t>(n), 0);
      const eid_t lo = m * t / nt;
      const eid_t hi = m * (t + 1) / nt;
      bool weighted = false;
      for (eid_t e = lo; e < hi; ++e) {
        const Edge& ed = edges[static_cast<std::size_t>(e)];
        ++h[static_cast<std::size_t>(ed.u)];
        if (!directed) ++h[static_cast<std::size_t>(ed.v)];
        weighted |= (ed.w != 1.0);
      }
      wflag[static_cast<std::size_t>(t)] = weighted ? 1 : 0;
    });
    g.weighted_ = std::any_of(wflag.begin(), wflag.end(),
                              [](unsigned char f) { return f != 0; });

    // Reduce the histograms into one degree array (threads own disjoint
    // vertex ranges of the sum) and prefix-sum into offsets.
    std::vector<eid_t> deg(static_cast<std::size_t>(n), 0);
    parallel::parallel_for(n, [&](vid_t v) {
      eid_t d = 0;
      for (int t = 0; t < nt; ++t) d += hist[static_cast<std::size_t>(t)]
                                           [static_cast<std::size_t>(v)];
      deg[static_cast<std::size_t>(v)] = d;
    });
    parallel::exclusive_prefix_sum(deg.data(), g.offsets_.data(),
                                   static_cast<std::size_t>(n));
    SNAP_DCHECK(g.offsets_[static_cast<std::size_t>(n)] == arcs,
                "histogram reduction lost arcs: offsets[n]=",
                g.offsets_[static_cast<std::size_t>(n)], " expected ", arcs);

    // Atomic-cursor placement: arcs land in scheduling order, which the
    // (neighbor, edge id) adjacency sort below canonicalizes.
    g.adj_.resize(static_cast<std::size_t>(arcs));
    g.weights_.resize(static_cast<std::size_t>(arcs));
    g.arc_edge_ids_.resize(static_cast<std::size_t>(arcs));
    std::vector<std::atomic<eid_t>> cursor(static_cast<std::size_t>(n));
    parallel::parallel_for(n, [&](vid_t v) {
      cursor[static_cast<std::size_t>(v)].store(
          g.offsets_[static_cast<std::size_t>(v)], std::memory_order_relaxed);
    });
    auto place = [&](vid_t from, vid_t to, weight_t w, eid_t e) {
      const eid_t a = cursor[static_cast<std::size_t>(from)].fetch_add(
          1, std::memory_order_relaxed);
      g.adj_[static_cast<std::size_t>(a)] = to;
      g.weights_[static_cast<std::size_t>(a)] = w;
      g.arc_edge_ids_[static_cast<std::size_t>(a)] = e;
    };
    parallel::run_team(nt, [&](int t) {
      const eid_t lo = m * t / nt;
      const eid_t hi = m * (t + 1) / nt;
      for (eid_t e = lo; e < hi; ++e) {
        const Edge& ed = edges[static_cast<std::size_t>(e)];
        place(ed.u, ed.v, ed.w, e);
        if (!directed) place(ed.v, ed.u, ed.w, e);
      }
    });
  }

  if (opts.sort_adjacency) {
    sort_adjacency_slices(n, g.offsets_, g.adj_, g.weights_, g.arc_edge_ids_);
    g.sorted_ = true;
  }
  SNAP_VALIDATE(g);
  return g;
}

CSRGraph CSRGraph::from_parts(vid_t n, eid_t m, bool directed, bool weighted,
                              bool sorted, std::vector<eid_t> offsets,
                              std::vector<vid_t> adj,
                              std::vector<weight_t> weights,
                              std::vector<eid_t> arc_edge_ids,
                              EdgeList edge_endpoints) {
  SNAP_ASSERT(n >= 0 && m >= 0, "from_parts: negative n=", n, " or m=", m);
  SNAP_ASSERT(offsets.size() == static_cast<std::size_t>(n) + 1,
              "from_parts: offsets size ", offsets.size(), " != n+1 = ",
              n + 1);
  const auto arcs = static_cast<std::size_t>(directed ? m : 2 * m);
  SNAP_ASSERT(adj.size() == arcs && weights.size() == arcs &&
                  arc_edge_ids.size() == arcs,
              "from_parts: arc array sizes (", adj.size(), ", ",
              weights.size(), ", ", arc_edge_ids.size(), ") != ", arcs);
  SNAP_ASSERT(edge_endpoints.size() == static_cast<std::size_t>(m),
              "from_parts: edge list size ", edge_endpoints.size(),
              " != m = ", m);
  SNAP_ASSERT(n == 0 || (offsets.front() == 0 &&
                         offsets.back() == static_cast<eid_t>(arcs)),
              "from_parts: offsets do not cover the adjacency");
  CSRGraph g;
  g.n_ = n;
  g.m_ = m;
  g.directed_ = directed;
  g.weighted_ = weighted;
  g.sorted_ = sorted;
  g.offsets_ = std::move(offsets);
  g.adj_ = std::move(adj);
  g.weights_ = std::move(weights);
  g.arc_edge_ids_ = std::move(arc_edge_ids);
  g.edge_endpoints_ = std::move(edge_endpoints);
  SNAP_VALIDATE(g);
  return g;
}

bool CSRGraph::has_edge(vid_t u, vid_t v) const {
  const auto nb = neighbors(u);
  if (sorted_) return std::binary_search(nb.begin(), nb.end(), v);
  return std::find(nb.begin(), nb.end(), v) != nb.end();
}

eid_t CSRGraph::max_degree() const {
  return parallel::parallel_reduce_max<eid_t>(
      n_, [this](vid_t v) { return degree(v); });
}

weight_t CSRGraph::total_edge_weight() const {
  return parallel::parallel_reduce_sum<weight_t>(
      m_, [this](eid_t e) { return edge_endpoints_[static_cast<std::size_t>(e)].w; });
}

CSRGraph CSRGraph::as_undirected() const {
  return from_edges(n_, edge_endpoints_, /*directed=*/false);
}

}  // namespace snap
