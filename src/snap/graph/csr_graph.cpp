#include "snap/graph/csr_graph.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "snap/util/parallel.hpp"

namespace snap {

namespace {

/// Normalize, optionally dedupe, and drop self loops.  For undirected graphs
/// edges are canonicalized to u <= v before deduping.
EdgeList prepare_edges(vid_t n, const EdgeList& input, bool directed,
                       const BuildOptions& opts) {
  EdgeList edges;
  edges.reserve(input.size());
  for (const Edge& e : input) {
    if (e.u < 0 || e.u >= n || e.v < 0 || e.v >= n)
      throw std::out_of_range("CSRGraph::from_edges: vertex id out of range");
    if (opts.remove_self_loops && e.u == e.v) continue;
    Edge c = e;
    if (!directed && c.u > c.v) std::swap(c.u, c.v);
    edges.push_back(c);
  }
  if (opts.dedupe) {
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.u == b.u && a.v == b.v;
                            }),
                edges.end());
  }
  return edges;
}

}  // namespace

CSRGraph CSRGraph::from_edges(vid_t n, const EdgeList& input, bool directed,
                              const BuildOptions& opts) {
  CSRGraph g;
  g.n_ = n;
  g.directed_ = directed;
  g.edge_endpoints_ = prepare_edges(n, input, directed, opts);
  g.m_ = static_cast<eid_t>(g.edge_endpoints_.size());
  g.weighted_ = std::any_of(g.edge_endpoints_.begin(), g.edge_endpoints_.end(),
                            [](const Edge& e) { return e.w != 1.0; });

  [[maybe_unused]] const eid_t arcs = directed ? g.m_ : 2 * g.m_;
  std::vector<eid_t> deg(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : g.edge_endpoints_) {
    ++deg[e.u];
    if (!directed) ++deg[e.v];
  }
  g.offsets_.resize(static_cast<std::size_t>(n) + 1);
  parallel::exclusive_prefix_sum(deg.data(), g.offsets_.data(),
                                 static_cast<std::size_t>(n));
  assert(g.offsets_[n] == arcs);

  g.adj_.resize(arcs);
  g.weights_.resize(arcs);
  g.arc_edge_ids_.resize(arcs);
  std::vector<eid_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (eid_t e = 0; e < g.m_; ++e) {
    const Edge& ed = g.edge_endpoints_[e];
    eid_t a = cursor[ed.u]++;
    g.adj_[a] = ed.v;
    g.weights_[a] = ed.w;
    g.arc_edge_ids_[a] = e;
    if (!directed) {
      a = cursor[ed.v]++;
      g.adj_[a] = ed.u;
      g.weights_[a] = ed.w;
      g.arc_edge_ids_[a] = e;
    }
  }

  if (opts.sort_adjacency) {
    parallel::parallel_for_dynamic(n, [&](vid_t v) {
      const eid_t lo = g.offsets_[v], hi = g.offsets_[v + 1];
      const auto len = static_cast<std::size_t>(hi - lo);
      if (len < 2) return;
      std::vector<eid_t> idx(len);
      std::iota(idx.begin(), idx.end(), lo);
      std::sort(idx.begin(), idx.end(),
                [&](eid_t a, eid_t b) { return g.adj_[a] < g.adj_[b]; });
      std::vector<vid_t> a2(len);
      std::vector<weight_t> w2(len);
      std::vector<eid_t> id2(len);
      for (std::size_t i = 0; i < len; ++i) {
        a2[i] = g.adj_[idx[i]];
        w2[i] = g.weights_[idx[i]];
        id2[i] = g.arc_edge_ids_[idx[i]];
      }
      std::copy(a2.begin(), a2.end(), g.adj_.begin() + lo);
      std::copy(w2.begin(), w2.end(), g.weights_.begin() + lo);
      std::copy(id2.begin(), id2.end(), g.arc_edge_ids_.begin() + lo);
    });
    g.sorted_ = true;
  }
  return g;
}

bool CSRGraph::has_edge(vid_t u, vid_t v) const {
  const auto nb = neighbors(u);
  if (sorted_) return std::binary_search(nb.begin(), nb.end(), v);
  return std::find(nb.begin(), nb.end(), v) != nb.end();
}

eid_t CSRGraph::max_degree() const {
  eid_t best = 0;
  for (vid_t v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

weight_t CSRGraph::total_edge_weight() const {
  weight_t total = 0;
  for (const Edge& e : edge_endpoints_) total += e.w;
  return total;
}

CSRGraph CSRGraph::as_undirected() const {
  return from_edges(n_, edge_endpoints_, /*directed=*/false);
}

}  // namespace snap
