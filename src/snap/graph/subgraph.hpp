#pragma once

#include <vector>

#include "snap/graph/csr_graph.hpp"
#include "snap/graph/types.hpp"

namespace snap {

/// An induced subgraph together with the vertex-id mappings back to the
/// parent graph.  Used by the per-component (coarse-grained) phases of pBD
/// and pLA, and by the partitioner.
struct Subgraph {
  CSRGraph graph;
  std::vector<vid_t> to_parent;    ///< new id -> parent id
  std::vector<vid_t> from_parent;  ///< parent id -> new id, or kInvalidVid
};

/// Extract the subgraph induced by `vertices` (parent-graph ids, no
/// duplicates).  Preserves weights; drops edges leaving the set.
Subgraph induced_subgraph(const CSRGraph& g, const std::vector<vid_t>& vertices);

/// Split a graph into one induced subgraph per component label.
/// `labels[v]` must be a dense component id in [0, num_components).
std::vector<Subgraph> split_by_labels(const CSRGraph& g,
                                      const std::vector<vid_t>& labels,
                                      vid_t num_components);

}  // namespace snap
