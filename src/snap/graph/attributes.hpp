#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "snap/graph/types.hpp"

namespace snap {

/// Typed attribute columns over vertices or edges — the "vertices and edges
/// can further be typed, classified, or assigned attributes based on
/// relational information" capability of §1.  A table is a set of named,
/// homogeneously-typed columns, all of the same length (the vertex count or
/// the logical edge count of the graph it annotates).
///
/// Columns are dense vectors, so bulk analytical passes get contiguous
/// `std::span` access; per-item get/set is for convenience paths.
class AttributeTable {
 public:
  enum class Type { kInt, kReal, kText };

  AttributeTable() = default;
  explicit AttributeTable(std::size_t size) : size_(size) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Grow/shrink all columns (new slots take the column's default value).
  void resize(std::size_t size);

  /// Create a column; throws std::invalid_argument if the name is taken.
  void add_int_column(const std::string& name, std::int64_t dflt = 0);
  void add_real_column(const std::string& name, double dflt = 0);
  void add_text_column(const std::string& name, const std::string& dflt = "");

  /// Drop a column; returns false if absent.
  bool remove_column(const std::string& name);

  [[nodiscard]] bool has_column(const std::string& name) const;
  [[nodiscard]] Type type_of(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> column_names() const;

  // Contiguous access (throws on missing name / type mismatch).
  [[nodiscard]] std::span<std::int64_t> ints(const std::string& name);
  [[nodiscard]] std::span<const std::int64_t> ints(const std::string& name) const;
  [[nodiscard]] std::span<double> reals(const std::string& name);
  [[nodiscard]] std::span<const double> reals(const std::string& name) const;
  [[nodiscard]] std::vector<std::string>& texts(const std::string& name);
  [[nodiscard]] const std::vector<std::string>& texts(
      const std::string& name) const;

  /// Items whose int column equals `value` (a classification filter —
  /// e.g. select vertices of a given type before an induced-subgraph pass).
  [[nodiscard]] std::vector<vid_t> select_int_eq(const std::string& name,
                                                 std::int64_t value) const;

 private:
  struct IntCol {
    std::vector<std::int64_t> data;
    std::int64_t dflt;
  };
  struct RealCol {
    std::vector<double> data;
    double dflt;
  };
  struct TextCol {
    std::vector<std::string> data;
    std::string dflt;
  };
  using Column = std::variant<IntCol, RealCol, TextCol>;

  void check_new(const std::string& name) const;
  [[nodiscard]] const Column& column(const std::string& name) const;
  [[nodiscard]] Column& column(const std::string& name);

  std::size_t size_ = 0;
  std::map<std::string, Column> columns_;
};

}  // namespace snap
