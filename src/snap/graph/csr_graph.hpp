#pragma once

#include <span>
#include <vector>

#include "snap/debug/fwd.hpp"
#include "snap/graph/types.hpp"

namespace snap {

/// Which construction pipeline `CSRGraph::from_edges` runs.  `kAuto` picks
/// the parallel pipeline for inputs large enough to amortize the fork/join
/// cost and the serial reference otherwise; the explicit values exist for
/// the differential build tests, which cross-check the two paths.
enum class BuildPath { kAuto, kSerial, kParallel };

/// Options controlling CSR construction from an edge list.
struct BuildOptions {
  bool remove_self_loops = true;
  bool dedupe = true;           ///< collapse parallel edges (smallest weight wins)
  bool sort_adjacency = true;   ///< sort each vertex's neighbors ascending
  BuildPath path = BuildPath::kAuto;
};

/// Static graph in Compressed Sparse Row form — the primary SNAP
/// representation (§3: "cache-friendly adjacency arrays").
///
/// Undirected graphs store both arcs of every edge; `num_edges()` is the
/// logical edge count, `num_arcs()` the stored adjacency length.  Every arc
/// carries the id of the logical edge it belongs to (`arc_edge_id`), which is
/// what lets the divisive community algorithms (GN, pBD) mark edges deleted
/// with an m-bit mask instead of rebuilding the graph.
class CSRGraph {
 public:
  CSRGraph() = default;

  /// Build from an edge list.  Vertex ids must lie in [0, n).
  ///
  /// Large inputs run a fully parallel pipeline (per-thread prepare buffers
  /// + prefix-sum compaction, sample-sort dedupe, per-thread degree
  /// histograms, atomic-cursor placement); small inputs and
  /// `BuildPath::kSerial` run the serial reference builder.  Both paths
  /// produce byte-identical arrays (offsets/adj/weights/arc_edge_ids) at
  /// every thread count when `sort_adjacency` is on: dedupe orders edges by
  /// the total key (u, v, w) and the adjacency sort keys on
  /// (neighbor, edge id), so no step depends on scheduling.
  static CSRGraph from_edges(vid_t n, const EdgeList& edges, bool directed,
                             const BuildOptions& opts = {});

  /// Adopt prebuilt CSR arrays without any normalization, dedupe, or sort —
  /// the O(read) path behind the binary snapshot cache (io::binary_io) and
  /// the direct relabeling transforms.  The caller asserts the arrays are a
  /// valid CSR image exactly as `from_edges` would have produced one:
  /// offsets of size n+1 covering adj/weights/arc_edge_ids, canonical
  /// undirected endpoints (u <= v), arc symmetry, and — when `sorted` —
  /// rows ordered by (neighbor, edge id).  Cheap size invariants are
  /// asserted always; the full O(n+m) structural validator runs at
  /// SNAP_CHECK_LEVEL=2.
  static CSRGraph from_parts(vid_t n, eid_t m, bool directed, bool weighted,
                             bool sorted, std::vector<eid_t> offsets,
                             std::vector<vid_t> adj,
                             std::vector<weight_t> weights,
                             std::vector<eid_t> arc_edge_ids,
                             EdgeList edge_endpoints);

  [[nodiscard]] vid_t num_vertices() const { return n_; }
  [[nodiscard]] eid_t num_edges() const { return m_; }
  [[nodiscard]] eid_t num_arcs() const {
    return static_cast<eid_t>(adj_.size());
  }
  [[nodiscard]] bool directed() const { return directed_; }
  [[nodiscard]] bool weighted() const { return weighted_; }

  [[nodiscard]] eid_t degree(vid_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Out-neighbors of v (all neighbors for undirected graphs).
  [[nodiscard]] std::span<const vid_t> neighbors(vid_t v) const {
    return {adj_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }

  /// Weights aligned with neighbors(v).  All 1.0 for unweighted graphs.
  [[nodiscard]] std::span<const weight_t> weights(vid_t v) const {
    return {weights_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }

  /// Logical edge ids aligned with neighbors(v); for an undirected graph the
  /// two arcs of one edge share an id in [0, num_edges()).
  [[nodiscard]] std::span<const eid_t> edge_ids(vid_t v) const {
    return {arc_edge_ids_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }

  /// Arc range [offsets(v), offsets(v+1)) into the flat arrays.
  [[nodiscard]] eid_t arc_begin(vid_t v) const { return offsets_[v]; }
  [[nodiscard]] eid_t arc_end(vid_t v) const { return offsets_[v + 1]; }
  [[nodiscard]] vid_t arc_target(eid_t a) const { return adj_[a]; }
  [[nodiscard]] weight_t arc_weight(eid_t a) const { return weights_[a]; }
  [[nodiscard]] eid_t arc_edge_id(eid_t a) const { return arc_edge_ids_[a]; }

  /// Endpoints of logical edge e (u < v for undirected graphs).
  [[nodiscard]] Edge edge(eid_t e) const { return edge_endpoints_[e]; }

  /// True if u has v in its adjacency (binary search when sorted).
  [[nodiscard]] bool has_edge(vid_t u, vid_t v) const;

  [[nodiscard]] eid_t max_degree() const;

  /// Sum of w(e) over logical edges.
  [[nodiscard]] weight_t total_edge_weight() const;

  /// The same edges with direction dropped (u<v, deduped) — §5: "we ignore
  /// edge directivity in the community detection algorithms".
  [[nodiscard]] CSRGraph as_undirected() const;

  /// All logical edges (endpoints + weight).
  [[nodiscard]] const EdgeList& edges() const { return edge_endpoints_; }

  /// Read-only views of the flat CSR arrays, for consumers that stream the
  /// whole image (binary snapshots, the compressed/partitioned
  /// representations) rather than walking per-vertex spans.
  [[nodiscard]] std::span<const eid_t> row_offsets() const {
    return offsets_;
  }
  [[nodiscard]] std::span<const vid_t> adjacency() const { return adj_; }
  [[nodiscard]] std::span<const weight_t> arc_weights() const {
    return weights_;
  }
  [[nodiscard]] std::span<const eid_t> arc_edge_id_array() const {
    return arc_edge_ids_;
  }
  /// True if every row is sorted by (neighbor, edge id).
  [[nodiscard]] bool adjacency_sorted() const { return sorted_; }

 private:
  // Validators (and their mutation tests) read the raw arrays directly.
  friend struct debug::Access;

  vid_t n_ = 0;
  eid_t m_ = 0;
  bool directed_ = false;
  bool weighted_ = false;
  bool sorted_ = false;
  std::vector<eid_t> offsets_;        // n+1
  std::vector<vid_t> adj_;            // arcs
  std::vector<weight_t> weights_;     // per arc
  std::vector<eid_t> arc_edge_ids_;   // per arc -> logical edge id
  EdgeList edge_endpoints_;           // per logical edge
};

}  // namespace snap
