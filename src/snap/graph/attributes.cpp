#include "snap/graph/attributes.hpp"

#include <stdexcept>

namespace snap {

void AttributeTable::resize(std::size_t size) {
  size_ = size;
  for (auto& [name, col] : columns_) {
    std::visit([size](auto& c) { c.data.resize(size, c.dflt); }, col);
  }
}

void AttributeTable::check_new(const std::string& name) const {
  if (columns_.count(name))
    throw std::invalid_argument("attribute column exists: " + name);
}

void AttributeTable::add_int_column(const std::string& name,
                                    std::int64_t dflt) {
  check_new(name);
  columns_.emplace(name,
                   IntCol{std::vector<std::int64_t>(size_, dflt), dflt});
}

void AttributeTable::add_real_column(const std::string& name, double dflt) {
  check_new(name);
  columns_.emplace(name, RealCol{std::vector<double>(size_, dflt), dflt});
}

void AttributeTable::add_text_column(const std::string& name,
                                     const std::string& dflt) {
  check_new(name);
  columns_.emplace(name, TextCol{std::vector<std::string>(size_, dflt), dflt});
}

bool AttributeTable::remove_column(const std::string& name) {
  return columns_.erase(name) > 0;
}

bool AttributeTable::has_column(const std::string& name) const {
  return columns_.count(name) > 0;
}

const AttributeTable::Column& AttributeTable::column(
    const std::string& name) const {
  auto it = columns_.find(name);
  if (it == columns_.end())
    throw std::out_of_range("no attribute column: " + name);
  return it->second;
}

AttributeTable::Column& AttributeTable::column(const std::string& name) {
  auto it = columns_.find(name);
  if (it == columns_.end())
    throw std::out_of_range("no attribute column: " + name);
  return it->second;
}

AttributeTable::Type AttributeTable::type_of(const std::string& name) const {
  const Column& c = column(name);
  if (std::holds_alternative<IntCol>(c)) return Type::kInt;
  if (std::holds_alternative<RealCol>(c)) return Type::kReal;
  return Type::kText;
}

std::vector<std::string> AttributeTable::column_names() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& [name, col] : columns_) names.push_back(name);
  return names;
}

namespace {
[[noreturn]] void type_error(const std::string& name) {
  throw std::invalid_argument("attribute column type mismatch: " + name);
}
}  // namespace

std::span<std::int64_t> AttributeTable::ints(const std::string& name) {
  auto* c = std::get_if<IntCol>(&column(name));
  if (!c) type_error(name);
  return c->data;
}

std::span<const std::int64_t> AttributeTable::ints(
    const std::string& name) const {
  const auto* c = std::get_if<IntCol>(&column(name));
  if (!c) type_error(name);
  return c->data;
}

std::span<double> AttributeTable::reals(const std::string& name) {
  auto* c = std::get_if<RealCol>(&column(name));
  if (!c) type_error(name);
  return c->data;
}

std::span<const double> AttributeTable::reals(const std::string& name) const {
  const auto* c = std::get_if<RealCol>(&column(name));
  if (!c) type_error(name);
  return c->data;
}

std::vector<std::string>& AttributeTable::texts(const std::string& name) {
  auto* c = std::get_if<TextCol>(&column(name));
  if (!c) type_error(name);
  return c->data;
}

const std::vector<std::string>& AttributeTable::texts(
    const std::string& name) const {
  const auto* c = std::get_if<TextCol>(&column(name));
  if (!c) type_error(name);
  return c->data;
}

std::vector<vid_t> AttributeTable::select_int_eq(const std::string& name,
                                                 std::int64_t value) const {
  const auto col = ints(name);
  std::vector<vid_t> out;
  for (std::size_t i = 0; i < col.size(); ++i)
    if (col[i] == value) out.push_back(static_cast<vid_t>(i));
  return out;
}

}  // namespace snap
