#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// A relabeled copy of a graph plus the permutation that produced it.
struct ReorderedGraph {
  CSRGraph graph;
  std::vector<vid_t> new_to_old;
  std::vector<vid_t> old_to_new;
};

/// Relabel vertices by descending degree.  Small-world degree distributions
/// are heavily skewed, so clustering the hubs at the front of the CSR
/// arrays improves cache locality for traversal kernels (§3's
/// "cache-friendly adjacency arrays" taken one step further).
ReorderedGraph relabel_by_degree(const CSRGraph& g);

/// Relabel vertices in BFS visitation order from `source` (unreached
/// vertices keep relative order at the end).  A light-weight
/// Cuthill–McKee-style bandwidth reduction for near-Euclidean graphs.
ReorderedGraph relabel_by_bfs(const CSRGraph& g, vid_t source = 0);

/// Apply an arbitrary permutation (`new_to_old[i]` = old id of new vertex i).
ReorderedGraph relabel(const CSRGraph& g,
                       const std::vector<vid_t>& new_to_old);

}  // namespace snap
