#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// A relabeled copy of a graph plus the permutation that produced it.
struct ReorderedGraph {
  CSRGraph graph;
  std::vector<vid_t> new_to_old;
  std::vector<vid_t> old_to_new;
};

/// Relabel vertices by descending degree (ties by ascending old id, so the
/// order is a total function of the graph and identical at every thread
/// count).  Small-world degree distributions are heavily skewed, so
/// clustering the hubs at the front of the CSR arrays improves cache
/// locality for traversal kernels (§3's "cache-friendly adjacency arrays"
/// taken one step further).  The sort runs on parallel::parallel_sort and
/// the permutation apply is parallel.
ReorderedGraph relabel_by_degree(const CSRGraph& g);

/// Relabel vertices in BFS visitation order from `source` (stable by
/// (distance, old id); unreached vertices keep relative order at the end).
/// A light-weight Cuthill–McKee-style bandwidth reduction for
/// near-Euclidean graphs.
ReorderedGraph relabel_by_bfs(const CSRGraph& g, vid_t source = 0);

/// Knobs for the hub-clustered ordering.
struct HubClusterParams {
  /// Fraction of vertices (highest degree first) pinned to the front of the
  /// array as the hub block.
  double hub_fraction = 0.02;
  /// BFS root for the tail ordering; kInvalidVid = the top-degree vertex.
  vid_t source = kInvalidVid;
};

/// Hub-clustered ordering: the top `hub_fraction` of vertices by degree
/// form a dense block at the front (descending degree), and the tail is
/// laid out in BFS visitation order so that vertices expanded together sit
/// together.  Combines the payoff of the degree sort on power-law graphs
/// (hot hub rows share cache lines) with the bandwidth reduction of the
/// BFS order on the low-degree periphery.
ReorderedGraph relabel_by_hub_cluster(const CSRGraph& g,
                                      const HubClusterParams& params = {});

/// Apply an arbitrary permutation (`new_to_old[i]` = old id of new vertex
/// i).  Preserves the edge multiset exactly — self loops and parallel
/// edges survive, and logical edge e of the output is logical edge e of
/// the input with mapped endpoints — so relabeling commutes with the
/// edge-mask machinery of the divisive community algorithms.
ReorderedGraph relabel(const CSRGraph& g,
                       const std::vector<vid_t>& new_to_old);

}  // namespace snap
