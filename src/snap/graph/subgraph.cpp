#include "snap/graph/subgraph.hpp"

namespace snap {

Subgraph induced_subgraph(const CSRGraph& g,
                          const std::vector<vid_t>& vertices) {
  Subgraph s;
  s.to_parent = vertices;
  s.from_parent.assign(static_cast<std::size_t>(g.num_vertices()),
                       kInvalidVid);
  for (std::size_t i = 0; i < vertices.size(); ++i)
    s.from_parent[vertices[i]] = static_cast<vid_t>(i);

  EdgeList edges;
  for (vid_t nu = 0; nu < static_cast<vid_t>(vertices.size()); ++nu) {
    const vid_t pu = vertices[nu];
    const auto nb = g.neighbors(pu);
    const auto ws = g.weights(pu);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const vid_t nv = s.from_parent[nb[i]];
      if (nv == kInvalidVid) continue;
      if (!g.directed() && nv < nu) continue;  // emit each edge once
      edges.push_back({nu, nv, ws[i]});
    }
  }
  s.graph = CSRGraph::from_edges(static_cast<vid_t>(vertices.size()), edges,
                                 g.directed());
  return s;
}

std::vector<Subgraph> split_by_labels(const CSRGraph& g,
                                      const std::vector<vid_t>& labels,
                                      vid_t num_components) {
  std::vector<std::vector<vid_t>> members(
      static_cast<std::size_t>(num_components));
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    members[labels[v]].push_back(v);
  std::vector<Subgraph> out;
  out.reserve(members.size());
  for (auto& ms : members) out.push_back(induced_subgraph(g, ms));
  return out;
}

}  // namespace snap
