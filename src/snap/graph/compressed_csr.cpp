#include "snap/graph/compressed_csr.hpp"

#include <atomic>
#include <cstddef>

#include "snap/util/parallel.hpp"

namespace snap {

CompressedCSR CompressedCSR::from_graph(const CSRGraph& g) {
  CompressedCSR c;
  c.n_ = g.num_vertices();
  c.arcs_ = g.num_arcs();
  c.directed_ = g.directed();
  const auto n = static_cast<std::size_t>(c.n_);

  // Pass 1: exact byte length of every vertex's block.
  std::vector<std::uint64_t> lengths(n, 0);
  parallel::parallel_for_dynamic(c.n_, [&](vid_t v) {
    const auto nb = g.neighbors(v);
    std::uint64_t len = detail::varint_length(nb.size());
    std::int64_t prev = v;
    for (const vid_t w : nb) {
      len += detail::varint_length(detail::zigzag_encode(w - prev));
      prev = w;
    }
    lengths[static_cast<std::size_t>(v)] = len;
  });
  parallel::exclusive_prefix_sum(lengths, c.offsets_);

  // Pass 2: encode each block into its disjoint slice — output position is
  // precomputed, so the buffer is byte-identical at every thread count.
  c.bytes_.resize(static_cast<std::size_t>(c.offsets_[n]));
  parallel::parallel_for_dynamic(c.n_, [&](vid_t v) {
    const auto nb = g.neighbors(v);
    std::uint8_t* out =
        c.bytes_.data() + c.offsets_[static_cast<std::size_t>(v)];
    out = detail::varint_write(out, nb.size());
    std::int64_t prev = v;
    for (const vid_t w : nb) {
      out = detail::varint_write(out, detail::zigzag_encode(w - prev));
      prev = w;
    }
    SNAP_DCHECK(out == c.bytes_.data() +
                           c.offsets_[static_cast<std::size_t>(v) + 1],
                "CompressedCSR: encoded length of vertex ", v,
                " disagrees with pass-1 length");
  });
  return c;
}

BFSResult bfs_compressed(const CompressedCSR& g, vid_t source) {
  const vid_t n = g.num_vertices();
  SNAP_ASSERT(source >= 0 && source < n, "bfs_compressed: source ", source,
              " out of [0, ", n, ")");
  BFSResult r;
  r.parent.assign(static_cast<std::size_t>(n), kInvalidVid);
  r.dist.assign(static_cast<std::size_t>(n), -1);
  std::vector<std::atomic<std::int64_t>> dist(static_cast<std::size_t>(n));
  parallel::parallel_for(n, [&](vid_t v) {
    dist[static_cast<std::size_t>(v)].store(-1, std::memory_order_relaxed);
  });
  dist[static_cast<std::size_t>(source)].store(0, std::memory_order_relaxed);
  r.parent[static_cast<std::size_t>(source)] = source;

  std::vector<vid_t> frontier{source};
  std::int64_t level = 0;
  vid_t visited = 1;
  const int nt = parallel::num_threads();

  while (!frontier.empty()) {
    std::vector<std::vector<vid_t>> next(static_cast<std::size_t>(nt));
    // Dense levels flip to bottom-up pull: every unvisited vertex scans its
    // (compressed) neighbor list for a previous-level vertex — the
    // bandwidth-bound sweep the varint encoding shrinks.
    const bool pull = frontier.size() > static_cast<std::size_t>(n / 16);
    if (pull) {
      parallel::run_team(nt, [&](int t) {
        const vid_t lo = n * t / nt;
        const vid_t hi = n * (t + 1) / nt;
        auto& out = next[static_cast<std::size_t>(t)];
        for (vid_t v = lo; v < hi; ++v) {
          if (dist[static_cast<std::size_t>(v)].load(
                  std::memory_order_relaxed) != -1)
            continue;
          g.for_each_neighbor_while(v, [&](vid_t w) {
            if (dist[static_cast<std::size_t>(w)].load(
                    std::memory_order_relaxed) == level) {
              dist[static_cast<std::size_t>(v)].store(
                  level + 1, std::memory_order_relaxed);
              r.parent[static_cast<std::size_t>(v)] = w;
              out.push_back(v);
              return false;
            }
            return true;
          });
        }
      });
    } else {
      const std::size_t fsz = frontier.size();
      parallel::run_team(nt, [&](int t) {
        const std::size_t lo = fsz * static_cast<std::size_t>(t) /
                               static_cast<std::size_t>(nt);
        const std::size_t hi = fsz * (static_cast<std::size_t>(t) + 1) /
                               static_cast<std::size_t>(nt);
        auto& out = next[static_cast<std::size_t>(t)];
        for (std::size_t i = lo; i < hi; ++i) {
          const vid_t u = frontier[i];
          g.for_each_neighbor(u, [&](vid_t w) {
            std::int64_t expected = -1;
            if (dist[static_cast<std::size_t>(w)].compare_exchange_strong(
                    expected, level + 1, std::memory_order_relaxed)) {
              r.parent[static_cast<std::size_t>(w)] = u;
              out.push_back(w);
            }
          });
        }
      });
    }
    // Concatenate per-thread discoveries in thread order (threads own
    // ascending contiguous ranges, so the frontier is sorted-by-block and
    // identical at every thread count for the pull path; push-path claim
    // winners differ but distances do not).
    frontier.clear();
    for (auto& b : next)
      frontier.insert(frontier.end(), b.begin(), b.end());
    if (frontier.empty()) break;
    ++level;
    visited += static_cast<vid_t>(frontier.size());
  }

  parallel::parallel_for(n, [&](vid_t v) {
    r.dist[static_cast<std::size_t>(v)] =
        dist[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
  });
  r.num_visited = visited;
  r.num_levels = level;
  return r;
}

}  // namespace snap
