#include "snap/centrality/betweenness.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <queue>
#include <utility>

#include "snap/kernels/frontier.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

namespace {

/// Scratch space for one Brandes traversal — reused across sources so the
/// coarse-grained scheme allocates O(m+n) once per thread, matching the
/// paper's stated memory model.
struct BrandesScratch {
  std::vector<std::int64_t> dist;
  std::vector<double> sigma;
  std::vector<double> delta;
  std::vector<vid_t> order;

  explicit BrandesScratch(vid_t n)
      : dist(static_cast<std::size_t>(n), -1),
        sigma(static_cast<std::size_t>(n), 0),
        delta(static_cast<std::size_t>(n), 0),
        order() {
    order.reserve(static_cast<std::size_t>(n));
  }

  void reset_touched() {
    for (vid_t v : order) {
      dist[static_cast<std::size_t>(v)] = -1;
      sigma[static_cast<std::size_t>(v)] = 0;
      delta[static_cast<std::size_t>(v)] = 0;
    }
    order.clear();
  }
};

/// One Brandes source traversal (unweighted): BFS forward pass counting
/// shortest paths, then reverse dependency accumulation.  Predecessors are
/// implicit (dist[v] == dist[w] - 1), which avoids materializing predecessor
/// sets — SNAP's small-world optimization for skewed degrees (§3).
/// `vertex_acc` may be null (edge-only mode).
void brandes_from(const CSRGraph& g, vid_t s,
                  const std::vector<std::uint8_t>& edge_alive,
                  BrandesScratch& sc, double* vertex_acc, double* edge_acc) {
  const bool masked = !edge_alive.empty();
  sc.reset_touched();
  sc.dist[static_cast<std::size_t>(s)] = 0;
  sc.sigma[static_cast<std::size_t>(s)] = 1;
  sc.order.push_back(s);
  // sc.order doubles as the BFS queue (it is visit-ordered).
  for (std::size_t head = 0; head < sc.order.size(); ++head) {
    const vid_t u = sc.order[head];
    const std::int64_t du = sc.dist[static_cast<std::size_t>(u)];
    const auto nb = g.neighbors(u);
    const auto ids = g.edge_ids(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (masked && !edge_alive[static_cast<std::size_t>(ids[i])]) continue;
      const vid_t v = nb[i];
      if (sc.dist[static_cast<std::size_t>(v)] < 0) {
        sc.dist[static_cast<std::size_t>(v)] = du + 1;
        sc.order.push_back(v);
      }
      if (sc.dist[static_cast<std::size_t>(v)] == du + 1)
        sc.sigma[static_cast<std::size_t>(v)] +=
            sc.sigma[static_cast<std::size_t>(u)];
    }
  }
  // Reverse pass in successor form: visiting vertices in reverse BFS order,
  // every shortest-path successor v of w (dist[v] == dist[w] + 1) already has
  // its final dependency, so
  //   delta(w) = Σ_v sigma(w)/sigma(v) * (1 + delta(v)).
  // This formulation needs only out-adjacency, so it is correct for directed
  // graphs as well.
  for (std::size_t i = sc.order.size(); i-- > 0;) {
    const vid_t w = sc.order[i];
    const std::int64_t dw = sc.dist[static_cast<std::size_t>(w)];
    const double sw = sc.sigma[static_cast<std::size_t>(w)];
    const auto nb = g.neighbors(w);
    const auto ids = g.edge_ids(w);
    for (std::size_t j = 0; j < nb.size(); ++j) {
      if (masked && !edge_alive[static_cast<std::size_t>(ids[j])]) continue;
      const vid_t v = nb[j];
      if (sc.dist[static_cast<std::size_t>(v)] != dw + 1) continue;
      const double c = sw / sc.sigma[static_cast<std::size_t>(v)] *
                       (1.0 + sc.delta[static_cast<std::size_t>(v)]);
      sc.delta[static_cast<std::size_t>(w)] += c;
      if (edge_acc) edge_acc[static_cast<std::size_t>(ids[j])] += c;
    }
    if (vertex_acc && w != s)
      vertex_acc[static_cast<std::size_t>(w)] +=
          sc.delta[static_cast<std::size_t>(w)];
  }
}

/// Run Brandes from every vertex in `sources`, coarse-grained: sources are
/// distributed over threads, each thread owns private accumulators which are
/// reduced at the end — the O(p(m+n))-memory scheme of §3.
BetweennessScores accumulate_coarse(const CSRGraph& g,
                                    const std::vector<std::uint8_t>& edge_alive,
                                    const std::vector<vid_t>& sources,
                                    bool want_vertex, bool want_edge) {
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  const int nt = parallel::num_threads();

  std::vector<std::vector<double>> vloc(
      static_cast<std::size_t>(want_vertex ? nt : 0));
  std::vector<std::vector<double>> eloc(
      static_cast<std::size_t>(want_edge ? nt : 0));

  const auto num_sources = static_cast<std::int64_t>(sources.size());
  std::atomic<std::int64_t> cursor{0};
  parallel::run_team(nt, [&](int ti) {
    const auto t = static_cast<std::size_t>(ti);
    BrandesScratch sc(n);
    if (want_vertex) vloc[t].assign(static_cast<std::size_t>(n), 0.0);
    if (want_edge) eloc[t].assign(static_cast<std::size_t>(m), 0.0);
    double* va = want_vertex ? vloc[t].data() : nullptr;
    double* ea = want_edge ? eloc[t].data() : nullptr;
    for (std::int64_t i;
         (i = cursor.fetch_add(1, std::memory_order_relaxed)) < num_sources;) {
      brandes_from(g, sources[static_cast<std::size_t>(i)], edge_alive, sc, va,
                   ea);
    }
  });

  BetweennessScores out;
  const double half = g.directed() ? 1.0 : 0.5;  // undirected pairs counted twice
  if (want_vertex) {
    out.vertex.assign(static_cast<std::size_t>(n), 0.0);
    for (const auto& acc : vloc)
      for (vid_t v = 0; v < n; ++v)
        out.vertex[static_cast<std::size_t>(v)] +=
            acc[static_cast<std::size_t>(v)];
    for (auto& x : out.vertex) x *= half;
  }
  if (want_edge) {
    out.edge.assign(static_cast<std::size_t>(m), 0.0);
    for (const auto& acc : eloc)
      for (eid_t e = 0; e < m; ++e)
        out.edge[static_cast<std::size_t>(e)] += acc[static_cast<std::size_t>(e)];
    for (auto& x : out.edge) x *= half;
  }
  return out;
}

/// Fine-grained Brandes: one traversal at a time, parallelism *within* the
/// level-synchronous BFS and the level-by-level dependency accumulation.
/// Uses a single shared O(m+n) state with atomics (§3's low-memory mode).
BetweennessScores accumulate_fine(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  std::vector<std::atomic<std::int64_t>> dist(static_cast<std::size_t>(n));
  std::vector<std::atomic<double>> sigma(static_cast<std::size_t>(n));
  std::vector<std::atomic<double>> delta(static_cast<std::size_t>(n));
  std::vector<double> vacc(static_cast<std::size_t>(n), 0.0);
  std::vector<double> eacc(static_cast<std::size_t>(m), 0.0);

  std::vector<std::vector<vid_t>> levels;
  FrontierPool pool;          // shared across sources: per-level buffers
  std::vector<vid_t> next;    // reused level output
  for (vid_t s = 0; s < n; ++s) {
    parallel::parallel_for(n, [&](vid_t v) {
      dist[static_cast<std::size_t>(v)].store(-1, std::memory_order_relaxed);
      sigma[static_cast<std::size_t>(v)].store(0, std::memory_order_relaxed);
      delta[static_cast<std::size_t>(v)].store(0, std::memory_order_relaxed);
    });
    dist[static_cast<std::size_t>(s)].store(0);
    sigma[static_cast<std::size_t>(s)].store(1);
    levels.clear();
    levels.push_back({s});

    // Forward: level-synchronous path counting on the shared frontier
    // substrate — arcs of the level are split evenly across threads, so a
    // hub in the frontier cannot serialize the expansion.
    while (!levels.back().empty()) {
      const auto& cur = levels.back();
      const std::int64_t d = static_cast<std::int64_t>(levels.size()) - 1;
      expand_arc_balanced(
          g, cur, next, pool, [&](vid_t u, vid_t v) {
            const double su = sigma[static_cast<std::size_t>(u)].load(
                std::memory_order_relaxed);
            std::int64_t expected = -1;
            const bool newly =
                dist[static_cast<std::size_t>(v)].compare_exchange_strong(
                    expected, d + 1, std::memory_order_relaxed);
            if (dist[static_cast<std::size_t>(v)].load(
                    std::memory_order_relaxed) == d + 1) {
              // reduction: path-count accumulation; addition order varies
              // with scheduling, so sigma is not bitwise reproducible.
              parallel::atomic_add(sigma[static_cast<std::size_t>(v)], su);
            }
            return newly;
          });
      levels.push_back(next);
    }

    // Backward: accumulate dependencies level by level (deepest first) in
    // successor form — each w reads only deeper (already-final) deltas and
    // writes only its own slots, so the level sweep needs no atomics.
    for (std::size_t li = levels.size(); li-- > 0;) {
      const auto& lvl = levels[li];
      parallel::parallel_for_dynamic(
          static_cast<std::int64_t>(lvl.size()),
          [&](std::int64_t i) {
        const vid_t w = lvl[static_cast<std::size_t>(i)];
        const std::int64_t dw =
            dist[static_cast<std::size_t>(w)].load(std::memory_order_relaxed);
        const double sw =
            sigma[static_cast<std::size_t>(w)].load(std::memory_order_relaxed);
        const auto nb = g.neighbors(w);
        const auto ids = g.edge_ids(w);
        double dsum = 0;
        for (std::size_t j = 0; j < nb.size(); ++j) {
          const vid_t v = nb[j];
          if (dist[static_cast<std::size_t>(v)].load(
                  std::memory_order_relaxed) != dw + 1)
            continue;
          const double c =
              sw /
              sigma[static_cast<std::size_t>(v)].load(
                  std::memory_order_relaxed) *
              (1.0 + delta[static_cast<std::size_t>(v)].load(
                         std::memory_order_relaxed));
          dsum += c;
          eacc[static_cast<std::size_t>(ids[j])] += c;
        }
        delta[static_cast<std::size_t>(w)].store(dsum,
                                                 std::memory_order_relaxed);
        if (w != s) vacc[static_cast<std::size_t>(w)] += dsum;
      },
          /*chunk=*/64);
    }
  }

  BetweennessScores out;
  const double half = g.directed() ? 1.0 : 0.5;
  out.vertex = std::move(vacc);
  out.edge = std::move(eacc);
  for (auto& x : out.vertex) x *= half;
  for (auto& x : out.edge) x *= half;
  return out;
}

/// Weighted Brandes from one source: Dijkstra forward phase producing a
/// settle order (a topological order of the shortest-path DAG), then the
/// same successor-form dependency accumulation with a weighted-tightness
/// test (dist[v] == dist[w] + w(w,v)).
void brandes_weighted_from(const CSRGraph& g, vid_t s,
                           std::vector<weight_t>& dist,
                           std::vector<double>& sigma,
                           std::vector<double>& delta,
                           std::vector<vid_t>& order, double* vertex_acc,
                           double* edge_acc) {
  constexpr weight_t kInf = std::numeric_limits<weight_t>::infinity();
  for (vid_t v : order) {
    dist[static_cast<std::size_t>(v)] = kInf;
    sigma[static_cast<std::size_t>(v)] = 0;
    delta[static_cast<std::size_t>(v)] = 0;
  }
  order.clear();

  using Item = std::pair<weight_t, vid_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(s)] = 0;
  sigma[static_cast<std::size_t>(s)] = 1;
  pq.push({0, s});
  std::vector<std::uint8_t> settled_flag;  // lazily sized below
  settled_flag.assign(dist.size(), 0);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (settled_flag[static_cast<std::size_t>(u)]) continue;
    settled_flag[static_cast<std::size_t>(u)] = 1;
    order.push_back(u);
    const auto nb = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const vid_t v = nb[i];
      const weight_t nd = d + ws[i];
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        sigma[static_cast<std::size_t>(v)] =
            sigma[static_cast<std::size_t>(u)];
        pq.push({nd, v});
      } else if (nd == dist[static_cast<std::size_t>(v)] &&
                 !settled_flag[static_cast<std::size_t>(v)]) {
        sigma[static_cast<std::size_t>(v)] +=
            sigma[static_cast<std::size_t>(u)];
      }
    }
  }
  // Reverse settle order = reverse topological order of the SP DAG.
  for (std::size_t i = order.size(); i-- > 0;) {
    const vid_t w = order[i];
    const weight_t dw = dist[static_cast<std::size_t>(w)];
    const double sw = sigma[static_cast<std::size_t>(w)];
    const auto nb = g.neighbors(w);
    const auto ws = g.weights(w);
    const auto ids = g.edge_ids(w);
    for (std::size_t j = 0; j < nb.size(); ++j) {
      const vid_t v = nb[j];
      if (dist[static_cast<std::size_t>(v)] != dw + ws[j]) continue;
      const double c = sw / sigma[static_cast<std::size_t>(v)] *
                       (1.0 + delta[static_cast<std::size_t>(v)]);
      delta[static_cast<std::size_t>(w)] += c;
      if (edge_acc) edge_acc[static_cast<std::size_t>(ids[j])] += c;
    }
    if (vertex_acc && w != s)
      vertex_acc[static_cast<std::size_t>(w)] +=
          delta[static_cast<std::size_t>(w)];
  }
}

std::vector<vid_t> all_vertices(vid_t n) {
  std::vector<vid_t> v(static_cast<std::size_t>(n));
  for (vid_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  return v;
}

}  // namespace

BetweennessScores betweenness_centrality(const CSRGraph& g,
                                         BCGranularity gran) {
  if (gran == BCGranularity::kFine) return accumulate_fine(g);
  return accumulate_coarse(g, {}, all_vertices(g.num_vertices()),
                           /*want_vertex=*/true, /*want_edge=*/true);
}

std::vector<double> edge_betweenness_masked(
    const CSRGraph& g, const std::vector<std::uint8_t>& edge_alive) {
  return accumulate_coarse(g, edge_alive, all_vertices(g.num_vertices()),
                           /*want_vertex=*/false, /*want_edge=*/true)
      .edge;
}

BetweennessScores weighted_betweenness_centrality(const CSRGraph& g) {
  if (!g.weighted()) return betweenness_centrality(g);
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  const int nt = parallel::num_threads();
  std::vector<std::vector<double>> vloc(static_cast<std::size_t>(nt));
  std::vector<std::vector<double>> eloc(static_cast<std::size_t>(nt));

  std::atomic<vid_t> cursor{0};
  parallel::run_team(nt, [&](int ti) {
    const auto t = static_cast<std::size_t>(ti);
    vloc[t].assign(static_cast<std::size_t>(n), 0.0);
    eloc[t].assign(static_cast<std::size_t>(m), 0.0);
    std::vector<weight_t> dist(static_cast<std::size_t>(n),
                               std::numeric_limits<weight_t>::infinity());
    std::vector<double> sigma(static_cast<std::size_t>(n), 0);
    std::vector<double> delta(static_cast<std::size_t>(n), 0);
    std::vector<vid_t> order;
    order.reserve(static_cast<std::size_t>(n));
    for (vid_t s; (s = cursor.fetch_add(1, std::memory_order_relaxed)) < n;) {
      brandes_weighted_from(g, s, dist, sigma, delta, order, vloc[t].data(),
                            eloc[t].data());
    }
  });

  BetweennessScores out;
  out.vertex.assign(static_cast<std::size_t>(n), 0.0);
  out.edge.assign(static_cast<std::size_t>(m), 0.0);
  for (int t = 0; t < nt; ++t) {
    for (vid_t v = 0; v < n; ++v)
      out.vertex[static_cast<std::size_t>(v)] +=
          vloc[static_cast<std::size_t>(t)][static_cast<std::size_t>(v)];
    for (eid_t e = 0; e < m; ++e)
      out.edge[static_cast<std::size_t>(e)] +=
          eloc[static_cast<std::size_t>(t)][static_cast<std::size_t>(e)];
  }
  const double half = g.directed() ? 1.0 : 0.5;
  for (auto& x : out.vertex) x *= half;
  for (auto& x : out.edge) x *= half;
  return out;
}

std::vector<double> approx_vertex_betweenness(
    const CSRGraph& g, const std::vector<vid_t>& sources) {
  auto scores = accumulate_coarse(g, {}, sources,
                                  /*want_vertex=*/true, /*want_edge=*/false)
                    .vertex;
  if (!sources.empty()) {
    const double scale = static_cast<double>(g.num_vertices()) /
                         static_cast<double>(sources.size());
    for (auto& s : scores) s *= scale;
  }
  return scores;
}

std::vector<double> approx_edge_betweenness(
    const CSRGraph& g, const std::vector<std::uint8_t>& edge_alive,
    const std::vector<vid_t>& sources) {
  auto scores = accumulate_coarse(g, edge_alive, sources,
                                  /*want_vertex=*/false, /*want_edge=*/true)
                    .edge;
  if (!sources.empty()) {
    const double scale = static_cast<double>(g.num_vertices()) /
                         static_cast<double>(sources.size());
    for (auto& s : scores) s *= scale;
  }
  return scores;
}

}  // namespace snap
