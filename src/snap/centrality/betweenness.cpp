#include "snap/centrality/betweenness.hpp"

#include <atomic>
#include <utility>

#include "snap/centrality/brandes_core.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

namespace {

/// Run the engine from every vertex in `sources`, coarse-grained: sources
/// are handed out in chunks of brandes::kSourceChunk, each thread owns
/// private accumulators (the O(p(m+n))-memory scheme of §3), and the
/// per-thread partials are folded by the deterministic parallel blocked
/// reduction in brandes_core (ascending thread order per element).
template <bool kMasked, bool kWantVertex, bool kWantEdge, bool kWeighted>
BetweennessScores accumulate_coarse_impl(
    const CSRGraph& g, const std::vector<std::uint8_t>& edge_alive,
    const std::vector<vid_t>& sources) {
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  const int nt = parallel::num_threads();

  std::vector<std::vector<double>> vloc(
      static_cast<std::size_t>(kWantVertex ? nt : 0));
  std::vector<std::vector<double>> eloc(
      static_cast<std::size_t>(kWantEdge ? nt : 0));

  const auto num_sources = static_cast<std::int64_t>(sources.size());
  std::atomic<std::int64_t> cursor{0};
  parallel::run_team(nt, [&](int ti) {
    const auto t = static_cast<std::size_t>(ti);
    brandes::SourceScratch sc;
    brandes::ArraySink<kWantVertex, kWantEdge> sink;
    if constexpr (kWantVertex) {
      vloc[t].assign(static_cast<std::size_t>(n), 0.0);
      sink.vertex = vloc[t].data();
    }
    if constexpr (kWantEdge) {
      eloc[t].assign(static_cast<std::size_t>(m), 0.0);
      sink.edge = eloc[t].data();
    }
    brandes::thread_source_loop(
        ti, nt, num_sources, brandes::SourceSchedule::kDynamicChunked, cursor,
        [&](std::int64_t i) {
          const vid_t s = sources[static_cast<std::size_t>(i)];
          if constexpr (kWeighted) {
            brandes::run_source_weighted<brandes::BetweennessPolicy, kMasked>(
                g, s, edge_alive.data(), sc, sink);
          } else {
            brandes::run_source<brandes::BetweennessPolicy, kMasked>(
                g, s, edge_alive.data(), sc, sink);
          }
        });
  });

  BetweennessScores out;
  const double half = g.directed() ? 1.0 : 0.5;  // undirected pairs counted twice
  if constexpr (kWantVertex) {
    out.vertex.resize(static_cast<std::size_t>(n));
    brandes::reduce_partials(vloc, static_cast<std::size_t>(n), half,
                             out.vertex.data());
  }
  if constexpr (kWantEdge) {
    out.edge.resize(static_cast<std::size_t>(m));
    brandes::reduce_partials(eloc, static_cast<std::size_t>(m), half,
                             out.edge.data());
  }
  return out;
}

template <bool kWantVertex, bool kWantEdge, bool kWeighted = false>
BetweennessScores accumulate_coarse(const CSRGraph& g,
                                    const std::vector<std::uint8_t>& edge_alive,
                                    const std::vector<vid_t>& sources) {
  if (edge_alive.empty()) {
    return accumulate_coarse_impl</*kMasked=*/false, kWantVertex, kWantEdge,
                                  kWeighted>(g, edge_alive, sources);
  }
  return accumulate_coarse_impl</*kMasked=*/true, kWantVertex, kWantEdge,
                                kWeighted>(g, edge_alive, sources);
}

std::vector<vid_t> all_vertices(vid_t n) {
  std::vector<vid_t> v(static_cast<std::size_t>(n));
  for (vid_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  return v;
}

}  // namespace

BetweennessScores betweenness_centrality(const CSRGraph& g,
                                         BCGranularity gran) {
  if (gran == BCGranularity::kFine) {
    BetweennessScores out;
    brandes::fine_grained_accumulate(g, out.vertex, out.edge);
    const double half = g.directed() ? 1.0 : 0.5;
    for (auto& x : out.vertex) x *= half;
    for (auto& x : out.edge) x *= half;
    return out;
  }
  return accumulate_coarse</*v=*/true, /*e=*/true>(
      g, {}, all_vertices(g.num_vertices()));
}

std::vector<double> edge_betweenness_masked(
    const CSRGraph& g, const std::vector<std::uint8_t>& edge_alive) {
  return accumulate_coarse</*v=*/false, /*e=*/true>(
             g, edge_alive, all_vertices(g.num_vertices()))
      .edge;
}

BetweennessScores weighted_betweenness_centrality(const CSRGraph& g) {
  if (!g.weighted()) return betweenness_centrality(g);
  return accumulate_coarse</*v=*/true, /*e=*/true, /*kWeighted=*/true>(
      g, {}, all_vertices(g.num_vertices()));
}

std::vector<double> approx_vertex_betweenness(
    const CSRGraph& g, const std::vector<vid_t>& sources) {
  auto scores =
      accumulate_coarse</*v=*/true, /*e=*/false>(g, {}, sources).vertex;
  if (!sources.empty()) {
    const double scale = static_cast<double>(g.num_vertices()) /
                         static_cast<double>(sources.size());
    for (auto& s : scores) s *= scale;
  }
  return scores;
}

std::vector<double> approx_edge_betweenness(
    const CSRGraph& g, const std::vector<std::uint8_t>& edge_alive,
    const std::vector<vid_t>& sources) {
  auto scores =
      accumulate_coarse</*v=*/false, /*e=*/true>(g, edge_alive, sources).edge;
  if (!sources.empty()) {
    const double scale = static_cast<double>(g.num_vertices()) /
                         static_cast<double>(sources.size());
    for (auto& s : scores) s *= scale;
  }
  return scores;
}

}  // namespace snap
