#pragma once

#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Degree centrality (§2.1): the simple local measure based on neighborhood
/// size.  For directed graphs this is the out-degree; use `in_degrees` for
/// the in-degree vector.
std::vector<double> degree_centrality(const CSRGraph& g,
                                      bool normalize = false);

/// In-degree of every vertex (equals degree for undirected graphs).
std::vector<eid_t> in_degrees(const CSRGraph& g);

}  // namespace snap
