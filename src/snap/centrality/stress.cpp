#include "snap/centrality/stress.hpp"

#include <cstdint>

#include "snap/util/parallel.hpp"

namespace snap {

std::vector<double> stress_centrality(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  const int nt = parallel::num_threads();
  std::vector<std::vector<double>> local(static_cast<std::size_t>(nt));

  std::atomic<vid_t> cursor{0};
  parallel::run_team(nt, [&](int t) {
    auto& acc = local[static_cast<std::size_t>(t)];
    acc.assign(static_cast<std::size_t>(n), 0.0);
    std::vector<std::int64_t> dist(static_cast<std::size_t>(n), -1);
    std::vector<double> sigma(static_cast<std::size_t>(n), 0);
    std::vector<double> delta(static_cast<std::size_t>(n), 0);
    std::vector<vid_t> order;
    order.reserve(static_cast<std::size_t>(n));

    for (vid_t s; (s = cursor.fetch_add(1, std::memory_order_relaxed)) < n;) {
      for (vid_t v : order) {
        dist[static_cast<std::size_t>(v)] = -1;
        sigma[static_cast<std::size_t>(v)] = 0;
        delta[static_cast<std::size_t>(v)] = 0;
      }
      order.clear();
      dist[static_cast<std::size_t>(s)] = 0;
      sigma[static_cast<std::size_t>(s)] = 1;
      order.push_back(s);
      for (std::size_t head = 0; head < order.size(); ++head) {
        const vid_t u = order[head];
        const std::int64_t du = dist[static_cast<std::size_t>(u)];
        for (vid_t v : g.neighbors(u)) {
          if (dist[static_cast<std::size_t>(v)] < 0) {
            dist[static_cast<std::size_t>(v)] = du + 1;
            order.push_back(v);
          }
          if (dist[static_cast<std::size_t>(v)] == du + 1)
            sigma[static_cast<std::size_t>(v)] +=
                sigma[static_cast<std::size_t>(u)];
        }
      }
      // Stress recurrence (successor form): the count of shortest s-*
      // paths through w is  σ(w) · Σ_succ (1 + δ(v))/  ... more precisely
      //   δ(w) = Σ_{v : succ} (σ(w)/σ(v)) · ... —
      // for stress the dependency is  δ(w) = Σ_succ (1 + δ(v)) with the
      // final contribution σ(w) · δ(w)  [Brandes 2008, variants].
      for (std::size_t i = order.size(); i-- > 0;) {
        const vid_t w = order[i];
        const std::int64_t dw = dist[static_cast<std::size_t>(w)];
        double dsum = 0;
        for (vid_t v : g.neighbors(w)) {
          if (dist[static_cast<std::size_t>(v)] != dw + 1) continue;
          dsum += 1.0 + delta[static_cast<std::size_t>(v)];
        }
        delta[static_cast<std::size_t>(w)] = dsum;
        if (w != s)
          acc[static_cast<std::size_t>(w)] +=
              sigma[static_cast<std::size_t>(w)] * dsum;
      }
    }
  });

  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  for (const auto& acc : local)
    for (vid_t v = 0; v < n; ++v)
      out[static_cast<std::size_t>(v)] += acc[static_cast<std::size_t>(v)];
  const double half = g.directed() ? 1.0 : 0.5;
  for (auto& x : out) x *= half;
  return out;
}

}  // namespace snap
