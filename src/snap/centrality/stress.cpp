#include "snap/centrality/stress.hpp"

#include <atomic>
#include <cstdint>

#include "snap/centrality/brandes_core.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

// Stress centrality = Brandes with the StressPolicy recurrence
// δ(w) = Σ_succ (1 + δ(v)), vertex contribution σ(w)·δ(w): the *count* of
// shortest paths through w rather than the fraction [Brandes 2008, variants].
std::vector<double> stress_centrality(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  const int nt = parallel::num_threads();
  std::vector<std::vector<double>> local(static_cast<std::size_t>(nt));

  std::atomic<std::int64_t> cursor{0};
  parallel::run_team(nt, [&](int t) {
    auto& acc = local[static_cast<std::size_t>(t)];
    acc.assign(static_cast<std::size_t>(n), 0.0);
    brandes::SourceScratch sc;
    brandes::ArraySink</*v=*/true, /*e=*/false> sink{acc.data(), nullptr};
    brandes::thread_source_loop(
        t, nt, n, brandes::SourceSchedule::kDynamicChunked, cursor,
        [&](std::int64_t s) {
          brandes::run_source<brandes::StressPolicy, /*kMasked=*/false>(
              g, static_cast<vid_t>(s), nullptr, sc, sink);
        });
  });

  std::vector<double> out(static_cast<std::size_t>(n));
  const double half = g.directed() ? 1.0 : 0.5;
  brandes::reduce_partials(local, static_cast<std::size_t>(n), half,
                           out.data());
  return out;
}

}  // namespace snap
