#pragma once

#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Stress centrality: the absolute number of shortest paths through each
/// vertex, Σ_{s≠v≠t} σ_st(v) — the unnormalized sibling of betweenness
/// (Shimbel's original "stress" index, part of the §2.1 centrality family).
/// Same Brandes-style machinery as betweenness with a multiplicative
/// dependency recurrence; coarse-grained parallel over sources.
std::vector<double> stress_centrality(const CSRGraph& g);

}  // namespace snap
