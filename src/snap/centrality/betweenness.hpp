#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Vertex and edge betweenness scores.  Edge scores are indexed by logical
/// edge id; for undirected graphs both traversal directions of an edge
/// accumulate into the same slot.
struct BetweennessScores {
  std::vector<double> vertex;  ///< BC(v) = Σ_{s≠v≠t} σ_st(v)/σ_st
  std::vector<double> edge;    ///< BC(e) = Σ_{s,t} σ_st(e)/σ_st
};

/// Which parallelization the Brandes computation uses (§3): coarse-grained
/// distributes the n source traversals over p threads with per-thread
/// accumulators — O(p(m+n)) memory, lowest synchronization; fine-grained
/// parallelizes *within* each level-synchronous traversal — O(m+n) memory,
/// for instances too large for per-thread copies.
enum class BCGranularity { kCoarse, kFine };

/// Exact betweenness centrality (Brandes) for unweighted traversal.
/// Directed graphs are traversed along arc direction.
BetweennessScores betweenness_centrality(
    const CSRGraph& g, BCGranularity gran = BCGranularity::kCoarse);

/// Exact betweenness for *weighted* graphs: Brandes with a Dijkstra forward
/// phase per source (coarse-grained parallel over sources).  Falls back to
/// the BFS kernel when the graph is unweighted.
BetweennessScores weighted_betweenness_centrality(const CSRGraph& g);

/// Exact *edge* betweenness restricted to alive edges
/// (`edge_alive[edge_id] != 0`) — the inner computation of the
/// Girvan–Newman divisive algorithm.  Pass an empty mask for all-alive.
std::vector<double> edge_betweenness_masked(
    const CSRGraph& g, const std::vector<std::uint8_t>& edge_alive);

/// Vertex betweenness estimated from traversals rooted at `sources` only,
/// scaled by n/|sources| — the sampled counterpart of the exact kernel for
/// when ranking the top brokers is enough.
std::vector<double> approx_vertex_betweenness(const CSRGraph& g,
                                              const std::vector<vid_t>& sources);

/// Edge betweenness estimated from traversals rooted at `sources` only,
/// scaled by n/|sources| — the sampled estimator pBD uses to find the
/// highest-centrality edge (§4: "sampling just 5% of the vertices").
/// Respects the alive mask; empty mask = all alive.
std::vector<double> approx_edge_betweenness(
    const CSRGraph& g, const std::vector<std::uint8_t>& edge_alive,
    const std::vector<vid_t>& sources);

}  // namespace snap
