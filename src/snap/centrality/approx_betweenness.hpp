#pragma once

#include <cstdint>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Result of an adaptive-sampling betweenness estimate for one entity.
struct AdaptiveBCEstimate {
  double estimate = 0;      ///< estimated betweenness score
  vid_t samples_used = 0;   ///< traversals actually run
  bool converged = false;   ///< true if the cutoff was hit before n samples
};

/// Parameters of the adaptive-sampling scheme of Bader, Kintali, Madduri &
/// Mihail (WAW 2007), which pBD uses: sample source traversals one at a time
/// and stop as soon as the accumulated dependency of the tracked entity
/// exceeds `cutoff_factor * n` — high-centrality entities converge after a
/// small fraction of sources (the paper reports <20% error on the top 1%
/// after sampling just 5% of the vertices).
struct AdaptiveBCParams {
  double cutoff_factor = 2.0;     ///< stop when Σ δ_s > cutoff_factor * n
  double max_fraction = 1.0;      ///< hard cap on sampled sources (fraction of n)
  std::uint64_t seed = 1;
};

/// Estimate the betweenness centrality of vertex `v`.
AdaptiveBCEstimate adaptive_betweenness_vertex(const CSRGraph& g, vid_t v,
                                               const AdaptiveBCParams& p = {});

/// Estimate the betweenness centrality of logical edge `e`.
AdaptiveBCEstimate adaptive_betweenness_edge(const CSRGraph& g, eid_t e,
                                             const AdaptiveBCParams& p = {});

}  // namespace snap
