#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Exact closeness centrality (§2.1): CC(v) = 1 / Σ_u d(v, u), the paper's
/// global distance-based importance index.  Unreachable pairs are skipped
/// (the standard convention for graphs that are not connected); an isolated
/// vertex gets CC = 0.  Uses one BFS (unweighted) or delta-stepping
/// (weighted) per source, sources distributed over threads (coarse-grained).
std::vector<double> closeness_centrality(const CSRGraph& g);

/// Sampled approximation (Eppstein–Wang style): estimates the distance sum
/// of every vertex from `num_samples` random BFS sources.  O(k(m+n)) instead
/// of O(n(m+n)); the estimator is unbiased for connected graphs.
std::vector<double> closeness_centrality_sampled(const CSRGraph& g,
                                                 vid_t num_samples,
                                                 std::uint64_t seed = 1);

}  // namespace snap
