#include "snap/centrality/degree.hpp"

#include <atomic>

#include "snap/util/parallel.hpp"

namespace snap {

std::vector<double> degree_centrality(const CSRGraph& g, bool normalize) {
  const vid_t n = g.num_vertices();
  std::vector<double> c(static_cast<std::size_t>(n));
  const double scale = normalize && n > 1 ? 1.0 / static_cast<double>(n - 1) : 1.0;
  parallel::parallel_for(n, [&](vid_t v) {
    c[static_cast<std::size_t>(v)] = static_cast<double>(g.degree(v)) * scale;
  });
  return c;
}

std::vector<eid_t> in_degrees(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<std::atomic<eid_t>> acc(static_cast<std::size_t>(n));
  parallel::parallel_for(n, [&](vid_t v) {
    acc[static_cast<std::size_t>(v)].store(0, std::memory_order_relaxed);
  });
  parallel::parallel_for(n, [&](vid_t v) {
    for (vid_t u : g.neighbors(v))
      acc[static_cast<std::size_t>(u)].fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<eid_t> out(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v)
    out[static_cast<std::size_t>(v)] =
        acc[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
  return out;
}

}  // namespace snap
