#include "snap/centrality/closeness.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "snap/kernels/bfs.hpp"
#include "snap/kernels/frontier.hpp"
#include "snap/kernels/sssp.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap {

namespace {

/// Weighted distance sum from source s (reachable vertices only).
double dijkstra_sum_from(const CSRGraph& g, vid_t s) {
  double sum = 0;
  const SSSPResult r = dijkstra(g, s);
  for (weight_t d : r.dist)
    if (d > 0 && d < std::numeric_limits<weight_t>::infinity()) sum += d;
  return sum;
}

double bfs_dist_sum(const BFSResult& b) {
  double sum = 0;
  for (std::int64_t d : b.dist)
    if (d > 0) sum += static_cast<double>(d);
  return sum;
}

}  // namespace

std::vector<double> closeness_centrality(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<double> cc(static_cast<std::size_t>(n), 0.0);
  // Coarse-grained parallelism: one full traversal per source, sources
  // dealt dynamically to threads (per-source work varies with component
  // size, so static scheduling would imbalance on fragmented graphs).
  if (!g.weighted()) {
    // Each thread owns one BfsEngine, so frontier buffers, bitmaps and the
    // result vectors are allocated once per thread, not once per source, and
    // each sweep runs the serial direction-optimizing traversal.
    std::atomic<vid_t> cursor{0};
    parallel::run_team(parallel::num_threads(), [&](int) {
      BfsEngine engine;
      BFSResult b;
      for (vid_t v; (v = cursor.fetch_add(1, std::memory_order_relaxed)) < n;) {
        engine.run_serial_into(g, v, {}, b);
        const double sum = bfs_dist_sum(b);
        cc[static_cast<std::size_t>(v)] = sum > 0 ? 1.0 / sum : 0.0;
      }
    });
    return cc;
  }
  parallel::parallel_for_dynamic(
      n,
      [&](vid_t v) {
        const double sum = dijkstra_sum_from(g, v);
        cc[static_cast<std::size_t>(v)] = sum > 0 ? 1.0 / sum : 0.0;
      },
      /*chunk=*/1);
  return cc;
}

std::vector<double> closeness_centrality_sampled(const CSRGraph& g,
                                                 vid_t num_samples,
                                                 std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  num_samples = std::min(num_samples, n);
  std::vector<std::atomic<double>> sum(static_cast<std::size_t>(n));
  parallel::parallel_for(n, [&](vid_t v) {
    sum[static_cast<std::size_t>(v)].store(0, std::memory_order_relaxed);
  });

  SplitMix64 rng(seed);
  std::vector<vid_t> sources(static_cast<std::size_t>(num_samples));
  for (auto& s : sources)
    s = static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));

  std::atomic<vid_t> cursor{0};
  parallel::run_team(parallel::num_threads(), [&](int) {
    BfsEngine engine;
    BFSResult b;
    for (vid_t i;
         (i = cursor.fetch_add(1, std::memory_order_relaxed)) < num_samples;) {
      engine.run_serial_into(g, sources[static_cast<std::size_t>(i)], {}, b);
      for (vid_t v = 0; v < n; ++v) {
        const std::int64_t d = b.dist[static_cast<std::size_t>(v)];
        // reduction: per-vertex distance sum over sampled sources; addition
        // order varies with scheduling, so sums are not bitwise reproducible.
        if (d > 0)
          parallel::atomic_add(sum[static_cast<std::size_t>(v)],
                               static_cast<double>(d));
      }
    }
  });

  // Scale the sampled distance sum up to the full vertex set.
  const double scale =
      static_cast<double>(n) / static_cast<double>(std::max<vid_t>(num_samples, 1));
  std::vector<double> cc(static_cast<std::size_t>(n), 0.0);
  for (vid_t v = 0; v < n; ++v) {
    const double s =
        sum[static_cast<std::size_t>(v)].load(std::memory_order_relaxed) * scale;
    cc[static_cast<std::size_t>(v)] = s > 0 ? 1.0 / s : 0.0;
  }
  return cc;
}

}  // namespace snap
