#include "snap/centrality/approx_betweenness.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "snap/centrality/brandes_core.hpp"
#include "snap/util/rng.hpp"

namespace snap {

namespace {

/// Adaptive-sampling loop (Bader et al.): sample sources without replacement,
/// accumulate the target's dependency per sample, stop once the running sum
/// clears the cutoff.  `sample_dependency(scratch, edge_sink, s)` reads the
/// traversal result the engine left in the pooled scratch — which is reused
/// across samples, so one estimate allocates O(n) once, not per sample.
template <typename SampleDependency>
AdaptiveBCEstimate adaptive_estimate(const CSRGraph& g,
                                     const AdaptiveBCParams& p,
                                     eid_t edge_target,
                                     SampleDependency&& sample_dependency) {
  const vid_t n = g.num_vertices();
  const double cutoff = p.cutoff_factor * static_cast<double>(n);
  const auto max_samples = std::max<vid_t>(
      1, static_cast<vid_t>(p.max_fraction * static_cast<double>(n)));

  // Sample sources without replacement via a partial Fisher–Yates shuffle.
  std::vector<vid_t> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), vid_t{0});
  SplitMix64 rng(p.seed);

  AdaptiveBCEstimate out;
  double acc = 0;
  brandes::SourceScratch sc;
  brandes::SingleEdgeSink sink;
  sink.target = edge_target;
  for (vid_t k = 0; k < max_samples; ++k) {
    const auto pick =
        k + static_cast<vid_t>(rng.next_bounded(
                static_cast<std::uint64_t>(n - k)));
    std::swap(pool[static_cast<std::size_t>(k)],
              pool[static_cast<std::size_t>(pick)]);
    const vid_t s = pool[static_cast<std::size_t>(k)];
    sink.sum = 0;
    brandes::run_source<brandes::BetweennessPolicy, /*kMasked=*/false>(
        g, s, nullptr, sc, sink);
    acc += sample_dependency(sc, sink, s);
    ++out.samples_used;
    if (acc > cutoff && out.samples_used < n) {
      out.converged = true;
      break;
    }
  }
  // Unbiased scale-up, halved for undirected graphs (each unordered pair is
  // counted from both endpoints when all sources are sampled).
  const double dir_scale = g.directed() ? 1.0 : 0.5;
  out.estimate = dir_scale * static_cast<double>(n) /
                 static_cast<double>(out.samples_used) * acc;
  return out;
}

}  // namespace

AdaptiveBCEstimate adaptive_betweenness_vertex(const CSRGraph& g, vid_t v,
                                               const AdaptiveBCParams& p) {
  return adaptive_estimate(
      g, p, kInvalidEid,
      [v](const brandes::SourceScratch& sc, const brandes::SingleEdgeSink&,
          vid_t s) {
        return s == v ? 0.0 : sc.delta()[static_cast<std::size_t>(v)];
      });
}

AdaptiveBCEstimate adaptive_betweenness_edge(const CSRGraph& g, eid_t e,
                                             const AdaptiveBCParams& p) {
  return adaptive_estimate(
      g, p, e,
      [](const brandes::SourceScratch&, const brandes::SingleEdgeSink& sink,
         vid_t) { return sink.sum; });
}

}  // namespace snap
