#include "snap/centrality/approx_betweenness.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "snap/util/rng.hpp"

namespace snap {

namespace {

/// One unweighted Brandes traversal from s; returns per-vertex dependencies
/// in `delta` and, when `edge_delta` is non-null, per-logical-edge
/// dependencies.
void dependencies_from(const CSRGraph& g, vid_t s, std::vector<double>& delta,
                       std::vector<double>* edge_delta) {
  const vid_t n = g.num_vertices();
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n), -1);
  std::vector<double> sigma(static_cast<std::size_t>(n), 0);
  delta.assign(static_cast<std::size_t>(n), 0);
  if (edge_delta)
    edge_delta->assign(static_cast<std::size_t>(g.num_edges()), 0);

  std::vector<vid_t> order;
  order.reserve(static_cast<std::size_t>(n));
  dist[static_cast<std::size_t>(s)] = 0;
  sigma[static_cast<std::size_t>(s)] = 1;
  order.push_back(s);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const vid_t u = order[head];
    const std::int64_t du = dist[static_cast<std::size_t>(u)];
    for (vid_t v : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] = du + 1;
        order.push_back(v);
      }
      if (dist[static_cast<std::size_t>(v)] == du + 1)
        sigma[static_cast<std::size_t>(v)] += sigma[static_cast<std::size_t>(u)];
    }
  }
  for (std::size_t i = order.size(); i-- > 0;) {
    const vid_t w = order[i];
    const std::int64_t dw = dist[static_cast<std::size_t>(w)];
    const auto nb = g.neighbors(w);
    const auto ids = g.edge_ids(w);
    for (std::size_t j = 0; j < nb.size(); ++j) {
      const vid_t v = nb[j];
      if (dist[static_cast<std::size_t>(v)] != dw + 1) continue;
      const double c = sigma[static_cast<std::size_t>(w)] /
                       sigma[static_cast<std::size_t>(v)] *
                       (1.0 + delta[static_cast<std::size_t>(v)]);
      delta[static_cast<std::size_t>(w)] += c;
      if (edge_delta)
        (*edge_delta)[static_cast<std::size_t>(ids[j])] += c;
    }
  }
}

template <typename DependencyOf>
AdaptiveBCEstimate adaptive_estimate(const CSRGraph& g,
                                     const AdaptiveBCParams& p,
                                     bool want_edges,
                                     DependencyOf&& dependency_of) {
  const vid_t n = g.num_vertices();
  const double cutoff = p.cutoff_factor * static_cast<double>(n);
  const auto max_samples = std::max<vid_t>(
      1, static_cast<vid_t>(p.max_fraction * static_cast<double>(n)));

  // Sample sources without replacement via a partial Fisher–Yates shuffle.
  std::vector<vid_t> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), vid_t{0});
  SplitMix64 rng(p.seed);

  AdaptiveBCEstimate out;
  double acc = 0;
  std::vector<double> delta;
  std::vector<double> edge_delta;
  for (vid_t k = 0; k < max_samples; ++k) {
    const auto pick =
        k + static_cast<vid_t>(rng.next_bounded(
                static_cast<std::uint64_t>(n - k)));
    std::swap(pool[static_cast<std::size_t>(k)],
              pool[static_cast<std::size_t>(pick)]);
    const vid_t s = pool[static_cast<std::size_t>(k)];
    dependencies_from(g, s, delta, want_edges ? &edge_delta : nullptr);
    acc += dependency_of(delta, edge_delta, s);
    ++out.samples_used;
    if (acc > cutoff && out.samples_used < n) {
      out.converged = true;
      break;
    }
  }
  // Unbiased scale-up, halved for undirected graphs (each unordered pair is
  // counted from both endpoints when all sources are sampled).
  const double dir_scale = g.directed() ? 1.0 : 0.5;
  out.estimate = dir_scale * static_cast<double>(n) /
                 static_cast<double>(out.samples_used) * acc;
  return out;
}

}  // namespace

AdaptiveBCEstimate adaptive_betweenness_vertex(const CSRGraph& g, vid_t v,
                                               const AdaptiveBCParams& p) {
  return adaptive_estimate(
      g, p, /*want_edges=*/false,
      [v](const std::vector<double>& delta, const std::vector<double>&,
          vid_t s) {
        return s == v ? 0.0 : delta[static_cast<std::size_t>(v)];
      });
}

AdaptiveBCEstimate adaptive_betweenness_edge(const CSRGraph& g, eid_t e,
                                             const AdaptiveBCParams& p) {
  return adaptive_estimate(
      g, p, /*want_edges=*/true,
      [e](const std::vector<double>&, const std::vector<double>& edge_delta,
          vid_t) { return edge_delta[static_cast<std::size_t>(e)]; });
}

}  // namespace snap
