#pragma once

// The single Brandes shortest-path engine behind every betweenness-family
// kernel in SNAP: exact vertex/edge betweenness (coarse- and fine-grained),
// masked edge betweenness (the GN / pBD divisive inner loop), the weighted
// (Dijkstra-forward) variant, stress centrality, and the adaptive-sampling
// estimators.  Before this header existed the forward/backward traversal was
// copy-pasted in betweenness.cpp, pbd.cpp, stress.cpp and
// approx_betweenness.cpp; this is now the only file in the library that
// contains the dependency-accumulation loop.
//
// Structure
//   Policy   — what the backward recurrence accumulates.  Betweenness uses
//              δ(w) = Σ_succ σ(w)/σ(v)·(1+δ(v)) with per-vertex score δ(w);
//              stress uses p(w) = Σ_succ (1+p(v)) with score σ(w)·p(w).
//   Sink     — visitor receiving per-vertex and/or per-edge contributions.
//              Which callbacks exist is a compile-time property
//              (kWantVertex / kWantEdge), so unused accumulation compiles
//              out of the hot loop.
//   kMasked  — compile-time switch for the alive-edge mask the divisive
//              algorithms maintain (no per-arc branch when unmasked).
//   Scratch  — per-thread pooled traversal state with touched-only reset:
//              a traversal that visits n_c vertices costs O(n_c) to clean
//              up, not O(n), which is what makes component-restricted
//              rescoring in GN / pBD O(n_c(m_c+n_c)) per round.
//
// Determinism rules (see docs/ALGORITHMS.md "Brandes engine")
//   * A single source traversal is serial and bitwise deterministic.
//   * kStaticBlocked source scheduling + reduce_partials gives run-to-run
//     bitwise-identical sums at a fixed thread count: thread t owns the
//     contiguous source block [n·t/nt, n·(t+1)/nt) and partials are folded
//     in ascending thread order for every element.  GN / pBD scoring uses
//     this mode, which is what makes component-restricted and
//     full-recompute runs produce identical dendrograms.
//   * kDynamicChunked trades that reproducibility for load balance (chunked
//     cursor handout); plain betweenness_centrality uses it.
//   * Float scores are NOT invariant across *different* thread counts (the
//     block boundaries move); integer-valued scores (trees, path counts)
//     are, because integer double sums are exact in any order.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "snap/graph/csr_graph.hpp"
#include "snap/kernels/frontier.hpp"
#include "snap/util/parallel.hpp"

namespace snap::brandes {

// ---------------------------------------------------------------- policies

/// Betweenness dependency: fractional path counts through the successor.
struct BetweennessPolicy {
  static double arc_contribution(double sigma_w, double sigma_v,
                                 double delta_v) {
    return sigma_w / sigma_v * (1.0 + delta_v);
  }
  static double vertex_score(double /*sigma_w*/, double delta_w) {
    return delta_w;
  }
};

/// Stress dependency: *counts* of shortest paths through w, not fractions
/// [Brandes 2008 variants].
struct StressPolicy {
  static double arc_contribution(double /*sigma_w*/, double /*sigma_v*/,
                                 double delta_v) {
    return 1.0 + delta_v;
  }
  static double vertex_score(double sigma_w, double delta_w) {
    return sigma_w * delta_w;
  }
};

// ------------------------------------------------------------------- sinks

/// Accumulate into caller-owned dense arrays.  Template flags select which
/// accumulation paths are compiled into the traversal.
template <bool WantVertex, bool WantEdge>
struct ArraySink {
  static constexpr bool kWantVertex = WantVertex;
  static constexpr bool kWantEdge = WantEdge;
  double* vertex = nullptr;
  double* edge = nullptr;
  void add_vertex(vid_t w, double c) {
    vertex[static_cast<std::size_t>(w)] += c;
  }
  void add_edge(eid_t id, double c) { edge[static_cast<std::size_t>(id)] += c; }
};

/// Track the dependency of a single edge (the adaptive-sampling estimator).
struct SingleEdgeSink {
  static constexpr bool kWantVertex = false;
  static constexpr bool kWantEdge = true;
  eid_t target = kInvalidEid;
  double sum = 0;
  void add_vertex(vid_t, double) {}
  void add_edge(eid_t id, double c) {
    if (id == target) sum += c;
  }
};

// ----------------------------------------------------------------- scratch

/// Per-thread traversal state, pooled across sources (and across rounds in
/// the divisive algorithms).  All arrays are O(n) and allocated once; after
/// a traversal only the entries it touched are reset (`order` records the
/// visit/settle sequence, which is exactly the touched set — every vertex
/// whose dist/sigma/delta/settled slot was written ends up in `order`).
class SourceScratch {
 public:
  void ensure_unweighted(vid_t n) {
    if (static_cast<vid_t>(dist_.size()) < n) {
      dist_.resize(static_cast<std::size_t>(n), -1);
      grow_common(n);
    }
  }

  void ensure_weighted(vid_t n) {
    if (static_cast<vid_t>(wdist_.size()) < n) {
      wdist_.resize(static_cast<std::size_t>(n),
                    std::numeric_limits<weight_t>::infinity());
      settled_.resize(static_cast<std::size_t>(n), 0);
      grow_common(n);
    }
  }

  /// Reset only the entries the previous traversal touched.
  void reset_touched() {
    const bool unweighted = !dist_.empty();
    const bool weighted = !wdist_.empty();
    for (vid_t v : order_) {
      const auto i = static_cast<std::size_t>(v);
      if (unweighted) dist_[i] = -1;
      if (weighted) {
        wdist_[i] = std::numeric_limits<weight_t>::infinity();
        settled_[i] = 0;
      }
      sigma_[i] = 0;
      delta_[i] = 0;
    }
    order_.clear();
  }

  std::vector<std::int64_t>& dist() { return dist_; }
  std::vector<weight_t>& wdist() { return wdist_; }
  std::vector<std::uint8_t>& settled() { return settled_; }
  std::vector<double>& sigma() { return sigma_; }
  std::vector<double>& delta() { return delta_; }
  [[nodiscard]] const std::vector<double>& delta() const { return delta_; }
  std::vector<vid_t>& order() { return order_; }
  [[nodiscard]] const std::vector<vid_t>& order() const { return order_; }

 private:
  void grow_common(vid_t n) {
    sigma_.resize(static_cast<std::size_t>(n), 0);
    delta_.resize(static_cast<std::size_t>(n), 0);
    order_.reserve(static_cast<std::size_t>(n));
  }

  std::vector<std::int64_t> dist_;     // unweighted BFS depth, -1 = unseen
  std::vector<weight_t> wdist_;        // weighted distance, inf = unseen
  std::vector<std::uint8_t> settled_;  // weighted: popped-and-final flag
  std::vector<double> sigma_;          // shortest-path counts
  std::vector<double> delta_;          // dependencies
  std::vector<vid_t> order_;           // visit (BFS) / settle (Dijkstra) order
};

// ------------------------------------------------------------ source runs

/// One unweighted Brandes traversal from `s`: BFS forward pass counting
/// shortest paths, then the reverse sweep in *successor form* — visiting
/// vertices in reverse BFS order, every shortest-path successor v of w
/// (dist[v] == dist[w] + 1) already holds its final dependency, so
///   δ(w) = Σ_v Policy::arc_contribution(σ(w), σ(v), δ(v)).
/// Predecessors stay implicit (no predecessor sets — SNAP's small-world
/// memory optimization, §3), and only out-adjacency is read, so the same
/// sweep is correct for directed graphs.
template <class Policy, bool kMasked, class Sink>
void run_source(const CSRGraph& g, vid_t s, const std::uint8_t* edge_alive,
                SourceScratch& sc, Sink& sink) {
  sc.ensure_unweighted(g.num_vertices());
  sc.reset_touched();
  auto& dist = sc.dist();
  auto& sigma = sc.sigma();
  auto& delta = sc.delta();
  auto& order = sc.order();

  dist[static_cast<std::size_t>(s)] = 0;
  sigma[static_cast<std::size_t>(s)] = 1;
  order.push_back(s);
  // `order` doubles as the BFS queue (it is visit-ordered).
  for (std::size_t head = 0; head < order.size(); ++head) {
    const vid_t u = order[head];
    const std::int64_t du = dist[static_cast<std::size_t>(u)];
    const auto nb = g.neighbors(u);
    const auto ids = g.edge_ids(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if constexpr (kMasked) {
        if (!edge_alive[static_cast<std::size_t>(ids[i])]) continue;
      }
      const vid_t v = nb[i];
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] = du + 1;
        order.push_back(v);
      }
      if (dist[static_cast<std::size_t>(v)] == du + 1)
        sigma[static_cast<std::size_t>(v)] += sigma[static_cast<std::size_t>(u)];
    }
  }
  for (std::size_t i = order.size(); i-- > 0;) {
    const vid_t w = order[i];
    const std::int64_t dw = dist[static_cast<std::size_t>(w)];
    const double sw = sigma[static_cast<std::size_t>(w)];
    const auto nb = g.neighbors(w);
    const auto ids = g.edge_ids(w);
    double dsum = 0;
    for (std::size_t j = 0; j < nb.size(); ++j) {
      if constexpr (kMasked) {
        if (!edge_alive[static_cast<std::size_t>(ids[j])]) continue;
      }
      const vid_t v = nb[j];
      if (dist[static_cast<std::size_t>(v)] != dw + 1) continue;
      const double c = Policy::arc_contribution(
          sw, sigma[static_cast<std::size_t>(v)],
          delta[static_cast<std::size_t>(v)]);
      dsum += c;
      if constexpr (Sink::kWantEdge) sink.add_edge(ids[j], c);
    }
    delta[static_cast<std::size_t>(w)] += dsum;
    if constexpr (Sink::kWantVertex) {
      if (w != s)
        sink.add_vertex(w, Policy::vertex_score(
                               sw, delta[static_cast<std::size_t>(w)]));
    }
  }
}

/// Weighted Brandes traversal: Dijkstra forward phase producing a settle
/// order (a topological order of the shortest-path DAG), then the same
/// successor-form sweep with the weighted tightness test
/// dist[v] == dist[w] + w(w,v).  The settled flag lives in the pooled
/// scratch and is reset touched-only — no O(n) assign per source.
template <class Policy, bool kMasked, class Sink>
void run_source_weighted(const CSRGraph& g, vid_t s,
                         const std::uint8_t* edge_alive, SourceScratch& sc,
                         Sink& sink) {
  sc.ensure_weighted(g.num_vertices());
  sc.reset_touched();
  auto& dist = sc.wdist();
  auto& settled = sc.settled();
  auto& sigma = sc.sigma();
  auto& delta = sc.delta();
  auto& order = sc.order();

  using Item = std::pair<weight_t, vid_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(s)] = 0;
  sigma[static_cast<std::size_t>(s)] = 1;
  pq.push({0, s});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (settled[static_cast<std::size_t>(u)]) continue;
    settled[static_cast<std::size_t>(u)] = 1;
    order.push_back(u);
    const auto nb = g.neighbors(u);
    const auto ws = g.weights(u);
    const auto ids = g.edge_ids(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if constexpr (kMasked) {
        if (!edge_alive[static_cast<std::size_t>(ids[i])]) continue;
      }
      const vid_t v = nb[i];
      const weight_t nd = d + ws[i];
      if (nd < dist[static_cast<std::size_t>(v)]) {
        // A vertex can be relaxed without ever being settled only if it is
        // later settled via this pq entry, so `order` still covers every
        // touched slot.
        dist[static_cast<std::size_t>(v)] = nd;
        sigma[static_cast<std::size_t>(v)] = sigma[static_cast<std::size_t>(u)];
        pq.push({nd, v});
      } else if (nd == dist[static_cast<std::size_t>(v)] &&
                 !settled[static_cast<std::size_t>(v)]) {
        sigma[static_cast<std::size_t>(v)] += sigma[static_cast<std::size_t>(u)];
      }
    }
  }
  // Reverse settle order = reverse topological order of the SP DAG.
  for (std::size_t i = order.size(); i-- > 0;) {
    const vid_t w = order[i];
    const weight_t dw = dist[static_cast<std::size_t>(w)];
    const double sw = sigma[static_cast<std::size_t>(w)];
    const auto nb = g.neighbors(w);
    const auto ws = g.weights(w);
    const auto ids = g.edge_ids(w);
    double dsum = 0;
    for (std::size_t j = 0; j < nb.size(); ++j) {
      if constexpr (kMasked) {
        if (!edge_alive[static_cast<std::size_t>(ids[j])]) continue;
      }
      const vid_t v = nb[j];
      if (dist[static_cast<std::size_t>(v)] != dw + ws[j]) continue;
      const double c = Policy::arc_contribution(
          sw, sigma[static_cast<std::size_t>(v)],
          delta[static_cast<std::size_t>(v)]);
      dsum += c;
      if constexpr (Sink::kWantEdge) sink.add_edge(ids[j], c);
    }
    delta[static_cast<std::size_t>(w)] += dsum;
    if constexpr (Sink::kWantVertex) {
      if (w != s)
        sink.add_vertex(w, Policy::vertex_score(
                               sw, delta[static_cast<std::size_t>(w)]));
    }
  }
}

// ------------------------------------------------------ source scheduling

/// How a coarse-grained run hands the source list to the thread team.
enum class SourceSchedule {
  /// Chunked cursor handout: best load balance, but which thread processes
  /// which source is scheduling-dependent, so float partials are not
  /// run-to-run reproducible.
  kDynamicChunked,
  /// Thread t owns the contiguous block [n·t/nt, n·(t+1)/nt), processed in
  /// ascending order: per-thread partials are a pure function of
  /// (source list, nt), making the reduced sums run-to-run deterministic.
  kStaticBlocked,
};

/// Sources per cursor grab in kDynamicChunked mode — amortizes the
/// fetch_add (the seed grabbed one source at a time) without starving the
/// tail of the schedule.
inline constexpr std::int64_t kSourceChunk = 8;

/// Invoke `body(i)` for every source index this thread is responsible for.
/// Called from inside a parallel::run_team body.
template <class Body>
void thread_source_loop(int t, int nt, std::int64_t num_sources,
                        SourceSchedule sched,
                        std::atomic<std::int64_t>& cursor, Body&& body) {
  if (sched == SourceSchedule::kStaticBlocked) {
    const std::int64_t lo = num_sources * t / nt;
    const std::int64_t hi = num_sources * (t + 1) / nt;
    for (std::int64_t i = lo; i < hi; ++i) body(i);
    return;
  }
  for (;;) {
    const std::int64_t lo =
        cursor.fetch_add(kSourceChunk, std::memory_order_relaxed);
    if (lo >= num_sources) break;
    const std::int64_t hi = std::min(num_sources, lo + kSourceChunk);
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
}

// --------------------------------------------------------------- reduction

/// Deterministic parallel reduction of per-thread accumulators:
/// out[i] = scale * Σ_t parts[t][i].  Parallelized over contiguous element
/// blocks; within an element the partials are folded in ascending thread
/// order, so the summation order per element is fixed no matter how many
/// worker threads execute the reduction.  Replaces the serial
/// O(p·(n+m)) thread-major loops the seed used.
inline void reduce_partials(const std::vector<std::vector<double>>& parts,
                            std::size_t len, double scale, double* out) {
  const auto n = static_cast<std::int64_t>(len);
  parallel::parallel_for(n, [&](std::int64_t i) {
    double acc = 0;
    for (const auto& p : parts) acc += p[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] = scale * acc;
  });
}

// -------------------------------------------------------- fine granularity

/// Fine-grained Brandes (§3's low-memory mode): one traversal at a time,
/// parallelism *within* the level-synchronous forward pass (arc-balanced
/// frontier expansion) and the level-by-level backward sweep.  O(m+n) shared
/// state.  Perf structure:
///   * level buffers are pooled and swapped, never copied;
///   * between sources only the vertices the previous traversal touched are
///     reinitialized (the level lists record exactly that set).
/// Returns raw (unhalved) vertex/edge accumulators sized n / m.
inline void fine_grained_accumulate(const CSRGraph& g,
                                    std::vector<double>& vacc,
                                    std::vector<double>& eacc) {
  const vid_t n = g.num_vertices();
  std::vector<std::atomic<std::int64_t>> dist(static_cast<std::size_t>(n));
  std::vector<std::atomic<double>> sigma(static_cast<std::size_t>(n));
  std::vector<std::atomic<double>> delta(static_cast<std::size_t>(n));
  vacc.assign(static_cast<std::size_t>(n), 0.0);
  eacc.assign(static_cast<std::size_t>(g.num_edges()), 0.0);

  parallel::parallel_for(n, [&](vid_t v) {
    dist[static_cast<std::size_t>(v)].store(-1, std::memory_order_relaxed);
    sigma[static_cast<std::size_t>(v)].store(0, std::memory_order_relaxed);
    delta[static_cast<std::size_t>(v)].store(0, std::memory_order_relaxed);
  });

  std::vector<std::vector<vid_t>> levels;  // pooled level buffers
  std::size_t depth = 0;                   // levels used by the last source
  FrontierPool pool;                       // per-level expansion scratch
  std::vector<vid_t> next;                 // reused level output
  for (vid_t s = 0; s < n; ++s) {
    // Touched-only reinit: the previous source's level lists are exactly its
    // visited set (the seed re-zeroed all n slots per source).
    for (std::size_t li = 0; li < depth; ++li) {
      const auto& lvl = levels[li];
      parallel::parallel_for(
          static_cast<std::int64_t>(lvl.size()), [&](std::int64_t i) {
            const auto v =
                static_cast<std::size_t>(lvl[static_cast<std::size_t>(i)]);
            dist[v].store(-1, std::memory_order_relaxed);
            sigma[v].store(0, std::memory_order_relaxed);
            delta[v].store(0, std::memory_order_relaxed);
          });
    }
    dist[static_cast<std::size_t>(s)].store(0);
    sigma[static_cast<std::size_t>(s)].store(1);
    if (levels.empty()) levels.emplace_back();
    levels[0].assign(1, s);
    depth = 1;

    // Forward: level-synchronous path counting on the shared frontier
    // substrate — arcs of the level are split evenly across threads, so a
    // hub in the frontier cannot serialize the expansion.
    while (!levels[depth - 1].empty()) {
      const auto& cur = levels[depth - 1];
      const auto d = static_cast<std::int64_t>(depth) - 1;
      expand_arc_balanced(g, cur, next, pool, [&](vid_t u, vid_t v) {
        const double su =
            sigma[static_cast<std::size_t>(u)].load(std::memory_order_relaxed);
        std::int64_t expected = -1;
        const bool newly =
            dist[static_cast<std::size_t>(v)].compare_exchange_strong(
                expected, d + 1, std::memory_order_relaxed);
        if (dist[static_cast<std::size_t>(v)].load(std::memory_order_relaxed) ==
            d + 1) {
          // reduction: path-count accumulation; addition order varies with
          // scheduling.  Counts are integers, so the sum is exact (and
          // thread-count invariant) until sigma exceeds 2^53.
          parallel::atomic_add(sigma[static_cast<std::size_t>(v)], su);
        }
        return newly;
      });
      if (levels.size() <= depth) levels.emplace_back();
      levels[depth].swap(next);  // keep both buffers' capacity pooled
      ++depth;
    }

    // Backward: accumulate dependencies level by level (deepest first) in
    // successor form — each w reads only deeper (already-final) deltas and
    // writes only its own slots, so the level sweep needs no atomics.
    for (std::size_t li = depth; li-- > 0;) {
      const auto& lvl = levels[li];
      parallel::parallel_for_dynamic(
          static_cast<std::int64_t>(lvl.size()),
          [&](std::int64_t i) {
            const vid_t w = lvl[static_cast<std::size_t>(i)];
            const std::int64_t dw =
                dist[static_cast<std::size_t>(w)].load(
                    std::memory_order_relaxed);
            const double sw = sigma[static_cast<std::size_t>(w)].load(
                std::memory_order_relaxed);
            const auto nb = g.neighbors(w);
            const auto ids = g.edge_ids(w);
            double dsum = 0;
            for (std::size_t j = 0; j < nb.size(); ++j) {
              const vid_t v = nb[j];
              if (dist[static_cast<std::size_t>(v)].load(
                      std::memory_order_relaxed) != dw + 1)
                continue;
              const double c = BetweennessPolicy::arc_contribution(
                  sw,
                  sigma[static_cast<std::size_t>(v)].load(
                      std::memory_order_relaxed),
                  delta[static_cast<std::size_t>(v)].load(
                      std::memory_order_relaxed));
              dsum += c;
              // Each edge has exactly one endpoint on the shallower level,
              // so eacc[id] is written by one vertex per sweep: no atomics.
              eacc[static_cast<std::size_t>(ids[j])] += c;
            }
            delta[static_cast<std::size_t>(w)].store(
                dsum, std::memory_order_relaxed);
            if (w != s) vacc[static_cast<std::size_t>(w)] += dsum;
          },
          /*chunk=*/64);
    }
  }
}

// ------------------------------------------------------- component scoring

/// Edge-betweenness scorer for the divisive community algorithms (GN, pBD):
/// scores one component at a time, with traversal sources restricted to the
/// component, per-thread pooled scratch and accumulators, and the
/// deterministic kStaticBlocked schedule — score(C) is a pure function of
/// (component vertex list, alive mask, thread count), which is the property
/// the component-restricted recomputation argument rests on (see
/// docs/ALGORITHMS.md).
///
/// Accumulators are full-length (indexed by logical edge id) but touched
/// entries are zeroed during the merge, so a rescoring round costs
/// O(sources · (m_c + n_c)), independent of the full graph size.
class ComponentScorer {
 public:
  explicit ComponentScorer(const CSRGraph& g) : g_(g) {}

  /// Serial scoring cutoff: components with at most this many vertices are
  /// scored by one thread (callers may then score several such components
  /// concurrently via `score_serial` on distinct slots).
  static constexpr vid_t kSerialCutoff = 256;

  /// Pre-allocate pooled slots.  Must be called before `score_serial` is
  /// used from concurrent threads — slot allocation itself is not
  /// thread-safe, only use of distinct already-allocated slots is.
  void reserve(int nslots) { prepare(nslots); }

  /// Score the component `verts` from `sources` (both in ascending vertex
  /// order), writing scale * betweenness into `scores[edge_id]` for every
  /// alive edge of the component.  Uses source-parallel traversals for
  /// components above `serial_cutoff` vertices and one serial pass below;
  /// the cutoff is per-component (never a function of other components'
  /// state), so score(C) stays a pure function of (C, alive|C, nt) — either
  /// path is bitwise-deterministic at a fixed thread count.
  void score(const std::vector<vid_t>& verts, const std::vector<vid_t>& sources,
             const std::vector<std::uint8_t>& alive, double scale,
             std::vector<double>& scores, vid_t serial_cutoff = kSerialCutoff) {
    if (verts.size() < 2) return;
    const int nt = parallel::num_threads();
    if (nt == 1 || static_cast<vid_t>(verts.size()) <= serial_cutoff) {
      score_serial(0, verts, sources, alive, scale, scores);
      return;
    }
    prepare(nt);
    const auto num_sources = static_cast<std::int64_t>(sources.size());
    std::atomic<std::int64_t> cursor{0};
    parallel::run_team(nt, [&](int t) {
      auto& part = partial(t);
      auto& sc = scratch_[static_cast<std::size_t>(t)];
      ArraySink</*v=*/false, /*e=*/true> sink{nullptr, part.data()};
      thread_source_loop(t, nt, num_sources, SourceSchedule::kStaticBlocked,
                         cursor, [&](std::int64_t i) {
                           run_source<BetweennessPolicy, /*kMasked=*/true>(
                               g_, sources[static_cast<std::size_t>(i)],
                               alive.data(), sc, sink);
                         });
    });
    merge(nt, verts, alive, scale, scores);
  }

  /// Serial variant pinned to scratch/accumulator `slot`; safe to call
  /// concurrently for components with disjoint edge sets as long as each
  /// caller uses a distinct slot (pBD's coarse granularity mode).
  void score_serial(int slot, const std::vector<vid_t>& verts,
                    const std::vector<vid_t>& sources,
                    const std::vector<std::uint8_t>& alive, double scale,
                    std::vector<double>& scores) {
    if (verts.size() < 2) return;
    prepare(slot + 1);
    auto& part = partial(slot);
    auto& sc = scratch_[static_cast<std::size_t>(slot)];
    ArraySink</*v=*/false, /*e=*/true> sink{nullptr, part.data()};
    for (vid_t s : sources)
      run_source<BetweennessPolicy, /*kMasked=*/true>(g_, s, alive.data(), sc,
                                                      sink);
    merge_slot_range(slot, slot + 1, verts, alive, scale, scores,
                     /*parallel=*/false);
  }

  /// Number of pooled slots currently allocated (for tests).
  [[nodiscard]] int slots() const { return static_cast<int>(scratch_.size()); }

 private:
  void prepare(int nt) {
    if (static_cast<int>(scratch_.size()) < nt) {
      scratch_.resize(static_cast<std::size_t>(nt));
      partial_.resize(static_cast<std::size_t>(nt));
    }
  }

  std::vector<double>& partial(int t) {
    auto& p = partial_[static_cast<std::size_t>(t)];
    // Zero-initialized on first use; thereafter the merge re-zeroes every
    // touched entry, so the invariant "all zero on entry" holds.
    if (p.empty()) p.assign(static_cast<std::size_t>(g_.num_edges()), 0.0);
    return p;
  }

  void merge(int nt, const std::vector<vid_t>& verts,
             const std::vector<std::uint8_t>& alive, double scale,
             std::vector<double>& scores) {
    merge_slot_range(0, nt, verts, alive, scale, scores, /*parallel=*/true);
  }

  /// scores[id] = scale * Σ_slot partial[slot][id] for every alive edge of
  /// the component (visited once via its lower-endpoint arc), then zero the
  /// partial entries (touched-only reset of the pooled accumulators).
  /// Ascending-slot fold per edge keeps the sum order fixed.
  void merge_slot_range(int lo_slot, int hi_slot,
                        const std::vector<vid_t>& verts,
                        const std::vector<std::uint8_t>& alive, double scale,
                        std::vector<double>& scores, bool parallel) {
    auto merge_vertex = [&](vid_t u) {
      const auto nb = g_.neighbors(u);
      const auto ids = g_.edge_ids(u);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (nb[i] < u) continue;  // one visit per undirected edge
        const auto id = static_cast<std::size_t>(ids[i]);
        double acc = 0;
        for (int t = lo_slot; t < hi_slot; ++t) {
          auto& p = partial_[static_cast<std::size_t>(t)];
          if (p.empty()) continue;
          acc += p[id];
          p[id] = 0;
        }
        if (alive[id]) scores[id] = scale * acc;
      }
    };
    if (parallel) {
      parallel::parallel_for_dynamic(
          static_cast<std::int64_t>(verts.size()),
          [&](std::int64_t i) {
            merge_vertex(verts[static_cast<std::size_t>(i)]);
          },
          /*chunk=*/64);
    } else {
      for (vid_t u : verts) merge_vertex(u);
    }
  }

  const CSRGraph& g_;
  std::vector<SourceScratch> scratch_;
  std::vector<std::vector<double>> partial_;
};

}  // namespace snap::brandes
