#include "snap/kernels/bfs.hpp"

#include <algorithm>
#include <atomic>

#include "snap/util/bitmap.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

namespace {

BFSResult make_result(vid_t n, vid_t source) {
  BFSResult r;
  r.parent.assign(static_cast<std::size_t>(n), kInvalidVid);
  r.dist.assign(static_cast<std::size_t>(n), -1);
  r.parent[source] = source;
  r.dist[source] = 0;
  r.num_visited = 1;
  return r;
}

}  // namespace

BFSResult bfs_serial(const CSRGraph& g, vid_t source) {
  BFSResult r = make_result(g.num_vertices(), source);
  std::vector<vid_t> frontier{source}, next;
  std::int64_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (vid_t u : frontier) {
      for (vid_t v : g.neighbors(u)) {
        if (r.dist[v] < 0) {
          r.dist[v] = level;
          r.parent[v] = u;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
    r.num_visited += static_cast<vid_t>(frontier.size());
  }
  r.num_levels = level - 1;
  return r;
}

BFSResult bfs_bounded(const CSRGraph& g, vid_t source,
                      std::int64_t max_depth) {
  BFSResult r = make_result(g.num_vertices(), source);
  std::vector<vid_t> frontier{source}, next;
  std::int64_t level = 0;
  while (!frontier.empty() && level < max_depth) {
    ++level;
    next.clear();
    for (vid_t u : frontier) {
      for (vid_t v : g.neighbors(u)) {
        if (r.dist[v] < 0) {
          r.dist[v] = level;
          r.parent[v] = u;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
    r.num_visited += static_cast<vid_t>(frontier.size());
  }
  r.num_levels = frontier.empty() ? level - 1 : level;
  return r;
}

BFSResult bfs(const CSRGraph& g, vid_t source) {
  const vid_t n = g.num_vertices();
  BFSResult r = make_result(n, source);
  AtomicBitmap visited(static_cast<std::size_t>(n));
  visited.set(static_cast<std::size_t>(source));

  std::vector<vid_t> frontier{source};
  const int nt = parallel::num_threads();
  std::vector<std::vector<vid_t>> local_next(static_cast<std::size_t>(nt));
  std::int64_t level = 0;

  while (!frontier.empty()) {
    ++level;
    // Arc-balanced expansion: prefix-sum the frontier degrees so threads
    // split the *arcs* of this level evenly — the paper's fix for severe
    // work imbalance under skewed degree distributions (§3).
    const auto fsz = static_cast<std::int64_t>(frontier.size());
    std::vector<eid_t> degs(static_cast<std::size_t>(fsz));
    parallel::parallel_for(fsz, [&](std::int64_t i) {
      degs[static_cast<std::size_t>(i)] = g.degree(frontier[i]);
    });
    std::vector<eid_t> off;
    parallel::exclusive_prefix_sum(degs, off);
    const eid_t total_arcs = off[static_cast<std::size_t>(fsz)];

#pragma omp parallel num_threads(nt)
    {
      const int t = omp_get_thread_num();
      auto& out = local_next[static_cast<std::size_t>(t)];
      out.clear();
      const eid_t arc_lo = total_arcs * t / nt;
      const eid_t arc_hi = total_arcs * (t + 1) / nt;
      if (arc_lo < arc_hi) {
        // First frontier vertex whose arc range intersects [arc_lo, arc_hi).
        std::int64_t i = static_cast<std::int64_t>(
            std::upper_bound(off.begin(), off.end(), arc_lo) - off.begin() - 1);
        for (; i < fsz && off[static_cast<std::size_t>(i)] < arc_hi; ++i) {
          const vid_t u = frontier[i];
          const auto nb = g.neighbors(u);
          const eid_t base = off[static_cast<std::size_t>(i)];
          const eid_t lo = std::max<eid_t>(arc_lo - base, 0);
          const eid_t hi =
              std::min<eid_t>(arc_hi - base, static_cast<eid_t>(nb.size()));
          for (eid_t j = lo; j < hi; ++j) {
            const vid_t v = nb[static_cast<std::size_t>(j)];
            if (visited.test_and_set(static_cast<std::size_t>(v))) {
              r.dist[v] = level;
              r.parent[v] = u;
              out.push_back(v);
            }
          }
        }
      }
    }

    frontier.clear();
    for (auto& buf : local_next) {
      frontier.insert(frontier.end(), buf.begin(), buf.end());
    }
    r.num_visited += static_cast<vid_t>(frontier.size());
  }
  r.num_levels = level - 1;
  return r;
}

BFSResult bfs_masked(const CSRGraph& g, vid_t source,
                     const std::vector<std::uint8_t>& edge_alive) {
  BFSResult r = make_result(g.num_vertices(), source);
  std::vector<vid_t> frontier{source}, next;
  std::int64_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (vid_t u : frontier) {
      const auto nb = g.neighbors(u);
      const auto ids = g.edge_ids(u);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (!edge_alive[static_cast<std::size_t>(ids[i])]) continue;
        const vid_t v = nb[i];
        if (r.dist[v] < 0) {
          r.dist[v] = level;
          r.parent[v] = u;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
    r.num_visited += static_cast<vid_t>(frontier.size());
  }
  r.num_levels = level - 1;
  return r;
}

}  // namespace snap
