#include "snap/kernels/bfs.hpp"

#include "snap/kernels/frontier.hpp"

namespace snap {

namespace {

BFSResult make_result(vid_t n, vid_t source) {
  BFSResult r;
  r.parent.assign(static_cast<std::size_t>(n), kInvalidVid);
  r.dist.assign(static_cast<std::size_t>(n), -1);
  r.parent[source] = source;
  r.dist[source] = 0;
  r.num_visited = 1;
  return r;
}

}  // namespace

BFSResult bfs_serial(const CSRGraph& g, vid_t source) {
  BFSResult r = make_result(g.num_vertices(), source);
  std::vector<vid_t> frontier{source}, next;
  std::int64_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (vid_t u : frontier) {
      for (vid_t v : g.neighbors(u)) {
        if (r.dist[v] < 0) {
          r.dist[v] = level;
          r.parent[v] = u;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
    r.num_visited += static_cast<vid_t>(frontier.size());
  }
  r.num_levels = level - 1;
  return r;
}

BFSResult bfs_bounded(const CSRGraph& g, vid_t source,
                      std::int64_t max_depth) {
  BfsEngine engine;
  HybridBFSOptions opts;
  opts.max_depth = max_depth;
  return engine.run(g, source, opts);
}

BFSResult bfs(const CSRGraph& g, vid_t source) {
  BfsEngine engine;
  return engine.run(g, source);
}

BFSResult bfs_push(const CSRGraph& g, vid_t source) {
  BfsEngine engine;
  HybridBFSOptions opts;
  opts.enable_pull = false;
  return engine.run(g, source, opts);
}

BFSResult bfs_hybrid(const CSRGraph& g, vid_t source,
                     const HybridBFSOptions& opts,
                     std::vector<BfsLevelStats>* trace) {
  BfsEngine engine;
  return engine.run(g, source, opts, trace);
}

BFSResult bfs_masked(const CSRGraph& g, vid_t source,
                     const std::vector<std::uint8_t>& edge_alive) {
  BFSResult r = make_result(g.num_vertices(), source);
  std::vector<vid_t> frontier{source}, next;
  std::int64_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (vid_t u : frontier) {
      const auto nb = g.neighbors(u);
      const auto ids = g.edge_ids(u);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (!edge_alive[static_cast<std::size_t>(ids[i])]) continue;
        const vid_t v = nb[i];
        if (r.dist[v] < 0) {
          r.dist[v] = level;
          r.parent[v] = u;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
    r.num_visited += static_cast<vid_t>(frontier.size());
  }
  r.num_levels = level - 1;
  return r;
}

}  // namespace snap
