#include "snap/kernels/connected_components.hpp"

#include <algorithm>
#include <atomic>

#include "snap/util/parallel.hpp"

namespace snap {

std::vector<vid_t> Components::sizes() const {
  std::vector<vid_t> s(static_cast<std::size_t>(count), 0);
  for (vid_t l : label) ++s[static_cast<std::size_t>(l)];
  return s;
}

vid_t Components::giant() const {
  const auto s = sizes();
  if (s.empty()) return kInvalidVid;
  return static_cast<vid_t>(std::max_element(s.begin(), s.end()) - s.begin());
}

namespace {

/// Hook-and-shortcut over an edge predicate; the workhorse for both the
/// plain and the masked variant.
template <typename EdgeAlive>
Components sv_components(const CSRGraph& g, EdgeAlive&& alive) {
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  std::vector<std::atomic<vid_t>> comp(static_cast<std::size_t>(n));
  parallel::parallel_for(n, [&](vid_t v) {
    comp[static_cast<std::size_t>(v)].store(v, std::memory_order_relaxed);
  });

  const auto& edges = g.edges();
  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    // Hook: point the larger label's root at the smaller label.
    parallel::parallel_for(m, [&](eid_t e) {
      if (!alive(e)) return;
      const vid_t u = edges[static_cast<std::size_t>(e)].u;
      const vid_t v = edges[static_cast<std::size_t>(e)].v;
      const vid_t cu = comp[static_cast<std::size_t>(u)].load(
          std::memory_order_relaxed);
      const vid_t cv = comp[static_cast<std::size_t>(v)].load(
          std::memory_order_relaxed);
      if (cu == cv) return;
      const vid_t hi = std::max(cu, cv);
      const vid_t lo = std::min(cu, cv);
      // Only hook roots (comp[hi] == hi) to keep the forest shallow; the
      // benign race (two edges hooking the same root) resolves because both
      // writes lower the label and later shortcut rounds converge.
      vid_t expected = hi;
      if (comp[static_cast<std::size_t>(hi)].compare_exchange_strong(
              expected, lo, std::memory_order_relaxed)) {
        changed.store(true, std::memory_order_relaxed);
      } else if (expected > lo) {
        // hi was no longer a root; retry next round.
        changed.store(true, std::memory_order_relaxed);
      }
    });
    // Shortcut: pointer-jump every vertex to its grandparent until flat.
    parallel::parallel_for(n, [&](vid_t v) {
      vid_t c = comp[static_cast<std::size_t>(v)].load(
          std::memory_order_relaxed);
      while (true) {
        const vid_t cc =
            comp[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
        if (cc == c) break;
        c = cc;
      }
      comp[static_cast<std::size_t>(v)].store(c, std::memory_order_relaxed);
    });
  }

  // Densify labels to 0..count-1.
  Components out;
  out.label.resize(static_cast<std::size_t>(n));
  std::vector<vid_t> dense(static_cast<std::size_t>(n), kInvalidVid);
  vid_t next = 0;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t root =
        comp[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    if (dense[static_cast<std::size_t>(root)] == kInvalidVid)
      dense[static_cast<std::size_t>(root)] = next++;
    out.label[static_cast<std::size_t>(v)] = dense[static_cast<std::size_t>(root)];
  }
  out.count = next;
  return out;
}

}  // namespace

Components connected_components(const CSRGraph& g) {
  return sv_components(g, [](eid_t) { return true; });
}

Components connected_components_masked(
    const CSRGraph& g, const std::vector<std::uint8_t>& edge_alive) {
  return sv_components(g, [&](eid_t e) {
    return edge_alive[static_cast<std::size_t>(e)] != 0;
  });
}

}  // namespace snap
