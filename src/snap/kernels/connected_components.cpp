#include "snap/kernels/connected_components.hpp"

#include <algorithm>
#include <atomic>

#include "snap/debug/check.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

std::vector<vid_t> Components::sizes() const {
  std::vector<vid_t> s(static_cast<std::size_t>(count), 0);
  for (vid_t l : label) ++s[static_cast<std::size_t>(l)];
  return s;
}

vid_t Components::giant() const {
  const auto s = sizes();
  if (s.empty()) return kInvalidVid;
  return static_cast<vid_t>(std::max_element(s.begin(), s.end()) - s.begin());
}

namespace {

/// Hook-and-shortcut over an edge predicate; the workhorse for both the
/// plain and the masked variant.
template <typename EdgeAlive>
Components sv_components(const CSRGraph& g, EdgeAlive&& alive) {
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  std::vector<std::atomic<vid_t>> comp(static_cast<std::size_t>(n));
  parallel::parallel_for(n, [&](vid_t v) {
    comp[static_cast<std::size_t>(v)].store(v, std::memory_order_relaxed);
  });

  const auto& edges = g.edges();
  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    // Hook: point the larger label's root at the smaller label.
    parallel::parallel_for(m, [&](eid_t e) {
      if (!alive(e)) return;
      const vid_t u = edges[static_cast<std::size_t>(e)].u;
      const vid_t v = edges[static_cast<std::size_t>(e)].v;
      const vid_t cu = comp[static_cast<std::size_t>(u)].load(
          std::memory_order_relaxed);
      const vid_t cv = comp[static_cast<std::size_t>(v)].load(
          std::memory_order_relaxed);
      if (cu == cv) return;
      const vid_t hi = std::max(cu, cv);
      const vid_t lo = std::min(cu, cv);
      // Only hook roots (comp[hi] == hi) to keep the forest shallow; the
      // benign race (two edges hooking the same root) resolves because both
      // writes lower the label and later shortcut rounds converge.
      vid_t expected = hi;
      if (comp[static_cast<std::size_t>(hi)].compare_exchange_strong(
              expected, lo, std::memory_order_relaxed)) {
        changed.store(true, std::memory_order_relaxed);
      } else if (expected > lo) {
        // hi was no longer a root; retry next round.
        changed.store(true, std::memory_order_relaxed);
      }
    });
    // Shortcut: pointer-jump every vertex to its grandparent until flat.
    parallel::parallel_for(n, [&](vid_t v) {
      vid_t c = comp[static_cast<std::size_t>(v)].load(
          std::memory_order_relaxed);
      while (true) {
        const vid_t cc =
            comp[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
        if (cc == c) break;
        c = cc;
      }
      comp[static_cast<std::size_t>(v)].store(c, std::memory_order_relaxed);
    });
  }

  // Densify labels to 0..count-1.
  Components out;
  out.label.resize(static_cast<std::size_t>(n));
  std::vector<vid_t> dense(static_cast<std::size_t>(n), kInvalidVid);
  vid_t next = 0;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t root =
        comp[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    if (dense[static_cast<std::size_t>(root)] == kInvalidVid)
      dense[static_cast<std::size_t>(root)] = next++;
    out.label[static_cast<std::size_t>(v)] = dense[static_cast<std::size_t>(root)];
  }
  out.count = next;
  return out;
}

}  // namespace

Components connected_components(const CSRGraph& g) {
  return sv_components(g, [](eid_t) { return true; });
}

Components connected_components_bfs(const CSRGraph& g) {
  SNAP_ASSERT(!g.directed(),
              "connected_components_bfs requires an undirected graph");
  const vid_t n = g.num_vertices();
  Components out;
  out.label.assign(static_cast<std::size_t>(n), 0);
  out.count = 0;
  std::vector<std::uint64_t> visited((static_cast<std::size_t>(n) + 63) / 64,
                                     0);
  std::vector<vid_t> queue;
  queue.reserve(static_cast<std::size_t>(n));
  for (vid_t s = 0; s < n; ++s) {
    if ((visited[static_cast<std::size_t>(s) >> 6] >> (s & 63)) & 1) continue;
    const vid_t comp = out.count++;
    visited[static_cast<std::size_t>(s) >> 6] |= std::uint64_t{1} << (s & 63);
    out.label[static_cast<std::size_t>(s)] = comp;
    queue.clear();
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const vid_t u = queue[head];
      for (const vid_t w : g.neighbors(u)) {
        const std::size_t word = static_cast<std::size_t>(w) >> 6;
        const std::uint64_t bit = std::uint64_t{1} << (w & 63);
        if (visited[word] & bit) continue;
        visited[word] |= bit;
        out.label[static_cast<std::size_t>(w)] = comp;
        queue.push_back(w);
      }
    }
  }
  return out;
}

Components connected_components_masked(
    const CSRGraph& g, const std::vector<std::uint8_t>& edge_alive) {
  return sv_components(g, [&](eid_t e) {
    return edge_alive[static_cast<std::size_t>(e)] != 0;
  });
}

}  // namespace snap
