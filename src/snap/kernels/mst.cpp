#include "snap/kernels/mst.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "snap/debug/check.hpp"
#include "snap/debug/validate.hpp"
#include "snap/ds/union_find.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

MSTResult boruvka_mst(const CSRGraph& g) {
  if (g.directed())
    throw std::invalid_argument("boruvka_mst requires an undirected graph");
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  const auto& edges = g.edges();

  // Rank edges by (weight, id): the component minimum then becomes an
  // integer atomic-min, which parallelizes cleanly and is deterministic.
  // (weight, id) is a total order, so parallel_sort yields the same ranking
  // at every thread count.
  std::vector<eid_t> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), eid_t{0});
  parallel::parallel_sort(order.begin(), order.end(), [&](eid_t a, eid_t b) {
    const weight_t wa = edges[static_cast<std::size_t>(a)].w;
    const weight_t wb = edges[static_cast<std::size_t>(b)].w;
    return wa != wb ? wa < wb : a < b;
  });
  std::vector<eid_t> rank(static_cast<std::size_t>(m));
  for (eid_t i = 0; i < m; ++i)
    rank[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;

  UnionFind uf(static_cast<std::size_t>(n));
  MSTResult r;
  constexpr eid_t kNoEdge = std::numeric_limits<eid_t>::max();
  std::vector<std::atomic<eid_t>> best(static_cast<std::size_t>(n));

  while (true) {
    parallel::parallel_for(n, [&](vid_t v) {
      best[static_cast<std::size_t>(v)].store(kNoEdge,
                                              std::memory_order_relaxed);
    });
    // Find each component's lightest outgoing edge (by rank).
    std::atomic<bool> any{false};
    parallel::parallel_for(m, [&](eid_t e) {
      const Edge& ed = edges[static_cast<std::size_t>(e)];
      const vid_t cu = uf.find_no_compress(ed.u);
      const vid_t cv = uf.find_no_compress(ed.v);
      if (cu == cv) return;
      const eid_t rk = rank[static_cast<std::size_t>(e)];
      parallel::atomic_fetch_min(best[static_cast<std::size_t>(cu)], rk);
      parallel::atomic_fetch_min(best[static_cast<std::size_t>(cv)], rk);
      any.store(true, std::memory_order_relaxed);
    });
    if (!any.load()) break;
    // Contract: serially unite along the selected edges (cheap: <= #components).
    for (vid_t v = 0; v < n; ++v) {
      const eid_t rk = best[static_cast<std::size_t>(v)].load(
          std::memory_order_relaxed);
      if (rk == kNoEdge) continue;
      const eid_t e = order[static_cast<std::size_t>(rk)];
      const Edge& ed = edges[static_cast<std::size_t>(e)];
      if (uf.unite(ed.u, ed.v)) {
        r.tree_edges.push_back(e);
        r.total_weight += ed.w;
      }
    }
  }
  r.num_trees = static_cast<vid_t>(uf.num_sets());
  SNAP_DCHECK(r.tree_edges.size() + uf.num_sets() ==
                  static_cast<std::size_t>(n),
              "forest accounting broken: ", r.tree_edges.size(),
              " tree edges + ", uf.num_sets(), " trees != ", n, " vertices");
  SNAP_VALIDATE(uf);
  return r;
}

MSTResult bfs_spanning_forest(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  MSTResult r;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
  for (vid_t root = 0; root < n; ++root) {
    if (seen[static_cast<std::size_t>(root)]) continue;
    ++r.num_trees;
    const BFSResult b = bfs(g, root);
    for (vid_t v = 0; v < n; ++v) {
      if (b.dist[static_cast<std::size_t>(v)] < 0) continue;
      seen[static_cast<std::size_t>(v)] = 1;
      if (v == root) continue;
      const vid_t p = b.parent[static_cast<std::size_t>(v)];
      // Recover the logical edge id of (p, v).
      const auto nb = g.neighbors(p);
      const auto ids = g.edge_ids(p);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (nb[i] == v) {
          r.tree_edges.push_back(ids[i]);
          r.total_weight += g.weights(p)[i];
          break;
        }
      }
    }
  }
  return r;
}

}  // namespace snap
