#include "snap/kernels/st_connectivity.hpp"

#include <atomic>
#include <limits>
#include <stdexcept>
#include <vector>

#include "snap/kernels/frontier.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

StConnectivity st_connectivity(const CSRGraph& g, vid_t s, vid_t t) {
  if (g.directed())
    throw std::invalid_argument(
        "st_connectivity requires an undirected graph");
  StConnectivity r;
  if (s == t) {
    r.connected = true;
    r.distance = 0;
    r.vertices_touched = 1;
    return r;
  }
  const vid_t n = g.num_vertices();
  // mark > 0: distance+1 from s; mark < 0: -(distance+1) from t.  Claims are
  // CAS-guarded so each level can expand on the shared frontier substrate.
  std::vector<std::atomic<std::int64_t>> mark(static_cast<std::size_t>(n));
  parallel::parallel_for(n, [&](vid_t v) {
    mark[static_cast<std::size_t>(v)].store(0, std::memory_order_relaxed);
  });
  mark[static_cast<std::size_t>(s)].store(1, std::memory_order_relaxed);
  mark[static_cast<std::size_t>(t)].store(-1, std::memory_order_relaxed);
  std::vector<vid_t> fs{s}, ft{t}, next;
  FrontierPool pool;
  std::int64_t ds = 0, dt = 0;  // depths expanded so far on each side
  r.vertices_touched = 2;

  std::atomic<std::int64_t> best{std::numeric_limits<std::int64_t>::max()};
  while (!fs.empty() && !ft.empty()) {
    // Any yet-undiscovered s-t path must exit both search balls, so its
    // length is at least ds + dt: once that bound reaches the best meeting
    // found, the best is optimal.
    if (best.load(std::memory_order_relaxed) <= ds + dt) break;
    // Expand the smaller frontier (classic bidirectional balance rule).
    const bool from_s = fs.size() <= ft.size();
    auto& frontier = from_s ? fs : ft;
    const std::int64_t depth = (from_s ? ++ds : ++dt);
    const std::int64_t claim = from_s ? depth + 1 : -(depth + 1);
    expand_arc_balanced(
        g, frontier, next, pool, [&](vid_t, vid_t v) {
          auto& mv = mark[static_cast<std::size_t>(v)];
          std::int64_t expected = 0;
          if (mv.compare_exchange_strong(expected, claim,
                                         std::memory_order_relaxed)) {
            return true;
          }
          if ((expected > 0) != from_s) {
            // The two balls met at v: total = depth on this side + recorded
            // depth on the other.  Keep the best; every meet is a real path,
            // so best only ever overestimates until the bound above closes.
            parallel::atomic_fetch_min(
                best,
                depth + (expected > 0 ? expected - 1 : -expected - 1));
          }
          return false;
        });
    frontier.swap(next);
    r.vertices_touched += static_cast<std::int64_t>(frontier.size());
  }
  const std::int64_t found = best.load(std::memory_order_relaxed);
  if (found < std::numeric_limits<std::int64_t>::max()) {
    r.connected = true;
    r.distance = found;
  }
  return r;  // otherwise one side exhausted: different components
}

}  // namespace snap
