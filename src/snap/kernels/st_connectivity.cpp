#include "snap/kernels/st_connectivity.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace snap {

StConnectivity st_connectivity(const CSRGraph& g, vid_t s, vid_t t) {
  if (g.directed())
    throw std::invalid_argument(
        "st_connectivity requires an undirected graph");
  StConnectivity r;
  if (s == t) {
    r.connected = true;
    r.distance = 0;
    r.vertices_touched = 1;
    return r;
  }
  const vid_t n = g.num_vertices();
  // dist > 0: distance+1 from s; dist < 0: -(distance+1) from t.
  std::vector<std::int64_t> mark(static_cast<std::size_t>(n), 0);
  mark[static_cast<std::size_t>(s)] = 1;
  mark[static_cast<std::size_t>(t)] = -1;
  std::vector<vid_t> fs{s}, ft{t}, next;
  std::int64_t ds = 0, dt = 0;  // depths expanded so far on each side
  r.vertices_touched = 2;

  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  while (!fs.empty() && !ft.empty()) {
    // Any yet-undiscovered s-t path must exit both search balls, so its
    // length is at least ds + dt: once that bound reaches the best meeting
    // found, the best is optimal.
    if (best <= ds + dt) break;
    // Expand the smaller frontier (classic bidirectional balance rule).
    const bool from_s = fs.size() <= ft.size();
    auto& frontier = from_s ? fs : ft;
    const std::int64_t depth = (from_s ? ++ds : ++dt);
    next.clear();
    for (vid_t u : frontier) {
      for (vid_t v : g.neighbors(u)) {
        auto& mv = mark[static_cast<std::size_t>(v)];
        if (mv == 0) {
          mv = from_s ? depth + 1 : -(depth + 1);
          next.push_back(v);
          ++r.vertices_touched;
        } else if ((mv > 0) != from_s) {
          // The two balls met at v: total = depth on this side + recorded
          // depth on the other.  Keep the best; every meet is a real path,
          // so best only ever overestimates until the bound above closes.
          best = std::min(best, depth + (mv > 0 ? mv - 1 : -mv - 1));
        }
      }
    }
    frontier.swap(next);
  }
  if (best < std::numeric_limits<std::int64_t>::max()) {
    r.connected = true;
    r.distance = best;
  }
  return r;  // otherwise one side exhausted: different components
}

}  // namespace snap
