#pragma once

#include <cstdint>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Result of an s–t connectivity query.
struct StConnectivity {
  bool connected = false;
  std::int64_t distance = -1;     ///< hop distance if connected
  std::int64_t vertices_touched = 0;  ///< work done (both search balls)
};

/// Bidirectional BFS s–t connectivity — the st-connectivity kernel SNAP
/// integrates from Bader & Madduri (ICPP'06).  Grows the smaller frontier
/// of two alternating searches; on a small-world graph the two balls meet
/// after exploring O(√ of what a full BFS would), which is the entire point
/// of the kernel.  Undirected graphs only (directed needs a reverse graph).
StConnectivity st_connectivity(const CSRGraph& g, vid_t s, vid_t t);

}  // namespace snap
