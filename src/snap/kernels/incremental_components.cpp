#include "snap/kernels/incremental_components.hpp"

#include "snap/debug/validate.hpp"

namespace snap {

IncrementalComponents::IncrementalComponents(const DynamicGraph& graph)
    : graph_(graph) {
  rebuild();
  rebuilds_ = 0;  // the initial build is not a "re"-build
}

void IncrementalComponents::on_insert(vid_t u, vid_t v) {
  if (!stale_) uf_.unite(u, v);
}

void IncrementalComponents::on_delete(vid_t u, vid_t v) {
  // A deletion only matters if the edge was intra-component (it always is,
  // trivially); whether it *splits* the component cannot be told from the
  // union-find alone, so conservatively invalidate.
  (void)u;
  (void)v;
  stale_ = true;
}

bool IncrementalComponents::connected(vid_t u, vid_t v) {
  if (stale_) rebuild();
  return uf_.connected(u, v);
}

vid_t IncrementalComponents::num_components() {
  if (stale_) rebuild();
  return static_cast<vid_t>(uf_.num_sets());
}

void IncrementalComponents::rebuild() {
  const vid_t n = graph_.num_vertices();
  uf_.reset(static_cast<std::size_t>(n));
  for (vid_t u = 0; u < n; ++u) {
    graph_.for_each_neighbor(u, [&](vid_t v) {
      if (u <= v || graph_.directed()) uf_.unite(u, v);
    });
  }
  stale_ = false;
  ++rebuilds_;
  SNAP_VALIDATE(uf_);
}

}  // namespace snap
