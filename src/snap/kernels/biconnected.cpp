#include "snap/kernels/biconnected.hpp"

#include <algorithm>
#include <stdexcept>

namespace snap {

std::vector<vid_t> BiconnectedResult::articulation_points() const {
  std::vector<vid_t> out;
  for (std::size_t v = 0; v < is_articulation.size(); ++v)
    if (is_articulation[v]) out.push_back(static_cast<vid_t>(v));
  return out;
}

std::vector<eid_t> BiconnectedResult::bridges() const {
  std::vector<eid_t> out;
  for (std::size_t e = 0; e < is_bridge.size(); ++e)
    if (is_bridge[e]) out.push_back(static_cast<eid_t>(e));
  return out;
}

BiconnectedResult biconnected_components(const CSRGraph& g) {
  if (g.directed())
    throw std::invalid_argument(
        "biconnected_components requires an undirected graph");
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();

  BiconnectedResult r;
  r.is_articulation.assign(static_cast<std::size_t>(n), 0);
  r.is_bridge.assign(static_cast<std::size_t>(m), 0);
  r.bicomp_id.assign(static_cast<std::size_t>(m), kInvalidEid);

  std::vector<std::int64_t> disc(static_cast<std::size_t>(n), -1);
  std::vector<std::int64_t> low(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> parent(static_cast<std::size_t>(n), kInvalidVid);
  std::vector<eid_t> parent_edge(static_cast<std::size_t>(n), kInvalidEid);
  // DFS frame: vertex + index into its adjacency.
  struct Frame {
    vid_t v;
    eid_t next_arc;
  };
  std::vector<Frame> stack;
  std::vector<eid_t> edge_stack;  // logical edge ids awaiting a bicomp
  std::vector<std::uint8_t> edge_seen(static_cast<std::size_t>(m), 0);
  std::int64_t time = 0;

  for (vid_t root = 0; root < n; ++root) {
    if (disc[static_cast<std::size_t>(root)] >= 0) continue;
    vid_t root_children = 0;
    disc[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] =
        time++;
    stack.push_back({root, g.arc_begin(root)});

    while (!stack.empty()) {
      Frame& f = stack.back();
      const vid_t u = f.v;
      if (f.next_arc < g.arc_end(u)) {
        const eid_t a = f.next_arc++;
        const vid_t w = g.arc_target(a);
        const eid_t e = g.arc_edge_id(a);
        if (e == parent_edge[static_cast<std::size_t>(u)]) continue;
        if (disc[static_cast<std::size_t>(w)] < 0) {
          // Tree edge: descend.
          if (u == root) ++root_children;
          parent[static_cast<std::size_t>(w)] = u;
          parent_edge[static_cast<std::size_t>(w)] = e;
          disc[static_cast<std::size_t>(w)] =
              low[static_cast<std::size_t>(w)] = time++;
          edge_stack.push_back(e);
          edge_seen[static_cast<std::size_t>(e)] = 1;
          stack.push_back({w, g.arc_begin(w)});
        } else if (disc[static_cast<std::size_t>(w)] <
                   disc[static_cast<std::size_t>(u)]) {
          // Back edge to an ancestor (visited once thanks to the disc check).
          if (!edge_seen[static_cast<std::size_t>(e)]) {
            edge_stack.push_back(e);
            edge_seen[static_cast<std::size_t>(e)] = 1;
          }
          low[static_cast<std::size_t>(u)] =
              std::min(low[static_cast<std::size_t>(u)],
                       disc[static_cast<std::size_t>(w)]);
        }
      } else {
        // Post-visit of u: propagate low to parent, close components.
        stack.pop_back();
        const vid_t p = parent[static_cast<std::size_t>(u)];
        if (p == kInvalidVid) continue;
        low[static_cast<std::size_t>(p)] = std::min(
            low[static_cast<std::size_t>(p)], low[static_cast<std::size_t>(u)]);
        if (low[static_cast<std::size_t>(u)] >=
            disc[static_cast<std::size_t>(p)]) {
          // p separates u's subtree: pop one biconnected component.
          if (p != root || root_children > 1)
            r.is_articulation[static_cast<std::size_t>(p)] = 1;
          const eid_t pe = parent_edge[static_cast<std::size_t>(u)];
          eid_t popped = 0;
          while (!edge_stack.empty()) {
            const eid_t e = edge_stack.back();
            edge_stack.pop_back();
            r.bicomp_id[static_cast<std::size_t>(e)] = r.num_bicomps;
            ++popped;
            if (e == pe) break;
          }
          if (popped == 1 && low[static_cast<std::size_t>(u)] >
                                 disc[static_cast<std::size_t>(p)]) {
            r.is_bridge[static_cast<std::size_t>(pe)] = 1;
          }
          ++r.num_bicomps;
        }
      }
    }
  }
  return r;
}

}  // namespace snap
