#include "snap/kernels/sssp.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <queue>

#include "snap/util/parallel.hpp"

namespace snap {

namespace {
constexpr weight_t kInf = std::numeric_limits<weight_t>::infinity();
}

SSSPResult dijkstra(const CSRGraph& g, vid_t source) {
  const vid_t n = g.num_vertices();
  SSSPResult r;
  r.dist.assign(static_cast<std::size_t>(n), kInf);
  r.parent.assign(static_cast<std::size_t>(n), kInvalidVid);
  r.dist[source] = 0;
  r.parent[source] = source;
  using Item = std::pair<weight_t, vid_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > r.dist[u]) continue;
    const auto nb = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const weight_t nd = d + ws[i];
      if (nd < r.dist[nb[i]]) {
        r.dist[nb[i]] = nd;
        r.parent[nb[i]] = u;
        pq.push({nd, nb[i]});
      }
    }
  }
  return r;
}

SSSPResult delta_stepping(const CSRGraph& g, vid_t source, weight_t delta) {
  const vid_t n = g.num_vertices();
  if (delta <= 0) {
    weight_t max_w = 1;
    for (const Edge& e : g.edges()) max_w = std::max(max_w, e.w);
    const double avg_deg =
        n > 0 ? static_cast<double>(g.num_arcs()) / static_cast<double>(n) : 1;
    delta = std::max<weight_t>(max_w / std::max(avg_deg, 1.0), 1e-9);
  }

  std::vector<std::atomic<weight_t>> dist(static_cast<std::size_t>(n));
  std::vector<std::atomic<vid_t>> parent(static_cast<std::size_t>(n));
  parallel::parallel_for(n, [&](vid_t v) {
    dist[static_cast<std::size_t>(v)].store(kInf, std::memory_order_relaxed);
    parent[static_cast<std::size_t>(v)].store(kInvalidVid,
                                              std::memory_order_relaxed);
  });
  dist[source].store(0);
  parent[source].store(source);

  std::vector<std::vector<vid_t>> buckets(1);
  buckets[0].push_back(source);

  auto bucket_of = [&](weight_t d) {
    return static_cast<std::size_t>(d / delta);
  };
  auto relax = [&](vid_t v, weight_t nd, vid_t via,
                   std::vector<vid_t>& touched) {
    weight_t cur = dist[static_cast<std::size_t>(v)].load(
        std::memory_order_relaxed);
    while (nd < cur) {
      if (dist[static_cast<std::size_t>(v)].compare_exchange_weak(
              cur, nd, std::memory_order_relaxed)) {
        parent[static_cast<std::size_t>(v)].store(via,
                                                  std::memory_order_relaxed);
        touched.push_back(v);
        return;
      }
    }
  };

  const int nt = parallel::num_threads();
  std::vector<std::vector<vid_t>> local(static_cast<std::size_t>(nt));

  for (std::size_t bi = 0; bi < buckets.size(); ++bi) {
    std::vector<vid_t> settled;  // vertices finalized in this bucket
    // Phase 1: repeatedly relax light edges of the current bucket.
    std::vector<vid_t> frontier;
    frontier.swap(buckets[bi]);
    while (!frontier.empty()) {
      for (auto& buf : local) buf.clear();
      const auto fsz = static_cast<std::int64_t>(frontier.size());
      std::atomic<std::int64_t> light_cursor{0};
      parallel::run_team(nt, [&](int t) {
        auto& touched = local[static_cast<std::size_t>(t)];
        for (;;) {
          const std::int64_t lo =
              light_cursor.fetch_add(64, std::memory_order_relaxed);
          if (lo >= fsz) break;
          const std::int64_t hi = std::min<std::int64_t>(fsz, lo + 64);
          for (std::int64_t i = lo; i < hi; ++i) {
            const vid_t u = frontier[static_cast<std::size_t>(i)];
            const weight_t du = dist[static_cast<std::size_t>(u)].load(
                std::memory_order_relaxed);
            if (bucket_of(du) != bi) continue;  // re-queued into a later bucket
            const auto nb = g.neighbors(u);
            const auto ws = g.weights(u);
            for (std::size_t j = 0; j < nb.size(); ++j) {
              if (ws[j] < delta) relax(nb[j], du + ws[j], u, touched);
            }
          }
        }
      });
      settled.insert(settled.end(), frontier.begin(), frontier.end());
      frontier.clear();
      for (auto& buf : local) {
        for (vid_t v : buf) {
          const weight_t dv = dist[static_cast<std::size_t>(v)].load(
              std::memory_order_relaxed);
          const std::size_t b = bucket_of(dv);
          if (b == bi) {
            frontier.push_back(v);
          } else {
            if (b >= buckets.size()) buckets.resize(b + 1);
            buckets[b].push_back(v);
          }
        }
      }
    }
    // Phase 2: relax heavy edges of everything settled in this bucket.
    for (auto& buf : local) buf.clear();
    const auto ssz = static_cast<std::int64_t>(settled.size());
    std::atomic<std::int64_t> heavy_cursor{0};
    parallel::run_team(nt, [&](int t) {
      auto& touched = local[static_cast<std::size_t>(t)];
      for (;;) {
        const std::int64_t lo =
            heavy_cursor.fetch_add(64, std::memory_order_relaxed);
        if (lo >= ssz) break;
        const std::int64_t hi = std::min<std::int64_t>(ssz, lo + 64);
        for (std::int64_t i = lo; i < hi; ++i) {
          const vid_t u = settled[static_cast<std::size_t>(i)];
          const weight_t du = dist[static_cast<std::size_t>(u)].load(
              std::memory_order_relaxed);
          if (bucket_of(du) != bi) continue;  // improved; will reappear later
          const auto nb = g.neighbors(u);
          const auto ws = g.weights(u);
          for (std::size_t j = 0; j < nb.size(); ++j) {
            if (ws[j] >= delta) relax(nb[j], du + ws[j], u, touched);
          }
        }
      }
    });
    for (auto& buf : local) {
      for (vid_t v : buf) {
        const weight_t dv =
            dist[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
        const std::size_t b = bucket_of(dv);
        if (b >= buckets.size()) buckets.resize(b + 1);
        if (b > bi)
          buckets[b].push_back(v);
        else
          buckets[bi].push_back(v);  // numerically possible only if b == bi
      }
    }
    if (!buckets[bi].empty()) {
      // Rare: heavy relaxation landed back in the current bucket (w == delta
      // boundary effects).  Re-run the light phase by revisiting the bucket.
      --bi;
      continue;
    }
  }

  SSSPResult r;
  r.dist.resize(static_cast<std::size_t>(n));
  r.parent.resize(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    r.dist[static_cast<std::size_t>(v)] =
        dist[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    r.parent[static_cast<std::size_t>(v)] =
        parent[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
  }
  return r;
}

}  // namespace snap
