#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Result of a breadth-first traversal.
struct BFSResult {
  std::vector<vid_t> parent;        ///< parent in the BFS tree; kInvalidVid if unreached (source's parent is itself)
  std::vector<std::int64_t> dist;   ///< hop distance; -1 if unreached
  vid_t num_visited = 0;
  std::int64_t num_levels = 0;
};

/// Tuning knobs for the direction-optimizing (push/pull) traversal.
/// Defaults follow Beamer et al.: switch to bottom-up pull when the
/// frontier's out-arcs exceed 1/alpha of the still-unexplored arcs, and
/// return to top-down push once the frontier is shrinking and smaller than
/// n/beta vertices.
struct HybridBFSOptions {
  double alpha = 15.0;  ///< push->pull when frontier_arcs * alpha > unexplored arcs
  double beta = 18.0;   ///< pull->push when shrinking and frontier_size * beta < n
  /// Pull is never attempted below this many frontier arcs: on always-sparse
  /// shapes (paths, trees) the tail of the search would otherwise flip to
  /// pull and pay an O(n) scan per level for nothing.
  eid_t min_pull_arcs = 256;
  std::int64_t max_depth = -1;  ///< >= 0: depth cutoff (bfs_bounded semantics)
  bool enable_pull = true;      ///< false forces the arc-balanced push path
};

/// Per-level record of what the hybrid engine did — surfaced so benches and
/// tests can audit the push/pull decisions.
struct BfsLevelStats {
  std::int64_t level = 0;     ///< 1-based level expanded
  bool pull = false;          ///< true if this level ran bottom-up
  vid_t frontier_vertices = 0;  ///< frontier size entering the level
  eid_t frontier_arcs = 0;      ///< out-arcs of that frontier
  vid_t discovered = 0;         ///< vertices claimed at this level
};

/// Level-synchronous parallel BFS (§3).  Now runs the direction-optimizing
/// engine: top-down levels are arc-balanced push (frontier arcs split evenly
/// across threads), dense middle levels of low-diameter graphs switch to a
/// bottom-up bitmap pull.  Distances are identical to bfs_serial; parent
/// choices may differ between runs (any valid BFS tree).
BFSResult bfs(const CSRGraph& g, vid_t source);

/// The paper's original arc-balanced push-only BFS (no pull), kept as the
/// baseline the benches compare the hybrid against.
BFSResult bfs_push(const CSRGraph& g, vid_t source);

/// Direction-optimizing BFS with explicit knobs and an optional per-level
/// decision trace.
BFSResult bfs_hybrid(const CSRGraph& g, vid_t source,
                     const HybridBFSOptions& opts = {},
                     std::vector<BfsLevelStats>* trace = nullptr);

/// Reference serial BFS (used for validation and for tiny subproblems).
BFSResult bfs_serial(const CSRGraph& g, vid_t source);

/// Depth-limited BFS — the "path-limited search" paradigm of §3, in which
/// multiple bounded searches are executed concurrently and aggregated
/// (pLA's cluster growth is its main client).  Vertices beyond `max_depth`
/// hops stay unreached.  Accounting is pinned to the truncated-oracle rule:
/// `dist` equals bfs_serial's wherever bfs_serial's dist <= max_depth (and
/// -1 beyond), `num_visited` counts exactly those vertices, and
/// `num_levels` is the deepest distance actually assigned,
/// i.e. min(eccentricity, max_depth).
BFSResult bfs_bounded(const CSRGraph& g, vid_t source, std::int64_t max_depth);

/// BFS over the subgraph of edges whose logical id is still alive
/// (`edge_alive[g.arc_edge_id(a)] != 0`).  Restricted to vertices with
/// `vertex_ok[v] != 0` when `vertex_ok` is non-empty.  This is the traversal
/// the divisive community algorithms run after marking edges deleted.
BFSResult bfs_masked(const CSRGraph& g, vid_t source,
                     const std::vector<std::uint8_t>& edge_alive);

}  // namespace snap
