#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Result of a breadth-first traversal.
struct BFSResult {
  std::vector<vid_t> parent;        ///< parent in the BFS tree; kInvalidVid if unreached (source's parent is itself)
  std::vector<std::int64_t> dist;   ///< hop distance; -1 if unreached
  vid_t num_visited = 0;
  std::int64_t num_levels = 0;
};

/// Level-synchronous parallel BFS (§3): vertices at each level are visited in
/// parallel, visited-tracking is a lock-free atomic bitmap, and work is
/// balanced by distributing frontier *arcs* (not vertices) across threads so
/// high-degree vertices of a skewed distribution don't serialize a level.
BFSResult bfs(const CSRGraph& g, vid_t source);

/// Reference serial BFS (used for validation and for tiny subproblems).
BFSResult bfs_serial(const CSRGraph& g, vid_t source);

/// Depth-limited BFS — the "path-limited search" paradigm of §3, in which
/// multiple bounded searches are executed concurrently and aggregated
/// (pLA's cluster growth is its main client).  Vertices beyond `max_depth`
/// hops stay unreached.
BFSResult bfs_bounded(const CSRGraph& g, vid_t source, std::int64_t max_depth);

/// BFS over the subgraph of edges whose logical id is still alive
/// (`edge_alive[g.arc_edge_id(a)] != 0`).  Restricted to vertices with
/// `vertex_ok[v] != 0` when `vertex_ok` is non-empty.  This is the traversal
/// the divisive community algorithms run after marking edges deleted.
BFSResult bfs_masked(const CSRGraph& g, vid_t source,
                     const std::vector<std::uint8_t>& edge_alive);

}  // namespace snap
