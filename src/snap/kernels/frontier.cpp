#include "snap/kernels/frontier.hpp"

#include <atomic>
#include <limits>

namespace snap {

namespace {

std::int64_t depth_limit(const HybridBFSOptions& o) {
  return o.max_depth < 0 ? std::numeric_limits<std::int64_t>::max()
                         : o.max_depth;
}

}  // namespace

BFSResult BfsEngine::run(const CSRGraph& g, vid_t source,
                         const HybridBFSOptions& opts,
                         std::vector<BfsLevelStats>* trace) {
  if (trace) trace->clear();
  const vid_t n = g.num_vertices();
  BFSResult r;
  if (n == 0) return r;
  r.parent.assign(static_cast<std::size_t>(n), kInvalidVid);
  r.dist.assign(static_cast<std::size_t>(n), -1);
  r.parent[static_cast<std::size_t>(source)] = source;
  r.dist[static_cast<std::size_t>(source)] = 0;
  r.num_visited = 1;

  // Pull reads a vertex's own adjacency as its *in*-edges, which is only
  // valid when the graph is symmetric.
  const bool allow_pull = opts.enable_pull && !g.directed();
  const std::int64_t max_depth = depth_limit(opts);

  visited_.resize(static_cast<std::size_t>(n));
  visited_.set(static_cast<std::size_t>(source));
  cur_.init(n);
  next_.init(n);
  cur_.reset_to(source, g.degree(source));
  eid_t unexplored = g.num_arcs() - cur_.arcs();
  vid_t prev_size = cur_.size();
  std::int64_t level = 0;

  while (!cur_.empty() && level < max_depth) {
    ++level;
    // Per-level direction decision (Beamer alpha/beta): flip to pull when
    // the frontier's arcs dominate what is left to explore, back to push
    // once the frontier is both shrinking and small.
    if (!cur_.dense() && allow_pull && cur_.arcs() > opts.min_pull_arcs &&
        static_cast<double>(cur_.arcs()) * opts.alpha >
            static_cast<double>(unexplored)) {
      cur_.to_dense();
    } else if (cur_.dense() && cur_.size() < prev_size &&
               static_cast<double>(cur_.size()) * opts.beta <
                   static_cast<double>(n)) {
      cur_.to_sparse(g, r.dist, level - 1, pool_);
    }
    const vid_t fsize = cur_.size();
    const eid_t farcs = cur_.arcs();
    const bool pull = cur_.dense();
    vid_t discovered = 0;

    if (pull) {
      next_.bits().resize(static_cast<std::size_t>(n));
      std::atomic<vid_t> awake{0};
      std::atomic<eid_t> arcs{0};
      const AtomicBitmap& front = cur_.bits();
      AtomicBitmap& nbits = next_.bits();
      auto& dist = r.dist;
      auto& parent = r.parent;
      constexpr vid_t kPullChunk = 1024;
      std::atomic<vid_t> cursor{0};
      parallel::run_team(parallel::num_threads(), [&](int) {
        vid_t local_awake = 0;
        eid_t local_arcs = 0;
        for (;;) {
          const vid_t lo =
              cursor.fetch_add(kPullChunk, std::memory_order_relaxed);
          if (lo >= n) break;
          const vid_t hi = std::min(n, lo + kPullChunk);
          for (vid_t v = lo; v < hi; ++v) {
            if (dist[static_cast<std::size_t>(v)] >= 0) continue;
            for (vid_t u : g.neighbors(v)) {
              if (front.test(static_cast<std::size_t>(u))) {
                // Only the thread owning this chunk touches v, so dist/parent
                // writes are unshared; the bitmaps are atomic.
                dist[static_cast<std::size_t>(v)] = level;
                parent[static_cast<std::size_t>(v)] = u;
                visited_.set(static_cast<std::size_t>(v));
                nbits.set(static_cast<std::size_t>(v));
                ++local_awake;
                local_arcs += g.degree(v);
                break;
              }
            }
          }
        }
        awake.fetch_add(local_awake, std::memory_order_relaxed);
        arcs.fetch_add(local_arcs, std::memory_order_relaxed);
      });
      next_.assume_dense(awake.load(std::memory_order_relaxed),
                         arcs.load(std::memory_order_relaxed));
      discovered = awake.load(std::memory_order_relaxed);
    } else {
      expand_arc_balanced(g, cur_.list(), next_.list(), pool_,
                          [&](vid_t u, vid_t v) {
                            if (visited_.test_and_set(
                                    static_cast<std::size_t>(v))) {
                              r.dist[static_cast<std::size_t>(v)] = level;
                              r.parent[static_cast<std::size_t>(v)] = u;
                              return true;
                            }
                            return false;
                          });
      next_.assume_sparse(g);
      discovered = next_.size();
    }

    if (trace) trace->push_back({level, pull, fsize, farcs, discovered});
    r.num_visited += discovered;
    if (discovered > 0) r.num_levels = level;
    unexplored -= next_.arcs();
    prev_size = fsize;
    cur_.swap(next_);
  }
  return r;
}

void BfsEngine::run_serial_into(const CSRGraph& g, vid_t source,
                                const HybridBFSOptions& opts, BFSResult& r) {
  const vid_t n = g.num_vertices();
  r.parent.assign(static_cast<std::size_t>(n), kInvalidVid);
  r.dist.assign(static_cast<std::size_t>(n), -1);
  r.num_visited = 0;
  r.num_levels = 0;
  if (n == 0) return;
  r.parent[static_cast<std::size_t>(source)] = source;
  r.dist[static_cast<std::size_t>(source)] = 0;
  r.num_visited = 1;

  const bool allow_pull = opts.enable_pull && !g.directed();
  const std::int64_t max_depth = depth_limit(opts);

  cur_.init(n);
  next_.init(n);
  cur_.reset_to(source, g.degree(source));
  eid_t unexplored = g.num_arcs() - cur_.arcs();
  vid_t prev_size = cur_.size();
  std::int64_t level = 0;

  while (!cur_.empty() && level < max_depth) {
    ++level;
    if (!cur_.dense() && allow_pull && cur_.arcs() > opts.min_pull_arcs &&
        static_cast<double>(cur_.arcs()) * opts.alpha >
            static_cast<double>(unexplored)) {
      cur_.bits().resize(static_cast<std::size_t>(n));
      for (vid_t v : cur_.list()) cur_.bits().set(static_cast<std::size_t>(v));
      cur_.assume_dense(cur_.size(), cur_.arcs());
    } else if (cur_.dense() && cur_.size() < prev_size &&
               static_cast<double>(cur_.size()) * opts.beta <
                   static_cast<double>(n)) {
      auto& lst = cur_.list();
      lst.clear();
      for (vid_t v = 0; v < n; ++v)
        if (r.dist[static_cast<std::size_t>(v)] == level - 1) lst.push_back(v);
      cur_.assume_sparse(g);
    }
    const vid_t fsize = cur_.size();
    vid_t discovered = 0;

    if (cur_.dense()) {
      next_.bits().resize(static_cast<std::size_t>(n));
      vid_t awake = 0;
      eid_t arcs = 0;
      for (vid_t v = 0; v < n; ++v) {
        if (r.dist[static_cast<std::size_t>(v)] >= 0) continue;
        for (vid_t u : g.neighbors(v)) {
          if (cur_.bits().test(static_cast<std::size_t>(u))) {
            r.dist[static_cast<std::size_t>(v)] = level;
            r.parent[static_cast<std::size_t>(v)] = u;
            next_.bits().set(static_cast<std::size_t>(v));
            ++awake;
            arcs += g.degree(v);
            break;
          }
        }
      }
      next_.assume_dense(awake, arcs);
      discovered = awake;
    } else {
      auto& out = next_.list();
      out.clear();
      for (vid_t u : cur_.list()) {
        for (vid_t v : g.neighbors(u)) {
          if (r.dist[static_cast<std::size_t>(v)] < 0) {
            r.dist[static_cast<std::size_t>(v)] = level;
            r.parent[static_cast<std::size_t>(v)] = u;
            out.push_back(v);
          }
        }
      }
      next_.assume_sparse(g);
      discovered = next_.size();
    }

    r.num_visited += discovered;
    if (discovered > 0) r.num_levels = level;
    unexplored -= next_.arcs();
    prev_size = fsize;
    cur_.swap(next_);
  }
}

BFSResult BfsEngine::run_serial(const CSRGraph& g, vid_t source,
                                const HybridBFSOptions& opts) {
  BFSResult r;
  run_serial_into(g, source, opts, r);
  return r;
}

}  // namespace snap
