#include "snap/kernels/pagerank.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "snap/debug/check.hpp"
#include "snap/graph/compressed_csr.hpp"
#include "snap/util/parallel.hpp"

namespace snap {
namespace {

constexpr std::uint64_t kTotalMass = kPageRankTotalMass;

/// Below this many vertices the parallel path's fork/join costs more than
/// the sweep itself (kAuto cutoff, same rationale as Louvain's).
constexpr vid_t kParallelCutoff = 1 << 12;

bool use_parallel_path(const PageRankParams& params, vid_t n) {
  switch (params.path) {
    case PageRankPath::kSerial:
      return false;
    case PageRankPath::kParallel:
      return true;
    case PageRankPath::kAuto:
    default:
      return n >= kParallelCutoff;
  }
}

}  // namespace

namespace pagerank_detail {

std::uint64_t quantized_damping(double damping) {
  SNAP_ASSERT(damping >= 0.0 && damping < 1.0, "pagerank: damping ", damping,
              " must be in [0, 1)");
  const double scaled =
      damping * static_cast<double>(std::uint64_t{1} << kPageRankDampBits);
  return static_cast<std::uint64_t>(std::llround(scaled));
}

std::uint64_t damp(std::uint64_t inflow, std::uint64_t d_num) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(inflow) * d_num) >> kPageRankDampBits);
}

std::uint64_t residual_threshold(double tol) {
  if (tol <= 0.0) return 0;
  const double scaled = tol * static_cast<double>(kTotalMass);
  if (scaled >= static_cast<double>(kTotalMass)) return kTotalMass;
  return static_cast<std::uint64_t>(scaled);
}

void init_mass(std::vector<std::uint64_t>& mass, vid_t n) {
  const std::uint64_t share = kTotalMass / static_cast<std::uint64_t>(n);
  const std::uint64_t rem = kTotalMass % static_cast<std::uint64_t>(n);
  for (vid_t v = 0; v < n; ++v)
    mass[static_cast<std::size_t>(v)] =
        share + (static_cast<std::uint64_t>(v) < rem ? 1 : 0);
}

PageRankResult finalize(std::vector<std::uint64_t> mass, int iterations,
                        std::uint64_t residual) {
  PageRankResult out;
  out.iterations = iterations;
  out.residual =
      static_cast<double>(residual) / static_cast<double>(kTotalMass);
  out.rank.resize(mass.size());
  const double inv = 1.0 / static_cast<double>(kTotalMass);
  for (std::size_t v = 0; v < mass.size(); ++v)
    out.rank[v] = static_cast<double>(mass[v]) * inv;
  out.mass = std::move(mass);
  return out;
}

}  // namespace pagerank_detail

namespace {

using pagerank_detail::damp;
using pagerank_detail::finalize;
using pagerank_detail::init_mass;
using pagerank_detail::quantized_damping;
using pagerank_detail::residual_threshold;

/// The engine, generic over the adjacency read path: `deg(v)` is the stored
/// arc count and `row_sum(v, contrib)` returns the exact integer sum of
/// contrib over v's neighbors.  Every reduction is an integer sum, so the
/// serial and parallel paths — and any regrouping a caller's layout implies
/// — are bitwise identical by construction (exact ordered reduction).
template <typename DegFn, typename RowSumFn>
PageRankResult run_flat(vid_t n, const PageRankParams& params, DegFn&& deg,
                        RowSumFn&& row_sum) {
  PageRankResult empty;
  if (n == 0) return empty;
  SNAP_ASSERT(params.max_iters >= 0, "pagerank: max_iters ", params.max_iters,
              " must be non-negative");
  const std::uint64_t d_num = quantized_damping(params.damping);
  const std::uint64_t tol_mass = residual_threshold(params.tol);
  const bool par = use_parallel_path(params, n);
  const auto un = static_cast<std::uint64_t>(n);

  std::vector<std::uint64_t> mass(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> contrib(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> next(static_cast<std::size_t>(n));
  init_mass(mass, n);

  int iterations = 0;
  std::uint64_t residual = 0;
  for (int it = 0; it < params.max_iters; ++it) {
    auto scatter = [&](vid_t v) {
      const auto sv = static_cast<std::size_t>(v);
      const eid_t d = deg(v);
      contrib[sv] = d > 0 ? mass[sv] / static_cast<std::uint64_t>(d) : 0;
    };
    auto gather = [&](vid_t v) {
      next[static_cast<std::size_t>(v)] = damp(row_sum(v, contrib), d_num);
    };
    std::uint64_t kept = 0;
    if (par) {
      parallel::parallel_for(n, scatter);
      parallel::parallel_for(n, gather);
      kept = parallel::parallel_reduce_sum<std::uint64_t>(n, [&](vid_t v) {
        return next[static_cast<std::size_t>(v)];
      });
    } else {
      for (vid_t v = 0; v < n; ++v) scatter(v);
      for (vid_t v = 0; v < n; ++v) gather(v);
      for (vid_t v = 0; v < n; ++v) kept += next[static_cast<std::size_t>(v)];
    }
    // Teleport + dangling + rounding loss, redistributed uniformly; total
    // mass is exactly kTotalMass after every iteration.
    const std::uint64_t pool = kTotalMass - kept;
    const std::uint64_t share = pool / un;
    const std::uint64_t rem = pool % un;
    auto settle = [&](vid_t v) -> std::uint64_t {
      const auto sv = static_cast<std::size_t>(v);
      next[sv] += share + (static_cast<std::uint64_t>(v) < rem ? 1 : 0);
      const std::uint64_t m = mass[sv];
      return next[sv] > m ? next[sv] - m : m - next[sv];
    };
    if (par) {
      residual = parallel::parallel_reduce_sum<std::uint64_t>(n, settle);
    } else {
      residual = 0;
      for (vid_t v = 0; v < n; ++v) residual += settle(v);
    }
    mass.swap(next);
    iterations = it + 1;
    if (tol_mass > 0 && residual <= tol_mass) break;
  }
  return finalize(std::move(mass), iterations, residual);
}

}  // namespace

PageRankResult pagerank(const CSRGraph& g, const PageRankParams& params) {
  SNAP_ASSERT(!g.directed(),
              "pagerank requires an undirected graph (fold with "
              "as_undirected)");
  const vid_t n = g.num_vertices();
  return run_flat(
      n, params, [&](vid_t v) { return g.degree(v); },
      [&](vid_t v, const std::vector<std::uint64_t>& contrib) {
        std::uint64_t s = 0;
        for (const vid_t u : g.neighbors(v))
          s += contrib[static_cast<std::size_t>(u)];
        return s;
      });
}

PageRankResult pagerank_compressed(const CompressedCSR& g,
                                   const PageRankParams& params) {
  SNAP_ASSERT(!g.directed(),
              "pagerank_compressed requires an undirected graph");
  const vid_t n = g.num_vertices();
  // Decode degrees once: the scatter phase needs deg(v) per vertex and the
  // varint header read is cheap but not free.
  std::vector<eid_t> deg(static_cast<std::size_t>(n));
  parallel::parallel_for(
      n, [&](vid_t v) { deg[static_cast<std::size_t>(v)] = g.degree(v); });
  return run_flat(
      n, params,
      [&](vid_t v) { return deg[static_cast<std::size_t>(v)]; },
      [&](vid_t v, const std::vector<std::uint64_t>& contrib) {
        std::uint64_t s = 0;
        g.for_each_neighbor(
            v, [&](vid_t u) { s += contrib[static_cast<std::size_t>(u)]; });
        return s;
      });
}

}  // namespace snap
