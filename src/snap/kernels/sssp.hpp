#pragma once

#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Result of a single-source shortest path computation.
struct SSSPResult {
  std::vector<weight_t> dist;  ///< +inf (infinity()) if unreached
  std::vector<vid_t> parent;   ///< kInvalidVid if unreached
};

/// Delta-stepping parallel SSSP [Meyer & Sanders], the shortest-path scheme
/// the SNAP paper integrates from Madduri et al. (ALENEX'07).  Buckets of
/// width `delta` are processed in order; light edges (w < delta) are relaxed
/// iteratively within a bucket, heavy edges once on bucket settlement.
/// `delta = 0` picks max-weight / average-degree automatically.
SSSPResult delta_stepping(const CSRGraph& g, vid_t source, weight_t delta = 0);

/// Reference serial Dijkstra (binary heap), for validation.
SSSPResult dijkstra(const CSRGraph& g, vid_t source);

}  // namespace snap
