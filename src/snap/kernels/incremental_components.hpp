#pragma once

#include <cstdint>
#include <vector>

#include "snap/ds/union_find.hpp"
#include "snap/graph/dynamic_graph.hpp"
#include "snap/graph/types.hpp"

namespace snap {

/// Connectivity over a stream of edge insertions and deletions — a first
/// piece of the dynamic-network analysis the paper lists as future work
/// (§6: "We intend to extend SNAP to support the topological analysis of
/// dynamic networks").
///
/// Insertions are answered incrementally with union–find (amortized
/// near-O(1)).  Deletions may split a component, which union–find cannot
/// undo, so the tracker goes *stale* and lazily rebuilds from the backing
/// dynamic graph on the next query — the classic batch-invalidation
/// trade-off: cheap streams of mostly-insert workloads, with deletion cost
/// deferred and amortized over whole batches.
class IncrementalComponents {
 public:
  explicit IncrementalComponents(const DynamicGraph& graph);

  /// Notify that edge (u, v) was inserted into the backing graph.
  void on_insert(vid_t u, vid_t v);

  /// Notify that edge (u, v) was deleted from the backing graph.
  void on_delete(vid_t u, vid_t v);

  /// True if u and v are connected (rebuilds first when stale).
  bool connected(vid_t u, vid_t v);

  /// Number of connected components (rebuilds first when stale).
  vid_t num_components();

  /// True if the next query will trigger a rebuild.
  [[nodiscard]] bool stale() const { return stale_; }

  /// Number of full rebuilds performed so far (for instrumentation).
  [[nodiscard]] std::int64_t rebuilds() const { return rebuilds_; }

 private:
  void rebuild();

  const DynamicGraph& graph_;
  UnionFind uf_;
  bool stale_ = false;
  std::int64_t rebuilds_ = 0;
};

}  // namespace snap
