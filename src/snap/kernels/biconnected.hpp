#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Result of biconnected-components analysis of an undirected graph.
///
/// The paper uses this kernel in two places: as a preprocessing step that
/// finds bridges likely to carry high edge betweenness (pBD step 1, pLA
/// steps 1–2), and for the observation that low-degree articulation points
/// in protein-interaction networks are unlikely to be essential (§3).
struct BiconnectedResult {
  std::vector<std::uint8_t> is_articulation;  ///< per vertex
  std::vector<std::uint8_t> is_bridge;        ///< per logical edge
  std::vector<eid_t> bicomp_id;               ///< per logical edge, dense ids
  eid_t num_bicomps = 0;

  [[nodiscard]] std::vector<vid_t> articulation_points() const;
  [[nodiscard]] std::vector<eid_t> bridges() const;
};

/// Iterative Tarjan low-point algorithm (explicit stack — small-world graphs
/// are shallow but road networks are not, so no recursion).
/// Requires an undirected graph.
BiconnectedResult biconnected_components(const CSRGraph& g);

}  // namespace snap
