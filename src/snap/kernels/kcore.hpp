#pragma once

#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// k-core decomposition of an undirected graph: `core[v]` is the largest k
/// such that v belongs to a subgraph where every vertex has degree >= k.
///
/// One of the "new small-world network analysis kernels" §6 describes as
/// ongoing work: cores expose the dense nucleus of a skewed-degree network
/// and are a linear-time preprocessing filter for the centrality and
/// community kernels (peeling the 1-core shell alone removes the pendant
/// trees that dominate web crawls).
struct KCoreResult {
  std::vector<eid_t> core;  ///< core number per vertex
  eid_t degeneracy = 0;     ///< max core number (graph degeneracy)

  /// Vertices with core number >= k.
  [[nodiscard]] std::vector<vid_t> shell_at_least(eid_t k) const;
};

/// Bucket-based peeling (Batagelj–Zaveršnik), O(m + n).
KCoreResult kcore_decomposition(const CSRGraph& g);

}  // namespace snap
