#include "snap/kernels/kcore.hpp"

#include <algorithm>
#include <stdexcept>

namespace snap {

std::vector<vid_t> KCoreResult::shell_at_least(eid_t k) const {
  std::vector<vid_t> out;
  for (std::size_t v = 0; v < core.size(); ++v)
    if (core[v] >= k) out.push_back(static_cast<vid_t>(v));
  return out;
}

KCoreResult kcore_decomposition(const CSRGraph& g) {
  if (g.directed())
    throw std::invalid_argument(
        "kcore_decomposition requires an undirected graph");
  const vid_t n = g.num_vertices();
  KCoreResult r;
  r.core.assign(static_cast<std::size_t>(n), 0);
  if (n == 0) return r;

  // Bucket sort vertices by degree, then peel in nondecreasing order,
  // decrementing neighbors' effective degrees in place.
  const eid_t dmax = g.max_degree();
  std::vector<eid_t> deg(static_cast<std::size_t>(n));
  std::vector<vid_t> bucket_start(static_cast<std::size_t>(dmax) + 2, 0);
  for (vid_t v = 0; v < n; ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(v);
    ++bucket_start[static_cast<std::size_t>(deg[static_cast<std::size_t>(v)]) + 1];
  }
  for (std::size_t d = 1; d < bucket_start.size(); ++d)
    bucket_start[d] += bucket_start[d - 1];

  std::vector<vid_t> order(static_cast<std::size_t>(n));   // sorted by degree
  std::vector<vid_t> pos(static_cast<std::size_t>(n));     // v -> index in order
  {
    std::vector<vid_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (vid_t v = 0; v < n; ++v) {
      const auto d = static_cast<std::size_t>(deg[static_cast<std::size_t>(v)]);
      pos[static_cast<std::size_t>(v)] = cursor[d];
      order[static_cast<std::size_t>(cursor[d])] = v;
      ++cursor[d];
    }
  }

  for (vid_t i = 0; i < n; ++i) {
    const vid_t v = order[static_cast<std::size_t>(i)];
    r.core[static_cast<std::size_t>(v)] = deg[static_cast<std::size_t>(v)];
    r.degeneracy =
        std::max(r.degeneracy, deg[static_cast<std::size_t>(v)]);
    for (vid_t u : g.neighbors(v)) {
      if (deg[static_cast<std::size_t>(u)] <=
          deg[static_cast<std::size_t>(v)])
        continue;  // u already peeled or tied: unaffected
      // Move u one bucket down: swap it with the first vertex of its bucket.
      const eid_t du = deg[static_cast<std::size_t>(u)];
      const vid_t pu = pos[static_cast<std::size_t>(u)];
      const vid_t pw = bucket_start[static_cast<std::size_t>(du)];
      const vid_t w = order[static_cast<std::size_t>(pw)];
      if (u != w) {
        std::swap(order[static_cast<std::size_t>(pu)],
                  order[static_cast<std::size_t>(pw)]);
        pos[static_cast<std::size_t>(u)] = pw;
        pos[static_cast<std::size_t>(w)] = pu;
      }
      ++bucket_start[static_cast<std::size_t>(du)];
      --deg[static_cast<std::size_t>(u)];
    }
  }
  return r;
}

}  // namespace snap
