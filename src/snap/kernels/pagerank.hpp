#pragma once

// Deterministic PageRank in 64-bit fixed point.
//
// The power iteration itself is textbook: rank flows along arcs, damped by
// d, with the residual (teleport + dangling + rounding) pool redistributed
// uniformly.  What is not textbook is the arithmetic: SNAP represents rank
// MASS as 64-bit fixed-point integers (the unit is 2^-60 of the total), so
// every accumulation in the engine is an exact integer add — associative
// and commutative.  That one choice buys the whole determinism story:
//
//   * the parallel flat path reduces per-thread partials in any order and
//     still matches the serial oracle bitwise;
//   * the owner-computes partitioned engine can SUM-COMBINE boundary mass
//     pushes per destination vertex (O(cut edges) -> O(boundary vertices)
//     traffic) and still match the flat engine bitwise at every
//     (threads x shards) combination, because regrouping exact adds is
//     invisible.
//
// With IEEE doubles none of that holds — float addition does not
// associate, so any combiner or shard-count change would perturb the last
// bits.  See docs/ALGORITHMS.md "PageRank & the exchange layer".
//
// Spec (one iteration over n vertices, total mass T = 2^60, quantized
// damping D = d_num / 2^30):
//
//   contrib[u] = deg(u) > 0 ? mass[u] / deg(u) : 0        (floor division)
//   inflow[v]  = sum over stored arcs (u, v) of contrib[u]
//   kept[v]    = (inflow[v] * d_num) >> 30                 (128-bit product)
//   pool       = T - sum kept[v]     (teleport + dangling + rounding loss)
//   next[v]    = kept[v] + pool / n + (v < pool mod n ? 1 : 0)
//
// Total mass is exactly T after every iteration; the residual is the exact
// integer L1 distance |next - mass|.  Graphs are treated as unweighted
// (degree = stored arc count) and must be undirected, the same contract as
// every other shard-parallel kernel.

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

class CompressedCSR;

/// Which engine pagerank() runs.  kAuto picks the parallel engine for
/// graphs large enough to amortize the fork/join cost; the explicit values
/// exist for the differential tests, which require both paths to produce
/// bitwise identical mass vectors.
enum class PageRankPath { kAuto, kSerial, kParallel };

/// Total mass is 2^kPageRankMassBits; rank[v] = mass[v] / 2^kPageRankMassBits.
inline constexpr int kPageRankMassBits = 60;
/// Damping is quantized to d_num / 2^kPageRankDampBits.
inline constexpr int kPageRankDampBits = 30;
inline constexpr std::uint64_t kPageRankTotalMass = std::uint64_t{1}
                                                    << kPageRankMassBits;

struct PageRankParams {
  /// Damping factor d (quantized to kPageRankDampBits fractional bits).
  double damping = 0.85;
  /// Iteration cap.
  int max_iters = 50;
  /// Early-exit threshold on the L1 residual, expressed on the unit total
  /// (the exact integer residual is compared against tol * 2^60).  0 = run
  /// exactly max_iters — what the byte-exact service endpoint uses.
  double tol = 1e-9;
  PageRankPath path = PageRankPath::kAuto;
};

struct PageRankResult {
  /// Per-vertex rank, mass[v] / 2^60; sums to 1 up to double rounding.
  std::vector<double> rank;
  /// The exact fixed-point state (what the determinism harness hashes).
  std::vector<std::uint64_t> mass;
  /// Iterations actually run.
  int iterations = 0;
  /// Final L1 residual on the unit total (exact integer / 2^60).
  double residual = 0.0;
};

/// Flat PageRank over a CSR graph.  Undirected graphs only; weights are
/// ignored (unweighted spec).  Bitwise deterministic at every thread count,
/// and the serial and parallel paths match bitwise.
[[nodiscard]] PageRankResult pagerank(const CSRGraph& g,
                                      const PageRankParams& params = {});

/// The same spec over the delta/varint-compressed adjacency: decodes each
/// row instead of streaming it.  Mass vector is bitwise identical to
/// pagerank() on the source graph.
[[nodiscard]] PageRankResult pagerank_compressed(
    const CompressedCSR& g, const PageRankParams& params = {});

namespace pagerank_detail {

// The arithmetic spec shared by the flat engines above and the partitioned
// owner-computes engine (PartitionedCSR::pagerank): both call exactly these
// helpers, so there is one definition of the damping quantization, the
// 128-bit damp product, the initial mass split and the result conversion —
// the differential suite then compares orchestration, not arithmetic.

[[nodiscard]] std::uint64_t quantized_damping(double damping);
[[nodiscard]] std::uint64_t damp(std::uint64_t inflow, std::uint64_t d_num);
[[nodiscard]] std::uint64_t residual_threshold(double tol);
/// mass[v] = T/n plus one extra unit for v < T mod n (exactly T in total).
void init_mass(std::vector<std::uint64_t>& mass, vid_t n);
[[nodiscard]] PageRankResult finalize(std::vector<std::uint64_t> mass,
                                      int iterations, std::uint64_t residual);

}  // namespace pagerank_detail

}  // namespace snap
