#pragma once

#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/util/bitmap.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

/// Reusable scratch for frontier-based traversals: the per-level degree /
/// prefix-sum arrays of the arc-balanced split and the per-thread output
/// buffers.  Holding one pool across levels (and across whole traversals —
/// every buffer keeps its capacity) removes the per-level allocations the
/// original bfs rebuilt on every iteration.
class FrontierPool {
 public:
  void prepare(int num_threads) {
    if (static_cast<int>(local_.size()) < num_threads)
      local_.resize(static_cast<std::size_t>(num_threads));
    // Clear every buffer (not just the first num_threads): collect_into
    // concatenates them all, and a previous call may have used more threads.
    for (auto& buf : local_) buf.clear();
  }

  std::vector<eid_t>& degrees() { return degs_; }
  std::vector<eid_t>& offsets() { return off_; }
  std::vector<vid_t>& local(int t) {
    return local_[static_cast<std::size_t>(t)];
  }

  /// Concatenate the per-thread buffers into `out` (thread order, so the
  /// result is deterministic given a fixed arc split).
  void collect_into(std::vector<vid_t>& out) {
    std::size_t total = 0;
    for (const auto& buf : local_) total += buf.size();
    out.clear();
    out.reserve(total);
    for (const auto& buf : local_) out.insert(out.end(), buf.begin(), buf.end());
  }

 private:
  std::vector<eid_t> degs_, off_;
  std::vector<std::vector<vid_t>> local_;
};

/// Below this many frontier arcs a level is expanded serially: the OpenMP
/// region + prefix sum cost more than the scan itself.
inline constexpr eid_t kSerialExpandArcs = 2048;

/// Arc-balanced parallel expansion of a sparse frontier (§3's balancing fix
/// for skewed degrees): the frontier's degrees are prefix-summed and each
/// thread takes an equal *arc* range, so one hub cannot serialize a level.
/// `visit(u, v)` is called exactly once per frontier arc and must return
/// true iff it newly claimed v; claimed vertices land in `next` (cleared
/// first).  All intermediates come from `pool`, so steady-state expansion
/// allocates nothing.
template <typename Visit>
void expand_arc_balanced(const CSRGraph& g, const std::vector<vid_t>& frontier,
                         std::vector<vid_t>& next, FrontierPool& pool,
                         Visit&& visit) {
  next.clear();
  const auto fsz = static_cast<std::int64_t>(frontier.size());
  if (fsz == 0) return;
  const int nt = parallel::num_threads();
  auto& degs = pool.degrees();
  degs.resize(static_cast<std::size_t>(fsz));
  for (std::int64_t i = 0; i < fsz; ++i)
    degs[static_cast<std::size_t>(i)] = g.degree(frontier[static_cast<std::size_t>(i)]);
  auto& off = pool.offsets();
  parallel::exclusive_prefix_sum(degs, off);
  const eid_t total_arcs = off[static_cast<std::size_t>(fsz)];

  if (nt == 1 || total_arcs < kSerialExpandArcs) {
    for (std::int64_t i = 0; i < fsz; ++i) {
      const vid_t u = frontier[static_cast<std::size_t>(i)];
      for (vid_t v : g.neighbors(u))
        if (visit(u, v)) next.push_back(v);
    }
    return;
  }

  pool.prepare(nt);
  parallel::run_team(nt, [&](int t) {
    auto& out = pool.local(t);
    out.clear();
    const eid_t arc_lo = total_arcs * t / nt;
    const eid_t arc_hi = total_arcs * (t + 1) / nt;
    if (arc_lo < arc_hi) {
      // First frontier vertex whose arc range intersects [arc_lo, arc_hi).
      std::int64_t i = static_cast<std::int64_t>(
          std::upper_bound(off.begin(), off.begin() + fsz + 1, arc_lo) -
          off.begin() - 1);
      for (; i < fsz && off[static_cast<std::size_t>(i)] < arc_hi; ++i) {
        const vid_t u = frontier[static_cast<std::size_t>(i)];
        const auto nb = g.neighbors(u);
        const eid_t base = off[static_cast<std::size_t>(i)];
        const eid_t lo = std::max<eid_t>(arc_lo - base, 0);
        const eid_t hi =
            std::min<eid_t>(arc_hi - base, static_cast<eid_t>(nb.size()));
        for (eid_t j = lo; j < hi; ++j) {
          const vid_t v = nb[static_cast<std::size_t>(j)];
          if (visit(u, v)) out.push_back(v);
        }
      }
    }
  });
  pool.collect_into(next);
}

/// A BFS frontier that is either sparse (vertex list, expanded by push) or
/// dense (bitmap over all vertices, expanded by bottom-up pull).  The
/// traversal engines convert between the two as the Beamer alpha/beta
/// heuristic dictates; both representations keep their storage across
/// levels and runs.
class Frontier {
 public:
  /// Bind to a graph of n vertices and reset to empty sparse.
  void init(vid_t n) {
    n_ = n;
    list_.clear();
    dense_ = false;
    size_ = 0;
    arcs_ = 0;
  }

  void reset_to(vid_t v, eid_t degree) {
    list_.clear();
    list_.push_back(v);
    dense_ = false;
    size_ = 1;
    arcs_ = degree;
  }

  [[nodiscard]] bool dense() const { return dense_; }
  [[nodiscard]] vid_t size() const { return size_; }
  [[nodiscard]] eid_t arcs() const { return arcs_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  std::vector<vid_t>& list() { return list_; }
  [[nodiscard]] const std::vector<vid_t>& list() const { return list_; }
  AtomicBitmap& bits() { return bits_; }
  [[nodiscard]] const AtomicBitmap& bits() const { return bits_; }

  /// Record the outcome of a dense (pull) level, whose bitmap was filled by
  /// the engine directly.
  void assume_dense(vid_t size, eid_t arcs) {
    dense_ = true;
    size_ = size;
    arcs_ = arcs;
  }

  void assume_sparse(const CSRGraph& g) {
    dense_ = false;
    size_ = static_cast<vid_t>(list_.size());
    eid_t a = 0;
    for (vid_t v : list_) a += g.degree(v);
    arcs_ = a;
  }

  /// Sparse -> dense: scatter the vertex list into the bitmap.
  void to_dense() {
    bits_.resize(static_cast<std::size_t>(n_));
    const auto fsz = static_cast<std::int64_t>(list_.size());
    parallel::parallel_for(fsz, [&](std::int64_t i) {
      bits_.set(static_cast<std::size_t>(list_[static_cast<std::size_t>(i)]));
    });
    dense_ = true;
  }

  /// Dense -> sparse: gather the vertices whose `dist` equals `level` (the
  /// depth this frontier was discovered at) back into the list.
  void to_sparse(const CSRGraph& g, const std::vector<std::int64_t>& dist,
                 std::int64_t level, FrontierPool& pool) {
    const int nt = parallel::num_threads();
    pool.prepare(nt);
    parallel::run_team(nt, [&](int t) {
      auto& out = pool.local(t);
      out.clear();
      // Contiguous block per thread, so collect_into yields vertex order.
      const vid_t lo = n_ * t / nt;
      const vid_t hi = n_ * (t + 1) / nt;
      for (vid_t v = lo; v < hi; ++v)
        if (dist[static_cast<std::size_t>(v)] == level) out.push_back(v);
    });
    pool.collect_into(list_);
    assume_sparse(g);
  }

  void swap(Frontier& other) noexcept {
    std::swap(n_, other.n_);
    std::swap(dense_, other.dense_);
    std::swap(size_, other.size_);
    std::swap(arcs_, other.arcs_);
    list_.swap(other.list_);
    bits_.swap(other.bits_);
  }

 private:
  vid_t n_ = 0;
  bool dense_ = false;
  vid_t size_ = 0;
  eid_t arcs_ = 0;
  std::vector<vid_t> list_;
  AtomicBitmap bits_;
};

/// Direction-optimizing BFS engine over the shared frontier substrate.
/// One engine owns all traversal scratch (frontier pair, visited bitmap,
/// buffer pool), so a client running many searches — closeness, path-length
/// sampling, the betweenness forward phase — reuses every allocation.
///
/// run() parallelizes within each level (arc-balanced push / bitmap pull);
/// run_serial() is the same hybrid without OpenMP, for clients that already
/// parallelize across sources and want one engine per thread.
/// An engine instance is not thread-safe; share nothing between threads.
class BfsEngine {
 public:
  BFSResult run(const CSRGraph& g, vid_t source,
                const HybridBFSOptions& opts = {},
                std::vector<BfsLevelStats>* trace = nullptr);

  BFSResult run_serial(const CSRGraph& g, vid_t source,
                       const HybridBFSOptions& opts = {});

  /// As run_serial, but reuses the caller's result buffers (no per-source
  /// vector allocations in sweep loops).
  void run_serial_into(const CSRGraph& g, vid_t source,
                       const HybridBFSOptions& opts, BFSResult& r);

  FrontierPool& pool() { return pool_; }

 private:
  Frontier cur_, next_;
  AtomicBitmap visited_;
  FrontierPool pool_;
};

}  // namespace snap
