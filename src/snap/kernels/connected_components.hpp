#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// A partition of the vertex set into connected components.
struct Components {
  std::vector<vid_t> label;  ///< dense component id per vertex, 0..count-1
  vid_t count = 0;

  /// Sizes of each component.
  [[nodiscard]] std::vector<vid_t> sizes() const;
  /// Id of the largest component.
  [[nodiscard]] vid_t giant() const;
};

/// Parallel connected components via Shiloach–Vishkin-style hook-and-shortcut
/// label propagation over the logical edge array.  Edge direction is ignored
/// (weak connectivity for directed graphs).
Components connected_components(const CSRGraph& g);

/// Connected components by a serial BFS sweep over the CSR adjacency
/// (undirected graphs only).  Produces exactly the same labels as
/// `connected_components`.  The SV engine above scans the logical edge
/// array sequentially, so its memory traffic is insensitive to the vertex
/// numbering; this variant walks adjacency rows and a visited bitmap, which
/// makes it the component engine that rewards the locality reorder
/// pre-passes in `graph/reorder` (see docs/PERFORMANCE.md).
Components connected_components_bfs(const CSRGraph& g);

/// Connected components of the subgraph of edges with
/// `edge_alive[edge_id] != 0` — the incremental step of the divisive
/// community algorithms (GN / pBD) after an edge removal.
Components connected_components_masked(const CSRGraph& g,
                                       const std::vector<std::uint8_t>& edge_alive);

}  // namespace snap
