#pragma once

#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Minimum spanning forest result.
struct MSTResult {
  std::vector<eid_t> tree_edges;  ///< logical edge ids in the forest
  weight_t total_weight = 0;
  vid_t num_trees = 0;  ///< one per connected component
};

/// Parallel Borůvka minimum spanning forest.  Each round finds every
/// component's lightest incident edge in parallel (ties broken by edge id for
/// determinism), then contracts.  O(m log n) work, log n rounds — the
/// lazy-synchronization MST scheme of §3 recast over the CSR edge array.
MSTResult boruvka_mst(const CSRGraph& g);

/// Unweighted spanning forest from parallel BFS (one tree per component).
MSTResult bfs_spanning_forest(const CSRGraph& g);

}  // namespace snap
