#include "snap/stream/streaming_graph.hpp"

#include <cstdint>
#include <memory>
#include <utility>

#include "snap/debug/validate.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/sync.hpp"

namespace snap::stream {

EpochSnapshot::EpochSnapshot(CSRGraph csr, std::uint64_t epoch,
                             std::shared_ptr<std::atomic<std::int64_t>> live)
    : csr_(std::move(csr)), epoch_(epoch), live_(std::move(live)) {
  live_->fetch_add(1, std::memory_order_acq_rel);
}

EpochSnapshot::~EpochSnapshot() {
  live_->fetch_sub(1, std::memory_order_acq_rel);
}

StreamingGraph::StreamingGraph(vid_t n, bool directed, eid_t promote_threshold)
    : graph_(n, directed, promote_threshold) {}

StreamingGraph::StreamingGraph(DynamicGraph graph)
    : graph_(std::move(graph)) {}

StreamingGraph StreamingGraph::from_csr(const CSRGraph& g,
                                        eid_t promote_threshold) {
  return StreamingGraph(DynamicGraph::from_csr(g, promote_threshold));
}

void StreamingGraph::add_observer(StreamObserver* obs) {
  if (obs) observers_.push_back(obs);
}

ApplyStats StreamingGraph::apply(const UpdateBatch& batch) {
  return apply_canonical(batch.canonicalize(graph_.directed()));
}

ApplyStats StreamingGraph::apply_serial(const UpdateBatch& batch) {
  parallel::ThreadScope scope(1);
  return apply(batch);
}

ApplyStats StreamingGraph::apply_canonical(const CanonicalBatch& cb) {
  ApplyStats st;
  st.raw_records = cb.raw_records;
  st.canonical_arcs = cb.arcs.size();
  const bool directed = graph_.directed();
  if (cb.max_vid >= graph_.num_vertices())
    graph_.ensure_vertices(cb.max_vid + 1);

  const std::vector<ArcUpdate>& arcs = cb.arcs;
  const std::size_t na = arcs.size();

  AppliedBatch ab;
  if (na > 0) {
    // Group the sorted arc array by owner.  A group is the contiguous run of
    // updates landing in one vertex's adjacency; groups are applied with
    // dynamic scheduling (hub vertices can receive most of a batch), each
    // group entirely by one thread — the no-lock ownership discipline.
    std::vector<eid_t> head(na);
    parallel::parallel_for(na, [&](std::size_t i) {
      head[i] = (i == 0 || arcs[i].owner != arcs[i - 1].owner) ? 1 : 0;
    });
    std::vector<eid_t> group_of;
    parallel::exclusive_prefix_sum(head, group_of);
    const auto ngroups = static_cast<std::size_t>(group_of[na]);
    std::vector<std::size_t> group_begin(ngroups + 1, na);
    parallel::parallel_for(na, [&](std::size_t i) {
      if (head[i]) group_begin[static_cast<std::size_t>(group_of[i])] = i;
    });

    // Apply.  insert_arc/delete_arc report whether the arc actually changed
    // state; within a group arcs are applied in (nbr, seq) order, so flat
    // array contents, promotion points and treap shapes are all deterministic.
    std::vector<std::uint8_t> eff(na, 0);
    parallel::parallel_for_dynamic(
        ngroups,
        [&](std::size_t g) {
          const std::size_t lo = group_begin[g];
          const std::size_t hi = group_begin[g + 1];
          for (std::size_t i = lo; i < hi; ++i) {
            const ArcUpdate& a = arcs[i];
            eff[i] = a.kind == UpdateKind::kInsert
                         ? graph_.insert_arc(a.owner, a.nbr)
                         : graph_.delete_arc(a.owner, a.nbr);
          }
        },
        /*chunk=*/8);

    // Effective logical edge changes: for undirected graphs the two arcs of
    // an edge are always both effective or both not (the adjacency mirror
    // invariant plus symmetric canonicalization), so the owner <= nbr arc
    // stands for the edge.  Compaction keeps the sorted (u, v) order.
    std::vector<eid_t> fi(na), fd(na);
    parallel::parallel_for(na, [&](std::size_t i) {
      const ArcUpdate& a = arcs[i];
      const bool logical = eff[i] && (directed || a.owner <= a.nbr);
      fi[i] = (logical && a.kind == UpdateKind::kInsert) ? 1 : 0;
      fd[i] = (logical && a.kind == UpdateKind::kDelete) ? 1 : 0;
    });
    std::vector<eid_t> oi, od;
    parallel::exclusive_prefix_sum(fi, oi);
    parallel::exclusive_prefix_sum(fd, od);
    ab.inserted.resize(static_cast<std::size_t>(oi[na]));
    ab.deleted.resize(static_cast<std::size_t>(od[na]));
    parallel::parallel_for(na, [&](std::size_t i) {
      const ArcUpdate& a = arcs[i];
      if (fi[i])
        ab.inserted[static_cast<std::size_t>(oi[i])] = {a.owner, a.nbr};
      if (fd[i])
        ab.deleted[static_cast<std::size_t>(od[i])] = {a.owner, a.nbr};
    });

    graph_.m_ += static_cast<eid_t>(ab.inserted.size()) -
                 static_cast<eid_t>(ab.deleted.size());
  }

  st.applied_inserts = ab.inserted.size();
  st.applied_deletes = ab.deleted.size();

  // Post-batch structural check runs before observers see the new state, so
  // a corrupted graph is caught at the batch that broke it, not downstream.
  SNAP_VALIDATE(graph_);

  const std::uint64_t new_epoch =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  ab.epoch = new_epoch;
  ab.num_vertices = graph_.num_vertices();
  ab.graph = &graph_;
  for (StreamObserver* obs : observers_) obs->on_batch(ab);

  // Eager mode: materialize and publish this epoch's snapshot before apply
  // returns, on the writer thread.  Readers pinning concurrently keep
  // seeing the previous epoch until the pointer swap; their handles keep
  // superseded snapshots alive until unpinned (RCU-style reclamation).
  if (eager_) (void)publish_snapshot();
  return st;
}

SnapshotHandle StreamingGraph::publish_snapshot() const {
  // Hidden contract: reads graph_, so only the applying thread (or a caller
  // with no concurrent writer) may enter.  The build happens outside the
  // lock — pinning readers are never blocked behind a to_csr.
  auto snap = std::shared_ptr<const EpochSnapshot>(
      new EpochSnapshot(graph_.to_csr(), epoch(), live_));
  sync::MutexLock lk(snap_mu_);
  published_ = snap;
  return snap;
}

SnapshotHandle StreamingGraph::pin() const {
  const std::uint64_t e = epoch();
  {
    sync::MutexLock lk(snap_mu_);
    // Eager mode serves whatever is currently published (snapshot
    // isolation: a pin racing an in-flight apply gets the previous epoch).
    // Lazy mode reuses the cache only when it matches the current epoch.
    if (published_ && (eager_ || published_->epoch() == e))
      return published_;
  }
  return publish_snapshot();
}

void StreamingGraph::set_eager_snapshots(bool eager) {
  eager_ = eager;
  // Publish immediately so concurrent pins always find a snapshot without
  // ever touching the live graph.
  if (eager_) (void)publish_snapshot();
}

const CSRGraph& StreamingGraph::snapshot() const {
  SnapshotHandle h = pin();
  bool refreshed = false;
  {
    sync::MutexLock lk(snap_mu_);
    refreshed = legacy_.get() != h.get();
    legacy_ = h;
  }
  // Validate only on refresh: the validator itself calls snapshot(), which
  // now short-circuits (same handle), so validation cannot recurse.
  if (refreshed) SNAP_VALIDATE(*this);
  return h->graph();
}

}  // namespace snap::stream
