#pragma once

#include <cstdint>
#include <vector>

#include "snap/ds/union_find.hpp"
#include "snap/graph/dynamic_graph.hpp"
#include "snap/graph/types.hpp"
#include "snap/stream/streaming_graph.hpp"

namespace snap::stream {

/// Connectivity maintained across applied batches — the batch-aware rewrite
/// of kernels/IncrementalComponents.  Inserts fold into the union–find as
/// whole batches; any effective deletion marks the tracker stale, and the
/// rebuild is deferred to the next query, so the cost is amortized to at most
/// one rebuild per batch no matter how many deletions the batch carried or
/// how many queries follow it.
class ComponentsObserver : public StreamObserver {
 public:
  /// Binds the tracker to `graph` (the DynamicGraph a StreamingGraph owns);
  /// seeds the union–find from its current edges.
  explicit ComponentsObserver(const DynamicGraph& graph);

  void on_batch(const AppliedBatch& batch) override;

  /// True if u and v are connected (rebuilds first when stale).
  bool connected(vid_t u, vid_t v);

  /// Number of connected components (rebuilds first when stale).
  vid_t num_components();

  [[nodiscard]] bool stale() const { return stale_; }
  [[nodiscard]] std::int64_t rebuilds() const { return rebuilds_; }

 private:
  void rebuild();

  const DynamicGraph& graph_;
  UnionFind uf_;
  bool stale_ = false;
  std::int64_t rebuilds_ = 0;
};

/// Incrementally-maintained degree distribution and maximum degree.  Tracks
/// DynamicGraph::degree semantics exactly: out-degree for directed graphs,
/// adjacency length for undirected ones (an undirected self loop contributes
/// one).  histogram()[d] is the number of degree-d vertices; the vector is
/// kept trimmed to max_degree() + 1 entries.
class DegreeStatsObserver : public StreamObserver {
 public:
  explicit DegreeStatsObserver(const DynamicGraph& graph);

  void on_batch(const AppliedBatch& batch) override;

  [[nodiscard]] eid_t max_degree() const { return max_degree_; }
  [[nodiscard]] eid_t degree(vid_t v) const {
    return deg_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] vid_t num_vertices() const {
    return static_cast<vid_t>(deg_.size());
  }
  [[nodiscard]] const std::vector<eid_t>& histogram() const { return hist_; }

 private:
  void bump(vid_t v, eid_t delta);

  bool directed_;
  std::vector<eid_t> deg_;
  std::vector<eid_t> hist_;
  eid_t max_degree_ = 0;
};

/// Incrementally-maintained clustering coefficients for undirected streams:
/// per-edge triangle counting on the dynamic adjacency.  Each applied batch
/// is replayed as a deterministic sequence (effective deletions in canonical
/// order, then effective insertions), with edge-presence queries answered
/// against the post-batch graph corrected by the not-yet-replayed changes —
/// so every per-edge common-neighbor count is exact even when several edges
/// of one triangle change in the same batch.
///
/// Self loops are ignored throughout (as the static metrics do): degrees here
/// are self-loop-free and match the CSR snapshot's, so global_clustering()
/// and average_clustering() track metrics::{global,average}_clustering_
/// coefficient of snapshot() exactly.
class ClusteringObserver : public StreamObserver {
 public:
  /// Undirected graphs only; throws std::invalid_argument on directed.
  /// Seeds triangle/wedge counts from the graph's current edges.
  explicit ClusteringObserver(const DynamicGraph& graph);

  void on_batch(const AppliedBatch& batch) override;

  /// Total triangles in the current graph.
  [[nodiscard]] std::int64_t triangles() const { return triangles_; }
  /// Total wedges (open + closed paths of length 2), sum of C(deg, 2).
  [[nodiscard]] std::int64_t wedges() const { return wedges_; }
  /// Triangles through v.
  [[nodiscard]] std::int64_t triangles_at(vid_t v) const {
    return tri_[static_cast<std::size_t>(v)];
  }
  /// Transitivity: 3 * triangles / wedges (0 when no wedges).
  [[nodiscard]] double global_clustering() const;
  /// Watts–Strogatz local coefficient of v (0 for degree < 2).
  [[nodiscard]] double local_clustering(vid_t v) const;
  /// Mean local coefficient over all vertices.
  [[nodiscard]] double average_clustering() const;

 private:
  const DynamicGraph& graph_;
  std::vector<eid_t> deg_;        // self-loop-free degrees
  std::vector<std::int64_t> tri_; // triangles through each vertex
  std::int64_t triangles_ = 0;
  std::int64_t wedges_ = 0;
};

}  // namespace snap::stream
