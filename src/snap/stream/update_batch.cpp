#include "snap/stream/update_batch.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "snap/util/parallel.hpp"

namespace snap::stream {

namespace {

void check_ids(vid_t u, vid_t v) {
  if (u < 0 || v < 0)
    throw std::invalid_argument("UpdateBatch: negative vertex id");
}

}  // namespace

void UpdateBatch::insert(vid_t u, vid_t v, std::uint64_t time) {
  check_ids(u, v);
  records_.push_back({u, v, time, UpdateKind::kInsert});
}

void UpdateBatch::erase(vid_t u, vid_t v, std::uint64_t time) {
  check_ids(u, v);
  records_.push_back({u, v, time, UpdateKind::kDelete});
}

CanonicalBatch UpdateBatch::canonicalize(bool directed) const {
  CanonicalBatch out;
  out.raw_records = records_.size();
  const std::size_t nr = records_.size();
  if (nr == 0) return out;

  out.max_vid = parallel::parallel_reduce_max<vid_t>(
      nr,
      [&](std::size_t i) { return std::max(records_[i].u, records_[i].v); },
      vid_t{-1});

  // Arc expansion.  Undirected updates emit both directions; an undirected
  // self loop emits the same arc twice, which the dedupe below folds (both
  // copies share (owner, nbr, seq, kind), so the fold is order-free).
  const std::size_t stride = directed ? 1 : 2;
  std::vector<ArcUpdate> arcs(nr * stride);
  parallel::parallel_for(nr, [&](std::size_t i) {
    const UpdateRecord& r = records_[i];
    const auto seq = static_cast<eid_t>(i);
    arcs[i * stride] = {r.u, r.v, seq, r.kind};
    if (!directed) arcs[i * stride + 1] = {r.v, r.u, seq, r.kind};
  });

  // Total-order sort: (owner, nbr, seq[, kind]).  Records comparing equal are
  // only the self-loop twins, which are fully identical, so the sorted
  // sequence is unique and thread-count-invariant.
  parallel::parallel_sort(
      arcs.begin(), arcs.end(), [](const ArcUpdate& a, const ArcUpdate& b) {
        return std::tie(a.owner, a.nbr, a.seq, a.kind) <
               std::tie(b.owner, b.nbr, b.seq, b.kind);
      });

  // Last-writer-wins dedupe: keep the final (highest-seq) record of every
  // (owner, nbr) run, compacted with a prefix sum.
  const std::size_t na = arcs.size();
  std::vector<eid_t> keep(na);
  parallel::parallel_for(na, [&](std::size_t i) {
    keep[i] = (i + 1 == na || arcs[i + 1].owner != arcs[i].owner ||
               arcs[i + 1].nbr != arcs[i].nbr)
                  ? 1
                  : 0;
  });
  std::vector<eid_t> offs;
  parallel::exclusive_prefix_sum(keep, offs);
  out.arcs.resize(static_cast<std::size_t>(offs[na]));
  parallel::parallel_for(na, [&](std::size_t i) {
    if (keep[i]) out.arcs[static_cast<std::size_t>(offs[i])] = arcs[i];
  });
  return out;
}

}  // namespace snap::stream
