#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "snap/debug/fwd.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/graph/dynamic_graph.hpp"
#include "snap/stream/update_batch.hpp"
#include "snap/util/sync.hpp"

namespace snap::stream {

/// The effective (state-changing) logical edge changes of one applied batch,
/// handed to observers.  Lists hold canonical endpoint pairs (u <= v for
/// undirected graphs), sorted ascending, each edge at most once, and
/// `inserted` and `deleted` are disjoint — the last-writer-wins
/// canonicalization guarantees at most one surviving update per edge.
/// `graph` points at the post-batch state.
struct AppliedBatch {
  std::uint64_t epoch = 0;
  vid_t num_vertices = 0;
  const DynamicGraph* graph = nullptr;
  std::vector<std::pair<vid_t, vid_t>> inserted;
  std::vector<std::pair<vid_t, vid_t>> deleted;
};

/// Observer contract: on_batch fires once per applied batch, after the graph
/// reached its post-batch state, in observer registration order, on the
/// applying thread.  Observers constructed over the same DynamicGraph the
/// StreamingGraph owns can therefore fold `inserted`/`deleted` into
/// incrementally-maintained analytics without ever rescanning the graph.
class StreamObserver {
 public:
  virtual ~StreamObserver() = default;
  virtual void on_batch(const AppliedBatch& batch) = 0;
};

/// What one apply() call did.
struct ApplyStats {
  std::size_t raw_records = 0;     ///< records in the incoming batch
  std::size_t canonical_arcs = 0;  ///< arcs surviving canonicalization
  std::size_t applied_inserts = 0; ///< logical edges actually inserted
  std::size_t applied_deletes = 0; ///< logical edges actually deleted
};

/// One immutable, refcounted epoch snapshot: the CSR image of the graph as
/// of `epoch()`.  Handed out by StreamingGraph::pin(); a handle keeps the
/// snapshot alive (RCU-style epoch reclamation — a superseded snapshot is
/// freed only when its pin count drops to zero, never in place under a
/// reader).  The object is immutable after construction, so any number of
/// threads can read `graph()` concurrently, including while the writer
/// applies the next batch.
class EpochSnapshot {
 public:
  EpochSnapshot(const EpochSnapshot&) = delete;
  EpochSnapshot& operator=(const EpochSnapshot&) = delete;
  ~EpochSnapshot();

  [[nodiscard]] const CSRGraph& graph() const { return csr_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  friend class StreamingGraph;
  EpochSnapshot(CSRGraph csr, std::uint64_t epoch,
                std::shared_ptr<std::atomic<std::int64_t>> live);

  CSRGraph csr_;
  std::uint64_t epoch_;
  // Shared with the owning StreamingGraph's live-snapshot gauge; holding it
  // by shared_ptr lets a pinned handle safely outlive the graph itself.
  std::shared_ptr<std::atomic<std::int64_t>> live_;
};

/// A pin on one epoch snapshot.  Copyable (each copy is another pin);
/// destruction unpins.  The pointee is const — snapshots are read-only by
/// construction.
using SnapshotHandle = std::shared_ptr<const EpochSnapshot>;

/// Batched, parallel edge updates over the §3 degree-hybrid DynamicGraph —
/// the streaming-ingest front door (PAPER §6's "topological analysis of
/// dynamic networks").
///
/// apply() canonicalizes the batch (see UpdateBatch::canonicalize) and then
/// applies it with updates grouped per owning vertex: every vertex's
/// adjacency is touched by exactly one thread, so there are no locks and the
/// post-batch graph — including internal flat-array order and treap
/// promotions — is byte-identical at any thread count, and equal to serial
/// one-edge-at-a-time application of the raw record sequence.
class StreamingGraph {
 public:
  explicit StreamingGraph(vid_t n = 0, bool directed = false,
                          eid_t promote_threshold = 128);
  explicit StreamingGraph(DynamicGraph graph);
  static StreamingGraph from_csr(const CSRGraph& g,
                                 eid_t promote_threshold = 128);

  [[nodiscard]] const DynamicGraph& graph() const { return graph_; }
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Register a non-owning observer; it must outlive the StreamingGraph (or
  /// at least every subsequent apply()).
  void add_observer(StreamObserver* obs);

  /// Apply a batch in parallel; returns what actually changed.
  ApplyStats apply(const UpdateBatch& batch);

  /// Same semantics on one thread (the benchable serial reference; also what
  /// apply() degrades to under parallel::set_num_threads(1)).
  ApplyStats apply_serial(const UpdateBatch& batch);

  /// Pin the current epoch snapshot.  The returned handle keeps that CSR
  /// image alive and immutable until the handle (and every copy) is
  /// dropped; superseded snapshots are reclaimed when their last pin goes
  /// away, so a reader can never observe a freed or in-place-mutated
  /// snapshot.
  ///
  /// Concurrency contract: with eager snapshots enabled
  /// (`set_eager_snapshots(true)` — the analytics-service mode), pin() is
  /// safe to call from any number of reader threads concurrently with the
  /// single writer running apply(); it returns the latest *published* epoch
  /// (snapshot isolation — a pin racing an in-flight apply sees the
  /// previous epoch) and never touches the mutating DynamicGraph.  In the
  /// default lazy mode, pin() materializes a stale snapshot on demand from
  /// the live graph and therefore must not run concurrently with apply()
  /// (the classic single-threaded analyze-between-batches pattern).
  [[nodiscard]] SnapshotHandle pin() const;

  /// Eager mode: every apply() materializes and publishes the new epoch's
  /// snapshot before returning (on the writer thread), which is what makes
  /// pin() concurrent-reader-safe.  Enabling publishes the current epoch
  /// immediately.  Costs one to_csr per batch — the price of serving
  /// readers a fresh immutable image per epoch.
  void set_eager_snapshots(bool eager);
  [[nodiscard]] bool eager_snapshots() const { return eager_; }

  /// Number of epoch snapshots currently alive (published + still-pinned
  /// superseded ones).  A gauge for tests and validators: after all handles
  /// are dropped it must fall back to at most 1 (the published snapshot).
  [[nodiscard]] std::int64_t live_snapshots() const {
    return live_->load(std::memory_order_acquire);
  }

  /// Epoch-cached CSR snapshot for the static kernels: rebuilt only when a
  /// batch has been applied since the last call, so interleaving many static
  /// analyses between batches costs one to_csr per epoch.  Single-threaded
  /// convenience over pin(): the returned reference stays valid until the
  /// next snapshot() call that observes a newer epoch (the handle backing it
  /// is cached internally).  Concurrent callers should hold their own pin()
  /// instead.
  const CSRGraph& snapshot() const;

 private:
  // Validators read the published-snapshot epoch.
  friend struct debug::Access;

  ApplyStats apply_canonical(const CanonicalBatch& cb);

  /// Build the current epoch's CSR and swap it in as the published
  /// snapshot.  Reads graph_, so only the writer (or a quiescent caller)
  /// may run it; the swap itself happens under snap_mu_.
  SnapshotHandle publish_snapshot() const;

  // Writer-owned state: graph_, observers_ and eager_ are mutated only by
  // the (single) applying thread, never under snap_mu_ — the concurrency
  // contract is "one writer", not a lock.  Readers reach the graph solely
  // through pinned EpochSnapshots, which are immutable after publication.
  DynamicGraph graph_;
  std::vector<StreamObserver*> observers_;
  std::atomic<std::uint64_t> epoch_{0};
  bool eager_ = false;

  // Snapshot publication state.  snap_mu_ guards only the shared_ptr swap /
  // copy — readers hold it for a pointer copy, the writer for a pointer
  // store, so neither side can block the other for more than that.
  mutable sync::Mutex snap_mu_;  // guards: published_, legacy_
  mutable SnapshotHandle published_ GUARDED_BY(snap_mu_);
  /// Keeps snapshot()'s returned reference alive across epochs.
  mutable SnapshotHandle legacy_ GUARDED_BY(snap_mu_);
  std::shared_ptr<std::atomic<std::int64_t>> live_ =
      std::make_shared<std::atomic<std::int64_t>>(0);
};

}  // namespace snap::stream
