#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "snap/debug/fwd.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/graph/dynamic_graph.hpp"
#include "snap/stream/update_batch.hpp"

namespace snap::stream {

/// The effective (state-changing) logical edge changes of one applied batch,
/// handed to observers.  Lists hold canonical endpoint pairs (u <= v for
/// undirected graphs), sorted ascending, each edge at most once, and
/// `inserted` and `deleted` are disjoint — the last-writer-wins
/// canonicalization guarantees at most one surviving update per edge.
/// `graph` points at the post-batch state.
struct AppliedBatch {
  std::uint64_t epoch = 0;
  vid_t num_vertices = 0;
  const DynamicGraph* graph = nullptr;
  std::vector<std::pair<vid_t, vid_t>> inserted;
  std::vector<std::pair<vid_t, vid_t>> deleted;
};

/// Observer contract: on_batch fires once per applied batch, after the graph
/// reached its post-batch state, in observer registration order, on the
/// applying thread.  Observers constructed over the same DynamicGraph the
/// StreamingGraph owns can therefore fold `inserted`/`deleted` into
/// incrementally-maintained analytics without ever rescanning the graph.
class StreamObserver {
 public:
  virtual ~StreamObserver() = default;
  virtual void on_batch(const AppliedBatch& batch) = 0;
};

/// What one apply() call did.
struct ApplyStats {
  std::size_t raw_records = 0;     ///< records in the incoming batch
  std::size_t canonical_arcs = 0;  ///< arcs surviving canonicalization
  std::size_t applied_inserts = 0; ///< logical edges actually inserted
  std::size_t applied_deletes = 0; ///< logical edges actually deleted
};

/// Batched, parallel edge updates over the §3 degree-hybrid DynamicGraph —
/// the streaming-ingest front door (PAPER §6's "topological analysis of
/// dynamic networks").
///
/// apply() canonicalizes the batch (see UpdateBatch::canonicalize) and then
/// applies it with updates grouped per owning vertex: every vertex's
/// adjacency is touched by exactly one thread, so there are no locks and the
/// post-batch graph — including internal flat-array order and treap
/// promotions — is byte-identical at any thread count, and equal to serial
/// one-edge-at-a-time application of the raw record sequence.
class StreamingGraph {
 public:
  explicit StreamingGraph(vid_t n = 0, bool directed = false,
                          eid_t promote_threshold = 128);
  explicit StreamingGraph(DynamicGraph graph);
  static StreamingGraph from_csr(const CSRGraph& g,
                                 eid_t promote_threshold = 128);

  [[nodiscard]] const DynamicGraph& graph() const { return graph_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Register a non-owning observer; it must outlive the StreamingGraph (or
  /// at least every subsequent apply()).
  void add_observer(StreamObserver* obs);

  /// Apply a batch in parallel; returns what actually changed.
  ApplyStats apply(const UpdateBatch& batch);

  /// Same semantics on one thread (the benchable serial reference; also what
  /// apply() degrades to under parallel::set_num_threads(1)).
  ApplyStats apply_serial(const UpdateBatch& batch);

  /// Epoch-cached CSR snapshot for the static kernels: rebuilt only when a
  /// batch has been applied since the last call, so interleaving many static
  /// analyses between batches costs one to_csr per epoch.
  const CSRGraph& snapshot() const;

 private:
  // Validators read the snapshot-cache epoch.
  friend struct debug::Access;

  ApplyStats apply_canonical(const CanonicalBatch& cb);

  DynamicGraph graph_;
  std::vector<StreamObserver*> observers_;
  std::uint64_t epoch_ = 0;
  mutable CSRGraph snapshot_;
  mutable std::uint64_t snapshot_epoch_ = static_cast<std::uint64_t>(-1);
};

}  // namespace snap::stream
