#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "snap/graph/types.hpp"

namespace snap::stream {

enum class UpdateKind : std::uint8_t { kInsert = 0, kDelete = 1 };

/// One timestamped logical edge update, exactly as it arrived from the
/// stream.  `time` is a caller-supplied timestamp carried through for
/// observers/provenance; ordering within a batch is by arrival index.
struct UpdateRecord {
  vid_t u = kInvalidVid;
  vid_t v = kInvalidVid;
  std::uint64_t time = 0;
  UpdateKind kind = UpdateKind::kInsert;

  friend bool operator==(const UpdateRecord&, const UpdateRecord&) = default;
};

/// One arc-level update after canonicalization.  `owner` is the vertex whose
/// adjacency the update lands in; undirected updates expand to two arcs.
struct ArcUpdate {
  vid_t owner = kInvalidVid;
  vid_t nbr = kInvalidVid;
  eid_t seq = 0;  ///< arrival index within the batch (last-writer-wins key)
  UpdateKind kind = UpdateKind::kInsert;
};

/// Canonical arc-level view of a batch: arcs sorted by (owner, nbr), at most
/// one surviving record per (owner, nbr) — the record with the highest
/// arrival index (last writer wins), so an insert and a delete of the same
/// edge in one batch resolve exactly as serial in-order application would.
struct CanonicalBatch {
  std::vector<ArcUpdate> arcs;
  vid_t max_vid = -1;           ///< largest vertex id referenced, -1 if none
  std::size_t raw_records = 0;  ///< batch size before canonicalization
};

/// A vector of timestamped insert/delete records, accumulated by the ingest
/// front-end and handed to StreamingGraph::apply as one unit.
class UpdateBatch {
 public:
  /// Queue insertion of edge (u, v).  Throws std::invalid_argument on
  /// negative vertex ids; ids beyond the target graph's current size make
  /// the graph grow on apply.
  void insert(vid_t u, vid_t v, std::uint64_t time = 0);

  /// Queue deletion of edge (u, v).
  void erase(vid_t u, vid_t v, std::uint64_t time = 0);

  void clear() { records_.clear(); }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] const std::vector<UpdateRecord>& records() const {
    return records_;
  }

  /// Parallel canonicalization: undirected arc expansion, sample sort by
  /// (owner, nbr, seq), last-writer-wins dedupe via flag + prefix-sum
  /// compaction.  Every step is a pure function of the record sequence, so
  /// the result is identical at every thread count.
  [[nodiscard]] CanonicalBatch canonicalize(bool directed) const;

 private:
  std::vector<UpdateRecord> records_;
};

}  // namespace snap::stream
