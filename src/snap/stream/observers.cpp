#include "snap/stream/observers.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace snap::stream {

// ---------------------------------------------------------------- components

ComponentsObserver::ComponentsObserver(const DynamicGraph& graph)
    : graph_(graph) {
  rebuild();
  rebuilds_ = 0;  // the initial build is not a "re"-build
}

void ComponentsObserver::on_batch(const AppliedBatch& batch) {
  if (static_cast<std::size_t>(batch.num_vertices) > uf_.size())
    uf_.grow(static_cast<std::size_t>(batch.num_vertices));
  if (!batch.deleted.empty()) {
    // A deletion can split a component, which union–find cannot undo; go
    // stale once for the whole batch.  The surviving inserts need no replay —
    // the rebuild reads them from the graph.
    stale_ = true;
    return;
  }
  if (stale_) return;
  for (const auto& [u, v] : batch.inserted) uf_.unite(u, v);
}

bool ComponentsObserver::connected(vid_t u, vid_t v) {
  if (stale_) rebuild();
  return uf_.connected(u, v);
}

vid_t ComponentsObserver::num_components() {
  if (stale_) rebuild();
  return static_cast<vid_t>(uf_.num_sets());
}

void ComponentsObserver::rebuild() {
  const vid_t n = graph_.num_vertices();
  uf_.reset(static_cast<std::size_t>(n));
  for (vid_t u = 0; u < n; ++u) {
    graph_.for_each_neighbor(u, [&](vid_t v) {
      if (u <= v || graph_.directed()) uf_.unite(u, v);
    });
  }
  stale_ = false;
  ++rebuilds_;
}

// ------------------------------------------------------------- degree stats

DegreeStatsObserver::DegreeStatsObserver(const DynamicGraph& graph)
    : directed_(graph.directed()) {
  const vid_t n = graph.num_vertices();
  deg_.resize(static_cast<std::size_t>(n));
  hist_.assign(1, 0);
  for (vid_t v = 0; v < n; ++v) {
    const eid_t d = graph.degree(v);
    deg_[static_cast<std::size_t>(v)] = d;
    if (static_cast<std::size_t>(d) >= hist_.size())
      hist_.resize(static_cast<std::size_t>(d) + 1, 0);
    ++hist_[static_cast<std::size_t>(d)];
    max_degree_ = std::max(max_degree_, d);
  }
  hist_.resize(static_cast<std::size_t>(max_degree_) + 1);
}

void DegreeStatsObserver::bump(vid_t v, eid_t delta) {
  eid_t d = deg_[static_cast<std::size_t>(v)];
  --hist_[static_cast<std::size_t>(d)];
  d += delta;
  deg_[static_cast<std::size_t>(v)] = d;
  if (static_cast<std::size_t>(d) >= hist_.size())
    hist_.resize(static_cast<std::size_t>(d) + 1, 0);
  ++hist_[static_cast<std::size_t>(d)];
  max_degree_ = std::max(max_degree_, d);
}

void DegreeStatsObserver::on_batch(const AppliedBatch& batch) {
  if (static_cast<std::size_t>(batch.num_vertices) > deg_.size()) {
    const auto grown =
        static_cast<eid_t>(batch.num_vertices - num_vertices());
    deg_.resize(static_cast<std::size_t>(batch.num_vertices), 0);
    hist_[0] += grown;
  }
  for (const auto& [u, v] : batch.inserted) {
    bump(u, +1);
    if (!directed_ && v != u) bump(v, +1);
  }
  for (const auto& [u, v] : batch.deleted) {
    bump(u, -1);
    if (!directed_ && v != u) bump(v, -1);
  }
  // The max can only decay through deletions; walk it down over the (now
  // possibly empty) top histogram bins and keep the vector trimmed.
  while (max_degree_ > 0 && hist_[static_cast<std::size_t>(max_degree_)] == 0)
    --max_degree_;
  hist_.resize(static_cast<std::size_t>(max_degree_) + 1);
}

// ---------------------------------------------------------------- clustering

ClusteringObserver::ClusteringObserver(const DynamicGraph& graph)
    : graph_(graph) {
  if (graph.directed())
    throw std::invalid_argument(
        "ClusteringObserver: undirected graphs only (as the static "
        "clustering metrics)");
  const vid_t n = graph.num_vertices();
  deg_.assign(static_cast<std::size_t>(n), 0);
  tri_.assign(static_cast<std::size_t>(n), 0);

  // From-scratch seed: sorted self-loop-free adjacency, then every triangle
  // {u < v < w} found once via its (u, v) edge.
  std::vector<std::vector<vid_t>> adj(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    graph.for_each_neighbor(v, [&](vid_t w) {
      if (w != v) adj[static_cast<std::size_t>(v)].push_back(w);
    });
    auto& a = adj[static_cast<std::size_t>(v)];
    std::sort(a.begin(), a.end());
    const auto d = static_cast<eid_t>(a.size());
    deg_[static_cast<std::size_t>(v)] = d;
    wedges_ += static_cast<std::int64_t>(d) * (d - 1) / 2;
  }
  for (vid_t u = 0; u < n; ++u) {
    const auto& au = adj[static_cast<std::size_t>(u)];
    for (vid_t v : au) {
      if (v <= u) continue;
      const auto& av = adj[static_cast<std::size_t>(v)];
      auto iu = std::upper_bound(au.begin(), au.end(), v);
      auto iv = std::upper_bound(av.begin(), av.end(), v);
      while (iu != au.end() && iv != av.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          const vid_t w = *iu;
          ++triangles_;
          ++tri_[static_cast<std::size_t>(u)];
          ++tri_[static_cast<std::size_t>(v)];
          ++tri_[static_cast<std::size_t>(w)];
          ++iu;
          ++iv;
        }
      }
    }
  }
}

namespace {

/// One batch edge touching a vertex, in the replay's per-endpoint index.
struct DeltaArc {
  vid_t other;
  std::uint32_t idx;  ///< into the pending flags of its kind
  bool is_insert;
};

using DeltaIndex = std::unordered_map<vid_t, std::vector<DeltaArc>>;

const DeltaArc* find_delta(const DeltaIndex& delta, vid_t x, vid_t y) {
  const auto it = delta.find(x);
  if (it == delta.end()) return nullptr;
  const auto& v = it->second;
  const auto at = std::lower_bound(
      v.begin(), v.end(), y,
      [](const DeltaArc& d, vid_t key) { return d.other < key; });
  return (at != v.end() && at->other == y) ? &*at : nullptr;
}

}  // namespace

void ClusteringObserver::on_batch(const AppliedBatch& batch) {
  if (static_cast<std::size_t>(batch.num_vertices) > deg_.size()) {
    deg_.resize(static_cast<std::size_t>(batch.num_vertices), 0);
    tri_.resize(static_cast<std::size_t>(batch.num_vertices), 0);
  }

  // Self loops never partake in triangles or (self-loop-free) degrees.
  std::vector<std::pair<vid_t, vid_t>> dels, ins;
  for (const auto& e : batch.deleted)
    if (e.first != e.second) dels.push_back(e);
  for (const auto& e : batch.inserted)
    if (e.first != e.second) ins.push_back(e);
  if (dels.empty() && ins.empty()) return;

  // Replay state: a deletion is conceptually still present until replayed;
  // an insertion is conceptually absent until replayed.  Presence queries
  // against the post-batch graph are corrected by these flags, which makes
  // every per-edge common-neighbor count exact mid-replay.
  std::vector<std::uint8_t> del_pending(dels.size(), 1);
  std::vector<std::uint8_t> ins_pending(ins.size(), 1);
  DeltaIndex delta;
  for (std::uint32_t i = 0; i < dels.size(); ++i) {
    delta[dels[i].first].push_back({dels[i].second, i, false});
    delta[dels[i].second].push_back({dels[i].first, i, false});
  }
  for (std::uint32_t i = 0; i < ins.size(); ++i) {
    delta[ins[i].first].push_back({ins[i].second, i, true});
    delta[ins[i].second].push_back({ins[i].first, i, true});
  }
  for (auto& [v, arcs] : delta)
    std::sort(arcs.begin(), arcs.end(),
              [](const DeltaArc& a, const DeltaArc& b) {
                return a.other < b.other;
              });

  auto present = [&](vid_t x, vid_t y) -> bool {
    if (const DeltaArc* d = find_delta(delta, x, y))
      return d->is_insert ? !ins_pending[d->idx] : del_pending[d->idx] != 0;
    return graph_.has_edge(x, y);
  };

  // Common neighbors of (u, v) in the current replay state, iterating the
  // lower-degree endpoint's adjacency.
  std::vector<vid_t> commons;
  auto count_commons = [&](vid_t u, vid_t v) {
    commons.clear();
    const vid_t a = deg_[static_cast<std::size_t>(u)] <=
                            deg_[static_cast<std::size_t>(v)]
                        ? u
                        : v;
    const vid_t b = a == u ? v : u;
    graph_.for_each_neighbor(a, [&](vid_t w) {
      if (w == u || w == v) return;
      if (const DeltaArc* d = find_delta(delta, a, w))
        if (d->is_insert && ins_pending[d->idx]) return;  // not yet inserted
      if (present(b, w)) commons.push_back(w);
    });
    const auto it = delta.find(a);
    if (it != delta.end()) {
      for (const DeltaArc& d : it->second) {
        // Deleted-but-not-yet-replayed arcs are present though absent from
        // the post-batch graph's adjacency.
        if (d.is_insert || !del_pending[d.idx]) continue;
        const vid_t w = d.other;
        if (w == u || w == v) continue;
        if (present(b, w)) commons.push_back(w);
      }
    }
  };

  // Deletions first, insertions second, each in canonical order — a valid
  // serialization from the pre-batch to the post-batch graph (the two edge
  // sets are disjoint).
  for (std::uint32_t i = 0; i < dels.size(); ++i) {
    const auto [u, v] = dels[i];
    count_commons(u, v);
    const auto c = static_cast<std::int64_t>(commons.size());
    triangles_ -= c;
    tri_[static_cast<std::size_t>(u)] -= c;
    tri_[static_cast<std::size_t>(v)] -= c;
    for (vid_t w : commons) --tri_[static_cast<std::size_t>(w)];
    wedges_ -= (deg_[static_cast<std::size_t>(u)] - 1) +
               (deg_[static_cast<std::size_t>(v)] - 1);
    --deg_[static_cast<std::size_t>(u)];
    --deg_[static_cast<std::size_t>(v)];
    del_pending[i] = 0;
  }
  for (std::uint32_t i = 0; i < ins.size(); ++i) {
    const auto [u, v] = ins[i];
    count_commons(u, v);
    const auto c = static_cast<std::int64_t>(commons.size());
    triangles_ += c;
    tri_[static_cast<std::size_t>(u)] += c;
    tri_[static_cast<std::size_t>(v)] += c;
    for (vid_t w : commons) ++tri_[static_cast<std::size_t>(w)];
    wedges_ += deg_[static_cast<std::size_t>(u)] +
               deg_[static_cast<std::size_t>(v)];
    ++deg_[static_cast<std::size_t>(u)];
    ++deg_[static_cast<std::size_t>(v)];
    ins_pending[i] = 0;
  }
}

double ClusteringObserver::global_clustering() const {
  return wedges_ == 0 ? 0.0
                      : 3.0 * static_cast<double>(triangles_) /
                            static_cast<double>(wedges_);
}

double ClusteringObserver::local_clustering(vid_t v) const {
  const eid_t d = deg_[static_cast<std::size_t>(v)];
  if (d < 2) return 0.0;
  return 2.0 * static_cast<double>(tri_[static_cast<std::size_t>(v)]) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

double ClusteringObserver::average_clustering() const {
  if (deg_.empty()) return 0.0;
  double sum = 0;
  for (vid_t v = 0; v < static_cast<vid_t>(deg_.size()); ++v)
    sum += local_clustering(v);
  return sum / static_cast<double>(deg_.size());
}

}  // namespace snap::stream
