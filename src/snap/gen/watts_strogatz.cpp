#include "snap/gen/generators.hpp"
#include "snap/util/rng.hpp"

namespace snap::gen {

EdgeList watts_strogatz_edges(vid_t n, vid_t k, double beta,
                              std::uint64_t seed) {
  SplitMix64 rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n * k));
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t j = 1; j <= k; ++j) {
      vid_t v = (u + j) % n;
      if (rng.next_double() < beta) {
        // Rewire to a uniform random endpoint (avoiding the trivial loop;
        // parallel-edge collisions are deduped by the CSR builder).
        do {
          v = static_cast<vid_t>(
              rng.next_bounded(static_cast<std::uint64_t>(n)));
        } while (v == u);
      }
      edges.push_back({u, v, 1.0});
    }
  }
  return edges;
}

CSRGraph watts_strogatz(vid_t n, vid_t k, double beta, std::uint64_t seed) {
  return CSRGraph::from_edges(n, watts_strogatz_edges(n, k, beta, seed),
                              /*directed=*/false);
}

}  // namespace snap::gen
