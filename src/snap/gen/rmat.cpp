#include <algorithm>

#include "snap/gen/generators.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap::gen {

EdgeList rmat_edges(const RmatParams& p) {
  const vid_t n = vid_t{1} << p.scale;
  const eid_t m = p.m > 0 ? p.m : p.edge_factor * n;
  EdgeList edges(static_cast<std::size_t>(m));

  const SplitMix64 base(p.seed);
  parallel::parallel_for(m, [&](eid_t e) {
    SplitMix64 rng = base.fork(static_cast<std::uint64_t>(e));
    vid_t u = 0, v = 0;
    double a = p.a, b = p.b, c = p.c, d = p.d;
    for (int level = 0; level < p.scale; ++level) {
      // Perturb the quadrant probabilities per level (standard R-MAT
      // "noise" smoothing to avoid exact self-similarity artifacts).
      const double na = a * (1.0 + p.noise * (rng.next_double() - 0.5));
      const double nb = b * (1.0 + p.noise * (rng.next_double() - 0.5));
      const double nc = c * (1.0 + p.noise * (rng.next_double() - 0.5));
      const double nd = d * (1.0 + p.noise * (rng.next_double() - 0.5));
      const double norm = na + nb + nc + nd;
      const double r = rng.next_double() * norm;
      u <<= 1;
      v <<= 1;
      if (r < na) {
        // top-left quadrant: no bit set
      } else if (r < na + nb) {
        v |= 1;
      } else if (r < na + nb + nc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    edges[static_cast<std::size_t>(e)] = Edge{u, v, 1.0};
  });
  return edges;
}

CSRGraph rmat(const RmatParams& p) {
  return CSRGraph::from_edges(vid_t{1} << p.scale, rmat_edges(p), p.directed);
}

}  // namespace snap::gen
