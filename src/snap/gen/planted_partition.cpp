#include <cmath>

#include "snap/gen/generators.hpp"
#include "snap/util/rng.hpp"

namespace snap::gen {

CSRGraph planted_partition(vid_t n, vid_t k, double deg_in, double deg_out,
                           std::uint64_t seed,
                           std::vector<vid_t>* membership) {
  SplitMix64 rng(seed);
  std::vector<vid_t> member(static_cast<std::size_t>(n));
  // Contiguous near-equal blocks.
  for (vid_t v = 0; v < n; ++v) member[v] = (v * k) / n;
  std::vector<std::vector<vid_t>> blocks(static_cast<std::size_t>(k));
  for (vid_t v = 0; v < n; ++v) blocks[member[v]].push_back(v);

  // Expected edge counts: each vertex contributes deg_in/2 intra edges and
  // deg_out/2 inter edges (each edge is counted from both endpoints).
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n * (deg_in + deg_out) / 2 + 16));

  const auto intra_total = static_cast<eid_t>(std::llround(n * deg_in / 2.0));
  for (eid_t e = 0; e < intra_total; ++e) {
    // Pick a vertex uniformly, then a partner in its block.
    const auto u = static_cast<vid_t>(
        rng.next_bounded(static_cast<std::uint64_t>(n)));
    const auto& blk = blocks[member[u]];
    if (blk.size() < 2) continue;
    vid_t v;
    do {
      v = blk[rng.next_bounded(blk.size())];
    } while (v == u);
    edges.push_back({u, v, 1.0});
  }

  const auto inter_total = static_cast<eid_t>(std::llround(n * deg_out / 2.0));
  for (eid_t e = 0; e < inter_total; ++e) {
    const auto u = static_cast<vid_t>(
        rng.next_bounded(static_cast<std::uint64_t>(n)));
    vid_t v;
    do {
      v = static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
    } while (k > 1 ? member[v] == member[u] : v == u);
    edges.push_back({u, v, 1.0});
  }

  if (membership) *membership = member;
  return CSRGraph::from_edges(n, edges, /*directed=*/false);
}

}  // namespace snap::gen
