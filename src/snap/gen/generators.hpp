#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"
#include "snap/graph/types.hpp"

namespace snap::gen {

/// R-MAT recursive-matrix generator [Chakrabarti et al.] — the paper's
/// synthetic small-world instance class (RMAT-SF: a=0.55 b=0.1 c=0.1 d=0.25
/// style skew).  Produces `m` edges over `n = 2^scale` vertices with a
/// power-law-like degree distribution.
struct RmatParams {
  int scale = 18;             ///< n = 2^scale
  eid_t edge_factor = 4;      ///< m = edge_factor * n (ignored if m set)
  eid_t m = 0;                ///< explicit edge count; 0 = edge_factor * n
  double a = 0.55, b = 0.1, c = 0.1, d = 0.25;
  double noise = 0.1;         ///< per-level parameter perturbation
  bool directed = false;
  std::uint64_t seed = 1;
};
CSRGraph rmat(const RmatParams& p);

/// Raw R-MAT edge list (duplicates and self loops included, exactly as the
/// recursive matrix emits them).  `rmat()` is this plus the CSR build; the
/// ingest bench times the two phases separately.
EdgeList rmat_edges(const RmatParams& p);

/// Sparse uniform random graph G(n, m) (Erdős–Rényi; the "sparse random"
/// instance of Table 1).
CSRGraph erdos_renyi(vid_t n, eid_t m, bool directed = false,
                     std::uint64_t seed = 1);

/// Raw G(n, m) edge list (duplicates included; self loops are resampled).
EdgeList erdos_renyi_edges(vid_t n, eid_t m, std::uint64_t seed = 1);

/// Nearly-Euclidean road-network-like graph (the "Physical (road)" instance
/// of Table 1): a `rows x cols` grid where each vertex connects to its grid
/// neighbors, with a fraction `extra_frac` of short-range diagonal shortcuts
/// and `drop_frac` of grid edges removed to mimic irregular road topology.
CSRGraph grid_road(vid_t rows, vid_t cols, double extra_frac = 0.05,
                   double drop_frac = 0.05, std::uint64_t seed = 1);

/// Watts–Strogatz small-world graph: ring lattice with k neighbors per side,
/// each edge rewired with probability `beta`.
CSRGraph watts_strogatz(vid_t n, vid_t k, double beta, std::uint64_t seed = 1);

/// Raw Watts–Strogatz edge list (rewiring collisions left for the CSR
/// builder's dedupe).
EdgeList watts_strogatz_edges(vid_t n, vid_t k, double beta,
                              std::uint64_t seed = 1);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_per_vertex` existing vertices chosen proportionally to degree.
/// Produces the power-law degree distribution of the small-world family
/// the paper targets ([3, 4] in §1).
CSRGraph barabasi_albert(vid_t n, vid_t m_per_vertex, std::uint64_t seed = 1);

/// Planted-partition (stochastic block model) graph: `k` communities of
/// near-equal size, expected intra-community degree `deg_in` and
/// inter-community degree `deg_out` per vertex.  Ground-truth membership is
/// returned through `membership` when non-null.  This is the stand-in for
/// the real community-structured networks of Tables 2–3.
CSRGraph planted_partition(vid_t n, vid_t k, double deg_in, double deg_out,
                           std::uint64_t seed = 1,
                           std::vector<vid_t>* membership = nullptr);

/// Zachary's karate club (34 vertices, 78 edges) — the one Table 2 network
/// small and famous enough to embed verbatim.
CSRGraph karate_club();

/// Deterministic structured graphs used by tests and examples.
CSRGraph path_graph(vid_t n);
CSRGraph cycle_graph(vid_t n);
CSRGraph complete_graph(vid_t n);
CSRGraph star_graph(vid_t leaves);
/// Two complete graphs of size `half` joined by a single bridge edge.
CSRGraph barbell_graph(vid_t half);

}  // namespace snap::gen
