#include "snap/gen/generators.hpp"
#include "snap/util/rng.hpp"

namespace snap::gen {

CSRGraph grid_road(vid_t rows, vid_t cols, double extra_frac, double drop_frac,
                   std::uint64_t seed) {
  const vid_t n = rows * cols;
  SplitMix64 rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(2 * n));
  auto id = [cols](vid_t r, vid_t c) { return r * cols + c; };

  for (vid_t r = 0; r < rows; ++r) {
    for (vid_t c = 0; c < cols; ++c) {
      // Grid edges, thinned by drop_frac to mimic irregular road layouts.
      if (c + 1 < cols && rng.next_double() >= drop_frac)
        edges.push_back({id(r, c), id(r, c + 1), 1.0});
      if (r + 1 < rows && rng.next_double() >= drop_frac)
        edges.push_back({id(r, c), id(r + 1, c), 1.0});
      // Short-range diagonal shortcuts (roads are locally, not globally,
      // connected — this keeps the topology nearly Euclidean).
      if (r + 1 < rows && c + 1 < cols && rng.next_double() < extra_frac)
        edges.push_back({id(r, c), id(r + 1, c + 1), 1.0});
    }
  }

  // A thinned grid can disconnect; stitch rows together so kernels that
  // assume one large component (BFS-based metrics) behave like a real
  // road network's giant component.
  for (vid_t r = 0; r + 1 < rows; ++r)
    edges.push_back({id(r, 0), id(r + 1, 0), 1.0});
  for (vid_t c = 0; c + 1 < cols; ++c)
    edges.push_back({id(0, c), id(0, c + 1), 1.0});

  return CSRGraph::from_edges(n, edges, /*directed=*/false);
}

}  // namespace snap::gen
