#include "snap/gen/generators.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap::gen {

EdgeList erdos_renyi_edges(vid_t n, eid_t m, std::uint64_t seed) {
  EdgeList edges(static_cast<std::size_t>(m));
  const SplitMix64 base(seed);
  parallel::parallel_for(m, [&](eid_t e) {
    SplitMix64 rng = base.fork(static_cast<std::uint64_t>(e));
    vid_t u, v;
    do {
      u = static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
      v = static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
    } while (u == v);
    edges[static_cast<std::size_t>(e)] = Edge{u, v, 1.0};
  });
  return edges;
}

CSRGraph erdos_renyi(vid_t n, eid_t m, bool directed, std::uint64_t seed) {
  return CSRGraph::from_edges(n, erdos_renyi_edges(n, m, seed), directed);
}

}  // namespace snap::gen
