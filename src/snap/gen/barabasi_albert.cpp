#include "snap/gen/generators.hpp"
#include "snap/util/rng.hpp"

namespace snap::gen {

CSRGraph barabasi_albert(vid_t n, vid_t m_per_vertex, std::uint64_t seed) {
  SplitMix64 rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n * m_per_vertex));
  // Repeated-endpoints list: sampling a uniform entry samples a vertex with
  // probability proportional to its degree (the classic O(1) BA trick).
  std::vector<vid_t> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2 * n * m_per_vertex));

  // Seed clique over the first m_per_vertex + 1 vertices.
  const vid_t seed_n = std::min<vid_t>(n, m_per_vertex + 1);
  for (vid_t u = 0; u < seed_n; ++u) {
    for (vid_t v = u + 1; v < seed_n; ++v) {
      edges.push_back({u, v, 1.0});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  for (vid_t v = seed_n; v < n; ++v) {
    // Pick m distinct targets by preferential attachment.
    std::vector<vid_t> targets;
    int guard = 0;
    while (static_cast<vid_t>(targets.size()) < m_per_vertex &&
           guard++ < 64 * m_per_vertex) {
      const vid_t t = endpoints[rng.next_bounded(endpoints.size())];
      bool dup = t == v;
      for (vid_t x : targets) dup = dup || x == t;
      if (!dup) targets.push_back(t);
    }
    for (vid_t t : targets) {
      edges.push_back({v, t, 1.0});
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return CSRGraph::from_edges(n, edges, /*directed=*/false);
}

}  // namespace snap::gen
