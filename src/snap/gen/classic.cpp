#include <iterator>
#include <utility>

#include "snap/gen/generators.hpp"

namespace snap::gen {

CSRGraph karate_club() {
  // Zachary (1977) karate club, 34 vertices / 78 edges, 0-indexed.
  static const std::pair<vid_t, vid_t> kEdges[] = {
      {0, 1},   {0, 2},   {0, 3},   {0, 4},   {0, 5},   {0, 6},   {0, 7},
      {0, 8},   {0, 10},  {0, 11},  {0, 12},  {0, 13},  {0, 17},  {0, 19},
      {0, 21},  {0, 31},  {1, 2},   {1, 3},   {1, 7},   {1, 13},  {1, 17},
      {1, 19},  {1, 21},  {1, 30},  {2, 3},   {2, 7},   {2, 8},   {2, 9},
      {2, 13},  {2, 27},  {2, 28},  {2, 32},  {3, 7},   {3, 12},  {3, 13},
      {4, 6},   {4, 10},  {5, 6},   {5, 10},  {5, 16},  {6, 16},  {8, 30},
      {8, 32},  {8, 33},  {9, 33},  {13, 33}, {14, 32}, {14, 33}, {15, 32},
      {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33}, {22, 32},
      {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33}, {24, 25},
      {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33}, {28, 31},
      {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32}, {31, 33},
      {32, 33}};
  EdgeList edges;
  edges.reserve(std::size(kEdges));
  for (const auto& [u, v] : kEdges) edges.push_back({u, v, 1.0});
  return CSRGraph::from_edges(34, edges, /*directed=*/false);
}

CSRGraph path_graph(vid_t n) {
  EdgeList edges;
  for (vid_t v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 1.0});
  return CSRGraph::from_edges(n, edges, /*directed=*/false);
}

CSRGraph cycle_graph(vid_t n) {
  EdgeList edges;
  for (vid_t v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n, 1.0});
  return CSRGraph::from_edges(n, edges, /*directed=*/false);
}

CSRGraph complete_graph(vid_t n) {
  EdgeList edges;
  for (vid_t u = 0; u < n; ++u)
    for (vid_t v = u + 1; v < n; ++v) edges.push_back({u, v, 1.0});
  return CSRGraph::from_edges(n, edges, /*directed=*/false);
}

CSRGraph star_graph(vid_t leaves) {
  EdgeList edges;
  for (vid_t v = 1; v <= leaves; ++v) edges.push_back({0, v, 1.0});
  return CSRGraph::from_edges(leaves + 1, edges, /*directed=*/false);
}

CSRGraph barbell_graph(vid_t half) {
  EdgeList edges;
  for (vid_t u = 0; u < half; ++u)
    for (vid_t v = u + 1; v < half; ++v) edges.push_back({u, v, 1.0});
  for (vid_t u = 0; u < half; ++u)
    for (vid_t v = u + 1; v < half; ++v)
      edges.push_back({half + u, half + v, 1.0});
  edges.push_back({half - 1, half, 1.0});  // the bridge
  return CSRGraph::from_edges(2 * half, edges, /*directed=*/false);
}

}  // namespace snap::gen
