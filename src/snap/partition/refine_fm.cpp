#include "snap/partition/refine_fm.hpp"

#include <algorithm>
#include <queue>

namespace snap {

namespace {

/// Cut weight of a bisection.
weight_t bisection_cut(const CSRGraph& g, const std::vector<std::int8_t>& side) {
  weight_t cut = 0;
  for (const Edge& e : g.edges())
    if (side[static_cast<std::size_t>(e.u)] !=
        side[static_cast<std::size_t>(e.v)])
      cut += e.w;
  return cut;
}

/// Gain of moving v to the other side: external − internal incident weight.
weight_t move_gain(const CSRGraph& g, const std::vector<std::int8_t>& side,
                   vid_t v) {
  weight_t internal = 0, external = 0;
  const auto nb = g.neighbors(v);
  const auto ws = g.weights(v);
  for (std::size_t i = 0; i < nb.size(); ++i) {
    if (nb[i] == v) continue;
    if (side[static_cast<std::size_t>(nb[i])] ==
        side[static_cast<std::size_t>(v)])
      internal += ws[i];
    else
      external += ws[i];
  }
  return external - internal;
}

}  // namespace

weight_t fm_refine_bisection(const CSRGraph& g,
                             const std::vector<weight_t>& vertex_weight,
                             std::vector<std::int8_t>& side, double tol,
                             int max_passes, double target_frac) {
  const vid_t n = g.num_vertices();
  weight_t total_vw = 0;
  for (weight_t w : vertex_weight) total_vw += w;
  const double max_side_arr[2] = {tol * total_vw * target_frac,
                                  tol * total_vw * (1.0 - target_frac)};

  weight_t cut = bisection_cut(g, side);

  for (int pass = 0; pass < max_passes; ++pass) {
    weight_t side_w[2] = {0, 0};
    for (vid_t v = 0; v < n; ++v)
      side_w[side[static_cast<std::size_t>(v)]] +=
          vertex_weight[static_cast<std::size_t>(v)];

    // Lazy max-heap of (gain, v); entries go stale when a neighbor moves.
    struct Item {
      weight_t gain;
      vid_t v;
      bool operator<(const Item& o) const { return gain < o.gain; }
    };
    std::priority_queue<Item> pq;
    std::vector<weight_t> cur_gain(static_cast<std::size_t>(n));
    std::vector<std::uint8_t> locked(static_cast<std::size_t>(n), 0);
    for (vid_t v = 0; v < n; ++v) {
      cur_gain[static_cast<std::size_t>(v)] = move_gain(g, side, v);
      pq.push({cur_gain[static_cast<std::size_t>(v)], v});
    }

    // Tentative move sequence with rollback to the best prefix.
    std::vector<vid_t> moved;
    weight_t best_cut = cut, run_cut = cut;
    std::size_t best_prefix = 0;

    while (!pq.empty()) {
      const auto [gain, v] = pq.top();
      pq.pop();
      if (locked[static_cast<std::size_t>(v)]) continue;
      if (gain != cur_gain[static_cast<std::size_t>(v)]) continue;  // stale
      const std::int8_t from = side[static_cast<std::size_t>(v)];
      const std::int8_t to = static_cast<std::int8_t>(1 - from);
      if (side_w[to] + vertex_weight[static_cast<std::size_t>(v)] >
          max_side_arr[to])
        continue;  // balance would break

      // Commit tentatively.
      side[static_cast<std::size_t>(v)] = to;
      side_w[from] -= vertex_weight[static_cast<std::size_t>(v)];
      side_w[to] += vertex_weight[static_cast<std::size_t>(v)];
      locked[static_cast<std::size_t>(v)] = 1;
      run_cut -= gain;
      moved.push_back(v);
      if (run_cut < best_cut) {
        best_cut = run_cut;
        best_prefix = moved.size();
      }
      // Refresh neighbor gains.
      for (vid_t u : g.neighbors(v)) {
        if (locked[static_cast<std::size_t>(u)] || u == v) continue;
        cur_gain[static_cast<std::size_t>(u)] = move_gain(g, side, u);
        pq.push({cur_gain[static_cast<std::size_t>(u)], u});
      }
    }

    // Roll back the tail beyond the best prefix.
    for (std::size_t i = moved.size(); i-- > best_prefix;) {
      const vid_t v = moved[i];
      side[static_cast<std::size_t>(v)] =
          static_cast<std::int8_t>(1 - side[static_cast<std::size_t>(v)]);
    }
    if (best_cut >= cut) {
      cut = best_cut;
      break;  // no improvement this pass
    }
    cut = best_cut;
  }
  return cut;
}

void greedy_kway_refine(const CSRGraph& g,
                        const std::vector<weight_t>& vertex_weight,
                        std::vector<std::int32_t>& part, std::int32_t k,
                        double tol, int max_passes) {
  const vid_t n = g.num_vertices();
  weight_t total_vw = 0;
  for (weight_t w : vertex_weight) total_vw += w;
  const double max_part = tol * total_vw / static_cast<double>(k);

  std::vector<weight_t> part_w(static_cast<std::size_t>(k), 0);
  for (vid_t v = 0; v < n; ++v)
    part_w[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        vertex_weight[static_cast<std::size_t>(v)];

  std::vector<weight_t> conn(static_cast<std::size_t>(k), 0);
  for (int pass = 0; pass < max_passes; ++pass) {
    bool any = false;
    for (vid_t v = 0; v < n; ++v) {
      const auto pv =
          static_cast<std::size_t>(part[static_cast<std::size_t>(v)]);
      // Connectivity of v to each adjacent part.
      const auto nb = g.neighbors(v);
      const auto ws = g.weights(v);
      std::vector<std::int32_t> touched;
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (nb[i] == v) continue;
        const std::int32_t p = part[static_cast<std::size_t>(nb[i])];
        if (conn[static_cast<std::size_t>(p)] == 0) touched.push_back(p);
        conn[static_cast<std::size_t>(p)] += ws[i];
      }
      // Best destination.
      std::int32_t best_p = -1;
      weight_t best_gain = 0;
      for (std::int32_t p : touched) {
        if (static_cast<std::size_t>(p) == pv) continue;
        const weight_t gain = conn[static_cast<std::size_t>(p)] - conn[pv];
        if (gain > best_gain &&
            part_w[static_cast<std::size_t>(p)] +
                    vertex_weight[static_cast<std::size_t>(v)] <=
                max_part) {
          best_gain = gain;
          best_p = p;
        }
      }
      for (std::int32_t p : touched) conn[static_cast<std::size_t>(p)] = 0;
      if (best_p >= 0) {
        part_w[pv] -= vertex_weight[static_cast<std::size_t>(v)];
        part_w[static_cast<std::size_t>(best_p)] +=
            vertex_weight[static_cast<std::size_t>(v)];
        part[static_cast<std::size_t>(v)] = best_p;
        any = true;
      }
    }
    if (!any) break;
  }
}

}  // namespace snap
