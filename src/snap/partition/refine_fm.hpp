#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Fiduccia–Mattheyses boundary refinement of a bisection (`side[v]` in
/// {0,1}).  Runs up to `max_passes` passes; within a pass, vertices are
/// moved one at a time by best gain subject to the balance tolerance, with
/// hill-climbing (negative-gain moves allowed) and rollback to the best
/// prefix.  Returns the final cut weight.
///
/// `vertex_weight` carries coarse multiplicities; `tol` bounds
/// max-side-weight / ideal (e.g. 1.05).
/// `target_frac` is side 0's share of the total vertex weight (0.5 for an
/// even bisection; recursive bisection of odd k uses uneven splits).
weight_t fm_refine_bisection(const CSRGraph& g,
                             const std::vector<weight_t>& vertex_weight,
                             std::vector<std::int8_t>& side, double tol,
                             int max_passes, double target_frac = 0.5);

/// Greedy k-way boundary refinement: passes over boundary vertices moving
/// each to the adjacent part with the largest positive gain, subject to
/// balance.  Cheaper than k-way FM; used by the direct k-way driver.
void greedy_kway_refine(const CSRGraph& g,
                        const std::vector<weight_t>& vertex_weight,
                        std::vector<std::int32_t>& part, std::int32_t k,
                        double tol, int max_passes);

}  // namespace snap
