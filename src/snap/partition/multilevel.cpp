#include "snap/partition/multilevel.hpp"

#include <algorithm>
#include <numeric>

#include "snap/graph/subgraph.hpp"
#include "snap/partition/coarsen.hpp"
#include "snap/partition/eval.hpp"
#include "snap/partition/refine_fm.hpp"
#include "snap/util/rng.hpp"

namespace snap {

namespace {

weight_t bisection_cut(const CSRGraph& g, const std::vector<std::int8_t>& side) {
  weight_t cut = 0;
  for (const Edge& e : g.edges())
    if (side[static_cast<std::size_t>(e.u)] !=
        side[static_cast<std::size_t>(e.v)])
      cut += e.w;
  return cut;
}

/// Greedy graph-growing bisection: BFS-grow side 0 from a random seed until
/// it holds `frac` of the vertex weight; several tries, best cut kept.
std::vector<std::int8_t> grow_bisection(const CSRGraph& g,
                                        const std::vector<weight_t>& vwgt,
                                        double frac, std::uint64_t seed,
                                        int tries = 4) {
  const vid_t n = g.num_vertices();
  weight_t total = 0;
  for (weight_t w : vwgt) total += w;
  const double want = frac * total;

  std::vector<std::int8_t> best(static_cast<std::size_t>(n), 1);
  weight_t best_cut = -1;
  SplitMix64 rng(seed);

  for (int t = 0; t < tries; ++t) {
    std::vector<std::int8_t> side(static_cast<std::size_t>(n), 1);
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
    double grown = 0;
    std::vector<vid_t> queue;
    std::size_t head = 0;
    vid_t scan = 0;  // fallback for disconnected graphs
    auto push = [&](vid_t v) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        queue.push_back(v);
      }
    };
    push(static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n))));
    while (grown < want) {
      if (head == queue.size()) {
        // Component exhausted: jump to the next unvisited vertex.
        while (scan < n && seen[static_cast<std::size_t>(scan)]) ++scan;
        if (scan >= n) break;
        push(scan);
      }
      const vid_t v = queue[head++];
      side[static_cast<std::size_t>(v)] = 0;
      grown += vwgt[static_cast<std::size_t>(v)];
      for (vid_t u : g.neighbors(v)) push(u);
    }
    const weight_t cut = bisection_cut(g, side);
    if (best_cut < 0 || cut < best_cut) {
      best_cut = cut;
      best = std::move(side);
    }
  }
  return best;
}

/// Multilevel bisection: coarsen recursively, bisect coarsest, refine on the
/// way back up.
std::vector<std::int8_t> bisect_multilevel(const CSRGraph& g,
                                           const std::vector<weight_t>& vwgt,
                                           const MultilevelParams& p,
                                           double frac, vid_t coarse_target,
                                           std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  if (n <= coarse_target) {
    auto side = grow_bisection(g, vwgt, frac, seed);
    fm_refine_bisection(g, vwgt, side, p.imbalance_tol, p.refine_passes, frac);
    return side;
  }
  const CoarseLevel lvl = coarsen_heavy_edge(g, vwgt, seed);
  if (lvl.graph.num_vertices() >= (n * 19) / 20) {
    // Coarsening stalled (matching found almost nothing): bisect directly.
    auto side = grow_bisection(g, vwgt, frac, seed);
    fm_refine_bisection(g, vwgt, side, p.imbalance_tol, p.refine_passes, frac);
    return side;
  }
  const auto cside = bisect_multilevel(lvl.graph, lvl.vertex_weight, p, frac,
                                       coarse_target, seed + 1);
  std::vector<std::int8_t> side(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v)
    side[static_cast<std::size_t>(v)] = cside[static_cast<std::size_t>(
        lvl.fine_to_coarse[static_cast<std::size_t>(v)])];
  fm_refine_bisection(g, vwgt, side, p.imbalance_tol, p.refine_passes, frac);
  return side;
}

/// Recursively split `g` into k parts, writing part ids (offset upward)
/// through `assign`.
void recursive_split(const CSRGraph& g, const std::vector<weight_t>& vwgt,
                     std::int32_t k, std::int32_t part_offset,
                     const MultilevelParams& p, vid_t coarse_target,
                     std::uint64_t seed,
                     const std::vector<vid_t>& to_parent,
                     std::vector<std::int32_t>& part) {
  if (k <= 1) {
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      part[static_cast<std::size_t>(to_parent[static_cast<std::size_t>(v)])] =
          part_offset;
    return;
  }
  const std::int32_t k0 = k / 2;
  const double frac = static_cast<double>(k0) / static_cast<double>(k);
  const auto side =
      bisect_multilevel(g, vwgt, p, frac, coarse_target, seed);

  std::vector<vid_t> half[2];
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    half[side[static_cast<std::size_t>(v)]].push_back(v);

  for (int s = 0; s < 2; ++s) {
    const std::int32_t sub_k = s == 0 ? k0 : k - k0;
    const std::int32_t sub_off = s == 0 ? part_offset : part_offset + k0;
    if (half[s].empty()) continue;
    Subgraph sub = induced_subgraph(g, half[s]);
    std::vector<weight_t> sub_w(half[s].size());
    std::vector<vid_t> sub_to_root(half[s].size());
    for (std::size_t i = 0; i < half[s].size(); ++i) {
      sub_w[i] = vwgt[static_cast<std::size_t>(half[s][i])];
      sub_to_root[i] =
          to_parent[static_cast<std::size_t>(half[s][i])];
    }
    recursive_split(sub.graph, sub_w, sub_k, sub_off, p, coarse_target,
                    seed * 2 + static_cast<std::uint64_t>(s) + 1, sub_to_root,
                    part);
  }
}

}  // namespace

PartitionResult multilevel_recursive_bisection(const CSRGraph& g,
                                               std::int32_t k,
                                               const MultilevelParams& p) {
  PartitionResult r;
  r.k = k;
  const vid_t n = g.num_vertices();
  r.part.assign(static_cast<std::size_t>(n), 0);
  if (k > 1 && n > 0) {
    const vid_t coarse_target =
        p.coarsen_to > 0 ? p.coarsen_to : std::max<vid_t>(64, 20 * k);
    std::vector<weight_t> vwgt(static_cast<std::size_t>(n), 1.0);
    std::vector<vid_t> ident(static_cast<std::size_t>(n));
    std::iota(ident.begin(), ident.end(), vid_t{0});
    recursive_split(g, vwgt, k, 0, p, coarse_target, p.seed, ident, r.part);
  }
  evaluate(g, r);
  return r;
}

PartitionResult multilevel_kway(const CSRGraph& g, std::int32_t k,
                                const MultilevelParams& p) {
  PartitionResult r;
  r.k = k;
  const vid_t n = g.num_vertices();
  r.part.assign(static_cast<std::size_t>(n), 0);
  if (k <= 1 || n == 0) {
    evaluate(g, r);
    return r;
  }
  const vid_t coarse_target =
      p.coarsen_to > 0 ? p.coarsen_to : std::max<vid_t>(64, 20 * k);

  // Coarsening hierarchy on the whole graph.
  std::vector<CoarseLevel> levels;
  const CSRGraph* cur = &g;
  std::vector<weight_t> cur_w(static_cast<std::size_t>(n), 1.0);
  std::uint64_t seed = p.seed;
  while (cur->num_vertices() > coarse_target) {
    CoarseLevel lvl = coarsen_heavy_edge(*cur, cur_w, seed++);
    if (lvl.graph.num_vertices() >= (cur->num_vertices() * 19) / 20) break;
    cur_w = lvl.vertex_weight;
    levels.push_back(std::move(lvl));
    cur = &levels.back().graph;
  }

  // Initial k-way partition of the coarsest graph by recursive bisection,
  // balancing the coarse vertex *weights* (a coarse vertex stands for many
  // fine ones, very unevenly so on skewed-degree graphs).
  MultilevelParams flat = p;
  flat.coarsen_to = cur->num_vertices();  // no further coarsening
  std::vector<std::int32_t> part(
      static_cast<std::size_t>(cur->num_vertices()), 0);
  {
    std::vector<vid_t> ident(static_cast<std::size_t>(cur->num_vertices()));
    std::iota(ident.begin(), ident.end(), vid_t{0});
    recursive_split(*cur, cur_w, k, 0, flat, cur->num_vertices(), seed, ident,
                    part);
  }
  greedy_kway_refine(*cur, cur_w, part, k, p.imbalance_tol, p.refine_passes);

  // Uncoarsen with greedy k-way boundary refinement at each level.
  for (std::size_t li = levels.size(); li-- > 0;) {
    const CSRGraph& fine =
        li == 0 ? g : levels[li - 1].graph;
    const std::vector<weight_t>* fine_w;
    std::vector<weight_t> unit;
    if (li == 0) {
      unit.assign(static_cast<std::size_t>(g.num_vertices()), 1.0);
      fine_w = &unit;
    } else {
      fine_w = &levels[li - 1].vertex_weight;
    }
    std::vector<std::int32_t> fine_part(
        static_cast<std::size_t>(fine.num_vertices()));
    for (vid_t v = 0; v < fine.num_vertices(); ++v)
      fine_part[static_cast<std::size_t>(v)] = part[static_cast<std::size_t>(
          levels[li].fine_to_coarse[static_cast<std::size_t>(v)])];
    part = std::move(fine_part);
    greedy_kway_refine(fine, *fine_w, part, k, p.imbalance_tol,
                       p.refine_passes);
  }

  r.part = std::move(part);
  evaluate(g, r);
  return r;
}

}  // namespace snap
