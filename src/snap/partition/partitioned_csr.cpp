#include "snap/partition/partitioned_csr.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <utility>

#include "snap/debug/check.hpp"
#include "snap/partition/exchange.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

namespace {

/// Run one body per shard on the kernel thread team.  Shards beyond the
/// delivered thread count are folded round-robin (run_team semantics), so
/// k may exceed the hardware concurrency.
template <typename F>
void for_each_shard(int k, F&& body) {
  parallel::run_team(k, std::forward<F>(body));
}

}  // namespace

PartitionedCSR PartitionedCSR::build(const CSRGraph& g,
                                     const PartitionedCSROptions& opts) {
  SNAP_ASSERT(!g.directed(),
              "PartitionedCSR: undirected graphs only (kernels rely on arc "
              "symmetry to propagate across shards)");
  PartitionedCSR p;
  p.n_ = g.num_vertices();
  p.arcs_ = g.num_arcs();
  const vid_t n = p.n_;
  int k = opts.num_shards > 0 ? opts.num_shards : parallel::num_threads();
  k = std::max(1, std::min<int>(k, static_cast<int>(std::max<vid_t>(1, n))));

  // 1. Cut: per-old-vertex shard assignment.
  std::vector<std::int32_t> part(static_cast<std::size_t>(n), 0);
  bool partitioned = false;
  if (opts.use_partitioner && k > 1 && n > static_cast<vid_t>(k)) {
    const PartitionResult pr = multilevel_kway(g, k, opts.partition);
    if (pr.success && pr.k == k) {
      part = pr.part;
      partitioned = true;
    }
  }
  if (!partitioned && k > 1) {
    // Contiguous input-order chunks: balanced, deterministic, cheap.
    parallel::parallel_for(n, [&](vid_t v) {
      part[static_cast<std::size_t>(v)] =
          static_cast<std::int32_t>(static_cast<std::int64_t>(v) * k / n);
    });
  }

  // 2. Shard-major relabeling: new id order = (shard, old id) ascending.
  p.new_to_old_.resize(static_cast<std::size_t>(n));
  std::iota(p.new_to_old_.begin(), p.new_to_old_.end(), vid_t{0});
  parallel::parallel_sort(p.new_to_old_.begin(), p.new_to_old_.end(),
                          [&](vid_t a, vid_t b) {
                            const auto pa = part[static_cast<std::size_t>(a)];
                            const auto pb = part[static_cast<std::size_t>(b)];
                            if (pa != pb) return pa < pb;
                            return a < b;
                          });
  p.old_to_new_.resize(static_cast<std::size_t>(n));
  parallel::parallel_for(n, [&](vid_t i) {
    p.old_to_new_[static_cast<std::size_t>(
        p.new_to_old_[static_cast<std::size_t>(i)])] = i;
  });
  p.shard_of_.resize(static_cast<std::size_t>(n));
  parallel::parallel_for(n, [&](vid_t i) {
    p.shard_of_[static_cast<std::size_t>(i)] =
        part[static_cast<std::size_t>(p.new_to_old_[static_cast<std::size_t>(i)])];
  });

  // Shard boundaries in new-id space (shard ids may be empty; ranges stay
  // monotone).
  std::vector<vid_t> count(static_cast<std::size_t>(k), 0);
  for (vid_t v = 0; v < n; ++v) ++count[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])];
  p.shards_.resize(static_cast<std::size_t>(k));
  vid_t run = 0;
  for (int s = 0; s < k; ++s) {
    p.shards_[static_cast<std::size_t>(s)].first = run;
    run += count[static_cast<std::size_t>(s)];
    p.shards_[static_cast<std::size_t>(s)].last = run;
  }
  SNAP_DCHECK(run == n, "shard ranges cover ", run, " of ", n, " vertices");

  // 3. Owner-thread materialization: each shard's offsets/adjacency are
  // allocated and written by the thread that owns the shard, so first-touch
  // page placement lands the arrays in the owner's memory domain.
  std::vector<eid_t> boundary(static_cast<std::size_t>(k), 0);
  for_each_shard(k, [&](int s) {
    Shard& sh = p.shards_[static_cast<std::size_t>(s)];
    const vid_t owned = sh.owned();
    sh.offsets.resize(static_cast<std::size_t>(owned) + 1);
    sh.offsets[0] = 0;
    for (vid_t i = 0; i < owned; ++i) {
      const vid_t old =
          p.new_to_old_[static_cast<std::size_t>(sh.first + i)];
      sh.offsets[static_cast<std::size_t>(i) + 1] =
          sh.offsets[static_cast<std::size_t>(i)] + g.degree(old);
    }
    sh.adj.resize(static_cast<std::size_t>(sh.offsets[static_cast<std::size_t>(owned)]));
    eid_t cross = 0;
    for (vid_t i = 0; i < owned; ++i) {
      const vid_t old =
          p.new_to_old_[static_cast<std::size_t>(sh.first + i)];
      const auto nb = g.neighbors(old);
      vid_t* row = sh.adj.data() + sh.offsets[static_cast<std::size_t>(i)];
      for (std::size_t j = 0; j < nb.size(); ++j)
        row[j] = p.old_to_new_[static_cast<std::size_t>(nb[j])];
      std::sort(row, row + nb.size());
      for (std::size_t j = 0; j < nb.size(); ++j)
        if (p.shard_of_[static_cast<std::size_t>(row[j])] != s) ++cross;
    }
    boundary[static_cast<std::size_t>(s)] = cross;
  });
  for (int s = 0; s < k; ++s) {
    p.shards_[static_cast<std::size_t>(s)].boundary_arcs =
        boundary[static_cast<std::size_t>(s)];
    p.boundary_arcs_ += boundary[static_cast<std::size_t>(s)];
  }
  return p;
}

std::vector<std::int64_t> PartitionedCSR::bfs_distances(vid_t source) const {
  const vid_t n = n_;
  SNAP_ASSERT(source >= 0 && source < n, "bfs_distances: source ", source,
              " out of [0, ", n, ")");
  const int k = num_shards();
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n), -1);

  const vid_t src_new = old_to_new_[static_cast<std::size_t>(source)];
  dist[static_cast<std::size_t>(src_new)] = 0;
  std::vector<std::vector<vid_t>> frontier(static_cast<std::size_t>(k));
  frontier[static_cast<std::size_t>(owner(src_new))].push_back(src_new);

  std::int64_t level = 0;
  bool any = true;
  // Boundary exchange: shard s stages the new-ids it discovered in shard t
  // this level; owners drain their channels after the barrier.
  Exchange<vid_t> ex(k);
  while (any) {
    std::vector<std::vector<vid_t>> next(static_cast<std::size_t>(k));
    // Phase 1: owner-computes expansion; local claims write owned dist
    // entries only, remote candidates are batched per target shard.
    for_each_shard(k, [&](int s) {
      const Shard& sh = shards_[static_cast<std::size_t>(s)];
      auto& local_next = next[static_cast<std::size_t>(s)];
      for (const vid_t u : frontier[static_cast<std::size_t>(s)]) {
        const vid_t li = u - sh.first;
        const eid_t lo = sh.offsets[static_cast<std::size_t>(li)];
        const eid_t hi = sh.offsets[static_cast<std::size_t>(li) + 1];
        for (eid_t a = lo; a < hi; ++a) {
          const vid_t w = sh.adj[static_cast<std::size_t>(a)];
          const int t = owner(w);
          if (t == s) {
            if (dist[static_cast<std::size_t>(w)] == -1) {
              dist[static_cast<std::size_t>(w)] = level + 1;
              local_next.push_back(w);
            }
          } else {
            ex.send(s, t, w);
          }
        }
      }
    });
    // Phase 2 (after the fork/join barrier): owners drain their inboxes in
    // sender order — deterministic — claiming still-unreached vertices.
    for_each_shard(k, [&](int t) {
      auto& local_next = next[static_cast<std::size_t>(t)];
      ex.deliver(t, [&](const vid_t w) {
        if (dist[static_cast<std::size_t>(w)] == -1) {
          dist[static_cast<std::size_t>(w)] = level + 1;
          local_next.push_back(w);
        }
      });
    });
    any = false;
    for (int s = 0; s < k; ++s)
      any |= !next[static_cast<std::size_t>(s)].empty();
    frontier.swap(next);
    if (any) ++level;
  }
  SNAP_VALIDATE(ex);

  // Back to original ids.
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  parallel::parallel_for(n, [&](vid_t v) {
    out[static_cast<std::size_t>(v)] =
        dist[static_cast<std::size_t>(old_to_new_[static_cast<std::size_t>(v)])];
  });
  return out;
}

Components PartitionedCSR::components() const {
  const vid_t n = n_;
  const int k = num_shards();
  Components out;
  if (n == 0) return out;

  // Per-shard union–find over intra-shard arcs (built once, local indices).
  // label[u] (new-id space) then tracks the minimum new id known reachable
  // from u's local class; boundary rounds push labels across shards.
  std::vector<std::vector<vid_t>> uf_parent(static_cast<std::size_t>(k));
  for_each_shard(k, [&](int s) {
    const Shard& sh = shards_[static_cast<std::size_t>(s)];
    auto& uf = uf_parent[static_cast<std::size_t>(s)];
    uf.resize(static_cast<std::size_t>(sh.owned()));
    std::iota(uf.begin(), uf.end(), vid_t{0});
    auto find = [&](vid_t x) {
      while (uf[static_cast<std::size_t>(x)] != x) {
        uf[static_cast<std::size_t>(x)] =
            uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(x)])];
        x = uf[static_cast<std::size_t>(x)];
      }
      return x;
    };
    for (vid_t i = 0; i < sh.owned(); ++i) {
      const eid_t lo = sh.offsets[static_cast<std::size_t>(i)];
      const eid_t hi = sh.offsets[static_cast<std::size_t>(i) + 1];
      for (eid_t a = lo; a < hi; ++a) {
        const vid_t w = sh.adj[static_cast<std::size_t>(a)];
        if (owner(w) != s) continue;
        const vid_t ri = find(i);
        const vid_t rw = find(w - sh.first);
        if (ri != rw) uf[static_cast<std::size_t>(std::max(ri, rw))] =
            std::min(ri, rw);
      }
    }
    // Path-compress fully so find below is a single hop.
    for (vid_t i = 0; i < sh.owned(); ++i)
      uf[static_cast<std::size_t>(i)] = find(i);
  });

  // class_min: per local root, the minimum global new id in the class.
  std::vector<vid_t> label(static_cast<std::size_t>(n));
  for_each_shard(k, [&](int s) {
    const Shard& sh = shards_[static_cast<std::size_t>(s)];
    const auto& uf = uf_parent[static_cast<std::size_t>(s)];
    for (vid_t i = 0; i < sh.owned(); ++i) {
      const vid_t root = uf[static_cast<std::size_t>(i)];
      // Roots have the smallest local index of their class (unions always
      // point the larger root at the smaller), so root's global id is the
      // class minimum.
      label[static_cast<std::size_t>(sh.first + i)] = sh.first + root;
    }
  });

  // Boundary rounds: push my label along every cross-shard arc; owners
  // fold candidate minima into the target's class and re-broadcast within
  // the shard.  Quiescence = global fixed point (min label per component).
  Exchange<VertexMessage<vid_t>> ex(k);  // (target new-id, candidate label)
  std::vector<std::uint8_t> changed(static_cast<std::size_t>(k), 1);
  bool any = true;
  while (any) {
    for_each_shard(k, [&](int s) {
      const Shard& sh = shards_[static_cast<std::size_t>(s)];
      for (vid_t i = 0; i < sh.owned(); ++i) {
        const vid_t u = sh.first + i;
        const eid_t lo = sh.offsets[static_cast<std::size_t>(i)];
        const eid_t hi = sh.offsets[static_cast<std::size_t>(i) + 1];
        for (eid_t a = lo; a < hi; ++a) {
          const vid_t w = sh.adj[static_cast<std::size_t>(a)];
          const int t = owner(w);
          if (t != s)
            ex.send(s, t, {w, label[static_cast<std::size_t>(u)]});
        }
      }
    });
    for_each_shard(k, [&](int t) {
      const Shard& sh = shards_[static_cast<std::size_t>(t)];
      auto& uf = uf_parent[static_cast<std::size_t>(t)];
      bool delta = false;
      ex.deliver(t, [&](const VertexMessage<vid_t>& m) {
        const vid_t root = uf[static_cast<std::size_t>(m.dest - sh.first)];
        auto& cur = label[static_cast<std::size_t>(sh.first + root)];
        if (m.value < cur) {
          cur = m.value;
          delta = true;
        }
      });
      // Re-broadcast the class label to every member.
      for (vid_t i = 0; i < sh.owned(); ++i) {
        const vid_t root = uf[static_cast<std::size_t>(i)];
        label[static_cast<std::size_t>(sh.first + i)] =
            label[static_cast<std::size_t>(sh.first + root)];
      }
      changed[static_cast<std::size_t>(t)] = delta ? 1 : 0;
    });
    any = false;
    for (int s = 0; s < k; ++s) any |= (changed[static_cast<std::size_t>(s)] != 0);
  }
  SNAP_VALIDATE(ex);

  // Densify in original-id order (matches the flat kernel's convention).
  out.label.resize(static_cast<std::size_t>(n));
  std::vector<vid_t> dense(static_cast<std::size_t>(n), kInvalidVid);
  vid_t next_id = 0;
  for (vid_t old = 0; old < n; ++old) {
    const vid_t root =
        label[static_cast<std::size_t>(old_to_new_[static_cast<std::size_t>(old)])];
    if (dense[static_cast<std::size_t>(root)] == kInvalidVid)
      dense[static_cast<std::size_t>(root)] = next_id++;
    out.label[static_cast<std::size_t>(old)] =
        dense[static_cast<std::size_t>(root)];
  }
  out.count = next_id;
  return out;
}

PartitionedPageRank PartitionedCSR::pagerank(
    const PageRankParams& params) const {
  namespace prd = pagerank_detail;
  PartitionedPageRank out;
  const vid_t n = n_;
  if (n == 0) return out;
  SNAP_ASSERT(params.max_iters >= 0, "pagerank: max_iters ", params.max_iters,
              " must be non-negative");
  const int k = num_shards();
  const std::uint64_t d_num = prd::quantized_damping(params.damping);
  const std::uint64_t tol_mass = prd::residual_threshold(params.tol);
  const auto un = static_cast<std::uint64_t>(n);

  // Fixed-point state in NEW-id space; every entry is written only by its
  // owner shard.  The initial split keys the remainder unit on ORIGINAL
  // vertex ids — the flat spec — so the two engines start bitwise equal.
  std::vector<std::uint64_t> mass(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> next(static_cast<std::size_t>(n));
  const std::uint64_t share0 = kPageRankTotalMass / un;
  const std::uint64_t rem0 = kPageRankTotalMass % un;
  for_each_shard(k, [&](int s) {
    const Shard& sh = shards_[static_cast<std::size_t>(s)];
    for (vid_t u = sh.first; u < sh.last; ++u) {
      const auto old = static_cast<std::uint64_t>(
          new_to_old_[static_cast<std::size_t>(u)]);
      mass[static_cast<std::size_t>(u)] = share0 + (old < rem0 ? 1 : 0);
    }
  });

  Exchange<VertexMessage<std::uint64_t>> ex(k);
  std::vector<VertexCombiner<std::uint64_t>> combiner(
      static_cast<std::size_t>(k));
  for_each_shard(k, [&](int s) {
    combiner[static_cast<std::size_t>(s)].init(n);
  });
  auto owner_of = [&](vid_t w) { return owner(w); };

  std::vector<std::uint64_t> kept_part(static_cast<std::size_t>(k), 0);
  std::vector<std::uint64_t> res_part(static_cast<std::size_t>(k), 0);
  int iterations = 0;
  std::uint64_t residual = 0;
  for (int it = 0; it < params.max_iters; ++it) {
    // Phase 1: each shard pushes its owned vertices' contributions — local
    // targets straight into the owned slice of next[], cross-shard targets
    // through the combiner (one message per touched boundary vertex).
    for_each_shard(k, [&](int s) {
      const Shard& sh = shards_[static_cast<std::size_t>(s)];
      auto& comb = combiner[static_cast<std::size_t>(s)];
      comb.begin_round();
      for (vid_t u = sh.first; u < sh.last; ++u)
        next[static_cast<std::size_t>(u)] = 0;
      for (vid_t i = 0; i < sh.owned(); ++i) {
        const eid_t lo = sh.offsets[static_cast<std::size_t>(i)];
        const eid_t hi = sh.offsets[static_cast<std::size_t>(i) + 1];
        const auto deg = static_cast<std::uint64_t>(hi - lo);
        if (deg == 0) continue;
        const std::uint64_t c =
            mass[static_cast<std::size_t>(sh.first + i)] / deg;
        for (eid_t a = lo; a < hi; ++a) {
          const vid_t w = sh.adj[static_cast<std::size_t>(a)];
          if (owner(w) == s)
            next[static_cast<std::size_t>(w)] += c;
          else
            comb.add(w, c);
        }
      }
      comb.flush(ex, s, owner_of);
    });
    // Phase 2: owners fold in the combined boundary mass, damp, and take
    // their partial of the kept total (exact integer adds throughout).
    for_each_shard(k, [&](int t) {
      const Shard& sh = shards_[static_cast<std::size_t>(t)];
      ex.deliver(t, [&](const VertexMessage<std::uint64_t>& m) {
        next[static_cast<std::size_t>(m.dest)] += m.value;
      });
      std::uint64_t kept = 0;
      for (vid_t u = sh.first; u < sh.last; ++u) {
        auto& x = next[static_cast<std::size_t>(u)];
        x = prd::damp(x, d_num);
        kept += x;
      }
      kept_part[static_cast<std::size_t>(t)] = kept;
    });
    std::uint64_t kept = 0;
    for (int s = 0; s < k; ++s) kept += kept_part[static_cast<std::size_t>(s)];
    const std::uint64_t pool = kPageRankTotalMass - kept;
    const std::uint64_t share = pool / un;
    const std::uint64_t rem = pool % un;
    // Phase 3: redistribute the pool (remainder keyed on original ids, the
    // flat spec) and take residual partials.
    for_each_shard(k, [&](int s) {
      const Shard& sh = shards_[static_cast<std::size_t>(s)];
      std::uint64_t res = 0;
      for (vid_t u = sh.first; u < sh.last; ++u) {
        const auto su = static_cast<std::size_t>(u);
        const auto old =
            static_cast<std::uint64_t>(new_to_old_[su]);
        next[su] += share + (old < rem ? 1 : 0);
        res += next[su] > mass[su] ? next[su] - mass[su] : mass[su] - next[su];
      }
      res_part[static_cast<std::size_t>(s)] = res;
    });
    residual = 0;
    for (int s = 0; s < k; ++s)
      residual += res_part[static_cast<std::size_t>(s)];
    mass.swap(next);
    iterations = it + 1;
    if (tol_mass > 0 && residual <= tol_mass) break;
  }
  SNAP_VALIDATE(ex);
  out.boundary_messages = ex.ledger().total_staged();
  out.combined_messages = ex.ledger().total_combined();

  // Back to original ids, then through the shared result conversion.
  std::vector<std::uint64_t> flat_mass(static_cast<std::size_t>(n));
  parallel::parallel_for(n, [&](vid_t v) {
    flat_mass[static_cast<std::size_t>(v)] =
        mass[static_cast<std::size_t>(old_to_new_[static_cast<std::size_t>(v)])];
  });
  out.result = prd::finalize(std::move(flat_mass), iterations, residual);
  return out;
}

std::vector<eid_t> PartitionedCSR::degrees() const {
  std::vector<eid_t> out(static_cast<std::size_t>(n_));
  const int k = num_shards();
  for_each_shard(k, [&](int s) {
    const Shard& sh = shards_[static_cast<std::size_t>(s)];
    for (vid_t i = 0; i < sh.owned(); ++i) {
      const vid_t old =
          new_to_old_[static_cast<std::size_t>(sh.first + i)];
      out[static_cast<std::size_t>(old)] =
          sh.offsets[static_cast<std::size_t>(i) + 1] -
          sh.offsets[static_cast<std::size_t>(i)];
    }
  });
  return out;
}

}  // namespace snap
