#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"
#include "snap/partition/partition.hpp"

namespace snap {

/// Total weight of edges whose endpoints lie in different parts — the
/// objective Table 1 reports.
eid_t edge_cut(const CSRGraph& g, const std::vector<std::int32_t>& part);

/// Balance of the partition: max part vertex-count divided by ceil(n/k).
/// 1.0 is perfectly balanced.
double imbalance(const CSRGraph& g, const std::vector<std::int32_t>& part,
                 std::int32_t k);

/// Conductance of one part: cut(S, V∖S) / min(vol(S), vol(V∖S)) — the
/// measure partitioning-based clustering heuristics optimize (§2.2).
double conductance(const CSRGraph& g, const std::vector<std::int32_t>& part,
                   std::int32_t which);

/// Fill in edge_cut / imbalance of a result from its `part` array.
void evaluate(const CSRGraph& g, PartitionResult& r);

}  // namespace snap
