#include "snap/partition/exchange.hpp"

#include <string>

namespace snap {

namespace {

std::uint64_t vec_total(const std::vector<std::uint64_t>& v) {
  std::uint64_t s = 0;
  for (const std::uint64_t x : v) s += x;
  return s;
}

}  // namespace

std::uint64_t ExchangeLedger::total_staged() const { return vec_total(staged); }

std::uint64_t ExchangeLedger::total_delivered() const {
  return vec_total(delivered);
}

std::uint64_t ExchangeLedger::total_combined() const {
  return vec_total(combined);
}

namespace debug {

ValidationReport validate(const ExchangeLedger& ledger,
                          const std::vector<std::uint64_t>& buffered) {
  ValidationReport r;
  r.subject = "Exchange";
  const int k = ledger.num_shards;
  const auto channels = static_cast<std::size_t>(k) * static_cast<std::size_t>(k);

  ++r.checks_run;
  if (k <= 0) {
    r.errors.push_back("num_shards " + std::to_string(k) +
                       " is not positive");
    return r;
  }
  ++r.checks_run;
  if (ledger.staged.size() != channels || ledger.delivered.size() != channels ||
      ledger.writer.size() != channels || buffered.size() != channels) {
    r.errors.push_back(
        "ledger/buffer shape mismatch: expected " + std::to_string(channels) +
        " channels, staged " + std::to_string(ledger.staged.size()) +
        ", delivered " + std::to_string(ledger.delivered.size()) +
        ", writer " + std::to_string(ledger.writer.size()) + ", buffered " +
        std::to_string(buffered.size()));
    return r;
  }
  ++r.checks_run;
  if (ledger.combined.size() != static_cast<std::size_t>(k))
    r.errors.push_back("combined counter has " +
                       std::to_string(ledger.combined.size()) +
                       " entries, expected one per sender shard (" +
                       std::to_string(k) + ")");

  for (int s = 0; s < k; ++s) {
    for (int t = 0; t < k; ++t) {
      const std::size_t ch = static_cast<std::size_t>(s) *
                                 static_cast<std::size_t>(k) +
                             static_cast<std::size_t>(t);
      const std::string name = "channel (" + std::to_string(s) + " -> " +
                               std::to_string(t) + ")";
      // Exactly-once delivery: delivered never exceeds staged, and whatever
      // is staged-but-undelivered must still be sitting in the buffer.
      ++r.checks_run;
      if (ledger.delivered[ch] > ledger.staged[ch])
        r.errors.push_back(name + " delivered " +
                           std::to_string(ledger.delivered[ch]) +
                           " messages but only " +
                           std::to_string(ledger.staged[ch]) + " were staged");
      ++r.checks_run;
      const std::uint64_t pending =
          ledger.staged[ch] >= ledger.delivered[ch]
              ? ledger.staged[ch] - ledger.delivered[ch]
              : 0;
      if (buffered[ch] != pending)
        r.errors.push_back(
            name + " holds " + std::to_string(buffered[ch]) +
            " messages but the ledger accounts for " + std::to_string(pending) +
            " pending (staged " + std::to_string(ledger.staged[ch]) +
            ", delivered " + std::to_string(ledger.delivered[ch]) + ")");
      // Round-end emptiness: the validator runs after delivery phases, when
      // every channel must be drained.
      ++r.checks_run;
      if (buffered[ch] != 0)
        r.errors.push_back(name + " not empty at round end: " +
                           std::to_string(buffered[ch]) +
                           " undelivered message(s)");
      // Single-writer channels (owner-only writes).
      ++r.checks_run;
      if (ledger.writer[ch] != -1 && ledger.writer[ch] != s)
        r.errors.push_back(name + " was staged into by shard " +
                           std::to_string(ledger.writer[ch]) +
                           " (owner-only writes violated)");
    }
  }
  return r;
}

}  // namespace debug
}  // namespace snap
