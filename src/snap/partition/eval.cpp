#include "snap/partition/eval.hpp"

#include <algorithm>
#include <cmath>

#include "snap/util/parallel.hpp"

namespace snap {

eid_t edge_cut(const CSRGraph& g, const std::vector<std::int32_t>& part) {
  const auto& edges = g.edges();
  return parallel::parallel_reduce_sum<eid_t>(
      g.num_edges(), [&](eid_t e) -> eid_t {
        const Edge& ed = edges[static_cast<std::size_t>(e)];
        return part[static_cast<std::size_t>(ed.u)] !=
                       part[static_cast<std::size_t>(ed.v)]
                   ? static_cast<eid_t>(std::llround(ed.w))
                   : 0;
      });
}

double imbalance(const CSRGraph& g, const std::vector<std::int32_t>& part,
                 std::int32_t k) {
  if (k <= 0 || g.num_vertices() == 0) return 0;
  std::vector<vid_t> weight(static_cast<std::size_t>(k), 0);
  for (std::int32_t p : part) ++weight[static_cast<std::size_t>(p)];
  const double ideal =
      static_cast<double>(g.num_vertices()) / static_cast<double>(k);
  const vid_t mx = *std::max_element(weight.begin(), weight.end());
  return static_cast<double>(mx) / ideal;
}

double conductance(const CSRGraph& g, const std::vector<std::int32_t>& part,
                   std::int32_t which) {
  double cut = 0, vol_in = 0, vol_out = 0;
  for (const Edge& e : g.edges()) {
    const bool iu = part[static_cast<std::size_t>(e.u)] == which;
    const bool iv = part[static_cast<std::size_t>(e.v)] == which;
    if (iu != iv) cut += e.w;
    // Edge volume: each endpoint contributes the edge weight to its side.
    vol_in += (iu ? e.w : 0) + (iv ? e.w : 0);
    vol_out += (!iu ? e.w : 0) + (!iv ? e.w : 0);
  }
  const double denom = std::min(vol_in, vol_out);
  return denom > 0 ? cut / denom : 0.0;
}

void evaluate(const CSRGraph& g, PartitionResult& r) {
  if (!r.success || r.part.empty()) return;
  r.edge_cut = edge_cut(g, r.part);
  r.imbalance = imbalance(g, r.part, r.k);
}

}  // namespace snap
