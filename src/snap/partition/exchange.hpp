#pragma once

// Boundary-exchange comms layer for shard-parallel kernels (ROADMAP item 5).
//
// Every owner-computes kernel has the same communication shape: thread s
// sweeps shard s's vertices, writes only state it owns, and batches anything
// that crosses a shard boundary into a per-(sender, target) outbox; after
// the fork/join barrier the target's owner drains its inboxes.  PR 7 wired
// that shape directly into the BFS and CC bodies; Exchange<Msg> factors it
// out so new kernels (PageRank mass pushes, Louvain move broadcasts) reuse
// one audited implementation instead of re-growing their own.
//
// Determinism.  Channel (s, t) is written only by shard s's body — a plain
// append buffer, no locks, no atomics — and drained only by shard t after
// the barrier, in (sender shard ascending, send sequence) order.  Because
// each shard body is itself sequential, the full delivery sequence at every
// receiver is a pure function of what the kernel staged, independent of
// thread count and of how run_team folds shards onto threads.
//
// Transport-agnosticism.  The API moves plain message buffers: senders call
// send(src, dst, msg), receivers consume deliver(dst, fn).  Nothing in the
// contract assumes shared memory beyond the buffers themselves — a
// multi-process port replaces the vector append/drain with serialized
// sends/receives per channel and keeps every kernel above unchanged (the
// ROADMAP's road to multi-node).
//
// Combining.  VertexCombiner<Value> is an optional send-side hook that
// folds messages targeting the same destination vertex into one before
// staging (sum-combine).  For per-edge pushes like PageRank's rank mass this
// cuts cross-shard traffic from O(cut edges) to O(boundary vertices); the
// merged-away count lands in the ledger so benches can report the saving.
// Combining is only legal when the kernel's accumulation is exact —
// SNAP's PageRank works in 64-bit fixed point for precisely this reason
// (see docs/ALGORITHMS.md "PageRank & the exchange layer").
//
// Accounting.  Every Exchange keeps an ExchangeLedger: per-channel lifetime
// staged/delivered counts plus the per-sender combined count.  The level-2
// validator checks the ledger against the live buffers (every staged message
// delivered exactly once, single-writer channels, empty channels at round
// end); the mutation tests corrupt a channel through debug::Access to prove
// the validator catches it.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "snap/debug/check.hpp"
#include "snap/debug/validate.hpp"
#include "snap/graph/types.hpp"

namespace snap {

/// Lifetime accounting of one Exchange: per-channel staged/delivered message
/// counts, the per-sender combiner savings, and the single-writer witness.
/// All counters are written under the same single-writer discipline as the
/// channels themselves (sender updates staged/writer, receiver updates
/// delivered, phases separated by the team barrier), so the ledger needs no
/// synchronization of its own.
struct ExchangeLedger {
  std::int32_t num_shards = 0;
  /// Per channel (src * k + dst): messages ever staged.
  std::vector<std::uint64_t> staged;
  /// Per channel (src * k + dst): messages ever delivered.
  std::vector<std::uint64_t> delivered;
  /// Per SENDER shard: messages merged away by a combiner before staging
  /// (i.e. traffic a naive per-edge push would have sent on top of staged).
  std::vector<std::uint64_t> combined;
  /// Per channel: shard that last staged into it, -1 = never.  Channels are
  /// single-writer by contract (writer == src); the validator checks it.
  std::vector<std::int32_t> writer;

  [[nodiscard]] std::uint64_t total_staged() const;
  [[nodiscard]] std::uint64_t total_delivered() const;
  [[nodiscard]] std::uint64_t total_combined() const;
};

namespace debug {

/// Exchange invariants, checked against a snapshot of the live buffer sizes
/// (`buffered[ch]` = messages currently staged-and-undelivered in channel
/// ch): ledger shape matches num_shards², staged ≥ delivered per channel,
/// buffered == staged − delivered (every message delivered exactly once,
/// none invented), channels empty at round end, and every channel's writer
/// is either -1 or the channel's own sender shard (owner-only writes).
[[nodiscard]] ValidationReport validate(
    const ExchangeLedger& ledger, const std::vector<std::uint64_t>& buffered);

}  // namespace debug

/// Typed per-(sender, target)-shard message channels with deterministic
/// (sender shard, send sequence) delivery order.  See the file comment for
/// the full contract; in short:
///
///   staging phase   shard s's body calls send(s, t, msg) freely
///   --- team barrier ---
///   delivery phase  shard t's body calls deliver(t, fn); channels drain in
///                   sender order and are left empty
///
/// One Exchange may run any number of staging/delivery rounds.
template <typename Msg>
class Exchange {
 public:
  explicit Exchange(int num_shards)
      : k_(num_shards),
        box_(static_cast<std::size_t>(num_shards) *
             static_cast<std::size_t>(num_shards)) {
    SNAP_ASSERT(num_shards > 0, "Exchange: num_shards ", num_shards,
                " must be positive");
    ledger_.num_shards = num_shards;
    ledger_.staged.assign(box_.size(), 0);
    ledger_.delivered.assign(box_.size(), 0);
    ledger_.combined.assign(static_cast<std::size_t>(num_shards), 0);
    ledger_.writer.assign(box_.size(), -1);
  }

  [[nodiscard]] int num_shards() const { return k_; }

  /// Stage `m` for delivery to shard `dst`.  Must be called from shard
  /// `src`'s body only: channel (src, dst) is single-writer by contract,
  /// which is what keeps the whole layer lock-free.
  void send(int src, int dst, const Msg& m) {
    SNAP_DCHECK(src >= 0 && src < k_, "Exchange::send: sender ", src,
                " out of [0, ", k_, ")");
    SNAP_DCHECK(dst >= 0 && dst < k_, "Exchange::send: target ", dst,
                " out of [0, ", k_, ")");
    const std::size_t ch = channel_index(src, dst);
    box_[ch].push_back(m);
    ++ledger_.staged[ch];
    ledger_.writer[ch] = src;
  }

  /// Deliver every message staged for shard `dst` — `fn(const Msg&)` — and
  /// clear the drained channels.  Must be called from shard `dst`'s body,
  /// after the barrier ending the staging phase.  Channels drain in sender
  /// order (s = 0..k-1) and each channel replays its messages in send order.
  template <typename F>
  void deliver(int dst, F&& fn) {
    SNAP_DCHECK(dst >= 0 && dst < k_, "Exchange::deliver: target ", dst,
                " out of [0, ", k_, ")");
    for (int s = 0; s < k_; ++s) {
      const std::size_t ch = channel_index(s, dst);
      auto& inbox = box_[ch];
      for (const Msg& m : inbox) fn(m);
      ledger_.delivered[ch] += inbox.size();
      inbox.clear();
    }
  }

  /// Credit `merged` messages as combined away by shard `src`'s combiner
  /// (VertexCombiner::flush calls this; benches read it off the ledger).
  void note_combined(int src, std::uint64_t merged) {
    SNAP_DCHECK(src >= 0 && src < k_, "Exchange::note_combined: sender ", src,
                " out of [0, ", k_, ")");
    ledger_.combined[static_cast<std::size_t>(src)] += merged;
  }

  /// True when every channel has been drained (round complete).
  [[nodiscard]] bool all_empty() const {
    for (const auto& ch : box_)
      if (!ch.empty()) return false;
    return true;
  }

  [[nodiscard]] const ExchangeLedger& ledger() const { return ledger_; }

  /// Snapshot of live per-channel buffer sizes (validator input).
  [[nodiscard]] std::vector<std::uint64_t> buffered_counts() const {
    std::vector<std::uint64_t> out(box_.size());
    for (std::size_t ch = 0; ch < box_.size(); ++ch)
      out[ch] = static_cast<std::uint64_t>(box_[ch].size());
    return out;
  }

 private:
  friend struct debug::Access;

  [[nodiscard]] std::size_t channel_index(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(k_) +
           static_cast<std::size_t>(dst);
  }

  int k_ = 0;
  std::vector<std::vector<Msg>> box_;  ///< k*k channels, (src, dst) major
  ExchangeLedger ledger_;
};

namespace debug {

/// SNAP_VALIDATE surface for a whole Exchange: ledger vs live buffers.
template <typename Msg>
[[nodiscard]] ValidationReport validate(const Exchange<Msg>& ex) {
  return validate(ex.ledger(), ex.buffered_counts());
}

}  // namespace debug

/// A message addressed to one destination vertex.  The unit every combiner
/// works in, and the payload of the PageRank mass push and CC label push.
template <typename Value>
struct VertexMessage {
  vid_t dest = kInvalidVid;
  Value value{};
};

/// Send-side sum-combiner: a dense stamped accumulator over the new-id space
/// that folds every add() targeting the same destination vertex into one
/// pending VertexMessage.  flush() stages one message per touched vertex in
/// FIRST-TOUCH order — the sender's sweep order, hence deterministic — and
/// credits the merged-away count to the exchange ledger.
///
/// Only use with exactly-associative Value accumulation (integers, fixed
/// point): combining reorders the receiver's additions, which is invisible
/// only when addition is exact.
template <typename Value>
class VertexCombiner {
 public:
  /// Size the accumulator for destination ids in [0, n).
  void init(vid_t n) {
    acc_.assign(static_cast<std::size_t>(n), Value{});
    stamp_.assign(static_cast<std::size_t>(n), 0);
    touched_.clear();
    tick_ = 0;
    merged_ = 0;
  }

  /// Start a staging round: forget previous accumulations in O(1).
  void begin_round() {
    ++tick_;
    touched_.clear();
    merged_ = 0;
  }

  /// Fold `v` into the pending message for `dest`.
  void add(vid_t dest, Value v) {
    const auto d = static_cast<std::size_t>(dest);
    SNAP_DCHECK(d < acc_.size(), "VertexCombiner::add: dest ", dest,
                " out of [0, ", acc_.size(), ")");
    if (stamp_[d] != tick_) {
      stamp_[d] = tick_;
      acc_[d] = v;
      touched_.push_back(dest);
    } else {
      acc_[d] += v;
      ++merged_;
    }
  }

  /// Stage one combined message per touched destination (first-touch order)
  /// into `ex` as shard `src`, routing each to `owner(dest)`, and credit the
  /// merged count to the ledger.
  template <typename Msg, typename OwnerFn>
  void flush(Exchange<Msg>& ex, int src, OwnerFn&& owner) {
    for (const vid_t d : touched_)
      ex.send(src, owner(d), Msg{d, acc_[static_cast<std::size_t>(d)]});
    ex.note_combined(src, merged_);
  }

  [[nodiscard]] std::uint64_t merged() const { return merged_; }

 private:
  std::vector<Value> acc_;
  std::vector<std::uint64_t> stamp_;
  std::vector<vid_t> touched_;
  std::uint64_t tick_ = 0;
  std::uint64_t merged_ = 0;
};

}  // namespace snap
