#include "snap/partition/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "snap/graph/subgraph.hpp"
#include "snap/partition/eval.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap {

namespace {

/// y = L x with L = D − A (weighted).
void laplacian_matvec(const CSRGraph& g, const std::vector<double>& x,
                      std::vector<double>& y) {
  const vid_t n = g.num_vertices();
  parallel::parallel_for(n, [&](vid_t v) {
    const auto nb = g.neighbors(v);
    const auto ws = g.weights(v);
    double deg = 0, acc = 0;
    for (std::size_t i = 0; i < nb.size(); ++i) {
      deg += ws[i];
      acc += ws[i] * x[static_cast<std::size_t>(nb[i])];
    }
    y[static_cast<std::size_t>(v)] =
        deg * x[static_cast<std::size_t>(v)] - acc;
  });
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

/// Remove the component along the (unnormalized) constant vector.
void deflate_ones(std::vector<double>& x) {
  double mean = 0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}

/// Symmetric tridiagonal QL with implicit shifts (EISPACK tql2 / NR tqli).
/// d = diagonal (size k), e[i] couples d[i] and d[i+1] (e[k-1] unused).
/// z is k×k, identity on input; column j holds eigenvector j on output.
/// Returns false on non-convergence.
bool tqli(std::vector<double>& d, std::vector<double>& e,
          std::vector<std::vector<double>>& z) {
  const int k = static_cast<int>(d.size());
  if (k == 0) return true;
  e[static_cast<std::size_t>(k - 1)] = 0;
  for (int l = 0; l < k; ++l) {
    int iter = 0;
    int m;
    do {
      for (m = l; m < k - 1; ++m) {
        const double dd = std::abs(d[static_cast<std::size_t>(m)]) +
                          std::abs(d[static_cast<std::size_t>(m + 1)]);
        if (std::abs(e[static_cast<std::size_t>(m)]) <= 1e-14 * dd) break;
      }
      if (m != l) {
        if (iter++ == 60) return false;
        double g = (d[static_cast<std::size_t>(l + 1)] -
                    d[static_cast<std::size_t>(l)]) /
                   (2.0 * e[static_cast<std::size_t>(l)]);
        double r = std::hypot(g, 1.0);
        g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
            e[static_cast<std::size_t>(l)] /
                (g + (g >= 0 ? std::abs(r) : -std::abs(r)));
        double s = 1.0, c = 1.0, p = 0.0;
        for (int i = m - 1; i >= l; --i) {
          double f = s * e[static_cast<std::size_t>(i)];
          const double b = c * e[static_cast<std::size_t>(i)];
          r = std::hypot(f, g);
          e[static_cast<std::size_t>(i + 1)] = r;
          if (r == 0.0) {
            d[static_cast<std::size_t>(i + 1)] -= p;
            e[static_cast<std::size_t>(m)] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<std::size_t>(i + 1)] - p;
          r = (d[static_cast<std::size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<std::size_t>(i + 1)] = g + p;
          g = c * r - b;
          for (int row = 0; row < k; ++row) {
            f = z[static_cast<std::size_t>(row)][static_cast<std::size_t>(i + 1)];
            z[static_cast<std::size_t>(row)][static_cast<std::size_t>(i + 1)] =
                s * z[static_cast<std::size_t>(row)]
                     [static_cast<std::size_t>(i)] +
                c * f;
            z[static_cast<std::size_t>(row)][static_cast<std::size_t>(i)] =
                c * z[static_cast<std::size_t>(row)]
                     [static_cast<std::size_t>(i)] -
                s * f;
          }
        }
        if (r == 0.0 && m - 1 >= l) continue;
        d[static_cast<std::size_t>(l)] -= p;
        e[static_cast<std::size_t>(l)] = g;
        e[static_cast<std::size_t>(m)] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

/// Lanczos iteration on L with the constant vector deflated and full
/// reorthogonalization; extracts the smallest Ritz pair (≈ λ2, Fiedler).
bool lanczos_fiedler(const CSRGraph& g, const SpectralParams& p,
                     std::vector<double>& out) {
  const vid_t n = g.num_vertices();
  if (n < 2) return false;
  const int maxit = std::min<int>(p.lanczos_max_iters, static_cast<int>(n - 1));

  std::vector<std::vector<double>> basis;
  std::vector<double> alpha, beta;

  SplitMix64 rng(p.seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = rng.next_double() - 0.5;
  deflate_ones(v);
  double nv = norm(v);
  if (nv == 0) return false;
  for (double& x : v) x /= nv;

  std::vector<double> w(static_cast<std::size_t>(n));
  for (int j = 0; j < maxit; ++j) {
    basis.push_back(v);
    laplacian_matvec(g, v, w);
    const double a = dot(w, v);
    alpha.push_back(a);
    // w -= a v + beta_{j-1} v_{j-1}; then full reorthogonalization keeps the
    // basis numerically orthogonal (and the ones-deflation intact).
    for (std::size_t i = 0; i < w.size(); ++i) w[i] -= a * v[i];
    if (j > 0) {
      const double b = beta.back();
      const auto& prev = basis[static_cast<std::size_t>(j - 1)];
      for (std::size_t i = 0; i < w.size(); ++i) w[i] -= b * prev[i];
    }
    deflate_ones(w);
    for (const auto& q : basis) {
      const double c = dot(w, q);
      for (std::size_t i = 0; i < w.size(); ++i) w[i] -= c * q[i];
    }
    const double b = norm(w);

    // Ritz extraction every few steps (and at the end): smallest eigenpair
    // of the j+1 × j+1 tridiagonal.
    const bool last = (j + 1 == maxit) || b < 1e-12;
    if (last || (j >= 8 && j % 8 == 0)) {
      const int k = j + 1;
      std::vector<double> d(alpha.begin(), alpha.end());
      std::vector<double> e(static_cast<std::size_t>(k), 0.0);
      for (int i = 0; i + 1 < k; ++i) e[static_cast<std::size_t>(i)] =
          beta[static_cast<std::size_t>(i)];
      std::vector<std::vector<double>> z(
          static_cast<std::size_t>(k),
          std::vector<double>(static_cast<std::size_t>(k), 0.0));
      for (int i = 0; i < k; ++i)
        z[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1.0;
      if (!tqli(d, e, z)) return false;
      int best = 0;
      double dmax = d[0];
      for (int i = 1; i < k; ++i) {
        if (d[static_cast<std::size_t>(i)] < d[static_cast<std::size_t>(best)])
          best = i;
        dmax = std::max(dmax, d[static_cast<std::size_t>(i)]);
      }
      // Residual bound |beta_j * s_last|, relative to the spectrum scale.
      const double resid =
          std::abs(b * z[static_cast<std::size_t>(k - 1)]
                        [static_cast<std::size_t>(best)]) /
          std::max(1.0, dmax);
      // Hard tolerance mid-run; the loose budget-exhaustion tolerance
      // accepts a rough Fiedler vector (still a usable median split).
      const double accept =
          last ? std::max(p.tol, p.loose_tol) : p.tol;
      if (resid < accept) {
        out.assign(static_cast<std::size_t>(n), 0.0);
        for (int i = 0; i < k; ++i) {
          const double coef =
              z[static_cast<std::size_t>(i)][static_cast<std::size_t>(best)];
          const auto& q = basis[static_cast<std::size_t>(i)];
          for (std::size_t r = 0; r < out.size(); ++r) out[r] += coef * q[r];
        }
        return true;
      }
      if (last) return false;
    }
    if (b < 1e-12) return false;  // invariant subspace, handled above mostly
    beta.push_back(b);
    for (std::size_t i = 0; i < w.size(); ++i) v[i] = w[i] / b;
  }
  return false;
}

/// Rayleigh-quotient iteration: start from a deflated random vector warmed
/// by a few shifted power iterations, then alternate ρ = xᵀLx with an inner
/// CG solve of (L − ρI) y = x.
bool rqi_fiedler(const CSRGraph& g, const SpectralParams& p,
                 std::vector<double>& out) {
  const vid_t n = g.num_vertices();
  if (n < 2) return false;

  // Warm start: a short best-effort Lanczos run supplies the rough Fiedler
  // approximation that RQI then refines — this mirrors how Chaco pairs RQI
  // with a cruder eigensolve (RQI alone converges to whatever eigenpair is
  // nearest its start, so the start must already point at λ2).
  std::vector<double> x;
  {
    SpectralParams rough = p;
    rough.lanczos_max_iters = std::min(p.lanczos_max_iters, 60);
    rough.loose_tol = 1.0;  // accept whatever the short run produces
    if (!lanczos_fiedler(g, rough, x)) return false;
  }
  deflate_ones(x);
  const double nx = norm(x);
  if (nx == 0) return false;
  for (double& v : x) v /= nx;

  std::vector<double> y(static_cast<std::size_t>(n));
  // Spectrum scale (Gershgorin bound on ||L||) for relative residuals.
  double lscale = 1.0;
  for (vid_t v = 0; v < n; ++v) {
    double deg = 0;
    for (weight_t w : g.weights(v)) deg += w;
    lscale = std::max(lscale, 2.0 * deg);
  }
  double last_resid = 1e300;
  std::vector<double> r(static_cast<std::size_t>(n)),
      z(static_cast<std::size_t>(n)), q(static_cast<std::size_t>(n));
  for (int it = 0; it < p.rqi_max_iters; ++it) {
    laplacian_matvec(g, x, y);
    const double rho = dot(x, y);
    // Residual ||Lx − ρx||.
    double res = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      const double d = y[i] - rho * x[i];
      res += d * d;
    }
    last_resid = std::sqrt(res) / lscale;
    if (last_resid < p.tol) {
      out = x;
      return true;
    }
    // CG on (L − ρI) y = x (the system is indefinite near convergence; CG
    // here acts as an inexact inverse-iteration step, Chaco-style SYMMLQ
    // stand-in).  Restart from x on breakdown.
    std::vector<double> sol(static_cast<std::size_t>(n), 0.0);
    r = x;
    z = r;
    double rr = dot(r, r);
    bool ok = false;
    for (int cg = 0; cg < p.cg_max_iters; ++cg) {
      laplacian_matvec(g, z, q);
      for (std::size_t i = 0; i < q.size(); ++i) q[i] -= rho * z[i];
      const double zq = dot(z, q);
      if (std::abs(zq) < 1e-300) break;
      const double step = rr / zq;
      for (std::size_t i = 0; i < sol.size(); ++i) sol[i] += step * z[i];
      for (std::size_t i = 0; i < r.size(); ++i) r[i] -= step * q[i];
      const double rr_new = dot(r, r);
      if (std::sqrt(rr_new) < 1e-10) {
        ok = true;
        break;
      }
      const double beta = rr_new / rr;
      rr = rr_new;
      for (std::size_t i = 0; i < z.size(); ++i) z[i] = r[i] + beta * z[i];
      ok = true;
    }
    if (!ok) break;
    deflate_ones(sol);
    const double ns = norm(sol);
    if (ns < 1e-300) break;
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = sol[i] / ns;
  }
  // Budget exhausted (or CG breakdown): accept a rough eigenvector, like
  // the Lanczos path does — RQI near a tiny Fiedler gap stalls at a still
  // perfectly usable approximation.
  if (last_resid < p.loose_tol) {
    out = x;
    return true;
  }
  return false;
}

/// Median split of the Fiedler vector into side 0 / side 1.
std::vector<std::int8_t> median_split(const std::vector<double>& fiedler) {
  const std::size_t n = fiedler.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return fiedler[a] < fiedler[b];
  });
  std::vector<std::int8_t> side(n, 1);
  for (std::size_t i = 0; i < n / 2; ++i) side[idx[i]] = 0;
  return side;
}

bool recursive_spectral(const CSRGraph& g, std::int32_t k,
                        std::int32_t part_offset, SpectralMethod method,
                        const SpectralParams& p,
                        const std::vector<vid_t>& to_parent,
                        std::vector<std::int32_t>& part, std::string& note) {
  if (k <= 1 || g.num_vertices() <= 1) {
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      part[static_cast<std::size_t>(to_parent[static_cast<std::size_t>(v)])] =
          part_offset;
    return true;
  }
  std::vector<double> fiedler;
  const bool ok = method == SpectralMethod::kLanczos
                      ? lanczos_fiedler(g, p, fiedler)
                      : rqi_fiedler(g, p, fiedler);
  if (!ok) {
    note = "eigensolver failed to converge at k-split " +
           std::to_string(part_offset) + " (n=" +
           std::to_string(g.num_vertices()) + ")";
    return false;
  }
  const auto side = median_split(fiedler);
  std::vector<vid_t> half[2];
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    half[side[static_cast<std::size_t>(v)]].push_back(v);
  const std::int32_t k0 = k / 2;
  for (int s = 0; s < 2; ++s) {
    if (half[s].empty()) continue;
    Subgraph sub = induced_subgraph(g, half[s]);
    std::vector<vid_t> sub_to_root(half[s].size());
    for (std::size_t i = 0; i < half[s].size(); ++i)
      sub_to_root[i] = to_parent[static_cast<std::size_t>(half[s][i])];
    if (!recursive_spectral(sub.graph, s == 0 ? k0 : k - k0,
                            s == 0 ? part_offset : part_offset + k0, method,
                            p, sub_to_root, part, note))
      return false;
  }
  return true;
}

}  // namespace

bool fiedler_vector(const CSRGraph& g, SpectralMethod method,
                    const SpectralParams& p, std::vector<double>& out) {
  return method == SpectralMethod::kLanczos ? lanczos_fiedler(g, p, out)
                                            : rqi_fiedler(g, p, out);
}

PartitionResult spectral_partition(const CSRGraph& g, std::int32_t k,
                                   SpectralMethod method,
                                   const SpectralParams& p) {
  PartitionResult r;
  r.k = k;
  const vid_t n = g.num_vertices();
  r.part.assign(static_cast<std::size_t>(n), 0);
  if (k > 1 && n > 1) {
    std::vector<vid_t> ident(static_cast<std::size_t>(n));
    std::iota(ident.begin(), ident.end(), vid_t{0});
    r.success =
        recursive_spectral(g, k, 0, method, p, ident, r.part, r.note);
  }
  evaluate(g, r);
  return r;
}

}  // namespace snap
