#pragma once

#include <cstdint>

#include "snap/graph/csr_graph.hpp"
#include "snap/partition/partition.hpp"

namespace snap {

/// Parameters of the multilevel partitioners (the Metis-family algorithms
/// Table 1 exercises via pmetis/kmetis).
struct MultilevelParams {
  /// Stop coarsening when the graph is at most this many vertices
  /// (0 = max(64, 20 * k)).
  vid_t coarsen_to = 0;
  /// FM passes per uncoarsening level.
  int refine_passes = 6;
  /// Allowed imbalance (max part weight / ideal part weight).
  double imbalance_tol = 1.05;
  std::uint64_t seed = 1;
};

/// Multilevel recursive bisection ("pmetis-like"): coarsen by heavy-edge
/// matching, bisect the coarsest graph by greedy graph growing, refine with
/// FM while uncoarsening; recurse on each half for k parts.
PartitionResult multilevel_recursive_bisection(const CSRGraph& g,
                                               std::int32_t k,
                                               const MultilevelParams& p = {});

/// Multilevel k-way ("kmetis-like"): recursive bisection on the coarsest
/// graph for the initial k-way partition, then greedy k-way boundary
/// refinement at every uncoarsening level.
PartitionResult multilevel_kway(const CSRGraph& g, std::int32_t k,
                                const MultilevelParams& p = {});

}  // namespace snap
