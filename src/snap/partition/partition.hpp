#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// A k-way partition of the vertex set.
struct PartitionResult {
  std::vector<std::int32_t> part;  ///< part id per vertex, 0..k-1
  std::int32_t k = 0;
  eid_t edge_cut = 0;       ///< total weight of edges crossing parts
  double imbalance = 0;     ///< max part weight / ideal part weight
  bool success = true;      ///< false if the method failed to converge
  std::string note;         ///< failure reason / diagnostics
};

}  // namespace snap
