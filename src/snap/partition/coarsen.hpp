#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// One level of the multilevel hierarchy: the coarse graph, the fine→coarse
/// vertex map, and the coarse vertex weights (number of original vertices
/// each coarse vertex represents).
struct CoarseLevel {
  CSRGraph graph;
  std::vector<vid_t> fine_to_coarse;
  std::vector<weight_t> vertex_weight;
};

/// Heavy-edge-matching coarsening (the Metis-family scheme §2.2 discusses):
/// vertices are visited in random order; each unmatched vertex matches its
/// unmatched neighbor with the heaviest connecting edge.  Matched pairs
/// collapse; parallel edges merge with summed weights.
CoarseLevel coarsen_heavy_edge(const CSRGraph& g,
                               const std::vector<weight_t>& vertex_weight,
                               std::uint64_t seed);

}  // namespace snap
