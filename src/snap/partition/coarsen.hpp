#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// One level of the multilevel hierarchy: the coarse graph, the fine→coarse
/// vertex map, and the coarse vertex weights (number of original vertices
/// each coarse vertex represents).
struct CoarseLevel {
  CSRGraph graph;
  std::vector<vid_t> fine_to_coarse;
  std::vector<weight_t> vertex_weight;
};

/// Heavy-edge-matching coarsening (the Metis-family scheme §2.2 discusses):
/// vertices are visited in random order; each unmatched vertex matches its
/// unmatched neighbor with the heaviest connecting edge.  Matched pairs
/// collapse; parallel edges merge with summed weights.
CoarseLevel coarsen_heavy_edge(const CSRGraph& g,
                               const std::vector<weight_t>& vertex_weight,
                               std::uint64_t seed);

/// Contract g along an arbitrary fine→coarse vertex map (coarse ids dense in
/// [0, num_coarse)): parallel coarse edges merge with summed weights, coarse
/// vertex weights sum the fine ones.  With `keep_self_loops` every edge
/// interior to a coarse vertex survives as a self-loop carrying its weight —
/// the Louvain contraction, which preserves modularity across levels exactly;
/// without it interior edges collapse, the matching-coarsener convention
/// (`coarsen_heavy_edge` is this function applied to a heavy-edge matching).
/// The merge orders coarse edges by the total key (u, v, w), so the output
/// graph is byte-identical at every thread count.
CoarseLevel contract_by_map(const CSRGraph& g,
                            const std::vector<vid_t>& fine_to_coarse,
                            vid_t num_coarse,
                            const std::vector<weight_t>& vertex_weight,
                            bool keep_self_loops);

}  // namespace snap
