#pragma once

// NUMA-aware partitioned CSR: the first concrete step of the shard-parallel
// execution layer (ROADMAP item 5).
//
// The flat CSRGraph is one allocation touched by every thread; on a
// multi-socket machine the OS places its pages wherever the building thread
// ran, and remote-socket traffic throttles every kernel.  PartitionedCSR
// cuts the vertex set into k shards — with the existing multilevel
// partitioner, so the cut minimizes boundary arcs — relabels vertices
// shard-major (each shard owns a contiguous new-id range), and then has
// each shard's OWNER thread allocate and write that shard's offset and
// adjacency arrays.  Under first-touch page placement this puts every
// shard's data on the socket of the thread that will traverse it.
//
// Kernels run "owner computes": thread s sweeps shard s's vertices and
// writes only state it owns; discoveries that cross a shard boundary are
// batched through the reusable Exchange layer (snap/partition/exchange.hpp)
// and applied by the target's owner after a barrier — no cross-shard
// writes, no atomics, and the communication structure is exactly what a
// future multi-process version serializes.  Results are identical to the
// flat engines (the differential suite checks BFS distances, component
// partitions, degrees and PageRank mass vectors — the latter bitwise) and
// deterministic at every thread count.

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/kernels/pagerank.hpp"
#include "snap/partition/multilevel.hpp"

namespace snap {

/// Result of the owner-computes partitioned PageRank: the flat
/// PageRankResult surface (ranks and fixed-point mass in ORIGINAL id order,
/// bitwise identical to pagerank() on the source graph) plus the exchange
/// traffic the run generated.
struct PartitionedPageRank {
  PageRankResult result;
  /// Combined boundary messages actually exchanged (one per touched
  /// (sender shard, boundary vertex) pair per iteration).
  std::uint64_t boundary_messages = 0;
  /// Per-edge pushes the sum-combiner merged away — the traffic a naive
  /// per-cut-edge push would have added on top of boundary_messages.
  std::uint64_t combined_messages = 0;
};

struct PartitionedCSROptions {
  /// Number of shards; 0 = parallel::num_threads().
  int num_shards = 0;
  /// Cut with the multilevel k-way partitioner (minimizes boundary arcs).
  /// Off = contiguous input-order chunks (cheap, deterministic, and the
  /// configuration the determinism harness pins).
  bool use_partitioner = true;
  MultilevelParams partition;
};

/// A k-sharded CSR over a relabeled vertex set.  Undirected graphs only
/// (the kernels rely on arc symmetry to propagate across shards).
class PartitionedCSR {
 public:
  /// One shard: the owned new-id range [first, last) plus that range's CSR
  /// arrays.  The arrays are allocated and written by the shard's owner
  /// thread inside build() — first-touch placement.
  struct Shard {
    vid_t first = 0;
    vid_t last = 0;
    std::vector<eid_t> offsets;  ///< (last - first) + 1, local arc offsets
    std::vector<vid_t> adj;      ///< targets as global NEW ids
    eid_t boundary_arcs = 0;     ///< arcs whose target lives in another shard

    [[nodiscard]] vid_t owned() const { return last - first; }
  };

  static PartitionedCSR build(const CSRGraph& g,
                              const PartitionedCSROptions& opts = {});

  [[nodiscard]] int num_shards() const {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] vid_t num_vertices() const { return n_; }
  [[nodiscard]] eid_t num_arcs() const { return arcs_; }
  [[nodiscard]] eid_t boundary_arcs() const { return boundary_arcs_; }
  [[nodiscard]] const Shard& shard(int s) const {
    return shards_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] int owner(vid_t new_id) const {
    return shard_of_[static_cast<std::size_t>(new_id)];
  }
  [[nodiscard]] const std::vector<vid_t>& new_to_old() const {
    return new_to_old_;
  }
  [[nodiscard]] const std::vector<vid_t>& old_to_new() const {
    return old_to_new_;
  }

  // --- Shard-parallel kernels (results indexed by ORIGINAL vertex id) ---

  /// BFS hop distances from `source` (original id); -1 = unreached.
  /// Level-synchronous owner-computes expansion with one batched boundary
  /// exchange per level.
  [[nodiscard]] std::vector<std::int64_t> bfs_distances(vid_t source) const;

  /// Connected components via shard-local min-label propagation to a local
  /// fixed point, then batched boundary exchange of cross-shard candidates,
  /// iterated until globally quiescent.
  [[nodiscard]] Components components() const;

  /// Per-vertex degrees (trivially shard-local; the sanity kernel).
  [[nodiscard]] std::vector<eid_t> degrees() const;

  /// Owner-computes PageRank: each iteration every shard pushes its owned
  /// vertices' damped rank mass, local targets directly and cross-shard
  /// targets through the exchange layer with per-destination sum-combining
  /// (O(boundary vertices) traffic instead of O(cut edges)).  The engine
  /// works in the same 64-bit fixed point as the flat pagerank(), whose
  /// exact integer adds make the combining invisible: the returned mass
  /// vector is bitwise identical to the flat engine's at every
  /// (threads x shards) combination.
  [[nodiscard]] PartitionedPageRank pagerank(
      const PageRankParams& params = {}) const;

 private:
  vid_t n_ = 0;
  eid_t arcs_ = 0;
  eid_t boundary_arcs_ = 0;
  std::vector<Shard> shards_;
  std::vector<std::int32_t> shard_of_;  ///< per NEW id
  std::vector<vid_t> new_to_old_;
  std::vector<vid_t> old_to_new_;
};

}  // namespace snap
