#include "snap/partition/coarsen.hpp"

#include <algorithm>
#include <numeric>

#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap {

CoarseLevel coarsen_heavy_edge(const CSRGraph& g,
                               const std::vector<weight_t>& vertex_weight,
                               std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> visit(static_cast<std::size_t>(n));
  std::iota(visit.begin(), visit.end(), vid_t{0});
  SplitMix64 rng(seed);
  for (std::size_t k = visit.size(); k > 1; --k)
    std::swap(visit[k - 1], visit[rng.next_bounded(k)]);

  std::vector<vid_t> match(static_cast<std::size_t>(n), kInvalidVid);
  for (vid_t v : visit) {
    if (match[static_cast<std::size_t>(v)] != kInvalidVid) continue;
    // Heaviest unmatched neighbor.
    vid_t best = kInvalidVid;
    weight_t best_w = -1;
    const auto nb = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const vid_t u = nb[i];
      if (u == v || match[static_cast<std::size_t>(u)] != kInvalidVid)
        continue;
      if (ws[i] > best_w) {
        best_w = ws[i];
        best = u;
      }
    }
    if (best == kInvalidVid) {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    } else {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    }
  }

  // Assign coarse ids (one per matched pair / singleton).
  std::vector<vid_t> fine_to_coarse(static_cast<std::size_t>(n), kInvalidVid);
  vid_t next = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (fine_to_coarse[static_cast<std::size_t>(v)] != kInvalidVid) continue;
    const vid_t u = match[static_cast<std::size_t>(v)];
    fine_to_coarse[static_cast<std::size_t>(v)] = next;
    fine_to_coarse[static_cast<std::size_t>(u)] = next;
    ++next;
  }

  return contract_by_map(g, fine_to_coarse, next, vertex_weight,
                         /*keep_self_loops=*/false);
}

CoarseLevel contract_by_map(const CSRGraph& g,
                            const std::vector<vid_t>& fine_to_coarse,
                            vid_t num_coarse,
                            const std::vector<weight_t>& vertex_weight,
                            bool keep_self_loops) {
  const vid_t n = g.num_vertices();
  CoarseLevel lvl;
  lvl.fine_to_coarse = fine_to_coarse;

  lvl.vertex_weight.assign(static_cast<std::size_t>(num_coarse), 0);
  for (vid_t v = 0; v < n; ++v)
    lvl.vertex_weight[static_cast<std::size_t>(
        lvl.fine_to_coarse[static_cast<std::size_t>(v)])] +=
        vertex_weight[static_cast<std::size_t>(v)];

  // Build the coarse edge list; the CSR builder would keep the first weight
  // of duplicates, so merge parallel edges here.
  EdgeList coarse_edges;
  coarse_edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const Edge& e : g.edges()) {
    const vid_t cu = lvl.fine_to_coarse[static_cast<std::size_t>(e.u)];
    const vid_t cv = lvl.fine_to_coarse[static_cast<std::size_t>(e.v)];
    if (cu == cv && !keep_self_loops) continue;  // interior edge collapses
    coarse_edges.push_back({std::min(cu, cv), std::max(cu, cv), e.w});
  }
  // Total-order key (u, v, w): ties in (u, v) then carry equal weights, so
  // the summed merge below is deterministic at every thread count.
  parallel::parallel_sort(coarse_edges.begin(), coarse_edges.end(),
                          [](const Edge& a, const Edge& b) {
                            if (a.u != b.u) return a.u < b.u;
                            if (a.v != b.v) return a.v < b.v;
                            return a.w < b.w;
                          });
  EdgeList merged;
  merged.reserve(coarse_edges.size());
  for (const Edge& e : coarse_edges) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v)
      merged.back().w += e.w;
    else
      merged.push_back(e);
  }
  BuildOptions opts;
  opts.dedupe = false;  // already merged
  opts.remove_self_loops = !keep_self_loops;
  lvl.graph =
      CSRGraph::from_edges(num_coarse, merged, /*directed=*/false, opts);
  return lvl;
}

}  // namespace snap
