#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"
#include "snap/partition/partition.hpp"

namespace snap {

/// Parameters for the spectral partitioner (the Chaco-family heuristics of
/// Table 1: Chaco-LAN ≈ Lanczos, Chaco-RQI ≈ Rayleigh quotient iteration).
struct SpectralParams {
  int lanczos_max_iters = 200;  ///< Krylov basis cap (memory is O(n·iters))
  double tol = 1e-5;            ///< eigen-residual convergence threshold
  /// Residual accepted when the iteration budget runs out.  Physical meshes
  /// have tiny Fiedler gaps, so exact convergence can take thousands of
  /// iterations — but a rough Fiedler vector already yields a good median
  /// split (Chaco behaves the same way).  Set to 0 to demand full
  /// convergence.
  double loose_tol = 5e-2;
  int rqi_max_iters = 25;
  int cg_max_iters = 80;
  std::uint64_t seed = 1;
};

enum class SpectralMethod { kLanczos, kRQI };

/// Compute (an approximation of) the Fiedler vector — the eigenvector of the
/// graph Laplacian L = D − A for the second-smallest eigenvalue — deflating
/// the trivial constant eigenvector.  Returns false if the iteration did not
/// converge within its budget; Table 1 shows exactly this failure mode for
/// Chaco on small-world instances, and Mihail & Papadimitriou explain why:
/// on skewed-degree graphs the extreme eigenvectors localize on high-degree
/// vertices and the spectral method loses the structural signal (§2.2).
bool fiedler_vector(const CSRGraph& g, SpectralMethod method,
                    const SpectralParams& p, std::vector<double>& out);

/// Recursive spectral bisection into k parts: split at the median of the
/// Fiedler vector, recurse on the halves.  `success=false` (with a note) if
/// any level's eigensolve fails — the "–" entries of Table 1.
PartitionResult spectral_partition(const CSRGraph& g, std::int32_t k,
                                   SpectralMethod method,
                                   const SpectralParams& p = {});

}  // namespace snap
