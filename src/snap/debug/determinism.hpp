#pragma once

// Determinism self-check harness.
//
// PRs 2 and 3 established thread-count invariance as a hard project
// guarantee: parallel CSR construction, DynamicGraph::to_csr and streaming
// batch application produce byte-identical results at every thread count,
// and the traversal kernels produce identical distances/labels.  The
// differential tests proved this with ad-hoc loops (run at t = 1, 2, 4, 8,
// compare against the t = 1 result field by field); this header centralizes
// the pattern:
//
//   auto report = debug::check_determinism([&](debug::ByteHasher& h) {
//     const auto r = connected_components(g);
//     h.value(r.count);
//     h.sequence(r.label);
//   });
//   ASSERT_TRUE(report.deterministic) << report.to_string();
//
// The callable runs once per thread count under parallel::ThreadScope; it
// serializes whatever the kernel guarantees to be invariant into the
// ByteHasher (FNV-1a over raw bytes).  The report names the first divergent
// thread count — the single most useful datum when chasing a scheduling
// dependence.
//
// Serialize only what is actually guaranteed: BFS distance arrays are
// invariant, BFS parent trees are not (any valid tree is accepted);
// float accumulations through parallel_reduce_sum are deterministic at a
// *fixed* thread count but round differently across thread counts, so hash
// counts/ids/exact values, not order-sensitive float sums (see
// docs/CORRECTNESS.md).

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "snap/util/parallel.hpp"

namespace snap::debug {

/// FNV-1a accumulator the checked callable serializes its result into.
class ByteHasher {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;  // FNV prime
    }
  }

  /// Hash one trivially copyable value (ints, doubles, PODs).
  template <typename T>
  void value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteHasher::value needs a trivially copyable type");
    bytes(&v, sizeof(T));
  }

  /// Hash a contiguous sequence, length first (so [1][2,3] != [1,2][3]).
  template <typename T>
  void sequence(std::span<const T> s) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteHasher::sequence needs trivially copyable elements");
    value(s.size());
    bytes(s.data(), s.size() * sizeof(T));
  }

  template <typename T>
  void sequence(const std::vector<T>& v) {
    sequence(std::span<const T>(v));
  }

  void text(std::string_view s) {
    value(s.size());
    bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

struct DeterminismRun {
  int threads = 0;
  std::uint64_t hash = 0;
};

struct DeterminismReport {
  bool deterministic = true;
  /// First thread count whose hash differs from the first run's; 0 if none.
  int first_divergent_threads = 0;
  std::vector<DeterminismRun> runs;

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    if (deterministic) {
      os << "deterministic across {";
    } else {
      os << "NONDETERMINISTIC (first divergence at " << first_divergent_threads
         << " threads) across {";
    }
    for (std::size_t i = 0; i < runs.size(); ++i)
      os << (i ? ", " : "") << runs[i].threads;
    os << "} threads; hashes:";
    for (const auto& r : runs)
      os << " t" << r.threads << "=0x" << std::hex << r.hash << std::dec;
    return os.str();
  }
};

/// The standard sweep — mirrors the Sun Fire T2000 power-of-two ladder the
/// differential tests have always used.
inline constexpr std::array<int, 4> kDefaultDeterminismThreads{1, 2, 4, 8};

/// Run `fn(ByteHasher&)` once per thread count (under parallel::ThreadScope)
/// and compare result hashes.  `fn` must serialize every result field whose
/// invariance the kernel guarantees.
template <typename Fn>
DeterminismReport check_determinism(
    Fn&& fn, std::span<const int> thread_counts = kDefaultDeterminismThreads) {
  DeterminismReport report;
  for (int t : thread_counts) {
    parallel::ThreadScope scope(t);
    ByteHasher hasher;
    fn(hasher);
    report.runs.push_back({t, hasher.hash()});
  }
  for (std::size_t i = 1; i < report.runs.size(); ++i) {
    if (report.runs[i].hash != report.runs[0].hash) {
      report.deterministic = false;
      report.first_divergent_threads = report.runs[i].threads;
      break;
    }
  }
  return report;
}

}  // namespace snap::debug
