#pragma once

// Forward declaration of the debug-layer introspection hook.  Structural
// containers befriend `debug::Access` (one line each) so the validators in
// snap/debug/validate.cpp — and the mutation tests that deliberately corrupt
// state to prove the validators bite — can reach private arrays without
// widening the public API.

namespace snap::debug {
struct Access;
}  // namespace snap::debug
