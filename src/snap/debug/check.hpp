#pragma once

// Leveled runtime assertions for SNAP's correctness-tooling layer.
//
// Three tiers, controlled by the SNAP_CHECK_LEVEL compile definition (set by
// the CMake option of the same name, {0, 1, 2}):
//
//   SNAP_ASSERT          always compiled in — cheap O(1) conditions whose
//                        violation means memory is already corrupt or about
//                        to be (e.g. an offsets array that does not cover the
//                        adjacency it indexes).
//   SNAP_DCHECK          level >= 1 (the default) — O(1)/O(log n) conditions
//                        on internal bookkeeping (degree counters, mirror-arc
//                        success, cursor positions).
//   SNAP_CHECK_EXPENSIVE level >= 2 (validation builds) — O(n)+ conditions:
//                        full structural validation, recomputation matches.
//
// Every macro takes the condition first and an optional message built from
// `operator<<`-streamable parts:
//
//   SNAP_DCHECK(cursor == end, "vertex ", v, ": cursor ", cursor, " != ", end);
//
// On failure the handler prints the failed expression, the source location
// and the formatted message to stderr, then calls std::abort() — there is no
// recovery path, by design: a violated structural invariant means every
// downstream result is untrustworthy.
//
// Disabled tiers compile to a dead `if (false)` that still odr-uses the
// condition and message operands, so no `-Wunused-*` fallout appears when a
// variable exists only for its check, and no side effects ever run.

#include <sstream>
#include <string>

#ifndef SNAP_CHECK_LEVEL
#define SNAP_CHECK_LEVEL 1
#endif

namespace snap::debug {

/// The active check level, for code that wants to branch at runtime (e.g.
/// tests asserting that validation is actually on).
inline constexpr int kCheckLevel = SNAP_CHECK_LEVEL;

namespace detail {

/// Print "<kind> failed: <expr> at <file>:<line>[: <msg>]" and abort.
[[noreturn]] void check_fail(const char* kind, const char* expr,
                             const char* file, int line,
                             const std::string& msg);

template <typename... Parts>
std::string format_message(const Parts&... parts) {
  if constexpr (sizeof...(Parts) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  }
}

template <typename... Parts>
constexpr void ignore_args(const Parts&...) {}

}  // namespace detail
}  // namespace snap::debug

#define SNAP_ASSERT(cond, ...)                                              \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::snap::debug::detail::check_fail(                                    \
          "SNAP_ASSERT", #cond, __FILE__, __LINE__,                         \
          ::snap::debug::detail::format_message(__VA_ARGS__));              \
    }                                                                       \
  } while (false)

#if SNAP_CHECK_LEVEL >= 1
#define SNAP_DCHECK(cond, ...)                                              \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::snap::debug::detail::check_fail(                                    \
          "SNAP_DCHECK", #cond, __FILE__, __LINE__,                         \
          ::snap::debug::detail::format_message(__VA_ARGS__));              \
    }                                                                       \
  } while (false)
#else
#define SNAP_DCHECK(cond, ...)                                              \
  do {                                                                      \
    if (false) {                                                            \
      (void)(cond);                                                         \
      ::snap::debug::detail::ignore_args(__VA_ARGS__);                      \
    }                                                                       \
  } while (false)
#endif

#if SNAP_CHECK_LEVEL >= 2
#define SNAP_CHECK_EXPENSIVE(cond, ...)                                     \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::snap::debug::detail::check_fail(                                    \
          "SNAP_CHECK_EXPENSIVE", #cond, __FILE__, __LINE__,                \
          ::snap::debug::detail::format_message(__VA_ARGS__));              \
    }                                                                       \
  } while (false)
#else
#define SNAP_CHECK_EXPENSIVE(cond, ...)                                     \
  do {                                                                      \
    if (false) {                                                            \
      (void)(cond);                                                         \
      ::snap::debug::detail::ignore_args(__VA_ARGS__);                      \
    }                                                                       \
  } while (false)
#endif
