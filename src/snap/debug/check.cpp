#include "snap/debug/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace snap::debug::detail {

[[noreturn]] void check_fail(const char* kind, const char* expr,
                             const char* file, int line,
                             const std::string& msg) {
  if (msg.empty()) {
    std::fprintf(stderr, "[snap] %s failed: %s\n  at %s:%d\n", kind, expr,
                 file, line);
  } else {
    std::fprintf(stderr, "[snap] %s failed: %s\n  at %s:%d\n  %s\n", kind,
                 expr, file, line, msg.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace snap::debug::detail
