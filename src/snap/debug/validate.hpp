#pragma once

// Structural invariant validators (§3/§4 data representations).
//
// Each overload of `validate()` walks one structure and returns a
// ValidationReport listing every violated invariant with enough context to
// debug it (vertex ids, offsets, expected vs actual values).  Validators are
// pure observers — they never mutate, never abort; aborting is the job of
// the SNAP_VALIDATE macro below, which is compiled in at SNAP_CHECK_LEVEL=2
// and wired as a postcondition into the builders, kernels and stream-apply
// paths (see docs/CORRECTNESS.md for the catalog).

#include <cstdint>
#include <string>
#include <vector>

#include "snap/debug/check.hpp"
#include "snap/ds/treap.hpp"
#include "snap/graph/types.hpp"

namespace snap {

class CSRGraph;
class DynamicGraph;
class UnionFind;
class MergeDendrogram;
class LouvainLevel;
struct ExchangeLedger;

namespace stream {
class StreamingGraph;
}  // namespace stream

namespace debug {

/// Outcome of one validate() call: the subject name, every violation found
/// (capped in to_string so a corrupt 10M-row graph stays readable), and how
/// many individual checks ran.
struct ValidationReport {
  std::string subject;
  std::vector<std::string> errors;
  std::size_t checks_run = 0;

  [[nodiscard]] bool ok() const { return errors.empty(); }

  /// "<subject>: OK (<n> checks)" or "<subject>: <k> violation(s): ..." with
  /// at most `max_errors` listed.
  [[nodiscard]] std::string to_string(std::size_t max_errors = 8) const;
};

/// Private-state accessor befriended by the structural containers.  Methods
/// are defined in validate.cpp; the mutable_* members exist solely for the
/// mutation tests that corrupt a structure to prove its validator catches it.
struct Access {
  // CSRGraph
  static const std::vector<eid_t>& offsets(const CSRGraph& g);
  static const std::vector<vid_t>& adj(const CSRGraph& g);
  static const std::vector<weight_t>& weights(const CSRGraph& g);
  static const std::vector<eid_t>& arc_edge_ids(const CSRGraph& g);
  static bool adjacency_sorted(const CSRGraph& g);
  static std::vector<vid_t>& mutable_adj(CSRGraph& g);
  static std::vector<eid_t>& mutable_offsets(CSRGraph& g);

  // DynamicGraph
  static const std::vector<std::vector<vid_t>>& flat(const DynamicGraph& g);
  static const std::vector<Treap>& treaps(const DynamicGraph& g);
  static eid_t promote_threshold(const DynamicGraph& g);
  static eid_t edge_count(const DynamicGraph& g);
  static std::vector<std::vector<vid_t>>& mutable_flat(DynamicGraph& g);
  static eid_t& mutable_edge_count(DynamicGraph& g);

  // Treap
  static const Treap::Node* root(const Treap& t);
  static Treap::Node* mutable_root(Treap& t);
  static std::size_t stored_size(const Treap& t);

  // UnionFind
  static const std::vector<std::int64_t>& parent(const UnionFind& uf);
  static const std::vector<std::int64_t>& set_sizes(const UnionFind& uf);
  static std::vector<std::int64_t>& mutable_parent(UnionFind& uf);

  // StreamingGraph
  static std::uint64_t snapshot_epoch(const stream::StreamingGraph& sg);

  // LouvainLevel
  static std::vector<vid_t>& mutable_louvain_membership(LouvainLevel& lvl);
  static std::vector<double>& mutable_louvain_volume(LouvainLevel& lvl);

  // Exchange<Msg> (snap/partition/exchange.hpp).  Templated and inline:
  // Exchange is a class template, so the usual out-of-line accessor per
  // concrete type cannot work.  The mutation tests use these to corrupt a
  // channel or its ledger and prove the exchange validator catches it.
  template <typename Exchange>
  static ExchangeLedger& mutable_exchange_ledger(Exchange& ex) {
    return ex.ledger_;
  }
  template <typename Exchange>
  static auto& mutable_exchange_channel(Exchange& ex, int src, int dst) {
    return ex.box_[ex.channel_index(src, dst)];
  }
};

/// CSR arrays: monotone offsets covering the adjacency exactly, in-range
/// (and, when built sorted, sorted) neighbor rows, per-arc weight/edge-id
/// alignment, undirected arc symmetry through the logical edge list, and
/// weighted-flag consistency.
[[nodiscard]] ValidationReport validate(const CSRGraph& g);

/// Degree-hybrid adjacency: flat/treap mode exclusivity against the promote
/// threshold, per-vertex set semantics, undirected mirror-arc symmetry, and
/// the m_ edge counter against a full arc recount.
[[nodiscard]] ValidationReport validate(const DynamicGraph& g);

/// Treap: BST order, max-heap priority order, priorities matching the
/// deterministic key hash, and node count == size().
[[nodiscard]] ValidationReport validate(const Treap& t);

/// Union-find forest: parents in range, chains acyclic and terminating,
/// per-root stored sizes matching actual member counts, num_sets == number
/// of roots.
[[nodiscard]] ValidationReport validate(const UnionFind& uf);

/// Merge dendrogram: representatives in [0, n), and the merge sequence
/// replayed through a union-find joins two *distinct* clusters at every
/// step — i.e. the recorded merges form a laminar family over a partition
/// of V (at most n-1 merges).
[[nodiscard]] ValidationReport validate(const MergeDendrogram& d);

/// Community assignment over g: labels dense in [0, k), every vertex
/// labeled, and (when `reported_modularity` is finite) an independent
/// modularity recomputation matching it to `tol`.
[[nodiscard]] ValidationReport validate(const CSRGraph& g,
                                        const std::vector<vid_t>& membership,
                                        double reported_modularity,
                                        double tol = 1e-9);

/// One Louvain hierarchy level against the fine graph it was computed on:
/// labels dense in [0, num_communities), the community-volume table matching
/// an independent ascending-vertex recomputation of member weighted degrees,
/// the coarse graph's per-vertex weighted degrees matching the volume table
/// (contraction preserves volume), and the recorded level modularity matching
/// a thread-count-invariant recomputation.
[[nodiscard]] ValidationReport validate(const CSRGraph& g,
                                        const LouvainLevel& lvl,
                                        double tol = 1e-6);

/// Streaming engine: the wrapped DynamicGraph validates, and the epoch-cached
/// snapshot (when fresh) agrees with the live graph's vertex/edge counts.
[[nodiscard]] ValidationReport validate(const stream::StreamingGraph& sg);

}  // namespace debug
}  // namespace snap

// Expensive-tier structural validation: run `validate(...)` and abort with
// the full report on any violation.  Compiles to a dead branch below
// SNAP_CHECK_LEVEL=2, so it can sit in hot builder/kernel paths for free.
#if SNAP_CHECK_LEVEL >= 2
#define SNAP_VALIDATE(...)                                                  \
  do {                                                                      \
    const ::snap::debug::ValidationReport snap_validate_report_ =           \
        ::snap::debug::validate(__VA_ARGS__);                               \
    if (!snap_validate_report_.ok()) [[unlikely]] {                         \
      ::snap::debug::detail::check_fail("SNAP_VALIDATE", #__VA_ARGS__,      \
                                        __FILE__, __LINE__,                 \
                                        snap_validate_report_.to_string()); \
    }                                                                       \
  } while (false)
#else
#define SNAP_VALIDATE(...)                                                  \
  do {                                                                      \
    if (false) {                                                            \
      (void)::snap::debug::validate(__VA_ARGS__);                           \
    }                                                                       \
  } while (false)
#endif
