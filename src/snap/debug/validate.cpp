#include "snap/debug/validate.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <sstream>

#include "snap/community/louvain.hpp"
#include "snap/community/modularity.hpp"
#include "snap/ds/dendrogram.hpp"
#include "snap/ds/union_find.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/graph/dynamic_graph.hpp"
#include "snap/stream/streaming_graph.hpp"
#include "snap/util/sync.hpp"

namespace snap::debug {

// ---------------------------------------------------------------------------
// Access — private-state hooks (one-line friends in the structural headers).

const std::vector<eid_t>& Access::offsets(const CSRGraph& g) {
  return g.offsets_;
}
const std::vector<vid_t>& Access::adj(const CSRGraph& g) { return g.adj_; }
const std::vector<weight_t>& Access::weights(const CSRGraph& g) {
  return g.weights_;
}
const std::vector<eid_t>& Access::arc_edge_ids(const CSRGraph& g) {
  return g.arc_edge_ids_;
}
bool Access::adjacency_sorted(const CSRGraph& g) { return g.sorted_; }
std::vector<vid_t>& Access::mutable_adj(CSRGraph& g) { return g.adj_; }
std::vector<eid_t>& Access::mutable_offsets(CSRGraph& g) {
  return g.offsets_;
}

const std::vector<std::vector<vid_t>>& Access::flat(const DynamicGraph& g) {
  return g.flat_;
}
const std::vector<Treap>& Access::treaps(const DynamicGraph& g) {
  return g.treap_;
}
eid_t Access::promote_threshold(const DynamicGraph& g) {
  return g.promote_threshold_;
}
eid_t Access::edge_count(const DynamicGraph& g) { return g.m_; }
std::vector<std::vector<vid_t>>& Access::mutable_flat(DynamicGraph& g) {
  return g.flat_;
}
eid_t& Access::mutable_edge_count(DynamicGraph& g) { return g.m_; }

const Treap::Node* Access::root(const Treap& t) { return t.root_; }
Treap::Node* Access::mutable_root(Treap& t) { return t.root_; }
std::size_t Access::stored_size(const Treap& t) { return t.size_; }

const std::vector<std::int64_t>& Access::parent(const UnionFind& uf) {
  return uf.parent_;
}
const std::vector<std::int64_t>& Access::set_sizes(const UnionFind& uf) {
  return uf.size_;
}
std::vector<std::int64_t>& Access::mutable_parent(UnionFind& uf) {
  return uf.parent_;
}

std::uint64_t Access::snapshot_epoch(const stream::StreamingGraph& sg) {
  sync::MutexLock lk(sg.snap_mu_);
  return sg.published_ ? sg.published_->epoch()
                       : static_cast<std::uint64_t>(-1);
}

std::vector<vid_t>& Access::mutable_louvain_membership(LouvainLevel& lvl) {
  return lvl.membership_;
}
std::vector<double>& Access::mutable_louvain_volume(LouvainLevel& lvl) {
  return lvl.volume_;
}

// ---------------------------------------------------------------------------
// Report plumbing.

std::string ValidationReport::to_string(std::size_t max_errors) const {
  std::ostringstream os;
  if (ok()) {
    os << subject << ": OK (" << checks_run << " checks)";
    return os.str();
  }
  os << subject << ": " << errors.size() << " violation(s)";
  const std::size_t shown = std::min(max_errors, errors.size());
  for (std::size_t i = 0; i < shown; ++i) os << "\n    - " << errors[i];
  if (shown < errors.size())
    os << "\n    - ... " << (errors.size() - shown) << " more";
  return os.str();
}

namespace {

/// Error accumulation is capped: a structurally shredded graph would
/// otherwise report one string per arc.
constexpr std::size_t kMaxRecordedErrors = 64;

struct Checker {
  ValidationReport& report;

  template <typename... Parts>
  bool require(bool cond, const Parts&... parts) {
    ++report.checks_run;
    if (!cond && report.errors.size() < kMaxRecordedErrors)
      report.errors.push_back(detail::format_message(parts...));
    return cond;
  }
};

/// Shared treap walk: BST bounds, max-heap priorities, hashed-priority
/// determinism, node count.  Returns the subtree node count.
std::size_t walk_treap(const Treap::Node* node, std::int64_t lo,
                       std::int64_t hi, bool has_lo, bool has_hi,
                       Checker& ck) {
  if (!node) return 0;
  ck.require(!has_lo || node->key > lo, "BST order: key ", node->key,
             " not above lower bound ", lo);
  ck.require(!has_hi || node->key < hi, "BST order: key ", node->key,
             " not below upper bound ", hi);
  ck.require(node->prio == snap::detail::treap_priority(node->key),
             "priority of key ", node->key,
             " does not match the deterministic hash (", node->prio, " vs ",
             snap::detail::treap_priority(node->key), ")");
  if (node->left)
    ck.require(node->prio >= node->left->prio, "heap order: key ", node->key,
               " has prio below left child ", node->left->key);
  if (node->right)
    ck.require(node->prio >= node->right->prio, "heap order: key ", node->key,
               " has prio below right child ", node->right->key);
  return 1 + walk_treap(node->left, lo, node->key, has_lo, true, ck) +
         walk_treap(node->right, node->key, hi, true, has_hi, ck);
}

/// Membership check of (u, v) against a DynamicGraph's raw adjacency state.
bool dyn_has_arc(const std::vector<std::vector<vid_t>>& flat,
                 const std::vector<Treap>& treaps, vid_t u, vid_t v) {
  const auto su = static_cast<std::size_t>(u);
  if (!treaps[su].empty()) return treaps[su].contains(v);
  const auto& row = flat[su];
  return std::find(row.begin(), row.end(), v) != row.end();
}

}  // namespace

// ---------------------------------------------------------------------------
// CSRGraph.

ValidationReport validate(const CSRGraph& g) {
  ValidationReport report;
  report.subject = "CSRGraph";
  Checker ck{report};

  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  const auto& offsets = Access::offsets(g);
  const auto& adj = Access::adj(g);
  const auto& weights = Access::weights(g);
  const auto& ids = Access::arc_edge_ids(g);
  const auto& edges = g.edges();

  if (!ck.require(offsets.size() == static_cast<std::size_t>(n) + 1,
                  "offsets size ", offsets.size(), " != n+1 = ", n + 1))
    return report;
  ck.require(n >= 0, "negative vertex count ", n);
  ck.require(offsets.front() == 0, "offsets[0] = ", offsets.front(),
             ", expected 0");
  for (vid_t v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    if (!ck.require(offsets[sv] <= offsets[sv + 1], "offsets not monotone at ",
                    v, ": ", offsets[sv], " > ", offsets[sv + 1]))
      return report;
  }
  const auto arcs = static_cast<std::size_t>(offsets.back());
  if (!ck.require(arcs == adj.size(), "offsets cover ", arcs,
                  " arcs but adjacency holds ", adj.size()))
    return report;
  ck.require(weights.size() == adj.size(), "weight array size ",
             weights.size(), " != arc count ", adj.size());
  ck.require(ids.size() == adj.size(), "edge-id array size ", ids.size(),
             " != arc count ", adj.size());
  ck.require(edges.size() == static_cast<std::size_t>(m),
             "edge-endpoint list size ", edges.size(), " != m = ", m);
  const eid_t expected_arcs = g.directed() ? m : 2 * m;
  ck.require(static_cast<eid_t>(arcs) == expected_arcs, "arc count ", arcs,
             " != ", g.directed() ? "m" : "2m", " = ", expected_arcs);
  if (!report.ok()) return report;  // sizes wrong: element checks would UB

  // Logical edge endpoints (canonical u <= v when undirected).
  bool all_unit_weight = true;
  for (eid_t e = 0; e < m; ++e) {
    const Edge& ed = edges[static_cast<std::size_t>(e)];
    ck.require(ed.u >= 0 && ed.u < n && ed.v >= 0 && ed.v < n, "edge ", e,
               " endpoints (", ed.u, ", ", ed.v, ") out of [0, ", n, ")");
    if (!g.directed())
      ck.require(ed.u <= ed.v, "undirected edge ", e, " not canonical: (",
                 ed.u, ", ", ed.v, ")");
    all_unit_weight &= (ed.w == 1.0);
  }
  ck.require(g.weighted() || all_unit_weight,
             "graph reports unweighted but carries a weight != 1.0");

  // Per-arc: in-range targets, aligned edge ids/weights, sorted rows, and a
  // per-edge arc tally for the symmetry check (each logical edge must be
  // referenced by exactly one arc when directed, exactly two otherwise —
  // undirected self loops also store both arcs).
  std::vector<eid_t> arc_tally(static_cast<std::size_t>(m), 0);
  const bool sorted = Access::adjacency_sorted(g);
  for (vid_t u = 0; u < n; ++u) {
    const auto lo = static_cast<std::size_t>(offsets[static_cast<std::size_t>(u)]);
    const auto hi =
        static_cast<std::size_t>(offsets[static_cast<std::size_t>(u) + 1]);
    for (std::size_t a = lo; a < hi; ++a) {
      const vid_t v = adj[a];
      if (!ck.require(v >= 0 && v < n, "arc ", a, " of vertex ", u,
                      " targets out-of-range vertex ", v))
        continue;
      const eid_t e = ids[a];
      if (!ck.require(e >= 0 && e < m, "arc ", a, " of vertex ", u,
                      " carries out-of-range edge id ", e))
        continue;
      ++arc_tally[static_cast<std::size_t>(e)];
      const Edge& ed = edges[static_cast<std::size_t>(e)];
      ck.require((ed.u == u && ed.v == v) || (ed.u == v && ed.v == u),
                 "arc ", u, "->", v, " references edge ", e,
                 " with endpoints (", ed.u, ", ", ed.v, ")");
      ck.require(weights[a] == ed.w, "arc ", u, "->", v, " weight ",
                 weights[a], " != edge ", e, " weight ", ed.w);
      if (sorted && a > lo) {
        const bool ordered = adj[a - 1] < v || (adj[a - 1] == v && ids[a - 1] <= e);
        ck.require(ordered, "row of vertex ", u,
                   " not sorted by (neighbor, edge id) at arc ", a, ": (",
                   adj[a - 1], ", ", ids[a - 1], ") then (", v, ", ", e, ")");
      }
    }
  }
  const eid_t per_edge = g.directed() ? 1 : 2;
  for (eid_t e = 0; e < m; ++e)
    ck.require(arc_tally[static_cast<std::size_t>(e)] == per_edge, "edge ", e,
               " referenced by ", arc_tally[static_cast<std::size_t>(e)],
               " arcs, expected ", per_edge, " (arc symmetry violated)");
  return report;
}

// ---------------------------------------------------------------------------
// DynamicGraph.

ValidationReport validate(const DynamicGraph& g) {
  ValidationReport report;
  report.subject = "DynamicGraph";
  Checker ck{report};

  const vid_t n = g.num_vertices();
  const auto& flat = Access::flat(g);
  const auto& treaps = Access::treaps(g);
  const eid_t threshold = Access::promote_threshold(g);

  if (!ck.require(flat.size() == treaps.size(), "flat rows ", flat.size(),
                  " vs treap rows ", treaps.size()))
    return report;

  eid_t total_arcs = 0;
  eid_t self_arcs = 0;
  std::vector<vid_t> scratch;
  for (vid_t v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    const auto& row = flat[sv];
    const Treap& tr = treaps[sv];
    ck.require(row.empty() || tr.empty(), "vertex ", v,
               " holds both a flat row (", row.size(), ") and a treap (",
               tr.size(), ") — mode exclusivity violated");
    ck.require(static_cast<eid_t>(row.size()) <= threshold, "vertex ", v,
               " flat row size ", row.size(), " above promote threshold ",
               threshold);

    scratch.clear();
    if (!tr.empty()) {
      const ValidationReport tr_report = validate(tr);
      report.checks_run += tr_report.checks_run;
      for (const auto& err : tr_report.errors)
        ck.require(false, "treap of vertex ", v, ": ", err);
      tr.for_each([&](std::int64_t k) {
        scratch.push_back(static_cast<vid_t>(k));
      });
    } else {
      scratch.assign(row.begin(), row.end());
      std::sort(scratch.begin(), scratch.end());
      for (std::size_t i = 1; i < scratch.size(); ++i)
        ck.require(scratch[i - 1] != scratch[i], "vertex ", v,
                   " flat row duplicates neighbor ", scratch[i]);
    }
    total_arcs += static_cast<eid_t>(scratch.size());
    for (vid_t u : scratch) {
      if (!ck.require(u >= 0 && u < n, "vertex ", v,
                      " has out-of-range neighbor ", u))
        continue;
      if (u == v) ++self_arcs;
      if (!g.directed() && u != v)
        ck.require(dyn_has_arc(flat, treaps, u, v), "undirected arc ", v,
                   "->", u, " has no mirror ", u, "->", v);
    }
  }

  // A self loop stores one arc; every other undirected edge stores two.
  const eid_t expected_m =
      g.directed() ? total_arcs : (total_arcs + self_arcs) / 2;
  if (!g.directed())
    ck.require((total_arcs + self_arcs) % 2 == 0,
               "undirected arc total ", total_arcs, " (+", self_arcs,
               " self) is odd — asymmetric adjacency");
  ck.require(g.num_edges() == expected_m, "edge counter m = ", g.num_edges(),
             " but adjacency holds ", expected_m,
             " logical edges (degree bookkeeping drift)");
  return report;
}

// ---------------------------------------------------------------------------
// Treap.

ValidationReport validate(const Treap& t) {
  ValidationReport report;
  report.subject = "Treap";
  Checker ck{report};
  const std::size_t counted =
      walk_treap(Access::root(t), 0, 0, false, false, ck);
  ck.require(counted == Access::stored_size(t), "stored size ",
             Access::stored_size(t), " != node count ", counted);
  return report;
}

// ---------------------------------------------------------------------------
// UnionFind.

ValidationReport validate(const UnionFind& uf) {
  ValidationReport report;
  report.subject = "UnionFind";
  Checker ck{report};

  const auto& parent = Access::parent(uf);
  const auto& sizes = Access::set_sizes(uf);
  const auto n = static_cast<std::int64_t>(parent.size());
  if (!ck.require(sizes.size() == parent.size(), "size array length ",
                  sizes.size(), " != parent array length ", parent.size()))
    return report;

  for (std::int64_t i = 0; i < n; ++i)
    if (!ck.require(parent[static_cast<std::size_t>(i)] >= 0 &&
                        parent[static_cast<std::size_t>(i)] < n,
                    "parent[", i, "] = ",
                    parent[static_cast<std::size_t>(i)], " out of [0, ", n,
                    ")"))
      return report;

  // Chains must reach a root within n steps (acyclic forest); tally members
  // per root to cross-check the stored set sizes and num_sets.
  std::vector<std::int64_t> members(parent.size(), 0);
  std::int64_t roots = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t x = i;
    std::int64_t steps = 0;
    while (parent[static_cast<std::size_t>(x)] != x && steps <= n) {
      x = parent[static_cast<std::size_t>(x)];
      ++steps;
    }
    if (!ck.require(steps <= n, "parent chain from ", i,
                    " does not terminate (cycle)"))
      return report;
    ++members[static_cast<std::size_t>(x)];
  }
  for (std::int64_t r = 0; r < n; ++r) {
    const auto sr = static_cast<std::size_t>(r);
    if (parent[sr] != r) continue;
    ++roots;
    ck.require(sizes[sr] == members[sr], "root ", r, " stores size ",
               sizes[sr], " but owns ", members[sr], " members");
  }
  ck.require(static_cast<std::size_t>(roots) == uf.num_sets(), "num_sets = ",
             uf.num_sets(), " but the forest has ", roots, " roots");
  return report;
}

// ---------------------------------------------------------------------------
// MergeDendrogram.

ValidationReport validate(const MergeDendrogram& d) {
  ValidationReport report;
  report.subject = "MergeDendrogram";
  Checker ck{report};

  const std::int64_t n = d.n_leaves();
  const auto& merges = d.merges();
  ck.require(n >= 0, "negative leaf count ", n);
  ck.require(static_cast<std::int64_t>(merges.size()) <= std::max<std::int64_t>(n - 1, 0),
             merges.size(), " merges over ", n,
             " leaves (a laminar family admits at most n-1)");
  UnionFind uf(static_cast<std::size_t>(std::max<std::int64_t>(n, 0)));
  for (std::size_t k = 0; k < merges.size(); ++k) {
    const auto& mg = merges[k];
    if (!ck.require(mg.a >= 0 && mg.a < n && mg.b >= 0 && mg.b < n, "merge ",
                    k, " references out-of-range representatives (", mg.a,
                    ", ", mg.b, ")"))
      continue;
    ck.require(uf.unite(mg.a, mg.b), "merge ", k, " joins ", mg.a, " and ",
               mg.b,
               " which are already one cluster (merge sequence is not a "
               "laminar family over V)");
    ck.require(std::isfinite(mg.modularity), "merge ", k,
               " records non-finite modularity");
  }
  return report;
}

// ---------------------------------------------------------------------------
// Community assignment.

ValidationReport validate(const CSRGraph& g, const std::vector<vid_t>& membership,
                          double reported_modularity, double tol) {
  ValidationReport report;
  report.subject = "community assignment";
  Checker ck{report};

  const vid_t n = g.num_vertices();
  if (!ck.require(membership.size() == static_cast<std::size_t>(n),
                  "membership size ", membership.size(), " != n = ", n))
    return report;
  vid_t max_label = -1;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t c = membership[static_cast<std::size_t>(v)];
    if (!ck.require(c >= 0 && c < n, "vertex ", v, " carries label ", c,
                    " out of [0, ", n, ")"))
      return report;
    max_label = std::max(max_label, c);
  }
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(max_label) + 1, 0);
  for (vid_t v = 0; v < n; ++v)
    seen[static_cast<std::size_t>(membership[static_cast<std::size_t>(v)])] = 1;
  for (vid_t c = 0; c <= max_label; ++c)
    ck.require(seen[static_cast<std::size_t>(c)] != 0, "label ", c,
               " unused — labels are not dense in [0, ", max_label + 1, ")");

  if (std::isfinite(reported_modularity)) {
    const double q = modularity(g, membership);
    ck.require(std::abs(q - reported_modularity) <= tol,
               "reported modularity ", reported_modularity,
               " does not match recomputation ", q, " (|diff| = ",
               std::abs(q - reported_modularity), " > tol ", tol, ")");
  }
  return report;
}

// ---------------------------------------------------------------------------
// LouvainLevel.

ValidationReport validate(const CSRGraph& g, const LouvainLevel& lvl,
                          double tol) {
  ValidationReport report;
  report.subject = "Louvain level";
  Checker ck{report};

  const vid_t n = g.num_vertices();
  const auto& membership = lvl.membership();
  const auto& volume = lvl.community_volume();
  const vid_t k = lvl.num_communities();
  if (!ck.require(membership.size() == static_cast<std::size_t>(n),
                  "membership size ", membership.size(), " != n = ", n))
    return report;
  if (!ck.require(k >= 0 && k <= n, "community count ", k, " out of [0, ", n,
                  "]"))
    return report;

  // Labels dense in [0, k): in range, every community inhabited.
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(k), 0);
  for (vid_t v = 0; v < n; ++v) {
    const vid_t c = membership[static_cast<std::size_t>(v)];
    if (!ck.require(c >= 0 && c < k, "vertex ", v, " carries label ", c,
                    " out of [0, ", k, ")"))
      return report;
    seen[static_cast<std::size_t>(c)] = 1;
  }
  for (vid_t c = 0; c < k; ++c)
    ck.require(seen[static_cast<std::size_t>(c)] != 0, "label ", c,
               " unused — labels are not dense in [0, ", k, ")");

  // Volume table against an independent recomputation: sum each vertex's
  // arc weights (a self-loop stores two arcs, so it counts twice — the
  // Louvain volume convention), accumulated in ascending vertex order.
  std::vector<double> recomputed(static_cast<std::size_t>(k), 0.0);
  for (vid_t v = 0; v < n; ++v) {
    double s = 0.0;
    for (const weight_t w : g.weights(v)) s += w;
    recomputed[static_cast<std::size_t>(
        membership[static_cast<std::size_t>(v)])] += s;
  }
  for (vid_t c = 0; c < k; ++c) {
    const auto sc = static_cast<std::size_t>(c);
    ck.require(std::abs(volume[sc] - recomputed[sc]) <= tol, "community ", c,
               " stores volume ", volume[sc],
               " but members' weighted degrees sum to ", recomputed[sc]);
  }

  // The contraction preserves volume: coarse vertex c's weighted degree
  // (self-loops stored twice) must equal community c's volume.
  const CSRGraph& coarse = lvl.coarse_graph();
  if (ck.require(coarse.num_vertices() == k, "coarse graph has ",
                 coarse.num_vertices(), " vertices, expected ", k,
                 " communities")) {
    for (vid_t c = 0; c < k; ++c) {
      double s = 0.0;
      for (const weight_t w : coarse.weights(c)) s += w;
      ck.require(std::abs(s - volume[static_cast<std::size_t>(c)]) <= tol,
                 "coarse vertex ", c, " has weighted degree ", s,
                 " but community volume is ",
                 volume[static_cast<std::size_t>(c)],
                 " (contraction lost weight)");
    }
  }

  // Level modularity against a thread-count-invariant recomputation.
  const double q = modularity_ordered(g, membership);
  ck.require(std::abs(q - lvl.modularity()) <= tol, "level modularity ",
             lvl.modularity(), " does not match recomputation ", q);
  return report;
}

// ---------------------------------------------------------------------------
// StreamingGraph.

ValidationReport validate(const stream::StreamingGraph& sg) {
  ValidationReport report = validate(sg.graph());
  report.subject = "StreamingGraph";
  Checker ck{report};

  const std::uint64_t cached = Access::snapshot_epoch(sg);
  const bool stale = cached == static_cast<std::uint64_t>(-1);
  ck.require(stale || cached <= sg.epoch(), "snapshot epoch ", cached,
             " is ahead of the graph epoch ", sg.epoch());
  // Pin accounting: every not-yet-reclaimed EpochSnapshot is counted by the
  // live gauge, so a published snapshot implies at least one live, and the
  // gauge can never go negative (a double-free would).
  ck.require(sg.live_snapshots() >= (stale ? 0 : 1),
             "live snapshot gauge ", sg.live_snapshots(),
             " inconsistent with published snapshot state");
  if (!stale && cached == sg.epoch()) {
    // Fresh cache: snapshot() returns it without rebuilding.
    const CSRGraph& snap = sg.snapshot();
    ck.require(snap.num_vertices() == sg.graph().num_vertices(),
               "cached snapshot has ", snap.num_vertices(),
               " vertices, live graph ", sg.graph().num_vertices());
    ck.require(snap.num_edges() == sg.graph().num_edges(),
               "cached snapshot has ", snap.num_edges(), " edges, live graph ",
               sg.graph().num_edges());
  }
  return report;
}

}  // namespace snap::debug
