#include "snap/util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace snap::json {

namespace {

const Value kNullValue{};

constexpr int kMaxDepth = 128;

}  // namespace

void Value::set(std::string_view key, Value v) {
  type_ = Type::kObject;
  for (Member& m : obj_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& m : obj_)
    if (m.first == key) return &m.second;
  return nullptr;
}

const Value& Value::get(std::string_view key) const {
  const Value* v = find(key);
  return v != nullptr ? *v : kNullValue;
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Value::Type::kNull:
      return true;
    case Value::Type::kBool:
      return a.bool_ == b.bool_;
    case Value::Type::kNumber:
      return a.num_ == b.num_;
    case Value::Type::kString:
      return a.str_ == b.str_;
    case Value::Type::kArray:
      return a.arr_ == b.arr_;
    case Value::Type::kObject:
      return a.obj_ == b.obj_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Emit.

void escape(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

void append_number(double d, std::string* out) {
  if (!std::isfinite(d)) {
    out->push_back('0');
    return;
  }
  // Integral doubles within the exactly-representable window print as
  // integers — ids, counts and epochs stay grep-able and byte-stable.
  if (d == std::floor(d) && std::fabs(d) < 9007199254740992.0) {  // 2^53
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out->append(buf);
    return;
  }
  // Shortest form that survives a strtod round trip.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out->append(buf);
}

void Value::dump(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      append_number(num_, out);
      break;
    case Type::kString:
      escape(str_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& v : arr_) {
        if (!first) out->push_back(',');
        first = false;
        v.dump(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const Member& m : obj_) {
        if (!first) out->push_back(',');
        first = false;
        escape(m.first, out);
        out->push_back(':');
        m.second.dump(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump(&out);
  return out;
}

// ---------------------------------------------------------------------------
// Parse.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool run(Value* out, std::string* error) {
    bool ok = parse_value(out, 0);
    if (ok) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after document");
        ok = false;
      }
    }
    if (!ok && error != nullptr) *error = error_;
    return ok;
  }

 private:
  bool fail(const std::string& why) {
    if (error_.empty())
      error_ = "byte " + std::to_string(pos_) + ": " + why;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit)
      return fail("invalid literal");
    pos_ += lit.size();
    return true;
  }

  bool parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) return false;
        *out = Value();
        return true;
      case 't':
        if (!consume_literal("true")) return false;
        *out = Value(true);
        return true;
      case 'f':
        if (!consume_literal("false")) return false;
        *out = Value(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Value(std::move(s));
        return true;
      }
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_array(Value* out, int depth) {
    ++pos_;  // '['
    *out = Value::array();
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value elem;
      if (!parse_value(&elem, depth + 1)) return false;
      out->push_back(std::move(elem));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or ']' in array");
      }
    }
  }

  bool parse_object(Value* out, int depth) {
    ++pos_;  // '{'
    *out = Value::object();
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (at_end() || text_[pos_] != ':') return fail("expected ':' after key");
      ++pos_;
      Value member;
      if (!parse_value(&member, depth + 1)) return false;
      out->set(key, std::move(member));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or '}' in object");
      }
    }
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        return fail("invalid \\u escape");
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void append_utf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (at_end()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              if (!parse_hex4(&lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF)
                return fail("invalid low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return fail("unpaired high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value* out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || peek() < '0' || peek() > '9')
      return fail("invalid value");
    // JSON forbids leading zeros ("012"), octal-looking input is a typo.
    if (peek() == '0' && pos_ + 1 < text_.size() && text_[pos_ + 1] >= '0' &&
        text_[pos_ + 1] <= '9')
      return fail("leading zero in number");
    while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9')
        return fail("digit required after decimal point");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9')
        return fail("digit required in exponent");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    *out = Value(std::strtod(token.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool parse(std::string_view text, Value* out, std::string* error) {
  return Parser(text).run(out, error);
}

}  // namespace snap::json
