#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace snap::json {

/// One JSON document node — the shared wire format of the bench reports
/// (snapbench::JsonReport) and the analytics service (snap/server).  The
/// design goals are the ones those two consumers actually need, nothing
/// more:
///
///   * deterministic emit — objects keep insertion order, numbers print the
///     shortest decimal form that round-trips through strtod, strings are
///     escape-correct per RFC 8259 (so a query answer serialized twice is
///     byte-identical, which the service's differential tests rely on);
///   * a small recursive-descent parser with positioned error messages for
///     the ingest/query request bodies (depth-limited, rejects trailing
///     garbage, decodes \uXXXX escapes including surrogate pairs).
///
/// Numbers are stored as double throughout; integral values up to 2^53
/// therefore survive a round trip exactly, which covers every vertex id,
/// count and timestamp the graph service exchanges (vid_t payloads beyond
/// 2^53 would need a string field — far past the paper's 10^10 ambition).
class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  using Array = std::vector<Value>;
  using Member = std::pair<std::string, Value>;
  using Object = std::vector<Member>;

  Value() = default;                         ///< null
  Value(std::nullptr_t) {}                   // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  Value(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT(google-explicit-constructor)
  Value(int i) : Value(static_cast<double>(i)) {}  // NOLINT(google-explicit-constructor)
  Value(std::int64_t i)  // NOLINT(google-explicit-constructor)
      : Value(static_cast<double>(i)) {}
  Value(std::string s)  // NOLINT(google-explicit-constructor)
      : type_(Type::kString), str_(std::move(s)) {}
  Value(std::string_view s)  // NOLINT(google-explicit-constructor)
      : type_(Type::kString), str_(s) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT(google-explicit-constructor)

  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads with a fallback for absent/mistyped nodes — the ergonomic
  /// shape request-body handlers want (`body.get("time").as_int64(0)`).
  [[nodiscard]] bool as_bool(bool dflt = false) const {
    return is_bool() ? bool_ : dflt;
  }
  [[nodiscard]] double as_double(double dflt = 0.0) const {
    return is_number() ? num_ : dflt;
  }
  [[nodiscard]] std::int64_t as_int64(std::int64_t dflt = 0) const {
    return is_number() ? static_cast<std::int64_t>(num_) : dflt;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  /// Arrays.
  void push_back(Value v) {
    type_ = Type::kArray;
    arr_.push_back(std::move(v));
  }
  [[nodiscard]] std::size_t size() const {
    return is_array() ? arr_.size() : (is_object() ? obj_.size() : 0);
  }
  [[nodiscard]] const Array& items() const { return arr_; }
  [[nodiscard]] const Value& operator[](std::size_t i) const {
    return arr_[i];
  }

  /// Objects.  `set` replaces an existing key in place (keeping its
  /// position) or appends, so emit order is insertion order either way.
  void set(std::string_view key, Value v);
  [[nodiscard]] const Object& members() const { return obj_; }
  /// Pointer to the member value, or nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }
  /// Member value, or a shared null sentinel when absent — allows chaining
  /// `v.get("a").get("b").as_int64()` without null checks at every hop.
  [[nodiscard]] const Value& get(std::string_view key) const;

  /// Compact serialization (no whitespace).  Appending flavor for hot
  /// emit loops, returning flavor for convenience.
  void dump(std::string* out) const;
  [[nodiscard]] std::string dump() const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Append `s` to `out` as a JSON string literal (quotes included): ", \ and
/// control characters are escaped, everything else — including multi-byte
/// UTF-8 — passes through verbatim.
void escape(std::string_view s, std::string* out);

/// Append the shortest decimal form of `d` that strtod parses back to
/// exactly `d`; integral values within the 2^53-exact window print with no
/// fraction part.  Non-finite values (which JSON cannot represent) emit 0.
void append_number(double d, std::string* out);

/// Parse one JSON document.  Returns true and fills `*out` on success;
/// returns false and (when `error` is non-null) a "byte N: reason" message
/// on malformed input.  Trailing non-whitespace after the document is an
/// error; nesting beyond 128 levels is rejected (the service parses
/// attacker-supplied bodies — unbounded recursion would be a stack-overflow
/// hole).
bool parse(std::string_view text, Value* out, std::string* error = nullptr);

}  // namespace snap::json
