#pragma once

#include <chrono>

namespace snap {

/// Monotonic wall-clock timer for measuring kernel and algorithm runtimes.
///
/// The timer starts on construction; `elapsed_s()` / `elapsed_ms()` report the
/// time since construction or the most recent `reset()`.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the timer from now.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset.
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last reset.
  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace snap
