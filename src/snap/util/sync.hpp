#pragma once

// Capability-annotated synchronization primitives — the only place in the
// SNAP library allowed to name std::mutex / std::condition_variable (the
// `raw-mutex` lint rule enforces this; see docs/CORRECTNESS.md "Lock
// catalog & capability annotations").
//
// Why wrappers instead of the std types: Clang's -Wthread-safety analysis
// turns the locking discipline into a compile-time contract — a
// GUARDED_BY(mu) field read without `mu` held, a double acquire, or a
// scope that leaks a lock is a *build break*, not a TSan report that
// depends on the schedule the tests happened to exercise.  The attributes
// only attach to types we own, hence `sync::Mutex` / `sync::MutexLock` /
// `sync::CondVar` below.  Under GCC (and any non-Clang compiler) every
// macro expands to nothing and the wrappers are zero-cost forwarding
// shims, so the annotated tree stays portable.
//
// Conventions (enforced by lint + CI):
//   - every `sync::Mutex` member carries an adjacent `// guards: ...`
//     comment naming the fields it protects (`guard-note` lint rule), so
//     the lock catalog stays greppable;
//   - the protected fields themselves carry GUARDED_BY(mu) (pointees:
//     PT_GUARDED_BY) so the compiler enforces what the comment promises;
//   - functions with locking side effects are annotated ACQUIRE / RELEASE
//     / REQUIRES / EXCLUDES;
//   - escape hatch: NO_THREAD_SAFETY_ANALYSIS on the function, plus a
//     comment justifying why the analysis cannot see the invariant.

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros (the canonical Clang thread-safety spelling).  They
// expand to Clang attributes when the analysis is available and to nothing
// elsewhere, so GCC builds see plain code.  Each is guarded by #ifndef so
// an embedding project that already defines the canonical names wins.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SNAP_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SNAP_THREAD_ANNOTATION_
#define SNAP_THREAD_ANNOTATION_(x)  // non-Clang: annotations compile away
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) SNAP_THREAD_ANNOTATION_(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY SNAP_THREAD_ANNOTATION_(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) SNAP_THREAD_ANNOTATION_(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) SNAP_THREAD_ANNOTATION_(pt_guarded_by(x))
#endif
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) SNAP_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#endif
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) SNAP_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#endif
#ifndef REQUIRES
#define REQUIRES(...) SNAP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  SNAP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) SNAP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  SNAP_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) SNAP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  SNAP_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  SNAP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) SNAP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) SNAP_THREAD_ANNOTATION_(assert_capability(x))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) SNAP_THREAD_ANNOTATION_(lock_returned(x))
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  SNAP_THREAD_ANNOTATION_(no_thread_safety_analysis)
#endif

namespace snap::sync {

/// Mutual-exclusion capability over std::mutex.  Prefer the scoped
/// `MutexLock`; call lock()/unlock() directly only where RAII cannot
/// express the protocol (and the annotations still keep it honest).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped handle — for CondVar's adopt-lock dance only.  Going
  /// through it anywhere else reintroduces exactly the unchecked locking
  /// this header exists to eliminate.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII scoped lock on a sync::Mutex (the SCOPED_CAPABILITY makes Clang
/// track the critical section's extent: holding it past scope, or touching
/// a guarded field outside one, is a compile error).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with sync::Mutex.  wait() REQUIRES the mutex,
/// so a wait outside the critical section — the classic lost-wakeup bug —
/// does not compile under Clang.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep, reacquire `mu` before returning.
  /// As with std::condition_variable, spurious wakeups happen: always
  /// wait in a predicate loop —
  ///
  ///     sync::MutexLock lk(mu);
  ///     while (!ready) cv.wait(mu);
  ///
  /// (a plain while over the guarded predicate, not a lambda overload: the
  /// loop body reads the guarded field in a scope where the analysis can
  /// see the lock, so the whole idiom stays compile-time checked).
  void wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the capability accounting (caller
    // still holds `mu`) stays truthful.
    std::unique_lock<std::mutex> native(mu.native_handle(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace snap::sync
