#include "snap/util/parallel.hpp"

#include <atomic>

namespace snap::parallel {

namespace {
// 0 = not yet initialized: use the OpenMP default.  Atomic because the
// analytics service reads the thread count from every HTTP worker while
// apply_serial()'s ThreadScope writes it — a latent plain-int data race
// the thread-safety retrofit (PR 9) surfaced.  Relaxed ordering suffices:
// the count is a tuning knob, not a synchronization edge.
std::atomic<int> g_threads{0};
}

void set_num_threads(int t) {
  if (t < 1) t = 1;
  g_threads.store(t, std::memory_order_relaxed);
  omp_set_num_threads(t);
}

int num_threads() {
  int t = g_threads.load(std::memory_order_relaxed);
  if (t == 0) {
    t = omp_get_max_threads();
    g_threads.store(t, std::memory_order_relaxed);
  }
  return t;
}

int max_threads() { return omp_get_num_procs(); }

}  // namespace snap::parallel
