#include "snap/util/parallel.hpp"

namespace snap::parallel {

namespace {
int g_threads = 0;  // 0 = not yet initialized: use the OpenMP default
}

void set_num_threads(int t) {
  if (t < 1) t = 1;
  g_threads = t;
  omp_set_num_threads(t);
}

int num_threads() {
  if (g_threads == 0) g_threads = omp_get_max_threads();
  return g_threads;
}

int max_threads() { return omp_get_num_procs(); }

}  // namespace snap::parallel
