#pragma once

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <thread>
#include <utility>
#include <vector>

// ThreadSanitizer cannot see libgomp's synchronization (GCC does not ship an
// instrumented OpenMP runtime), so every fork/join and even the compiler's
// shared-variable handoff at a `#pragma omp parallel` is reported as a race.
// Under TSan, SNAP therefore runs its thread teams on std::thread — whose
// create/join the sanitizer models exactly — with the same manual
// worksharing the OpenMP path uses, so the kernels TSan checks are the
// kernels production runs.
#if defined(__SANITIZE_THREAD__)
#define SNAP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SNAP_TSAN 1
#endif
#endif

namespace snap::parallel {

/// Set the number of OpenMP threads used by subsequent SNAP kernels.
/// Thread count is process-global; the figure benches sweep it from a single
/// process exactly as the paper sweeps 1..32 threads on the T2000.
void set_num_threads(int t);

/// Number of threads SNAP kernels will use.
int num_threads();

/// Maximum hardware concurrency reported by the runtime.
int max_threads();

/// Run `body(t)` for every t in [0, nt) on a team of (up to) nt threads.
/// This is the single fork/join primitive behind every SNAP kernel: OpenMP
/// in normal builds, std::thread under TSan (see SNAP_TSAN above).  `body`
/// must not assume the calls are concurrent — if the runtime delivers fewer
/// threads, one thread runs several t values.
///
/// Lock discipline: team bodies are lock-free by design — every kernel and
/// scratch pool (FrontierPool, Brandes SourceScratch, per-thread prepare
/// buffers) hands each thread a disjoint slot indexed by t, and cross-slot
/// reads happen only after the join.  There is deliberately no sync::Mutex
/// anywhere on a kernel path; a team body that wants one is a design smell
/// (see docs/CORRECTNESS.md "Lock catalog & capability annotations").
/// Synchronization inside a team is limited to std::atomic (the dynamic
/// scheduler's cursor, CAS accumulation under the `reduction-note` lint).
template <typename F>
void run_team(int nt, F&& body) {
  if (nt <= 1) {
    for (int t = 0; t < nt; ++t) body(t);
    return;
  }
#if defined(SNAP_TSAN)
  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(nt) - 1);
  for (int t = 1; t < nt; ++t) team.emplace_back([&body, t] { body(t); });
  body(0);
  for (auto& th : team) th.join();
#else
#pragma omp parallel num_threads(nt)
  {
    const int delivered = omp_get_num_threads();
    for (int t = omp_get_thread_num(); t < nt; t += delivered) body(t);
  }
#endif
}

/// Parallel for over [0, n) with static (contiguous-block) scheduling.
/// `f(i)` must be safe to run concurrently for distinct `i`.
template <typename Index, typename F>
void parallel_for(Index n, F&& f) {
  const int nt = num_threads();
  if (nt <= 1 || n <= 1) {
    for (Index i = 0; i < n; ++i) f(i);
    return;
  }
  run_team(nt, [&](int t) {
    const Index lo = n * t / nt;
    const Index hi = n * (t + 1) / nt;
    for (Index i = lo; i < hi; ++i) f(i);
  });
}

/// Parallel for with dynamic (chunked work-stealing) scheduling, for skewed
/// per-iteration work (e.g. iterating over vertices of a power-law graph).
template <typename Index, typename F>
void parallel_for_dynamic(Index n, F&& f, int chunk = 64) {
  const int nt = num_threads();
  if (nt <= 1 || n <= static_cast<Index>(chunk)) {
    for (Index i = 0; i < n; ++i) f(i);
    return;
  }
  std::atomic<Index> next{0};
  run_team(nt, [&](int) {
    for (;;) {
      const Index lo =
          next.fetch_add(static_cast<Index>(chunk), std::memory_order_relaxed);
      if (lo >= n) break;
      const Index hi = std::min(n, lo + static_cast<Index>(chunk));
      for (Index i = lo; i < hi; ++i) f(i);
    }
  });
}

/// Parallel sum-reduction of f(i) over [0, n).  Per-thread partials are
/// combined in thread order, so the result is deterministic even for
/// floating-point T.
template <typename T, typename Index, typename F>
T parallel_reduce_sum(Index n, F&& f) {
  const int nt = num_threads();
  if (nt <= 1 || n <= 1) {
    T total{};
    for (Index i = 0; i < n; ++i) total += f(i);
    return total;
  }
  std::vector<T> partial(static_cast<std::size_t>(nt), T{});
  run_team(nt, [&](int t) {
    const Index lo = n * t / nt;
    const Index hi = n * (t + 1) / nt;
    T acc{};
    for (Index i = lo; i < hi; ++i) acc += f(i);
    partial[static_cast<std::size_t>(t)] = acc;
  });
  T total{};
  for (const T& p : partial) total += p;
  return total;
}

/// Exclusive prefix sum of `in` into `out` (out[0] = 0, out[i] = sum in[0..i)).
/// `out` must have size n + 1; out[n] receives the grand total.
/// Runs a two-pass blocked scan in parallel.
template <typename T>
void exclusive_prefix_sum(const T* in, T* out, std::size_t n) {
  const int nt = std::max(1, num_threads());
  if (n < 4096 || nt == 1) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = acc;
      acc += in[i];
    }
    out[n] = acc;
    return;
  }
  const std::size_t chunk = (n + nt - 1) / nt;
  std::vector<T> block_sum(static_cast<std::size_t>(nt) + 1, T{});
  run_team(nt, [&](int t) {
    const std::size_t lo = std::min(n, chunk * static_cast<std::size_t>(t));
    const std::size_t hi = std::min(n, lo + chunk);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) acc += in[i];
    block_sum[static_cast<std::size_t>(t) + 1] = acc;
  });
  for (int b = 0; b < nt; ++b) block_sum[b + 1] += block_sum[b];
  out[n] = block_sum[static_cast<std::size_t>(nt)];
  run_team(nt, [&](int t) {
    const std::size_t lo = std::min(n, chunk * static_cast<std::size_t>(t));
    const std::size_t hi = std::min(n, lo + chunk);
    T run = block_sum[static_cast<std::size_t>(t)];
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = run;
      run += in[i];
    }
  });
}

template <typename T>
void exclusive_prefix_sum(const std::vector<T>& in, std::vector<T>& out) {
  out.resize(in.size() + 1);
  exclusive_prefix_sum(in.data(), out.data(), in.size());
}

/// Parallel max-reduction of f(i) over [0, n); returns `identity` for n = 0.
/// Per-thread partials are combined in thread order (deterministic).
template <typename T, typename Index, typename F>
T parallel_reduce_max(Index n, F&& f, T identity = T{}) {
  const int nt = num_threads();
  if (nt <= 1 || n <= 1) {
    T best = identity;
    for (Index i = 0; i < n; ++i) best = std::max(best, f(i));
    return best;
  }
  std::vector<T> partial(static_cast<std::size_t>(nt), identity);
  run_team(nt, [&](int t) {
    const Index lo = n * t / nt;
    const Index hi = n * (t + 1) / nt;
    T best = identity;
    for (Index i = lo; i < hi; ++i) best = std::max(best, f(i));
    partial[static_cast<std::size_t>(t)] = best;
  });
  T best = identity;
  for (const T& p : partial) best = std::max(best, p);
  return best;
}

namespace detail {
/// Below this size the sample-sort scaffolding costs more than it saves.
inline constexpr std::size_t kParallelSortCutoff = 1 << 14;
}  // namespace detail

/// Parallel sample sort.  Falls back to std::sort for small inputs or one
/// thread.  Not stable: like std::sort, elements comparing equal end up in
/// unspecified relative order — callers needing a reproducible layout (the
/// CSR builder's dedupe does) must pass a comparator that is a total order.
/// For a total-order comparator the output is the unique sorted sequence and
/// therefore identical at every thread count.
///
/// Pipeline (§3-style prefix-sum orchestration, same shape as the CSR build):
/// deterministic oversample -> splitters -> per-thread bucket histograms ->
/// serial scan over the nt x nb histogram matrix -> scatter into bucket
/// slices -> independent per-bucket std::sort with dynamic scheduling (a few
/// buckets per thread absorb power-law key skew).
template <typename RandomIt, typename Compare>
void parallel_sort(RandomIt first, RandomIt last, Compare comp) {
  using T = typename std::iterator_traits<RandomIt>::value_type;
  const std::size_t n = static_cast<std::size_t>(last - first);
  const int nt = num_threads();
  if (nt <= 1 || n < detail::kParallelSortCutoff) {
    std::sort(first, last, comp);
    return;
  }
  // A few buckets per thread so the final per-bucket sorts load-balance even
  // when the key distribution is skewed; capped so every bucket still has
  // a few thousand expected elements.
  const int nb = std::max(
      2, std::min(nt * 4, static_cast<int>(n / (detail::kParallelSortCutoff /
                                                4))));
  // Deterministic oversample: evenly spaced elements (no RNG, so the
  // splitters — and with a total-order comparator the full output — are a
  // pure function of the input).
  const std::size_t oversample = 32;
  const std::size_t s = static_cast<std::size_t>(nb) * oversample;
  std::vector<T> sample(s);
  for (std::size_t i = 0; i < s; ++i) sample[i] = first[i * n / s];
  std::sort(sample.begin(), sample.end(), comp);
  std::vector<T> splitters(static_cast<std::size_t>(nb) - 1);
  for (int j = 1; j < nb; ++j)
    splitters[static_cast<std::size_t>(j) - 1] =
        sample[static_cast<std::size_t>(j) * s / static_cast<std::size_t>(nb)];

  auto bucket_of = [&](const T& x) {
    return static_cast<std::size_t>(
        std::upper_bound(splitters.begin(), splitters.end(), x, comp) -
        splitters.begin());
  };

  // Pass 1: per-thread bucket histograms over contiguous input blocks.
  std::vector<std::size_t> counts(static_cast<std::size_t>(nt) *
                                      static_cast<std::size_t>(nb),
                                  0);
  run_team(nt, [&](int t) {
    const std::size_t lo = n * static_cast<std::size_t>(t) /
                           static_cast<std::size_t>(nt);
    const std::size_t hi = n * (static_cast<std::size_t>(t) + 1) /
                           static_cast<std::size_t>(nt);
    std::size_t* c =
        counts.data() + static_cast<std::size_t>(t) * static_cast<std::size_t>(nb);
    for (std::size_t i = lo; i < hi; ++i) ++c[bucket_of(first[i])];
  });

  // Scan the histogram matrix bucket-major: write_pos[t][b] is where thread
  // t's slice of bucket b starts; bucket_begin[b] bounds each bucket.
  std::vector<std::size_t> write_pos(counts.size());
  std::vector<std::size_t> bucket_begin(static_cast<std::size_t>(nb) + 1);
  std::size_t run = 0;
  for (int b = 0; b < nb; ++b) {
    bucket_begin[static_cast<std::size_t>(b)] = run;
    for (int t = 0; t < nt; ++t) {
      const std::size_t idx = static_cast<std::size_t>(t) *
                                  static_cast<std::size_t>(nb) +
                              static_cast<std::size_t>(b);
      write_pos[idx] = run;
      run += counts[idx];
    }
  }
  bucket_begin[static_cast<std::size_t>(nb)] = run;

  // Pass 2: scatter into bucket slices (threads own disjoint output ranges).
  std::vector<T> tmp(n);
  run_team(nt, [&](int t) {
    const std::size_t lo = n * static_cast<std::size_t>(t) /
                           static_cast<std::size_t>(nt);
    const std::size_t hi = n * (static_cast<std::size_t>(t) + 1) /
                           static_cast<std::size_t>(nt);
    std::size_t* pos = write_pos.data() +
                       static_cast<std::size_t>(t) * static_cast<std::size_t>(nb);
    for (std::size_t i = lo; i < hi; ++i)
      tmp[pos[bucket_of(first[i])]++] = std::move(first[i]);
  });

  // Pass 3: sort each bucket independently and copy back in place.
  parallel_for_dynamic(
      nb,
      [&](int b) {
        const std::size_t lo = bucket_begin[static_cast<std::size_t>(b)];
        const std::size_t hi = bucket_begin[static_cast<std::size_t>(b) + 1];
        std::sort(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
                  tmp.begin() + static_cast<std::ptrdiff_t>(hi), comp);
        std::move(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
                  tmp.begin() + static_cast<std::ptrdiff_t>(hi),
                  first + static_cast<std::ptrdiff_t>(lo));
      },
      /*chunk=*/1);
}

template <typename RandomIt>
void parallel_sort(RandomIt first, RandomIt last) {
  parallel_sort(first, last, std::less<>{});
}

/// Atomically set `target = max(target, value)`; returns true if updated.
template <typename T>
bool atomic_fetch_max(std::atomic<T>& target, T value) {
  T cur = target.load(std::memory_order_relaxed);
  while (cur < value) {
    if (target.compare_exchange_weak(cur, value, std::memory_order_relaxed))
      return true;
  }
  return false;
}

/// Atomically set `target = min(target, value)`; returns true if updated.
template <typename T>
bool atomic_fetch_min(std::atomic<T>& target, T value) {
  T cur = target.load(std::memory_order_relaxed);
  while (value < cur) {
    if (target.compare_exchange_weak(cur, value, std::memory_order_relaxed))
      return true;
  }
  return false;
}

/// Atomic add for doubles (compare-exchange loop; OpenMP atomics are scoped to
/// pragmas, this gives us a composable primitive).
inline void atomic_add(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed)) {
  }
}

/// RAII guard that overrides the SNAP thread count for a scope.
class ThreadScope {
 public:
  explicit ThreadScope(int t) : saved_(num_threads()) { set_num_threads(t); }
  ~ThreadScope() { set_num_threads(saved_); }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int saved_;
};

}  // namespace snap::parallel
