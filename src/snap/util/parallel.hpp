#pragma once

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace snap::parallel {

/// Set the number of OpenMP threads used by subsequent SNAP kernels.
/// Thread count is process-global; the figure benches sweep it from a single
/// process exactly as the paper sweeps 1..32 threads on the T2000.
void set_num_threads(int t);

/// Number of threads SNAP kernels will use.
int num_threads();

/// Maximum hardware concurrency reported by the runtime.
int max_threads();

/// Parallel for over [0, n) with static scheduling.  `f(i)` must be safe to
/// run concurrently for distinct `i`.
template <typename Index, typename F>
void parallel_for(Index n, F&& f) {
#pragma omp parallel for schedule(static)
  for (Index i = 0; i < n; ++i) f(i);
}

/// Parallel for with dynamic scheduling, for skewed per-iteration work
/// (e.g. iterating over vertices of a power-law graph).
template <typename Index, typename F>
void parallel_for_dynamic(Index n, F&& f, int chunk = 64) {
#pragma omp parallel for schedule(dynamic, chunk)
  for (Index i = 0; i < n; ++i) f(i);
}

/// Parallel sum-reduction of f(i) over [0, n).
template <typename T, typename Index, typename F>
T parallel_reduce_sum(Index n, F&& f) {
  T total{};
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (Index i = 0; i < n; ++i) total += f(i);
  return total;
}

/// Exclusive prefix sum of `in` into `out` (out[0] = 0, out[i] = sum in[0..i)).
/// `out` must have size n + 1; out[n] receives the grand total.
/// Runs a two-pass blocked scan in parallel.
template <typename T>
void exclusive_prefix_sum(const T* in, T* out, std::size_t n) {
  const int nt = std::max(1, num_threads());
  if (n < 4096 || nt == 1) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = acc;
      acc += in[i];
    }
    out[n] = acc;
    return;
  }
  std::vector<T> block_sum(static_cast<std::size_t>(nt) + 1, T{});
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    const std::size_t chunk = (n + nt - 1) / nt;
    const std::size_t lo = std::min(n, chunk * static_cast<std::size_t>(t));
    const std::size_t hi = std::min(n, lo + chunk);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) acc += in[i];
    block_sum[static_cast<std::size_t>(t) + 1] = acc;
#pragma omp barrier
#pragma omp single
    {
      for (int b = 0; b < nt; ++b) block_sum[b + 1] += block_sum[b];
      out[n] = block_sum[nt];
    }
    T run = block_sum[t];
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = run;
      run += in[i];
    }
  }
}

template <typename T>
void exclusive_prefix_sum(const std::vector<T>& in, std::vector<T>& out) {
  out.resize(in.size() + 1);
  exclusive_prefix_sum(in.data(), out.data(), in.size());
}

/// Atomically set `target = max(target, value)`; returns true if updated.
template <typename T>
bool atomic_fetch_max(std::atomic<T>& target, T value) {
  T cur = target.load(std::memory_order_relaxed);
  while (cur < value) {
    if (target.compare_exchange_weak(cur, value, std::memory_order_relaxed))
      return true;
  }
  return false;
}

/// Atomically set `target = min(target, value)`; returns true if updated.
template <typename T>
bool atomic_fetch_min(std::atomic<T>& target, T value) {
  T cur = target.load(std::memory_order_relaxed);
  while (value < cur) {
    if (target.compare_exchange_weak(cur, value, std::memory_order_relaxed))
      return true;
  }
  return false;
}

/// Atomic add for doubles (compare-exchange loop; OpenMP atomics are scoped to
/// pragmas, this gives us a composable primitive).
inline void atomic_add(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed)) {
  }
}

/// RAII guard that overrides the SNAP thread count for a scope.
class ThreadScope {
 public:
  explicit ThreadScope(int t) : saved_(num_threads()) { set_num_threads(t); }
  ~ThreadScope() { set_num_threads(saved_); }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int saved_;
};

}  // namespace snap::parallel
