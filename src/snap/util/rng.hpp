#pragma once

#include <cstdint>
#include <limits>

namespace snap {

/// SplitMix64 — tiny, fast, statistically solid PRNG used for seeding and for
/// per-thread deterministic streams.  Every randomized algorithm in SNAP takes
/// an explicit seed so experiments are reproducible.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the modulo bias is negligible for the graph sizes involved.
  std::uint64_t next_bounded(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Derive an independent stream (for per-thread RNGs).
  [[nodiscard]] SplitMix64 fork(std::uint64_t stream) const {
    SplitMix64 r(state_ ^ (0x2545f4914f6cdd1dULL * (stream + 1)));
    r();  // decorrelate
    return r;
  }

 private:
  std::uint64_t state_;
};

}  // namespace snap
