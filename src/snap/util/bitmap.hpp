#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace snap {

/// Fixed-size bitmap with atomic test-and-set, used for lock-free visited
/// tracking in the level-synchronous BFS and related traversal kernels.
class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(std::size_t bits) { resize(bits); }

  /// Size to `bits` and zero the active range.  Storage is kept when the new
  /// size fits the old allocation, so a pooled bitmap (e.g. a BfsEngine's
  /// frontier) can be reset every traversal without reallocating.
  void resize(std::size_t bits) {
    const std::size_t words = (bits + 63) / 64;
    if (words > words_.size())
      words_ = std::vector<std::atomic<std::uint64_t>>(words);
    bits_ = bits;
    clear();
  }

  /// Reset all bits to zero (not thread-safe vs. concurrent set()).
  void clear() {
    const std::size_t words = (bits_ + 63) / 64;
    for (std::size_t i = 0; i < words; ++i)
      words_[i].store(0, std::memory_order_relaxed);
  }

  void swap(AtomicBitmap& other) noexcept {
    std::swap(bits_, other.bits_);
    words_.swap(other.words_);
  }

  [[nodiscard]] std::size_t size() const { return bits_; }

  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1u;
  }

  /// Atomically set bit i; returns true iff this call flipped it 0 -> 1.
  bool test_and_set(std::size_t i) {
    const std::uint64_t mask = 1ULL << (i & 63);
    const std::uint64_t old =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (old & mask) == 0;
  }

  void set(std::size_t i) {
    words_[i >> 6].fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace snap
