#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace snap {

/// Sorted dynamic array: a key-sorted vector with binary-search lookup and
/// shift-based insert/erase.
///
/// This is the representation the paper uses for the rows of the pMA
/// modularity-update matrix ("each row of the matrix [is stored] as a sorted
/// dynamic array so that elements can be identified or inserted in O(log n)
/// time"), and for the sorted adjacency arrays of the dynamic graph.
/// For the short, cache-resident rows typical of sparse small-world matrices
/// the O(size) shift on insert is faster in practice than a pointer structure.
template <typename Key, typename Value>
class SortedDynArray {
 public:
  struct Entry {
    Key key;
    Value value;
  };

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  void reserve(std::size_t n) { data_.reserve(n); }
  void clear() { data_.clear(); }

  /// Pointer to the entry with `key`, or nullptr.
  [[nodiscard]] const Entry* find(Key key) const {
    auto it = lower(key);
    return (it != data_.end() && it->key == key) ? &*it : nullptr;
  }
  [[nodiscard]] Entry* find(Key key) {
    auto it = lower(key);
    return (it != data_.end() && it->key == key) ? &*it : nullptr;
  }

  [[nodiscard]] bool contains(Key key) const { return find(key) != nullptr; }

  /// Insert (key, value), or overwrite the value if key exists.
  /// Returns true iff a new entry was created.
  bool insert_or_assign(Key key, Value value) {
    auto it = lower(key);
    if (it != data_.end() && it->key == key) {
      it->value = value;
      return false;
    }
    data_.insert(it, Entry{key, value});
    return true;
  }

  /// Add `delta` to the value at `key`, inserting `delta` if absent.
  /// Returns a reference to the stored value.
  Value& add(Key key, Value delta) {
    auto it = lower(key);
    if (it != data_.end() && it->key == key) {
      it->value += delta;
      return it->value;
    }
    it = data_.insert(it, Entry{key, delta});
    return it->value;
  }

  /// Append an entry whose key is greater than every stored key — O(1).
  /// Used by merge-joins that produce keys in ascending order.
  void push_back_sorted(Key key, Value value) {
    data_.push_back(Entry{key, value});
  }

  /// Erase `key`; returns true if it was present.
  bool erase(Key key) {
    auto it = lower(key);
    if (it == data_.end() || it->key != key) return false;
    data_.erase(it);
    return true;
  }

  /// Entry with the maximum value (linear scan); nullptr if empty.
  [[nodiscard]] const Entry* max_value_entry() const {
    const Entry* best = nullptr;
    for (const auto& e : data_)
      if (!best || e.value > best->value) best = &e;
    return best;
  }

  // Sorted-order iteration.
  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }
  [[nodiscard]] auto begin() { return data_.begin(); }
  [[nodiscard]] auto end() { return data_.end(); }

 private:
  std::vector<Entry> data_;

  [[nodiscard]] auto lower(Key key) const {
    return std::lower_bound(
        data_.begin(), data_.end(), key,
        [](const Entry& e, Key k) { return e.key < k; });
  }
  [[nodiscard]] auto lower(Key key) {
    return std::lower_bound(
        data_.begin(), data_.end(), key,
        [](const Entry& e, Key k) { return e.key < k; });
  }
};

}  // namespace snap
