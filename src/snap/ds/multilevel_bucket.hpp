#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace snap {

/// Two-level bucket structure over a bounded real value range, supporting
/// insert, erase, and fast max extraction.
///
/// The paper's pMA algorithm keeps each row of the ΔQ matrix in *two*
/// structures: a sorted dynamic array (point lookup) and a "multi-level
/// bucket (to identify the largest element quickly)".  This is that bucket
/// structure: the value range is discretized into 64×64 buckets; a two-level
/// occupancy bitmask locates the highest non-empty bucket in O(1), and the
/// exact maximum is found by scanning only that bucket's (short) entry list.
///
/// Erase takes the value the key was inserted with, so no key→bucket map is
/// needed (the companion sorted array supplies the exact value).
template <typename Key>
class MultiLevelBucket {
 public:
  /// `lo`/`hi` bound the insertable values (ΔQ values lie in [-1, 1]).
  explicit MultiLevelBucket(double lo = -1.0, double hi = 1.0)
      : lo_(lo), scale_(kBuckets / (hi - lo)) {}

  struct Entry {
    Key key;
    double value;
  };

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void insert(Key key, double value) {
    const int b = bucket_of(value);
    if (buckets_.empty()) buckets_.resize(kBuckets);
    buckets_[b].push_back(Entry{key, value});
    top_mask_ |= 1ULL << (b >> 6);
    low_mask_[b >> 6] |= 1ULL << (b & 63);
    ++size_;
  }

  /// Erase the entry (key, value); `value` must equal the inserted value.
  /// Returns true if found.
  bool erase(Key key, double value) {
    if (buckets_.empty()) return false;
    const int b = bucket_of(value);
    auto& vec = buckets_[b];
    for (std::size_t i = 0; i < vec.size(); ++i) {
      if (vec[i].key == key) {
        vec[i] = vec.back();
        vec.pop_back();
        --size_;
        if (vec.empty()) {
          low_mask_[b >> 6] &= ~(1ULL << (b & 63));
          if (low_mask_[b >> 6] == 0) top_mask_ &= ~(1ULL << (b >> 6));
        }
        return true;
      }
    }
    return false;
  }

  /// Entry with the maximum value; valid only if !empty().
  [[nodiscard]] Entry max() const {
    const int t = 63 - __builtin_clzll(top_mask_);
    const int l = 63 - __builtin_clzll(low_mask_[t]);
    const auto& vec = buckets_[(t << 6) | l];
    const Entry* best = &vec[0];
    for (const auto& e : vec)
      if (e.value > best->value) best = &e;
    return *best;
  }

  void clear() {
    buckets_.clear();
    top_mask_ = 0;
    low_mask_.fill(0);
    size_ = 0;
  }

 private:
  static constexpr int kBuckets = 64 * 64;

  [[nodiscard]] int bucket_of(double v) const {
    int b = static_cast<int>((v - lo_) * scale_);
    if (b < 0) b = 0;
    if (b >= kBuckets) b = kBuckets - 1;
    return b;
  }

  double lo_;
  double scale_;
  std::vector<std::vector<Entry>> buckets_;
  std::uint64_t top_mask_ = 0;
  std::array<std::uint64_t, 64> low_mask_{};
  std::size_t size_ = 0;
};

}  // namespace snap
