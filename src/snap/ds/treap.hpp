#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace snap {

/// Randomized search tree (treap) over int64 keys.
///
/// The paper (§3, Data Representation) stores adjacencies of *high-degree*
/// vertices of a dynamic small-world graph in treaps [Seidel & Aragon 96],
/// because they support fast insertion, deletion, search, splitting and
/// joining, plus efficient set operations (union / intersection / difference).
///
/// This is a set treap: duplicate keys are ignored on insert.  Heap priorities
/// are derived from a hash of the key, which makes the structure of a treap a
/// deterministic function of its key set — so split/join/union compose without
/// an external RNG and tests are reproducible.
class Treap {
 public:
  Treap() = default;
  ~Treap();
  Treap(const Treap&) = delete;
  Treap& operator=(const Treap&) = delete;
  Treap(Treap&& other) noexcept : root_(other.root_), size_(other.size_) {
    other.root_ = nullptr;
    other.size_ = 0;
  }
  Treap& operator=(Treap&& other) noexcept;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Insert key; returns true if it was not already present.
  bool insert(std::int64_t key);

  /// Erase key; returns true if it was present.
  bool erase(std::int64_t key);

  [[nodiscard]] bool contains(std::int64_t key) const;

  /// Smallest key >= `key`, or nullopt-like: returns false if none.
  bool lower_bound(std::int64_t key, std::int64_t& out) const;

  /// In-order traversal.
  void for_each(const std::function<void(std::int64_t)>& fn) const;

  /// All keys in ascending order.
  [[nodiscard]] std::vector<std::int64_t> to_vector() const;

  void clear();

  /// Split into keys < pivot (left, kept in *this) and keys >= pivot (returned).
  Treap split(std::int64_t pivot);

  /// Destructive set union: consumes `other`, result in *this.
  void union_with(Treap&& other);

  /// Destructive set intersection with `other` (consumed); result in *this.
  void intersect_with(Treap&& other);

  /// Destructive set difference *this \ other (`other` consumed).
  void difference_with(Treap&& other);

  /// Build from a sorted, deduplicated key range in O(n).
  static Treap from_sorted(const std::vector<std::int64_t>& keys);

  struct Node;  // defined in treap.cpp; public so file-local helpers can use it

 private:
  Node* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace snap
