#pragma once

#include <cstdint>
#include <vector>

#include "snap/debug/fwd.hpp"

namespace snap {

namespace detail {
/// Stateless hash giving each key a pseudo-random heap priority, so a treap's
/// shape depends only on its key set (canonical form — vital for composable
/// split/join/union without shared RNG state).
inline std::uint64_t treap_priority(std::int64_t key) {
  auto z = static_cast<std::uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace detail

/// Randomized search tree (treap) over int64 keys.
///
/// The paper (§3, Data Representation) stores adjacencies of *high-degree*
/// vertices of a dynamic small-world graph in treaps [Seidel & Aragon 96],
/// because they support fast insertion, deletion, search, splitting and
/// joining, plus efficient set operations (union / intersection / difference).
///
/// This is a set treap: duplicate keys are ignored on insert.  Heap priorities
/// are derived from a hash of the key, which makes the structure of a treap a
/// deterministic function of its key set — so split/join/union compose without
/// an external RNG and tests are reproducible.
class Treap {
 public:
  Treap() = default;
  ~Treap();
  Treap(const Treap&) = delete;
  Treap& operator=(const Treap&) = delete;
  Treap(Treap&& other) noexcept : root_(other.root_), size_(other.size_) {
    other.root_ = nullptr;
    other.size_ = 0;
  }
  Treap& operator=(Treap&& other) noexcept;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Insert key; returns true if it was not already present.
  bool insert(std::int64_t key);

  /// Erase key; returns true if it was present.
  bool erase(std::int64_t key);

  [[nodiscard]] bool contains(std::int64_t key) const;

  /// Smallest key >= `key`, or nullopt-like: returns false if none.
  bool lower_bound(std::int64_t key, std::int64_t& out) const;

  /// In-order traversal.  Template visitor — inlines into hot loops (the
  /// dynamic graph's neighbor iteration) with no std::function indirection.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(root_, fn);
  }

  /// All keys in ascending order.
  [[nodiscard]] std::vector<std::int64_t> to_vector() const;

  void clear();

  /// Split into keys < pivot (left, kept in *this) and keys >= pivot (returned).
  Treap split(std::int64_t pivot);

  /// Destructive set union: consumes `other`, result in *this.
  void union_with(Treap&& other);

  /// Destructive set intersection with `other` (consumed); result in *this.
  void intersect_with(Treap&& other);

  /// Destructive set difference *this \ other (`other` consumed).
  void difference_with(Treap&& other);

  /// Build from a sorted, deduplicated key range in O(n).
  static Treap from_sorted(const std::vector<std::int64_t>& keys);

  /// In the header (rather than treap.cpp) so the template for_each can walk
  /// the tree; treap.cpp's file-local helpers use it too.
  struct Node {
    std::int64_t key;
    std::uint64_t prio;
    Node* left = nullptr;
    Node* right = nullptr;

    explicit Node(std::int64_t k) : key(k), prio(detail::treap_priority(k)) {}
  };

 private:
  // Validators (and their mutation tests) walk the raw tree.
  friend struct debug::Access;

  template <typename Fn>
  static void walk(const Node* t, Fn& fn) {
    if (!t) return;
    walk(t->left, fn);
    fn(t->key);
    walk(t->right, fn);
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace snap
