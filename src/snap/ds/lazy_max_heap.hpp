#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace snap {

/// Max-heap with lazy invalidation, used as the global heap `H` of the pMA
/// algorithm (Algorithm 2): it holds one candidate (value, id) per community
/// row; rows re-push when their maximum changes, and stale entries are
/// skipped at pop time by comparing against a caller-maintained stamp.
template <typename Id>
class LazyMaxHeap {
 public:
  struct Entry {
    double value;
    Id id;
    std::uint64_t stamp;
    bool operator<(const Entry& o) const { return value < o.value; }
  };

  void push(Id id, double value, std::uint64_t stamp) {
    heap_.push(Entry{value, id, stamp});
  }

  /// Pop the max entry whose stamp matches `current_stamp(id)`.
  /// Returns false if the heap ran out of valid entries.
  template <typename StampFn>
  bool pop_valid(StampFn&& current_stamp, Entry& out) {
    while (!heap_.empty()) {
      Entry top = heap_.top();
      heap_.pop();
      if (current_stamp(top.id) == top.stamp) {
        out = top;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  void clear() { heap_ = {}; }

 private:
  std::priority_queue<Entry> heap_;
};

}  // namespace snap
