#include "snap/ds/treap.hpp"

#include <utility>

namespace snap {

namespace {

using Node = Treap::Node;

void free_tree(Node* t) {
  if (!t) return;
  free_tree(t->left);
  free_tree(t->right);
  delete t;
}

std::size_t count_nodes(const Node* t) {
  return t ? 1 + count_nodes(t->left) + count_nodes(t->right) : 0;
}

/// Split t into keys < pivot and keys >= pivot.
void split_at(Node* t, std::int64_t pivot, Node*& lo, Node*& hi) {
  if (!t) {
    lo = hi = nullptr;
    return;
  }
  if (t->key < pivot) {
    split_at(t->right, pivot, t->right, hi);
    lo = t;
  } else {
    split_at(t->left, pivot, lo, t->left);
    hi = t;
  }
}

/// Join: all keys of a < all keys of b.
Node* join(Node* a, Node* b) {
  if (!a) return b;
  if (!b) return a;
  if (a->prio > b->prio) {
    a->right = join(a->right, b);
    return a;
  }
  b->left = join(a, b->left);
  return b;
}

Node* insert_node(Node* t, Node* nu, bool& inserted) {
  if (!t) {
    inserted = true;
    return nu;
  }
  if (nu->key == t->key) {
    inserted = false;
    delete nu;
    return t;
  }
  if (nu->prio > t->prio) {
    // nu becomes the new root of this subtree.
    split_at(t, nu->key, nu->left, nu->right);
    inserted = true;
    return nu;
  }
  if (nu->key < t->key)
    t->left = insert_node(t->left, nu, inserted);
  else
    t->right = insert_node(t->right, nu, inserted);
  return t;
}

Node* erase_node(Node* t, std::int64_t key, bool& erased) {
  if (!t) {
    erased = false;
    return nullptr;
  }
  if (t->key == key) {
    Node* merged = join(t->left, t->right);
    delete t;
    erased = true;
    return merged;
  }
  if (key < t->key)
    t->left = erase_node(t->left, key, erased);
  else
    t->right = erase_node(t->right, key, erased);
  return t;
}

/// Destructive union of two treaps (Blelloch-style recursive merge).
Node* union_trees(Node* a, Node* b) {
  if (!a) return b;
  if (!b) return a;
  if (a->prio < b->prio) std::swap(a, b);
  // a has the higher priority: split b around a->key and recurse.
  Node *lo = nullptr, *hi = nullptr;
  split_at(b, a->key, lo, hi);
  // Drop a duplicate of a->key from hi if present.
  bool erased = false;
  hi = erase_node(hi, a->key, erased);
  a->left = union_trees(a->left, lo);
  a->right = union_trees(a->right, hi);
  return a;
}

Node* intersect_trees(Node* a, Node* b) {
  if (!a || !b) {
    free_tree(a);
    free_tree(b);
    return nullptr;
  }
  if (a->prio < b->prio) std::swap(a, b);
  Node *lo = nullptr, *hi = nullptr;
  split_at(b, a->key, lo, hi);
  bool present = false;
  hi = erase_node(hi, a->key, present);
  Node* left = intersect_trees(a->left, lo);
  Node* right = intersect_trees(a->right, hi);
  a->left = a->right = nullptr;
  if (present) {
    a->left = left;
    a->right = right;
    return a;
  }
  delete a;
  return join(left, right);
}

/// a \ b, destructive on both.
Node* difference_trees(Node* a, Node* b) {
  if (!a) {
    free_tree(b);
    return nullptr;
  }
  if (!b) return a;
  // Split a around b's root key.
  Node *lo = nullptr, *hi = nullptr;
  split_at(a, b->key, lo, hi);
  bool erased = false;
  hi = erase_node(hi, b->key, erased);
  Node* bl = b->left;
  Node* br = b->right;
  b->left = b->right = nullptr;
  delete b;
  return join(difference_trees(lo, bl), difference_trees(hi, br));
}

Node* build_sorted(const std::vector<std::int64_t>& keys, std::size_t lo,
                   std::size_t hi) {
  // Build by cartesian-tree construction over hash priorities: pick the max
  // priority in [lo, hi) as root.  O(n log n) here (linear scan per level on
  // average); adequate for construction from adjacency snapshots.
  if (lo >= hi) return nullptr;
  std::size_t best = lo;
  std::uint64_t best_p = detail::treap_priority(keys[lo]);
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const std::uint64_t p = detail::treap_priority(keys[i]);
    if (p > best_p) {
      best_p = p;
      best = i;
    }
  }
  auto* root = new Node(keys[best]);
  root->left = build_sorted(keys, lo, best);
  root->right = build_sorted(keys, best + 1, hi);
  return root;
}

}  // namespace

Treap::~Treap() { free_tree(root_); }

Treap& Treap::operator=(Treap&& other) noexcept {
  if (this != &other) {
    free_tree(root_);
    root_ = other.root_;
    size_ = other.size_;
    other.root_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

bool Treap::insert(std::int64_t key) {
  bool inserted = false;
  root_ = insert_node(root_, new Node(key), inserted);
  if (inserted) ++size_;
  return inserted;
}

bool Treap::erase(std::int64_t key) {
  bool erased = false;
  root_ = erase_node(root_, key, erased);
  if (erased) --size_;
  return erased;
}

bool Treap::contains(std::int64_t key) const {
  const Node* t = root_;
  while (t) {
    if (key == t->key) return true;
    t = key < t->key ? t->left : t->right;
  }
  return false;
}

bool Treap::lower_bound(std::int64_t key, std::int64_t& out) const {
  const Node* t = root_;
  bool found = false;
  while (t) {
    if (t->key >= key) {
      out = t->key;
      found = true;
      t = t->left;
    } else {
      t = t->right;
    }
  }
  return found;
}

std::vector<std::int64_t> Treap::to_vector() const {
  std::vector<std::int64_t> out;
  out.reserve(size_);
  for_each([&](std::int64_t k) { out.push_back(k); });
  return out;
}

void Treap::clear() {
  free_tree(root_);
  root_ = nullptr;
  size_ = 0;
}

Treap Treap::split(std::int64_t pivot) {
  Node *lo = nullptr, *hi = nullptr;
  split_at(root_, pivot, lo, hi);
  root_ = lo;
  Treap rest;
  rest.root_ = hi;
  rest.size_ = count_nodes(hi);
  size_ -= rest.size_;
  return rest;
}

void Treap::union_with(Treap&& other) {
  root_ = union_trees(root_, other.root_);
  other.root_ = nullptr;
  other.size_ = 0;
  size_ = count_nodes(root_);
}

void Treap::intersect_with(Treap&& other) {
  root_ = intersect_trees(root_, other.root_);
  other.root_ = nullptr;
  other.size_ = 0;
  size_ = count_nodes(root_);
}

void Treap::difference_with(Treap&& other) {
  root_ = difference_trees(root_, other.root_);
  other.root_ = nullptr;
  other.size_ = 0;
  size_ = count_nodes(root_);
}

Treap Treap::from_sorted(const std::vector<std::int64_t>& keys) {
  Treap t;
  t.root_ = build_sorted(keys, 0, keys.size());
  t.size_ = keys.size();
  return t;
}

}  // namespace snap
