#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "snap/debug/fwd.hpp"

namespace snap {

/// Disjoint-set forest with path-halving and union-by-size.
/// Used by Borůvka MST, dendrogram replay, and the partitioner's coarsening.
class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(std::size_t n) { reset(n); }

  void reset(std::size_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), std::int64_t{0});
    size_.assign(n, 1);
    num_sets_ = n;
  }

  /// Extend to n elements, keeping existing sets; new elements are
  /// singletons.  Lets streaming consumers absorb vertex growth without a
  /// reset (a reset would forget every union performed so far).
  void grow(std::size_t n) {
    const std::size_t old = parent_.size();
    if (n <= old) return;
    parent_.resize(n);
    std::iota(parent_.begin() + static_cast<std::ptrdiff_t>(old),
              parent_.end(), static_cast<std::int64_t>(old));
    size_.resize(n, 1);
    num_sets_ += n - old;
  }

  [[nodiscard]] std::size_t size() const { return parent_.size(); }
  [[nodiscard]] std::size_t num_sets() const { return num_sets_; }

  std::int64_t find(std::int64_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merge the sets containing a and b; returns false if already one set.
  bool unite(std::int64_t a, std::int64_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --num_sets_;
    return true;
  }

  /// Root lookup without path compression — safe to call concurrently from
  /// many threads as long as no thread calls unite()/find() meanwhile.
  [[nodiscard]] std::int64_t find_no_compress(std::int64_t x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  [[nodiscard]] bool connected(std::int64_t a, std::int64_t b) {
    return find(a) == find(b);
  }

  /// Size of the set containing x.
  std::int64_t set_size(std::int64_t x) { return size_[find(x)]; }

 private:
  // Validators (and their mutation tests) read the raw forest arrays.
  friend struct debug::Access;

  std::vector<std::int64_t> parent_;
  std::vector<std::int64_t> size_;
  std::size_t num_sets_ = 0;
};

}  // namespace snap
