#include "snap/ds/dendrogram.hpp"

#include "snap/ds/union_find.hpp"

namespace snap {

std::vector<double> MergeDendrogram::modularity_trace() const {
  std::vector<double> q;
  q.reserve(merges_.size());
  for (const auto& m : merges_) q.push_back(m.modularity);
  return q;
}

std::int64_t MergeDendrogram::best_step() const {
  std::int64_t best = -1;
  double best_q = baseline_;  // the initial clustering competes too
  for (std::size_t i = 0; i < merges_.size(); ++i) {
    if (merges_[i].modularity > best_q) {
      best = static_cast<std::int64_t>(i);
      best_q = merges_[i].modularity;
    }
  }
  return best;
}

std::vector<std::int64_t> MergeDendrogram::cut_at(std::int64_t steps) const {
  UnionFind uf(static_cast<std::size_t>(n_));
  for (std::int64_t i = 0; i < steps && i < std::ssize(merges_); ++i)
    uf.unite(merges_[i].a, merges_[i].b);
  // Renumber roots to dense 0..k-1 ids.
  std::vector<std::int64_t> membership(n_, -1);
  std::vector<std::int64_t> root_id(n_, -1);
  std::int64_t next = 0;
  for (std::int64_t v = 0; v < n_; ++v) {
    const std::int64_t r = uf.find(v);
    if (root_id[r] < 0) root_id[r] = next++;
    membership[v] = root_id[r];
  }
  return membership;
}

std::vector<std::int64_t> MergeDendrogram::cut_at_best() const {
  return cut_at(best_step() + 1);
}

}  // namespace snap
