#pragma once

#include <cstdint>
#include <vector>

namespace snap {

/// Dendrogram for *agglomerative* clustering (pMA, pLA top-level pass).
///
/// Leaves are the n input vertices; each merge step joins two current
/// clusters and records the modularity after the merge.  `cut_at_best()`
/// replays the merge sequence up to the step with the highest recorded
/// modularity and returns the induced membership vector — exactly the
/// "inspect the dendrogram, set C to the clustering with the highest
/// modularity score" step of Algorithms 1–2.
class MergeDendrogram {
 public:
  MergeDendrogram() = default;
  explicit MergeDendrogram(std::int64_t n_leaves) : n_(n_leaves) {}

  struct Merge {
    std::int64_t a;       ///< representative vertex of the first cluster
    std::int64_t b;       ///< representative vertex of the second cluster
    double modularity;    ///< modularity of the clustering after this merge
  };

  void record_merge(std::int64_t a, std::int64_t b, double modularity) {
    merges_.push_back(Merge{a, b, modularity});
  }

  /// Modularity of the initial (pre-merge) clustering, so `best_step()` can
  /// return -1 when no merge improves on it.  Must be on the same scale as
  /// the values passed to record_merge.
  void set_baseline(double q0) { baseline_ = q0; }
  [[nodiscard]] double baseline() const { return baseline_; }

  [[nodiscard]] std::int64_t n_leaves() const { return n_; }
  [[nodiscard]] const std::vector<Merge>& merges() const { return merges_; }

  /// Modularity trace (one value per merge step).
  [[nodiscard]] std::vector<double> modularity_trace() const;

  /// Index (into merges()) of the step with maximal modularity; -1 if the
  /// best clustering is the initial all-singletons state.
  [[nodiscard]] std::int64_t best_step() const;

  /// Membership vector of the best-modularity clustering, with community ids
  /// renumbered to 0..k-1.
  [[nodiscard]] std::vector<std::int64_t> cut_at_best() const;

  /// Membership after replaying merges [0, steps).
  [[nodiscard]] std::vector<std::int64_t> cut_at(std::int64_t steps) const;

 private:
  std::int64_t n_ = 0;
  double baseline_ = 0.0;
  std::vector<Merge> merges_;
};

/// Trace for *divisive* clustering (GN, pBD): one entry per edge removal,
/// recording the resulting cluster count and modularity, plus a snapshot of
/// the best clustering seen (divisive state is cheap to snapshot since the
/// driver already maintains a membership array).
class DivisiveTrace {
 public:
  struct Step {
    std::int64_t removed_u, removed_v;  ///< endpoints of the deleted edge
    std::int64_t num_clusters;
    double modularity;
  };

  void record(std::int64_t u, std::int64_t v, std::int64_t k, double q) {
    steps_.push_back(Step{u, v, k, q});
  }

  /// Offer a candidate best clustering; keeps it if q improves on the best.
  void offer_best(double q, const std::vector<std::int64_t>& membership) {
    if (best_membership_.empty() || q > best_q_) {
      best_q_ = q;
      best_membership_ = membership;
    }
  }

  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }
  [[nodiscard]] double best_modularity() const { return best_q_; }
  [[nodiscard]] const std::vector<std::int64_t>& best_membership() const {
    return best_membership_;
  }

 private:
  std::vector<Step> steps_;
  double best_q_ = -1.0;
  std::vector<std::int64_t> best_membership_;
};

}  // namespace snap
