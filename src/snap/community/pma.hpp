#pragma once

#include "snap/community/clustering.hpp"
#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Parameters of pMA (Algorithm 2).
struct PMAParams {
  /// Stop early once this many communities remain (0 = merge to one
  /// community per component, the full `while nC > 1` loop).
  vid_t target_clusters = 0;
};

/// pMA: modularity-maximizing greedy agglomeration (Algorithm 2) — the CNM
/// optimization re-engineered on SNAP data structures.  Each community row of
/// the ΔQ update matrix is held twice: in a sorted dynamic array (O(log n)
/// point lookup / insert) and in a multilevel bucket (O(1) row maximum); a
/// global lazy max-heap tracks the best pair overall.  The row merge and the
/// neighbor-row updates of every iteration are parallelized.
/// Requires an undirected graph.
CommunityResult pma(const CSRGraph& g, const PMAParams& params = {});

}  // namespace snap
