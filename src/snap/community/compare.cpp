#include "snap/community/compare.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

namespace snap {

namespace {

/// Contingency statistics between two labelings.
struct Contingency {
  std::map<vid_t, std::int64_t> size_a, size_b;
  std::map<std::pair<vid_t, vid_t>, std::int64_t> joint;
  std::int64_t n = 0;

  Contingency(const std::vector<vid_t>& a, const std::vector<vid_t>& b) {
    if (a.size() != b.size())
      throw std::invalid_argument("clustering size mismatch");
    n = static_cast<std::int64_t>(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ++size_a[a[i]];
      ++size_b[b[i]];
      ++joint[{a[i], b[i]}];
    }
  }
};

double choose2(std::int64_t x) {
  return 0.5 * static_cast<double>(x) * static_cast<double>(x - 1);
}

}  // namespace

double rand_index(const std::vector<vid_t>& a, const std::vector<vid_t>& b) {
  const Contingency c(a, b);
  if (c.n < 2) return 1.0;
  // pairs together in both = Σ C(n_ij, 2); use inclusion–exclusion for the
  // "apart in both" count.
  double both = 0, in_a = 0, in_b = 0;
  for (const auto& [key, cnt] : c.joint) both += choose2(cnt);
  for (const auto& [l, cnt] : c.size_a) in_a += choose2(cnt);
  for (const auto& [l, cnt] : c.size_b) in_b += choose2(cnt);
  const double total = choose2(c.n);
  const double agree = both + (total - in_a - in_b + both);
  return agree / total;
}

double adjusted_rand_index(const std::vector<vid_t>& a,
                           const std::vector<vid_t>& b) {
  const Contingency c(a, b);
  if (c.n < 2) return 1.0;
  double sum_ij = 0, sum_a = 0, sum_b = 0;
  for (const auto& [key, cnt] : c.joint) sum_ij += choose2(cnt);
  for (const auto& [l, cnt] : c.size_a) sum_a += choose2(cnt);
  for (const auto& [l, cnt] : c.size_b) sum_b += choose2(cnt);
  const double total = choose2(c.n);
  const double expected = sum_a * sum_b / total;
  const double max_index = 0.5 * (sum_a + sum_b);
  const double denom = max_index - expected;
  if (std::abs(denom) < 1e-300) return 1.0;  // both trivial partitions
  return (sum_ij - expected) / denom;
}

double normalized_mutual_information(const std::vector<vid_t>& a,
                                     const std::vector<vid_t>& b) {
  const Contingency c(a, b);
  if (c.n == 0) return 1.0;
  const double n = static_cast<double>(c.n);
  double mi = 0, ha = 0, hb = 0;
  for (const auto& [key, cnt] : c.joint) {
    const double p = static_cast<double>(cnt) / n;
    const double pa = static_cast<double>(c.size_a.at(key.first)) / n;
    const double pb = static_cast<double>(c.size_b.at(key.second)) / n;
    mi += p * std::log(p / (pa * pb));
  }
  for (const auto& [l, cnt] : c.size_a) {
    const double p = static_cast<double>(cnt) / n;
    ha -= p * std::log(p);
  }
  for (const auto& [l, cnt] : c.size_b) {
    const double p = static_cast<double>(cnt) / n;
    hb -= p * std::log(p);
  }
  const double denom = 0.5 * (ha + hb);
  if (denom < 1e-300) return 1.0;  // both single-cluster partitions
  return mi / denom;
}

}  // namespace snap
