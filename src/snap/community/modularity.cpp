#include "snap/community/modularity.hpp"

#include <algorithm>

#include "snap/util/parallel.hpp"

namespace snap {

Clustering normalize_labels(const std::vector<vid_t>& labels) {
  Clustering c;
  c.membership.resize(labels.size());
  std::vector<vid_t> dense;
  const vid_t max_label =
      labels.empty() ? -1 : *std::max_element(labels.begin(), labels.end());
  dense.assign(static_cast<std::size_t>(max_label) + 1, kInvalidVid);
  vid_t next = 0;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    vid_t& d = dense[static_cast<std::size_t>(labels[v])];
    if (d == kInvalidVid) d = next++;
    c.membership[v] = d;
  }
  c.num_clusters = next;
  return c;
}

namespace {

template <typename Alive>
double modularity_impl(const CSRGraph& g, const std::vector<vid_t>& membership,
                       Alive&& alive, bool force_serial = false) {
  const eid_t m = g.num_edges();
  const auto& edges = g.edges();

  // Total weight and per-cluster accumulators.  Cluster ids may be sparse;
  // size by max label + 1.
  vid_t max_label = 0;
  for (vid_t l : membership) max_label = std::max(max_label, l);
  std::vector<double> intra(static_cast<std::size_t>(max_label) + 1, 0.0);
  std::vector<double> deg(static_cast<std::size_t>(max_label) + 1, 0.0);

  double total_w = 0;
  const int nt = parallel::num_threads();
  if (!force_serial && nt > 1 && m > 1 << 16) {
    // Parallel accumulation (the O(m)-work modularity kernel of Algorithm 1
    // step 7): per-thread cluster accumulators, reduced at the end.
    std::vector<std::vector<double>> intra_loc(
        static_cast<std::size_t>(nt)),
        deg_loc(static_cast<std::size_t>(nt));
    std::vector<double> w_loc(static_cast<std::size_t>(nt), 0.0);
    parallel::run_team(nt, [&](int ti) {
      const auto t = static_cast<std::size_t>(ti);
      intra_loc[t].assign(intra.size(), 0.0);
      deg_loc[t].assign(deg.size(), 0.0);
      const eid_t lo = m * ti / nt;
      const eid_t hi = m * (ti + 1) / nt;
      for (eid_t e = lo; e < hi; ++e) {
        if (!alive(e)) continue;
        const Edge& ed = edges[static_cast<std::size_t>(e)];
        w_loc[t] += ed.w;
        const auto cu =
            static_cast<std::size_t>(membership[static_cast<std::size_t>(ed.u)]);
        const auto cv =
            static_cast<std::size_t>(membership[static_cast<std::size_t>(ed.v)]);
        deg_loc[t][cu] += ed.w;
        deg_loc[t][cv] += ed.w;
        if (cu == cv) intra_loc[t][cu] += ed.w;
      }
    });
    for (int t = 0; t < nt; ++t) {
      total_w += w_loc[static_cast<std::size_t>(t)];
      for (std::size_t c = 0; c < intra.size(); ++c) {
        intra[c] += intra_loc[static_cast<std::size_t>(t)][c];
        deg[c] += deg_loc[static_cast<std::size_t>(t)][c];
      }
    }
  } else {
    for (eid_t e = 0; e < m; ++e) {
      if (!alive(e)) continue;
      const Edge& ed = edges[static_cast<std::size_t>(e)];
      total_w += ed.w;
      deg[static_cast<std::size_t>(
          membership[static_cast<std::size_t>(ed.u)])] += ed.w;
      deg[static_cast<std::size_t>(
          membership[static_cast<std::size_t>(ed.v)])] += ed.w;
      if (membership[static_cast<std::size_t>(ed.u)] ==
          membership[static_cast<std::size_t>(ed.v)])
        intra[static_cast<std::size_t>(
            membership[static_cast<std::size_t>(ed.u)])] += ed.w;
    }
  }
  if (total_w == 0) return 0;

  double q = 0;
  for (std::size_t c = 0; c < intra.size(); ++c) {
    const double a = deg[c] / (2.0 * total_w);
    q += intra[c] / total_w - a * a;
  }
  return q;
}

}  // namespace

double modularity(const CSRGraph& g, const std::vector<vid_t>& membership) {
  return modularity_impl(g, membership, [](eid_t) { return true; });
}

double modularity_ordered(const CSRGraph& g,
                          const std::vector<vid_t>& membership) {
  return modularity_impl(g, membership, [](eid_t) { return true; },
                         /*force_serial=*/true);
}

double modularity_masked(const CSRGraph& g,
                         const std::vector<vid_t>& membership,
                         const std::vector<std::uint8_t>& edge_alive) {
  return modularity_impl(g, membership, [&](eid_t e) {
    return edge_alive[static_cast<std::size_t>(e)] != 0;
  });
}

}  // namespace snap
