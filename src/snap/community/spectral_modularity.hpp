#pragma once

#include <cstdint>

#include "snap/community/clustering.hpp"
#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Parameters for spectral modularity maximization.
struct SpectralModularityParams {
  int power_iters = 300;        ///< power-iteration budget per split
  double tol = 1e-7;            ///< eigenvector convergence tolerance
  bool fine_tune = true;        ///< greedy sign-flip refinement per split
  vid_t min_community = 2;      ///< don't try to split below this size
  std::uint64_t seed = 1;
};

/// Spectral modularity maximization (Newman, PNAS 2006): recursively split
/// communities along the sign of the leading eigenvector of the (generalized)
/// modularity matrix  B_ij = A_ij − k_i k_j / 2m, stopping when no split
/// increases modularity.
///
/// This is the paper's stated *future work* (§6: "Our current focus is on
/// ... efficient parallel implementations of spectral algorithms that
/// optimize modularity"), implemented here on the SNAP substrate: the
/// matrix–vector product is done implicitly on the CSR graph (B is dense but
/// rank-structured, so Bx costs O(m + n)) and each community's eigensolve
/// runs independently.  Requires an undirected graph.
CommunityResult spectral_modularity(const CSRGraph& g,
                                    const SpectralModularityParams& p = {});

}  // namespace snap
