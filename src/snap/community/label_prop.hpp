#pragma once

#include <vector>

#include "snap/community/clustering.hpp"
#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Which move-phase engine label_propagation() runs (same contract as
/// LouvainPath: kAuto = parallel when the graph is large enough, the
/// explicit values exist for the differential and determinism tests).
enum class LabelPropPath { kAuto, kSerial, kParallel };

/// Parameters of the synchronized label-propagation engine.
struct LabelPropParams {
  LabelPropPath path = LabelPropPath::kAuto;
  /// Cap on sweeps; the run also stops at the first sweep moving no vertex.
  int max_sweeps = 64;
  /// Sub-rounds per sweep, same bucketing scheme as LouvainParams: within a
  /// sub-round every relabel decision reads the frozen label state at
  /// sub-round start, accepted relabels apply in ascending vertex order.
  /// Sub-rounds are what lets synchronized propagation converge at all —
  /// fully synchronous updates oscillate on bipartite structure.
  int num_buckets = 8;
};

/// Result of label propagation: the shared CommunityResult surface (final
/// clustering, modularity via the thread-count-invariant recomputation,
/// iterations = total relabels; the dendrogram stays empty — propagation is
/// not agglomerative) plus convergence information.
struct LabelPropResult {
  CommunityResult community;
  int sweeps = 0;
  /// True iff the final sweep moved no vertex, i.e. the labeling is a
  /// plurality fixed point (see is_plurality_fixed_point); false means the
  /// max_sweeps cap fired first.
  bool converged = false;
};

/// Parallel label propagation (Raghavan-style community detection, the
/// engineering shape of Staudt–Meyerhenke's PLP): every vertex starts in its
/// own community and repeatedly adopts the label holding the maximum total
/// edge weight among its neighbors — strictly heavier than its current
/// label's weight, ties toward the smaller label id.  Bucketed synchronized
/// sweeps make the result a pure function of the graph: bitwise identical
/// at every thread count, and the serial path is the literal reference
/// implementation of the same semantics.  Requires an undirected graph.
LabelPropResult label_propagation(const CSRGraph& g,
                                  const LabelPropParams& params = {});

/// Fixed-point contract of label propagation: for every vertex v, the total
/// neighbor edge weight of v's own label is >= that of every other label
/// (v holds a plurality label).  A converged label_propagation() labeling
/// satisfies this by construction — a vertex seeing a strictly heavier
/// label would have moved.  O(m); serial, for tests and validation.
bool is_plurality_fixed_point(const CSRGraph& g,
                              const std::vector<vid_t>& labels);

}  // namespace snap
