#include "snap/community/pbd.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "snap/community/divisive_util.hpp"
#include "snap/community/modularity.hpp"
#include "snap/debug/validate.hpp"
#include "snap/kernels/biconnected.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"
#include "snap/util/timer.hpp"

namespace snap {

namespace {

/// Reusable scratch for one serial masked Brandes traversal.
struct Scratch {
  std::vector<std::int64_t> dist;
  std::vector<double> sigma;
  std::vector<double> delta;
  std::vector<vid_t> order;

  explicit Scratch(vid_t n)
      : dist(static_cast<std::size_t>(n), -1),
        sigma(static_cast<std::size_t>(n), 0),
        delta(static_cast<std::size_t>(n), 0) {}

  void reset() {
    for (vid_t v : order) {
      dist[static_cast<std::size_t>(v)] = -1;
      sigma[static_cast<std::size_t>(v)] = 0;
      delta[static_cast<std::size_t>(v)] = 0;
    }
    order.clear();
  }
};

/// Serial masked Brandes from `s`, accumulating per-edge dependencies into
/// `edge_acc` (a full-size, caller-owned array).
void brandes_masked(const CSRGraph& g, vid_t s,
                    const std::vector<std::uint8_t>& alive, Scratch& sc,
                    double* edge_acc) {
  sc.reset();
  sc.dist[static_cast<std::size_t>(s)] = 0;
  sc.sigma[static_cast<std::size_t>(s)] = 1;
  sc.order.push_back(s);
  for (std::size_t head = 0; head < sc.order.size(); ++head) {
    const vid_t u = sc.order[head];
    const std::int64_t du = sc.dist[static_cast<std::size_t>(u)];
    const auto nb = g.neighbors(u);
    const auto ids = g.edge_ids(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (!alive[static_cast<std::size_t>(ids[i])]) continue;
      const vid_t v = nb[i];
      if (sc.dist[static_cast<std::size_t>(v)] < 0) {
        sc.dist[static_cast<std::size_t>(v)] = du + 1;
        sc.order.push_back(v);
      }
      if (sc.dist[static_cast<std::size_t>(v)] == du + 1)
        sc.sigma[static_cast<std::size_t>(v)] +=
            sc.sigma[static_cast<std::size_t>(u)];
    }
  }
  for (std::size_t i = sc.order.size(); i-- > 0;) {
    const vid_t w = sc.order[i];
    const std::int64_t dw = sc.dist[static_cast<std::size_t>(w)];
    const double sw = sc.sigma[static_cast<std::size_t>(w)];
    const auto nb = g.neighbors(w);
    const auto ids = g.edge_ids(w);
    for (std::size_t j = 0; j < nb.size(); ++j) {
      if (!alive[static_cast<std::size_t>(ids[j])]) continue;
      const vid_t v = nb[j];
      if (sc.dist[static_cast<std::size_t>(v)] != dw + 1) continue;
      const double c = sw / sc.sigma[static_cast<std::size_t>(v)] *
                       (1.0 + sc.delta[static_cast<std::size_t>(v)]);
      sc.delta[static_cast<std::size_t>(w)] += c;
      edge_acc[static_cast<std::size_t>(ids[j])] += c;
    }
  }
}

/// Working state of one pBD run.
struct PBDState {
  const CSRGraph& g;
  const PBDParams& p;
  std::vector<std::uint8_t> alive;
  std::vector<vid_t> membership;       // current cluster label per vertex
  std::vector<std::vector<vid_t>> comp_vertices;  // per label
  std::vector<double> scores;          // per logical edge
  SplitMix64 rng;

  PBDState(const CSRGraph& graph, const PBDParams& params)
      : g(graph),
        p(params),
        alive(static_cast<std::size_t>(graph.num_edges()), 1),
        scores(static_cast<std::size_t>(graph.num_edges()), 0.0),
        rng(params.seed) {}

  /// Pick traversal sources for a component: all vertices when small enough
  /// for exact scoring, otherwise a uniform sample.
  std::vector<vid_t> pick_sources(const std::vector<vid_t>& verts) {
    const auto csize = static_cast<vid_t>(verts.size());
    if (csize <= p.exact_threshold) return verts;
    const vid_t want = std::min<vid_t>(
        csize, std::max<vid_t>(p.min_samples,
                               static_cast<vid_t>(p.sample_fraction *
                                                  static_cast<double>(csize))));
    std::vector<vid_t> pool = verts;
    for (vid_t k = 0; k < want; ++k) {
      const auto pick =
          k + static_cast<vid_t>(
                  rng.next_bounded(static_cast<std::uint64_t>(csize - k)));
      std::swap(pool[static_cast<std::size_t>(k)],
                pool[static_cast<std::size_t>(pick)]);
    }
    pool.resize(static_cast<std::size_t>(want));
    return pool;
  }

  /// Zero the stored scores of the component's alive edges.
  void zero_component_scores(const std::vector<vid_t>& verts) {
    for (vid_t u : verts) {
      const auto ids = g.edge_ids(u);
      for (eid_t id : ids)
        if (alive[static_cast<std::size_t>(id)])
          scores[static_cast<std::size_t>(id)] = 0;
    }
  }

  /// Scale accumulated scores of the component's alive edges by `f`
  /// (visits each undirected edge once via its lower-endpoint arc).
  void scale_component_scores(const std::vector<vid_t>& verts, double f) {
    for (vid_t u : verts) {
      const auto nb = g.neighbors(u);
      const auto ids = g.edge_ids(u);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (nb[i] < u) continue;
        if (alive[static_cast<std::size_t>(ids[i])])
          scores[static_cast<std::size_t>(ids[i])] *= f;
      }
    }
  }

  /// Re-estimate the edge betweenness scores of one component (step 4 of
  /// Algorithm 1, restricted to the component the last deletion touched).
  /// `serial_inner` forces serial traversals (used when components
  /// themselves are processed in parallel — the coarse-granularity mode).
  void score_component(const std::vector<vid_t>& verts, bool serial_inner,
                       Scratch* reuse = nullptr) {
    if (verts.size() < 2) return;
    const std::vector<vid_t> sources = pick_sources(verts);
    const double scale = 0.5 * static_cast<double>(verts.size()) /
                         static_cast<double>(sources.size());
    zero_component_scores(verts);

    if (serial_inner || parallel::num_threads() == 1) {
      Scratch local_sc(reuse ? 0 : g.num_vertices());
      Scratch& sc = reuse ? *reuse : local_sc;
      for (vid_t s : sources) brandes_masked(g, s, alive, sc, scores.data());
    } else {
      // Fine granularity: sources distributed over threads, per-thread
      // accumulators reduced into the shared score array.
      const int nt = parallel::num_threads();
      std::vector<std::vector<double>> acc(static_cast<std::size_t>(nt));
      const auto num_sources = static_cast<std::int64_t>(sources.size());
      std::atomic<std::int64_t> cursor{0};
      parallel::run_team(nt, [&](int ti) {
        const auto t = static_cast<std::size_t>(ti);
        acc[t].assign(static_cast<std::size_t>(g.num_edges()), 0.0);
        Scratch sc(g.num_vertices());
        for (std::int64_t i;
             (i = cursor.fetch_add(1, std::memory_order_relaxed)) <
             num_sources;) {
          brandes_masked(g, sources[static_cast<std::size_t>(i)], alive, sc,
                         acc[t].data());
        }
      });
      for (vid_t u : verts) {
        const auto nb = g.neighbors(u);
        const auto ids = g.edge_ids(u);
        for (std::size_t i = 0; i < nb.size(); ++i) {
          if (nb[i] < u) continue;
          const auto id = static_cast<std::size_t>(ids[i]);
          if (!alive[id]) continue;
          for (int t = 0; t < nt; ++t)
            scores[id] += acc[static_cast<std::size_t>(t)][id];
        }
      }
    }
    scale_component_scores(verts, scale);
  }

  /// Optional step 1: exact betweenness of every bridge via the bridge
  /// forest — a bridge (u, v) separating s_u vertices from s_v has edge
  /// betweenness exactly s_u * s_v.
  void seed_bridge_scores() {
    const BiconnectedResult bcc = biconnected_components(g);
    const auto bridges = bcc.bridges();
    if (bridges.empty()) return;
    // 2-edge-connected components = components after bridge removal.
    std::vector<std::uint8_t> no_bridges = alive;
    for (eid_t b : bridges) no_bridges[static_cast<std::size_t>(b)] = 0;
    const Components tecc = connected_components_masked(g, no_bridges);
    std::vector<vid_t> node_size(static_cast<std::size_t>(tecc.count), 0);
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      ++node_size[static_cast<std::size_t>(tecc.label[static_cast<std::size_t>(v)])];

    // Bridge forest adjacency: node -> (bridge id, other node).
    std::vector<std::vector<std::pair<eid_t, vid_t>>> fadj(
        static_cast<std::size_t>(tecc.count));
    for (eid_t b : bridges) {
      const Edge e = g.edge(b);
      const vid_t a = tecc.label[static_cast<std::size_t>(e.u)];
      const vid_t c = tecc.label[static_cast<std::size_t>(e.v)];
      fadj[static_cast<std::size_t>(a)].push_back({b, c});
      fadj[static_cast<std::size_t>(c)].push_back({b, a});
    }
    // Iterative DFS per tree computing subtree vertex counts.
    std::vector<std::int64_t> subtree(static_cast<std::size_t>(tecc.count), 0);
    std::vector<vid_t> parent(static_cast<std::size_t>(tecc.count), kInvalidVid);
    std::vector<eid_t> parent_bridge(static_cast<std::size_t>(tecc.count),
                                     kInvalidEid);
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(tecc.count), 0);
    for (vid_t root = 0; root < tecc.count; ++root) {
      if (seen[static_cast<std::size_t>(root)]) continue;
      // Collect the tree in DFS preorder.
      std::vector<vid_t> pre;
      std::vector<vid_t> stack{root};
      seen[static_cast<std::size_t>(root)] = 1;
      std::int64_t tree_total = 0;
      while (!stack.empty()) {
        const vid_t x = stack.back();
        stack.pop_back();
        pre.push_back(x);
        tree_total += node_size[static_cast<std::size_t>(x)];
        for (const auto& [b, y] : fadj[static_cast<std::size_t>(x)]) {
          if (seen[static_cast<std::size_t>(y)]) continue;
          seen[static_cast<std::size_t>(y)] = 1;
          parent[static_cast<std::size_t>(y)] = x;
          parent_bridge[static_cast<std::size_t>(y)] = b;
          stack.push_back(y);
        }
      }
      // Subtree sizes in reverse preorder; bridge score = inside * outside.
      for (std::size_t i = pre.size(); i-- > 0;) {
        const vid_t x = pre[i];
        subtree[static_cast<std::size_t>(x)] +=
            node_size[static_cast<std::size_t>(x)];
        const vid_t px = parent[static_cast<std::size_t>(x)];
        if (px != kInvalidVid)
          subtree[static_cast<std::size_t>(px)] +=
              subtree[static_cast<std::size_t>(x)];
        const eid_t pb = parent_bridge[static_cast<std::size_t>(x)];
        if (pb != kInvalidEid) {
          const std::int64_t inside = subtree[static_cast<std::size_t>(x)];
          scores[static_cast<std::size_t>(pb)] =
              static_cast<double>(inside) *
              static_cast<double>(tree_total - inside);
        }
      }
    }
  }
};

}  // namespace

CommunityResult pbd(const CSRGraph& g, const PBDParams& params) {
  if (g.directed())
    throw std::invalid_argument("pbd requires an undirected graph");
  WallTimer timer;
  const eid_t m = g.num_edges();
  const eid_t max_iter =
      params.stop.max_iterations > 0 ? params.stop.max_iterations : m;

  PBDState st(g, params);
  const Components comps = connected_components(g);
  st.membership = comps.label;
  vid_t num_clusters = comps.count;
  vid_t next_label = num_clusters;
  st.comp_vertices.resize(static_cast<std::size_t>(num_clusters));
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    st.comp_vertices[static_cast<std::size_t>(
        st.membership[static_cast<std::size_t>(v)])]
        .push_back(v);

  // Step 1 (optional): bridge prefilter.  Components containing bridges get
  // their bridge edges scored exactly; components without bridges get an
  // initial sampled estimate.
  std::vector<std::uint8_t> comp_has_bridge(
      static_cast<std::size_t>(num_clusters), 0);
  if (params.bicc_prefilter) {
    st.seed_bridge_scores();
    for (eid_t e = 0; e < m; ++e) {
      if (st.scores[static_cast<std::size_t>(e)] > 0) {
        const Edge ed = g.edge(e);
        comp_has_bridge[static_cast<std::size_t>(
            st.membership[static_cast<std::size_t>(ed.u)])] = 1;
      }
    }
  }
  for (vid_t c = 0; c < num_clusters; ++c) {
    if (!comp_has_bridge[static_cast<std::size_t>(c)])
      st.score_component(st.comp_vertices[static_cast<std::size_t>(c)],
                         /*serial_inner=*/false);
  }

  CommunityResult r;
  r.divisive_trace.offer_best(modularity(g, st.membership), st.membership);

  std::vector<vid_t> dirty;  // labels whose scores must be recomputed
  eid_t since_best = 0;
  vid_t max_comp_size = 0;
  for (const auto& cv : st.comp_vertices)
    max_comp_size = std::max(max_comp_size, static_cast<vid_t>(cv.size()));

  for (eid_t it = 0; it < max_iter; ++it) {
    // Rescore the components touched by the previous deletion.  Once every
    // live component is small (the semi-automatic switch), dirty components
    // are processed concurrently with serial traversals inside.
    const bool coarse = max_comp_size <= params.exact_threshold;
    if (coarse && dirty.size() > 1) {
      const auto num_dirty = static_cast<std::int64_t>(dirty.size());
      std::atomic<std::int64_t> cursor{0};
      parallel::run_team(parallel::num_threads(), [&](int) {
        // Per-thread traversal scratch, reused across components.  Small
        // components are scored exactly (all sources), so this path never
        // touches the shared sampling RNG.
        Scratch sc(g.num_vertices());
        for (std::int64_t i;
             (i = cursor.fetch_add(1, std::memory_order_relaxed)) <
             num_dirty;) {
          st.score_component(
              st.comp_vertices[static_cast<std::size_t>(
                  dirty[static_cast<std::size_t>(i)])],
              /*serial_inner=*/true, &sc);
        }
      });
    } else {
      for (vid_t label : dirty)
        st.score_component(st.comp_vertices[static_cast<std::size_t>(label)],
                           /*serial_inner=*/false);
    }
    dirty.clear();

    // Step 4: highest-scoring alive edge.
    eid_t best = kInvalidEid;
    double best_score = -1;
    for (eid_t e = 0; e < m; ++e) {
      if (st.alive[static_cast<std::size_t>(e)] &&
          st.scores[static_cast<std::size_t>(e)] > best_score) {
        best_score = st.scores[static_cast<std::size_t>(e)];
        best = e;
      }
    }
    if (best == kInvalidEid) break;

    // Step 5: delete; step 6: incremental components + membership update.
    st.alive[static_cast<std::size_t>(best)] = 0;
    const Edge ed = g.edge(best);
    const vid_t old_label = st.membership[static_cast<std::size_t>(ed.u)];
    const auto side = detail::split_after_deletion(g, st.alive, st.membership,
                                                   ed.u, ed.v, next_label);
    if (!side.empty()) {
      // Partition the old component's vertex list.
      auto& old_list =
          st.comp_vertices[static_cast<std::size_t>(old_label)];
      std::vector<vid_t> remain;
      remain.reserve(old_list.size() - side.size());
      for (vid_t v : old_list)
        if (st.membership[static_cast<std::size_t>(v)] == old_label)
          remain.push_back(v);
      old_list.swap(remain);
      st.comp_vertices.push_back(side);
      dirty.push_back(old_label);
      dirty.push_back(next_label);
      ++next_label;
      ++num_clusters;
    } else {
      dirty.push_back(old_label);
    }
    max_comp_size = 0;
    for (const auto& cv : st.comp_vertices)
      max_comp_size = std::max(max_comp_size, static_cast<vid_t>(cv.size()));

    // Step 7: modularity of the current partitioning.
    const double q = modularity(g, st.membership);
    const double prev_best = r.divisive_trace.best_modularity();
    r.divisive_trace.record(ed.u, ed.v, num_clusters, q);
    r.divisive_trace.offer_best(q, st.membership);
    since_best = q > prev_best ? 0 : since_best + 1;
    r.iterations = it + 1;

    if (params.stop.target_clusters > 0 &&
        num_clusters >= params.stop.target_clusters)
      break;
    if (params.stop.stall_iterations > 0 &&
        since_best >= params.stop.stall_iterations)
      break;
  }

  r.clustering = normalize_labels(r.divisive_trace.best_membership());
  r.modularity = r.divisive_trace.best_modularity();
  // Loose tolerance: the traced modularity was summed in original-label
  // order; normalize_labels permutes the per-community accumulation order.
  SNAP_VALIDATE(g, r.clustering.membership, r.modularity, 1e-6);
  r.seconds = timer.elapsed_s();
  return r;
}

}  // namespace snap
