#include "snap/community/pbd.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "snap/centrality/brandes_core.hpp"
#include "snap/community/divisive_util.hpp"
#include "snap/community/modularity.hpp"
#include "snap/debug/validate.hpp"
#include "snap/kernels/biconnected.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"
#include "snap/util/timer.hpp"

namespace snap {

namespace {

/// Working state of one pBD run.  All Brandes traversals go through the
/// shared brandes::ComponentScorer — pBD no longer carries a private copy.
struct PBDState {
  const CSRGraph& g;
  const PBDParams& p;
  std::vector<std::uint8_t> alive;
  std::vector<double> scores;  // per logical edge
  brandes::ComponentScorer scorer;
  SplitMix64 rng;

  PBDState(const CSRGraph& graph, const PBDParams& params)
      : g(graph),
        p(params),
        alive(static_cast<std::size_t>(graph.num_edges()), 1),
        scores(static_cast<std::size_t>(graph.num_edges()), 0.0),
        scorer(graph),
        rng(params.seed) {}

  /// Pick traversal sources for a component: all vertices when small enough
  /// for exact scoring, otherwise a uniform sample.  Only the sampling
  /// branch advances the shared RNG, so components at or below
  /// exact_threshold never perturb the stream.
  std::vector<vid_t> pick_sources(const std::vector<vid_t>& verts) {
    const auto csize = static_cast<vid_t>(verts.size());
    if (csize <= p.exact_threshold) return verts;
    const vid_t want = std::min<vid_t>(
        csize, std::max<vid_t>(p.min_samples,
                               static_cast<vid_t>(p.sample_fraction *
                                                  static_cast<double>(csize))));
    std::vector<vid_t> pool = verts;
    for (vid_t k = 0; k < want; ++k) {
      const auto pick =
          k + static_cast<vid_t>(
                  rng.next_bounded(static_cast<std::uint64_t>(csize - k)));
      std::swap(pool[static_cast<std::size_t>(k)],
                pool[static_cast<std::size_t>(pick)]);
    }
    pool.resize(static_cast<std::size_t>(want));
    return pool;
  }

  /// Re-estimate the edge betweenness scores of one component (step 4 of
  /// Algorithm 1, restricted to the component the last deletion touched).
  /// `serial_slot >= 0` forces one serial pass on that pooled scorer slot —
  /// used when dirty components themselves are processed in parallel (the
  /// coarse-granularity mode); such components are at or below
  /// exact_threshold, so this path never touches the sampling RNG either.
  /// The serial/parallel decision inside `score` depends only on the
  /// component's own size, keeping score(C) a pure function of
  /// (C, alive|C, thread count) in every mode.
  void score_component(const std::vector<vid_t>& verts, int serial_slot) {
    if (verts.size() < 2) return;
    const std::vector<vid_t> sources = pick_sources(verts);
    const double scale = 0.5 * static_cast<double>(verts.size()) /
                         static_cast<double>(sources.size());
    if (serial_slot >= 0) {
      scorer.score_serial(serial_slot, verts, sources, alive, scale, scores);
    } else {
      scorer.score(verts, sources, alive, scale, scores, p.exact_threshold);
    }
  }

  /// Optional step 1: exact betweenness of every bridge via the bridge
  /// forest — a bridge (u, v) separating s_u vertices from s_v has edge
  /// betweenness exactly s_u * s_v.
  void seed_bridge_scores() {
    const BiconnectedResult bcc = biconnected_components(g);
    const auto bridges = bcc.bridges();
    if (bridges.empty()) return;
    // 2-edge-connected components = components after bridge removal.
    std::vector<std::uint8_t> no_bridges = alive;
    for (eid_t b : bridges) no_bridges[static_cast<std::size_t>(b)] = 0;
    const Components tecc = connected_components_masked(g, no_bridges);
    std::vector<vid_t> node_size(static_cast<std::size_t>(tecc.count), 0);
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      ++node_size[static_cast<std::size_t>(tecc.label[static_cast<std::size_t>(v)])];

    // Bridge forest adjacency: node -> (bridge id, other node).
    std::vector<std::vector<std::pair<eid_t, vid_t>>> fadj(
        static_cast<std::size_t>(tecc.count));
    for (eid_t b : bridges) {
      const Edge e = g.edge(b);
      const vid_t a = tecc.label[static_cast<std::size_t>(e.u)];
      const vid_t c = tecc.label[static_cast<std::size_t>(e.v)];
      fadj[static_cast<std::size_t>(a)].push_back({b, c});
      fadj[static_cast<std::size_t>(c)].push_back({b, a});
    }
    // Iterative DFS per tree computing subtree vertex counts.
    std::vector<std::int64_t> subtree(static_cast<std::size_t>(tecc.count), 0);
    std::vector<vid_t> parent(static_cast<std::size_t>(tecc.count), kInvalidVid);
    std::vector<eid_t> parent_bridge(static_cast<std::size_t>(tecc.count),
                                     kInvalidEid);
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(tecc.count), 0);
    for (vid_t root = 0; root < tecc.count; ++root) {
      if (seen[static_cast<std::size_t>(root)]) continue;
      // Collect the tree in DFS preorder.
      std::vector<vid_t> pre;
      std::vector<vid_t> stack{root};
      seen[static_cast<std::size_t>(root)] = 1;
      std::int64_t tree_total = 0;
      while (!stack.empty()) {
        const vid_t x = stack.back();
        stack.pop_back();
        pre.push_back(x);
        tree_total += node_size[static_cast<std::size_t>(x)];
        for (const auto& [b, y] : fadj[static_cast<std::size_t>(x)]) {
          if (seen[static_cast<std::size_t>(y)]) continue;
          seen[static_cast<std::size_t>(y)] = 1;
          parent[static_cast<std::size_t>(y)] = x;
          parent_bridge[static_cast<std::size_t>(y)] = b;
          stack.push_back(y);
        }
      }
      // Subtree sizes in reverse preorder; bridge score = inside * outside.
      for (std::size_t i = pre.size(); i-- > 0;) {
        const vid_t x = pre[i];
        subtree[static_cast<std::size_t>(x)] +=
            node_size[static_cast<std::size_t>(x)];
        const vid_t px = parent[static_cast<std::size_t>(x)];
        if (px != kInvalidVid)
          subtree[static_cast<std::size_t>(px)] +=
              subtree[static_cast<std::size_t>(x)];
        const eid_t pb = parent_bridge[static_cast<std::size_t>(x)];
        if (pb != kInvalidEid) {
          const std::int64_t inside = subtree[static_cast<std::size_t>(x)];
          scores[static_cast<std::size_t>(pb)] =
              static_cast<double>(inside) *
              static_cast<double>(tree_total - inside);
        }
      }
    }
  }
};

}  // namespace

CommunityResult pbd(const CSRGraph& g, const PBDParams& params) {
  if (g.directed())
    throw std::invalid_argument("pbd requires an undirected graph");
  WallTimer timer;
  const eid_t m = g.num_edges();
  const eid_t max_iter =
      params.stop.max_iterations > 0 ? params.stop.max_iterations : m;

  PBDState st(g, params);
  detail::ComponentTracker tracker(g, connected_components(g));
  vid_t num_clusters = tracker.num_labels();

  // Step 1 (optional): bridge prefilter.  Components containing bridges get
  // their bridge edges scored exactly; components without bridges get an
  // initial sampled estimate.
  std::vector<std::uint8_t> comp_has_bridge(
      static_cast<std::size_t>(num_clusters), 0);
  if (params.bicc_prefilter) {
    st.seed_bridge_scores();
    for (eid_t e = 0; e < m; ++e) {
      if (st.scores[static_cast<std::size_t>(e)] > 0) {
        const Edge ed = g.edge(e);
        comp_has_bridge[static_cast<std::size_t>(
            tracker.membership()[static_cast<std::size_t>(ed.u)])] = 1;
      }
    }
  }
  for (vid_t c = 0; c < num_clusters; ++c) {
    if (!comp_has_bridge[static_cast<std::size_t>(c)])
      st.score_component(tracker.vertices_of(c), /*serial_slot=*/-1);
  }

  CommunityResult r;
  r.divisive_trace.offer_best(modularity(g, tracker.membership()),
                              tracker.membership());

  std::vector<vid_t> dirty;  // labels whose scores must be recomputed
  eid_t since_best = 0;

  for (eid_t it = 0; it < max_iter; ++it) {
    // Rescore the components touched by the previous deletion.  Once every
    // live component is small (the semi-automatic switch), dirty components
    // are processed concurrently with serial traversals inside; each such
    // component's scores come out identical to the sequential path because
    // the scoring granularity depends only on the component itself.
    const bool coarse = tracker.max_component_size() <= params.exact_threshold;
    if (coarse && dirty.size() > 1) {
      const int nt = parallel::num_threads();
      st.scorer.reserve(nt);  // slot allocation is not thread-safe
      const auto num_dirty = static_cast<std::int64_t>(dirty.size());
      std::atomic<std::int64_t> cursor{0};
      parallel::run_team(nt, [&](int t) {
        for (std::int64_t i;
             (i = cursor.fetch_add(1, std::memory_order_relaxed)) <
             num_dirty;) {
          st.score_component(
              tracker.vertices_of(dirty[static_cast<std::size_t>(i)]),
              /*serial_slot=*/t);
        }
      });
    } else {
      for (vid_t label : dirty)
        st.score_component(tracker.vertices_of(label), /*serial_slot=*/-1);
    }
    dirty.clear();

    // Step 4: highest-scoring alive edge.
    eid_t best = kInvalidEid;
    double best_score = -1;
    for (eid_t e = 0; e < m; ++e) {
      if (st.alive[static_cast<std::size_t>(e)] &&
          st.scores[static_cast<std::size_t>(e)] > best_score) {
        best_score = st.scores[static_cast<std::size_t>(e)];
        best = e;
      }
    }
    if (best == kInvalidEid) break;

    // Step 5: delete; step 6: incremental components + membership update.
    st.alive[static_cast<std::size_t>(best)] = 0;
    const Edge ed = g.edge(best);
    const auto effect = tracker.apply_deletion(g, st.alive, ed.u, ed.v);
    if (effect.split()) ++num_clusters;
    if (params.rescore_all) {
      // Reference mode: mark every live component dirty (ascending label
      // order, the order the dirty loop preserves).
      for (vid_t c = 0; c < tracker.num_labels(); ++c)
        if (tracker.vertices_of(c).size() >= 2) dirty.push_back(c);
    } else {
      dirty.push_back(effect.first);
      if (effect.split()) dirty.push_back(effect.second);
    }

    // Step 7: modularity of the current partitioning.
    const double q = modularity(g, tracker.membership());
    const double prev_best = r.divisive_trace.best_modularity();
    r.divisive_trace.record(ed.u, ed.v, num_clusters, q);
    r.divisive_trace.offer_best(q, tracker.membership());
    since_best = q > prev_best ? 0 : since_best + 1;
    r.iterations = it + 1;

    if (params.stop.target_clusters > 0 &&
        num_clusters >= params.stop.target_clusters)
      break;
    if (params.stop.stall_iterations > 0 &&
        since_best >= params.stop.stall_iterations)
      break;
  }

  r.clustering = normalize_labels(r.divisive_trace.best_membership());
  r.modularity = r.divisive_trace.best_modularity();
  // Loose tolerance: the traced modularity was summed in original-label
  // order; normalize_labels permutes the per-community accumulation order.
  SNAP_VALIDATE(g, r.clustering.membership, r.modularity, 1e-6);
  r.seconds = timer.elapsed_s();
  return r;
}

}  // namespace snap
