#pragma once

#include <cstdint>

#include "snap/community/clustering.hpp"
#include "snap/community/gn.hpp"
#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Parameters of pBD (Algorithm 1), the approximate-betweenness divisive
/// clustering algorithm.
struct PBDParams {
  DivisiveParams stop;

  /// Fraction of a component's vertices sampled as traversal sources when
  /// estimating edge betweenness (the paper samples "just 5% of the
  /// vertices").
  double sample_fraction = 0.05;
  /// Lower bound on sampled sources per component.
  vid_t min_samples = 8;

  /// Semi-automatic parallelism-granularity switch (§4): components of at
  /// most this many vertices are scored with *exact* per-component edge
  /// betweenness, and once every live component is this small the dirty
  /// components themselves are processed in parallel (coarse granularity)
  /// with serial traversals inside.  Larger components are scored by
  /// sampling, parallelized across sources (fine granularity).
  vid_t exact_threshold = 256;

  /// Optional step 1: run biconnected components, seed bridges with their
  /// exact betweenness (computable in linear time from the bridge forest) —
  /// "bridges in the network are likely to have high edge centrality".
  bool bicc_prefilter = true;

  /// Reference mode: rescore every live component each round instead of only
  /// the components the last deletion touched.  With `bicc_prefilter` off
  /// and `exact_threshold >= n` (no sampling, so the RNG stream cannot
  /// diverge) this produces a bitwise-identical trace to the default
  /// dirty-only mode — the differential test relies on this.
  bool rescore_all = false;

  std::uint64_t seed = 1;
};

/// pBD: approximate betweenness-based divisive clustering (Algorithm 1).
/// Requires an undirected graph (§5 ignores edge directivity; call
/// `as_undirected()` first for directed data).
CommunityResult pbd(const CSRGraph& g, const PBDParams& params = {});

}  // namespace snap
