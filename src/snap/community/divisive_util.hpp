#pragma once

// Internal helpers shared by the divisive community algorithms (GN, pBD).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/connected_components.hpp"

namespace snap::detail {

/// After deleting edge (u, v), decide whether its component split, and if so
/// relabel u's side with `new_label`.  Returns the vertices on u's side
/// (empty if the component did not split).  O(|u-side|) via masked BFS —
/// the "run connected components, update number of clusters" step of
/// Algorithm 1, made incremental.
inline std::vector<vid_t> split_after_deletion(
    const CSRGraph& g, const std::vector<std::uint8_t>& edge_alive,
    std::vector<vid_t>& membership, vid_t u, vid_t v, vid_t new_label) {
  const BFSResult b = bfs_masked(g, u, edge_alive);
  if (b.dist[static_cast<std::size_t>(v)] >= 0) return {};  // still connected
  std::vector<vid_t> side;
  side.reserve(static_cast<std::size_t>(b.num_visited));
  for (vid_t w = 0; w < g.num_vertices(); ++w) {
    if (b.dist[static_cast<std::size_t>(w)] >= 0) {
      membership[static_cast<std::size_t>(w)] = new_label;
      side.push_back(w);
    }
  }
  return side;
}

/// Connected-component bookkeeping for the divisive loop: membership labels
/// plus the vertex list of every label (kept in ascending vertex order — the
/// canonical source order the deterministic component scoring relies on).
/// Labels are never reused; emptied labels keep an empty list.
class ComponentTracker {
 public:
  ComponentTracker(const CSRGraph& g, const Components& comps)
      : membership_(comps.label), next_label_(comps.count) {
    comp_vertices_.resize(static_cast<std::size_t>(comps.count));
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      comp_vertices_[static_cast<std::size_t>(
          membership_[static_cast<std::size_t>(v)])]
          .push_back(v);
  }

  /// Which labels a deletion dirtied.  `second` is kInvalidVid when the
  /// component did not split.
  struct Effect {
    vid_t first;
    vid_t second;
    [[nodiscard]] bool split() const { return second != kInvalidVid; }
  };

  /// Record the deletion of edge (u, v): detect a split via masked BFS and,
  /// if it happened, partition the old label's vertex list (both halves stay
  /// ascending — `side` is produced in ascending order and the remainder is
  /// filtered in order).
  Effect apply_deletion(const CSRGraph& g,
                        const std::vector<std::uint8_t>& edge_alive, vid_t u,
                        vid_t v) {
    const vid_t old_label = membership_[static_cast<std::size_t>(u)];
    const auto side =
        split_after_deletion(g, edge_alive, membership_, u, v, next_label_);
    if (side.empty()) return {old_label, kInvalidVid};
    auto& old_list = comp_vertices_[static_cast<std::size_t>(old_label)];
    std::vector<vid_t> remain;
    remain.reserve(old_list.size() - side.size());
    for (vid_t w : old_list)
      if (membership_[static_cast<std::size_t>(w)] == old_label)
        remain.push_back(w);
    old_list.swap(remain);
    comp_vertices_.push_back(side);
    return {old_label, next_label_++};
  }

  [[nodiscard]] const std::vector<vid_t>& membership() const {
    return membership_;
  }
  [[nodiscard]] const std::vector<vid_t>& vertices_of(vid_t label) const {
    return comp_vertices_[static_cast<std::size_t>(label)];
  }
  [[nodiscard]] vid_t num_labels() const { return next_label_; }
  [[nodiscard]] vid_t max_component_size() const {
    std::size_t mx = 0;
    for (const auto& cv : comp_vertices_) mx = std::max(mx, cv.size());
    return static_cast<vid_t>(mx);
  }

 private:
  std::vector<vid_t> membership_;
  std::vector<std::vector<vid_t>> comp_vertices_;
  vid_t next_label_;
};

}  // namespace snap::detail
