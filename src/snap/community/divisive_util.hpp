#pragma once

// Internal helpers shared by the divisive community algorithms (GN, pBD).

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"
#include "snap/kernels/bfs.hpp"

namespace snap::detail {

/// After deleting edge (u, v), decide whether its component split, and if so
/// relabel u's side with `new_label`.  Returns the vertices on u's side
/// (empty if the component did not split).  O(|u-side|) via masked BFS —
/// the "run connected components, update number of clusters" step of
/// Algorithm 1, made incremental.
inline std::vector<vid_t> split_after_deletion(
    const CSRGraph& g, const std::vector<std::uint8_t>& edge_alive,
    std::vector<vid_t>& membership, vid_t u, vid_t v, vid_t new_label) {
  const BFSResult b = bfs_masked(g, u, edge_alive);
  if (b.dist[static_cast<std::size_t>(v)] >= 0) return {};  // still connected
  std::vector<vid_t> side;
  side.reserve(static_cast<std::size_t>(b.num_visited));
  for (vid_t w = 0; w < g.num_vertices(); ++w) {
    if (b.dist[static_cast<std::size_t>(w)] >= 0) {
      membership[static_cast<std::size_t>(w)] = new_label;
      side.push_back(w);
    }
  }
  return side;
}

}  // namespace snap::detail
