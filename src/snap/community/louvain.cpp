#include "snap/community/louvain.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>

#include "snap/community/modularity.hpp"
#include "snap/debug/check.hpp"
#include "snap/debug/validate.hpp"
#include "snap/partition/coarsen.hpp"
#include "snap/partition/exchange.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/timer.hpp"

namespace snap {
namespace {

/// Moves whose gain does not clear this threshold are rejected: float noise
/// around zero would otherwise drive endless label churn.
constexpr double kGainEps = 1e-12;

/// Below this many level vertices the parallel move phase's fork/join costs
/// more than the sweep itself (kAuto cutoff).
constexpr vid_t kParallelLevelCutoff = 1 << 12;

/// Per-worker scratch for neighbor-community weight accumulation: a dense
/// accumulator with a version stamp per slot, so clearing between vertices
/// is O(touched) instead of O(n).
struct MoveScratch {
  std::vector<double> acc;
  std::vector<std::uint64_t> stamp;
  std::vector<vid_t> touched;
  std::uint64_t tick = 0;

  void init(vid_t n) {
    acc.assign(static_cast<std::size_t>(n), 0.0);
    stamp.assign(static_cast<std::size_t>(n), 0);
    touched.clear();
    tick = 0;
  }
};

struct Move {
  vid_t v;
  vid_t from;
  vid_t to;
};

struct MoveStats {
  int sweeps = 0;
  eid_t moves = 0;
};

/// ΔQ of relabeling a vertex of volume `deg_v` from its community (volume
/// `vol_cur`, connection weight `w_cur` excluding the vertex itself) to a
/// neighbor community (volume `vol_to`, connection weight `w_to`):
///
///   ΔQ = (w_to − w_cur)/W − deg_v (vol_to − vol_cur + deg_v)/(2W²)
///
/// with inv_w = 1/W and inv_2w2 = 1/(2W²) precomputed.  This single
/// expression is the arithmetic spec shared by the serial oracle and the
/// parallel engine: both round identically, so the differential suite
/// compares orchestration (bucketing, scratch reuse, delta merging), which
/// is where scheduling bugs live.
inline double move_gain(double w_to, double w_cur, double deg_v, double vol_to,
                        double vol_cur, double inv_w, double inv_2w2) {
  return (w_to - w_cur) * inv_w - deg_v * (vol_to - vol_cur + deg_v) * inv_2w2;
}

/// Best relabeling of v against the frozen (labels, vol) state, or
/// kInvalidVid if v stays.  Pure function of the frozen state: neighbor
/// weights accumulate in adjacency order and ties in gain break toward the
/// smallest community id, so the answer is independent of visit order and
/// thread count.
vid_t decide_move(const CSRGraph& g, vid_t v, const std::vector<vid_t>& labels,
                  const std::vector<double>& vol,
                  const std::vector<double>& w_deg, double inv_w,
                  double inv_2w2, MoveScratch& sc) {
  const auto nb = g.neighbors(v);
  if (nb.empty()) return kInvalidVid;
  const auto ws = g.weights(v);
  ++sc.tick;
  sc.touched.clear();
  for (std::size_t i = 0; i < nb.size(); ++i) {
    const vid_t u = nb[i];
    if (u == v) continue;  // the self-loop travels with v: it cancels in ΔQ
    const auto c = static_cast<std::size_t>(labels[static_cast<std::size_t>(u)]);
    if (sc.stamp[c] != sc.tick) {
      sc.stamp[c] = sc.tick;
      sc.acc[c] = 0.0;
      sc.touched.push_back(static_cast<vid_t>(c));
    }
    sc.acc[c] += ws[i];
  }
  const vid_t cur = labels[static_cast<std::size_t>(v)];
  const auto scur = static_cast<std::size_t>(cur);
  const double w_cur = sc.stamp[scur] == sc.tick ? sc.acc[scur] : 0.0;
  const double deg_v = w_deg[static_cast<std::size_t>(v)];
  vid_t best = kInvalidVid;
  double best_gain = kGainEps;
  for (const vid_t c : sc.touched) {
    if (c == cur) continue;
    const double gain =
        move_gain(sc.acc[static_cast<std::size_t>(c)], w_cur, deg_v,
                  vol[static_cast<std::size_t>(c)],
                  vol[static_cast<std::size_t>(cur)], inv_w, inv_2w2);
    if (gain > best_gain || (gain == best_gain && best != kInvalidVid && c < best)) {
      best_gain = gain;
      best = c;
    }
  }
  return best;
}

/// Apply a batch of accepted moves (already in ascending vertex order) to
/// the shared label/volume state.  Volume deltas are float adds; applying
/// them in one fixed order is what keeps vol[] — and every later gain
/// computed from it — bitwise identical across paths and thread counts.
void apply_moves(const std::vector<Move>& moves, std::vector<vid_t>& labels,
                 std::vector<double>& vol, const std::vector<double>& w_deg) {
  for (const Move& mv : moves) {
    labels[static_cast<std::size_t>(mv.v)] = mv.to;
    const double d = w_deg[static_cast<std::size_t>(mv.v)];
    vol[static_cast<std::size_t>(mv.from)] -= d;
    vol[static_cast<std::size_t>(mv.to)] += d;
  }
}

/// Serial reference move phase — the oracle.  Straight loops, one scratch,
/// no parallel primitives: sub-round semantics written out literally.
MoveStats run_moves_serial(const CSRGraph& g, std::vector<vid_t>& labels,
                           std::vector<double>& vol,
                           const std::vector<double>& w_deg, double inv_w,
                           double inv_2w2, int max_sweeps, int num_buckets) {
  const vid_t n = g.num_vertices();
  MoveScratch sc;
  sc.init(n);
  std::vector<Move> pending;
  MoveStats st;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    eid_t sweep_moves = 0;
    for (int b = 0; b < num_buckets; ++b) {
      pending.clear();
      for (vid_t v = b; v < n; v += num_buckets) {
        const vid_t to =
            decide_move(g, v, labels, vol, w_deg, inv_w, inv_2w2, sc);
        if (to != kInvalidVid)
          pending.push_back({v, labels[static_cast<std::size_t>(v)], to});
      }
      apply_moves(pending, labels, vol, w_deg);
      sweep_moves += static_cast<eid_t>(pending.size());
    }
    ++st.sweeps;
    st.moves += sweep_moves;
    if (sweep_moves == 0) break;
  }
  return st;
}

/// Parallel move phase.  Each sub-round forks a team over contiguous vertex
/// ranges; every thread evaluates its bucket members against the frozen
/// state and records accepted moves in a per-thread delta list.  The lists
/// are merged in thread order — contiguous ranges make that ascending
/// vertex order — so the volume updates replay exactly the serial oracle's
/// sequence.
MoveStats run_moves_parallel(const CSRGraph& g, std::vector<vid_t>& labels,
                             std::vector<double>& vol,
                             const std::vector<double>& w_deg, double inv_w,
                             double inv_2w2, int max_sweeps, int num_buckets) {
  const vid_t n = g.num_vertices();
  const int nt = std::max(1, parallel::num_threads());
  std::vector<MoveScratch> scratch(static_cast<std::size_t>(nt));
  std::vector<std::vector<Move>> local(static_cast<std::size_t>(nt));
  MoveStats st;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    eid_t sweep_moves = 0;
    for (int b = 0; b < num_buckets; ++b) {
      parallel::run_team(nt, [&](int t) {
        MoveScratch& sc = scratch[static_cast<std::size_t>(t)];
        if (sc.stamp.size() != static_cast<std::size_t>(n)) sc.init(n);
        std::vector<Move>& out = local[static_cast<std::size_t>(t)];
        out.clear();
        const vid_t lo = n * t / nt;
        const vid_t hi = n * (t + 1) / nt;
        const auto B = static_cast<vid_t>(num_buckets);
        vid_t v = lo + (((b - lo % B) % B + B) % B);
        for (; v < hi; v += B) {
          const vid_t to =
              decide_move(g, v, labels, vol, w_deg, inv_w, inv_2w2, sc);
          if (to != kInvalidVid)
            out.push_back({v, labels[static_cast<std::size_t>(v)], to});
        }
      });
      for (int t = 0; t < nt; ++t) {
        apply_moves(local[static_cast<std::size_t>(t)], labels, vol, w_deg);
        sweep_moves += static_cast<eid_t>(local[static_cast<std::size_t>(t)].size());
      }
    }
    ++st.sweeps;
    st.moves += sweep_moves;
    if (sweep_moves == 0) break;
  }
  return st;
}

/// Shard-parallel move phase: the owner-computes orchestration of the same
/// sub-round semantics, built on the boundary exchange layer.  The vertex
/// set splits into `num_shards` contiguous ranges; each shard evaluates its
/// bucket members against its OWN replica of the frozen (labels, volume)
/// state — no shared mutable state crosses a shard, the transport-agnostic
/// contract that lets a shard later live in another process.  Accepted
/// moves are broadcast to every shard through Exchange<Move> and applied to
/// each replica in delivery order: senders are drained ascending and each
/// shard's list is in ascending vertex order over a contiguous range, so
/// the global apply sequence is ascending vertex order — exactly the
/// serial oracle's — and every replica (and the flat engines) stays
/// bitwise identical.  A move anywhere changes the volumes every later
/// gain reads, which is why moves are broadcast rather than sent only to
/// neighbor shards.
MoveStats run_moves_sharded(const CSRGraph& g, std::vector<vid_t>& labels,
                            std::vector<double>& vol,
                            const std::vector<double>& w_deg, double inv_w,
                            double inv_2w2, int max_sweeps, int num_buckets,
                            int num_shards) {
  const vid_t n = g.num_vertices();
  const int k = std::max(
      1, std::min<int>(num_shards > 0 ? num_shards : parallel::num_threads(),
                       static_cast<int>(std::max<vid_t>(1, n))));
  std::vector<std::vector<vid_t>> rlabels(static_cast<std::size_t>(k), labels);
  std::vector<std::vector<double>> rvol(static_cast<std::size_t>(k), vol);
  std::vector<MoveScratch> scratch(static_cast<std::size_t>(k));
  std::vector<std::vector<Move>> accepted(static_cast<std::size_t>(k));
  Exchange<Move> ex(k);
  MoveStats st;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    eid_t sweep_moves = 0;
    for (int b = 0; b < num_buckets; ++b) {
      parallel::run_team(k, [&](int s) {
        MoveScratch& sc = scratch[static_cast<std::size_t>(s)];
        if (sc.stamp.size() != static_cast<std::size_t>(n)) sc.init(n);
        const auto& flabels = rlabels[static_cast<std::size_t>(s)];
        const auto& fvol = rvol[static_cast<std::size_t>(s)];
        std::vector<Move>& out = accepted[static_cast<std::size_t>(s)];
        out.clear();
        const vid_t lo = n * s / k;
        const vid_t hi = n * (s + 1) / k;
        const auto B = static_cast<vid_t>(num_buckets);
        vid_t v = lo + (((b - lo % B) % B + B) % B);
        for (; v < hi; v += B) {
          const vid_t to =
              decide_move(g, v, flabels, fvol, w_deg, inv_w, inv_2w2, sc);
          if (to != kInvalidVid)
            out.push_back({v, flabels[static_cast<std::size_t>(v)], to});
        }
        // Broadcast this shard's accepted moves to every replica owner.
        for (int t = 0; t < k; ++t)
          for (const Move& mv : out) ex.send(s, t, mv);
      });
      parallel::run_team(k, [&](int t) {
        auto& tlabels = rlabels[static_cast<std::size_t>(t)];
        auto& tvol = rvol[static_cast<std::size_t>(t)];
        ex.deliver(t, [&](const Move& mv) {
          tlabels[static_cast<std::size_t>(mv.v)] = mv.to;
          const double d = w_deg[static_cast<std::size_t>(mv.v)];
          tvol[static_cast<std::size_t>(mv.from)] -= d;
          tvol[static_cast<std::size_t>(mv.to)] += d;
        });
      });
      for (int s = 0; s < k; ++s)
        sweep_moves += static_cast<eid_t>(accepted[static_cast<std::size_t>(s)].size());
    }
    ++st.sweeps;
    st.moves += sweep_moves;
    if (sweep_moves == 0) break;
  }
  SNAP_VALIDATE(ex);
  labels = std::move(rlabels[0]);
  vol = std::move(rvol[0]);
  return st;
}

/// Weighted degree of every vertex (self-loop arcs counted as stored, i.e.
/// twice — the Louvain volume convention) plus their fixed-order total.
std::vector<double> vertex_volumes(const CSRGraph& g, double& two_w) {
  const vid_t n = g.num_vertices();
  std::vector<double> w_deg(static_cast<std::size_t>(n), 0.0);
  parallel::parallel_for(n, [&](vid_t v) {
    double s = 0.0;
    for (const weight_t w : g.weights(v)) s += w;
    w_deg[static_cast<std::size_t>(v)] = s;
  });
  // Serial ascending sum: bitwise identical at every thread count.
  two_w = 0.0;
  for (vid_t v = 0; v < n; ++v) two_w += w_deg[static_cast<std::size_t>(v)];
  return w_deg;
}

struct LevelOutcome {
  Clustering clustering;
  std::vector<double> volume;  ///< per dense community
  double q = 0.0;
  MoveStats stats;
};

/// Path dispatch: one move phase on `lg` with the engine `params` selects.
MoveStats run_moves(const CSRGraph& lg, const LouvainParams& params,
                    std::vector<vid_t>& labels, std::vector<double>& vol,
                    const std::vector<double>& w_deg, double inv_w,
                    double inv_2w2) {
  switch (params.path) {
    case LouvainPath::kSerial:
      return run_moves_serial(lg, labels, vol, w_deg, inv_w, inv_2w2,
                              params.max_sweeps, params.num_buckets);
    case LouvainPath::kParallel:
      return run_moves_parallel(lg, labels, vol, w_deg, inv_w, inv_2w2,
                                params.max_sweeps, params.num_buckets);
    case LouvainPath::kSharded:
      return run_moves_sharded(lg, labels, vol, w_deg, inv_w, inv_2w2,
                               params.max_sweeps, params.num_buckets,
                               params.num_shards);
    case LouvainPath::kAuto:
    default:
      return lg.num_vertices() >= kParallelLevelCutoff
                 ? run_moves_parallel(lg, labels, vol, w_deg, inv_w, inv_2w2,
                                      params.max_sweeps, params.num_buckets)
                 : run_moves_serial(lg, labels, vol, w_deg, inv_w, inv_2w2,
                                    params.max_sweeps, params.num_buckets);
  }
}

LevelOutcome run_level(const CSRGraph& lg, const LouvainParams& params) {
  const vid_t n = lg.num_vertices();
  double two_w = 0.0;
  const std::vector<double> w_deg = vertex_volumes(lg, two_w);

  LevelOutcome out;
  std::vector<vid_t> labels(static_cast<std::size_t>(n));
  std::iota(labels.begin(), labels.end(), vid_t{0});
  if (two_w > 0.0) {
    std::vector<double> vol = w_deg;
    const double inv_w = 2.0 / two_w;                // 1/W with W = two_w/2
    const double inv_2w2 = 2.0 / (two_w * two_w);    // 1/(2W²)
    out.stats = run_moves(lg, params, labels, vol, w_deg, inv_w, inv_2w2);
  }
  out.clustering = normalize_labels(labels);
  out.volume.assign(static_cast<std::size_t>(out.clustering.num_clusters), 0.0);
  for (vid_t v = 0; v < n; ++v)
    out.volume[static_cast<std::size_t>(
        out.clustering.membership[static_cast<std::size_t>(v)])] +=
        w_deg[static_cast<std::size_t>(v)];
  out.q = modularity_ordered(lg, out.clustering.membership);
  return out;
}

}  // namespace

LouvainResult louvain(const CSRGraph& g, const LouvainParams& params) {
  SNAP_ASSERT(!g.directed(),
              "louvain requires an undirected graph (fold with as_undirected)");
  WallTimer timer;
  const vid_t n = g.num_vertices();

  LouvainResult res;
  // `lg` points into res.levels between iterations; reserving up front keeps
  // every coarse graph at a stable address for the lifetime of the loop.
  res.levels.reserve(static_cast<std::size_t>(std::max(0, params.max_levels)));
  res.community.dendrogram = MergeDendrogram(n);

  std::vector<vid_t> flat(static_cast<std::size_t>(n));
  std::iota(flat.begin(), flat.end(), vid_t{0});
  res.community.dendrogram.set_baseline(modularity_ordered(g, flat));

  // rep[c]: representative original vertex of level community c, used to
  // express each level's contraction as binary merges over the original
  // vertex set (the shared MergeDendrogram surface).
  std::vector<vid_t> rep = flat;
  std::vector<weight_t> vweight(static_cast<std::size_t>(n), 1.0);
  const CSRGraph* lg = &g;
  double last_q = res.community.dendrogram.baseline();
  eid_t total_moves = 0;

  for (int level = 0; level < params.max_levels; ++level) {
    LevelOutcome out = run_level(*lg, params);
    total_moves += out.stats.moves;
    const vid_t nl = lg->num_vertices();
    if (out.stats.moves == 0 || out.clustering.num_clusters == nl) break;

    // Dendrogram: merge each community's members onto its first member's
    // representative, communities and members both in ascending order.
    std::vector<vid_t> first_rep(
        static_cast<std::size_t>(out.clustering.num_clusters), kInvalidVid);
    for (vid_t v = 0; v < nl; ++v) {
      const auto c = static_cast<std::size_t>(
          out.clustering.membership[static_cast<std::size_t>(v)]);
      if (first_rep[c] == kInvalidVid)
        first_rep[c] = rep[static_cast<std::size_t>(v)];
      else
        res.community.dendrogram.record_merge(
            first_rep[c], rep[static_cast<std::size_t>(v)], out.q);
    }

    CoarseLevel contracted =
        contract_by_map(*lg, out.clustering.membership,
                        out.clustering.num_clusters, vweight,
                        /*keep_self_loops=*/true);
    vweight = std::move(contracted.vertex_weight);
    res.levels.emplace_back(std::move(out.clustering.membership),
                            std::move(out.volume),
                            std::move(contracted.graph), out.q,
                            out.stats.sweeps, out.stats.moves);
    const LouvainLevel& lvl = res.levels.back();
    SNAP_VALIDATE(*lg, lvl);

    parallel::parallel_for(n, [&](vid_t v) {
      flat[static_cast<std::size_t>(v)] =
          lvl.membership()[static_cast<std::size_t>(
              flat[static_cast<std::size_t>(v)])];
    });
    rep = std::move(first_rep);
    lg = &lvl.coarse_graph();

    const double gain = lvl.modularity() - last_q;
    last_q = lvl.modularity();
    if (gain < params.min_level_gain) break;
  }

  if (params.refine && !res.levels.empty()) {
    // Refinement: the bucketed move phase once more, on the original graph,
    // seeded with the flat membership.  Same engine, same determinism story.
    double two_w = 0.0;
    const std::vector<double> w_deg = vertex_volumes(g, two_w);
    if (two_w > 0.0) {
      std::vector<double> vol(static_cast<std::size_t>(n), 0.0);
      for (vid_t v = 0; v < n; ++v)
        vol[static_cast<std::size_t>(flat[static_cast<std::size_t>(v)])] +=
            w_deg[static_cast<std::size_t>(v)];
      const double inv_w = 2.0 / two_w;
      const double inv_2w2 = 2.0 / (two_w * two_w);
      const MoveStats st =
          run_moves(g, params, flat, vol, w_deg, inv_w, inv_2w2);
      res.refine_moves = st.moves;
      total_moves += st.moves;
    }
  }

  res.community.clustering = normalize_labels(flat);
  res.community.modularity =
      modularity_ordered(g, res.community.clustering.membership);
  res.community.iterations = total_moves;
  res.community.seconds = timer.elapsed_s();
  SNAP_VALIDATE(g, res.community.clustering.membership,
                res.community.modularity);
  SNAP_VALIDATE(res.community.dendrogram);
  return res;
}

}  // namespace snap
