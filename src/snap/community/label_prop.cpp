#include "snap/community/label_prop.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "snap/community/modularity.hpp"
#include "snap/debug/check.hpp"
#include "snap/debug/validate.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/timer.hpp"

namespace snap {
namespace {

/// Below this many vertices the parallel sweep's fork/join costs more than
/// the sweep itself (kAuto cutoff).
constexpr vid_t kParallelCutoff = 1 << 12;

/// Per-worker scratch for neighbor-label weight accumulation (stamped dense
/// accumulator, cleared in O(touched) per vertex).
struct LabelScratch {
  std::vector<double> acc;
  std::vector<std::uint64_t> stamp;
  std::vector<vid_t> touched;
  std::uint64_t tick = 0;

  void init(vid_t n) {
    acc.assign(static_cast<std::size_t>(n), 0.0);
    stamp.assign(static_cast<std::size_t>(n), 0);
    touched.clear();
    tick = 0;
  }
};

struct Relabel {
  vid_t v;
  vid_t to;
};

/// Label v should adopt against the frozen label state, or kInvalidVid to
/// stay.  Adopt the label with maximal total neighbor edge weight iff it is
/// strictly heavier than the current label's weight; among equals the
/// smallest label id wins.  Accumulation runs in adjacency order and the
/// decision is a pure function of the frozen state — independent of visit
/// order and thread count.
vid_t decide_label(const CSRGraph& g, vid_t v, const std::vector<vid_t>& labels,
                   LabelScratch& sc) {
  const auto nb = g.neighbors(v);
  if (nb.empty()) return kInvalidVid;
  const auto ws = g.weights(v);
  ++sc.tick;
  sc.touched.clear();
  for (std::size_t i = 0; i < nb.size(); ++i) {
    const vid_t u = nb[i];
    if (u == v) continue;  // a self-loop endorses every choice equally
    const auto c = static_cast<std::size_t>(labels[static_cast<std::size_t>(u)]);
    if (sc.stamp[c] != sc.tick) {
      sc.stamp[c] = sc.tick;
      sc.acc[c] = 0.0;
      sc.touched.push_back(static_cast<vid_t>(c));
    }
    sc.acc[c] += ws[i];
  }
  const vid_t cur = labels[static_cast<std::size_t>(v)];
  const auto scur = static_cast<std::size_t>(cur);
  const double w_cur = sc.stamp[scur] == sc.tick ? sc.acc[scur] : 0.0;
  vid_t best = kInvalidVid;
  double best_w = w_cur;
  for (const vid_t c : sc.touched) {
    if (c == cur) continue;
    const double w = sc.acc[static_cast<std::size_t>(c)];
    if (w > best_w || (w == best_w && best != kInvalidVid && c < best)) {
      best_w = w;
      best = c;
    }
  }
  return best;
}

struct SweepStats {
  int sweeps = 0;
  eid_t moves = 0;
  bool converged = false;
};

/// Serial reference sweep loop — the oracle semantics written out literally.
SweepStats run_serial(const CSRGraph& g, std::vector<vid_t>& labels,
                      int max_sweeps, int num_buckets) {
  const vid_t n = g.num_vertices();
  LabelScratch sc;
  sc.init(n);
  std::vector<Relabel> pending;
  SweepStats st;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    eid_t sweep_moves = 0;
    for (int b = 0; b < num_buckets; ++b) {
      pending.clear();
      for (vid_t v = b; v < n; v += num_buckets) {
        const vid_t to = decide_label(g, v, labels, sc);
        if (to != kInvalidVid) pending.push_back({v, to});
      }
      for (const Relabel& r : pending)
        labels[static_cast<std::size_t>(r.v)] = r.to;
      sweep_moves += static_cast<eid_t>(pending.size());
    }
    ++st.sweeps;
    st.moves += sweep_moves;
    if (sweep_moves == 0) {
      st.converged = true;
      break;
    }
  }
  return st;
}

/// Parallel sweep loop: per sub-round, a thread team evaluates bucket
/// members against the frozen labels over contiguous vertex ranges and the
/// per-thread relabel lists are applied in thread order — ascending vertex
/// order, replaying exactly the serial oracle's update sequence.
SweepStats run_parallel(const CSRGraph& g, std::vector<vid_t>& labels,
                        int max_sweeps, int num_buckets) {
  const vid_t n = g.num_vertices();
  const int nt = std::max(1, parallel::num_threads());
  std::vector<LabelScratch> scratch(static_cast<std::size_t>(nt));
  std::vector<std::vector<Relabel>> local(static_cast<std::size_t>(nt));
  SweepStats st;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    eid_t sweep_moves = 0;
    for (int b = 0; b < num_buckets; ++b) {
      parallel::run_team(nt, [&](int t) {
        LabelScratch& sc = scratch[static_cast<std::size_t>(t)];
        if (sc.stamp.size() != static_cast<std::size_t>(n)) sc.init(n);
        std::vector<Relabel>& out = local[static_cast<std::size_t>(t)];
        out.clear();
        const vid_t lo = n * t / nt;
        const vid_t hi = n * (t + 1) / nt;
        const auto B = static_cast<vid_t>(num_buckets);
        vid_t v = lo + (((b - lo % B) % B + B) % B);
        for (; v < hi; v += B) {
          const vid_t to = decide_label(g, v, labels, sc);
          if (to != kInvalidVid) out.push_back({v, to});
        }
      });
      for (int t = 0; t < nt; ++t) {
        for (const Relabel& r : local[static_cast<std::size_t>(t)])
          labels[static_cast<std::size_t>(r.v)] = r.to;
        sweep_moves += static_cast<eid_t>(local[static_cast<std::size_t>(t)].size());
      }
    }
    ++st.sweeps;
    st.moves += sweep_moves;
    if (sweep_moves == 0) {
      st.converged = true;
      break;
    }
  }
  return st;
}

}  // namespace

LabelPropResult label_propagation(const CSRGraph& g,
                                  const LabelPropParams& params) {
  SNAP_ASSERT(!g.directed(),
              "label_propagation requires an undirected graph");
  WallTimer timer;
  const vid_t n = g.num_vertices();
  std::vector<vid_t> labels(static_cast<std::size_t>(n));
  std::iota(labels.begin(), labels.end(), vid_t{0});

  bool use_parallel = n >= kParallelCutoff;
  if (params.path == LabelPropPath::kSerial) use_parallel = false;
  if (params.path == LabelPropPath::kParallel) use_parallel = true;
  const SweepStats st =
      use_parallel ? run_parallel(g, labels, params.max_sweeps,
                                  params.num_buckets)
                   : run_serial(g, labels, params.max_sweeps,
                                params.num_buckets);

  LabelPropResult res;
  res.sweeps = st.sweeps;
  res.converged = st.converged;
  res.community.clustering = normalize_labels(labels);
  res.community.modularity =
      modularity_ordered(g, res.community.clustering.membership);
  res.community.iterations = st.moves;
  res.community.seconds = timer.elapsed_s();
  SNAP_VALIDATE(g, res.community.clustering.membership,
                res.community.modularity);
  return res;
}

bool is_plurality_fixed_point(const CSRGraph& g,
                              const std::vector<vid_t>& labels) {
  const vid_t n = g.num_vertices();
  if (static_cast<vid_t>(labels.size()) != n) return false;
  for (const vid_t l : labels)
    if (l < 0 || l >= n) return false;
  LabelScratch sc;
  sc.init(n);
  for (vid_t v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    const auto ws = g.weights(v);
    ++sc.tick;
    sc.touched.clear();
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const vid_t u = nb[i];
      if (u == v) continue;
      const auto c =
          static_cast<std::size_t>(labels[static_cast<std::size_t>(u)]);
      if (sc.stamp[c] != sc.tick) {
        sc.stamp[c] = sc.tick;
        sc.acc[c] = 0.0;
        sc.touched.push_back(static_cast<vid_t>(c));
      }
      sc.acc[c] += ws[i];
    }
    const auto cur =
        static_cast<std::size_t>(labels[static_cast<std::size_t>(v)]);
    const double w_cur = sc.stamp[cur] == sc.tick ? sc.acc[cur] : 0.0;
    for (const vid_t c : sc.touched) {
      if (sc.acc[static_cast<std::size_t>(c)] > w_cur) return false;
    }
  }
  return true;
}

}  // namespace snap
