#pragma once

#include "snap/community/clustering.hpp"
#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Stopping rule shared by the divisive algorithms.
struct DivisiveParams {
  /// Maximum edge removals; 0 = up to m (the complete dendrogram of
  /// Algorithm 1's `while numIter < m` loop).
  eid_t max_iterations = 0;
  /// Stop once the clustering reaches this many clusters (0 = no target).
  vid_t target_clusters = 0;
  /// Stop when the best modularity has not improved for this many edge
  /// removals (0 = disabled).  Modularity along a divisive run rises to a
  /// single peak and then decays, so a generous stall budget recovers the
  /// same best clustering as a complete run at a fraction of the cost.
  eid_t stall_iterations = 0;
};

/// Girvan–Newman divisive clustering — the competing baseline of §5.
/// Each iteration recomputes *exact* edge betweenness over the surviving
/// edges (all n sources), removes the top edge, and records modularity.
/// O(m²n)-ish work: intentionally unengineered except for SNAP's coarse
/// parallel Brandes, to match what pBD is compared against.
CommunityResult girvan_newman(const CSRGraph& g,
                              const DivisiveParams& params = {});

}  // namespace snap
