#pragma once

#include "snap/community/clustering.hpp"
#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Stopping rule shared by the divisive algorithms.
struct DivisiveParams {
  /// Maximum edge removals; 0 = up to m (the complete dendrogram of
  /// Algorithm 1's `while numIter < m` loop).
  eid_t max_iterations = 0;
  /// Stop once the clustering reaches this many clusters (0 = no target).
  vid_t target_clusters = 0;
  /// Stop when the best modularity has not improved for this many edge
  /// removals (0 = disabled).  Modularity along a divisive run rises to a
  /// single peak and then decays, so a generous stall budget recovers the
  /// same best clustering as a complete run at a fraction of the cost.
  eid_t stall_iterations = 0;

  /// Reference mode (girvan_newman only; ignored by pbd, which has its own
  /// `rescore_all`): rescore every live component each round instead of only
  /// the component the deletion touched.  Both modes run the identical
  /// per-component deterministic scoring, so the traces match bitwise — the
  /// differential test relies on this.
  bool full_recompute = false;
};

/// Girvan–Newman divisive clustering — the competing baseline of §5.
/// Each iteration finds the top exact edge-betweenness edge among the
/// surviving edges, removes it, and records modularity.  Scores are cached
/// per connected component and recomputed only for the component the last
/// deletion touched (a traversal never leaves its source's component, so no
/// other score can change): a round costs O(n_c(m_c+n_c)) in the affected
/// component's size rather than O(n(m+n)) in the graph's.
CommunityResult girvan_newman(const CSRGraph& g,
                              const DivisiveParams& params = {});

}  // namespace snap
