#include "snap/community/pla.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "snap/community/modularity.hpp"
#include "snap/community/pma.hpp"
#include "snap/debug/validate.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/biconnected.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"
#include "snap/util/timer.hpp"

namespace snap {

namespace {

/// Grow clusters greedily inside one component (lines 5–9 of Algorithm 3).
/// Writes cluster labels (globally unique: the seed vertex id) into
/// `membership`.  Only `alive` edges are considered, so clusters never span
/// a removed bridge.
void aggregate_component(const CSRGraph& g, const PLAParams& p,
                         const std::vector<std::uint8_t>& alive,
                         const std::vector<vid_t>& verts,
                         const std::vector<double>& local_cc, double inv_2w,
                         SplitMix64 rng, std::vector<vid_t>& membership) {
  // Seed order: random shuffle or BFS ordering from the component's first
  // vertex (§4: "this can be done randomly, or obtained from a breadth-first
  // ordering of the vertices").
  std::vector<vid_t> order = verts;
  if (p.bfs_seed_order) {
    const BFSResult b = bfs_masked(g, verts.front(), alive);
    std::stable_sort(order.begin(), order.end(), [&](vid_t x, vid_t y) {
      return b.dist[static_cast<std::size_t>(x)] <
             b.dist[static_cast<std::size_t>(y)];
    });
  } else {
    for (std::size_t k = order.size(); k > 1; --k) {
      std::swap(order[k - 1], order[rng.next_bounded(k)]);
    }
  }

  auto weighted_degree = [&](vid_t v) {
    double d = 0;
    for (weight_t w : g.weights(v)) d += w;
    return d;
  };

  for (vid_t seed : order) {
    if (membership[static_cast<std::size_t>(seed)] != kInvalidVid) continue;
    // Grow a new cluster from `seed`.
    membership[static_cast<std::size_t>(seed)] = seed;
    double a_c = weighted_degree(seed) * inv_2w;  // cluster degree fraction
    vid_t csize = 1;

    // Candidate frontier: unassigned neighbors with their link weight into
    // the cluster.
    std::unordered_map<vid_t, double> links;
    auto add_neighbors_of = [&](vid_t u) {
      const auto nb = g.neighbors(u);
      const auto ws = g.weights(u);
      const auto ids = g.edge_ids(u);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (!alive[static_cast<std::size_t>(ids[i])]) continue;
        if (membership[static_cast<std::size_t>(nb[i])] != kInvalidVid)
          continue;
        links[nb[i]] += ws[i];
      }
    };
    add_neighbors_of(seed);

    while (!links.empty() &&
           (p.max_cluster_size == 0 || csize < p.max_cluster_size)) {
      // Local metric (line 7): fraction of the candidate's edges already in
      // the cluster, optionally weighted by its clustering coefficient.
      vid_t best = kInvalidVid;
      double best_score = -1;
      for (const auto& [u, w] : links) {
        double score = w / std::max(weighted_degree(u), 1e-300);
        if (p.metric == PLAMetric::kClusteringCoeff)
          score *= 1.0 + local_cc[static_cast<std::size_t>(u)];
        if (score > best_score) {
          best_score = score;
          best = u;
        }
      }
      // Line 8: accept only if overall modularity increases.  Moving the
      // singleton {u} into cluster C changes q by 2 (e_uC − a_u a_C).
      const double a_u = weighted_degree(best) * inv_2w;
      const double e_uc = links[best] * inv_2w;
      if (merge_delta_q(e_uc, a_u, a_c) <= 0) break;  // greedy stop

      membership[static_cast<std::size_t>(best)] = seed;
      a_c += a_u;
      ++csize;
      links.erase(best);
      add_neighbors_of(best);
    }
  }
}

}  // namespace

CommunityResult pla(const CSRGraph& g, const PLAParams& params) {
  if (g.directed())
    throw std::invalid_argument("pla requires an undirected graph");
  WallTimer timer;
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  const double total_w = std::max(g.total_edge_weight(), 1e-300);
  const double inv_2w = 1.0 / (2.0 * total_w);

  // Lines 1–2: remove bridges, split into components.
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(m), 1);
  if (m > 0) {
    const BiconnectedResult bcc = biconnected_components(g);
    for (eid_t e = 0; e < m; ++e)
      if (bcc.is_bridge[static_cast<std::size_t>(e)])
        alive[static_cast<std::size_t>(e)] = 0;
  }
  const Components comps = connected_components_masked(g, alive);
  std::vector<std::vector<vid_t>> comp_vertices(
      static_cast<std::size_t>(comps.count));
  for (vid_t v = 0; v < n; ++v)
    comp_vertices[static_cast<std::size_t>(
        comps.label[static_cast<std::size_t>(v)])]
        .push_back(v);

  std::vector<double> local_cc;
  if (params.metric == PLAMetric::kClusteringCoeff)
    local_cc = local_clustering_coefficients(g);

  // Lines 3–9: concurrent greedy aggregation, one component per thread —
  // the path-limited-search style coarse parallelism of §4.
  std::vector<vid_t> membership(static_cast<std::size_t>(n), kInvalidVid);
  const SplitMix64 base(params.seed);
  parallel::parallel_for_dynamic(
      static_cast<std::int64_t>(comps.count),
      [&](std::int64_t c) {
        aggregate_component(g, params, alive,
                            comp_vertices[static_cast<std::size_t>(c)],
                            local_cc, inv_2w,
                            base.fork(static_cast<std::uint64_t>(c)),
                            membership);
      },
      /*chunk=*/1);

  CommunityResult r;
  Clustering fine = normalize_labels(membership);
  r.iterations = fine.num_clusters;

  if (params.amalgamate && fine.num_clusters > 1) {
    // Top-level amalgamation ("finally amalgamate the clusters at the top
    // level"): build the weighted cluster graph — self-loops carry the
    // intra-cluster weight — and run the pMA greedy agglomeration on it.
    // Coarse-graph modularity equals fine-graph modularity, so the pMA cut
    // maximizes the real objective.
    EdgeList coarse_edges;
    {
      std::unordered_map<std::uint64_t, double> acc;
      const auto k = static_cast<std::uint64_t>(fine.num_clusters);
      for (const Edge& e : g.edges()) {
        auto cu = static_cast<std::uint64_t>(
            fine.membership[static_cast<std::size_t>(e.u)]);
        auto cv = static_cast<std::uint64_t>(
            fine.membership[static_cast<std::size_t>(e.v)]);
        if (cu > cv) std::swap(cu, cv);
        acc[cu * k + cv] += e.w;
      }
      coarse_edges.reserve(acc.size());
      for (const auto& [key, w] : acc) {
        coarse_edges.push_back({static_cast<vid_t>(key / k),
                                static_cast<vid_t>(key % k), w});
      }
    }
    BuildOptions opts;
    opts.remove_self_loops = false;
    const CSRGraph coarse = CSRGraph::from_edges(
        fine.num_clusters, coarse_edges, /*directed=*/false, opts);
    const CommunityResult top = pma(coarse);
    std::vector<vid_t> final_membership(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v)
      final_membership[static_cast<std::size_t>(v)] =
          top.clustering.membership[static_cast<std::size_t>(
              fine.membership[static_cast<std::size_t>(v)])];
    r.clustering = normalize_labels(final_membership);
  } else {
    r.clustering = std::move(fine);
  }

  r.modularity = modularity(g, r.clustering.membership);
  SNAP_VALIDATE(g, r.clustering.membership, r.modularity);
  r.seconds = timer.elapsed_s();
  return r;
}

}  // namespace snap
