#include "snap/community/gn.hpp"

#include <algorithm>

#include "snap/centrality/betweenness.hpp"
#include "snap/community/divisive_util.hpp"
#include "snap/community/modularity.hpp"
#include "snap/debug/validate.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/util/timer.hpp"

namespace snap {

CommunityResult girvan_newman(const CSRGraph& g, const DivisiveParams& params) {
  WallTimer timer;
  const eid_t m = g.num_edges();
  const eid_t max_iter = params.max_iterations > 0 ? params.max_iterations : m;

  std::vector<std::uint8_t> alive(static_cast<std::size_t>(m), 1);
  Components comps = connected_components(g);
  std::vector<vid_t> membership = comps.label;
  vid_t num_clusters = comps.count;
  vid_t next_label = num_clusters;

  CommunityResult r;
  r.divisive_trace.offer_best(modularity(g, membership), membership);

  eid_t since_best = 0;
  for (eid_t it = 0; it < max_iter; ++it) {
    // Step 4 (exact flavor): recompute edge betweenness on the surviving
    // graph and find the top edge.
    const std::vector<double> scores = edge_betweenness_masked(g, alive);
    eid_t best = kInvalidEid;
    double best_score = -1;
    for (eid_t e = 0; e < m; ++e) {
      if (alive[static_cast<std::size_t>(e)] &&
          scores[static_cast<std::size_t>(e)] > best_score) {
        best_score = scores[static_cast<std::size_t>(e)];
        best = e;
      }
    }
    if (best == kInvalidEid) break;  // no edges left

    // Step 5: mark deleted.
    alive[static_cast<std::size_t>(best)] = 0;
    const Edge ed = g.edge(best);
    // Step 6: incremental connected components + dendrogram update.
    const auto side = detail::split_after_deletion(g, alive, membership, ed.u,
                                                   ed.v, next_label);
    if (!side.empty()) {
      ++next_label;
      ++num_clusters;
    }
    // Step 7: modularity of the current partitioning (on the full graph).
    const double q = modularity(g, membership);
    const double prev_best = r.divisive_trace.best_modularity();
    r.divisive_trace.record(ed.u, ed.v, num_clusters, q);
    r.divisive_trace.offer_best(q, membership);
    since_best = q > prev_best ? 0 : since_best + 1;
    r.iterations = it + 1;

    if (params.target_clusters > 0 && num_clusters >= params.target_clusters)
      break;
    if (params.stall_iterations > 0 && since_best >= params.stall_iterations)
      break;
  }

  r.clustering = normalize_labels(r.divisive_trace.best_membership());
  r.modularity = r.divisive_trace.best_modularity();
  // Loose tolerance: the traced modularity was summed in original-label
  // order; normalize_labels permutes the per-community accumulation order.
  SNAP_VALIDATE(g, r.clustering.membership, r.modularity, 1e-6);
  r.seconds = timer.elapsed_s();
  return r;
}

}  // namespace snap
