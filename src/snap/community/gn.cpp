#include "snap/community/gn.hpp"

#include <algorithm>

#include "snap/centrality/betweenness.hpp"
#include "snap/centrality/brandes_core.hpp"
#include "snap/community/divisive_util.hpp"
#include "snap/community/modularity.hpp"
#include "snap/debug/validate.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/util/timer.hpp"

namespace snap {

namespace {

/// Exact GN for directed graphs: the component-restriction argument below
/// assumes undirected reachability (membership tracking splits on undirected
/// connectivity), so directed inputs keep the straightforward
/// full-recompute-per-round flavor.
CommunityResult girvan_newman_directed(const CSRGraph& g,
                                       const DivisiveParams& params) {
  WallTimer timer;
  const eid_t m = g.num_edges();
  const eid_t max_iter = params.max_iterations > 0 ? params.max_iterations : m;

  std::vector<std::uint8_t> alive(static_cast<std::size_t>(m), 1);
  Components comps = connected_components(g);
  std::vector<vid_t> membership = comps.label;
  vid_t num_clusters = comps.count;
  vid_t next_label = num_clusters;

  CommunityResult r;
  r.divisive_trace.offer_best(modularity(g, membership), membership);

  eid_t since_best = 0;
  for (eid_t it = 0; it < max_iter; ++it) {
    const std::vector<double> scores = edge_betweenness_masked(g, alive);
    eid_t best = kInvalidEid;
    double best_score = -1;
    for (eid_t e = 0; e < m; ++e) {
      if (alive[static_cast<std::size_t>(e)] &&
          scores[static_cast<std::size_t>(e)] > best_score) {
        best_score = scores[static_cast<std::size_t>(e)];
        best = e;
      }
    }
    if (best == kInvalidEid) break;

    alive[static_cast<std::size_t>(best)] = 0;
    const Edge ed = g.edge(best);
    const auto side = detail::split_after_deletion(g, alive, membership, ed.u,
                                                   ed.v, next_label);
    if (!side.empty()) {
      ++next_label;
      ++num_clusters;
    }
    const double q = modularity(g, membership);
    const double prev_best = r.divisive_trace.best_modularity();
    r.divisive_trace.record(ed.u, ed.v, num_clusters, q);
    r.divisive_trace.offer_best(q, membership);
    since_best = q > prev_best ? 0 : since_best + 1;
    r.iterations = it + 1;

    if (params.target_clusters > 0 && num_clusters >= params.target_clusters)
      break;
    if (params.stall_iterations > 0 && since_best >= params.stall_iterations)
      break;
  }

  r.clustering = normalize_labels(r.divisive_trace.best_membership());
  r.modularity = r.divisive_trace.best_modularity();
  SNAP_VALIDATE(g, r.clustering.membership, r.modularity, 1e-6);
  r.seconds = timer.elapsed_s();
  return r;
}

}  // namespace

CommunityResult girvan_newman(const CSRGraph& g, const DivisiveParams& params) {
  if (g.directed()) return girvan_newman_directed(g, params);
  WallTimer timer;
  const eid_t m = g.num_edges();
  const eid_t max_iter = params.max_iterations > 0 ? params.max_iterations : m;

  std::vector<std::uint8_t> alive(static_cast<std::size_t>(m), 1);
  detail::ComponentTracker tracker(g, connected_components(g));
  vid_t num_clusters = tracker.num_labels();

  // Cached edge-betweenness scores, maintained per component.  A BFS from s
  // only reaches s's component, so deleting an edge inside component C can
  // change scores only of edges in C — everything outside stays valid.
  // Scoring uses the deterministic static-blocked engine schedule, so a
  // component's score is a pure function of (its vertex list, the alive mask
  // restricted to it, the thread count) and the dirty-only loop below removes
  // exactly the same edge sequence a full recompute would.
  std::vector<double> scores(static_cast<std::size_t>(m), 0.0);
  brandes::ComponentScorer scorer(g);
  constexpr double kHalf = 0.5;  // undirected pairs counted from both ends
  for (vid_t c = 0; c < num_clusters; ++c) {
    const auto& verts = tracker.vertices_of(c);
    scorer.score(verts, verts, alive, kHalf, scores);
  }

  CommunityResult r;
  r.divisive_trace.offer_best(modularity(g, tracker.membership()),
                              tracker.membership());

  eid_t since_best = 0;
  for (eid_t it = 0; it < max_iter; ++it) {
    // Step 4: highest-scoring alive edge (ascending scan, strict '>' — the
    // first maximum wins, the tie-break every mode of this loop shares).
    eid_t best = kInvalidEid;
    double best_score = -1;
    for (eid_t e = 0; e < m; ++e) {
      if (alive[static_cast<std::size_t>(e)] &&
          scores[static_cast<std::size_t>(e)] > best_score) {
        best_score = scores[static_cast<std::size_t>(e)];
        best = e;
      }
    }
    if (best == kInvalidEid) break;  // no edges left

    // Step 5: mark deleted; step 6: incremental components + membership.
    alive[static_cast<std::size_t>(best)] = 0;
    const Edge ed = g.edge(best);
    const auto effect = tracker.apply_deletion(g, alive, ed.u, ed.v);
    if (effect.split()) ++num_clusters;

    // Rescore only what the deletion can have changed — the touched
    // component (or both halves if it split).  `full_recompute` is the
    // retained reference mode: rescore every live component instead (same
    // per-component computation, so the traces must match bitwise).
    if (params.full_recompute) {
      for (vid_t c = 0; c < tracker.num_labels(); ++c)
        scorer.score(tracker.vertices_of(c), tracker.vertices_of(c), alive,
                     kHalf, scores);
    } else {
      const auto& a = tracker.vertices_of(effect.first);
      scorer.score(a, a, alive, kHalf, scores);
      if (effect.split()) {
        const auto& b = tracker.vertices_of(effect.second);
        scorer.score(b, b, alive, kHalf, scores);
      }
    }

    // Step 7: modularity of the current partitioning (on the full graph).
    const double q = modularity(g, tracker.membership());
    const double prev_best = r.divisive_trace.best_modularity();
    r.divisive_trace.record(ed.u, ed.v, num_clusters, q);
    r.divisive_trace.offer_best(q, tracker.membership());
    since_best = q > prev_best ? 0 : since_best + 1;
    r.iterations = it + 1;

    if (params.target_clusters > 0 && num_clusters >= params.target_clusters)
      break;
    if (params.stall_iterations > 0 && since_best >= params.stall_iterations)
      break;
  }

  r.clustering = normalize_labels(r.divisive_trace.best_membership());
  r.modularity = r.divisive_trace.best_modularity();
  // Loose tolerance: the traced modularity was summed in original-label
  // order; normalize_labels permutes the per-community accumulation order.
  SNAP_VALIDATE(g, r.clustering.membership, r.modularity, 1e-6);
  r.seconds = timer.elapsed_s();
  return r;
}

}  // namespace snap
