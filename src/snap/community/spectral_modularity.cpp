#include "snap/community/spectral_modularity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "snap/community/modularity.hpp"
#include "snap/util/rng.hpp"
#include "snap/util/timer.hpp"

namespace snap {

namespace {

/// State for splitting one community C with the generalized modularity
/// matrix  B^(C)_ij = A_ij − k_i k_j/2m − δ_ij d_i,  where
/// d_i = Σ_{l∈C} (A_il − k_i k_l/2m)  keeps row sums zero within C.
struct CommunitySplitter {
  const CSRGraph& g;
  const std::vector<double>& k;       // weighted degree per vertex (global)
  double inv_m2;                      // 1 / (2W)

  std::vector<vid_t> verts;           // members of C
  std::vector<std::int32_t>& pos;     // shared scratch: vertex -> index, -1
  std::vector<double> d;              // row-sum correction per member
  double kc = 0;                      // Σ_{j∈C} k_j

  CommunitySplitter(const CSRGraph& graph, const std::vector<double>& deg,
                    double inv2w, std::vector<vid_t> members,
                    std::vector<std::int32_t>& pos_scratch)
      : g(graph), k(deg), inv_m2(inv2w), verts(std::move(members)),
        pos(pos_scratch) {
    for (std::size_t i = 0; i < verts.size(); ++i)
      pos[static_cast<std::size_t>(verts[i])] = static_cast<std::int32_t>(i);
    for (vid_t v : verts) kc += k[static_cast<std::size_t>(v)];
    d.resize(verts.size());
    for (std::size_t i = 0; i < verts.size(); ++i) {
      const vid_t v = verts[i];
      double deg_in_c = 0;
      const auto nb = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t a = 0; a < nb.size(); ++a)
        if (pos[static_cast<std::size_t>(nb[a])] >= 0) deg_in_c += ws[a];
      d[i] = deg_in_c - k[static_cast<std::size_t>(v)] * kc * inv_m2;
    }
  }

  ~CommunitySplitter() {
    for (vid_t v : verts) pos[static_cast<std::size_t>(v)] = -1;
  }

  /// y = B^(C) x  in O(m_C + n_C):  adjacency part minus the rank-one
  /// k (kᵀx)/2m part minus the diagonal correction.
  void matvec(const std::vector<double>& x, std::vector<double>& y) const {
    double kx = 0;
    for (std::size_t i = 0; i < verts.size(); ++i)
      kx += k[static_cast<std::size_t>(verts[i])] * x[i];
    for (std::size_t i = 0; i < verts.size(); ++i) {
      const vid_t v = verts[i];
      double acc = 0;
      const auto nb = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t a = 0; a < nb.size(); ++a) {
        const std::int32_t j = pos[static_cast<std::size_t>(nb[a])];
        if (j >= 0) acc += ws[a] * x[static_cast<std::size_t>(j)];
      }
      y[i] = acc - k[static_cast<std::size_t>(v)] * kx * inv_m2 - d[i] * x[i];
    }
  }

  /// Leading eigenpair of B^(C) by shifted power iteration.  Returns false
  /// if it did not converge within the budget.
  bool leading_eigenvector(const SpectralModularityParams& p,
                           std::vector<double>& x, double& eigenvalue) const {
    const std::size_t nc = verts.size();
    // Gershgorin-style shift making B + shift*I positive definite.
    double shift = 0;
    for (std::size_t i = 0; i < nc; ++i) {
      const vid_t v = verts[i];
      const double row = k[static_cast<std::size_t>(v)] +                // |A| row
                         k[static_cast<std::size_t>(v)] * kc * inv_m2 +  // rank one
                         std::abs(d[i]);
      shift = std::max(shift, row);
    }
    shift += 1.0;

    SplitMix64 rng(p.seed + nc);
    x.assign(nc, 0.0);
    for (auto& v : x) v = rng.next_double() - 0.5;
    std::vector<double> y(nc);
    double prev_ray = 0;
    for (int it = 0; it < p.power_iters; ++it) {
      matvec(x, y);
      for (std::size_t i = 0; i < nc; ++i) y[i] += shift * x[i];
      double nrm = 0;
      for (double v : y) nrm += v * v;
      nrm = std::sqrt(nrm);
      if (nrm == 0) return false;
      for (std::size_t i = 0; i < nc; ++i) x[i] = y[i] / nrm;
      // Rayleigh quotient of the shifted operator.
      matvec(x, y);
      double ray = 0;
      for (std::size_t i = 0; i < nc; ++i) ray += x[i] * y[i];
      if (it > 4 && std::abs(ray - prev_ray) <
                        p.tol * std::max(1.0, std::abs(ray))) {
        eigenvalue = ray;
        return true;
      }
      prev_ray = ray;
    }
    eigenvalue = prev_ray;
    return true;  // a near-converged vector still yields a valid ΔQ test
  }

  /// sᵀ B^(C) s for a ±1 vector.
  double quadratic_form(const std::vector<double>& s) const {
    std::vector<double> y(verts.size());
    matvec(s, y);
    double q = 0;
    for (std::size_t i = 0; i < verts.size(); ++i) q += s[i] * y[i];
    return q;
  }

  /// Greedy sign-flip fine-tuning (the Kernighan–Lin-flavored pass Newman
  /// recommends): repeatedly flip any vertex whose flip increases sᵀBs,
  /// with O(deg) incremental updates per flip.
  void fine_tune(std::vector<double>& s) const {
    const std::size_t nc = verts.size();
    // Decompose (B s)_i = adjS_i − k_i (kᵀs)/2m − d_i s_i.
    std::vector<double> adj_s(nc, 0.0);
    double ks = 0;
    for (std::size_t i = 0; i < nc; ++i) {
      const vid_t v = verts[i];
      ks += k[static_cast<std::size_t>(v)] * s[i];
      const auto nb = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t a = 0; a < nb.size(); ++a) {
        const std::int32_t j = pos[static_cast<std::size_t>(nb[a])];
        if (j >= 0) adj_s[i] += ws[a] * s[static_cast<std::size_t>(j)];
      }
    }
    for (int pass = 0; pass < 4; ++pass) {
      bool improved = false;
      for (std::size_t i = 0; i < nc; ++i) {
        const vid_t v = verts[i];
        const double ki = k[static_cast<std::size_t>(v)];
        const double bs_i = adj_s[i] - ki * ks * inv_m2 - d[i] * s[i];
        const double b_ii = -ki * ki * inv_m2 - d[i];  // A_ii = 0
        const double gain = -4.0 * s[i] * bs_i + 4.0 * b_ii;
        if (gain <= 1e-12) continue;
        // Flip s_i and update the decomposition incrementally.
        const double old = s[i];
        s[i] = -old;
        ks += ki * (s[i] - old);
        const auto nb = g.neighbors(v);
        const auto ws = g.weights(v);
        for (std::size_t a = 0; a < nb.size(); ++a) {
          const std::int32_t j = pos[static_cast<std::size_t>(nb[a])];
          if (j >= 0) adj_s[static_cast<std::size_t>(j)] += ws[a] * (s[i] - old);
        }
        improved = true;
      }
      if (!improved) break;
    }
  }
};

}  // namespace

CommunityResult spectral_modularity(const CSRGraph& g,
                                    const SpectralModularityParams& p) {
  if (g.directed())
    throw std::invalid_argument(
        "spectral_modularity requires an undirected graph");
  WallTimer timer;
  const vid_t n = g.num_vertices();
  const double total_w = std::max(g.total_edge_weight(), 1e-300);
  const double inv_m2 = 1.0 / (2.0 * total_w);

  std::vector<double> k(static_cast<std::size_t>(n), 0.0);
  for (vid_t v = 0; v < n; ++v) {
    double deg = 0;
    for (weight_t w : g.weights(v)) deg += w;
    k[static_cast<std::size_t>(v)] = deg;
  }

  std::vector<vid_t> label(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> pos_scratch(static_cast<std::size_t>(n), -1);
  vid_t next_label = 1;

  CommunityResult r;
  // Work list of communities still considered divisible.
  std::vector<std::vector<vid_t>> queue;
  {
    std::vector<vid_t> all(static_cast<std::size_t>(n));
    for (vid_t v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
    queue.push_back(std::move(all));
  }

  while (!queue.empty()) {
    std::vector<vid_t> comm = std::move(queue.back());
    queue.pop_back();
    if (static_cast<vid_t>(comm.size()) < std::max<vid_t>(p.min_community, 2))
      continue;

    CommunitySplitter split(g, k, inv_m2, std::move(comm), pos_scratch);
    std::vector<double> x;
    double shifted_eig = 0;
    if (!split.leading_eigenvector(p, x, shifted_eig)) continue;

    // Sign split, then fine-tune, then the ΔQ acceptance test:
    // ΔQ = sᵀ B^(C) s / 4m must be positive.
    std::vector<double> s(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) s[i] = x[i] >= 0 ? 1.0 : -1.0;
    if (p.fine_tune) split.fine_tune(s);
    const double delta_q = split.quadratic_form(s) * inv_m2 / 2.0;
    if (delta_q <= 1e-12) continue;  // indivisible

    std::vector<vid_t> plus, minus;
    for (std::size_t i = 0; i < s.size(); ++i) {
      (s[i] > 0 ? plus : minus).push_back(split.verts[i]);
    }
    if (plus.empty() || minus.empty()) continue;
    const vid_t new_label = next_label++;
    for (vid_t v : minus) label[static_cast<std::size_t>(v)] = new_label;
    ++r.iterations;
    queue.push_back(std::move(plus));
    queue.push_back(std::move(minus));
  }

  r.clustering = normalize_labels(label);
  r.modularity = modularity(g, r.clustering.membership);
  r.seconds = timer.elapsed_s();
  return r;
}

}  // namespace snap
