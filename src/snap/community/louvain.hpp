#pragma once

#include <cstdint>
#include <vector>

#include "snap/community/clustering.hpp"
#include "snap/debug/fwd.hpp"
#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Which move-phase engine louvain() runs.  `kAuto` picks the parallel
/// engine for levels large enough to amortize the fork/join cost and the
/// serial reference otherwise; the explicit values exist for the
/// differential tests, which require every path to produce bitwise
/// identical hierarchies (same semantics, independent orchestration).
/// `kSharded` runs the owner-computes move phase: contiguous vertex shards
/// evaluate their bucket members against per-shard replicas of the frozen
/// (labels, volume) state, broadcast accepted moves through the boundary
/// exchange layer between sub-rounds, and apply them in ascending vertex
/// order — the same sequence as the flat engines, hence the same bits.
enum class LouvainPath { kAuto, kSerial, kParallel, kSharded };

/// Parameters of the multilevel Louvain engine.
struct LouvainParams {
  LouvainPath path = LouvainPath::kAuto;
  /// Cap on coarsening levels (each level contracts communities to vertices).
  int max_levels = 24;
  /// Cap on local-move sweeps per level; a level also stops at the first
  /// sweep that moves no vertex.
  int max_sweeps = 32;
  /// Sub-rounds per sweep.  A sweep visits the vertex classes
  /// {v : v mod num_buckets == b} for b = 0..num_buckets-1; within one
  /// sub-round every move decision is evaluated against the frozen
  /// (labels, community-volume) state at sub-round start, and accepted moves
  /// are applied in ascending vertex order afterwards.  This is what makes
  /// the move phase a pure function of the graph — independent of thread
  /// count and schedule.  More buckets behave closer to sequential Louvain
  /// (better per-sweep quality) at the cost of more barriers.
  int num_buckets = 8;
  /// Stop coarsening when a level improves modularity by less than this.
  double min_level_gain = 1e-6;
  /// Shard count for LouvainPath::kSharded; 0 = parallel::num_threads().
  /// Ignored by the other paths.
  int num_shards = 0;
  /// After the hierarchy converges, run extra local-move sweeps on the
  /// *original* graph seeded with the final flat membership (the standard
  /// refinement pass: it can split badly-placed vertices back out of
  /// coarsened-in communities).
  bool refine = true;
};

/// One level of the Louvain hierarchy: the clustering found on this level's
/// graph, the per-community volume table (sum of member weighted degrees,
/// self-loops counted twice), the contracted graph the next level runs on,
/// and the move-phase statistics.  The volume table and membership are
/// private so the mutation tests corrupt them through `debug::Access`, the
/// same hook every other validated structure uses.
class LouvainLevel {
 public:
  LouvainLevel() = default;
  LouvainLevel(std::vector<vid_t> membership, std::vector<double> volume,
               CSRGraph coarse, double modularity, int sweeps, eid_t moves)
      : membership_(std::move(membership)),
        volume_(std::move(volume)),
        coarse_(std::move(coarse)),
        modularity_(modularity),
        sweeps_(sweeps),
        moves_(moves) {}

  /// Dense community labels over this level's graph.
  [[nodiscard]] const std::vector<vid_t>& membership() const {
    return membership_;
  }
  /// Per-community volume: sum of members' weighted degrees (a self-loop
  /// contributes twice its weight, once per stored arc).
  [[nodiscard]] const std::vector<double>& community_volume() const {
    return volume_;
  }
  /// The contracted graph (one vertex per community, intra-community weight
  /// kept as self-loops) the next level runs on.
  [[nodiscard]] const CSRGraph& coarse_graph() const { return coarse_; }
  [[nodiscard]] vid_t num_communities() const {
    return static_cast<vid_t>(volume_.size());
  }
  /// Modularity of this level's clustering, measured on this level's graph
  /// with a thread-count-invariant recomputation (modularity_ordered).
  [[nodiscard]] double modularity() const { return modularity_; }
  [[nodiscard]] int sweeps() const { return sweeps_; }
  [[nodiscard]] eid_t moves() const { return moves_; }

 private:
  friend struct debug::Access;

  std::vector<vid_t> membership_;
  std::vector<double> volume_;
  CSRGraph coarse_;
  double modularity_ = 0.0;
  int sweeps_ = 0;
  eid_t moves_ = 0;
};

/// Result of the multilevel engine: the shared CommunityResult surface
/// (final clustering, modularity, merge dendrogram, iterations = total local
/// moves) plus the per-level hierarchy for inspection and validation.
struct LouvainResult {
  CommunityResult community;
  std::vector<LouvainLevel> levels;
  /// Moves made by the post-hierarchy refinement pass (included in
  /// community.iterations).
  eid_t refine_moves = 0;
};

/// Parallel Louvain (the PLM move/contract/refine loop of Staudt–Meyerhenke,
/// engineered on SNAP structures): synchronized bucketed local-move phase
/// with per-thread community-volume deltas merged deterministically in
/// ascending vertex order, contraction via the shared snap/partition
/// coarsener (`contract_by_map`, intra-community weight kept as self-loops),
/// and an optional refinement pass on the finest graph.  Bitwise
/// deterministic at every thread count; `LouvainParams::path = kSerial`
/// selects the serial reference implementation of the same semantics, kept
/// as the oracle for the differential suite.  Requires an undirected graph.
LouvainResult louvain(const CSRGraph& g, const LouvainParams& params = {});

}  // namespace snap
