#pragma once

#include <cstdint>

#include "snap/community/clustering.hpp"
#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Parameters of the simulated-annealing modularity optimizer.
struct AnnealParams {
  double t_start = 2.5e-3;   ///< initial temperature (ΔQ scale)
  double t_end = 1e-6;       ///< stop when the temperature cools past this
  double cooling = 0.95;     ///< geometric cooling factor per sweep block
  int sweeps_per_temp = 4;   ///< full vertex sweeps at each temperature
  int restarts = 3;          ///< independent runs; the best result wins
  std::uint64_t seed = 1;
  /// Optional warm start (e.g. a pMA result); empty = all singletons.
  std::vector<vid_t> initial;
};

/// Simulated-annealing modularity maximization over single-vertex moves —
/// the expensive reference family Table 2's "best known" column comes from
/// ("the best-known modularity scores are determined either by an
/// exhaustive search, or using non-greedy heuristics", §5; Guimerà-Amaral
/// style SA is the canonical such heuristic).  A vertex move to a
/// neighboring (or fresh singleton) community is accepted when ΔQ > 0, or
/// with probability exp(ΔQ/T) otherwise.  O(deg) incremental ΔQ per
/// proposal.  Requires an undirected graph.  Much slower than the greedy
/// schemes — intended for small instances and for calibrating them.
CommunityResult anneal_modularity(const CSRGraph& g,
                                  const AnnealParams& params = {});

}  // namespace snap
