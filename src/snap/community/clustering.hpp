#pragma once

#include <vector>

#include "snap/ds/dendrogram.hpp"
#include "snap/graph/types.hpp"

namespace snap {

/// A clustering C = (C1, ..., Ck) of the vertex set, as a dense membership
/// vector (§2.3).
struct Clustering {
  std::vector<vid_t> membership;  ///< cluster id per vertex, 0..num_clusters-1
  vid_t num_clusters = 0;
};

/// Renumber arbitrary labels to dense 0..k-1 ids (first-seen order).
Clustering normalize_labels(const std::vector<vid_t>& labels);

/// Common result type of all community-identification algorithms.
struct CommunityResult {
  Clustering clustering;
  double modularity = 0;
  double seconds = 0;           ///< wall time of the run
  eid_t iterations = 0;         ///< edge removals (divisive) or merges (agglomerative)
  DivisiveTrace divisive_trace; ///< populated by GN / pBD
  MergeDendrogram dendrogram;   ///< populated by pMA
};

}  // namespace snap
