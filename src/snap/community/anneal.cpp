#include "snap/community/anneal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "snap/community/modularity.hpp"
#include "snap/util/rng.hpp"
#include "snap/util/timer.hpp"

namespace snap {

namespace {

CommunityResult anneal_once(const CSRGraph& g, const AnnealParams& params) {
  WallTimer timer;
  const vid_t n = g.num_vertices();
  const double total_w = std::max(g.total_edge_weight(), 1e-300);
  const double inv_m = 1.0 / total_w;
  const double inv_2m2 = 1.0 / (2.0 * total_w * total_w);

  // State: membership + per-community total degree.  Community ids are
  // arbitrary ints in [0, n + #fresh-singletons); normalize at the end.
  std::vector<vid_t> member(static_cast<std::size_t>(n));
  if (!params.initial.empty()) {
    if (params.initial.size() != static_cast<std::size_t>(n))
      throw std::invalid_argument("anneal warm start size mismatch");
    member = params.initial;
  } else {
    for (vid_t v = 0; v < n; ++v) member[static_cast<std::size_t>(v)] = v;
  }
  vid_t max_label = 0;
  for (vid_t l : member) max_label = std::max(max_label, l);

  std::vector<double> k(static_cast<std::size_t>(n), 0.0);
  for (vid_t v = 0; v < n; ++v)
    for (weight_t w : g.weights(v)) k[static_cast<std::size_t>(v)] += w;
  std::vector<double> comm_deg(static_cast<std::size_t>(max_label) + 2, 0.0);
  for (vid_t v = 0; v < n; ++v)
    comm_deg[static_cast<std::size_t>(member[static_cast<std::size_t>(v)])] +=
        k[static_cast<std::size_t>(v)];
  // One spare slot acts as the "fresh singleton" target; it is re-labeled
  // to a new id whenever a move into it is accepted.
  vid_t spare = max_label + 1;
  if (static_cast<std::size_t>(spare) >= comm_deg.size())
    comm_deg.resize(static_cast<std::size_t>(spare) + 1, 0.0);

  SplitMix64 rng(params.seed);
  std::unordered_map<vid_t, double> link;  // weight from v to each community

  double temp = params.t_start;
  while (temp > params.t_end) {
    for (int sweep = 0; sweep < params.sweeps_per_temp; ++sweep) {
      for (vid_t step = 0; step < n; ++step) {
        const auto v = static_cast<vid_t>(
            rng.next_bounded(static_cast<std::uint64_t>(n)));
        const vid_t from = member[static_cast<std::size_t>(v)];
        // Link weights from v into adjacent communities.
        link.clear();
        const auto nb = g.neighbors(v);
        const auto ws = g.weights(v);
        for (std::size_t i = 0; i < nb.size(); ++i) {
          if (nb[i] == v) continue;
          link[member[static_cast<std::size_t>(nb[i])]] += ws[i];
        }
        // Candidate target: a random neighbor community, or (rarely) the
        // spare singleton slot — the escape move SA needs to split bad
        // merges.
        vid_t to;
        if (nb.empty() || rng.next_bounded(8) == 0) {
          to = spare;
        } else {
          const vid_t u = nb[rng.next_bounded(nb.size())];
          to = member[static_cast<std::size_t>(u)];
        }
        if (to == from) continue;

        const double kv = k[static_cast<std::size_t>(v)];
        const double w_to = link.count(to) ? link[to] : 0.0;
        const double w_from = link.count(from) ? link[from] : 0.0;
        const double d_from_excl =
            comm_deg[static_cast<std::size_t>(from)] - kv;
        const double d_to = comm_deg[static_cast<std::size_t>(to)];
        // ΔQ of moving v: gains the to-links, loses the from-links, plus
        // the degree-product correction (standard local-move formula).
        const double delta_q =
            (w_to - w_from) * inv_m - kv * (d_to - d_from_excl) * inv_2m2;

        const bool accept =
            delta_q > 0 ||
            rng.next_double() < std::exp(delta_q / std::max(temp, 1e-300));
        if (!accept) continue;
        member[static_cast<std::size_t>(v)] = to;
        comm_deg[static_cast<std::size_t>(from)] -= kv;
        comm_deg[static_cast<std::size_t>(to)] += kv;
        if (to == spare) {
          // The spare slot became a real singleton; allocate a new spare.
          ++spare;
          if (static_cast<std::size_t>(spare) >= comm_deg.size())
            comm_deg.resize(static_cast<std::size_t>(spare) + 1, 0.0);
        }
      }
    }
    temp *= params.cooling;
  }

  // Greedy zero-temperature polish: accept only improving moves until none.
  bool improved = true;
  while (improved) {
    improved = false;
    for (vid_t v = 0; v < n; ++v) {
      const vid_t from = member[static_cast<std::size_t>(v)];
      link.clear();
      const auto nb = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (nb[i] == v) continue;
        link[member[static_cast<std::size_t>(nb[i])]] += ws[i];
      }
      const double kv = k[static_cast<std::size_t>(v)];
      const double w_from = link.count(from) ? link[from] : 0.0;
      const double d_from_excl = comm_deg[static_cast<std::size_t>(from)] - kv;
      vid_t best_to = from;
      double best_delta = 0;
      for (const auto& [to, w_to] : link) {
        if (to == from) continue;
        const double d_to = comm_deg[static_cast<std::size_t>(to)];
        const double delta_q =
            (w_to - w_from) * inv_m - kv * (d_to - d_from_excl) * inv_2m2;
        if (delta_q > best_delta + 1e-15) {
          best_delta = delta_q;
          best_to = to;
        }
      }
      if (best_to != from) {
        member[static_cast<std::size_t>(v)] = best_to;
        comm_deg[static_cast<std::size_t>(from)] -= kv;
        comm_deg[static_cast<std::size_t>(best_to)] += kv;
        improved = true;
      }
    }
  }

  CommunityResult r;
  r.clustering = normalize_labels(member);
  r.modularity = modularity(g, r.clustering.membership);
  r.seconds = timer.elapsed_s();
  return r;
}

}  // namespace

CommunityResult anneal_modularity(const CSRGraph& g,
                                  const AnnealParams& params) {
  if (g.directed())
    throw std::invalid_argument(
        "anneal_modularity requires an undirected graph");
  WallTimer timer;
  CommunityResult best;
  best.modularity = -2;
  const int restarts = std::max(params.restarts, 1);
  for (int r = 0; r < restarts; ++r) {
    AnnealParams p = params;
    p.seed = params.seed + static_cast<std::uint64_t>(r) * 0x9e3779b9ULL;
    CommunityResult run = anneal_once(g, p);
    if (run.modularity > best.modularity) best = std::move(run);
  }
  best.seconds = timer.elapsed_s();
  return best;
}

}  // namespace snap
