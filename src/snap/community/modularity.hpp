#pragma once

#include <vector>

#include "snap/community/clustering.hpp"
#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Modularity q(C) of a clustering (§2.3):
///
///   q(C) = Σ_i [ m(C_i)/m  −  (Σ_{v∈C_i} deg(v) / 2m)² ]
///
/// where m(C_i) counts intra-cluster edges.  Weighted graphs use edge
/// weights for both terms.  Values > 0.3 "indicate significant community
/// structure".  O(m) work, parallelized over the edge array.
double modularity(const CSRGraph& g, const std::vector<vid_t>& membership);

/// modularity() computed with a fixed serial accumulation order regardless
/// of thread count.  modularity() forks a team above ~64k edges and its
/// per-thread float partials round differently per thread count; this
/// variant trades that speed for a bitwise thread-count-invariant value, so
/// it is what the deterministic engines (Louvain, label propagation) report
/// and what the determinism harness may hash.
double modularity_ordered(const CSRGraph& g,
                          const std::vector<vid_t>& membership);

/// Modularity restricted to alive edges: the graph's edge set is taken to be
/// {e : edge_alive[e] != 0} for *both* terms (the divisive algorithms score
/// the clustering of the full graph, so they pass the full mask — this
/// variant exists for analyses of partially-deleted graphs).
double modularity_masked(const CSRGraph& g,
                         const std::vector<vid_t>& membership,
                         const std::vector<std::uint8_t>& edge_alive);

/// ΔQ of merging communities with degree fractions a_i, a_j and e_ij
/// inter-edge fraction (CNM update rule): ΔQ = 2 (e_ij − a_i a_j).
inline double merge_delta_q(double e_ij, double a_i, double a_j) {
  return 2.0 * (e_ij - a_i * a_j);
}

}  // namespace snap
