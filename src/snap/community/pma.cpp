#include "snap/community/pma.hpp"

#include <algorithm>
#include <stdexcept>

#include "snap/community/modularity.hpp"
#include "snap/debug/validate.hpp"
#include "snap/ds/lazy_max_heap.hpp"
#include "snap/ds/multilevel_bucket.hpp"
#include "snap/ds/sorted_dyn_array.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/timer.hpp"

namespace snap {

namespace {

using Row = SortedDynArray<vid_t, double>;

struct RowUpdate {
  vid_t k;
  double max_value;
  std::uint64_t stamp;
  bool has_max;
};

}  // namespace

CommunityResult pma(const CSRGraph& g, const PMAParams& params) {
  if (g.directed())
    throw std::invalid_argument("pma requires an undirected graph");
  WallTimer timer;
  const vid_t n = g.num_vertices();

  const double total_w = std::max(g.total_edge_weight(), 1e-300);
  const double inv_2w = 1.0 / (2.0 * total_w);

  // Community state; community ids are representative vertex ids.
  std::vector<double> a(static_cast<std::size_t>(n), 0.0);
  for (vid_t v = 0; v < n; ++v) {
    double dw = 0;
    for (weight_t w : g.weights(v)) dw += w;
    a[static_cast<std::size_t>(v)] = dw * inv_2w;
  }

  std::vector<Row> dq(static_cast<std::size_t>(n));
  // ΔQ = 2(e_ij − a_i a_j) lies in [−2, 1]; size the buckets accordingly.
  std::vector<MultiLevelBucket<vid_t>> rowmax(
      static_cast<std::size_t>(n), MultiLevelBucket<vid_t>(-2.0, 2.0));
  std::vector<std::uint64_t> stamp(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(n), 1);
  LazyMaxHeap<vid_t> heap;

  // Init: ΔQ_uv = 2 (e_uv − a_u a_v) for every edge (lines 3–7 of Alg. 2).
  parallel::parallel_for_dynamic(n, [&](vid_t u) {
    const auto nb = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const vid_t v = nb[i];
      if (v == u) continue;
      const double delta = merge_delta_q(ws[i] * inv_2w,
                                         a[static_cast<std::size_t>(u)],
                                         a[static_cast<std::size_t>(v)]);
      dq[static_cast<std::size_t>(u)].insert_or_assign(v, delta);
      rowmax[static_cast<std::size_t>(u)].insert(v, delta);
    }
  });
  for (vid_t u = 0; u < n; ++u) {
    if (!rowmax[static_cast<std::size_t>(u)].empty()) {
      const auto mx = rowmax[static_cast<std::size_t>(u)].max();
      heap.push(u, mx.value, stamp[static_cast<std::size_t>(u)]);
    }
  }

  double q = 0;
  for (vid_t v = 0; v < n; ++v)
    q -= a[static_cast<std::size_t>(v)] * a[static_cast<std::size_t>(v)];

  CommunityResult r;
  r.dendrogram = MergeDendrogram(n);
  r.dendrogram.set_baseline(q);
  vid_t num_communities = n;

  const auto current_stamp = [&](vid_t i) {
    return alive[static_cast<std::size_t>(i)] ? stamp[static_cast<std::size_t>(i)]
                                              : ~std::uint64_t{0};
  };

  while (num_communities > 1) {
    if (params.target_clusters > 0 &&
        num_communities <= params.target_clusters)
      break;
    // Line 9: community pair with the largest ΔQ anywhere.
    LazyMaxHeap<vid_t>::Entry top{};
    if (!heap.pop_valid(current_stamp, top)) break;  // disconnected remainder
    const vid_t i = top.id;
    if (dq[static_cast<std::size_t>(i)].empty()) continue;
    const auto mx = rowmax[static_cast<std::size_t>(i)].max();
    const vid_t j = mx.key;
    const double delta_q = mx.value;

    // Merge the smaller row into the larger one; the surviving community
    // keeps the bigger adjacency (classic CNM balance trick).
    const vid_t survivor =
        dq[static_cast<std::size_t>(i)].size() >=
                dq[static_cast<std::size_t>(j)].size()
            ? i
            : j;
    const vid_t absorbed = survivor == i ? j : i;
    const double a_i = a[static_cast<std::size_t>(survivor)];
    const double a_j = a[static_cast<std::size_t>(absorbed)];

    // Line 10a: merge the two matrix rows.  The union walk is a linear
    // two-pointer merge over the sorted dynamic arrays.
    Row merged;
    merged.reserve(dq[static_cast<std::size_t>(survivor)].size() +
                   dq[static_cast<std::size_t>(absorbed)].size());
    {
      const Row& ri = dq[static_cast<std::size_t>(survivor)];
      const Row& rj = dq[static_cast<std::size_t>(absorbed)];
      auto it_i = ri.begin();
      auto it_j = rj.begin();
      while (it_i != ri.end() || it_j != rj.end()) {
        vid_t k;
        double val;
        if (it_j == rj.end() ||
            (it_i != ri.end() && it_i->key < it_j->key)) {
          k = it_i->key;
          // Connected to the survivor only: ΔQ'_ik = ΔQ_ik − 2 a_j a_k.
          val = it_i->value - 2.0 * a_j * a[static_cast<std::size_t>(k)];
          ++it_i;
        } else if (it_i == ri.end() || it_j->key < it_i->key) {
          k = it_j->key;
          // Connected to the absorbed community only:
          // ΔQ'_ik = ΔQ_jk − 2 a_i a_k.
          val = it_j->value - 2.0 * a_i * a[static_cast<std::size_t>(k)];
          ++it_j;
        } else {
          k = it_i->key;
          // Connected to both: ΔQ'_ik = ΔQ_ik + ΔQ_jk.
          val = it_i->value + it_j->value;
          ++it_i;
          ++it_j;
        }
        if (k == survivor || k == absorbed) continue;
        merged.push_back_sorted(k, val);  // keys arrive in ascending order
      }
    }

    // Line 10b: update every neighbor row, in parallel — rows are distinct,
    // so threads touch disjoint state; heap pushes are batched afterwards.
    std::vector<RowUpdate> updates(merged.size());
    {
      const auto update_row = [&](std::size_t idx, const Row::Entry& item) {
        const vid_t k = item.key;
        const double val = item.value;
        auto& row = dq[static_cast<std::size_t>(k)];
        auto& rmax = rowmax[static_cast<std::size_t>(k)];
        if (const auto* e = row.find(survivor)) {
          rmax.erase(survivor, e->value);
          row.erase(survivor);
        }
        if (const auto* e = row.find(absorbed)) {
          rmax.erase(absorbed, e->value);
          row.erase(absorbed);
        }
        row.insert_or_assign(survivor, val);
        rmax.insert(survivor, val);
        ++stamp[static_cast<std::size_t>(k)];
        RowUpdate& u = updates[idx];
        u.k = k;
        u.stamp = stamp[static_cast<std::size_t>(k)];
        u.has_max = !rmax.empty();
        if (u.has_max) u.max_value = rmax.max().value;
      };
      // Spawning a parallel region every merge costs more than it saves on
      // short update lists; go parallel only for wide supernode rows.
      if (parallel::num_threads() > 1 && merged.size() >= 256) {
        std::vector<Row::Entry> items(merged.begin(), merged.end());
        parallel::parallel_for_dynamic(
            static_cast<std::int64_t>(items.size()),
            [&](std::int64_t idx) {
              update_row(static_cast<std::size_t>(idx),
                         items[static_cast<std::size_t>(idx)]);
            },
            /*chunk=*/16);
      } else {
        std::size_t idx = 0;
        for (const auto& item : merged) update_row(idx++, item);
      }
    }
    for (const RowUpdate& u : updates)
      if (u.has_max) heap.push(u.k, u.max_value, u.stamp);

    // Install the merged row for the survivor; retire the absorbed row.
    dq[static_cast<std::size_t>(survivor)] = std::move(merged);
    auto& smax = rowmax[static_cast<std::size_t>(survivor)];
    smax.clear();
    for (const auto& e : dq[static_cast<std::size_t>(survivor)])
      smax.insert(e.key, e.value);
    ++stamp[static_cast<std::size_t>(survivor)];
    if (!smax.empty())
      heap.push(survivor, smax.max().value,
                stamp[static_cast<std::size_t>(survivor)]);
    dq[static_cast<std::size_t>(absorbed)].clear();
    rowmax[static_cast<std::size_t>(absorbed)].clear();
    alive[static_cast<std::size_t>(absorbed)] = 0;
    a[static_cast<std::size_t>(survivor)] = a_i + a_j;
    a[static_cast<std::size_t>(absorbed)] = 0;

    q += delta_q;
    r.dendrogram.record_merge(i, j, q);
    ++r.iterations;
    --num_communities;
  }

  // Line 12: cut the dendrogram at the modularity peak.
  const auto membership = r.dendrogram.cut_at_best();
  r.clustering = normalize_labels(membership);
  r.modularity = modularity(g, r.clustering.membership);
  SNAP_VALIDATE(r.dendrogram);
  SNAP_VALIDATE(g, r.clustering.membership, r.modularity);
  r.seconds = timer.elapsed_s();
  return r;
}

}  // namespace snap
