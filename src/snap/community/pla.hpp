#pragma once

#include <cstdint>

#include "snap/community/clustering.hpp"
#include "snap/graph/csr_graph.hpp"

namespace snap {

/// The local measure pLA uses when growing a cluster (§4: "a local measure
/// such as degree or clustering coefficient").
enum class PLAMetric {
  kDegree,             ///< prefer candidates with the largest fraction of
                       ///< their edges already inside the cluster
  kClusteringCoeff,    ///< additionally weight candidates by their local
                       ///< clustering coefficient
};

/// Parameters of pLA (Algorithm 3).
struct PLAParams {
  PLAMetric metric = PLAMetric::kDegree;
  /// Seed vertices in BFS order instead of random order.
  bool bfs_seed_order = false;
  /// Cap on grown cluster size (0 = unlimited).
  vid_t max_cluster_size = 0;
  /// Run the final top-level amalgamation of clusters (greedy agglomeration
  /// on the cluster graph, which also re-joins the removed bridges).
  bool amalgamate = true;
  std::uint64_t seed = 1;
};

/// pLA: greedy local aggregation (Algorithm 3).  Removes bridges, splits
/// into components, grows clusters concurrently inside each component using
/// a *local* metric (no global centrality), accepting a vertex only when the
/// global modularity score increases, then amalgamates clusters at the top
/// level.  Requires an undirected graph.
CommunityResult pla(const CSRGraph& g, const PLAParams& params = {});

}  // namespace snap
