#pragma once

#include <vector>

#include "snap/graph/types.hpp"

namespace snap {

/// Agreement measures between two clusterings of the same vertex set, used
/// to validate detected communities against ground truth (or against
/// another algorithm's output).  Labels need not be dense.

/// Rand index: fraction of vertex pairs classified the same way (together /
/// apart) by both clusterings.  1 = identical partitions.  O(n log n).
double rand_index(const std::vector<vid_t>& a, const std::vector<vid_t>& b);

/// Adjusted Rand index: Rand index corrected for chance; 0 ≈ random
/// agreement, 1 = identical.
double adjusted_rand_index(const std::vector<vid_t>& a,
                           const std::vector<vid_t>& b);

/// Normalized mutual information in [0, 1] (arithmetic-mean normalization).
double normalized_mutual_information(const std::vector<vid_t>& a,
                                     const std::vector<vid_t>& b);

}  // namespace snap
