#pragma once

#include <cstdint>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Shortest-path length statistics estimated from sampled BFS sources.
struct PathLengthStats {
  double average = 0;                ///< mean hop distance over sampled pairs
  std::int64_t max_eccentricity = 0; ///< max BFS depth observed (diameter lower bound)
  std::int64_t pairs_sampled = 0;
};

/// Average shortest path length (§3's topological metric), estimated by
/// running BFS from `num_sources` random sources and averaging the hop
/// distances of all reached pairs.  `num_sources >= n` degrades to the exact
/// all-pairs average for connected graphs.
PathLengthStats sampled_path_length(const CSRGraph& g, vid_t num_sources,
                                    std::uint64_t seed = 1);

/// Exact average shortest path length + diameter (runs n BFS traversals —
/// only for small graphs).
PathLengthStats exact_path_length(const CSRGraph& g);

/// Diameter lower bound by repeated double sweeps: BFS from a random
/// vertex, then BFS again from the farthest vertex found; the second
/// eccentricity lower-bounds the diameter (and is exact on trees).  The
/// cheap way to verify the "low graph diameter" small-world property (§1)
/// on instances far too large for all-pairs.
std::int64_t double_sweep_diameter(const CSRGraph& g, int sweeps = 4,
                                   std::uint64_t seed = 1);

}  // namespace snap
