#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Attack-tolerance / lethality profile (§2.1's centrality applications:
/// "assessing lethality in biological networks"): remove vertices one batch
/// at a time in a caller-supplied priority order and record how the giant
/// connected component decays.  Skewed small-world networks survive random
/// failure but collapse under targeted hub removal — this kernel measures
/// exactly that curve.
struct RobustnessProfile {
  /// fraction_removed[i] — cumulative fraction of vertices removed at
  /// step i (step 0 = intact graph).
  std::vector<double> fraction_removed;
  /// giant_fraction[i] — giant component size / n after that removal.
  std::vector<double> giant_fraction;

  /// Area under the giant-fraction curve (1.0 = indestructible; the common
  /// scalar robustness index R of Schneider et al.).
  [[nodiscard]] double index() const;
};

/// Remove vertices in the order given (highest priority first), in
/// `steps` equal batches, recomputing the giant component after each batch.
/// O(steps · (m + n)).
RobustnessProfile robustness_profile(const CSRGraph& g,
                                     const std::vector<vid_t>& removal_order,
                                     int steps = 20);

/// Convenience orders: descending degree ("targeted attack") and seeded
/// uniform random ("random failure").
std::vector<vid_t> attack_order_by_degree(const CSRGraph& g);
std::vector<vid_t> attack_order_random(const CSRGraph& g,
                                       std::uint64_t seed = 1);

}  // namespace snap
