#include "snap/metrics/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "snap/kernels/connected_components.hpp"
#include "snap/metrics/path_length.hpp"
#include "snap/util/parallel.hpp"

namespace snap {

double average_degree(const CSRGraph& g) {
  return g.num_vertices() == 0
             ? 0.0
             : static_cast<double>(g.num_arcs()) /
                   static_cast<double>(g.num_vertices());
}

std::vector<eid_t> degree_histogram(const CSRGraph& g) {
  std::vector<eid_t> hist(static_cast<std::size_t>(g.max_degree()) + 1, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ++hist[static_cast<std::size_t>(g.degree(v))];
  return hist;
}

namespace {

/// Triangles incident to v, counting each once per incident pair (u, w) —
/// i.e. the numerator of v's local clustering coefficient.  Uses sorted-
/// adjacency merge intersection.
eid_t wedge_closures(const CSRGraph& g, vid_t v) {
  const auto nv = g.neighbors(v);
  eid_t closed = 0;
  for (vid_t u : nv) {
    if (u == v) continue;  // self-loop arcs close no wedges
    // |N(v) ∩ N(u)| counts w adjacent to both; each closed wedge (u, w)
    // appears twice over the u loop, so the caller divides by 2.
    const auto nu = g.neighbors(u);
    std::size_t i = 0, j = 0;
    while (i < nv.size() && j < nu.size()) {
      if (nv[i] < nu[j]) {
        ++i;
      } else if (nv[i] > nu[j]) {
        ++j;
      } else {
        if (nv[i] != v && nv[i] != u) ++closed;
        ++i;
        ++j;
      }
    }
  }
  return closed / 2;
}

/// Degree excluding self-loop arcs (a loop stores two arcs to v itself).
/// Clustering coefficients are defined on the simple graph: loops close no
/// wedges, so counting their arcs in the denominator deflates the ratio.
eid_t simple_degree(const CSRGraph& g, vid_t v) {
  const auto nv = g.neighbors(v);
  eid_t d = static_cast<eid_t>(nv.size());
  for (vid_t u : nv)
    if (u == v) --d;
  return d;
}

}  // namespace

std::vector<double> local_clustering_coefficients(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  std::vector<double> cc(static_cast<std::size_t>(n), 0.0);
  parallel::parallel_for_dynamic(n, [&](vid_t v) {
    const eid_t d = simple_degree(g, v);
    if (d < 2) return;
    const eid_t closed = wedge_closures(g, v);
    cc[static_cast<std::size_t>(v)] =
        2.0 * static_cast<double>(closed) /
        (static_cast<double>(d) * static_cast<double>(d - 1));
  });
  return cc;
}

double average_clustering_coefficient(const CSRGraph& g) {
  const auto cc = local_clustering_coefficients(g);
  if (cc.empty()) return 0;
  double sum = 0;
  for (double c : cc) sum += c;
  return sum / static_cast<double>(cc.size());
}

double global_clustering_coefficient(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  std::atomic<eid_t> closed{0}, wedges{0};
  parallel::parallel_for_dynamic(n, [&](vid_t v) {
    const eid_t d = simple_degree(g, v);
    if (d < 2) return;
    closed.fetch_add(wedge_closures(g, v), std::memory_order_relaxed);
    wedges.fetch_add(d * (d - 1) / 2, std::memory_order_relaxed);
  });
  const auto w = wedges.load();
  return w == 0 ? 0.0
                : static_cast<double>(closed.load()) / static_cast<double>(w);
}

std::vector<double> rich_club_coefficients(const CSRGraph& g) {
  const eid_t dmax = g.max_degree();
  std::vector<double> phi(static_cast<std::size_t>(dmax) + 1, 0.0);
  // Count, for each k: N_k = |{v : deg(v) > k}| and E_k = edges inside.
  // Sweep k descending, adding vertices as their degree threshold passes —
  // but a simple per-k recount is O(dmax * m); instead bucket by degree.
  std::vector<vid_t> nk(static_cast<std::size_t>(dmax) + 2, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ++nk[static_cast<std::size_t>(g.degree(v))];
  // nk[k] currently = #vertices with degree exactly k; make it #degree > k.
  std::vector<vid_t> above(static_cast<std::size_t>(dmax) + 1, 0);
  vid_t run = 0;
  for (eid_t k = dmax; k >= 0; --k) {
    above[static_cast<std::size_t>(k)] = run;  // degree > k
    run += nk[static_cast<std::size_t>(k)];
    if (k == 0) break;
  }
  // ek[k] = #edges whose both endpoints have degree > k
  //       = #edges with min(deg(u), deg(v)) > k.
  std::vector<eid_t> edge_min_deg_count(static_cast<std::size_t>(dmax) + 1, 0);
  for (const Edge& e : g.edges()) {
    const eid_t md = std::min(g.degree(e.u), g.degree(e.v));
    ++edge_min_deg_count[static_cast<std::size_t>(md)];
  }
  eid_t erun = 0;
  for (eid_t k = dmax; k >= 0; --k) {
    // edges with min degree > k
    const vid_t cnt = above[static_cast<std::size_t>(k)];
    if (cnt >= 2) {
      phi[static_cast<std::size_t>(k)] =
          2.0 * static_cast<double>(erun) /
          (static_cast<double>(cnt) * static_cast<double>(cnt - 1));
    }
    erun += edge_min_deg_count[static_cast<std::size_t>(k)];
    if (k == 0) break;
  }
  return phi;
}

double assortativity_coefficient(const CSRGraph& g) {
  // Newman's r over edges, using excess degree (degree - 1) per convention.
  double s_jk = 0, s_j = 0, s_k = 0, s_j2 = 0, s_k2 = 0;
  eid_t m = 0;
  for (const Edge& e : g.edges()) {
    const double j = static_cast<double>(g.degree(e.u)) - 1;
    const double k = static_cast<double>(g.degree(e.v)) - 1;
    // For undirected graphs include the edge in both orientations so the
    // correlation is symmetric.
    s_jk += j * k;
    s_j += j;
    s_k += k;
    s_j2 += j * j;
    s_k2 += k * k;
    ++m;
    if (!g.directed()) {
      s_jk += k * j;
      s_j += k;
      s_k += j;
      s_j2 += k * k;
      s_k2 += j * j;
      ++m;
    }
  }
  if (m == 0) return 0;
  const double im = 1.0 / static_cast<double>(m);
  const double num = im * s_jk - (im * s_j) * (im * s_k);
  const double den = std::sqrt((im * s_j2 - (im * s_j) * (im * s_j)) *
                               (im * s_k2 - (im * s_k) * (im * s_k)));
  return den == 0 ? 0 : num / den;
}

std::vector<double> average_neighbor_connectivity(const CSRGraph& g) {
  const eid_t dmax = g.max_degree();
  std::vector<double> sum(static_cast<std::size_t>(dmax) + 1, 0.0);
  std::vector<eid_t> cnt(static_cast<std::size_t>(dmax) + 1, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const eid_t d = g.degree(v);
    if (d == 0) continue;
    double s = 0;
    for (vid_t u : g.neighbors(v)) s += static_cast<double>(g.degree(u));
    sum[static_cast<std::size_t>(d)] += s / static_cast<double>(d);
    ++cnt[static_cast<std::size_t>(d)];
  }
  std::vector<double> knn(static_cast<std::size_t>(dmax) + 1, 0.0);
  for (eid_t k = 0; k <= dmax; ++k) {
    if (cnt[static_cast<std::size_t>(k)] > 0)
      knn[static_cast<std::size_t>(k)] =
          sum[static_cast<std::size_t>(k)] /
          static_cast<double>(cnt[static_cast<std::size_t>(k)]);
  }
  return knn;
}

GraphSummary summarize(const CSRGraph& g, vid_t path_samples,
                       std::uint64_t seed) {
  GraphSummary s;
  s.n = g.num_vertices();
  s.m = g.num_edges();
  s.directed = g.directed();
  s.avg_degree = average_degree(g);
  s.max_degree = g.max_degree();
  if (!g.directed()) s.avg_clustering = average_clustering_coefficient(g);
  s.assortativity = assortativity_coefficient(g);
  const Components comps = connected_components(g);
  s.num_components = comps.count;
  const auto sizes = comps.sizes();
  s.giant_component_size =
      sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  const PathLengthStats pls = sampled_path_length(g, path_samples, seed);
  s.approx_avg_path_length = pls.average;
  s.approx_diameter = pls.max_eccentricity;
  return s;
}

}  // namespace snap
