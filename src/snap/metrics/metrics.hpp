#pragma once

#include <cstdint>
#include <vector>

#include "snap/graph/csr_graph.hpp"

namespace snap {

/// Average vertex degree (arcs / vertices for directed graphs, 2m/n for
/// undirected).
double average_degree(const CSRGraph& g);

/// Histogram of vertex degrees: entry d holds the number of degree-d
/// vertices.
std::vector<eid_t> degree_histogram(const CSRGraph& g);

/// Local clustering coefficient of every vertex: the fraction of a vertex's
/// neighbor pairs that are themselves connected.  Degree < 2 vertices get 0.
/// Requires an undirected graph with sorted adjacency.
std::vector<double> local_clustering_coefficients(const CSRGraph& g);

/// Mean of the local clustering coefficients (Watts–Strogatz "network
/// clustering coefficient").
double average_clustering_coefficient(const CSRGraph& g);

/// Global (transitivity) clustering coefficient: 3 * triangles / open triads.
double global_clustering_coefficient(const CSRGraph& g);

/// Rich-club coefficient φ(k): density of the subgraph induced by vertices
/// of degree > k, for every k up to the max degree (§3's topological
/// metrics).  φ(k) is 0 where fewer than 2 such vertices exist.
std::vector<double> rich_club_coefficients(const CSRGraph& g);

/// Newman's degree assortativity coefficient r ∈ [-1, 1]: the Pearson
/// correlation of the degrees at the two endpoints of an edge — "an
/// indicator of community structure in a network" (§3).
double assortativity_coefficient(const CSRGraph& g);

/// Average neighbor connectivity: for every degree k, the mean degree of the
/// neighbors of degree-k vertices — "an indicator of whether vertices of a
/// given degree preferentially connect to high- or low-degree vertices" (§3).
/// Entry k is 0 when no degree-k vertex exists.
std::vector<double> average_neighbor_connectivity(const CSRGraph& g);

/// One-stop structural summary used by the exploratory-analysis examples.
struct GraphSummary {
  vid_t n = 0;
  eid_t m = 0;
  bool directed = false;
  double avg_degree = 0;
  eid_t max_degree = 0;
  double avg_clustering = 0;
  double assortativity = 0;
  vid_t num_components = 0;
  vid_t giant_component_size = 0;
  double approx_avg_path_length = 0;  ///< sampled; 0 for empty graphs
  std::int64_t approx_diameter = 0;   ///< max observed BFS eccentricity
};

/// Compute the summary (path statistics sampled from `path_samples` sources).
GraphSummary summarize(const CSRGraph& g, vid_t path_samples = 16,
                       std::uint64_t seed = 1);

}  // namespace snap
