#include "snap/metrics/robustness.hpp"

#include <algorithm>
#include <numeric>

#include "snap/ds/union_find.hpp"
#include "snap/util/rng.hpp"

namespace snap {

double RobustnessProfile::index() const {
  if (giant_fraction.empty()) return 0;
  double sum = 0;
  for (double f : giant_fraction) sum += f;
  return sum / static_cast<double>(giant_fraction.size());
}

RobustnessProfile robustness_profile(const CSRGraph& g,
                                     const std::vector<vid_t>& removal_order,
                                     int steps) {
  const vid_t n = g.num_vertices();
  RobustnessProfile p;
  if (n == 0 || steps <= 0) return p;

  // Process removals *backwards*: start from the empty graph and re-add
  // vertices in reverse order with union–find — the standard trick that
  // turns deletions into O(m α(n)) insertions overall.
  std::vector<std::uint8_t> present(static_cast<std::size_t>(n), 0);
  UnionFind uf(static_cast<std::size_t>(n));
  std::vector<vid_t> giant_at(static_cast<std::size_t>(n) + 1, 0);
  vid_t giant = 0;

  // giant_at[k] = giant size when the last k vertices of removal_order are
  // present (i.e. the first n-k have been removed).
  for (std::size_t k = 0; k < removal_order.size(); ++k) {
    const vid_t v = removal_order[removal_order.size() - 1 - k];
    present[static_cast<std::size_t>(v)] = 1;
    giant = std::max<vid_t>(giant, 1);
    for (vid_t u : g.neighbors(v)) {
      if (!present[static_cast<std::size_t>(u)]) continue;
      uf.unite(u, v);
    }
    giant = std::max<vid_t>(giant, uf.set_size(v));
    giant_at[k + 1] = giant;
  }

  for (int s = 0; s <= steps; ++s) {
    const auto removed = static_cast<std::size_t>(
        static_cast<double>(n) * s / steps);
    const std::size_t kept = static_cast<std::size_t>(n) - removed;
    p.fraction_removed.push_back(static_cast<double>(removed) /
                                 static_cast<double>(n));
    p.giant_fraction.push_back(static_cast<double>(giant_at[kept]) /
                               static_cast<double>(n));
  }
  return p;
}

std::vector<vid_t> attack_order_by_degree(const CSRGraph& g) {
  std::vector<vid_t> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), vid_t{0});
  std::stable_sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    return g.degree(a) > g.degree(b);
  });
  return order;
}

std::vector<vid_t> attack_order_random(const CSRGraph& g,
                                       std::uint64_t seed) {
  std::vector<vid_t> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), vid_t{0});
  SplitMix64 rng(seed);
  for (std::size_t k = order.size(); k > 1; --k)
    std::swap(order[k - 1], order[rng.next_bounded(k)]);
  return order;
}

}  // namespace snap
