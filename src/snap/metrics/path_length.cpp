#include "snap/metrics/path_length.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "snap/kernels/bfs.hpp"
#include "snap/kernels/frontier.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap {

namespace {

PathLengthStats from_sources(const CSRGraph& g,
                             const std::vector<vid_t>& sources) {
  std::atomic<std::int64_t> total_dist{0};
  std::atomic<std::int64_t> total_pairs{0};
  std::atomic<std::int64_t> max_ecc{0};
  const auto num_sources = static_cast<vid_t>(sources.size());
  // One direction-optimizing engine per thread: all traversal scratch is
  // allocated once per thread and reused across the source sweep.
  std::atomic<vid_t> cursor{0};
  parallel::run_team(parallel::num_threads(), [&](int) {
    BfsEngine engine;
    BFSResult b;
    for (vid_t i;
         (i = cursor.fetch_add(1, std::memory_order_relaxed)) < num_sources;) {
      engine.run_serial_into(g, sources[static_cast<std::size_t>(i)], {}, b);
      std::int64_t sum = 0, cnt = 0;
      for (std::int64_t d : b.dist) {
        if (d > 0) {
          sum += d;
          ++cnt;
        }
      }
      total_dist.fetch_add(sum, std::memory_order_relaxed);
      total_pairs.fetch_add(cnt, std::memory_order_relaxed);
      parallel::atomic_fetch_max(max_ecc, b.num_levels);
    }
  });
  PathLengthStats s;
  s.pairs_sampled = total_pairs.load();
  s.average = s.pairs_sampled > 0 ? static_cast<double>(total_dist.load()) /
                                        static_cast<double>(s.pairs_sampled)
                                  : 0.0;
  s.max_eccentricity = max_ecc.load();
  return s;
}

}  // namespace

PathLengthStats sampled_path_length(const CSRGraph& g, vid_t num_sources,
                                    std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  if (n == 0) return {};
  if (num_sources >= n) return exact_path_length(g);
  SplitMix64 rng(seed);
  std::vector<vid_t> sources(static_cast<std::size_t>(num_sources));
  for (auto& s : sources)
    s = static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
  return from_sources(g, sources);
}

PathLengthStats exact_path_length(const CSRGraph& g) {
  std::vector<vid_t> sources(static_cast<std::size_t>(g.num_vertices()));
  std::iota(sources.begin(), sources.end(), vid_t{0});
  return from_sources(g, sources);
}

std::int64_t double_sweep_diameter(const CSRGraph& g, int sweeps,
                                   std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  if (n == 0) return 0;
  SplitMix64 rng(seed);
  std::int64_t best = 0;
  BfsEngine engine;  // top-level sweeps: parallel hybrid BFS, pooled scratch
  for (int i = 0; i < sweeps; ++i) {
    const auto start = static_cast<vid_t>(
        rng.next_bounded(static_cast<std::uint64_t>(n)));
    const BFSResult first = engine.run(g, start);
    // Farthest reached vertex becomes the second sweep's source.
    vid_t far = start;
    for (vid_t v = 0; v < n; ++v) {
      if (first.dist[static_cast<std::size_t>(v)] >
          first.dist[static_cast<std::size_t>(far)])
        far = v;
    }
    const BFSResult second = engine.run(g, far);
    best = std::max(best, second.num_levels);
  }
  return best;
}

}  // namespace snap
