#include <gtest/gtest.h>

#include <algorithm>

#include "snap/community/modularity.hpp"
#include "snap/gen/generators.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/metrics/metrics.hpp"

namespace snap {
namespace {

TEST(Rmat, SizeAndDeterminism) {
  gen::RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  p.seed = 99;
  const auto g1 = gen::rmat(p);
  const auto g2 = gen::rmat(p);
  EXPECT_EQ(g1.num_vertices(), 4096);
  // Dedup + self-loop removal shrinks m slightly below edge_factor * n.
  EXPECT_GT(g1.num_edges(), 8 * 4096 * 7 / 10);
  EXPECT_LE(g1.num_edges(), 8 * 4096);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
}

TEST(Rmat, SkewedDegreeDistribution) {
  gen::RmatParams p;
  p.scale = 13;
  p.edge_factor = 8;
  const auto g = gen::rmat(p);
  // Power-law-ish: the max degree should far exceed the average.
  EXPECT_GT(static_cast<double>(g.max_degree()),
            8.0 * average_degree(g));
}

TEST(Rmat, ExplicitEdgeCount) {
  gen::RmatParams p;
  p.scale = 10;
  p.m = 5000;
  p.noise = 0;
  const auto g = gen::rmat(p);
  EXPECT_LE(g.num_edges(), 5000);
  EXPECT_GT(g.num_edges(), 3000);
}

TEST(ErdosRenyi, UniformDegrees) {
  const auto g = gen::erdos_renyi(4096, 32768, false, 7);
  EXPECT_EQ(g.num_vertices(), 4096);
  // An ER graph's max degree stays within a few multiples of the mean.
  EXPECT_LT(static_cast<double>(g.max_degree()), 4.0 * average_degree(g));
}

TEST(ErdosRenyi, Deterministic) {
  const auto a = gen::erdos_renyi(100, 300, false, 5);
  const auto b = gen::erdos_renyi(100, 300, false, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (const Edge& e : a.edges()) EXPECT_TRUE(b.has_edge(e.u, e.v));
}

TEST(GridRoad, ConnectedAndNearlyEuclidean) {
  const auto g = gen::grid_road(50, 50);
  EXPECT_EQ(g.num_vertices(), 2500);
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 1);
  // Max degree is bounded by the lattice structure (4 grid + diagonals +
  // stitching), nothing like a hub.
  EXPECT_LE(g.max_degree(), 12);
}

TEST(WattsStrogatz, RingPlusRewiring) {
  const auto g0 = gen::watts_strogatz(500, 4, 0.0, 3);
  EXPECT_EQ(g0.num_edges(), 500 * 4);
  // beta=0 ring lattice: every vertex has degree exactly 2k.
  for (vid_t v = 0; v < g0.num_vertices(); ++v) EXPECT_EQ(g0.degree(v), 8);
  // Rewiring keeps the edge count (minus dedupe collisions) but breaks
  // regularity and lowers the clustering coefficient.
  const auto g1 = gen::watts_strogatz(500, 4, 0.5, 3);
  EXPECT_LT(average_clustering_coefficient(g1),
            average_clustering_coefficient(g0));
}

TEST(PlantedPartition, GroundTruthHasHighModularity) {
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(1000, 10, 12.0, 2.0, 11, &truth);
  ASSERT_EQ(truth.size(), 1000u);
  const double q = modularity(g, truth);
  EXPECT_GT(q, 0.5);  // strong community structure by construction
}

TEST(PlantedPartition, InterEdgesCrossCommunities) {
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(400, 4, 10.0, 0.0, 5, &truth);
  // deg_out = 0: every edge must be intra-community.
  for (const Edge& e : g.edges())
    EXPECT_EQ(truth[static_cast<std::size_t>(e.u)],
              truth[static_cast<std::size_t>(e.v)]);
}

TEST(Karate, CanonicalSize) {
  const auto g = gen::karate_club();
  EXPECT_EQ(g.num_vertices(), 34);
  EXPECT_EQ(g.num_edges(), 78);
  EXPECT_EQ(connected_components(g).count, 1);
  // Instructor (0) and president (33) are the two hubs.
  EXPECT_EQ(g.degree(0), 16);
  EXPECT_EQ(g.degree(33), 17);
}

TEST(Classic, PathCycleCompleteStar) {
  EXPECT_EQ(gen::path_graph(10).num_edges(), 9);
  EXPECT_EQ(gen::cycle_graph(10).num_edges(), 10);
  EXPECT_EQ(gen::complete_graph(6).num_edges(), 15);
  const auto s = gen::star_graph(7);
  EXPECT_EQ(s.num_vertices(), 8);
  EXPECT_EQ(s.degree(0), 7);
}

TEST(Classic, BarbellHasBridge) {
  const auto g = gen::barbell_graph(5);
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.num_edges(), 2 * 10 + 1);  // two K5 + bridge
  EXPECT_TRUE(g.has_edge(4, 5));
}

}  // namespace
}  // namespace snap
