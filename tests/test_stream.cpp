// Unit tests for the streaming-update engine: batch canonicalization
// (last-writer-wins semantics), parallel application, epoch snapshots, and
// the three incremental observers.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "snap/gen/generators.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/graph/dynamic_graph.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/stream/observers.hpp"
#include "snap/stream/streaming_graph.hpp"
#include "snap/stream/update_batch.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

using stream::AppliedBatch;
using stream::ApplyStats;
using stream::ClusteringObserver;
using stream::ComponentsObserver;
using stream::DegreeStatsObserver;
using stream::StreamingGraph;
using stream::UpdateBatch;
using stream::UpdateKind;

void expect_same_csr(const CSRGraph& a, const CSRGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  ASSERT_EQ(a.directed(), b.directed());
  for (vid_t v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.arc_begin(v), b.arc_begin(v)) << "offsets differ at " << v;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "adjacency differs at " << v;
    const auto wa = a.weights(v);
    const auto wb = b.weights(v);
    ASSERT_TRUE(std::equal(wa.begin(), wa.end(), wb.begin(), wb.end()))
        << "weights differ at " << v;
  }
}

// ------------------------------------------------------------ canonicalize

TEST(UpdateBatch, CanonicalizeExpandsUndirectedArcs) {
  UpdateBatch b;
  b.insert(1, 2);
  const auto cb = b.canonicalize(/*directed=*/false);
  ASSERT_EQ(cb.arcs.size(), 2u);
  EXPECT_EQ(cb.arcs[0].owner, 1);
  EXPECT_EQ(cb.arcs[0].nbr, 2);
  EXPECT_EQ(cb.arcs[1].owner, 2);
  EXPECT_EQ(cb.arcs[1].nbr, 1);
  EXPECT_EQ(cb.max_vid, 2);
  EXPECT_EQ(cb.raw_records, 1u);

  const auto cd = b.canonicalize(/*directed=*/true);
  ASSERT_EQ(cd.arcs.size(), 1u);
  EXPECT_EQ(cd.arcs[0].owner, 1);
}

TEST(UpdateBatch, LastWriterWinsInsertThenDelete) {
  UpdateBatch b;
  b.insert(0, 1);
  b.erase(0, 1);
  const auto cb = b.canonicalize(false);
  ASSERT_EQ(cb.arcs.size(), 2u);  // one surviving record per direction
  EXPECT_EQ(cb.arcs[0].kind, UpdateKind::kDelete);
  EXPECT_EQ(cb.arcs[1].kind, UpdateKind::kDelete);
}

TEST(UpdateBatch, LastWriterWinsDeleteThenInsert) {
  UpdateBatch b;
  b.erase(0, 1);
  b.insert(0, 1);
  const auto cb = b.canonicalize(false);
  ASSERT_EQ(cb.arcs.size(), 2u);
  EXPECT_EQ(cb.arcs[0].kind, UpdateKind::kInsert);
}

TEST(UpdateBatch, SelfLoopDedupesToOneArc) {
  UpdateBatch b;
  b.insert(3, 3);
  const auto cb = b.canonicalize(false);
  ASSERT_EQ(cb.arcs.size(), 1u);
  EXPECT_EQ(cb.arcs[0].owner, 3);
  EXPECT_EQ(cb.arcs[0].nbr, 3);
}

TEST(UpdateBatch, RejectsNegativeIds) {
  UpdateBatch b;
  EXPECT_THROW(b.insert(-1, 2), std::invalid_argument);
  EXPECT_THROW(b.erase(0, -7), std::invalid_argument);
}

TEST(UpdateBatch, CanonicalizeIsThreadCountInvariant) {
  UpdateBatch b;
  SplitMix64 rng(5);
  for (int i = 0; i < 50000; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(300));
    const auto v = static_cast<vid_t>(rng.next_bounded(300));
    if (rng.next_bounded(3) == 0)
      b.erase(u, v, static_cast<std::uint64_t>(i));
    else
      b.insert(u, v, static_cast<std::uint64_t>(i));
  }
  parallel::ThreadScope s1(1);
  const auto ref = b.canonicalize(false);
  for (int t : {2, 4, 8}) {
    parallel::ThreadScope st(t);
    const auto cb = b.canonicalize(false);
    ASSERT_EQ(cb.arcs.size(), ref.arcs.size()) << "threads=" << t;
    for (std::size_t i = 0; i < cb.arcs.size(); ++i) {
      EXPECT_EQ(cb.arcs[i].owner, ref.arcs[i].owner);
      EXPECT_EQ(cb.arcs[i].nbr, ref.arcs[i].nbr);
      EXPECT_EQ(cb.arcs[i].seq, ref.arcs[i].seq);
      EXPECT_EQ(cb.arcs[i].kind, ref.arcs[i].kind);
    }
  }
}

// ------------------------------------------------------------------- apply

TEST(StreamingGraph, ApplyCountsEffectiveChangesOnly) {
  StreamingGraph sg(8, /*directed=*/false);
  UpdateBatch b;
  b.insert(0, 1);
  b.insert(0, 1);       // duplicate in batch
  b.insert(1, 2);
  b.erase(5, 6);        // absent: no-op
  const ApplyStats st = sg.apply(b);
  EXPECT_EQ(st.raw_records, 4u);
  EXPECT_EQ(st.applied_inserts, 2u);
  EXPECT_EQ(st.applied_deletes, 0u);
  EXPECT_EQ(sg.graph().num_edges(), 2);
  EXPECT_TRUE(sg.graph().has_edge(0, 1));
  EXPECT_TRUE(sg.graph().has_edge(2, 1));

  // Re-applying the same inserts is a no-op.
  UpdateBatch b2;
  b2.insert(1, 0);
  const ApplyStats st2 = sg.apply(b2);
  EXPECT_EQ(st2.applied_inserts, 0u);
  EXPECT_EQ(sg.graph().num_edges(), 2);
}

TEST(StreamingGraph, InsertDeleteOfSameEdgeInOneBatchResolvesToDelete) {
  StreamingGraph sg(4, false);
  UpdateBatch b;
  b.insert(0, 1);
  b.erase(0, 1);
  sg.apply(b);
  EXPECT_FALSE(sg.graph().has_edge(0, 1));
  EXPECT_EQ(sg.graph().num_edges(), 0);

  // And with the edge pre-existing, delete-then-insert keeps it.
  UpdateBatch pre;
  pre.insert(2, 3);
  sg.apply(pre);
  UpdateBatch b2;
  b2.erase(2, 3);
  b2.insert(2, 3);
  const ApplyStats st = sg.apply(b2);
  EXPECT_TRUE(sg.graph().has_edge(2, 3));
  EXPECT_EQ(st.applied_inserts, 0u);  // net no-op on a present edge
  EXPECT_EQ(st.applied_deletes, 0u);
  EXPECT_EQ(sg.graph().num_edges(), 1);
}

TEST(StreamingGraph, AutoGrowsVertexSet) {
  StreamingGraph sg(3, false);
  UpdateBatch b;
  b.insert(10, 20);
  sg.apply(b);
  EXPECT_EQ(sg.graph().num_vertices(), 21);
  EXPECT_TRUE(sg.graph().has_edge(10, 20));
}

TEST(StreamingGraph, SelfLoopCountsOnce) {
  StreamingGraph sg(4, false);
  UpdateBatch b;
  b.insert(2, 2);
  const ApplyStats st = sg.apply(b);
  EXPECT_EQ(st.applied_inserts, 1u);
  EXPECT_EQ(sg.graph().num_edges(), 1);
  EXPECT_EQ(sg.graph().degree(2), 1);
  UpdateBatch d;
  d.erase(2, 2);
  const ApplyStats sd = sg.apply(d);
  EXPECT_EQ(sd.applied_deletes, 1u);
  EXPECT_EQ(sg.graph().num_edges(), 0);
}

TEST(StreamingGraph, DirectedArcsAreOneSided) {
  StreamingGraph sg(4, /*directed=*/true);
  UpdateBatch b;
  b.insert(0, 1);
  sg.apply(b);
  EXPECT_TRUE(sg.graph().has_edge(0, 1));
  EXPECT_FALSE(sg.graph().has_edge(1, 0));
  EXPECT_EQ(sg.graph().num_edges(), 1);
}

TEST(StreamingGraph, SerialAndParallelApplyAgree) {
  const CSRGraph base = gen::erdos_renyi(200, 600, false, 3);
  SplitMix64 rng(17);
  UpdateBatch b;
  for (int i = 0; i < 3000; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(200));
    const auto v = static_cast<vid_t>(rng.next_bounded(200));
    if (rng.next_bounded(3) == 0)
      b.erase(u, v);
    else
      b.insert(u, v);
  }
  StreamingGraph sp = StreamingGraph::from_csr(base);
  StreamingGraph ss = StreamingGraph::from_csr(base);
  sp.apply(b);
  ss.apply_serial(b);
  expect_same_csr(sp.snapshot(), ss.snapshot());
}

TEST(StreamingGraph, SnapshotIsEpochCached) {
  StreamingGraph sg(4, false);
  UpdateBatch b;
  b.insert(0, 1);
  sg.apply(b);
  const CSRGraph* s1 = &sg.snapshot();
  const CSRGraph* s2 = &sg.snapshot();
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1->num_edges(), 1);
  UpdateBatch b2;
  b2.insert(1, 2);
  sg.apply(b2);
  EXPECT_EQ(sg.snapshot().num_edges(), 2);
  EXPECT_EQ(sg.epoch(), 2u);
}

// --------------------------------------------------------------- observers

TEST(ComponentsObserver, InsertOnlyBatchesNeverRebuild) {
  StreamingGraph sg(6, false);
  ComponentsObserver comps(sg.graph());
  sg.add_observer(&comps);
  UpdateBatch b;
  b.insert(0, 1);
  b.insert(2, 3);
  sg.apply(b);
  EXPECT_EQ(comps.num_components(), 4);
  EXPECT_TRUE(comps.connected(0, 1));
  EXPECT_FALSE(comps.connected(1, 2));
  EXPECT_EQ(comps.rebuilds(), 0);
}

TEST(ComponentsObserver, AtMostOneRebuildPerBatch) {
  StreamingGraph sg(8, false);
  ComponentsObserver comps(sg.graph());
  sg.add_observer(&comps);
  UpdateBatch chain;
  for (vid_t v = 0; v + 1 < 8; ++v) chain.insert(v, v + 1);
  sg.apply(chain);
  EXPECT_EQ(comps.rebuilds(), 0);

  // A batch with many deletions: one stale flag, one rebuild, no matter how
  // many queries follow.
  UpdateBatch dels;
  dels.erase(1, 2);
  dels.erase(4, 5);
  dels.erase(6, 7);
  sg.apply(dels);
  EXPECT_TRUE(comps.stale());
  for (int q = 0; q < 50; ++q) {
    EXPECT_EQ(comps.num_components(), 4);
    EXPECT_FALSE(comps.connected(0, 2));
    EXPECT_TRUE(comps.connected(2, 4));
  }
  EXPECT_EQ(comps.rebuilds(), 1);

  // Next deleting batch: at most one more.
  UpdateBatch dels2;
  dels2.erase(2, 3);
  sg.apply(dels2);
  for (int q = 0; q < 50; ++q) comps.num_components();
  EXPECT_EQ(comps.rebuilds(), 2);
}

TEST(ComponentsObserver, MixedBatchWithCycleDeletionStaysConnected) {
  StreamingGraph sg(3, false);
  ComponentsObserver comps(sg.graph());
  sg.add_observer(&comps);
  UpdateBatch tri;
  tri.insert(0, 1);
  tri.insert(1, 2);
  tri.insert(2, 0);
  sg.apply(tri);
  UpdateBatch del;
  del.erase(0, 1);
  sg.apply(del);
  EXPECT_TRUE(comps.connected(0, 1));  // via 2
  EXPECT_EQ(comps.num_components(), 1);
}

TEST(ComponentsObserver, GrowsWithTheGraph) {
  StreamingGraph sg(2, false);
  ComponentsObserver comps(sg.graph());
  sg.add_observer(&comps);
  UpdateBatch b;
  b.insert(0, 5);
  sg.apply(b);
  EXPECT_EQ(comps.num_components(), 5);  // {0,5} + 4 singletons
  EXPECT_TRUE(comps.connected(0, 5));
}

TEST(DegreeStatsObserver, TracksDegreesMaxAndHistogram) {
  StreamingGraph sg(5, false);
  DegreeStatsObserver deg(sg.graph());
  sg.add_observer(&deg);
  EXPECT_EQ(deg.max_degree(), 0);
  ASSERT_EQ(deg.histogram().size(), 1u);
  EXPECT_EQ(deg.histogram()[0], 5);

  UpdateBatch star;
  for (vid_t leaf = 1; leaf < 5; ++leaf) star.insert(0, leaf);
  sg.apply(star);
  EXPECT_EQ(deg.max_degree(), 4);
  EXPECT_EQ(deg.degree(0), 4);
  EXPECT_EQ(deg.degree(3), 1);
  ASSERT_EQ(deg.histogram().size(), 5u);
  EXPECT_EQ(deg.histogram()[1], 4);
  EXPECT_EQ(deg.histogram()[4], 1);

  // Deleting shrinks the max and trims the histogram.
  UpdateBatch del;
  del.erase(0, 1);
  del.erase(0, 2);
  sg.apply(del);
  EXPECT_EQ(deg.max_degree(), 2);
  ASSERT_EQ(deg.histogram().size(), 3u);
  EXPECT_EQ(deg.histogram()[0], 2);
  for (vid_t v = 0; v < 5; ++v)
    EXPECT_EQ(deg.degree(v), sg.graph().degree(v)) << "v=" << v;
}

TEST(DegreeStatsObserver, SelfLoopAddsOneLikeDynamicGraph) {
  StreamingGraph sg(3, false);
  DegreeStatsObserver deg(sg.graph());
  sg.add_observer(&deg);
  UpdateBatch b;
  b.insert(1, 1);
  sg.apply(b);
  EXPECT_EQ(deg.degree(1), 1);
  EXPECT_EQ(deg.degree(1), sg.graph().degree(1));
}

TEST(ClusteringObserver, RejectsDirectedGraphs) {
  DynamicGraph dg(4, /*directed=*/true);
  EXPECT_THROW(ClusteringObserver obs(dg), std::invalid_argument);
}

TEST(ClusteringObserver, TriangleBuildAndTeardown) {
  StreamingGraph sg(3, false);
  ClusteringObserver cc(sg.graph());
  sg.add_observer(&cc);
  UpdateBatch tri;
  tri.insert(0, 1);
  tri.insert(1, 2);
  tri.insert(2, 0);
  sg.apply(tri);
  EXPECT_EQ(cc.triangles(), 1);
  EXPECT_EQ(cc.wedges(), 3);
  EXPECT_DOUBLE_EQ(cc.global_clustering(), 1.0);
  EXPECT_DOUBLE_EQ(cc.average_clustering(), 1.0);

  UpdateBatch del;
  del.erase(1, 2);
  sg.apply(del);
  EXPECT_EQ(cc.triangles(), 0);
  EXPECT_EQ(cc.wedges(), 1);  // only vertex 0 keeps degree 2
  EXPECT_DOUBLE_EQ(cc.global_clustering(), 0.0);
}

TEST(ClusteringObserver, SeedsFromExistingGraphAndMatchesMetrics) {
  const CSRGraph k5 = gen::complete_graph(5);
  StreamingGraph sg = StreamingGraph::from_csr(k5);
  ClusteringObserver cc(sg.graph());
  EXPECT_EQ(cc.triangles(), 10);  // C(5,3)
  EXPECT_DOUBLE_EQ(cc.global_clustering(),
                   global_clustering_coefficient(k5));
  EXPECT_DOUBLE_EQ(cc.average_clustering(),
                   average_clustering_coefficient(k5));
}

TEST(ClusteringObserver, MultiEdgeTriangleChangesInOneBatch) {
  // Insert two edges of a triangle whose third edge also arrives in the same
  // batch, plus tear one down again — the replay must see intra-batch edges.
  StreamingGraph sg(4, false);
  ClusteringObserver cc(sg.graph());
  sg.add_observer(&cc);
  UpdateBatch b;
  b.insert(0, 1);
  b.insert(1, 2);
  b.insert(0, 2);
  b.insert(2, 3);
  sg.apply(b);
  EXPECT_EQ(cc.triangles(), 1);

  // Delete two triangle edges in one batch; also add a new triangle 1-2-3.
  UpdateBatch b2;
  b2.erase(0, 1);
  b2.erase(0, 2);
  b2.insert(1, 3);
  sg.apply(b2);
  EXPECT_EQ(cc.triangles(), 1);  // {1,2,3}
  const CSRGraph snap_csr = sg.snapshot();
  EXPECT_NEAR(cc.global_clustering(),
              global_clustering_coefficient(snap_csr), 1e-12);
  EXPECT_NEAR(cc.average_clustering(),
              average_clustering_coefficient(snap_csr), 1e-12);
}

TEST(ClusteringObserver, SelfLoopsAreIgnored) {
  StreamingGraph sg(3, false);
  ClusteringObserver cc(sg.graph());
  sg.add_observer(&cc);
  UpdateBatch b;
  b.insert(0, 0);
  b.insert(0, 1);
  sg.apply(b);
  EXPECT_EQ(cc.triangles(), 0);
  EXPECT_EQ(cc.wedges(), 0);  // self loop does not create a wedge
}

// Observer state after a batch equals observer state built from scratch on
// the post-batch graph (spot check; the differential suite does this over
// random streams).
TEST(Observers, MatchFromScratchAfterMixedBatch) {
  const CSRGraph base = gen::watts_strogatz(64, 4, 0.2, 9);
  StreamingGraph sg = StreamingGraph::from_csr(base);
  ComponentsObserver comps(sg.graph());
  DegreeStatsObserver deg(sg.graph());
  ClusteringObserver cc(sg.graph());
  sg.add_observer(&comps);
  sg.add_observer(&deg);
  sg.add_observer(&cc);

  SplitMix64 rng(23);
  UpdateBatch b;
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(64));
    const auto v = static_cast<vid_t>(rng.next_bounded(64));
    if (rng.next_bounded(3) == 0)
      b.erase(u, v);
    else
      b.insert(u, v);
  }
  sg.apply(b);

  ComponentsObserver comps_ref(sg.graph());
  DegreeStatsObserver deg_ref(sg.graph());
  ClusteringObserver cc_ref(sg.graph());
  EXPECT_EQ(comps.num_components(), comps_ref.num_components());
  EXPECT_EQ(deg.max_degree(), deg_ref.max_degree());
  ASSERT_EQ(deg.histogram().size(), deg_ref.histogram().size());
  EXPECT_EQ(deg.histogram(), deg_ref.histogram());
  EXPECT_EQ(cc.triangles(), cc_ref.triangles());
  EXPECT_EQ(cc.wedges(), cc_ref.wedges());
  for (vid_t v = 0; v < sg.graph().num_vertices(); ++v) {
    EXPECT_EQ(deg.degree(v), deg_ref.degree(v)) << "v=" << v;
    EXPECT_EQ(cc.triangles_at(v), cc_ref.triangles_at(v)) << "v=" << v;
  }
}

}  // namespace
}  // namespace snap
