#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "snap/util/bitmap.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"
#include "snap/util/timer.hpp"

namespace snap {
namespace {

TEST(Rng, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.next_bounded(17);
    EXPECT_LT(x, 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  SplitMix64 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  SplitMix64 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkedStreamsAreIndependentlyDeterministic) {
  SplitMix64 base(9);
  SplitMix64 f1 = base.fork(5);
  SplitMix64 f2 = base.fork(5);
  SplitMix64 f3 = base.fork(6);
  EXPECT_EQ(f1(), f2());
  EXPECT_NE(f1(), f3());
}

class PrefixSumTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefixSumTest, MatchesSerialReference) {
  const std::size_t n = GetParam();
  SplitMix64 rng(n);
  std::vector<std::int64_t> in(n);
  for (auto& x : in) x = static_cast<std::int64_t>(rng.next_bounded(100));
  std::vector<std::int64_t> out;
  parallel::exclusive_prefix_sum(in, out);
  ASSERT_EQ(out.size(), n + 1);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], acc) << "at " << i;
    acc += in[i];
  }
  EXPECT_EQ(out[n], acc);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefixSumTest,
                         ::testing::Values(0, 1, 2, 100, 4095, 4096, 4097,
                                           100000));

TEST(Parallel, ReduceSum) {
  const std::int64_t n = 10000;
  const auto total = parallel::parallel_reduce_sum<std::int64_t>(
      n, [](std::int64_t i) { return i; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(Parallel, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  parallel::parallel_for(std::int64_t{1000}, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, AtomicFetchMaxMin) {
  std::atomic<std::int64_t> mx{0}, mn{100};
  parallel::parallel_for(std::int64_t{1000}, [&](std::int64_t i) {
    parallel::atomic_fetch_max(mx, i);
    parallel::atomic_fetch_min(mn, i);
  });
  EXPECT_EQ(mx.load(), 999);
  EXPECT_EQ(mn.load(), 0);
}

TEST(Parallel, AtomicAddDouble) {
  std::atomic<double> acc{0};
  parallel::parallel_for(std::int64_t{1000},
                         [&](std::int64_t) { parallel::atomic_add(acc, 0.5); });
  EXPECT_DOUBLE_EQ(acc.load(), 500.0);
}

TEST(Parallel, ThreadScopeRestores) {
  const int before = parallel::num_threads();
  {
    parallel::ThreadScope scope(1);
    EXPECT_EQ(parallel::num_threads(), 1);
  }
  EXPECT_EQ(parallel::num_threads(), before);
}

TEST(Bitmap, TestAndSetFlipsOnce) {
  AtomicBitmap bm(200);
  EXPECT_FALSE(bm.test(5));
  EXPECT_TRUE(bm.test_and_set(5));
  EXPECT_FALSE(bm.test_and_set(5));
  EXPECT_TRUE(bm.test(5));
}

TEST(Bitmap, ConcurrentSetExactlyOneWinner) {
  AtomicBitmap bm(64);
  std::atomic<int> winners{0};
  parallel::parallel_for(std::int64_t{1000}, [&](std::int64_t) {
    if (bm.test_and_set(7)) winners.fetch_add(1);
  });
  EXPECT_EQ(winners.load(), 1);
}

TEST(Bitmap, ClearResets) {
  AtomicBitmap bm(100);
  bm.set(63);
  bm.set(64);
  bm.clear();
  EXPECT_FALSE(bm.test(63));
  EXPECT_FALSE(bm.test(64));
}

TEST(Timer, MeasuresNonNegativeAndResets) {
  WallTimer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  ASSERT_GT(sink, 0.0);
  EXPECT_GT(t.elapsed_s(), 0.0);
  t.reset();
  EXPECT_GE(t.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace snap
