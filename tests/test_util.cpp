#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include "snap/util/bitmap.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"
#include "snap/util/timer.hpp"

namespace snap {
namespace {

TEST(Rng, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.next_bounded(17);
    EXPECT_LT(x, 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  SplitMix64 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  SplitMix64 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkedStreamsAreIndependentlyDeterministic) {
  SplitMix64 base(9);
  SplitMix64 f1 = base.fork(5);
  SplitMix64 f2 = base.fork(5);
  SplitMix64 f3 = base.fork(6);
  EXPECT_EQ(f1(), f2());
  EXPECT_NE(f1(), f3());
}

class PrefixSumTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefixSumTest, MatchesSerialReference) {
  const std::size_t n = GetParam();
  SplitMix64 rng(n);
  std::vector<std::int64_t> in(n);
  for (auto& x : in) x = static_cast<std::int64_t>(rng.next_bounded(100));
  std::vector<std::int64_t> out;
  parallel::exclusive_prefix_sum(in, out);
  ASSERT_EQ(out.size(), n + 1);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], acc) << "at " << i;
    acc += in[i];
  }
  EXPECT_EQ(out[n], acc);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefixSumTest,
                         ::testing::Values(0, 1, 2, 100, 4095, 4096, 4097,
                                           100000));

TEST(Parallel, ReduceSum) {
  const std::int64_t n = 10000;
  const auto total = parallel::parallel_reduce_sum<std::int64_t>(
      n, [](std::int64_t i) { return i; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(Parallel, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  parallel::parallel_for(std::int64_t{1000}, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, AtomicFetchMaxMin) {
  std::atomic<std::int64_t> mx{0}, mn{100};
  parallel::parallel_for(std::int64_t{1000}, [&](std::int64_t i) {
    parallel::atomic_fetch_max(mx, i);
    parallel::atomic_fetch_min(mn, i);
  });
  EXPECT_EQ(mx.load(), 999);
  EXPECT_EQ(mn.load(), 0);
}

TEST(Parallel, AtomicAddDouble) {
  std::atomic<double> acc{0};
  parallel::parallel_for(std::int64_t{1000},
                         [&](std::int64_t) { parallel::atomic_add(acc, 0.5); });
  EXPECT_DOUBLE_EQ(acc.load(), 500.0);
}

TEST(Parallel, ThreadScopeRestores) {
  const int before = parallel::num_threads();
  {
    parallel::ThreadScope scope(1);
    EXPECT_EQ(parallel::num_threads(), 1);
  }
  EXPECT_EQ(parallel::num_threads(), before);
}

TEST(Bitmap, TestAndSetFlipsOnce) {
  AtomicBitmap bm(200);
  EXPECT_FALSE(bm.test(5));
  EXPECT_TRUE(bm.test_and_set(5));
  EXPECT_FALSE(bm.test_and_set(5));
  EXPECT_TRUE(bm.test(5));
}

TEST(Bitmap, ConcurrentSetExactlyOneWinner) {
  AtomicBitmap bm(64);
  std::atomic<int> winners{0};
  parallel::parallel_for(std::int64_t{1000}, [&](std::int64_t) {
    if (bm.test_and_set(7)) winners.fetch_add(1);
  });
  EXPECT_EQ(winners.load(), 1);
}

TEST(Bitmap, ClearResets) {
  AtomicBitmap bm(100);
  bm.set(63);
  bm.set(64);
  bm.clear();
  EXPECT_FALSE(bm.test(63));
  EXPECT_FALSE(bm.test(64));
}

// --- parallel_sort: differential vs std::sort on adversarial inputs ---

enum class FillPattern { kSorted, kReversed, kAllEqual, kRandom, kSawtooth };

std::vector<std::int64_t> make_input(FillPattern p, std::size_t n) {
  std::vector<std::int64_t> v(n);
  SplitMix64 rng(n + 17);
  for (std::size_t i = 0; i < n; ++i) {
    switch (p) {
      case FillPattern::kSorted:
        v[i] = static_cast<std::int64_t>(i);
        break;
      case FillPattern::kReversed:
        v[i] = static_cast<std::int64_t>(n - i);
        break;
      case FillPattern::kAllEqual:
        v[i] = 42;
        break;
      case FillPattern::kRandom:
        v[i] = static_cast<std::int64_t>(rng.next_bounded(1u << 20));
        break;
      case FillPattern::kSawtooth:
        v[i] = static_cast<std::int64_t>(i % 7);
        break;
    }
  }
  return v;
}

using SortCase = std::tuple<int /*pattern*/, int /*threads*/, std::size_t>;

class ParallelSortTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(ParallelSortTest, MatchesStdSort) {
  const auto [pat, threads, n] = GetParam();
  auto input = make_input(static_cast<FillPattern>(pat), n);
  auto expected = input;
  std::sort(expected.begin(), expected.end());
  parallel::ThreadScope scope(threads);
  parallel::parallel_sort(input.begin(), input.end());
  EXPECT_EQ(input, expected);
}

INSTANTIATE_TEST_SUITE_P(
    PatternsThreadsSizes, ParallelSortTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(1, 4, 8),
                       // straddle the serial-fallback cutoff (1 << 14)
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{1000},
                                         std::size_t{16383},
                                         std::size_t{16384},
                                         std::size_t{100000})));

TEST(ParallelSort, CustomComparatorDescending) {
  parallel::ThreadScope scope(8);
  auto input = make_input(FillPattern::kRandom, 50000);
  auto expected = input;
  std::sort(expected.begin(), expected.end(), std::greater<>{});
  parallel::parallel_sort(input.begin(), input.end(), std::greater<>{});
  EXPECT_EQ(input, expected);
}

TEST(ParallelSort, TotalOrderKeyIsThreadCountInvariant) {
  // With a total-order comparator the output must be byte-identical at
  // every thread count — this is what the CSR builder's dedupe relies on.
  auto base = make_input(FillPattern::kRandom, 60000);
  std::vector<std::vector<std::int64_t>> results;
  for (int t : {1, 2, 4, 8}) {
    parallel::ThreadScope scope(t);
    auto v = base;
    parallel::parallel_sort(v.begin(), v.end());
    results.push_back(std::move(v));
  }
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_EQ(results[i], results[0]) << "thread config " << i;
}

TEST(Parallel, ReduceMax) {
  parallel::ThreadScope scope(4);
  const std::int64_t n = 100000;
  const auto best = parallel::parallel_reduce_max<std::int64_t>(
      n, [](std::int64_t i) { return (i * 2654435761u) % 99991; });
  std::int64_t expected = 0;
  for (std::int64_t i = 0; i < n; ++i)
    expected = std::max(expected, (i * 2654435761u) % 99991);
  EXPECT_EQ(best, expected);
}

TEST(Timer, MeasuresNonNegativeAndResets) {
  WallTimer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  ASSERT_GT(sink, 0.0);
  EXPECT_GT(t.elapsed_s(), 0.0);
  t.reset();
  EXPECT_GE(t.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace snap
