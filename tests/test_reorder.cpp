// Coverage for graph/reorder: relabeling must be a bijection that preserves
// degrees and maps edges one-to-one, and graph kernels must be invariant
// under it (BFS distances and connected-component structure only change
// names, not values).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "snap/gen/generators.hpp"
#include "snap/graph/reorder.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/connected_components.hpp"

namespace snap {
namespace {

CSRGraph test_graph() {
  gen::RmatParams p;
  p.scale = 9;
  p.edge_factor = 8;
  p.seed = 21;
  return gen::rmat(p);
}

std::vector<Edge> canonical_edges(const CSRGraph& g,
                                  const std::vector<vid_t>* old_to_new) {
  std::vector<Edge> out;
  out.reserve(g.edges().size());
  for (Edge e : g.edges()) {
    if (old_to_new) {
      e.u = (*old_to_new)[static_cast<std::size_t>(e.u)];
      e.v = (*old_to_new)[static_cast<std::size_t>(e.v)];
    }
    if (e.u > e.v) std::swap(e.u, e.v);
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.w < b.w;
  });
  return out;
}

TEST(Reorder, DegreeRelabelIsBijectiveAndPreservesDegrees) {
  const CSRGraph g = test_graph();
  const ReorderedGraph r = relabel_by_degree(g);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  ASSERT_EQ(r.new_to_old.size(), n);
  ASSERT_EQ(r.old_to_new.size(), n);

  // new_to_old and old_to_new are mutually inverse permutations.
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const vid_t old = r.new_to_old[i];
    ASSERT_GE(old, 0);
    ASSERT_LT(old, g.num_vertices());
    EXPECT_FALSE(seen[static_cast<std::size_t>(old)]) << "duplicate " << old;
    seen[static_cast<std::size_t>(old)] = true;
    EXPECT_EQ(r.old_to_new[static_cast<std::size_t>(old)],
              static_cast<vid_t>(i));
  }

  // Degrees travel with the vertex, and the relabeled order is by
  // descending degree (the point of the transform).
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(r.graph.degree(static_cast<vid_t>(i)),
              g.degree(r.new_to_old[i]));
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_GE(r.graph.degree(static_cast<vid_t>(i - 1)),
              r.graph.degree(static_cast<vid_t>(i)));
}

TEST(Reorder, EdgesMapBijectively) {
  const CSRGraph g = test_graph();
  const ReorderedGraph r = relabel_by_degree(g);
  // The relabeled graph's edge multiset equals the original's mapped
  // through old_to_new (canonicalized, since relabeling may flip u/v order).
  const auto expected = canonical_edges(g, &r.old_to_new);
  const auto got = canonical_edges(r.graph, nullptr);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(got[i], expected[i]) << "edge " << i;
}

TEST(Reorder, BfsDistancesInvariantUnderRelabel) {
  const CSRGraph g = test_graph();
  const ReorderedGraph r = relabel_by_degree(g);
  for (const vid_t s : {vid_t{0}, g.num_vertices() / 2}) {
    const BFSResult orig = bfs_serial(g, s);
    const BFSResult rel =
        bfs_serial(r.graph, r.old_to_new[static_cast<std::size_t>(s)]);
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      EXPECT_EQ(rel.dist[static_cast<std::size_t>(
                    r.old_to_new[static_cast<std::size_t>(v)])],
                orig.dist[static_cast<std::size_t>(v)])
          << "vertex " << v;
    EXPECT_EQ(rel.num_visited, orig.num_visited);
    EXPECT_EQ(rel.num_levels, orig.num_levels);
  }
}

TEST(Reorder, ConnectedComponentsInvariantUnderRelabel) {
  // A deliberately disconnected graph: two planted clusters.
  const CSRGraph g = gen::planted_partition(600, 6, 6.0, 0.0, 13);
  const ReorderedGraph r = relabel_by_degree(g);
  const Components a = connected_components(g);
  const Components b = connected_components(r.graph);
  EXPECT_EQ(a.count, b.count);
  // Same partition up to renaming: any vertex pair lands in one component
  // before relabeling iff it does after.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v = u + 1; v < std::min(g.num_vertices(), u + 20); ++v) {
      const bool same_orig = a.label[static_cast<std::size_t>(u)] ==
                             a.label[static_cast<std::size_t>(v)];
      const bool same_rel =
          b.label[static_cast<std::size_t>(
              r.old_to_new[static_cast<std::size_t>(u)])] ==
          b.label[static_cast<std::size_t>(
              r.old_to_new[static_cast<std::size_t>(v)])];
      EXPECT_EQ(same_orig, same_rel) << u << " vs " << v;
    }
  }
}

TEST(Reorder, BfsRelabelCoversAllVertices) {
  const CSRGraph g = test_graph();
  const ReorderedGraph r = relabel_by_bfs(g, 0);
  std::vector<bool> seen(static_cast<std::size_t>(g.num_vertices()), false);
  for (const vid_t old : r.new_to_old) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(old)]);
    seen[static_cast<std::size_t>(old)] = true;
  }
}

TEST(Reorder, RejectsNonPermutations) {
  const CSRGraph g = gen::path_graph(4);
  EXPECT_THROW(relabel(g, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(relabel(g, {0, 1, 2, 2}), std::invalid_argument);
  EXPECT_THROW(relabel(g, {0, 1, 2, 7}), std::invalid_argument);
}

TEST(Reorder, IsolatedVerticesSurviveEveryOrdering) {
  // Vertices 5..9 have no edges at all; every ordering must still place
  // them (bijectively) and keep their degree 0.
  const CSRGraph g = CSRGraph::from_edges(
      10, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}}, false);
  for (const ReorderedGraph& r :
       {relabel_by_degree(g), relabel_by_bfs(g, 0),
        relabel_by_hub_cluster(g)}) {
    ASSERT_EQ(r.graph.num_vertices(), 10);
    ASSERT_EQ(r.graph.num_edges(), 4);
    std::vector<bool> seen(10, false);
    for (const vid_t old : r.new_to_old) {
      ASSERT_FALSE(seen[static_cast<std::size_t>(old)]);
      seen[static_cast<std::size_t>(old)] = true;
    }
    for (vid_t old = 5; old < 10; ++old)
      EXPECT_EQ(r.graph.degree(r.old_to_new[static_cast<std::size_t>(old)]),
                0);
  }
}

TEST(Reorder, SelfLoopsAndEdgeCountPreserved) {
  // relabel must preserve the edge multiset exactly: the self loop at 2 and
  // both parallel-ish edges survive with their weights.
  EdgeList edges{{0, 1, 1.0}, {2, 2, 5.0}, {1, 2, 2.0}};
  const CSRGraph g = CSRGraph::from_edges(
      3, edges, false, BuildOptions{.remove_self_loops = false});
  ASSERT_EQ(g.num_edges(), 3);
  const ReorderedGraph r = relabel(g, {2, 0, 1});
  EXPECT_EQ(r.graph.num_edges(), 3);
  const vid_t two = r.old_to_new[2];
  EXPECT_TRUE(r.graph.has_edge(two, two)) << "self loop dropped";
  EXPECT_DOUBLE_EQ(r.graph.total_edge_weight(), g.total_edge_weight());
}

TEST(Reorder, PermutationRoundTripIsIdentity) {
  const CSRGraph g = test_graph();
  for (const ReorderedGraph& r :
       {relabel_by_degree(g), relabel_by_bfs(g, 3),
        relabel_by_hub_cluster(g)}) {
    // old_to_new ∘ new_to_old = id and relabeling back by old_to_new (as a
    // new_to_old permutation... i.e. applying the inverse) restores the
    // original adjacency structure.
    for (vid_t i = 0; i < g.num_vertices(); ++i)
      ASSERT_EQ(r.old_to_new[static_cast<std::size_t>(
                    r.new_to_old[static_cast<std::size_t>(i)])],
                i);
    const ReorderedGraph back = relabel(r.graph, r.old_to_new);
    ASSERT_EQ(back.graph.num_edges(), g.num_edges());
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      const auto a = g.neighbors(v);
      const auto b = back.graph.neighbors(v);
      ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
      for (std::size_t j = 0; j < a.size(); ++j)
        EXPECT_EQ(a[j], b[j]) << "vertex " << v << " slot " << j;
    }
  }
}

TEST(Reorder, HubClusterFrontBlockIsHighestDegree) {
  const CSRGraph g = test_graph();
  HubClusterParams params;
  params.hub_fraction = 0.05;
  const ReorderedGraph r = relabel_by_hub_cluster(g, params);
  const auto hubs = static_cast<vid_t>(
      std::max<double>(1.0, 0.05 * static_cast<double>(g.num_vertices())));
  // Every vertex in the hub block has degree >= every vertex outside it.
  eid_t min_hub_degree = g.num_edges();
  for (vid_t i = 0; i < hubs; ++i)
    min_hub_degree = std::min(min_hub_degree, r.graph.degree(i));
  for (vid_t i = hubs; i < g.num_vertices(); ++i)
    EXPECT_LE(r.graph.degree(i), min_hub_degree) << "vertex " << i;
  // And the hub block itself is sorted by descending degree.
  for (vid_t i = 1; i < hubs; ++i)
    EXPECT_GE(r.graph.degree(i - 1), r.graph.degree(i));
}

}  // namespace
}  // namespace snap
