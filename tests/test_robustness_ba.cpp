// Tests for the Barabási–Albert generator, the robustness/lethality
// profile, and GraphML export.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "snap/gen/generators.hpp"
#include "snap/io/graphml_io.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/metrics/robustness.hpp"

namespace snap {
namespace {

// ------------------------------------------------------- Barabási–Albert

TEST(BarabasiAlbert, SizeAndConnectivity) {
  const auto g = gen::barabasi_albert(2000, 3, 7);
  EXPECT_EQ(g.num_vertices(), 2000);
  // m per vertex edges for most vertices plus the seed clique.
  EXPECT_GE(g.num_edges(), 3 * (2000 - 4));
  EXPECT_LE(g.num_edges(), 3 * 2000 + 10);
  EXPECT_EQ(connected_components(g).count, 1);  // attachment keeps it whole
}

TEST(BarabasiAlbert, PowerLawSkew) {
  const auto g = gen::barabasi_albert(4000, 3, 9);
  // The oldest/richest vertices become hubs: max degree far above mean.
  EXPECT_GT(static_cast<double>(g.max_degree()), 8.0 * average_degree(g));
  // And degree-1.. small-degree vertices dominate.
  const auto hist = degree_histogram(g);
  eid_t small = 0;
  for (std::size_t d = 0; d < std::min<std::size_t>(hist.size(), 7); ++d)
    small += hist[d];
  EXPECT_GT(small, g.num_vertices() / 2);
}

TEST(BarabasiAlbert, Deterministic) {
  const auto a = gen::barabasi_albert(300, 2, 5);
  const auto b = gen::barabasi_albert(300, 2, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (const Edge& e : a.edges()) EXPECT_TRUE(b.has_edge(e.u, e.v));
}

// ------------------------------------------------------------- robustness

TEST(Robustness, ProfileShapeOnIntactGraph) {
  const auto g = gen::cycle_graph(100);
  const auto order = attack_order_random(g, 1);
  const auto p = robustness_profile(g, order, 10);
  ASSERT_EQ(p.giant_fraction.size(), 11u);
  EXPECT_DOUBLE_EQ(p.fraction_removed.front(), 0.0);
  EXPECT_DOUBLE_EQ(p.giant_fraction.front(), 1.0);  // intact cycle
  EXPECT_DOUBLE_EQ(p.fraction_removed.back(), 1.0);
  EXPECT_DOUBLE_EQ(p.giant_fraction.back(), 0.0);
  // Monotone non-increasing giant fraction.
  for (std::size_t i = 1; i < p.giant_fraction.size(); ++i)
    EXPECT_LE(p.giant_fraction[i], p.giant_fraction[i - 1] + 1e-12);
}

TEST(Robustness, HubAttackBeatsRandomFailureOnScaleFree) {
  // The classic Albert–Jeong–Barabási result (the lethality application of
  // §2.1): scale-free networks are robust to random failure, fragile to
  // targeted hub removal.
  const auto g = gen::barabasi_albert(2000, 2, 3);
  const auto targeted =
      robustness_profile(g, attack_order_by_degree(g), 20).index();
  const auto random =
      robustness_profile(g, attack_order_random(g, 5), 20).index();
  EXPECT_LT(targeted, random - 0.05);
}

TEST(Robustness, StarCollapsesOnFirstTargetedRemoval) {
  const auto g = gen::star_graph(99);  // n = 100
  const auto p = robustness_profile(g, attack_order_by_degree(g), 100);
  // After removing the hub (first 1%), the giant drops to a single vertex.
  EXPECT_DOUBLE_EQ(p.giant_fraction[0], 1.0);
  EXPECT_NEAR(p.giant_fraction[1], 0.01, 1e-9);
}

TEST(Robustness, EmptyGraph) {
  const auto g = CSRGraph::from_edges(0, {}, false);
  const auto p = robustness_profile(g, {}, 5);
  EXPECT_TRUE(p.giant_fraction.empty());
  EXPECT_DOUBLE_EQ(p.index(), 0.0);
}

// ---------------------------------------------------------------- GraphML

TEST(GraphML, WritesWellFormedStructure) {
  const auto g = gen::karate_club();
  const auto p =
      (std::filesystem::temp_directory_path() / "k.graphml").string();
  std::vector<vid_t> labels(static_cast<std::size_t>(g.num_vertices()), 0);
  labels[33] = 1;
  io::write_graphml(g, p, labels);
  std::ifstream in(p);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string xml = ss.str();
  // One node element per vertex, one edge element per logical edge.
  std::size_t nodes = 0, edges = 0, pos = 0;
  while ((pos = xml.find("<node ", pos)) != std::string::npos) {
    ++nodes;
    ++pos;
  }
  pos = 0;
  while ((pos = xml.find("<edge ", pos)) != std::string::npos) {
    ++edges;
    ++pos;
  }
  EXPECT_EQ(nodes, 34u);
  EXPECT_EQ(edges, 78u);
  EXPECT_NE(xml.find("edgedefault=\"undirected\""), std::string::npos);
  EXPECT_NE(xml.find("<data key=\"c\">1</data>"), std::string::npos);
  EXPECT_NE(xml.find("</graphml>"), std::string::npos);
  std::filesystem::remove(p);
}

TEST(GraphML, LabelSizeMismatchThrows) {
  const auto g = gen::path_graph(3);
  EXPECT_THROW(io::write_graphml(g, "/tmp/x.graphml", {0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace snap
