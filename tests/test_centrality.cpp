#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "snap/centrality/approx_betweenness.hpp"
#include "snap/centrality/betweenness.hpp"
#include "snap/centrality/closeness.hpp"
#include "snap/centrality/degree.hpp"
#include "snap/gen/generators.hpp"
#include "snap/util/parallel.hpp"

namespace snap {
namespace {

TEST(DegreeCentrality, RawAndNormalized) {
  const auto g = gen::star_graph(4);  // center 0, leaves 1..4
  const auto raw = degree_centrality(g);
  EXPECT_DOUBLE_EQ(raw[0], 4.0);
  EXPECT_DOUBLE_EQ(raw[1], 1.0);
  const auto norm = degree_centrality(g, /*normalize=*/true);
  EXPECT_DOUBLE_EQ(norm[0], 1.0);
  EXPECT_DOUBLE_EQ(norm[1], 0.25);
}

TEST(DegreeCentrality, InDegrees) {
  const auto g = CSRGraph::from_edges(
      3, {{0, 2, 1.0}, {1, 2, 1.0}}, /*directed=*/true);
  const auto in = in_degrees(g);
  EXPECT_EQ(in[2], 2);
  EXPECT_EQ(in[0], 0);
}

TEST(Closeness, PathGraphEndpointsVsCenter) {
  const auto g = gen::path_graph(5);  // 0-1-2-3-4
  const auto cc = closeness_centrality(g);
  // Center distance sum = 1+2+1+2 = 6; endpoint = 1+2+3+4 = 10.
  EXPECT_DOUBLE_EQ(cc[2], 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(cc[0], 1.0 / 10.0);
  EXPECT_GT(cc[2], cc[0]);
}

TEST(Closeness, IsolatedVertexZero) {
  const auto g = CSRGraph::from_edges(3, {{0, 1, 1.0}}, false);
  const auto cc = closeness_centrality(g);
  EXPECT_DOUBLE_EQ(cc[2], 0.0);
}

TEST(Closeness, WeightedUsesDistances) {
  const EdgeList edges{{0, 1, 10.0}, {1, 2, 10.0}};
  const auto g = CSRGraph::from_edges(3, edges, false);
  const auto cc = closeness_centrality(g);
  EXPECT_DOUBLE_EQ(cc[1], 1.0 / 20.0);
  EXPECT_DOUBLE_EQ(cc[0], 1.0 / 30.0);
}

TEST(Closeness, SampledApproximatesExactOnConnectedGraph) {
  const auto g = gen::grid_road(15, 15, 0.0, 0.0, 1);
  const auto exact = closeness_centrality(g);
  const auto approx = closeness_centrality_sampled(g, 120, 3);
  // Spearman-ish check: the top exact vertex should rank highly in approx.
  const auto best = static_cast<std::size_t>(
      std::max_element(exact.begin(), exact.end()) - exact.begin());
  vid_t rank = 0;
  for (std::size_t v = 0; v < approx.size(); ++v)
    if (approx[v] > approx[best]) ++rank;
  EXPECT_LT(rank, g.num_vertices() / 10);
}

// ------------------------------------------------------------- Betweenness

TEST(Betweenness, PathGraphKnownValues) {
  const auto g = gen::path_graph(5);
  const auto bc = betweenness_centrality(g);
  // Unnormalized undirected: BC(v) = #pairs separated.
  EXPECT_DOUBLE_EQ(bc.vertex[0], 0.0);
  EXPECT_DOUBLE_EQ(bc.vertex[1], 3.0);  // pairs (0,2),(0,3),(0,4)
  EXPECT_DOUBLE_EQ(bc.vertex[2], 4.0);  // (0,3),(0,4),(1,3),(1,4)
  EXPECT_DOUBLE_EQ(bc.vertex[4], 0.0);
}

TEST(Betweenness, StarCenter) {
  const auto g = gen::star_graph(5);
  const auto bc = betweenness_centrality(g);
  // Center lies on all C(5,2) = 10 leaf pairs.
  EXPECT_DOUBLE_EQ(bc.vertex[0], 10.0);
  for (vid_t v = 1; v <= 5; ++v) EXPECT_DOUBLE_EQ(bc.vertex[v], 0.0);
}

TEST(Betweenness, CycleSymmetric) {
  const auto g = gen::cycle_graph(6);
  const auto bc = betweenness_centrality(g);
  for (vid_t v = 1; v < 6; ++v)
    EXPECT_NEAR(bc.vertex[v], bc.vertex[0], 1e-9);
}

TEST(Betweenness, EdgeScoresOnBarbellBridge) {
  const auto g = gen::barbell_graph(4);  // bridge (3,4), 4+4 vertices
  const auto bc = betweenness_centrality(g);
  // The bridge carries all 4*4 = 16 cross pairs.
  eid_t bridge = kInvalidEid;
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    if (ed.u == 3 && ed.v == 4) bridge = e;
  }
  ASSERT_NE(bridge, kInvalidEid);
  EXPECT_DOUBLE_EQ(bc.edge[static_cast<std::size_t>(bridge)], 16.0);
  // And it is the strict maximum.
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    if (e != bridge) {
      EXPECT_LT(bc.edge[static_cast<std::size_t>(e)],
                bc.edge[static_cast<std::size_t>(bridge)]);
    }
  }
}

class BetweennessGranularity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BetweennessGranularity, CoarseAndFineAgree) {
  const auto [which, threads] = GetParam();
  parallel::ThreadScope scope(threads);
  CSRGraph g = which == 0 ? gen::karate_club()
                          : gen::erdos_renyi(200, 800, false, 5);
  const auto coarse = betweenness_centrality(g, BCGranularity::kCoarse);
  const auto fine = betweenness_centrality(g, BCGranularity::kFine);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(coarse.vertex[v], fine.vertex[v], 1e-6) << "vertex " << v;
  for (eid_t e = 0; e < g.num_edges(); ++e)
    EXPECT_NEAR(coarse.edge[static_cast<std::size_t>(e)],
                fine.edge[static_cast<std::size_t>(e)], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BetweennessGranularity,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(1, 4)));

TEST(Betweenness, DisconnectedGraphFineMatchesCoarse) {
  // Two components: the fine-grained path's touched-only reinitialization
  // must not leak state from a traversal into the next source's (possibly
  // different-component) traversal.
  const EdgeList edges{{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0},
                       {4, 5, 1.0}, {5, 6, 1.0}};
  const auto g = CSRGraph::from_edges(7, edges, /*directed=*/false);
  const auto coarse = betweenness_centrality(g, BCGranularity::kCoarse);
  const auto fine = betweenness_centrality(g, BCGranularity::kFine);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_DOUBLE_EQ(coarse.vertex[static_cast<std::size_t>(v)],
                     fine.vertex[static_cast<std::size_t>(v)]);
  EXPECT_DOUBLE_EQ(coarse.vertex[1], 2.0);  // path 0-1-2-3
  EXPECT_DOUBLE_EQ(coarse.vertex[5], 1.0);  // path 4-5-6
}

TEST(Betweenness, WeightedRepeatedCallsBitwiseEqual) {
  // Regression for the pooled weighted scratch: the settled flags and
  // distances are reset touched-only between sources, so a repeated run
  // must reproduce the first bit for bit.  Pinned to one thread — the
  // dynamic source schedule makes multi-thread partial sums run-varying.
  parallel::ThreadScope scope(1);
  const auto g = CSRGraph::from_edges(
      6, {{0, 1, 2.0}, {1, 2, 1.0}, {0, 2, 4.0}, {2, 3, 1.0}, {3, 4, 2.0},
          {4, 5, 1.5}},
      /*directed=*/false);
  ASSERT_TRUE(g.weighted());
  const auto first = weighted_betweenness_centrality(g);
  const auto second = weighted_betweenness_centrality(g);
  EXPECT_EQ(first.vertex, second.vertex);
  EXPECT_EQ(first.edge, second.edge);
  // Sanity: shortest 0->2 goes via 1 (2+1 < 4).
  EXPECT_GT(first.vertex[1], 0.0);
}

TEST(Betweenness, DirectedPath) {
  const auto g = CSRGraph::from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}},
                                      /*directed=*/true);
  const auto bc = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(bc.vertex[1], 1.0);  // only s=0,t=2 passes through
  EXPECT_DOUBLE_EQ(bc.vertex[0], 0.0);
}

TEST(EdgeBetweennessMasked, MaskedEdgesExcluded) {
  const auto g = gen::cycle_graph(4);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 1);
  alive[0] = 0;  // cycle becomes a path
  const auto scores = edge_betweenness_masked(g, alive);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  // Remaining path of 4 vertices: middle edge carries 2*2 = 4 pairs.
  const double mx = *std::max_element(scores.begin(), scores.end());
  EXPECT_DOUBLE_EQ(mx, 4.0);
}

TEST(ApproxEdgeBetweenness, AllSourcesEqualsExact) {
  const auto g = gen::karate_club();
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 1);
  std::vector<vid_t> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), vid_t{0});
  const auto approx = approx_edge_betweenness(g, alive, all);
  const auto exact = edge_betweenness_masked(g, alive);
  for (eid_t e = 0; e < g.num_edges(); ++e)
    EXPECT_NEAR(approx[static_cast<std::size_t>(e)],
                exact[static_cast<std::size_t>(e)], 1e-9);
}

TEST(ApproxEdgeBetweenness, SampledFindsTopBridge) {
  const auto g = gen::barbell_graph(30);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 1);
  // Sample 10% of sources.
  std::vector<vid_t> sources;
  for (vid_t v = 0; v < g.num_vertices(); v += 10) sources.push_back(v);
  const auto scores = approx_edge_betweenness(g, alive, sources);
  const auto top = static_cast<eid_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
  const Edge ed = g.edge(top);
  EXPECT_TRUE(ed.u == 29 && ed.v == 30) << ed.u << "-" << ed.v;
}

// ---------------------------------------------------- Adaptive sampling BC

TEST(AdaptiveBC, VertexEstimateNearExactOnStar) {
  const auto g = gen::star_graph(40);
  AdaptiveBCParams p;
  p.seed = 3;
  const auto est = adaptive_betweenness_vertex(g, 0, p);
  // Exact: C(40,2) = 780.
  EXPECT_NEAR(est.estimate, 780.0, 780.0 * 0.25);
  EXPECT_TRUE(est.converged);
  EXPECT_LT(est.samples_used, g.num_vertices());
}

TEST(AdaptiveBC, HighCentralityConvergesFasterThanFullScan) {
  const auto g = gen::barbell_graph(40);
  AdaptiveBCParams p;
  p.seed = 7;
  const auto est = adaptive_betweenness_vertex(g, 39, p);  // bridge endpoint
  EXPECT_TRUE(est.converged);
  EXPECT_LT(static_cast<double>(est.samples_used),
            0.5 * static_cast<double>(g.num_vertices()));
}

TEST(AdaptiveBC, EdgeEstimateOnBarbellBridge) {
  const auto g = gen::barbell_graph(20);
  eid_t bridge = kInvalidEid;
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    if (ed.u == 19 && ed.v == 20) bridge = e;
  }
  ASSERT_NE(bridge, kInvalidEid);
  AdaptiveBCParams p;
  p.seed = 5;
  const auto est = adaptive_betweenness_edge(g, bridge, p);
  EXPECT_NEAR(est.estimate, 400.0, 400.0 * 0.3);  // exact 20*20
}

TEST(AdaptiveBC, LowCentralityVertexDoesNotConvergeEarly) {
  const auto g = gen::path_graph(50);
  AdaptiveBCParams p;
  p.cutoff_factor = 10.0;  // endpoint has BC 0; cutoff unreachable
  const auto est = adaptive_betweenness_vertex(g, 0, p);
  EXPECT_FALSE(est.converged);
  EXPECT_NEAR(est.estimate, 0.0, 1e-9);
}

}  // namespace
}  // namespace snap
