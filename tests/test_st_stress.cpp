// Tests for st-connectivity, stress centrality, double-sweep diameter and
// Pajek I/O.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "snap/centrality/betweenness.hpp"
#include "snap/centrality/stress.hpp"
#include "snap/gen/generators.hpp"
#include "snap/io/pajek_io.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/st_connectivity.hpp"
#include "snap/metrics/path_length.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

// -------------------------------------------------------- st-connectivity

TEST(StConnectivity, PathEndpoints) {
  const auto g = gen::path_graph(10);
  const auto r = st_connectivity(g, 0, 9);
  EXPECT_TRUE(r.connected);
  EXPECT_EQ(r.distance, 9);
}

TEST(StConnectivity, SameVertex) {
  const auto g = gen::cycle_graph(5);
  const auto r = st_connectivity(g, 3, 3);
  EXPECT_TRUE(r.connected);
  EXPECT_EQ(r.distance, 0);
}

TEST(StConnectivity, DisconnectedPair) {
  const auto g = CSRGraph::from_edges(4, {{0, 1, 1.0}, {2, 3, 1.0}}, false);
  const auto r = st_connectivity(g, 0, 3);
  EXPECT_FALSE(r.connected);
  EXPECT_EQ(r.distance, -1);
}

TEST(StConnectivity, TouchesFewerVerticesThanFullBfsOnHubGraph) {
  // Two stars joined hub-to-hub: bidirectional search meets at the hubs
  // without expanding either full leaf set twice.
  EdgeList edges;
  for (vid_t v = 2; v < 1000; ++v) edges.push_back({v % 2, v, 1.0});
  edges.push_back({0, 1, 1.0});
  const auto g = CSRGraph::from_edges(1000, edges, false);
  const auto r = st_connectivity(g, 2, 3);  // leaf of hub0 to leaf of hub1
  EXPECT_TRUE(r.connected);
  EXPECT_EQ(r.distance, 3);
}

class StConnectivityProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(StConnectivityProperty, MatchesBfsDistances) {
  SplitMix64 rng(GetParam());
  const vid_t n = 300;
  EdgeList edges;
  for (int i = 0; i < 700; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(n));
    const auto v = static_cast<vid_t>(rng.next_bounded(n));
    if (u != v) edges.push_back({u, v, 1.0});
  }
  const auto g = CSRGraph::from_edges(n, edges, false);
  const auto ref = bfs_serial(g, 0);
  for (vid_t t = 0; t < n; t += 7) {
    const auto r = st_connectivity(g, 0, t);
    if (ref.dist[static_cast<std::size_t>(t)] < 0) {
      EXPECT_FALSE(r.connected) << "t=" << t;
    } else {
      ASSERT_TRUE(r.connected) << "t=" << t;
      EXPECT_EQ(r.distance, ref.dist[static_cast<std::size_t>(t)])
          << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StConnectivityProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(StConnectivity, DirectedThrows) {
  const auto g = CSRGraph::from_edges(2, {{0, 1, 1.0}}, /*directed=*/true);
  EXPECT_THROW(st_connectivity(g, 0, 1), std::invalid_argument);
}

// ------------------------------------------------------- stress centrality

TEST(Stress, PathMiddleVertex) {
  const auto g = gen::path_graph(3);
  const auto s = stress_centrality(g);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);  // one path 0-2 through 1
  EXPECT_DOUBLE_EQ(s[2], 0.0);
}

TEST(Stress, StarCenterCountsAllPairs) {
  const auto g = gen::star_graph(6);
  const auto s = stress_centrality(g);
  EXPECT_DOUBLE_EQ(s[0], 15.0);  // C(6,2) single paths
}

TEST(Stress, DiamondCountsWholePathsNotFractions) {
  // 0-1-3 and 0-2-3: betweenness gives each middle vertex 0.5, stress 1.
  const EdgeList edges{{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}};
  const auto g = CSRGraph::from_edges(4, edges, false);
  const auto s = stress_centrality(g);
  const auto bc = betweenness_centrality(g).vertex;
  EXPECT_DOUBLE_EQ(s[1], 1.0);
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
}

TEST(Stress, AgreesWithBetweennessWhenPathsUnique) {
  // On a tree every shortest path is unique, so stress == betweenness.
  SplitMix64 rng(3);
  EdgeList edges;
  for (vid_t v = 1; v < 60; ++v)
    edges.push_back(
        {static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(v))),
         v, 1.0});
  const auto g = CSRGraph::from_edges(60, edges, false);
  const auto s = stress_centrality(g);
  const auto bc = betweenness_centrality(g).vertex;
  for (vid_t v = 0; v < 60; ++v) EXPECT_NEAR(s[v], bc[v], 1e-9) << v;
}

// --------------------------------------------------- double-sweep diameter

TEST(DoubleSweep, ExactOnPath) {
  EXPECT_EQ(double_sweep_diameter(gen::path_graph(50)), 49);
}

TEST(DoubleSweep, ExactOnTrees) {
  SplitMix64 rng(11);
  EdgeList edges;
  for (vid_t v = 1; v < 200; ++v)
    edges.push_back(
        {static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(v))),
         v, 1.0});
  const auto g = CSRGraph::from_edges(200, edges, false);
  EXPECT_EQ(double_sweep_diameter(g), exact_path_length(g).max_eccentricity);
}

TEST(DoubleSweep, LowerBoundsExactDiameter) {
  const auto g = gen::erdos_renyi(500, 1500, false, 9);
  const auto exact = exact_path_length(g).max_eccentricity;
  const auto ds = double_sweep_diameter(g, 4, 2);
  EXPECT_LE(ds, exact);
  EXPECT_GE(ds, exact / 2);  // double sweep is at least half the diameter
}

// ----------------------------------------------------------------- Pajek

TEST(Pajek, UndirectedRoundtrip) {
  const auto g = gen::karate_club();
  const auto p = (std::filesystem::temp_directory_path() / "k.net").string();
  io::write_pajek(g, p);
  const auto back = io::read_pajek(p);
  EXPECT_FALSE(back.directed());
  EXPECT_EQ(back.num_vertices(), 34);
  EXPECT_EQ(back.num_edges(), 78);
  for (const Edge& e : g.edges()) EXPECT_TRUE(back.has_edge(e.u, e.v));
  std::filesystem::remove(p);
}

TEST(Pajek, DirectedRoundtrip) {
  const auto g = CSRGraph::from_edges(3, {{0, 1, 2.5}, {2, 1, 1.0}},
                                      /*directed=*/true);
  const auto p = (std::filesystem::temp_directory_path() / "d.net").string();
  io::write_pajek(g, p);
  const auto back = io::read_pajek(p);
  EXPECT_TRUE(back.directed());
  EXPECT_TRUE(back.has_edge(0, 1));
  EXPECT_FALSE(back.has_edge(1, 0));
  EXPECT_DOUBLE_EQ(back.total_edge_weight(), 3.5);
  std::filesystem::remove(p);
}

TEST(Pajek, MissingVerticesHeaderThrows) {
  const auto p = (std::filesystem::temp_directory_path() / "bad.net").string();
  {
    std::ofstream out(p);
    out << "*Edges\n1 2\n";
  }
  EXPECT_THROW(io::read_pajek(p), std::runtime_error);
  std::filesystem::remove(p);
}

TEST(Pajek, SkipsCommentsAndOtherSections) {
  const auto p = (std::filesystem::temp_directory_path() / "c.net").string();
  {
    std::ofstream out(p);
    out << "% a comment\n*Vertices 3\n1 \"a\"\n2 \"b\"\n3 \"c\"\n"
           "*Partition junk\n1\n2\n*Edges\n1 2 2.0\n2 3\n";
  }
  const auto g = io::read_pajek(p);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 3.0);
  std::filesystem::remove(p);
}

}  // namespace
}  // namespace snap
