// Edge cases for the frontier substrate and the direction-optimizing BFS
// engine: the degenerate shapes where push/pull switching logic typically
// breaks, plus regression pins for bfs_bounded's accounting at the cutoff.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "snap/gen/generators.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/frontier.hpp"
#include "snap/util/parallel.hpp"

namespace snap {
namespace {

HybridBFSOptions forced_pull() {
  HybridBFSOptions o;
  o.alpha = 1e18;
  o.beta = 1e18;
  o.min_pull_arcs = 0;
  return o;
}

// ------------------------------------------------------------- degenerate shapes

TEST(FrontierEdgeCases, EmptyGraph) {
  const auto g = CSRGraph::from_edges(0, {}, false);
  BfsEngine engine;
  const BFSResult r = engine.run(g, 0);
  EXPECT_TRUE(r.dist.empty());
  EXPECT_TRUE(r.parent.empty());
  EXPECT_EQ(r.num_visited, 0);
  EXPECT_EQ(r.num_levels, 0);
  const BFSResult rs = engine.run_serial(g, 0);
  EXPECT_EQ(rs.num_visited, 0);
}

TEST(FrontierEdgeCases, SingleVertex) {
  const auto g = CSRGraph::from_edges(1, {}, false);
  for (const auto& opts : {HybridBFSOptions{}, forced_pull()}) {
    const BFSResult r = bfs_hybrid(g, 0, opts);
    EXPECT_EQ(r.num_visited, 1);
    EXPECT_EQ(r.num_levels, 0);
    EXPECT_EQ(r.dist[0], 0);
    EXPECT_EQ(r.parent[0], 0);
  }
}

TEST(FrontierEdgeCases, IsolatedSource) {
  // Vertex 4 has no edges; the rest form a square.
  const auto g = CSRGraph::from_edges(
      5, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 0, 1.0}}, false);
  for (const auto& opts : {HybridBFSOptions{}, forced_pull()}) {
    const BFSResult r = bfs_hybrid(g, 4, opts);
    EXPECT_EQ(r.num_visited, 1);
    EXPECT_EQ(r.num_levels, 0);
    EXPECT_EQ(r.dist[4], 0);
    for (vid_t v = 0; v < 4; ++v) {
      EXPECT_EQ(r.dist[static_cast<std::size_t>(v)], -1);
      EXPECT_EQ(r.parent[static_cast<std::size_t>(v)], kInvalidVid);
    }
  }
}

TEST(FrontierEdgeCases, StarGraphOneDenseLevel) {
  // One level, maximal fan-out: the shape where a hub frontier must not
  // serialize (push) and where pull terminates after a single level.
  const auto g = gen::star_graph(5000);
  const BFSResult oracle = bfs_serial(g, 0);
  for (const auto& opts : {HybridBFSOptions{}, forced_pull()}) {
    const BFSResult r = bfs_hybrid(g, 0, opts);
    EXPECT_EQ(r.dist, oracle.dist);
    EXPECT_EQ(r.num_levels, 1);
    EXPECT_EQ(r.num_visited, 5001);
  }
  // From a leaf: two levels, hub in the middle.
  const BFSResult leaf_oracle = bfs_serial(g, 17);
  for (const auto& opts : {HybridBFSOptions{}, forced_pull()}) {
    const BFSResult r = bfs_hybrid(g, 17, opts);
    EXPECT_EQ(r.dist, leaf_oracle.dist);
    EXPECT_EQ(r.num_levels, 2);
  }
}

TEST(FrontierEdgeCases, PathGraphStaysSparse) {
  // Diameter n-1, two arcs per level: with default knobs the heuristic must
  // never flip to pull (an O(n) scan per level would make the traversal
  // quadratic on exactly this shape).
  const auto g = gen::path_graph(64);
  std::vector<BfsLevelStats> trace;
  const BFSResult r = bfs_hybrid(g, 0, {}, &trace);
  const BFSResult oracle = bfs_serial(g, 0);
  EXPECT_EQ(r.dist, oracle.dist);
  ASSERT_EQ(static_cast<std::int64_t>(trace.size()), oracle.num_levels + 1);
  for (const auto& lv : trace) {
    EXPECT_FALSE(lv.pull) << "level " << lv.level;
    EXPECT_LE(lv.frontier_vertices, 1);
  }
  // Forced pull still gets the right answer, just expensively.
  EXPECT_EQ(bfs_hybrid(g, 0, forced_pull()).dist, oracle.dist);
}

TEST(FrontierEdgeCases, TraceIsConsistent) {
  gen::RmatParams p;
  p.scale = 10;
  p.edge_factor = 16;  // dense enough that the default heuristic pulls
  const auto g = gen::rmat(p);
  std::vector<BfsLevelStats> trace;
  const BFSResult r = bfs_hybrid(g, 0, {}, &trace);
  vid_t discovered = 1;  // source
  for (const auto& lv : trace) discovered += lv.discovered;
  EXPECT_EQ(discovered, r.num_visited);
  // Levels are 1-based and contiguous.
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(trace[i].level, static_cast<std::int64_t>(i) + 1);
}

TEST(FrontierEdgeCases, EngineIsReusableAcrossGraphsAndRuns) {
  BfsEngine engine;
  const auto big = gen::erdos_renyi(2000, 8000, false, 5);
  const auto small = gen::path_graph(7);
  const BFSResult b1 = engine.run(big, 0);
  const BFSResult s1 = engine.run(small, 0);   // shrinking reuse
  const BFSResult b2 = engine.run(big, 0);     // growing reuse
  EXPECT_EQ(b1.dist, b2.dist);
  EXPECT_EQ(b1.dist, bfs_serial(big, 0).dist);
  EXPECT_EQ(s1.dist, bfs_serial(small, 0).dist);
  EXPECT_EQ(engine.run_serial(big, 0).dist, b1.dist);
}

// ------------------------------------------------- expand_arc_balanced unit

TEST(ExpandArcBalanced, VisitsEveryFrontierArcExactlyOnce) {
  const auto g = gen::star_graph(3000);  // hub degree >> serial threshold
  std::vector<vid_t> frontier{0};
  std::vector<vid_t> next;
  FrontierPool pool;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(g.num_vertices()));
  for (int threads : {1, 2, 4}) {
    parallel::ThreadScope scope(threads);
    for (auto& h : hits) h.store(0);
    std::atomic<int> wrong_source{0};
    expand_arc_balanced(g, frontier, next, pool, [&](vid_t u, vid_t v) {
      if (u != 0) wrong_source.fetch_add(1);
      hits[static_cast<std::size_t>(v)].fetch_add(1);
      return true;
    });
    EXPECT_EQ(wrong_source.load(), 0);
    EXPECT_EQ(static_cast<vid_t>(next.size()), 3000);
    for (vid_t v = 1; v <= 3000; ++v)
      EXPECT_EQ(hits[static_cast<std::size_t>(v)].load(), 1) << v;
  }
}

// ------------------------------------------------- bounded BFS regression

/// Pin bfs_bounded to the truncated-oracle semantics on a given graph: for
/// every cutoff d, dist matches bfs_serial wherever serial dist <= d (-1
/// beyond), num_visited counts exactly those vertices, and num_levels is the
/// deepest distance actually assigned.
void check_bounded_against_truncated_oracle(const CSRGraph& g, vid_t source) {
  const BFSResult full = bfs_serial(g, source);
  for (std::int64_t d = 0; d <= full.num_levels + 2; ++d) {
    const BFSResult b = bfs_bounded(g, source, d);
    vid_t visited = 0;
    std::int64_t deepest = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      const auto sv = static_cast<std::size_t>(v);
      const std::int64_t fd = full.dist[sv];
      const std::int64_t expect = (fd >= 0 && fd <= d) ? fd : -1;
      ASSERT_EQ(b.dist[sv], expect)
          << "cutoff " << d << " vertex " << v;
      if (expect >= 0) {
        ++visited;
        deepest = std::max(deepest, expect);
        ASSERT_NE(b.parent[sv], kInvalidVid);
      } else {
        ASSERT_EQ(b.parent[sv], kInvalidVid);
      }
    }
    EXPECT_EQ(b.num_visited, visited) << "cutoff " << d;
    EXPECT_EQ(b.num_levels, deepest) << "cutoff " << d;
  }
}

TEST(BoundedBfsRegression, CutoffAccountingPinnedOnStructuredShapes) {
  check_bounded_against_truncated_oracle(gen::path_graph(12), 0);
  check_bounded_against_truncated_oracle(gen::cycle_graph(9), 2);
  check_bounded_against_truncated_oracle(gen::star_graph(8), 0);
  check_bounded_against_truncated_oracle(gen::star_graph(8), 3);
  check_bounded_against_truncated_oracle(gen::barbell_graph(5), 0);
}

TEST(BoundedBfsRegression, CutoffAccountingPinnedOnRandomGraphs) {
  for (int threads : {1, 4}) {
    parallel::ThreadScope scope(threads);
    check_bounded_against_truncated_oracle(
        gen::erdos_renyi(300, 900, false, 4), 0);
    check_bounded_against_truncated_oracle(
        gen::watts_strogatz(200, 3, 0.2, 9), 5);
  }
}

TEST(BoundedBfsRegression, MatchesSerialAccountingWhenUnbounded) {
  const auto g = gen::erdos_renyi(500, 2500, false, 8);
  const BFSResult full = bfs_serial(g, 0);
  const BFSResult b = bfs_bounded(g, 0, 1 << 20);
  EXPECT_EQ(b.dist, full.dist);
  EXPECT_EQ(b.num_visited, full.num_visited);
  EXPECT_EQ(b.num_levels, full.num_levels);
}

}  // namespace
}  // namespace snap
