// Differential tests for component-restricted divisive community detection:
// the dirty-only score-caching mode of girvan_newman / pbd must produce a
// bitwise-identical run to the retained full-recompute reference mode
// (identical deletion sequence, cluster counts, modularity trace, best
// membership) at every thread count.  This is the correctness contract of
// the caching: component scoring is a pure function of (component, alive
// mask restricted to it, thread count), so skipping untouched components
// can never change anything.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "snap/community/gn.hpp"
#include "snap/community/pbd.hpp"
#include "snap/gen/generators.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/util/parallel.hpp"

namespace snap {
namespace {

CSRGraph rmat_graph(int scale, int edge_factor, std::uint64_t seed) {
  gen::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return gen::rmat(p);
}

/// The four-graph family the differential sweep runs over: a random graph,
/// a skewed small-world graph, a star (every deletion splits), and two
/// cliques joined by a bridge (a clean two-community instance).
std::vector<std::pair<std::string, CSRGraph>> instances() {
  std::vector<std::pair<std::string, CSRGraph>> out;
  out.emplace_back("er", gen::erdos_renyi(80, 160, /*directed=*/false, 5));
  out.emplace_back("rmat", rmat_graph(/*scale=*/6, /*edge_factor=*/4, 7));
  out.emplace_back("star", gen::star_graph(24));
  out.emplace_back("two-cliques", gen::barbell_graph(6));
  return out;
}

void expect_identical_runs(const CommunityResult& a, const CommunityResult& b,
                           const std::string& what) {
  ASSERT_EQ(a.iterations, b.iterations) << what;
  const auto& sa = a.divisive_trace.steps();
  const auto& sb = b.divisive_trace.steps();
  ASSERT_EQ(sa.size(), sb.size()) << what;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].removed_u, sb[i].removed_u) << what << " step " << i;
    EXPECT_EQ(sa[i].removed_v, sb[i].removed_v) << what << " step " << i;
    EXPECT_EQ(sa[i].num_clusters, sb[i].num_clusters) << what << " step " << i;
    // Bitwise: both modes must run the identical per-component arithmetic.
    EXPECT_EQ(sa[i].modularity, sb[i].modularity) << what << " step " << i;
  }
  EXPECT_EQ(a.divisive_trace.best_modularity(),
            b.divisive_trace.best_modularity())
      << what;
  EXPECT_EQ(a.divisive_trace.best_membership(),
            b.divisive_trace.best_membership())
      << what;
  EXPECT_EQ(a.clustering.membership, b.clustering.membership) << what;
  EXPECT_EQ(a.modularity, b.modularity) << what;
}

class DivisiveDifferential : public ::testing::TestWithParam<int> {};

TEST_P(DivisiveDifferential, GnRestrictedMatchesFullRecompute) {
  parallel::ThreadScope scope(GetParam());
  for (const auto& [name, g] : instances()) {
    DivisiveParams restricted;
    restricted.max_iterations = 40;  // bound the sweep; identity must hold
                                     // at every prefix anyway
    DivisiveParams full = restricted;
    full.full_recompute = true;
    const auto a = girvan_newman(g, restricted);
    const auto b = girvan_newman(g, full);
    expect_identical_runs(a, b, name);
  }
}

TEST_P(DivisiveDifferential, PbdDirtyOnlyMatchesRescoreAll) {
  parallel::ThreadScope scope(GetParam());
  for (const auto& [name, g] : instances()) {
    PBDParams dirty_only;
    dirty_only.stop.max_iterations = 40;
    // No sampling (exact scoring everywhere) and no bridge prefilter: both
    // would make the two modes legitimately diverge — sampling because
    // rescore_all draws more from the shared RNG stream, the prefilter
    // because it leaves bridge components unscored until touched.
    dirty_only.exact_threshold = g.num_vertices();
    dirty_only.bicc_prefilter = false;
    PBDParams reference = dirty_only;
    reference.rescore_all = true;
    const auto a = pbd(g, dirty_only);
    const auto b = pbd(g, reference);
    expect_identical_runs(a, b, name);
  }
}

// With sampling fully disabled, pBD's deletion loop is exact GN (same scores,
// same ascending-edge-id tie-break), so the two algorithms must agree on the
// deletion sequence — a cross-implementation differential.
TEST_P(DivisiveDifferential, ExactPbdMatchesGnDeletionSequence) {
  parallel::ThreadScope scope(GetParam());
  for (const auto& [name, g] : instances()) {
    DivisiveParams gp;
    gp.max_iterations = 25;
    PBDParams pp;
    pp.stop.max_iterations = 25;
    pp.exact_threshold = g.num_vertices();
    pp.bicc_prefilter = false;
    const auto a = girvan_newman(g, gp);
    const auto b = pbd(g, pp);
    const auto& sa = a.divisive_trace.steps();
    const auto& sb = b.divisive_trace.steps();
    ASSERT_EQ(sa.size(), sb.size()) << name;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].removed_u, sb[i].removed_u) << name << " step " << i;
      EXPECT_EQ(sa[i].removed_v, sb[i].removed_v) << name << " step " << i;
      EXPECT_EQ(sa[i].num_clusters, sb[i].num_clusters) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, DivisiveDifferential,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace snap
