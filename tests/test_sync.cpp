// Runtime behavior of the capability-annotated sync primitives
// (snap/util/sync.hpp): mutual exclusion, scoped release, try_lock
// semantics, condvar wakeup (including the multi-waiter broadcast the
// service's shutdown path relies on).  The *compile-time* contract — that
// annotation violations are build breaks under Clang and no-ops on GCC —
// is proven separately by tests/negative_compile (test_thread_safety_compile).
#include "snap/util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace {

using snap::sync::CondVar;
using snap::sync::Mutex;
using snap::sync::MutexLock;

TEST(Sync, MutexProvidesMutualExclusion) {
  Mutex mu;  // guards: counter (in this test's threads)
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lk(mu);
        ++counter;
      }
    });
  }
  for (auto& th : team) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(Sync, MutexLockReleasesAtScopeExit) {
  Mutex mu;  // guards: nothing (lock-cycle test)
  {
    MutexLock lk(mu);
    EXPECT_FALSE(mu.try_lock());  // held by the scope
  }
  EXPECT_TRUE(mu.try_lock());  // released at scope exit
  mu.unlock();
}

TEST(Sync, TryLockReportsContention) {
  Mutex mu;  // guards: nothing (try_lock semantics)
  mu.lock();
  std::atomic<bool> other_got_it{true};
  std::thread other([&] { other_got_it.store(mu.try_lock()); });
  other.join();
  EXPECT_FALSE(other_got_it.load());
  mu.unlock();
}

TEST(Sync, CondVarWakesWaiter) {
  Mutex mu;  // guards: ready
  CondVar cv;
  bool ready = false;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    MutexLock lk(mu);
    while (!ready) cv.wait(mu);
    woke.store(true, std::memory_order_release);
  });
  {
    MutexLock lk(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
}

TEST(Sync, CondVarBroadcastWakesAllWaiters) {
  Mutex mu;  // guards: ready, awake
  CondVar cv;
  bool ready = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lk(mu);
      while (!ready) cv.wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lk(mu);
    ready = true;
  }
  cv.notify_all();
  for (auto& th : waiters) th.join();
  MutexLock lk(mu);
  EXPECT_EQ(awake, kWaiters);
}

// The macros must be harmless in expression-free positions on every
// compiler (they expand to attributes under Clang, to nothing elsewhere);
// this is a compile-time statement that runs as a no-op.
struct Annotated {
  Mutex mu;  // guards: field
  int field GUARDED_BY(mu) = 0;
  int* pfield PT_GUARDED_BY(mu) = nullptr;

  int get() REQUIRES(mu) { return field; }
  void locked_set(int v) EXCLUDES(mu) {
    MutexLock lk(mu);
    field = v;
  }
  Mutex& mutex() RETURN_CAPABILITY(mu) { return mu; }
};

TEST(Sync, AnnotationMacrosAreBehaviorNeutral) {
  Annotated a;
  a.locked_set(7);
  MutexLock lk(a.mutex());
  EXPECT_EQ(a.get(), 7);
}

}  // namespace
