#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "snap/gen/generators.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/graph/dynamic_graph.hpp"
#include "snap/graph/subgraph.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

EdgeList triangle_plus_pendant() {
  // 0-1-2 triangle, 3 pendant off 0.
  return {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}};
}

TEST(CSRGraph, UndirectedBasics) {
  const auto g =
      CSRGraph::from_edges(4, triangle_plus_pendant(), /*directed=*/false);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.num_arcs(), 8);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(3), 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_EQ(g.max_degree(), 3);
}

TEST(CSRGraph, DirectedBasics) {
  const EdgeList edges{{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}};
  const auto g = CSRGraph::from_edges(3, edges, /*directed=*/true);
  EXPECT_EQ(g.num_arcs(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(CSRGraph, SortedAdjacency) {
  const EdgeList edges{{0, 3, 1.0}, {0, 1, 1.0}, {0, 2, 1.0}};
  const auto g = CSRGraph::from_edges(4, edges, false);
  const auto nb = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(CSRGraph, DedupeCollapsesParallelEdges) {
  const EdgeList edges{{0, 1, 1.0}, {1, 0, 1.0}, {0, 1, 1.0}};
  const auto g = CSRGraph::from_edges(2, edges, false);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(CSRGraph, SelfLoopsRemovedByDefault) {
  const EdgeList edges{{0, 0, 1.0}, {0, 1, 1.0}};
  const auto g = CSRGraph::from_edges(2, edges, false);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(CSRGraph, SelfLoopKeptWhenRequestedCountsTwiceInDegree) {
  BuildOptions opts;
  opts.remove_self_loops = false;
  const EdgeList edges{{0, 0, 2.0}, {0, 1, 1.0}};
  const auto g = CSRGraph::from_edges(2, edges, false, opts);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(0), 3);  // self loop contributes two arc slots
  double wsum = 0;
  for (weight_t w : g.weights(0)) wsum += w;
  EXPECT_DOUBLE_EQ(wsum, 5.0);  // 2 + 2 + 1
}

TEST(CSRGraph, EdgeIdsPairArcsOfOneEdge) {
  const auto g = CSRGraph::from_edges(4, triangle_plus_pendant(), false);
  // Every logical edge id must appear on exactly two arcs, and the two arcs
  // must connect the edge's endpoints.
  std::vector<int> count(static_cast<std::size_t>(g.num_edges()), 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    const auto ids = g.edge_ids(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      ++count[static_cast<std::size_t>(ids[i])];
      const Edge e = g.edge(ids[i]);
      EXPECT_TRUE((e.u == v && e.v == nb[i]) || (e.v == v && e.u == nb[i]));
    }
  }
  for (int c : count) EXPECT_EQ(c, 2);
}

TEST(CSRGraph, WeightsPreserved) {
  const EdgeList edges{{0, 1, 2.5}, {1, 2, 0.5}};
  const auto g = CSRGraph::from_edges(3, edges, false);
  EXPECT_TRUE(g.weighted());
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 3.0);
}

TEST(CSRGraph, OutOfRangeVertexThrows) {
  const EdgeList edges{{0, 5, 1.0}};
  EXPECT_THROW(CSRGraph::from_edges(3, edges, false), std::out_of_range);
}

TEST(CSRGraph, AsUndirectedFoldsArcs) {
  const EdgeList edges{{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 1.0}};
  const auto d = CSRGraph::from_edges(3, edges, /*directed=*/true);
  EXPECT_EQ(d.num_edges(), 3);
  const auto u = d.as_undirected();
  EXPECT_FALSE(u.directed());
  EXPECT_EQ(u.num_edges(), 2);
}

TEST(CSRGraph, EmptyGraph) {
  const auto g = CSRGraph::from_edges(5, {}, false);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.degree(0), 0);
  EXPECT_EQ(g.max_degree(), 0);
}

// ------------------------------------------------------------- Subgraph

TEST(Subgraph, InducedKeepsInternalEdgesOnly) {
  const auto g = CSRGraph::from_edges(4, triangle_plus_pendant(), false);
  const Subgraph s = induced_subgraph(g, {0, 1, 2});
  EXPECT_EQ(s.graph.num_vertices(), 3);
  EXPECT_EQ(s.graph.num_edges(), 3);  // the triangle; pendant edge dropped
  EXPECT_EQ(s.to_parent.size(), 3u);
  EXPECT_EQ(s.from_parent[3], kInvalidVid);
  // Mapping roundtrip.
  for (vid_t nu = 0; nu < 3; ++nu)
    EXPECT_EQ(s.from_parent[s.to_parent[static_cast<std::size_t>(nu)]], nu);
}

TEST(Subgraph, SplitByLabels) {
  const auto g = CSRGraph::from_edges(4, triangle_plus_pendant(), false);
  const std::vector<vid_t> labels{0, 0, 0, 1};
  const auto parts = split_by_labels(g, labels, 2);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].graph.num_vertices(), 3);
  EXPECT_EQ(parts[1].graph.num_vertices(), 1);
  EXPECT_EQ(parts[1].graph.num_edges(), 0);
}

// --------------------------------------------------------- DynamicGraph

TEST(DynamicGraph, InsertDeleteHasEdge) {
  DynamicGraph d(4, /*directed=*/false);
  EXPECT_TRUE(d.insert_edge(0, 1));
  EXPECT_FALSE(d.insert_edge(1, 0));  // same undirected edge
  EXPECT_TRUE(d.has_edge(0, 1));
  EXPECT_TRUE(d.has_edge(1, 0));
  EXPECT_EQ(d.num_edges(), 1);
  EXPECT_TRUE(d.delete_edge(0, 1));
  EXPECT_FALSE(d.delete_edge(0, 1));
  EXPECT_EQ(d.num_edges(), 0);
}

TEST(DynamicGraph, PromotionToTreapAtThreshold) {
  DynamicGraph d(200, false, /*promote_threshold=*/16);
  for (vid_t v = 1; v <= 20; ++v) d.insert_edge(0, v);
  EXPECT_TRUE(d.is_promoted(0));
  EXPECT_FALSE(d.is_promoted(1));
  EXPECT_EQ(d.degree(0), 20);
  EXPECT_TRUE(d.has_edge(0, 17));
  EXPECT_TRUE(d.delete_edge(0, 17));
  EXPECT_FALSE(d.has_edge(0, 17));
  EXPECT_EQ(d.degree(0), 19);
}

TEST(DynamicGraph, AddVertexGrows) {
  DynamicGraph d(2, false);
  const vid_t v = d.add_vertex();
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(d.insert_edge(0, v));
  EXPECT_EQ(d.num_vertices(), 3);
}

TEST(DynamicGraph, ToCSRRoundtrip) {
  const auto g = CSRGraph::from_edges(4, triangle_plus_pendant(), false);
  const DynamicGraph d = DynamicGraph::from_csr(g);
  EXPECT_EQ(d.num_edges(), g.num_edges());
  const CSRGraph back = d.to_csr();
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) EXPECT_TRUE(back.has_edge(e.u, e.v));
}

class DynamicGraphRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicGraphRandom, MatchesReferenceAdjacency) {
  const vid_t n = 60;
  DynamicGraph d(n, false, /*promote_threshold=*/8);  // force promotions
  std::set<std::pair<vid_t, vid_t>> ref;
  SplitMix64 rng(GetParam());
  for (int op = 0; op < 4000; ++op) {
    vid_t u = static_cast<vid_t>(rng.next_bounded(n));
    vid_t v = static_cast<vid_t>(rng.next_bounded(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (rng.next_bounded(3) == 0) {
      EXPECT_EQ(d.delete_edge(u, v), ref.erase({u, v}) > 0);
    } else {
      EXPECT_EQ(d.insert_edge(u, v), ref.insert({u, v}).second);
    }
    ASSERT_EQ(d.num_edges(), static_cast<eid_t>(ref.size()));
  }
  // Degrees must match the reference.
  std::vector<eid_t> deg(static_cast<std::size_t>(n), 0);
  for (const auto& [u, v] : ref) {
    ++deg[static_cast<std::size_t>(u)];
    ++deg[static_cast<std::size_t>(v)];
  }
  for (vid_t v = 0; v < n; ++v) EXPECT_EQ(d.degree(v), deg[v]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicGraphRandom,
                         ::testing::Values(3, 5, 8, 21));

TEST(DynamicGraph, DirectedMode) {
  DynamicGraph d(3, /*directed=*/true);
  EXPECT_TRUE(d.insert_edge(0, 1));
  EXPECT_TRUE(d.has_edge(0, 1));
  EXPECT_FALSE(d.has_edge(1, 0));
  EXPECT_TRUE(d.insert_edge(1, 0));
  EXPECT_EQ(d.num_edges(), 2);
}

// Promotion boundary: the flat→treap migration point across small and large
// thresholds, the revert when a treap empties, and the CSR round trip in the
// promoted state.

class DynamicGraphPromotion : public ::testing::TestWithParam<eid_t> {};

TEST_P(DynamicGraphPromotion, PromotesExactlyAtThreshold) {
  // A threshold of 1 clamps to 2 (a flat array of one entry is never worth
  // migrating), so the effective boundary is max(threshold, 2).
  const eid_t threshold = GetParam();
  const eid_t effective = std::max<eid_t>(threshold, 2);
  DynamicGraph d(200, false, threshold);
  // A vertex stays flat while its adjacency fits the threshold; the insert
  // that pushes it past migrates it to a treap.
  for (eid_t k = 1; k <= effective; ++k) {
    d.insert_edge(0, static_cast<vid_t>(k));
    EXPECT_FALSE(d.is_promoted(0)) << "promoted at degree " << k;
  }
  d.insert_edge(0, static_cast<vid_t>(effective + 1));
  EXPECT_TRUE(d.is_promoted(0));
  EXPECT_EQ(d.degree(0), effective + 1);
  // Neighbors stay flat: none crossed the boundary.
  for (eid_t k = 1; k <= effective + 1; ++k)
    EXPECT_FALSE(d.is_promoted(static_cast<vid_t>(k)));
}

TEST_P(DynamicGraphPromotion, RevertsToFlatWhenTreapEmpties) {
  const eid_t threshold = GetParam();
  const eid_t effective = std::max<eid_t>(threshold, 2);
  DynamicGraph d(300, false, threshold);
  for (eid_t k = 1; k <= effective + 3; ++k)
    d.insert_edge(0, static_cast<vid_t>(k));
  EXPECT_TRUE(d.is_promoted(0));
  // Deleting below the threshold does NOT demote (hysteresis: a vertex that
  // was hot once likely becomes hot again)...
  for (eid_t k = 1; k <= effective + 2; ++k)
    d.delete_edge(0, static_cast<vid_t>(k));
  EXPECT_EQ(d.degree(0), 1);
  EXPECT_TRUE(d.is_promoted(0));
  // ...but deleting the last key reverts the vertex to the flat form.
  d.delete_edge(0, static_cast<vid_t>(effective + 3));
  EXPECT_EQ(d.degree(0), 0);
  EXPECT_FALSE(d.is_promoted(0));
  // And it can promote again from scratch.
  for (eid_t k = 1; k <= effective + 1; ++k)
    d.insert_edge(0, static_cast<vid_t>(k));
  EXPECT_TRUE(d.is_promoted(0));
}

TEST_P(DynamicGraphPromotion, FromCsrToCsrRoundTrip) {
  const eid_t threshold = GetParam();
  const CSRGraph g = gen::erdos_renyi(120, 900, /*directed=*/false, 31);
  const DynamicGraph d = DynamicGraph::from_csr(g, threshold);
  EXPECT_EQ(d.num_edges(), g.num_edges());
  const CSRGraph back = d.to_csr();
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto want = g.neighbors(v);
    const auto got = back.neighbors(v);
    ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(), got.end()))
        << "adjacency differs at " << v << " (threshold " << threshold << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, DynamicGraphPromotion,
                         ::testing::Values(1, 2, 128));

}  // namespace
}  // namespace snap
