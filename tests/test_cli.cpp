// End-to-end smoke tests of the snap-cli tool: every subcommand is run as a
// real process against temp files, exactly as a user would.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#ifndef SNAP_CLI_PATH
#error "SNAP_CLI_PATH must be defined by the build"
#endif

namespace {

std::string tmp(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("snap_cli_" + name))
      .string();
}

int run(const std::string& args) {
  const std::string cmd =
      std::string(SNAP_CLI_PATH) + " " + args + " > /dev/null 2>&1";
  return std::system(cmd.c_str());
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_path_ = tmp("g.txt");
    ASSERT_EQ(run("generate --type planted --n 500 --k 5 --deg-in 10 "
                  "--deg-out 1 --seed 3 --out " +
                  graph_path_),
              0);
  }
  static void TearDownTestSuite() { std::filesystem::remove(graph_path_); }
  static std::string graph_path_;
};

std::string CliTest::graph_path_;

TEST_F(CliTest, NoArgsShowsUsageAndFails) { EXPECT_NE(run(""), 0); }

TEST_F(CliTest, UnknownCommandFails) { EXPECT_NE(run("frobnicate"), 0); }

TEST_F(CliTest, Summary) {
  EXPECT_EQ(run("summary --in " + graph_path_), 0);
}

TEST_F(CliTest, SummaryMissingFileFails) {
  EXPECT_NE(run("summary --in /nonexistent/g.txt"), 0);
}

TEST_F(CliTest, CommunityAllAlgorithms) {
  for (const char* algo : {"pma", "pla", "pbd", "spectral"}) {
    const std::string out = tmp(std::string("mem_") + algo + ".txt");
    EXPECT_EQ(run("community --in " + graph_path_ + " --algo " + algo +
                  " --out " + out),
              0)
        << algo;
    // The membership file must have one line per vertex.
    std::ifstream in(out);
    int lines = 0;
    std::string line;
    while (std::getline(in, line)) ++lines;
    EXPECT_EQ(lines, 500) << algo;
    std::filesystem::remove(out);
  }
}

TEST_F(CliTest, PartitionMethods) {
  for (const char* m : {"kway", "recursive", "lanczos"}) {
    EXPECT_EQ(
        run("partition --in " + graph_path_ + " --k 4 --method " + m), 0)
        << m;
  }
}

TEST_F(CliTest, CentralityMetrics) {
  for (const char* m : {"degree", "closeness", "betweenness", "stress"}) {
    EXPECT_EQ(
        run("centrality --in " + graph_path_ + " --metric " + m + " --top 5"),
        0)
        << m;
  }
}

TEST_F(CliTest, ConvertRoundtripThroughEveryFormat) {
  const std::string net = tmp("g.net");
  const std::string metis = tmp("g.graph");
  const std::string bin = tmp("g.bin");
  const std::string back = tmp("g_back.txt");
  EXPECT_EQ(run("convert --in " + graph_path_ + " --out " + net), 0);
  EXPECT_EQ(run("convert --in " + net + " --out " + metis), 0);
  EXPECT_EQ(run("convert --in " + metis + " --out " + bin), 0);
  EXPECT_EQ(run("convert --in " + bin + " --out " + back), 0);
  // The final edge list must still parse and carry the same counts.
  EXPECT_EQ(run("summary --in " + back), 0);
  for (const auto& p : {net, metis, bin, back}) std::filesystem::remove(p);
}

TEST_F(CliTest, PageRankTopkAndRankFile) {
  const std::string out = tmp("ranks.txt");
  EXPECT_EQ(run("pagerank --in " + graph_path_ +
                " --top 5 --iters 20 --out " + out),
            0);
  std::ifstream in(out);
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 500);
  std::filesystem::remove(out);
}

TEST_F(CliTest, PageRankMissingFileFails) {
  EXPECT_NE(run("pagerank --in /nonexistent/g.txt"), 0);
}

TEST_F(CliTest, RobustnessAttacks) {
  for (const char* attack : {"degree", "random"}) {
    EXPECT_EQ(run("robustness --in " + graph_path_ + " --attack " + attack +
                  " --steps 5"),
              0)
        << attack;
  }
}

TEST_F(CliTest, GenerateEveryFamily) {
  for (const char* type : {"rmat", "er", "ws", "grid"}) {
    const std::string out = tmp(std::string("gen_") + type + ".txt");
    EXPECT_EQ(run(std::string("generate --type ") + type +
                  " --n 512 --m 2048 --scale 9 --rows 20 --cols 20 --out " +
                  out),
              0)
        << type;
    std::filesystem::remove(out);
  }
}

}  // namespace
