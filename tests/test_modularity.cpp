#include <gtest/gtest.h>

#include <vector>

#include "snap/community/modularity.hpp"
#include "snap/gen/generators.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

TEST(Modularity, OneClusterIsZero) {
  const auto g = gen::karate_club();
  const std::vector<vid_t> all_one(34, 0);
  EXPECT_NEAR(modularity(g, all_one), 0.0, 1e-12);
}

TEST(Modularity, SingletonsAreNegative) {
  const auto g = gen::karate_club();
  std::vector<vid_t> singles(34);
  for (vid_t v = 0; v < 34; ++v) singles[v] = v;
  EXPECT_LT(modularity(g, singles), 0.0);
}

TEST(Modularity, KarateFactionSplitKnownValue) {
  // The observed two-faction split of the club (Zachary 1977).
  const auto g = gen::karate_club();
  std::vector<vid_t> mem(34, 1);
  for (vid_t v : {0, 1, 2, 3, 4, 5, 6, 7, 10, 11, 12, 13, 16, 17, 19, 21})
    mem[static_cast<std::size_t>(v)] = 0;
  const double q = modularity(g, mem);
  EXPECT_NEAR(q, 0.36, 0.03);  // published value ≈ 0.358
  EXPECT_GT(q, 0.3);           // "significant community structure" (§2.3)
}

TEST(Modularity, TwoCliquesSplitBeatsMerged) {
  const auto g = gen::barbell_graph(6);
  std::vector<vid_t> split(12, 0);
  for (vid_t v = 6; v < 12; ++v) split[v] = 1;
  const std::vector<vid_t> merged(12, 0);
  EXPECT_GT(modularity(g, split), modularity(g, merged));
  EXPECT_GT(modularity(g, split), 0.3);  // "significant community structure"
}

TEST(Modularity, WeightedEdgesChangeScore) {
  // Same topology, heavier intra-cluster edges -> higher q for the split.
  EdgeList light{{0, 1, 1.0}, {2, 3, 1.0}, {1, 2, 1.0}};
  EdgeList heavy{{0, 1, 10.0}, {2, 3, 10.0}, {1, 2, 1.0}};
  const auto gl = CSRGraph::from_edges(4, light, false);
  const auto gh = CSRGraph::from_edges(4, heavy, false);
  const std::vector<vid_t> mem{0, 0, 1, 1};
  EXPECT_GT(modularity(gh, mem), modularity(gl, mem));
}

TEST(Modularity, MaskedIgnoresDeadEdges) {
  const auto g = gen::barbell_graph(4);
  std::vector<vid_t> split(8, 0);
  for (vid_t v = 4; v < 8; ++v) split[v] = 1;
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 1);
  const double with_bridge = modularity_masked(g, split, alive);
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    if (ed.u == 3 && ed.v == 4) alive[static_cast<std::size_t>(e)] = 0;
  }
  const double without = modularity_masked(g, split, alive);
  // With the inter-cluster bridge gone, the split is perfect: q higher.
  EXPECT_GT(without, with_bridge);
}

TEST(Modularity, SparseLabelsAccepted) {
  const auto g = gen::barbell_graph(4);
  std::vector<vid_t> mem(8, 3);  // labels {3, 7}, not dense
  for (vid_t v = 4; v < 8; ++v) mem[v] = 7;
  std::vector<vid_t> dense(8, 0);
  for (vid_t v = 4; v < 8; ++v) dense[v] = 1;
  EXPECT_NEAR(modularity(g, mem), modularity(g, dense), 1e-12);
}

TEST(Modularity, ParallelMatchesSerial) {
  // Large enough to trigger the parallel accumulation path.
  gen::RmatParams p;
  p.scale = 14;
  p.edge_factor = 8;
  const auto g = gen::rmat(p);
  std::vector<vid_t> mem(static_cast<std::size_t>(g.num_vertices()));
  SplitMix64 rng(4);
  for (auto& x : mem) x = static_cast<vid_t>(rng.next_bounded(64));
  double q_par, q_ser;
  {
    parallel::ThreadScope scope(4);
    q_par = modularity(g, mem);
  }
  {
    parallel::ThreadScope scope(1);
    q_ser = modularity(g, mem);
  }
  EXPECT_NEAR(q_par, q_ser, 1e-9);
}

TEST(MergeDeltaQ, MatchesDirectRecomputation) {
  // Property: q(after merging clusters a,b) - q(before) == 2(e_ab - a_a a_b).
  const auto g = gen::karate_club();
  const double w2 = 2.0 * g.total_edge_weight();
  SplitMix64 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<vid_t> mem(34);
    for (auto& x : mem) x = static_cast<vid_t>(rng.next_bounded(6));
    const vid_t a = static_cast<vid_t>(rng.next_bounded(6));
    const vid_t b = (a + 1 + static_cast<vid_t>(rng.next_bounded(5))) % 6;
    // e_ab and degree fractions.
    double between = 0, deg_a = 0, deg_b = 0;
    for (const Edge& e : g.edges()) {
      const vid_t cu = mem[static_cast<std::size_t>(e.u)];
      const vid_t cv = mem[static_cast<std::size_t>(e.v)];
      if ((cu == a && cv == b) || (cu == b && cv == a)) between += e.w;
      if (cu == a) deg_a += e.w;
      if (cv == a) deg_a += e.w;
      if (cu == b) deg_b += e.w;
      if (cv == b) deg_b += e.w;
    }
    const double q_before = modularity(g, mem);
    std::vector<vid_t> merged = mem;
    for (auto& x : merged)
      if (x == b) x = a;
    const double q_after = modularity(g, merged);
    const double delta =
        merge_delta_q(between / w2, deg_a / w2, deg_b / w2);
    EXPECT_NEAR(q_after - q_before, delta, 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace snap
