#include <gtest/gtest.h>

#include <tuple>

#include "snap/gen/generators.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/util/parallel.hpp"

namespace snap {
namespace {

TEST(BfsSerial, PathGraphDistances) {
  const auto g = gen::path_graph(10);
  const auto r = bfs_serial(g, 0);
  for (vid_t v = 0; v < 10; ++v) EXPECT_EQ(r.dist[v], v);
  EXPECT_EQ(r.num_visited, 10);
  EXPECT_EQ(r.num_levels, 9);
  EXPECT_EQ(r.parent[0], 0);
  EXPECT_EQ(r.parent[5], 4);
}

TEST(BfsSerial, StarGraph) {
  const auto g = gen::star_graph(6);
  const auto r = bfs_serial(g, 0);
  EXPECT_EQ(r.num_levels, 1);
  const auto leaf = bfs_serial(g, 3);
  EXPECT_EQ(leaf.dist[0], 1);
  EXPECT_EQ(leaf.dist[5], 2);
  EXPECT_EQ(leaf.num_levels, 2);
}

TEST(BfsSerial, DisconnectedUnreached) {
  const auto g = CSRGraph::from_edges(4, {{0, 1, 1.0}, {2, 3, 1.0}}, false);
  const auto r = bfs_serial(g, 0);
  EXPECT_EQ(r.dist[2], -1);
  EXPECT_EQ(r.parent[2], kInvalidVid);
  EXPECT_EQ(r.num_visited, 2);
}

using BfsCase = std::tuple<int /*gen*/, int /*threads*/>;

class ParallelBfs : public ::testing::TestWithParam<BfsCase> {
 protected:
  CSRGraph make_graph(int which) const {
    switch (which) {
      case 0: {
        gen::RmatParams p;
        p.scale = 11;
        p.edge_factor = 8;
        return gen::rmat(p);
      }
      case 1:
        return gen::erdos_renyi(2000, 8000, false, 3);
      case 2:
        return gen::grid_road(40, 40);
      default:
        return gen::star_graph(5000);  // extreme degree skew
    }
  }
};

TEST_P(ParallelBfs, MatchesSerialDistances) {
  const auto [which, threads] = GetParam();
  const auto g = make_graph(which);
  parallel::ThreadScope scope(threads);
  const auto ser = bfs_serial(g, 0);
  const auto par = bfs(g, 0);
  ASSERT_EQ(par.dist.size(), ser.dist.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(par.dist[v], ser.dist[v]) << "vertex " << v;
  EXPECT_EQ(par.num_visited, ser.num_visited);
  EXPECT_EQ(par.num_levels, ser.num_levels);
}

TEST_P(ParallelBfs, ParentsFormValidBfsTree) {
  const auto [which, threads] = GetParam();
  const auto g = make_graph(which);
  parallel::ThreadScope scope(threads);
  const auto r = bfs(g, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (r.dist[v] <= 0) continue;
    const vid_t p = r.parent[v];
    ASSERT_NE(p, kInvalidVid);
    EXPECT_EQ(r.dist[v], r.dist[p] + 1);
    EXPECT_TRUE(g.has_edge(p, v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndThreads, ParallelBfs,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 4)));

TEST(BfsMasked, RespectsDeletedEdges) {
  // Path 0-1-2-3; delete edge (1,2).
  const auto g = gen::path_graph(4);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 1);
  // Find the logical id of edge (1,2).
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    if ((ed.u == 1 && ed.v == 2) || (ed.u == 2 && ed.v == 1))
      alive[static_cast<std::size_t>(e)] = 0;
  }
  const auto r = bfs_masked(g, 0, alive);
  EXPECT_EQ(r.dist[1], 1);
  EXPECT_EQ(r.dist[2], -1);
  EXPECT_EQ(r.dist[3], -1);
  EXPECT_EQ(r.num_visited, 2);
}

TEST(BfsMasked, AllAliveMatchesPlainBfs) {
  const auto g = gen::erdos_renyi(500, 2000, false, 9);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 1);
  const auto a = bfs_masked(g, 0, alive);
  const auto b = bfs_serial(g, 0);
  EXPECT_EQ(a.dist, b.dist);
}

TEST(Bfs, SingleVertexGraph) {
  const auto g = CSRGraph::from_edges(1, {}, false);
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.num_visited, 1);
  EXPECT_EQ(r.num_levels, 0);
  EXPECT_EQ(r.dist[0], 0);
}

}  // namespace
}  // namespace snap
