// End-to-end pipelines across modules, mirroring how §3's "exploratory
// network analysis" stacks preprocessing kernels under the high-level
// algorithms.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "snap/centrality/betweenness.hpp"
#include "snap/centrality/degree.hpp"
#include "snap/community/modularity.hpp"
#include "snap/community/pbd.hpp"
#include "snap/community/pla.hpp"
#include "snap/community/pma.hpp"
#include "snap/gen/generators.hpp"
#include "snap/graph/subgraph.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/biconnected.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/partition/eval.hpp"
#include "snap/partition/multilevel.hpp"
#include "snap/util/parallel.hpp"

namespace snap {
namespace {

TEST(Pipeline, BfsVisitCountsMatchComponentSizes) {
  gen::RmatParams p;
  p.scale = 12;
  p.edge_factor = 4;
  const auto g = gen::rmat(p);
  const auto comps = connected_components(g);
  const auto sizes = comps.sizes();
  // BFS from any vertex must visit exactly its component.
  for (vid_t s : {vid_t{0}, g.num_vertices() / 2, g.num_vertices() - 1}) {
    const auto r = bfs(g, s);
    EXPECT_EQ(r.num_visited,
              sizes[static_cast<std::size_t>(
                  comps.label[static_cast<std::size_t>(s)])]);
  }
}

TEST(Pipeline, PreprocessingDecomposesThenAnalyzesConcurrently) {
  // §3: "If a graph is composed of several large connected components, it
  // can be decomposed and individual components can be analyzed
  // concurrently."  Two planted-partition blobs glued into one edge list.
  std::vector<vid_t> t1, t2;
  const auto g1 = gen::planted_partition(200, 2, 10.0, 1.0, 1, &t1);
  const auto g2 = gen::planted_partition(150, 3, 10.0, 1.0, 2, &t2);
  EdgeList all = g1.edges();
  for (Edge e : g2.edges()) {
    e.u += 200;
    e.v += 200;
    all.push_back(e);
  }
  const auto g = CSRGraph::from_edges(350, all, false);
  const auto comps = connected_components(g);
  ASSERT_GE(comps.count, 2);
  const auto subs = split_by_labels(g, comps.label, comps.count);
  vid_t total = 0;
  for (const auto& s : subs) {
    total += s.graph.num_vertices();
    if (s.graph.num_vertices() < 10) continue;
    const auto r = pma(s.graph);
    EXPECT_GT(r.modularity, 0.2);
  }
  EXPECT_EQ(total, 350);
}

TEST(Pipeline, ArticulationHubsAlsoScoreHighBetweenness) {
  // Biconnected preprocessing and betweenness agree on who matters: every
  // bridge endpoint separating a large side must have nonzero vertex BC.
  const auto g = gen::barbell_graph(10);
  const auto bcc = biconnected_components(g);
  const auto bc = betweenness_centrality(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (bcc.is_articulation[static_cast<std::size_t>(v)]) {
      EXPECT_GT(bc.vertex[static_cast<std::size_t>(v)], 0.0);
    }
  }
}

TEST(Pipeline, CommunityBeatsPartitioningOnModularity) {
  // §2.2's thesis: balanced partitioning optimizes the wrong objective for
  // small-world community structure.  On a planted-partition graph with
  // unequal natural clusters, modularity from pMA should match or beat the
  // modularity induced by a balanced k-way partition.
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(400, 5, 12.0, 1.0, 3, &truth);
  const auto part = multilevel_kway(g, 5);
  std::vector<vid_t> as_clusters(part.part.begin(), part.part.end());
  const double q_part = modularity(g, as_clusters);
  const double q_comm = pma(g).modularity;
  EXPECT_GE(q_comm, q_part - 0.02);
}

TEST(Pipeline, MetricsGuideAlgorithmSelection) {
  // §3: assortativity and clustering metrics flag community structure.
  std::vector<vid_t> truth;
  const auto community_graph =
      gen::planted_partition(500, 5, 10.0, 1.0, 7, &truth);
  const auto random_graph = gen::erdos_renyi(500, 2750, false, 7);
  // The community graph has a higher clustering coefficient...
  EXPECT_GT(average_clustering_coefficient(community_graph),
            average_clustering_coefficient(random_graph));
  // ...and community detection on it pays off, unlike on noise.
  EXPECT_GT(pma(community_graph).modularity,
            pma(random_graph).modularity + 0.1);
}

TEST(Pipeline, DirectedInputsFoldToUndirectedForCommunity) {
  // §5: "We ignore edge directivity in the community detection algorithms."
  gen::RmatParams p;
  p.scale = 9;
  p.edge_factor = 6;
  p.directed = true;
  const auto d = gen::rmat(p);
  ASSERT_TRUE(d.directed());
  const auto u = d.as_undirected();
  const auto r = pma(u);
  EXPECT_EQ(r.clustering.membership.size(),
            static_cast<std::size_t>(u.num_vertices()));
  EXPECT_GE(r.modularity, 0.0);
}

TEST(Pipeline, AllThreeAlgorithmsAgreeOnObviousStructure) {
  // Four well-separated cliques: everyone must find exactly four clusters.
  EdgeList edges;
  const vid_t k = 8;
  for (int c = 0; c < 4; ++c) {
    const vid_t base = c * k;
    for (vid_t u = 0; u < k; ++u)
      for (vid_t v = u + 1; v < k; ++v)
        edges.push_back({base + u, base + v, 1.0});
  }
  // A single cycle of weak links keeps it connected.
  edges.push_back({0, 8, 1.0});
  edges.push_back({8, 16, 1.0});
  edges.push_back({16, 24, 1.0});
  edges.push_back({24, 0, 1.0});
  const auto g = CSRGraph::from_edges(32, edges, false);

  PBDParams bp;
  const auto r_pbd = pbd(g, bp);
  const auto r_pma = pma(g);
  const auto r_pla = pla(g);
  EXPECT_EQ(r_pbd.clustering.num_clusters, 4);
  EXPECT_EQ(r_pma.clustering.num_clusters, 4);
  EXPECT_EQ(r_pla.clustering.num_clusters, 4);
  for (const auto& r : {r_pbd, r_pma, r_pla}) {
    EXPECT_GT(r.modularity, 0.6);
    // Cliques stay whole.
    for (int c = 0; c < 4; ++c)
      for (vid_t v = 1; v < k; ++v)
        EXPECT_EQ(r.clustering.membership[static_cast<std::size_t>(c * k + v)],
                  r.clustering.membership[static_cast<std::size_t>(c * k)]);
  }
}

TEST(Pipeline, ThreadSweepGivesIdenticalCommunityQuality) {
  // The figure benches sweep threads; results must not depend on the count.
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(300, 3, 10.0, 1.0, 17, &truth);
  PBDParams p;
  p.stop.target_clusters = 6;
  double q_ref = -1;
  for (int t : {1, 2, 4}) {
    parallel::ThreadScope scope(t);
    const double q = pbd(g, p).modularity;
    if (q_ref < 0)
      q_ref = q;
    else
      EXPECT_NEAR(q, q_ref, 1e-9) << "threads=" << t;
  }
}

TEST(Pipeline, SummaryOnKarateMatchesKnownFacts) {
  const auto g = gen::karate_club();
  const auto s = summarize(g, g.num_vertices(), 1);
  EXPECT_EQ(s.n, 34);
  EXPECT_EQ(s.m, 78);
  EXPECT_EQ(s.num_components, 1);
  EXPECT_EQ(s.giant_component_size, 34);
  EXPECT_NEAR(s.avg_degree, 2.0 * 78 / 34, 1e-12);
  EXPECT_NEAR(s.approx_avg_path_length, 2.408, 0.01);  // known value
  EXPECT_EQ(s.approx_diameter, 5);                     // known diameter
  EXPECT_NEAR(s.avg_clustering, 0.5706, 0.005);        // known value
}

}  // namespace
}  // namespace snap
