// Differential harness: every parallel traversal kernel is cross-checked
// against a serial oracle on every generator family at thread counts
// {1, 2, 4, 8}.  The oracle for BFS is bfs_serial; the oracle for connected
// components is a serial union-find sweep over the edge list.
#include <gtest/gtest.h>

#include <tuple>
#include <unordered_map>
#include <vector>

#include "snap/debug/determinism.hpp"
#include "snap/ds/union_find.hpp"
#include "snap/gen/generators.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/kernels/frontier.hpp"
#include "snap/kernels/st_connectivity.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

constexpr int kNumGenerators = 5;

CSRGraph make_graph(int which) {
  switch (which) {
    case 0: {  // R-MAT: skewed degrees, the paper's small-world stress case
      gen::RmatParams p;
      p.scale = 10;
      p.edge_factor = 8;
      p.seed = 42;
      return gen::rmat(p);
    }
    case 1:  // Erdős–Rényi: uniform degrees
      return gen::erdos_renyi(1500, 6000, false, 3);
    case 2:  // Barabási–Albert: power-law via preferential attachment
      return gen::barabasi_albert(1200, 3, 5);
    case 3:  // Watts–Strogatz: high clustering, low diameter
      return gen::watts_strogatz(1000, 4, 0.1, 7);
    default:  // planted partition: community structure
      return gen::planted_partition(1200, 8, 6.0, 1.0, 11);
  }
}

std::vector<vid_t> sample_sources(const CSRGraph& g) {
  const vid_t n = g.num_vertices();
  return {0, n / 3, n - 1};
}

void expect_same_bfs(const BFSResult& got, const BFSResult& oracle,
                     const char* what) {
  ASSERT_EQ(got.dist.size(), oracle.dist.size()) << what;
  for (std::size_t v = 0; v < oracle.dist.size(); ++v)
    ASSERT_EQ(got.dist[v], oracle.dist[v]) << what << " vertex " << v;
  EXPECT_EQ(got.num_visited, oracle.num_visited) << what;
  EXPECT_EQ(got.num_levels, oracle.num_levels) << what;
}

void expect_valid_parents(const CSRGraph& g, const BFSResult& r, vid_t source,
                          const char* what) {
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto sv = static_cast<std::size_t>(v);
    if (r.dist[sv] < 0) {
      EXPECT_EQ(r.parent[sv], kInvalidVid) << what << " vertex " << v;
      continue;
    }
    if (v == source) {
      EXPECT_EQ(r.parent[sv], source) << what;
      continue;
    }
    const vid_t p = r.parent[sv];
    ASSERT_NE(p, kInvalidVid) << what << " vertex " << v;
    EXPECT_EQ(r.dist[static_cast<std::size_t>(p)] + 1, r.dist[sv])
        << what << " vertex " << v;
    EXPECT_TRUE(g.has_edge(p, v)) << what << " vertex " << v;
  }
}

using DiffCase = std::tuple<int /*generator*/, int /*threads*/>;

class Differential : public ::testing::TestWithParam<DiffCase> {};

TEST_P(Differential, PushBfsMatchesSerialOracle) {
  const auto [which, threads] = GetParam();
  const CSRGraph g = make_graph(which);
  parallel::ThreadScope scope(threads);
  for (vid_t s : sample_sources(g)) {
    const BFSResult oracle = bfs_serial(g, s);
    expect_same_bfs(bfs_push(g, s), oracle, "push");
  }
}

TEST_P(Differential, HybridBfsMatchesSerialOracle) {
  const auto [which, threads] = GetParam();
  const CSRGraph g = make_graph(which);
  parallel::ThreadScope scope(threads);
  for (vid_t s : sample_sources(g)) {
    const BFSResult oracle = bfs_serial(g, s);
    expect_same_bfs(bfs_hybrid(g, s), oracle, "hybrid-default");

    // Force the pull path on every eligible level.
    HybridBFSOptions pull;
    pull.alpha = 1e18;
    pull.beta = 1e18;
    pull.min_pull_arcs = 0;
    std::vector<BfsLevelStats> trace;
    expect_same_bfs(bfs_hybrid(g, s, pull, &trace), oracle, "forced-pull");
    bool any_pull = false;
    for (const auto& lv : trace) any_pull |= lv.pull;
    if (oracle.num_levels >= 1) {
      EXPECT_TRUE(any_pull) << "pull never engaged";
    }

    // Serial engine path must agree too.
    BfsEngine engine;
    expect_same_bfs(engine.run_serial(g, s), oracle, "serial-hybrid");
  }
}

TEST_P(Differential, ParentTreesAreValid) {
  const auto [which, threads] = GetParam();
  const CSRGraph g = make_graph(which);
  parallel::ThreadScope scope(threads);
  const vid_t s = sample_sources(g)[0];
  expect_valid_parents(g, bfs_push(g, s), s, "push");
  expect_valid_parents(g, bfs_hybrid(g, s), s, "hybrid");
}

TEST_P(Differential, ComponentsMatchUnionFindOracle) {
  const auto [which, threads] = GetParam();
  const CSRGraph g = make_graph(which);
  parallel::ThreadScope scope(threads);
  const Components cc = connected_components(g);

  UnionFind uf(static_cast<std::size_t>(g.num_vertices()));
  for (const Edge& e : g.edges()) uf.unite(e.u, e.v);
  ASSERT_EQ(static_cast<std::size_t>(cc.count), uf.num_sets());

  // Labels must induce the same partition: the label<->root maps are
  // functions in both directions.
  std::unordered_map<vid_t, std::int64_t> label_to_root;
  std::unordered_map<std::int64_t, vid_t> root_to_label;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const vid_t label = cc.label[static_cast<std::size_t>(v)];
    const std::int64_t root = uf.find(v);
    const auto [it, inserted] = label_to_root.try_emplace(label, root);
    EXPECT_EQ(it->second, root) << "vertex " << v;
    const auto [jt, jnew] = root_to_label.try_emplace(root, label);
    EXPECT_EQ(jt->second, label) << "vertex " << v;
  }
}

// Cross-thread-count invariance, on the shared harness (debug::
// check_determinism) instead of the ad-hoc compare-against-t=1 loops this
// file used to imply through its oracle: BFS distances and the component
// partition hash identically at every thread count, per generator family.
TEST(DifferentialInvariance, TraversalResultsHashIdenticallyAcrossThreads) {
  for (int which = 0; which < kNumGenerators; ++which) {
    const CSRGraph g = make_graph(which);
    const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
      for (vid_t s : sample_sources(g)) {
        const BFSResult b = bfs_hybrid(g, s);
        h.sequence(b.dist);
        h.value(b.num_visited);
      }
      const Components cc = connected_components(g);
      h.value(cc.count);
      // Hash the partition, not the label values: renumber first-seen.
      std::vector<vid_t> remap(cc.label.size(), kInvalidVid);
      std::vector<vid_t> canon(cc.label.size());
      vid_t next = 0;
      for (std::size_t v = 0; v < cc.label.size(); ++v) {
        auto& slot = remap[static_cast<std::size_t>(cc.label[v])];
        if (slot == kInvalidVid) slot = next++;
        canon[v] = slot;
      }
      h.sequence(canon);
    });
    ASSERT_TRUE(report.deterministic)
        << "generator " << which << ": " << report.to_string();
  }
}

TEST_P(Differential, StConnectivityMatchesBfsDistance) {
  const auto [which, threads] = GetParam();
  const CSRGraph g = make_graph(which);
  parallel::ThreadScope scope(threads);
  const vid_t n = g.num_vertices();
  SplitMix64 rng(static_cast<std::uint64_t>(which) * 1000 + 17);
  const BFSResult from0 = bfs_serial(g, 0);
  for (int i = 0; i < 10; ++i) {
    const auto t = static_cast<vid_t>(
        rng.next_bounded(static_cast<std::uint64_t>(n)));
    const StConnectivity r = st_connectivity(g, 0, t);
    const std::int64_t d = from0.dist[static_cast<std::size_t>(t)];
    if (d < 0) {
      EXPECT_FALSE(r.connected) << "target " << t;
    } else {
      ASSERT_TRUE(r.connected) << "target " << t;
      EXPECT_EQ(r.distance, d) << "target " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GeneratorsAndThreads, Differential,
    ::testing::Combine(::testing::Range(0, kNumGenerators),
                       ::testing::Values(1, 2, 4, 8)));

}  // namespace
}  // namespace snap
