#include <gtest/gtest.h>

#include <cmath>

#include "snap/gen/generators.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/metrics/path_length.hpp"

namespace snap {
namespace {

TEST(Metrics, AverageDegree) {
  EXPECT_DOUBLE_EQ(average_degree(gen::cycle_graph(10)), 2.0);
  EXPECT_DOUBLE_EQ(average_degree(gen::complete_graph(5)), 4.0);
}

TEST(Metrics, DegreeHistogram) {
  const auto g = gen::star_graph(6);
  const auto h = degree_histogram(g);
  ASSERT_EQ(h.size(), 7u);
  EXPECT_EQ(h[1], 6);
  EXPECT_EQ(h[6], 1);
  EXPECT_EQ(h[0], 0);
}

TEST(Clustering, CompleteGraphIsOne) {
  const auto g = gen::complete_graph(6);
  const auto cc = local_clustering_coefficients(g);
  for (double c : cc) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(g), 1.0);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 1.0);
}

TEST(Clustering, StarIsZero) {
  const auto g = gen::star_graph(5);
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(g), 0.0);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 0.0);
}

TEST(Clustering, TrianglePlusPendantKnownValues) {
  // Triangle 0-1-2 with pendant 3 attached to 0.
  const EdgeList edges{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {0, 3, 1}};
  const auto g = CSRGraph::from_edges(4, edges, false);
  const auto cc = local_clustering_coefficients(g);
  EXPECT_DOUBLE_EQ(cc[0], 1.0 / 3.0);  // one closed of three pairs
  EXPECT_DOUBLE_EQ(cc[1], 1.0);
  EXPECT_DOUBLE_EQ(cc[2], 1.0);
  EXPECT_DOUBLE_EQ(cc[3], 0.0);
  // Global: 3 triangles' worth of closed wedges / total wedges.
  // Wedges: v0 has C(3,2)=3, v1 and v2 have 1 each -> 5; closed = 3.
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 3.0 / 5.0);
}

TEST(RichClub, CompleteGraphAllOnes) {
  const auto g = gen::complete_graph(5);  // all degrees 4
  const auto phi = rich_club_coefficients(g);
  ASSERT_EQ(phi.size(), 5u);
  for (eid_t k = 0; k < 4; ++k) EXPECT_DOUBLE_EQ(phi[k], 1.0);
  EXPECT_DOUBLE_EQ(phi[4], 0.0);  // no vertices of degree > 4
}

TEST(RichClub, StarDropsToZero) {
  const auto g = gen::star_graph(5);  // center degree 5, leaves 1
  const auto phi = rich_club_coefficients(g);
  // Degree > 1: only the center -> fewer than 2 vertices -> 0.
  EXPECT_DOUBLE_EQ(phi[1], 0.0);
  // Degree > 0: all 6 vertices, 5 edges: phi = 2*5/(6*5) = 1/3.
  EXPECT_DOUBLE_EQ(phi[0], 1.0 / 3.0);
}

TEST(Assortativity, StarIsMaximallyDisassortative) {
  const auto g = gen::star_graph(10);
  EXPECT_NEAR(assortativity_coefficient(g), -1.0, 1e-9);
}

TEST(Assortativity, RegularGraphDegenerate) {
  // All degrees equal: correlation undefined -> defined as 0.
  const auto g = gen::cycle_graph(10);
  EXPECT_DOUBLE_EQ(assortativity_coefficient(g), 0.0);
}

TEST(Assortativity, AssortativeConstruction) {
  // Two hubs joined to each other plus separate leaf pairs: high-degree
  // vertices attach to high-degree vertices.
  EdgeList edges{{0, 1, 1}};                      // hub-hub
  edges.push_back({0, 2, 1});
  edges.push_back({0, 3, 1});
  edges.push_back({1, 4, 1});
  edges.push_back({1, 5, 1});
  edges.push_back({6, 7, 1});  // leaf pair
  const auto g = CSRGraph::from_edges(8, edges, false);
  const double r = assortativity_coefficient(g);
  const auto g2 = gen::star_graph(7);
  EXPECT_GT(r, assortativity_coefficient(g2));
}

TEST(NeighborConnectivity, StarKnownValues) {
  const auto g = gen::star_graph(5);
  const auto knn = average_neighbor_connectivity(g);
  ASSERT_EQ(knn.size(), 6u);
  EXPECT_DOUBLE_EQ(knn[1], 5.0);  // leaves see the hub
  EXPECT_DOUBLE_EQ(knn[5], 1.0);  // hub sees leaves
}

TEST(PathLength, ExactOnPathGraph) {
  const auto g = gen::path_graph(4);
  const auto s = exact_path_length(g);
  // Pairwise distances (ordered pairs): 1,2,3,1,1,2,2,1,1,3,2,1 -> avg 5/3.
  EXPECT_NEAR(s.average, 5.0 / 3.0, 1e-9);
  EXPECT_EQ(s.max_eccentricity, 3);
}

TEST(PathLength, SampledConvergesToExact) {
  const auto g = gen::grid_road(12, 12, 0.0, 0.0, 1);
  const auto exact = exact_path_length(g);
  const auto sampled = sampled_path_length(g, 60, 5);
  EXPECT_NEAR(sampled.average, exact.average, exact.average * 0.15);
  EXPECT_LE(sampled.max_eccentricity, exact.max_eccentricity);
}

TEST(PathLength, SmallWorldShorterThanLattice) {
  const auto lattice = gen::watts_strogatz(400, 3, 0.0, 1);
  const auto rewired = gen::watts_strogatz(400, 3, 0.2, 1);
  EXPECT_LT(sampled_path_length(rewired, 50, 2).average,
            sampled_path_length(lattice, 50, 2).average);
}

TEST(Summary, ReportsConsistentStructure) {
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(500, 5, 10.0, 1.0, 3, &truth);
  const auto s = summarize(g, 16, 1);
  EXPECT_EQ(s.n, 500);
  EXPECT_EQ(s.m, g.num_edges());
  EXPECT_FALSE(s.directed);
  EXPECT_NEAR(s.avg_degree, average_degree(g), 1e-12);
  EXPECT_GE(s.giant_component_size, s.n / 2);
  EXPECT_GT(s.approx_avg_path_length, 1.0);
  EXPECT_GE(s.max_degree, static_cast<eid_t>(s.avg_degree));
}

}  // namespace
}  // namespace snap
