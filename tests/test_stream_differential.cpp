// Differential tests for the streaming-update engine: random update streams
// over R-MAT and Erdős–Rényi bases, applied batched-parallel at several
// thread counts, must produce snapshots byte-identical to serial
// one-edge-at-a-time application — and every observer must match a
// from-scratch recomputation after every batch.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "snap/ds/union_find.hpp"
#include "snap/gen/generators.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/graph/dynamic_graph.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/stream/observers.hpp"
#include "snap/stream/streaming_graph.hpp"
#include "snap/stream/update_batch.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

using stream::ClusteringObserver;
using stream::ComponentsObserver;
using stream::DegreeStatsObserver;
using stream::StreamingGraph;
using stream::UpdateBatch;
using stream::UpdateRecord;
using stream::UpdateKind;

void expect_same_csr(const CSRGraph& a, const CSRGraph& b,
                     const char* what) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << what;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << what;
  ASSERT_EQ(a.num_arcs(), b.num_arcs()) << what;
  for (vid_t v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.arc_begin(v), b.arc_begin(v)) << what << " offsets @" << v;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << what << " adjacency @" << v;
  }
}

/// A stream of batches over a biased vertex range, so deletions often hit
/// edges that exist (uniform pairs over n^2 almost never would).
std::vector<std::vector<UpdateRecord>> make_stream(vid_t n, int num_batches,
                                                   int batch_size,
                                                   int delete_pct,
                                                   std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::vector<UpdateRecord>> batches;
  std::uint64_t t = 0;
  for (int b = 0; b < num_batches; ++b) {
    std::vector<UpdateRecord>& recs = batches.emplace_back();
    for (int i = 0; i < batch_size; ++i) {
      const auto u = static_cast<vid_t>(
          rng.next_bounded(static_cast<std::uint64_t>(n)));
      const auto v = static_cast<vid_t>(
          rng.next_bounded(static_cast<std::uint64_t>(n)));
      const UpdateKind kind =
          rng.next_bounded(100) < static_cast<std::uint64_t>(delete_pct)
              ? UpdateKind::kDelete
              : UpdateKind::kInsert;
      recs.push_back({u, v, t++, kind});
    }
  }
  return batches;
}

/// The oracle: a plain DynamicGraph with every record applied one edge at a
/// time in stream order, via the public insert_edge/delete_edge API.
class SerialOracle {
 public:
  explicit SerialOracle(const CSRGraph& base)
      : g_(DynamicGraph::from_csr(base)) {}

  void apply(const std::vector<UpdateRecord>& recs) {
    for (const UpdateRecord& r : recs) {
      const vid_t hi = std::max(r.u, r.v);
      if (hi >= g_.num_vertices()) grow(hi + 1);
      if (r.kind == UpdateKind::kInsert)
        g_.insert_edge(r.u, r.v);
      else
        g_.delete_edge(r.u, r.v);
    }
  }

  [[nodiscard]] CSRGraph to_csr() const { return g_.to_csr(); }
  [[nodiscard]] const DynamicGraph& graph() const { return g_; }

 private:
  void grow(vid_t n) {
    // DynamicGraph has no public resize; re-inserting every edge into a
    // bigger graph is an oracle-grade (slow, simple) way to grow.  Walk the
    // adjacency itself — a to_csr() round trip would drop self loops.
    DynamicGraph bigger(n, g_.directed());
    for (vid_t u = 0; u < g_.num_vertices(); ++u)
      g_.for_each_neighbor(u, [&](vid_t v) {
        if (g_.directed() || u <= v) bigger.insert_edge(u, v);
      });
    g_ = std::move(bigger);
  }

  DynamicGraph g_;
};

struct ObserverChecks {
  bool check_clustering;  ///< undirected only
};

/// Drives one full differential run: same base + same stream through the
/// batched StreamingGraph (at `threads`) and the serial oracle; after every
/// batch the snapshots must be identical and every observer must agree with
/// a from-scratch recomputation on the oracle graph.
void run_differential(const CSRGraph& base,
                      const std::vector<std::vector<UpdateRecord>>& batches,
                      int threads, eid_t promote_threshold,
                      bool check_observers) {
  DynamicGraph dyn =
      DynamicGraph::from_csr(base, promote_threshold);
  StreamingGraph sg(std::move(dyn));
  SerialOracle oracle(base);

  ComponentsObserver comps(sg.graph());
  DegreeStatsObserver deg(sg.graph());
  std::unique_ptr<ClusteringObserver> cc;
  if (check_observers) {
    sg.add_observer(&comps);
    sg.add_observer(&deg);
    if (!base.directed()) {
      cc = std::make_unique<ClusteringObserver>(sg.graph());
      sg.add_observer(cc.get());
    }
  }

  parallel::ThreadScope scope(threads);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    UpdateBatch batch;
    for (const UpdateRecord& r : batches[b]) {
      if (r.kind == UpdateKind::kInsert)
        batch.insert(r.u, r.v, r.time);
      else
        batch.erase(r.u, r.v, r.time);
    }
    sg.apply(batch);
    oracle.apply(batches[b]);

    const CSRGraph got = sg.graph().to_csr();
    const CSRGraph want = oracle.to_csr();
    expect_same_csr(got, want,
                    ("batch " + std::to_string(b) + " threads " +
                     std::to_string(threads))
                        .c_str());
    if (::testing::Test::HasFatalFailure()) return;

    if (!check_observers) continue;

    // Components vs a fresh union–find over the snapshot's edges.
    {
      UnionFind uf(static_cast<std::size_t>(want.num_vertices()));
      for (const Edge& e : want.edges()) uf.unite(e.u, e.v);
      ASSERT_EQ(comps.num_components(), static_cast<vid_t>(uf.num_sets()))
          << "components @batch " << b;
    }
    // Degrees vs DynamicGraph::degree on the oracle.
    {
      ASSERT_EQ(deg.num_vertices(), oracle.graph().num_vertices());
      eid_t want_max = 0;
      for (vid_t v = 0; v < oracle.graph().num_vertices(); ++v) {
        const eid_t d = oracle.graph().degree(v);
        ASSERT_EQ(deg.degree(v), d) << "degree @batch " << b << " v " << v;
        want_max = std::max(want_max, d);
      }
      ASSERT_EQ(deg.max_degree(), want_max) << "max degree @batch " << b;
    }
    // Clustering vs the static metrics on the (self-loop-free) snapshot.
    if (cc) {
      ASSERT_NEAR(cc->global_clustering(),
                  global_clustering_coefficient(want), 1e-9)
          << "global cc @batch " << b;
      ASSERT_NEAR(cc->average_clustering(),
                  average_clustering_coefficient(want), 1e-9)
          << "average cc @batch " << b;
    }
  }
}

TEST(StreamDifferential, ErdosRenyiMixedStreamAllThreadCounts) {
  const CSRGraph base = gen::erdos_renyi(400, 1600, /*directed=*/false, 7);
  const auto batches = make_stream(420, /*num_batches=*/6,
                                   /*batch_size=*/800, /*delete_pct=*/35, 11);
  for (int t : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(t));
    run_differential(base, batches, t, /*promote_threshold=*/128,
                     /*check_observers=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(StreamDifferential, RmatMixedStreamAllThreadCounts) {
  gen::RmatParams p;
  p.scale = 9;  // 512 vertices
  p.edge_factor = 6;
  p.seed = 13;
  const CSRGraph base = gen::rmat(p);
  const auto batches =
      make_stream(base.num_vertices(), /*num_batches=*/5,
                  /*batch_size=*/1000, /*delete_pct=*/30, 29);
  for (int t : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(t));
    run_differential(base, batches, t, /*promote_threshold=*/128,
                     /*check_observers=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(StreamDifferential, LowPromoteThresholdExercisesTreaps) {
  // promote_threshold = 2 promotes nearly every touched vertex to a treap,
  // so the parallel path must keep treap shapes byte-identical too.
  const CSRGraph base = gen::erdos_renyi(150, 700, false, 3);
  const auto batches = make_stream(150, 4, 600, 40, 17);
  for (int t : {1, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(t));
    run_differential(base, batches, t, /*promote_threshold=*/2,
                     /*check_observers=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(StreamDifferential, DirectedStream) {
  const CSRGraph base = gen::erdos_renyi(300, 1200, /*directed=*/true, 21);
  const auto batches = make_stream(310, 4, 700, 30, 5);
  for (int t : {1, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(t));
    run_differential(base, batches, t, /*promote_threshold=*/128,
                     /*check_observers=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(StreamDifferential, InsertOnlyFromEmpty) {
  const CSRGraph base = CSRGraph::from_edges(0, {}, /*directed=*/false);
  const auto batches = make_stream(256, 5, 900, /*delete_pct=*/0, 41);
  for (int t : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(t));
    run_differential(base, batches, t, /*promote_threshold=*/128,
                     /*check_observers=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace snap
