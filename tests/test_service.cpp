// Wire-protocol tests for the graph analytics service: every endpoint is
// exercised against a real loopback HttpServer, and success bodies are
// compared BYTE-FOR-BYTE with JSON assembled from the offline kernels run
// on an identical graph — the service must answer exactly what the library
// answers on the pinned snapshot.  Error paths (bad vertex id, malformed
// body, unknown route, wrong method) must come back as 4xx with a JSON
// error object.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "snap/centrality/betweenness.hpp"
#include "snap/community/louvain.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/kernels/pagerank.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/server/http.hpp"
#include "snap/server/service.hpp"
#include "snap/stream/streaming_graph.hpp"
#include "snap/stream/update_batch.hpp"
#include "snap/util/json.hpp"

namespace {

using snap::CSRGraph;
using snap::vid_t;
using snap::json::Value;
using snap::server::GraphService;
using snap::server::HttpClient;
using snap::server::HttpResult;
using snap::server::HttpServer;
using snap::server::http_request;

// The known graph: a triangle 0-1-2, a tail 2-3, a detached pair 4-5, and
// isolated vertices 6, 7.  Five edges, four components.
constexpr vid_t kN = 8;

snap::stream::UpdateBatch seed_batch() {
  snap::stream::UpdateBatch b;
  b.insert(0, 1, 1);
  b.insert(1, 2, 2);
  b.insert(0, 2, 3);
  b.insert(2, 3, 4);
  b.insert(4, 5, 5);
  return b;
}

std::string seed_body() {
  Value updates = Value::array();
  const snap::stream::UpdateBatch batch = seed_batch();
  for (const auto& rec : batch.records()) {
    Value u = Value::object();
    u.set("op", "insert");
    u.set("u", rec.u);
    u.set("v", rec.v);
    u.set("time", static_cast<std::int64_t>(rec.time));
    updates.push_back(u);
  }
  Value doc = Value::object();
  doc.set("updates", updates);
  return doc.dump();
}

/// The same graph the service holds after one /ingest of seed_body(),
/// built directly through the library.
CSRGraph offline_graph() {
  snap::stream::StreamingGraph sg(kN, /*directed=*/false);
  sg.apply(seed_batch());
  return sg.snapshot();
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<GraphService>(kN, /*directed=*/false);
    server_ = std::make_unique<HttpServer>(service_.get(), /*threads=*/2);
    std::string err;
    ASSERT_TRUE(server_->start("127.0.0.1", 0, &err)) << err;
    port_ = server_->port();
  }

  void TearDown() override { server_->stop(); }

  /// One /ingest of the known graph; asserts the exact apply stats.
  void seed() {
    const HttpResult r =
        http_request("127.0.0.1", port_, "POST", "/ingest", seed_body());
    ASSERT_EQ(r.status, 200) << r.error << r.body;
    Value expected = Value::object();
    expected.set("epoch", 1);
    expected.set("raw_records", 5);
    expected.set("canonical_arcs", 10);
    expected.set("applied_inserts", 5);
    expected.set("applied_deletes", 0);
    EXPECT_EQ(r.body, expected.dump());
  }

  HttpResult get(const std::string& target) {
    return http_request("127.0.0.1", port_, "GET", target);
  }

  std::unique_ptr<GraphService> service_;
  std::unique_ptr<HttpServer> server_;
  int port_ = 0;
};

TEST_F(ServiceTest, StatsMatchesOfflineGraph) {
  seed();
  const CSRGraph g = offline_graph();
  Value expected = Value::object();
  expected.set("epoch", 1);
  expected.set("num_vertices", g.num_vertices());
  expected.set("num_edges", g.num_edges());
  expected.set("num_arcs", g.num_arcs());
  expected.set("directed", false);
  // Exactly one epoch image alive: the published snapshot (the handler's
  // own pin references the same object, not a new one).
  expected.set("live_snapshots", 1);
  const HttpResult r = get("/stats");
  ASSERT_EQ(r.status, 200) << r.error;
  EXPECT_EQ(r.body, expected.dump());
}

TEST_F(ServiceTest, SnapshotGaugeReturnsToOneAfterQueries) {
  seed();
  // Work the service: ingests retire epochs while queries hold pins on
  // them, then everything unpins as each handler returns.
  for (int round = 0; round < 3; ++round) {
    Value updates = Value::array();
    Value u = Value::object();
    u.set("op", "insert");
    u.set("u", round);
    u.set("v", round + 4);
    updates.push_back(u);
    Value doc = Value::object();
    doc.set("updates", updates);
    ASSERT_EQ(
        http_request("127.0.0.1", port_, "POST", "/ingest", doc.dump()).status,
        200);
    ASSERT_EQ(get("/neighbors/0").status, 200);
    ASSERT_EQ(get("/cc/0").status, 200);
    ASSERT_EQ(get("/clustering").status, 200);
  }
  // Every query handler has returned (we read its full response), so all
  // pins are dropped: only the published snapshot may remain, and /stats
  // must report the same gauge it exposes.
  EXPECT_EQ(service_->streaming().live_snapshots(), 1);
  Value stats;
  ASSERT_TRUE(snap::json::parse(get("/stats").body, &stats, nullptr));
  EXPECT_EQ(stats.get("live_snapshots").as_int64(), 1);
  EXPECT_EQ(stats.get("epoch").as_int64(), 4);
}

TEST_F(ServiceTest, DegreeAndNeighborsMatchOfflineGraph) {
  seed();
  const CSRGraph g = offline_graph();
  for (vid_t v = 0; v < kN; ++v) {
    Value expected = Value::object();
    expected.set("epoch", 1);
    expected.set("vertex", v);
    expected.set("degree", g.degree(v));
    const HttpResult rd = get("/degree/" + std::to_string(v));
    ASSERT_EQ(rd.status, 200) << rd.error;
    EXPECT_EQ(rd.body, expected.dump());

    Value nbrs = Value::array();
    for (const vid_t u : g.neighbors(v)) nbrs.push_back(u);
    expected.set("neighbors", nbrs);
    const HttpResult rn = get("/neighbors/" + std::to_string(v));
    ASSERT_EQ(rn.status, 200) << rn.error;
    EXPECT_EQ(rn.body, expected.dump());
  }
}

TEST_F(ServiceTest, ConnectedComponentMatchesOfflineKernel) {
  seed();
  const CSRGraph g = offline_graph();
  const snap::Components comps = snap::connected_components(g);
  const std::vector<vid_t> sizes = comps.sizes();
  for (const vid_t v : {vid_t{0}, vid_t{3}, vid_t{4}, vid_t{7}}) {
    const vid_t label = comps.label[static_cast<std::size_t>(v)];
    Value expected = Value::object();
    expected.set("epoch", 1);
    expected.set("vertex", v);
    expected.set("component", label);
    expected.set("component_size", sizes[static_cast<std::size_t>(label)]);
    expected.set("num_components", comps.count);
    const HttpResult r = get("/cc/" + std::to_string(v));
    ASSERT_EQ(r.status, 200) << r.error;
    EXPECT_EQ(r.body, expected.dump());
  }
}

TEST_F(ServiceTest, ClusteringMatchesOfflineKernel) {
  seed();
  const CSRGraph g = offline_graph();
  Value expected = Value::object();
  expected.set("epoch", 1);
  expected.set("average", snap::average_clustering_coefficient(g));
  expected.set("global", snap::global_clustering_coefficient(g));
  const HttpResult r = get("/clustering");
  ASSERT_EQ(r.status, 200) << r.error;
  EXPECT_EQ(r.body, expected.dump());
}

TEST_F(ServiceTest, CommunityMatchesOfflineKernel) {
  seed();
  const CSRGraph g = offline_graph();
  const snap::CommunityResult offline = snap::louvain(g).community;
  Value expected = Value::object();
  expected.set("epoch", 1);
  expected.set("algo", "louvain");
  expected.set("num_communities", offline.clustering.num_clusters);
  expected.set("modularity", offline.modularity);
  const HttpResult r = get("/community?algo=louvain");
  ASSERT_EQ(r.status, 200) << r.error;
  EXPECT_EQ(r.body, expected.dump());

  // plp runs too and reports the same epoch/shape.
  const HttpResult rp = get("/community?algo=plp");
  ASSERT_EQ(rp.status, 200) << rp.error;
  Value doc;
  ASSERT_TRUE(snap::json::parse(rp.body, &doc, nullptr));
  EXPECT_EQ(doc.get("algo").as_string(), "plp");
  EXPECT_EQ(doc.get("epoch").as_int64(), 1);
  EXPECT_GE(doc.get("num_communities").as_int64(), 4);
}

TEST_F(ServiceTest, BcTopkMatchesOfflineKernel) {
  seed();
  const CSRGraph g = offline_graph();
  // samples=16 >= n, so the service uses every vertex as a source — the
  // exact kernel, reproducible here without touching the sampler.
  std::vector<vid_t> sources(kN);
  for (vid_t v = 0; v < kN; ++v) sources[static_cast<std::size_t>(v)] = v;
  const std::vector<double> scores =
      snap::approx_vertex_betweenness(g, sources);
  std::vector<vid_t> order(kN);
  for (vid_t v = 0; v < kN; ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&scores](vid_t a, vid_t b) {
    const double sa = scores[static_cast<std::size_t>(a)];
    const double sb = scores[static_cast<std::size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  });
  Value top = Value::array();
  for (int i = 0; i < 3; ++i) {
    Value row = Value::object();
    row.set("vertex", order[static_cast<std::size_t>(i)]);
    row.set("score", scores[static_cast<std::size_t>(
                         order[static_cast<std::size_t>(i)])]);
    top.push_back(row);
  }
  Value expected = Value::object();
  expected.set("epoch", 1);
  expected.set("k", 3);
  expected.set("samples", static_cast<std::int64_t>(kN));
  expected.set("seed", 42);
  expected.set("top", top);
  const HttpResult r = get("/bc-topk?k=3&samples=16");
  ASSERT_EQ(r.status, 200) << r.error;
  EXPECT_EQ(r.body, expected.dump());
}

TEST_F(ServiceTest, PageRankTopkMatchesOfflineKernel) {
  seed();
  const CSRGraph g = offline_graph();
  // The endpoint runs fixed work (tol = 0, exactly `iters` iterations), so
  // the body is a pure function of (epoch, k, iters) — byte-exact against
  // the offline kernel run with identical parameters.
  snap::PageRankParams params;
  params.max_iters = 20;
  params.tol = 0.0;
  const snap::PageRankResult pr = snap::pagerank(g, params);
  std::vector<vid_t> order(kN);
  for (vid_t v = 0; v < kN; ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&pr](vid_t a, vid_t b) {
    const double ra = pr.rank[static_cast<std::size_t>(a)];
    const double rb = pr.rank[static_cast<std::size_t>(b)];
    if (ra != rb) return ra > rb;
    return a < b;
  });
  Value top = Value::array();
  for (int i = 0; i < 4; ++i) {
    Value row = Value::object();
    row.set("vertex", order[static_cast<std::size_t>(i)]);
    row.set("rank", pr.rank[static_cast<std::size_t>(
                        order[static_cast<std::size_t>(i)])]);
    top.push_back(row);
  }
  Value expected = Value::object();
  expected.set("epoch", 1);
  expected.set("k", 4);
  expected.set("iters", 20);
  expected.set("top", top);
  const HttpResult r = get("/pagerank-topk?k=4&iters=20");
  ASSERT_EQ(r.status, 200) << r.error;
  EXPECT_EQ(r.body, expected.dump());
  // Triangle members out-rank the tail and the detached pair; vertex 2
  // (triangle + tail) carries the most.
  EXPECT_EQ(order[0], 2);
}

TEST_F(ServiceTest, PageRankTopkDefaultsAreStable) {
  seed();
  // Defaults k=10 (clamped to n) and iters=20: two identical requests must
  // return identical bytes — same pinned epoch, deterministic kernel.
  const HttpResult a = get("/pagerank-topk");
  const HttpResult b = get("/pagerank-topk");
  ASSERT_EQ(a.status, 200) << a.error;
  EXPECT_EQ(a.body, b.body);
  Value doc;
  ASSERT_TRUE(snap::json::parse(a.body, &doc, nullptr));
  EXPECT_EQ(doc.get("k").as_int64(), static_cast<std::int64_t>(kN));
  EXPECT_EQ(doc.get("iters").as_int64(), 20);
  EXPECT_EQ(doc.get("epoch").as_int64(), 1);
}

TEST_F(ServiceTest, DeleteUpdatesShrinkTheGraph) {
  seed();
  Value updates = Value::array();
  Value d = Value::object();
  d.set("op", "delete");
  d.set("u", 2);
  d.set("v", 3);
  updates.push_back(d);
  Value doc = Value::object();
  doc.set("updates", updates);
  const HttpResult r =
      http_request("127.0.0.1", port_, "POST", "/ingest", doc.dump());
  ASSERT_EQ(r.status, 200) << r.error;
  Value resp;
  ASSERT_TRUE(snap::json::parse(r.body, &resp, nullptr));
  EXPECT_EQ(resp.get("epoch").as_int64(), 2);
  EXPECT_EQ(resp.get("applied_deletes").as_int64(), 1);

  Value stats;
  ASSERT_TRUE(snap::json::parse(get("/stats").body, &stats, nullptr));
  EXPECT_EQ(stats.get("num_edges").as_int64(), 4);
  EXPECT_EQ(stats.get("epoch").as_int64(), 2);
}

TEST_F(ServiceTest, ErrorPaths) {
  seed();
  struct Case {
    const char* method;
    const char* target;
    const char* body;
    int status;
  };
  const Case cases[] = {
      {"GET", "/degree/abc", "", 400},
      {"GET", "/degree/-1", "", 400},
      {"GET", "/degree/999", "", 404},
      {"GET", "/neighbors/xyz", "", 400},
      {"GET", "/cc/999", "", 404},
      {"GET", "/no/such/route", "", 404},
      {"GET", "/ingest", "", 405},
      {"POST", "/stats", "", 405},
      {"POST", "/ingest", "{not json", 400},
      {"POST", "/ingest", "{\"nope\":1}", 400},
      {"POST", "/ingest", "{\"updates\":[{\"op\":\"explode\",\"u\":0,\"v\":1}]}",
       400},
      {"POST", "/ingest", "{\"updates\":[{\"op\":\"insert\",\"u\":-4,\"v\":1}]}",
       400},
      {"GET", "/community?algo=sorcery", "", 400},
      {"GET", "/bc-topk?k=0", "", 400},
      {"GET", "/bc-topk?k=frog", "", 400},
      {"GET", "/pagerank-topk?k=0", "", 400},
      {"GET", "/pagerank-topk?iters=0", "", 400},
      {"GET", "/pagerank-topk?iters=nope", "", 400},
      {"POST", "/pagerank-topk", "", 405},
  };
  for (const Case& c : cases) {
    const HttpResult r =
        http_request("127.0.0.1", port_, c.method, c.target, c.body);
    EXPECT_EQ(r.status, c.status) << c.method << " " << c.target;
    Value doc;
    ASSERT_TRUE(snap::json::parse(r.body, &doc, nullptr))
        << c.target << " body: " << r.body;
    EXPECT_TRUE(doc.get("error").is_string()) << c.target;
  }
}

TEST_F(ServiceTest, KeepAliveServesManyRequestsOnOneConnection) {
  seed();
  HttpClient client;
  std::string err;
  ASSERT_TRUE(client.connect("127.0.0.1", port_, &err)) << err;
  for (int i = 0; i < 20; ++i) {
    const HttpResult r = client.request("GET", "/degree/2");
    ASSERT_EQ(r.status, 200) << r.error;
    ASSERT_TRUE(client.connected());
  }
}

TEST_F(ServiceTest, MalformedHttpGetsA400) {
  // Raw garbage on the socket — the server must answer 400, not hang.
  // HttpClient always writes well-formed requests, so speak raw TCP here.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const char garbage[] = "GARBAGE\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof garbage - 1, 0), 0);
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(reply.find("HTTP/1.1 400"), std::string::npos) << reply;
  EXPECT_NE(reply.find("malformed"), std::string::npos) << reply;
}

TEST_F(ServiceTest, ConcurrentIngestAndQuery) {
  seed();
  std::atomic<bool> done{false};
  std::atomic<int> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([this, &done, &reads] {
      HttpClient client;
      std::string err;
      ASSERT_TRUE(client.connect("127.0.0.1", port_, &err)) << err;
      std::int64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const HttpResult r = client.request("GET", "/stats");
        ASSERT_EQ(r.status, 200) << r.error;
        Value doc;
        ASSERT_TRUE(snap::json::parse(r.body, &doc, nullptr));
        const std::int64_t e = doc.get("epoch").as_int64();
        ASSERT_GE(e, last_epoch);  // epochs are monotone per reader
        last_epoch = e;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  HttpClient writer;
  std::string err;
  ASSERT_TRUE(writer.connect("127.0.0.1", port_, &err)) << err;
  for (int i = 0; i < 50; ++i) {
    Value updates = Value::array();
    Value u = Value::object();
    u.set("op", "insert");
    u.set("u", i % kN);
    u.set("v", (i + 3) % kN);
    updates.push_back(u);
    Value doc = Value::object();
    doc.set("updates", updates);
    const HttpResult r = writer.request("POST", "/ingest", doc.dump());
    ASSERT_EQ(r.status, 200) << r.error;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(service_->streaming().epoch(), 51u);
}

TEST_F(ServiceTest, ShutdownEndpointWakesTheWaiter) {
  std::atomic<bool> woke{false};
  std::thread waiter([this, &woke] {
    service_->wait_for_shutdown();
    woke.store(true, std::memory_order_release);
  });
  EXPECT_FALSE(service_->shutdown_requested());
  const HttpResult r = http_request("127.0.0.1", port_, "POST", "/shutdown");
  ASSERT_EQ(r.status, 200) << r.error;
  EXPECT_EQ(r.body, R"({"ok":true})");
  waiter.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
  EXPECT_TRUE(service_->shutdown_requested());
}

}  // namespace
