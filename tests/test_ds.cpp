#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "snap/ds/dendrogram.hpp"
#include "snap/ds/lazy_max_heap.hpp"
#include "snap/ds/multilevel_bucket.hpp"
#include "snap/ds/sorted_dyn_array.hpp"
#include "snap/ds/union_find.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

// ---------------------------------------------------------------- UnionFind

TEST(UnionFind, BasicUnions) {
  UnionFind uf(10);
  EXPECT_EQ(uf.num_sets(), 10u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 9u);
  EXPECT_EQ(uf.set_size(1), 2);
}

TEST(UnionFind, ChainCollapsesToOneSet) {
  UnionFind uf(100);
  for (int i = 0; i + 1 < 100; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.set_size(50), 100);
  EXPECT_EQ(uf.find(0), uf.find(99));
}

TEST(UnionFind, FindNoCompressAgrees) {
  UnionFind uf(50);
  SplitMix64 rng(5);
  for (int i = 0; i < 40; ++i)
    uf.unite(static_cast<std::int64_t>(rng.next_bounded(50)),
             static_cast<std::int64_t>(rng.next_bounded(50)));
  for (std::int64_t v = 0; v < 50; ++v)
    EXPECT_EQ(uf.find_no_compress(v), uf.find(v));
}

// ---------------------------------------------------------- SortedDynArray

TEST(SortedDynArray, InsertFindErase) {
  SortedDynArray<std::int64_t, double> a;
  EXPECT_TRUE(a.insert_or_assign(5, 1.5));
  EXPECT_TRUE(a.insert_or_assign(2, 2.5));
  EXPECT_FALSE(a.insert_or_assign(5, 3.5));  // overwrite
  ASSERT_NE(a.find(5), nullptr);
  EXPECT_DOUBLE_EQ(a.find(5)->value, 3.5);
  EXPECT_EQ(a.find(7), nullptr);
  EXPECT_TRUE(a.erase(2));
  EXPECT_FALSE(a.erase(2));
  EXPECT_EQ(a.size(), 1u);
}

TEST(SortedDynArray, StaysSortedUnderRandomOps) {
  SortedDynArray<std::int64_t, double> a;
  std::map<std::int64_t, double> ref;
  SplitMix64 rng(17);
  for (int op = 0; op < 3000; ++op) {
    const auto k = static_cast<std::int64_t>(rng.next_bounded(100));
    const double v = rng.next_double();
    if (rng.next_bounded(4) == 0) {
      EXPECT_EQ(a.erase(k), ref.erase(k) > 0);
    } else {
      a.insert_or_assign(k, v);
      ref[k] = v;
    }
  }
  ASSERT_EQ(a.size(), ref.size());
  auto it = ref.begin();
  for (const auto& e : a) {
    EXPECT_EQ(e.key, it->first);
    EXPECT_DOUBLE_EQ(e.value, it->second);
    ++it;
  }
}

TEST(SortedDynArray, AddAccumulates) {
  SortedDynArray<std::int64_t, double> a;
  a.add(3, 1.0);
  a.add(3, 2.0);
  a.add(1, 0.5);
  EXPECT_DOUBLE_EQ(a.find(3)->value, 3.0);
  EXPECT_DOUBLE_EQ(a.find(1)->value, 0.5);
}

TEST(SortedDynArray, MaxValueEntry) {
  SortedDynArray<std::int64_t, double> a;
  EXPECT_EQ(a.max_value_entry(), nullptr);
  a.insert_or_assign(1, 0.3);
  a.insert_or_assign(2, 0.9);
  a.insert_or_assign(3, 0.1);
  ASSERT_NE(a.max_value_entry(), nullptr);
  EXPECT_EQ(a.max_value_entry()->key, 2);
}

// -------------------------------------------------------- MultiLevelBucket

TEST(MultiLevelBucket, MaxTracksInsertsAndErases) {
  MultiLevelBucket<std::int64_t> b(-1.0, 1.0);
  EXPECT_TRUE(b.empty());
  b.insert(1, 0.5);
  b.insert(2, -0.3);
  b.insert(3, 0.7);
  EXPECT_EQ(b.max().key, 3);
  EXPECT_TRUE(b.erase(3, 0.7));
  EXPECT_EQ(b.max().key, 1);
  EXPECT_FALSE(b.erase(3, 0.7));
  EXPECT_TRUE(b.erase(1, 0.5));
  EXPECT_EQ(b.max().key, 2);
}

class BucketRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BucketRandom, MaxMatchesReferenceUnderChurn) {
  MultiLevelBucket<std::int64_t> b(-2.0, 2.0);
  std::map<std::int64_t, double> ref;
  SplitMix64 rng(GetParam());
  for (int op = 0; op < 4000; ++op) {
    const auto k = static_cast<std::int64_t>(rng.next_bounded(200));
    if (ref.count(k) && rng.next_bounded(2) == 0) {
      EXPECT_TRUE(b.erase(k, ref[k]));
      ref.erase(k);
    } else if (!ref.count(k)) {
      const double v = 4.0 * rng.next_double() - 2.0;
      b.insert(k, v);
      ref[k] = v;
    }
    ASSERT_EQ(b.size(), ref.size());
    if (!ref.empty()) {
      double best = -10;
      for (const auto& [kk, vv] : ref) best = std::max(best, vv);
      EXPECT_DOUBLE_EQ(b.max().value, best);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BucketRandom, ::testing::Values(1, 7, 13));

TEST(MultiLevelBucket, ClampsOutOfRangeValuesButKeepsMaxCorrect) {
  MultiLevelBucket<std::int64_t> b(-1.0, 1.0);
  b.insert(1, 5.0);   // clamps into the top bucket
  b.insert(2, 0.5);
  EXPECT_EQ(b.max().key, 1);
  EXPECT_TRUE(b.erase(1, 5.0));
  EXPECT_EQ(b.max().key, 2);
}

// ------------------------------------------------------------- LazyMaxHeap

TEST(LazyMaxHeap, SkipsStaleEntries) {
  LazyMaxHeap<std::int64_t> h;
  std::vector<std::uint64_t> stamp(4, 0);
  h.push(0, 1.0, stamp[0]);
  h.push(1, 5.0, stamp[1]);
  h.push(2, 3.0, stamp[2]);
  stamp[1] = 1;  // invalidate the max
  h.push(1, 2.0, stamp[1]);
  LazyMaxHeap<std::int64_t>::Entry e{};
  ASSERT_TRUE(h.pop_valid([&](std::int64_t i) { return stamp[i]; }, e));
  EXPECT_EQ(e.id, 2);
  EXPECT_DOUBLE_EQ(e.value, 3.0);
  ASSERT_TRUE(h.pop_valid([&](std::int64_t i) { return stamp[i]; }, e));
  EXPECT_EQ(e.id, 1);
  EXPECT_DOUBLE_EQ(e.value, 2.0);
}

TEST(LazyMaxHeap, ExhaustsWhenAllStale) {
  LazyMaxHeap<std::int64_t> h;
  h.push(0, 1.0, 0);
  LazyMaxHeap<std::int64_t>::Entry e{};
  EXPECT_FALSE(h.pop_valid([](std::int64_t) { return 99u; }, e));
  EXPECT_TRUE(h.empty());
}

// -------------------------------------------------------------- Dendrogram

TEST(MergeDendrogram, CutAtBestReplaysMerges) {
  MergeDendrogram d(5);
  d.set_baseline(-0.5);
  d.record_merge(0, 1, 0.1);
  d.record_merge(2, 3, 0.3);  // best
  d.record_merge(0, 2, 0.2);
  EXPECT_EQ(d.best_step(), 1);
  const auto mem = d.cut_at_best();
  ASSERT_EQ(mem.size(), 5u);
  EXPECT_EQ(mem[0], mem[1]);
  EXPECT_EQ(mem[2], mem[3]);
  EXPECT_NE(mem[0], mem[2]);
  EXPECT_NE(mem[4], mem[0]);
  EXPECT_NE(mem[4], mem[2]);
}

TEST(MergeDendrogram, BaselineWinsWhenNoMergeImproves) {
  MergeDendrogram d(3);
  d.set_baseline(0.4);
  d.record_merge(0, 1, 0.1);
  d.record_merge(0, 2, 0.2);
  EXPECT_EQ(d.best_step(), -1);
  const auto mem = d.cut_at_best();  // singletons
  EXPECT_NE(mem[0], mem[1]);
  EXPECT_NE(mem[1], mem[2]);
}

TEST(MergeDendrogram, ModularityTrace) {
  MergeDendrogram d(3);
  d.record_merge(0, 1, 0.1);
  d.record_merge(0, 2, 0.0);
  EXPECT_EQ(d.modularity_trace(), (std::vector<double>{0.1, 0.0}));
}

TEST(DivisiveTrace, KeepsBestSnapshot) {
  DivisiveTrace t;
  t.offer_best(0.1, {0, 0, 0});
  t.offer_best(0.5, {0, 1, 1});
  t.offer_best(0.3, {0, 1, 2});
  EXPECT_DOUBLE_EQ(t.best_modularity(), 0.5);
  EXPECT_EQ(t.best_membership(), (std::vector<std::int64_t>{0, 1, 1}));
  t.record(1, 2, 2, 0.5);
  EXPECT_EQ(t.steps().size(), 1u);
}

}  // namespace
}  // namespace snap
