#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "snap/gen/generators.hpp"
#include "snap/partition/coarsen.hpp"
#include "snap/partition/eval.hpp"
#include "snap/partition/multilevel.hpp"
#include "snap/partition/refine_fm.hpp"
#include "snap/partition/spectral.hpp"

namespace snap {
namespace {

TEST(Eval, EdgeCutManual) {
  const auto g = gen::barbell_graph(4);
  std::vector<std::int32_t> part(8, 0);
  for (vid_t v = 4; v < 8; ++v) part[v] = 1;
  EXPECT_EQ(edge_cut(g, part), 1);  // only the bridge crosses
  std::vector<std::int32_t> bad(8, 0);
  bad[0] = 1;  // cuts vertex 0's three clique edges
  EXPECT_EQ(edge_cut(g, bad), 3);
}

TEST(Eval, ImbalancePerfectAndSkewed) {
  const auto g = gen::cycle_graph(8);
  std::vector<std::int32_t> even{0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(imbalance(g, even, 2), 1.0);
  std::vector<std::int32_t> skew{0, 0, 0, 0, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(imbalance(g, skew, 2), 1.5);
}

TEST(Eval, ConductanceOfBalancedCut) {
  const auto g = gen::barbell_graph(4);
  std::vector<std::int32_t> part(8, 0);
  for (vid_t v = 4; v < 8; ++v) part[v] = 1;
  // cut = 1; vol(side) = 2*6 intra + 1 bridge endpoint = 13.
  EXPECT_NEAR(conductance(g, part, 0), 1.0 / 13.0, 1e-9);
}

TEST(Coarsen, HalvesVerticesAndPreservesTotalVertexWeight) {
  const auto g = gen::grid_road(30, 30);
  std::vector<weight_t> w(static_cast<std::size_t>(g.num_vertices()), 1.0);
  const auto lvl = coarsen_heavy_edge(g, w, 1);
  EXPECT_LT(lvl.graph.num_vertices(), g.num_vertices() * 3 / 4);
  EXPECT_GE(lvl.graph.num_vertices(), g.num_vertices() / 2);
  weight_t total = 0;
  for (weight_t x : lvl.vertex_weight) total += x;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(g.num_vertices()));
  // Every fine vertex maps to a valid coarse vertex.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_GE(lvl.fine_to_coarse[static_cast<std::size_t>(v)], 0);
    ASSERT_LT(lvl.fine_to_coarse[static_cast<std::size_t>(v)],
              lvl.graph.num_vertices());
  }
}

TEST(Coarsen, CutIsPreservedUnderProjection) {
  // The weight of a coarse cut equals the fine cut of its projection.
  const auto g = gen::grid_road(20, 20);
  std::vector<weight_t> w(static_cast<std::size_t>(g.num_vertices()), 1.0);
  const auto lvl = coarsen_heavy_edge(g, w, 5);
  std::vector<std::int32_t> cpart(
      static_cast<std::size_t>(lvl.graph.num_vertices()));
  for (vid_t v = 0; v < lvl.graph.num_vertices(); ++v)
    cpart[static_cast<std::size_t>(v)] = v % 2;
  std::vector<std::int32_t> fpart(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    fpart[static_cast<std::size_t>(v)] = cpart[static_cast<std::size_t>(
        lvl.fine_to_coarse[static_cast<std::size_t>(v)])];
  EXPECT_EQ(edge_cut(lvl.graph, cpart), edge_cut(g, fpart));
}

TEST(FmRefine, ImprovesARandomBisection) {
  const auto g = gen::grid_road(20, 20, 0.0, 0.0, 1);
  std::vector<weight_t> w(static_cast<std::size_t>(g.num_vertices()), 1.0);
  std::vector<std::int8_t> side(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    side[static_cast<std::size_t>(v)] = static_cast<std::int8_t>(v % 2);
  std::vector<std::int32_t> before(side.begin(), side.end());
  const weight_t cut_before = edge_cut(g, before);
  fm_refine_bisection(g, w, side, 1.05, 8);
  std::vector<std::int32_t> after(side.begin(), side.end());
  EXPECT_LT(edge_cut(g, after), cut_before / 2);
  EXPECT_LE(imbalance(g, after, 2), 1.06);
}

TEST(Multilevel, GridBisectionIsNearOptimal) {
  // 32x32 grid: the optimal balanced bisection cut is 32.
  const auto g = gen::grid_road(32, 32, 0.0, 0.0, 1);
  const auto r = multilevel_recursive_bisection(g, 2);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.edge_cut, 3 * 32);
  EXPECT_LE(r.imbalance, 1.06);
  // Both parts non-empty and labels within range.
  std::set<std::int32_t> used(r.part.begin(), r.part.end());
  EXPECT_EQ(used.size(), 2u);
}

class KWayMultilevel : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(KWayMultilevel, RecursiveAndKwayProduceBalancedPartitions) {
  const std::int32_t k = GetParam();
  const auto g = gen::grid_road(40, 40);
  for (const auto& r :
       {multilevel_recursive_bisection(g, k), multilevel_kway(g, k)}) {
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.k, k);
    EXPECT_LE(r.imbalance, 1.35) << "k=" << k;
    std::set<std::int32_t> used(r.part.begin(), r.part.end());
    EXPECT_EQ(used.size(), static_cast<std::size_t>(k));
    for (std::int32_t p : r.part) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KWayMultilevel, ::testing::Values(2, 4, 8, 32));

TEST(Multilevel, KwayStaysBalancedOnSkewedGraphs) {
  // Regression test: the k-way initial partition must balance coarse vertex
  // *weights*; balancing coarse-vertex counts left RMAT partitions with a
  // 6x overload on one part.
  gen::RmatParams p;
  p.scale = 13;
  p.edge_factor = 4;
  const auto g = gen::rmat(p);
  const auto r = multilevel_kway(g, 8);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.imbalance, 1.3);
}

TEST(Multilevel, RoadVsRandomCutGap) {
  // The Table 1 phenomenon, in miniature: a multilevel partitioner cuts a
  // road network cheaply but must cut a sizable fraction of a random
  // graph's edges.
  const auto road = gen::grid_road(64, 64);
  const auto rnd = gen::erdos_renyi(4096, 20480, false, 3);
  const auto r_road = multilevel_kway(road, 8);
  const auto r_rnd = multilevel_kway(rnd, 8);
  EXPECT_GT(static_cast<double>(r_rnd.edge_cut),
            10.0 * static_cast<double>(r_road.edge_cut));
}

TEST(Spectral, FiedlerVectorSignSplitsAPath) {
  const auto g = gen::path_graph(40);
  std::vector<double> f;
  ASSERT_TRUE(fiedler_vector(g, SpectralMethod::kLanczos, {}, f));
  // The Fiedler vector of a path is monotone: signs split it in the middle.
  int flips = 0;
  for (std::size_t i = 1; i < f.size(); ++i)
    if ((f[i] > 0) != (f[i - 1] > 0)) ++flips;
  EXPECT_EQ(flips, 1);
}

TEST(Spectral, BarbellBisectionCutsBridge) {
  const auto g = gen::barbell_graph(10);
  const auto r = spectral_partition(g, 2, SpectralMethod::kLanczos);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.edge_cut, 1);
  EXPECT_DOUBLE_EQ(r.imbalance, 1.0);
}

TEST(Spectral, GridRecursive8Way) {
  const auto g = gen::grid_road(24, 24, 0.0, 0.0, 1);
  const auto r = spectral_partition(g, 8, SpectralMethod::kLanczos);
  ASSERT_TRUE(r.success) << r.note;
  EXPECT_LE(r.imbalance, 1.25);
  EXPECT_LT(r.edge_cut, g.num_edges() / 4);
}

TEST(Spectral, RqiConvergesOnStructuredGraph) {
  const auto g = gen::barbell_graph(12);
  SpectralParams p;
  const auto r = spectral_partition(g, 2, SpectralMethod::kRQI, p);
  if (r.success) {
    EXPECT_LE(r.edge_cut, 4);
  } else {
    // RQI is allowed to fail (Table 1 shows Chaco-RQI failing); it must
    // report it rather than return garbage.
    EXPECT_FALSE(r.note.empty());
  }
}

TEST(Spectral, FailureIsReportedNotSilent) {
  // A tiny iteration budget must produce an explicit failure.
  const auto g = gen::erdos_renyi(500, 2500, false, 1);
  SpectralParams p;
  p.lanczos_max_iters = 2;
  p.tol = 1e-12;
  p.loose_tol = 0;  // demand full convergence
  const auto r = spectral_partition(g, 2, SpectralMethod::kLanczos, p);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.note.empty());
}

TEST(Partition, KEqualsOneIsWholeGraph) {
  const auto g = gen::cycle_graph(10);
  const auto r = multilevel_kway(g, 1);
  EXPECT_EQ(r.edge_cut, 0);
  for (std::int32_t p : r.part) EXPECT_EQ(p, 0);
}

}  // namespace
}  // namespace snap
