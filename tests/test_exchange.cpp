// Exchange layer unit suite: deterministic (sender shard, send sequence)
// delivery, combiner semantics (first-touch order, merged-message
// accounting), ledger bookkeeping across rounds, thread-count invariance of
// a staged team pattern, and the validator mutation tests — corrupt a
// channel or its ledger through debug::Access and the level-2 validator
// must name the violation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "snap/debug/validate.hpp"
#include "snap/partition/exchange.hpp"
#include "snap/util/parallel.hpp"

namespace snap {
namespace {

bool mentions(const debug::ValidationReport& r, const std::string& needle) {
  for (const auto& e : r.errors)
    if (e.find(needle) != std::string::npos) return true;
  return false;
}

TEST(Exchange, DeliversInSenderThenSequenceOrder) {
  const int k = 3;
  Exchange<int> ex(k);
  // Stage out of sender order on purpose; delivery must still drain
  // channels sender-ascending and replay each channel in send order.
  ex.send(2, 0, 20);
  ex.send(0, 0, 1);
  ex.send(0, 0, 2);
  ex.send(1, 0, 10);
  ex.send(2, 0, 21);
  ex.send(1, 2, 99);  // different target: must not appear at dst 0

  std::vector<int> got;
  ex.deliver(0, [&](const int m) { got.push_back(m); });
  EXPECT_EQ(got, (std::vector<int>{1, 2, 10, 20, 21}));

  got.clear();
  ex.deliver(2, [&](const int m) { got.push_back(m); });
  EXPECT_EQ(got, (std::vector<int>{99}));
  EXPECT_TRUE(ex.all_empty());
  EXPECT_EQ(ex.ledger().total_staged(), 6u);
  EXPECT_EQ(ex.ledger().total_delivered(), 6u);
}

TEST(Exchange, MultipleRoundsAccumulateLedger) {
  Exchange<vid_t> ex(2);
  for (int round = 0; round < 3; ++round) {
    ex.send(0, 1, round);
    ex.send(1, 0, round);
    int n0 = 0, n1 = 0;
    ex.deliver(0, [&](vid_t) { ++n0; });
    ex.deliver(1, [&](vid_t) { ++n1; });
    EXPECT_EQ(n0, 1);
    EXPECT_EQ(n1, 1);
  }
  EXPECT_EQ(ex.ledger().total_staged(), 6u);
  EXPECT_EQ(ex.ledger().total_delivered(), 6u);
  EXPECT_TRUE(debug::validate(ex).ok());
}

TEST(Exchange, TeamStagingIsThreadCountInvariant) {
  // The owner-computes pattern: shard s stages (s*100 + i) for each target,
  // run on a real team.  The delivered sequence at every receiver must be
  // identical whatever the thread count, because channel order depends only
  // on (sender shard, send sequence).
  const int k = 4;
  std::vector<std::vector<int>> expected;
  for (const int nt : {1, 2, 4, 8}) {
    parallel::ThreadScope scope(nt);
    Exchange<int> ex(k);
    parallel::run_team(k, [&](int s) {
      for (int t = 0; t < k; ++t)
        if (t != s)
          for (int i = 0; i < 5; ++i) ex.send(s, t, s * 100 + i);
    });
    std::vector<std::vector<int>> got(static_cast<std::size_t>(k));
    parallel::run_team(k, [&](int t) {
      ex.deliver(t, [&](const int m) {
        got[static_cast<std::size_t>(t)].push_back(m);
      });
    });
    EXPECT_TRUE(debug::validate(ex).ok());
    if (expected.empty())
      expected = std::move(got);
    else
      EXPECT_EQ(got, expected) << "thread count " << nt;
  }
}

TEST(Exchange, CombinerMergesPerDestinationInFirstTouchOrder) {
  const int k = 2;
  Exchange<VertexMessage<std::uint64_t>> ex(k);
  VertexCombiner<std::uint64_t> comb;
  comb.init(8);
  comb.begin_round();
  // Shard 0 pushes along 5 "cut edges" touching 2 distinct remote vertices;
  // the combiner must stage exactly 2 messages, first-touch order (6 then 5),
  // and credit the 3 merged-away pushes.
  comb.add(6, 10);
  comb.add(5, 1);
  comb.add(6, 20);
  comb.add(5, 2);
  comb.add(6, 30);
  EXPECT_EQ(comb.merged(), 3u);
  auto owner = [](vid_t v) { return v < 4 ? 0 : 1; };
  comb.flush(ex, 0, owner);

  std::vector<std::pair<vid_t, std::uint64_t>> got;
  ex.deliver(1, [&](const VertexMessage<std::uint64_t>& m) {
    got.emplace_back(m.dest, m.value);
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<vid_t, std::uint64_t>{6, 60}));
  EXPECT_EQ(got[1], (std::pair<vid_t, std::uint64_t>{5, 3}));
  EXPECT_EQ(ex.ledger().total_staged(), 2u);
  EXPECT_EQ(ex.ledger().total_combined(), 3u);
  EXPECT_TRUE(debug::validate(ex).ok());
}

TEST(Exchange, CombinerRoundsAreIndependent) {
  VertexCombiner<std::uint64_t> comb;
  comb.init(4);
  comb.begin_round();
  comb.add(1, 7);
  comb.add(1, 7);
  EXPECT_EQ(comb.merged(), 1u);
  comb.begin_round();  // previous accumulations must be forgotten
  comb.add(1, 5);
  EXPECT_EQ(comb.merged(), 0u);
  Exchange<VertexMessage<std::uint64_t>> ex(2);
  comb.flush(ex, 0, [](vid_t) { return 1; });
  std::uint64_t seen = 0;
  ex.deliver(1, [&](const VertexMessage<std::uint64_t>& m) { seen = m.value; });
  EXPECT_EQ(seen, 5u);
}

TEST(ExchangeValidator, CleanExchangePasses) {
  Exchange<int> ex(3);
  ex.send(1, 2, 42);
  ex.deliver(2, [](int) {});
  const auto r = debug::validate(ex);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_GT(r.checks_run, 0u);
}

TEST(ExchangeValidator, CatchesUndeliveredChannel) {
  // A message staged but never delivered: the round-end emptiness and the
  // exactly-once accounting both fire.
  Exchange<int> ex(2);
  ex.send(0, 1, 7);
  const auto r = debug::validate(ex);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "not empty at round end")) << r.to_string();
}

TEST(ExchangeValidator, MutationCorruptChannelBuffer) {
  // Inject a message directly into a channel behind the ledger's back — the
  // buffered count no longer matches staged - delivered.
  Exchange<int> ex(2);
  ex.send(0, 1, 1);
  ex.deliver(1, [](int) {});
  ASSERT_TRUE(debug::validate(ex).ok());
  debug::Access::mutable_exchange_channel(ex, 0, 1).push_back(13);
  const auto r = debug::validate(ex);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "ledger accounts for")) << r.to_string();
}

TEST(ExchangeValidator, MutationForeignWriter) {
  // Rewrite a channel's writer witness to a different shard: owner-only
  // writes violated.
  Exchange<int> ex(3);
  ex.send(2, 0, 5);
  ex.deliver(0, [](int) {});
  ASSERT_TRUE(debug::validate(ex).ok());
  debug::Access::mutable_exchange_ledger(ex).writer[2 * 3 + 0] = 1;
  const auto r = debug::validate(ex);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "owner-only writes violated")) << r.to_string();
}

TEST(ExchangeValidator, MutationOverDelivered) {
  Exchange<int> ex(2);
  ex.send(0, 1, 3);
  ex.deliver(1, [](int) {});
  debug::Access::mutable_exchange_ledger(ex).delivered[0 * 2 + 1] += 1;
  const auto r = debug::validate(ex);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "were staged")) << r.to_string();
}

}  // namespace
}  // namespace snap
