// Thread-count-invariance checks on the centralized harness
// (snap/debug/determinism.hpp): each kernel runs at t = 1, 2, 4, 8 and the
// byte hash of its guaranteed-invariant outputs must match across all runs.
// Kernels whose floats legitimately differ across thread counts (betweenness,
// closeness, parallel modularity sums) are deliberately absent — see the
// header comment in determinism.hpp and docs/CORRECTNESS.md.

#include <gtest/gtest.h>

#include <vector>

#include "snap/centrality/betweenness.hpp"
#include "snap/community/label_prop.hpp"
#include "snap/community/louvain.hpp"
#include "snap/community/pma.hpp"
#include "snap/debug/determinism.hpp"
#include "snap/debug/validate.hpp"
#include "snap/gen/generators.hpp"
#include "snap/graph/compressed_csr.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/graph/dynamic_graph.hpp"
#include "snap/graph/reorder.hpp"
#include "snap/partition/partitioned_csr.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/kernels/kcore.hpp"
#include "snap/kernels/mst.hpp"
#include "snap/kernels/pagerank.hpp"
#include "snap/kernels/sssp.hpp"
#include "snap/stream/streaming_graph.hpp"
#include "snap/stream/update_batch.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

CSRGraph rmat_graph(int scale, int edge_factor, std::uint64_t seed) {
  gen::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return gen::rmat(p);
}

void hash_csr(debug::ByteHasher& h, const CSRGraph& g) {
  h.value(g.num_vertices());
  h.value(g.num_edges());
  h.sequence(debug::Access::offsets(g));
  h.sequence(debug::Access::adj(g));
  h.sequence(debug::Access::weights(g));
  h.sequence(debug::Access::arc_edge_ids(g));
}

/// Component labels renumbered in first-seen vertex order, so the hash sees
/// the partition itself rather than the label values.
std::vector<vid_t> canonical_labels(const std::vector<vid_t>& label) {
  std::vector<vid_t> remap(label.size(), kInvalidVid);
  std::vector<vid_t> out(label.size());
  vid_t next = 0;
  for (std::size_t v = 0; v < label.size(); ++v) {
    auto& slot = remap[static_cast<std::size_t>(label[v])];
    if (slot == kInvalidVid) slot = next++;
    out[v] = slot;
  }
  return out;
}

TEST(Determinism, ParallelCsrBuild) {
  // A big enough edge list that BuildPath::kAuto would also go parallel,
  // forced explicitly so the test exercises the parallel pipeline even if
  // the cutoff moves.
  const CSRGraph src = rmat_graph(17, 6, 99);
  const EdgeList& edges = src.edges();
  BuildOptions opts;
  opts.path = BuildPath::kParallel;
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const CSRGraph g =
        CSRGraph::from_edges(src.num_vertices(), edges, false, opts);
    hash_csr(h, g);
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, BfsHybridDistances) {
  const CSRGraph g = rmat_graph(14, 8, 3);
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const BFSResult r = bfs_hybrid(g, 0);
    // dist is guaranteed invariant; the parent tree is not (any valid
    // shortest-path tree is accepted), so it stays out of the hash.
    h.sequence(r.dist);
    h.value(r.num_visited);
    h.value(r.num_levels);
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, ConnectedComponentsPartition) {
  const CSRGraph g = gen::erdos_renyi(5000, 6000, /*directed=*/false, 17);
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const Components c = connected_components(g);
    h.value(c.count);
    h.sequence(canonical_labels(c.label));
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, KCoreDecomposition) {
  const CSRGraph g = rmat_graph(13, 10, 23);
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const KCoreResult r = kcore_decomposition(g);
    h.sequence(r.core);
    h.value(r.degeneracy);
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, DeltaSteppingUnitWeights) {
  // Unit weights: every reachable distance is a small integer in double
  // form, so bitwise equality across thread counts is exactly the kernel's
  // determinism guarantee (no accumulation-order rounding in play).
  const CSRGraph g = gen::erdos_renyi(4000, 20000, /*directed=*/false, 31);
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const SSSPResult r = delta_stepping(g, 0);
    h.sequence(r.dist);
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, BoruvkaMstEdgeSet) {
  const CSRGraph g = gen::erdos_renyi(3000, 15000, /*directed=*/false, 41);
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const MSTResult r = boruvka_mst(g);
    h.sequence(r.tree_edges);
    h.value(r.num_trees);
    h.value(r.total_weight);  // serial fixed-order sum: bitwise stable
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, StreamingApplyAndSnapshot) {
  // Replay the same update stream from scratch per thread count; the final
  // DynamicGraph snapshot (a full byte-layout capture via to_csr) must be
  // identical — the PR 3 guarantee, now on the shared harness.
  const vid_t n = 500;
  std::vector<stream::UpdateBatch> batches(4);
  SplitMix64 rng(7);
  for (auto& b : batches) {
    for (int i = 0; i < 900; ++i) {
      const auto u = static_cast<vid_t>(rng.next_bounded(n));
      const auto v = static_cast<vid_t>(rng.next_bounded(n));
      if (rng.next_bounded(100) < 30)
        b.erase(u, v);
      else
        b.insert(u, v);
    }
  }
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    stream::StreamingGraph sg(n, /*directed=*/false);
    for (const auto& b : batches) {
      const stream::ApplyStats st = sg.apply(b);
      h.value(st.applied_inserts);
      h.value(st.applied_deletes);
    }
    hash_csr(h, sg.snapshot());
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, DynamicToCsrRoundTrip) {
  const CSRGraph src = gen::erdos_renyi(800, 4000, /*directed=*/false, 53);
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const DynamicGraph d = DynamicGraph::from_csr(src, /*promote_threshold=*/8);
    hash_csr(h, d.to_csr());
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, PmaMembership) {
  // pMA's merge choices come from serial incremental delta-Q bookkeeping, so
  // the dendrogram and the cut membership are invariant.  r.modularity is a
  // parallel float reduction and rounds differently per thread count — it is
  // intentionally NOT hashed.
  const CSRGraph g = gen::erdos_renyi(300, 1200, /*directed=*/false, 61);
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const CommunityResult r = pma(g);
    h.sequence(r.clustering.membership);
    h.value(r.clustering.num_clusters);
    h.value(r.iterations);
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, LouvainHierarchy) {
  // The full Louvain surface is hashable — unlike pMA, even the modularity
  // values: every float in the hierarchy (community volumes, per-level and
  // final modularity, dendrogram merge scores) comes from fixed-order serial
  // accumulation (modularity_ordered, ascending-vertex volume sums), so the
  // bitwise guarantee covers the scores, not just the partitions.
  const CSRGraph g =
      gen::planted_partition(3000, 12, /*deg_in=*/10.0, /*deg_out=*/2.0, 77);
  LouvainParams params;
  params.path = LouvainPath::kParallel;  // force it even below the cutoff
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const LouvainResult r = louvain(g, params);
    h.sequence(r.community.clustering.membership);
    h.value(r.community.clustering.num_clusters);
    h.value(r.community.modularity);
    h.value(r.community.iterations);
    h.value(r.refine_moves);
    h.value(r.community.dendrogram.baseline());
    for (const auto& mg : r.community.dendrogram.merges()) {
      h.value(mg.a);
      h.value(mg.b);
      h.value(mg.modularity);
    }
    for (const LouvainLevel& lvl : r.levels) {
      h.sequence(lvl.membership());
      h.sequence(lvl.community_volume());
      h.value(lvl.num_communities());
      h.value(lvl.modularity());
      h.value(lvl.sweeps());
      h.value(lvl.moves());
    }
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, LabelPropagationLabels) {
  const CSRGraph g = rmat_graph(13, 6, 83);
  LabelPropParams params;
  params.path = LabelPropPath::kParallel;
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const LabelPropResult r = label_propagation(g, params);
    h.sequence(canonical_labels(r.community.clustering.membership));
    h.value(r.community.clustering.num_clusters);
    h.value(r.community.modularity);  // modularity_ordered: bitwise stable
    h.value(r.sweeps);
    h.value(r.converged);
    h.value(r.community.iterations);
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

// --------------------------------------------------------- Brandes engine
// Betweenness floats are NOT thread-count invariant in general (partial-sum
// boundaries move with nt), so these entries run the engine on graphs where
// every score is integer-valued — σ = 1 on trees and masked paths, so all
// dependencies are exact integers and their double sums are order-free.
// That makes the hash test the *traversal* (and its touched-only scratch
// reuse), which is exactly the engine property worth pinning.

TEST(Determinism, BrandesCoarseOnTree) {
  const CSRGraph g = gen::barabasi_albert(600, /*m_per_vertex=*/1, 9);
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const BetweennessScores bc =
        betweenness_centrality(g, BCGranularity::kCoarse);
    h.sequence(bc.vertex);
    h.sequence(bc.edge);
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, BrandesFineOnTree) {
  const CSRGraph g = gen::barabasi_albert(600, /*m_per_vertex=*/1, 9);
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const BetweennessScores bc =
        betweenness_centrality(g, BCGranularity::kFine);
    h.sequence(bc.vertex);
    h.sequence(bc.edge);
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, BrandesMaskedOnFragmentedCycle) {
  // Masking a few cycle edges leaves disjoint path fragments: several
  // components per traversal batch, all scores integers.
  const CSRGraph g = gen::cycle_graph(400);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 1);
  alive[0] = alive[133] = alive[266] = 0;
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    h.sequence(edge_betweenness_masked(g, alive));
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, BrandesWeightedOnTree) {
  // A weighted path with distinct weights: the Dijkstra forward phase is
  // exercised (non-uniform settle order) while σ stays 1 everywhere.
  EdgeList edges;
  const vid_t n = 300;
  for (vid_t v = 0; v + 1 < n; ++v)
    edges.push_back({v, v + 1, static_cast<weight_t>(1 + (v * 7) % 5)});
  const CSRGraph g = CSRGraph::from_edges(n, edges, /*directed=*/false);
  ASSERT_TRUE(g.weighted());
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const BetweennessScores bc = weighted_betweenness_centrality(g);
    h.sequence(bc.vertex);
    h.sequence(bc.edge);
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

// ------------------------------------------------- memory-layout pre-passes

TEST(Determinism, ReorderPermutationsAndGraphs) {
  // All three locality orderings sort with total-order comparators and apply
  // the permutation in parallel; both the permutation and the rebuilt CSR
  // must be byte-identical at every thread count.
  const CSRGraph g = rmat_graph(13, 8, 19);
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    for (const ReorderedGraph& r :
         {relabel_by_degree(g), relabel_by_bfs(g, 0),
          relabel_by_hub_cluster(g)}) {
      h.sequence(r.new_to_old);
      hash_csr(h, r.graph);
    }
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, CompressedCsrEncodeBytes) {
  // Two-pass parallel encode into precomputed disjoint slices: the whole
  // compressed buffer (offsets and bytes) is a pure function of the graph.
  const CSRGraph g = rmat_graph(13, 8, 29);
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const CompressedCSR c = CompressedCSR::from_graph(g);
    h.sequence(c.byte_offsets());
    h.sequence(c.bytes());
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, PartitionedCsrBuildAndKernels) {
  // Pinned to the contiguous cut (use_partitioner = false): the multilevel
  // partitioner's cross-thread invariance is not yet a stated guarantee, the
  // sharded layout and owner-computes kernels' is.  Shard count is pinned
  // too — the layout is k-dependent by design.
  const CSRGraph g = rmat_graph(12, 8, 37);
  PartitionedCSROptions opts;
  opts.num_shards = 4;
  opts.use_partitioner = false;
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const PartitionedCSR p = PartitionedCSR::build(g, opts);
    h.value(p.boundary_arcs());
    h.sequence(p.new_to_old());
    for (int s = 0; s < p.num_shards(); ++s) {
      h.sequence(p.shard(s).offsets);
      h.sequence(p.shard(s).adj);
    }
    h.sequence(p.bfs_distances(0));
    const Components c = p.components();
    h.value(c.count);
    h.sequence(canonical_labels(c.label));
    h.sequence(p.degrees());
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

// --------------------------------------------------------------- pagerank

TEST(Determinism, PageRankMass) {
  // Fixed-point mass: every reduction is an exact integer sum, so the whole
  // result surface — mass, ranks, iteration count, residual — is invariant,
  // not just the partition-like outputs.
  const CSRGraph g = rmat_graph(14, 8, 43);
  PageRankParams params;
  params.path = PageRankPath::kParallel;
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const PageRankResult r = pagerank(g, params);
    h.sequence(r.mass);
    h.sequence(r.rank);
    h.value(r.iterations);
    h.value(r.residual);
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, PartitionedPageRankMassAndTraffic) {
  // Shard count pinned (the exchange traffic is k-dependent by design);
  // thread count sweeps.  The message counters are part of the hash — the
  // combiner's merge pattern is a pure function of (graph, cut), not of the
  // schedule.
  const CSRGraph g = rmat_graph(12, 8, 37);
  PartitionedCSROptions opts;
  opts.num_shards = 4;
  opts.use_partitioner = false;
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const PartitionedCSR p = PartitionedCSR::build(g, opts);
    const PartitionedPageRank pr = p.pagerank();
    h.sequence(pr.result.mass);
    h.value(pr.result.iterations);
    h.value(pr.result.residual);
    h.value(pr.boundary_messages);
    h.value(pr.combined_messages);
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

TEST(Determinism, LouvainShardedHierarchy) {
  // The sharded move phase with a pinned shard count must be thread-count
  // invariant (shards multiplex onto whatever team runs); hash the level-0
  // membership and the full hierarchy surface like the flat entry.
  const CSRGraph g =
      gen::planted_partition(3000, 12, /*deg_in=*/10.0, /*deg_out=*/2.0, 77);
  LouvainParams params;
  params.path = LouvainPath::kSharded;
  params.num_shards = 4;
  const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
    const LouvainResult r = louvain(g, params);
    ASSERT_FALSE(r.levels.empty());
    h.sequence(r.levels[0].membership());
    h.sequence(r.community.clustering.membership);
    h.value(r.community.modularity);
    h.value(r.community.iterations);
    h.value(r.refine_moves);
    for (const LouvainLevel& lvl : r.levels) {
      h.sequence(lvl.membership());
      h.sequence(lvl.community_volume());
      h.value(lvl.moves());
    }
  });
  ASSERT_TRUE(report.deterministic) << report.to_string();
}

}  // namespace
}  // namespace snap
