#include <gtest/gtest.h>

#include <algorithm>

#include "snap/ds/union_find.hpp"
#include "snap/gen/generators.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

TEST(Components, SingleComponent) {
  const auto g = gen::cycle_graph(100);
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 1);
  for (vid_t v = 0; v < 100; ++v) EXPECT_EQ(c.label[v], 0);
}

TEST(Components, IsolatedVertices) {
  const auto g = CSRGraph::from_edges(5, {{0, 1, 1.0}}, false);
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 4);
  EXPECT_EQ(c.label[0], c.label[1]);
}

TEST(Components, TwoCliques) {
  EdgeList edges;
  for (vid_t u = 0; u < 5; ++u)
    for (vid_t v = u + 1; v < 5; ++v) {
      edges.push_back({u, v, 1.0});
      edges.push_back({u + 5, v + 5, 1.0});
    }
  const auto g = CSRGraph::from_edges(10, edges, false);
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 2);
  const auto sizes = c.sizes();
  EXPECT_EQ(sizes[0], 5);
  EXPECT_EQ(sizes[1], 5);
}

TEST(Components, LabelsAreDense) {
  const auto g = CSRGraph::from_edges(
      7, {{1, 2, 1.0}, {4, 5, 1.0}}, false);
  const auto c = connected_components(g);
  const vid_t mx = *std::max_element(c.label.begin(), c.label.end());
  EXPECT_EQ(mx + 1, c.count);
}

TEST(Components, GiantComponent) {
  EdgeList edges;
  for (vid_t v = 0; v + 1 < 50; ++v) edges.push_back({v, v + 1, 1.0});
  edges.push_back({60, 61, 1.0});
  const auto g = CSRGraph::from_edges(62, edges, false);
  const auto c = connected_components(g);
  const auto sizes = c.sizes();
  EXPECT_EQ(sizes[static_cast<std::size_t>(c.giant())], 50);
}

class ComponentsRandom
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(ComponentsRandom, MatchesUnionFindReference) {
  const auto [seed, threads] = GetParam();
  parallel::ThreadScope scope(threads);
  SplitMix64 rng(seed);
  const vid_t n = 2000;
  EdgeList edges;
  for (int i = 0; i < 2500; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(n));
    const auto v = static_cast<vid_t>(rng.next_bounded(n));
    if (u != v) edges.push_back({u, v, 1.0});
  }
  const auto g = CSRGraph::from_edges(n, edges, false);
  const auto c = connected_components(g);

  UnionFind uf(static_cast<std::size_t>(n));
  for (const Edge& e : g.edges()) uf.unite(e.u, e.v);
  EXPECT_EQ(static_cast<std::size_t>(c.count), uf.num_sets());
  for (const Edge& e : g.edges()) EXPECT_EQ(c.label[e.u], c.label[e.v]);
  // Different components must get different labels.
  for (vid_t v = 1; v < n; ++v) {
    if (uf.find(v) != uf.find(0)) {
      EXPECT_NE(c.label[v], c.label[0]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, ComponentsRandom,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(1, 4)));

TEST(ComponentsMasked, SplitsWhenBridgeDeleted) {
  const auto g = gen::barbell_graph(4);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 1);
  EXPECT_EQ(connected_components_masked(g, alive).count, 1);
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    if ((ed.u == 3 && ed.v == 4)) alive[static_cast<std::size_t>(e)] = 0;
  }
  const auto c = connected_components_masked(g, alive);
  EXPECT_EQ(c.count, 2);
  EXPECT_NE(c.label[0], c.label[7]);
}

TEST(ComponentsMasked, AllDeadIsAllSingletons) {
  const auto g = gen::cycle_graph(10);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 0);
  EXPECT_EQ(connected_components_masked(g, alive).count, 10);
}

TEST(Components, DirectedTreatedAsWeak) {
  const auto g = CSRGraph::from_edges(3, {{0, 1, 1.0}, {2, 1, 1.0}},
                                      /*directed=*/true);
  EXPECT_EQ(connected_components(g).count, 1);
}

TEST(ComponentsBfs, LabelsIdenticalToShiloachVishkin) {
  // The BFS-sweep engine promises *exactly* the same labels as the SV
  // engine (both densify by first appearance in vertex order), on every
  // undirected shape: small-world, disconnected, sparse, degenerate.
  std::vector<CSRGraph> shapes;
  {
    gen::RmatParams p;
    p.scale = 11;
    p.edge_factor = 8;
    p.seed = 9;
    shapes.push_back(gen::rmat(p));
  }
  shapes.push_back(gen::planted_partition(900, 9, 8.0, 0.0, 11));  // many CCs
  shapes.push_back(gen::grid_road(30, 40, 0.05, 0.05, 12));
  shapes.push_back(gen::star_graph(500));
  shapes.push_back(gen::path_graph(64));
  shapes.push_back(CSRGraph::from_edges(5, {}, /*directed=*/false));  // edgeless
  shapes.push_back(CSRGraph::from_edges(0, {}, /*directed=*/false));  // empty
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const auto& g = shapes[i];
    const Components sv = connected_components(g);
    const Components bfs = connected_components_bfs(g);
    ASSERT_EQ(bfs.count, sv.count) << "shape " << i;
    ASSERT_EQ(bfs.label, sv.label) << "shape " << i;
  }
}

TEST(Components, LargeRmat) {
  gen::RmatParams p;
  p.scale = 13;
  p.edge_factor = 8;
  const auto g = gen::rmat(p);
  const auto c = connected_components(g);
  // RMAT graphs have one giant component plus isolated leftovers.
  const auto sizes = c.sizes();
  const vid_t giant = *std::max_element(sizes.begin(), sizes.end());
  EXPECT_GT(giant, g.num_vertices() / 2);
}

}  // namespace
}  // namespace snap
