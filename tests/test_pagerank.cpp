// PageRank differential suite.  The engines compute in 64-bit fixed-point
// mass (total 2^60) where every reduction is an exact integer sum, so ALL
// paths — serial oracle, ordered-reduction parallel, compressed-CSR, and
// owner-computes partitioned with boundary sum-combining — must agree
// BITWISE on the mass vector at every thread count and shard count.  The
// suite sweeps the generator zoo x ThreadScope {1,2,4,8} x shards
// {1,2,4,7}, plus sanity checks against closed-form stationary
// distributions (cycle, complete, star) and the exchange-traffic counters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "snap/gen/generators.hpp"
#include "snap/graph/compressed_csr.hpp"
#include "snap/kernels/pagerank.hpp"
#include "snap/partition/partitioned_csr.hpp"
#include "snap/util/parallel.hpp"

namespace snap {
namespace {

CSRGraph rmat_graph(int scale, int epf, std::uint64_t seed) {
  gen::RmatParams p;
  p.scale = scale;
  p.edge_factor = epf;
  p.seed = seed;
  p.directed = false;
  return gen::rmat(p);
}

std::vector<std::pair<std::string, CSRGraph>> instances() {
  std::vector<std::pair<std::string, CSRGraph>> out;
  out.emplace_back("er", gen::erdos_renyi(240, 720, false, 5));
  out.emplace_back("rmat", rmat_graph(7, 5, 7));
  out.emplace_back("ws", gen::watts_strogatz(300, 6, 0.1, 13));
  out.emplace_back("planted", gen::planted_partition(400, 8, 10.0, 1.5, 11));
  out.emplace_back("star", gen::star_graph(64));
  out.emplace_back("path", gen::path_graph(50));
  return out;
}

void expect_identical(const PageRankResult& a, const PageRankResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.mass, b.mass) << what;
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.residual, b.residual) << what;
  EXPECT_EQ(a.rank, b.rank) << what;
}

TEST(PageRank, MassConservesAndRanksSumToOne) {
  const CSRGraph g = rmat_graph(8, 6, 3);
  const PageRankResult r = pagerank(g);
  const std::uint64_t total =
      std::accumulate(r.mass.begin(), r.mass.end(), std::uint64_t{0});
  EXPECT_EQ(total, kPageRankTotalMass);
  const double sum = std::accumulate(r.rank.begin(), r.rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(r.iterations, 0);
}

TEST(PageRank, UniformOnVertexTransitiveGraphs) {
  // On a cycle and a complete graph the stationary distribution is uniform;
  // the fixed-point iteration preserves it exactly up to the +-1 ulp
  // remainder spread, so masses differ by at most 1.
  for (const CSRGraph& g : {gen::cycle_graph(9), gen::complete_graph(8)}) {
    const PageRankResult r = pagerank(g);
    const auto [lo, hi] = std::minmax_element(r.mass.begin(), r.mass.end());
    EXPECT_LE(*hi - *lo, 1u);
  }
}

TEST(PageRank, StarHubDominatesLeaves) {
  const CSRGraph g = gen::star_graph(32);
  const PageRankResult r = pagerank(g);
  for (std::size_t v = 1; v < r.rank.size(); ++v)
    EXPECT_GT(r.rank[0], r.rank[v]) << "leaf " << v;
}

TEST(PageRank, ToleranceStopsEarly) {
  const CSRGraph g = gen::complete_graph(16);
  PageRankParams p;
  p.max_iters = 100;
  p.tol = 1e-6;
  const PageRankResult r = pagerank(g, p);
  EXPECT_LT(r.iterations, 100);
  EXPECT_LE(r.residual, 1e-6);
}

TEST(PageRank, SerialAndParallelPathsAreBitwiseIdentical) {
  for (const auto& [name, g] : instances()) {
    PageRankParams ps;
    ps.path = PageRankPath::kSerial;
    const PageRankResult oracle = pagerank(g, ps);
    for (const int nt : {1, 2, 4, 8}) {
      parallel::ThreadScope scope(nt);
      PageRankParams pp;
      pp.path = PageRankPath::kParallel;
      expect_identical(pagerank(g, pp), oracle,
                       name + " threads=" + std::to_string(nt));
    }
  }
}

TEST(PageRank, CompressedMatchesFlatBitwise) {
  for (const auto& [name, g] : instances()) {
    const PageRankResult flat = pagerank(g);
    const CompressedCSR c = CompressedCSR::from_graph(g);
    for (const int nt : {1, 4}) {
      parallel::ThreadScope scope(nt);
      expect_identical(pagerank_compressed(c), flat,
                       name + " threads=" + std::to_string(nt));
    }
  }
}

class PageRankPartitioned : public ::testing::TestWithParam<int> {};

TEST_P(PageRankPartitioned, MatchesFlatBitwiseAtEveryShardCount) {
  parallel::ThreadScope scope(GetParam());
  for (const auto& [name, g] : instances()) {
    PageRankParams ps;
    ps.path = PageRankPath::kSerial;
    const PageRankResult oracle = pagerank(g, ps);
    for (const int k : {1, 2, 4, 7}) {
      PartitionedCSROptions opts;
      opts.num_shards = k;
      opts.use_partitioner = false;
      const PartitionedCSR part = PartitionedCSR::build(g, opts);
      const PartitionedPageRank pr = part.pagerank();
      expect_identical(pr.result, oracle,
                       name + " shards=" + std::to_string(k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, PageRankPartitioned,
                         ::testing::Values(1, 2, 4, 8));

TEST(PageRankPartitionedSuite, MultilevelCutAlsoMatchesFlat) {
  // The bitwise claim must hold for ANY vertex-disjoint cut, not just the
  // contiguous chunking the sweep above pins — exercise the real partitioner.
  const CSRGraph g = rmat_graph(9, 6, 21);
  const PageRankResult oracle = pagerank(g);
  PartitionedCSROptions opts;
  opts.num_shards = 4;
  opts.use_partitioner = true;
  const PartitionedCSR part = PartitionedCSR::build(g, opts);
  expect_identical(part.pagerank().result, oracle, "multilevel cut");
}

TEST(PageRankPartitionedSuite, CombinerReducesBoundaryTraffic) {
  // On a connected small-world cut, many cut edges share a boundary target:
  // the combiner must merge a nonzero number of per-edge pushes, and
  // staged messages per iteration can never exceed the naive per-edge count.
  const CSRGraph g = rmat_graph(9, 8, 5);
  PartitionedCSROptions opts;
  opts.num_shards = 4;
  opts.use_partitioner = false;
  const PartitionedCSR part = PartitionedCSR::build(g, opts);
  ASSERT_GT(part.boundary_arcs(), 0);
  PageRankParams p;
  p.max_iters = 5;
  p.tol = 0.0;
  const PartitionedPageRank pr = part.pagerank(p);
  EXPECT_GT(pr.boundary_messages, 0u);
  EXPECT_GT(pr.combined_messages, 0u);
  // naive pushes = messages actually staged + pushes merged away.
  const std::uint64_t naive = pr.boundary_messages + pr.combined_messages;
  EXPECT_LT(pr.boundary_messages, naive);
}

TEST(PageRankPartitionedSuite, SingleShardHasNoBoundaryTraffic) {
  const CSRGraph g = rmat_graph(7, 5, 9);
  PartitionedCSROptions opts;
  opts.num_shards = 1;
  opts.use_partitioner = false;
  const PartitionedCSR part = PartitionedCSR::build(g, opts);
  const PartitionedPageRank pr = part.pagerank();
  EXPECT_EQ(pr.boundary_messages, 0u);
  EXPECT_EQ(pr.combined_messages, 0u);
  expect_identical(pr.result, pagerank(g), "k=1");
}

}  // namespace
}  // namespace snap
