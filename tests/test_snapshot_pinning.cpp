// Snapshot-handle lifetime under concurrency: pin()/apply()/unpin hammered
// from {1,2,4,8} reader threads while the writer streams 1k batches.  This
// is the TSan test of the RCU-style epoch reclamation — a reader must never
// observe a freed or in-place-mutated snapshot, and superseded snapshots
// must be reclaimed once their last pin drops.  The CI tsan matrix job runs
// this binary with -fsanitize=thread (parallel.hpp swaps the kernel thread
// teams to std::thread there, which TSan models exactly).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "snap/graph/csr_graph.hpp"
#include "snap/stream/streaming_graph.hpp"
#include "snap/stream/update_batch.hpp"
#include "snap/util/rng.hpp"

namespace {

using snap::CSRGraph;
using snap::vid_t;
using snap::stream::SnapshotHandle;
using snap::stream::StreamingGraph;
using snap::stream::UpdateBatch;

// Structural spot-checks a reader runs against a pinned snapshot.  Each
// invariant holds for *any* consistent CSR image of an undirected graph; a
// torn or freed snapshot trips them (or TSan) immediately.
void check_snapshot(const SnapshotHandle& h) {
  const CSRGraph& g = h->graph();
  ASSERT_FALSE(g.directed());
  const vid_t n = g.num_vertices();
  // Undirected CSR stores two arcs per non-loop logical edge; self loops
  // store one.  num_arcs <= 2m always, and offsets must telescope to it.
  ASSERT_LE(g.num_arcs(), 2 * g.num_edges());
  snap::eid_t deg_sum = 0;
  for (vid_t v = 0; v < n; ++v) {
    deg_sum += g.degree(v);
    for (const vid_t u : g.neighbors(v)) {
      ASSERT_GE(u, 0);
      ASSERT_LT(u, n);
    }
  }
  ASSERT_EQ(deg_sum, g.num_arcs());
}

UpdateBatch make_batch(snap::SplitMix64* rng, vid_t n, int updates) {
  UpdateBatch b;
  for (int i = 0; i < updates; ++i) {
    const auto u = static_cast<vid_t>(
        rng->next_bounded(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<vid_t>(
        rng->next_bounded(static_cast<std::uint64_t>(n)));
    if (rng->next_bounded(4) == 0)
      b.erase(u, v, static_cast<std::uint64_t>(i));
    else
      b.insert(u, v, static_cast<std::uint64_t>(i));
  }
  return b;
}

TEST(SnapshotPinning, HandleSurvivesApplyAndIsReclaimedOnUnpin) {
  StreamingGraph sg(64, /*directed=*/false);
  UpdateBatch b;
  b.insert(0, 1);
  b.insert(1, 2);
  sg.apply(b);

  SnapshotHandle h1 = sg.pin();
  EXPECT_EQ(h1->epoch(), sg.epoch());
  EXPECT_EQ(h1->graph().num_edges(), 2);
  EXPECT_EQ(sg.live_snapshots(), 1);

  // Pinning again without an intervening apply reuses the same snapshot.
  SnapshotHandle h2 = sg.pin();
  EXPECT_EQ(h1.get(), h2.get());
  EXPECT_EQ(sg.live_snapshots(), 1);

  // Apply a batch: the old handle keeps reading the old epoch's image.
  UpdateBatch b2;
  b2.insert(2, 3);
  sg.apply(b2);
  EXPECT_EQ(h1->graph().num_edges(), 2);
  SnapshotHandle h3 = sg.pin();
  EXPECT_NE(h3.get(), h1.get());
  EXPECT_EQ(h3->graph().num_edges(), 3);
  EXPECT_EQ(sg.live_snapshots(), 2);  // old (pinned) + new

  // Dropping the last pins of the superseded snapshot reclaims it.
  h1.reset();
  h2.reset();
  EXPECT_EQ(sg.live_snapshots(), 1);
}

TEST(SnapshotPinning, HandleOutlivesTheStreamingGraph) {
  SnapshotHandle h;
  {
    StreamingGraph sg(16, false);
    UpdateBatch b;
    b.insert(3, 4);
    sg.apply(b);
    h = sg.pin();
  }
  // The graph is gone; the pinned snapshot is still fully readable.
  EXPECT_EQ(h->graph().num_edges(), 1);
  EXPECT_EQ(h->graph().neighbors(3).size(), 1u);
}

TEST(SnapshotPinning, EagerModePublishesEveryEpoch) {
  StreamingGraph sg(32, false);
  sg.set_eager_snapshots(true);
  EXPECT_EQ(sg.live_snapshots(), 1);  // published on enable
  for (int i = 0; i < 5; ++i) {
    UpdateBatch b;
    b.insert(i, i + 1);
    sg.apply(b);
    EXPECT_EQ(sg.pin()->epoch(), sg.epoch());
  }
  EXPECT_EQ(sg.live_snapshots(), 1);  // superseded epochs reclaimed
}

// The hammer: one writer streams kBatches small batches through apply()
// while nr readers spin on pin -> structural check -> unpin.  Run under
// TSan this proves readers never race the writer; at any check level it
// proves snapshot isolation (a pinned epoch's edge count never changes
// under the reader's feet) and reclamation (gauge returns to 1).
void hammer(int nr) {
  constexpr int kBatches = 1000;
  constexpr vid_t kN = 256;
  StreamingGraph sg(kN, /*directed=*/false);
  sg.set_eager_snapshots(true);

  std::atomic<bool> done{false};
  std::atomic<std::int64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(static_cast<std::size_t>(nr));
  for (int r = 0; r < nr; ++r) {
    readers.emplace_back([&sg, &done, &reads] {
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        SnapshotHandle h = sg.pin();
        // Published epochs are monotone per reader.
        ASSERT_GE(h->epoch(), last_epoch);
        last_epoch = h->epoch();
        const snap::eid_t m_first = h->graph().num_edges();
        check_snapshot(h);
        // Snapshot isolation: the image did not change while we held it.
        ASSERT_EQ(h->graph().num_edges(), m_first);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  snap::SplitMix64 rng(nr * 1000003ULL + 7);
  for (int i = 0; i < kBatches; ++i) {
    UpdateBatch b = make_batch(&rng, kN, 32);
    sg.apply(b);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(sg.epoch(), static_cast<std::uint64_t>(kBatches));
  EXPECT_GT(reads.load(), 0);
  // All reader handles dropped: only the published snapshot remains.
  EXPECT_EQ(sg.live_snapshots(), 1);
  EXPECT_EQ(sg.pin()->epoch(), static_cast<std::uint64_t>(kBatches));
}

TEST(SnapshotPinning, HammerOneReader) { hammer(1); }
TEST(SnapshotPinning, HammerTwoReaders) { hammer(2); }
TEST(SnapshotPinning, HammerFourReaders) { hammer(4); }
TEST(SnapshotPinning, HammerEightReaders) { hammer(8); }

}  // namespace
