// snap/util/json: escape-correct emit, recursive-descent parse, and the
// round-trip / malformed-input contracts the bench reports and the graph
// service rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "snap/util/json.hpp"

namespace {

using snap::json::Value;

Value parse_ok(const std::string& text) {
  Value v;
  std::string err;
  EXPECT_TRUE(snap::json::parse(text, &v, &err)) << text << " -> " << err;
  return v;
}

std::string parse_fail(const std::string& text) {
  Value v;
  std::string err;
  EXPECT_FALSE(snap::json::parse(text, &v, &err)) << text;
  EXPECT_FALSE(err.empty()) << text;
  return err;
}

TEST(JsonValue, ScalarsDump) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(0).dump(), "0");
  EXPECT_EQ(Value(-17).dump(), "-17");
  EXPECT_EQ(Value(3.5).dump(), "3.5");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
  EXPECT_EQ(Value(std::int64_t{1} << 40).dump(), "1099511627776");
}

TEST(JsonValue, ObjectInsertionOrderAndReplace) {
  Value o = Value::object();
  o.set("b", 1);
  o.set("a", 2);
  o.set("b", 3);  // replaced in place, position kept
  EXPECT_EQ(o.dump(), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(o.get("a").as_int64(), 2);
  EXPECT_EQ(o.get("missing").as_int64(-1), -1);
  EXPECT_TRUE(o.get("missing").is_null());
  EXPECT_FALSE(o.has("missing"));
}

TEST(JsonValue, NestedChainedGet) {
  Value inner = Value::object();
  inner.set("v", 42);
  Value outer = Value::object();
  outer.set("in", inner);
  EXPECT_EQ(outer.get("in").get("v").as_int64(), 42);
  EXPECT_EQ(outer.get("no").get("v").as_int64(7), 7);
}

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(Value("a\"b\\c").dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Value("\n\t\r\b\f").dump(), "\"\\n\\t\\r\\b\\f\"");
  EXPECT_EQ(Value(std::string("\x01\x1f")).dump(), "\"\\u0001\\u001f\"");
  // Multi-byte UTF-8 passes through verbatim.
  EXPECT_EQ(Value("caf\xc3\xa9").dump(), "\"caf\xc3\xa9\"");
}

TEST(JsonRoundTrip, EscapedStringsSurvive) {
  const std::string nasty = "quote:\" backslash:\\ newline:\n tab:\t nul-ish:\x01";
  const Value v(nasty);
  const Value back = parse_ok(v.dump());
  EXPECT_EQ(back.as_string(), nasty);
}

TEST(JsonRoundTrip, NumbersSurviveExactly) {
  for (const double d : {0.0, 1.0, -1.0, 0.1, 1e-9, 3.141592653589793,
                         1e300, -2.5e-300, 9007199254740991.0}) {
    const Value back = parse_ok(Value(d).dump());
    EXPECT_EQ(back.as_double(), d) << Value(d).dump();
  }
}

TEST(JsonRoundTrip, NestedDocument) {
  Value doc = Value::object();
  doc.set("name", "bench_service");
  doc.set("epoch", 12);
  Value arr = Value::array();
  for (int i = 0; i < 3; ++i) {
    Value rec = Value::object();
    rec.set("u", i);
    rec.set("v", i + 1);
    rec.set("op", i % 2 == 0 ? "insert" : "delete");
    arr.push_back(rec);
  }
  doc.set("updates", arr);
  doc.set("flag", true);
  doc.set("nothing", Value());

  const std::string text = doc.dump();
  const Value back = parse_ok(text);
  EXPECT_EQ(back, doc);
  EXPECT_EQ(back.dump(), text);  // byte-stable re-serialization
  EXPECT_EQ(back.get("updates").size(), 3u);
  EXPECT_EQ(back.get("updates")[2].get("u").as_int64(), 2);
}

TEST(JsonParse, WhitespaceAndLiterals) {
  EXPECT_TRUE(parse_ok(" \t\r\n null \n").is_null());
  EXPECT_TRUE(parse_ok("[ ]").is_array());
  EXPECT_TRUE(parse_ok("{ }").is_object());
  const Value v = parse_ok("[1, -2.5e3, true, null, \"x\"]");
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[1].as_double(), -2500.0);
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(parse_ok("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(parse_ok("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse_ok("\"\\ud83d\\ude00\"").as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, MalformedInputsRejectWithPosition) {
  for (const char* bad :
       {"", "{", "[", "[1,", "{\"a\":}", "{\"a\" 1}", "{a:1}", "tru",
        "nulll", "[1 2]", "\"unterminated", "\"bad \\q escape\"", "01",
        "1.", "1e", "-", "+1", "NaN", "Infinity", "[1]]", "{}{}",
        "\"\\ud83d\"", "\"\\udc00\"", "\"\\u12g4\"", "{\"a\":1,}", "[1,]"}) {
    const std::string err = parse_fail(bad);
    EXPECT_NE(err.find("byte "), std::string::npos) << bad << " -> " << err;
  }
}

TEST(JsonParse, RawControlCharacterInStringRejected) {
  parse_fail(std::string("\"a\nb\""));
}

TEST(JsonParse, DepthLimitRejectsStackAttack) {
  std::string deep(5000, '[');
  deep += std::string(5000, ']');
  parse_fail(deep);
  // ...but reasonable nesting is fine.
  std::string ok(64, '[');
  ok += "1";
  ok += std::string(64, ']');
  parse_ok(ok);
}

TEST(JsonParse, DuplicateKeysLastWins) {
  const Value v = parse_ok("{\"a\":1,\"a\":2}");
  EXPECT_EQ(v.get("a").as_int64(), 2);
  EXPECT_EQ(v.size(), 1u);
}

TEST(JsonNumbers, NonFiniteEmitsZero) {
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "0");
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).dump(), "0");
}

}  // namespace
