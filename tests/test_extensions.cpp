// Tests for the future-work extensions (§6): spectral modularity
// maximization and dynamic-network (incremental) connectivity — plus the
// smaller engineering additions they rely on.
#include <gtest/gtest.h>

#include "snap/community/gn.hpp"
#include "snap/community/modularity.hpp"
#include "snap/community/pma.hpp"
#include "snap/community/spectral_modularity.hpp"
#include "snap/ds/sorted_dyn_array.hpp"
#include "snap/ds/union_find.hpp"
#include "snap/gen/generators.hpp"
#include "snap/kernels/incremental_components.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

// ------------------------------------------------ spectral modularity

TEST(SpectralModularity, BarbellPerfectSplit) {
  const auto g = gen::barbell_graph(8);
  const auto r = spectral_modularity(g);
  EXPECT_EQ(r.clustering.num_clusters, 2);
  EXPECT_GT(r.modularity, 0.4);
  for (vid_t v = 1; v < 8; ++v)
    EXPECT_EQ(r.clustering.membership[v], r.clustering.membership[0]);
}

TEST(SpectralModularity, KarateMatchesLiterature) {
  // Newman (2006) reports q ≈ 0.419 for the leading-eigenvector method with
  // fine-tuning on the karate club (4 communities).
  const auto g = gen::karate_club();
  const auto r = spectral_modularity(g);
  EXPECT_NEAR(r.modularity, 0.41, 0.03);
  EXPECT_GE(r.clustering.num_clusters, 2);
  EXPECT_LE(r.clustering.num_clusters, 6);
}

TEST(SpectralModularity, CompleteGraphIndivisible) {
  const auto g = gen::complete_graph(12);
  const auto r = spectral_modularity(g);
  EXPECT_EQ(r.clustering.num_clusters, 1);
  EXPECT_NEAR(r.modularity, 0.0, 1e-9);
}

TEST(SpectralModularity, PlantedPartitionRecovery) {
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(600, 6, 12.0, 1.0, 5, &truth);
  const auto r = spectral_modularity(g);
  EXPECT_GT(r.modularity, 0.5);
  // Should land within a whisker of the greedy agglomerative result.
  const auto cnm = pma(g);
  EXPECT_NEAR(r.modularity, cnm.modularity, 0.1);
}

TEST(SpectralModularity, FineTuneNeverHurts) {
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(300, 3, 10.0, 1.5, 9, &truth);
  SpectralModularityParams with;
  SpectralModularityParams without;
  without.fine_tune = false;
  EXPECT_GE(spectral_modularity(g, with).modularity + 1e-9,
            spectral_modularity(g, without).modularity);
}

TEST(SpectralModularity, DirectedThrows) {
  const auto g = CSRGraph::from_edges(2, {{0, 1, 1.0}}, /*directed=*/true);
  EXPECT_THROW(spectral_modularity(g), std::invalid_argument);
}

TEST(SpectralModularity, DisconnectedSplitsComponentsFirst) {
  EdgeList edges{{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
                 {3, 4, 1}, {4, 5, 1}, {3, 5, 1}};
  const auto g = CSRGraph::from_edges(6, edges, false);
  const auto r = spectral_modularity(g);
  EXPECT_EQ(r.clustering.num_clusters, 2);
  EXPECT_NE(r.clustering.membership[0], r.clustering.membership[3]);
}

// ------------------------------------------- incremental components

TEST(IncrementalComponents, InsertOnlyStreamNeverRebuilds) {
  DynamicGraph dg(6, false);
  IncrementalComponents ic(dg);
  EXPECT_EQ(ic.num_components(), 6);
  dg.insert_edge(0, 1);
  ic.on_insert(0, 1);
  dg.insert_edge(2, 3);
  ic.on_insert(2, 3);
  EXPECT_EQ(ic.num_components(), 4);
  EXPECT_TRUE(ic.connected(0, 1));
  EXPECT_FALSE(ic.connected(1, 2));
  EXPECT_EQ(ic.rebuilds(), 0);
}

TEST(IncrementalComponents, DeletionGoesStaleAndRebuilds) {
  DynamicGraph dg(4, false);
  IncrementalComponents ic(dg);
  dg.insert_edge(0, 1);
  ic.on_insert(0, 1);
  dg.insert_edge(1, 2);
  ic.on_insert(1, 2);
  EXPECT_TRUE(ic.connected(0, 2));
  dg.delete_edge(1, 2);
  ic.on_delete(1, 2);
  EXPECT_TRUE(ic.stale());
  EXPECT_FALSE(ic.connected(0, 2));  // triggered a rebuild
  EXPECT_FALSE(ic.stale());
  EXPECT_EQ(ic.rebuilds(), 1);
}

TEST(IncrementalComponents, RebuildCostAmortizesOverQueryBursts) {
  // Regression: a burst of deletions followed by a burst of queries must cost
  // exactly one rebuild — the stale flag defers the rebuild to the first
  // query, and subsequent queries reuse it.
  const vid_t n = 32;
  DynamicGraph dg(n, false);
  IncrementalComponents ic(dg);
  for (vid_t v = 0; v + 1 < n; ++v) {
    dg.insert_edge(v, v + 1);
    ic.on_insert(v, v + 1);
  }
  EXPECT_EQ(ic.rebuilds(), 0);

  for (int round = 1; round <= 3; ++round) {
    // Delete several edges: still just one (deferred) rebuild pending.
    for (vid_t v = 0; v < 4; ++v) {
      const vid_t u = static_cast<vid_t>(8 * (round - 1)) + 2 * v;
      dg.delete_edge(u, u + 1);
      ic.on_delete(u, u + 1);
    }
    EXPECT_TRUE(ic.stale());
    for (int q = 0; q < 100; ++q) {
      ic.num_components();
      ic.connected(0, n - 1);
    }
    EXPECT_EQ(ic.rebuilds(), round) << "one rebuild per deletion burst";
  }

  // Insert-only traffic after a rebuild folds in with no further rebuilds.
  dg.insert_edge(0, 1);
  ic.on_insert(0, 1);
  for (int q = 0; q < 100; ++q) ic.num_components();
  EXPECT_EQ(ic.rebuilds(), 3);
}

TEST(IncrementalComponents, DeletionInsideCycleKeepsConnectivity) {
  DynamicGraph dg(3, false);
  IncrementalComponents ic(dg);
  for (auto [u, v] : {std::pair<vid_t, vid_t>{0, 1}, {1, 2}, {2, 0}}) {
    dg.insert_edge(u, v);
    ic.on_insert(u, v);
  }
  dg.delete_edge(0, 1);
  ic.on_delete(0, 1);
  EXPECT_TRUE(ic.connected(0, 1));  // still connected via 2
  EXPECT_EQ(ic.num_components(), 1);
}

TEST(IncrementalComponents, RandomStreamMatchesReference) {
  const vid_t n = 64;
  DynamicGraph dg(n, false);
  IncrementalComponents ic(dg);
  SplitMix64 rng(13);
  for (int step = 0; step < 2000; ++step) {
    vid_t u = static_cast<vid_t>(rng.next_bounded(n));
    vid_t v = static_cast<vid_t>(rng.next_bounded(n));
    if (u == v) continue;
    if (rng.next_bounded(4) == 0 && dg.has_edge(u, v)) {
      dg.delete_edge(u, v);
      ic.on_delete(u, v);
    } else if (!dg.has_edge(u, v)) {
      dg.insert_edge(u, v);
      ic.on_insert(u, v);
    }
    if (step % 100 == 0) {
      // Reference: components of the CSR snapshot.
      UnionFind ref(static_cast<std::size_t>(n));
      const auto snap_graph = dg.to_csr();
      for (const Edge& e : snap_graph.edges()) ref.unite(e.u, e.v);
      EXPECT_EQ(static_cast<std::size_t>(ic.num_components()), ref.num_sets());
    }
  }
}

// ----------------------------------------------- smaller engineering bits

TEST(DivisiveStall, StopsEarlyWithSameBestClustering) {
  const auto g = gen::karate_club();
  const auto full = girvan_newman(g);
  DivisiveParams p;
  p.stall_iterations = 25;
  const auto stalled = girvan_newman(g, p);
  EXPECT_LT(stalled.iterations, full.iterations);
  EXPECT_NEAR(stalled.modularity, full.modularity, 1e-9);
}

TEST(SortedDynArray, PushBackSortedKeepsInvariant) {
  SortedDynArray<vid_t, double> a;
  for (vid_t k = 0; k < 100; k += 3) a.push_back_sorted(k, k * 0.5);
  EXPECT_EQ(a.size(), 34u);
  EXPECT_TRUE(a.contains(33));
  EXPECT_FALSE(a.contains(34));
  ASSERT_NE(a.find(42), nullptr);
  EXPECT_DOUBLE_EQ(a.find(42)->value, 21.0);
}

}  // namespace
}  // namespace snap
