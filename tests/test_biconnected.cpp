#include <gtest/gtest.h>

#include <set>

#include "snap/gen/generators.hpp"
#include "snap/kernels/biconnected.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

TEST(Biconnected, PathAllBridges) {
  const auto g = gen::path_graph(6);
  const auto r = biconnected_components(g);
  EXPECT_EQ(r.bridges().size(), 5u);
  // All interior vertices are articulation points; endpoints are not.
  EXPECT_FALSE(r.is_articulation[0]);
  EXPECT_FALSE(r.is_articulation[5]);
  for (vid_t v = 1; v < 5; ++v) EXPECT_TRUE(r.is_articulation[v]);
  EXPECT_EQ(r.num_bicomps, 5);
}

TEST(Biconnected, CycleHasNone) {
  const auto g = gen::cycle_graph(8);
  const auto r = biconnected_components(g);
  EXPECT_TRUE(r.bridges().empty());
  EXPECT_TRUE(r.articulation_points().empty());
  EXPECT_EQ(r.num_bicomps, 1);
}

TEST(Biconnected, StarCenterIsArticulation) {
  const auto g = gen::star_graph(5);
  const auto r = biconnected_components(g);
  EXPECT_TRUE(r.is_articulation[0]);
  EXPECT_EQ(r.bridges().size(), 5u);
  for (vid_t v = 1; v <= 5; ++v) EXPECT_FALSE(r.is_articulation[v]);
}

TEST(Biconnected, BarbellBridgeOnly) {
  const auto g = gen::barbell_graph(5);
  const auto r = biconnected_components(g);
  const auto bridges = r.bridges();
  ASSERT_EQ(bridges.size(), 1u);
  const Edge b = g.edge(bridges[0]);
  EXPECT_TRUE((b.u == 4 && b.v == 5) || (b.u == 5 && b.v == 4));
  EXPECT_TRUE(r.is_articulation[4]);
  EXPECT_TRUE(r.is_articulation[5]);
  EXPECT_EQ(r.num_bicomps, 3);  // two cliques + the bridge
}

TEST(Biconnected, TwoTrianglesSharingAVertex) {
  // Triangles 0-1-2 and 2-3-4 share vertex 2.
  const EdgeList edges{{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
                       {2, 3, 1}, {3, 4, 1}, {2, 4, 1}};
  const auto g = CSRGraph::from_edges(5, edges, false);
  const auto r = biconnected_components(g);
  EXPECT_TRUE(r.bridges().empty());
  EXPECT_EQ(r.articulation_points(), std::vector<vid_t>{2});
  EXPECT_EQ(r.num_bicomps, 2);
  // Edges of each triangle share a bicomp id; the two triangles differ.
  std::set<eid_t> ids(r.bicomp_id.begin(), r.bicomp_id.end());
  EXPECT_EQ(ids.size(), 2u);
}

TEST(Biconnected, DisconnectedGraph) {
  const auto g =
      CSRGraph::from_edges(6, {{0, 1, 1.0}, {3, 4, 1.0}, {4, 5, 1.0}}, false);
  const auto r = biconnected_components(g);
  EXPECT_EQ(r.bridges().size(), 3u);
  EXPECT_TRUE(r.is_articulation[4]);
}

TEST(Biconnected, DirectedThrows) {
  const auto g = CSRGraph::from_edges(2, {{0, 1, 1.0}}, /*directed=*/true);
  EXPECT_THROW(biconnected_components(g), std::invalid_argument);
}

/// Property: an edge is a bridge iff deleting it increases the number of
/// connected components.  Verified exhaustively on random graphs.
class BridgeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BridgeProperty, BridgeIffDeletionDisconnects) {
  SplitMix64 rng(GetParam());
  const vid_t n = 40;
  EdgeList edges;
  for (int i = 0; i < 55; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(n));
    const auto v = static_cast<vid_t>(rng.next_bounded(n));
    if (u != v) edges.push_back({u, v, 1.0});
  }
  const auto g = CSRGraph::from_edges(n, edges, false);
  const auto r = biconnected_components(g);
  const vid_t base = connected_components(g).count;
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()),
                                    1);
    alive[static_cast<std::size_t>(e)] = 0;
    const vid_t after = connected_components_masked(g, alive).count;
    EXPECT_EQ(r.is_bridge[static_cast<std::size_t>(e)] != 0, after > base)
        << "edge " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BridgeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

/// Property: articulation point iff its removal disconnects its component.
class ArticulationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArticulationProperty, MatchesVertexDeletion) {
  SplitMix64 rng(GetParam() + 1000);
  const vid_t n = 30;
  EdgeList edges;
  for (int i = 0; i < 45; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(n));
    const auto v = static_cast<vid_t>(rng.next_bounded(n));
    if (u != v) edges.push_back({u, v, 1.0});
  }
  const auto g = CSRGraph::from_edges(n, edges, false);
  const auto r = biconnected_components(g);
  const vid_t base = connected_components(g).count;
  for (vid_t cut = 0; cut < n; ++cut) {
    // Remove vertex `cut` by dropping its incident edges; removing an
    // isolated-ish vertex adds one to the count, so compare adjusted counts.
    EdgeList kept;
    for (const Edge& e : g.edges())
      if (e.u != cut && e.v != cut) kept.push_back(e);
    const auto h = CSRGraph::from_edges(n, kept, false);
    const vid_t after = connected_components(h).count;
    // If cut had degree > 0, its old component turns into c pieces plus the
    // now-isolated cut itself: after = base + c.  Articulation ⟺ c > 1.
    const bool disconnects = after > base + 1;
    EXPECT_EQ(r.is_articulation[static_cast<std::size_t>(cut)] != 0,
              disconnects)
        << "vertex " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArticulationProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace snap
