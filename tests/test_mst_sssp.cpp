#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "snap/ds/union_find.hpp"
#include "snap/gen/generators.hpp"
#include "snap/kernels/mst.hpp"
#include "snap/kernels/sssp.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

/// Kruskal reference MST weight.
weight_t kruskal_weight(const CSRGraph& g) {
  std::vector<eid_t> order(static_cast<std::size_t>(g.num_edges()));
  std::iota(order.begin(), order.end(), eid_t{0});
  std::sort(order.begin(), order.end(), [&](eid_t a, eid_t b) {
    return g.edge(a).w < g.edge(b).w;
  });
  UnionFind uf(static_cast<std::size_t>(g.num_vertices()));
  weight_t total = 0;
  for (eid_t e : order) {
    const Edge ed = g.edge(e);
    if (uf.unite(ed.u, ed.v)) total += ed.w;
  }
  return total;
}

CSRGraph random_weighted(vid_t n, eid_t m, std::uint64_t seed) {
  SplitMix64 rng(seed);
  EdgeList edges;
  for (eid_t i = 0; i < m; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(n));
    const auto v = static_cast<vid_t>(rng.next_bounded(n));
    if (u == v) continue;
    edges.push_back({u, v, 1.0 + static_cast<double>(rng.next_bounded(100))});
  }
  return CSRGraph::from_edges(n, edges, false);
}

TEST(Boruvka, PathGraphTakesAllEdges) {
  const auto g = gen::path_graph(10);
  const auto r = boruvka_mst(g);
  EXPECT_EQ(r.tree_edges.size(), 9u);
  EXPECT_DOUBLE_EQ(r.total_weight, 9.0);
  EXPECT_EQ(r.num_trees, 1);
}

TEST(Boruvka, KnownTinyInstance) {
  // Square with a cheap diagonal: MST must use the two 1-weight sides and
  // the 2-weight diagonal.
  const EdgeList edges{{0, 1, 1.0}, {1, 2, 5.0}, {2, 3, 1.0},
                       {3, 0, 6.0}, {0, 2, 2.0}};
  const auto g = CSRGraph::from_edges(4, edges, false);
  const auto r = boruvka_mst(g);
  EXPECT_DOUBLE_EQ(r.total_weight, 4.0);
  EXPECT_EQ(r.tree_edges.size(), 3u);
}

class BoruvkaRandom
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(BoruvkaRandom, MatchesKruskalWeight) {
  const auto [seed, threads] = GetParam();
  parallel::ThreadScope scope(threads);
  const auto g = random_weighted(300, 1200, seed);
  const auto r = boruvka_mst(g);
  EXPECT_DOUBLE_EQ(r.total_weight, kruskal_weight(g));
  // Forest edge count = n - #trees.
  EXPECT_EQ(static_cast<vid_t>(r.tree_edges.size()),
            g.num_vertices() - r.num_trees);
  // The forest must be acyclic and spanning: re-unite and check.
  UnionFind uf(static_cast<std::size_t>(g.num_vertices()));
  for (eid_t e : r.tree_edges) {
    const Edge ed = g.edge(e);
    EXPECT_TRUE(uf.unite(ed.u, ed.v)) << "cycle in MST";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, BoruvkaRandom,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(1, 4)));

TEST(Boruvka, DisconnectedForest) {
  const auto g =
      CSRGraph::from_edges(5, {{0, 1, 2.0}, {2, 3, 3.0}}, false);
  const auto r = boruvka_mst(g);
  EXPECT_EQ(r.num_trees, 3);
  EXPECT_DOUBLE_EQ(r.total_weight, 5.0);
}

TEST(SpanningForest, CountsTrees) {
  const auto g =
      CSRGraph::from_edges(6, {{0, 1, 1.0}, {1, 2, 1.0}, {3, 4, 1.0}}, false);
  const auto r = bfs_spanning_forest(g);
  EXPECT_EQ(r.num_trees, 3);
  EXPECT_EQ(r.tree_edges.size(), 3u);
}

// ------------------------------------------------------------------- SSSP

TEST(Dijkstra, TinyKnown) {
  const EdgeList edges{{0, 1, 4.0}, {0, 2, 1.0}, {2, 1, 2.0}, {1, 3, 1.0}};
  const auto g = CSRGraph::from_edges(4, edges, false);
  const auto r = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(r.dist[1], 3.0);  // via 2
  EXPECT_DOUBLE_EQ(r.dist[2], 1.0);
  EXPECT_DOUBLE_EQ(r.dist[3], 4.0);
}

class DeltaSteppingRandom
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int, double>> {
};

TEST_P(DeltaSteppingRandom, MatchesDijkstra) {
  const auto [seed, threads, delta] = GetParam();
  parallel::ThreadScope scope(threads);
  const auto g = random_weighted(400, 1600, seed);
  const auto ref = dijkstra(g, 0);
  const auto r = delta_stepping(g, 0, delta);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_DOUBLE_EQ(r.dist[v], ref.dist[v]) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeltaSteppingRandom,
    ::testing::Combine(::testing::Values(1u, 2u, 3u), ::testing::Values(1, 4),
                       ::testing::Values(0.0, 5.0, 1000.0)));

TEST(DeltaStepping, UnreachableStaysInfinite) {
  const auto g = CSRGraph::from_edges(4, {{0, 1, 2.0}}, false);
  const auto r = delta_stepping(g, 0);
  EXPECT_TRUE(std::isinf(r.dist[2]));
  EXPECT_EQ(r.parent[2], kInvalidVid);
}

TEST(DeltaStepping, EveryReachedVertexHasATightPredecessor) {
  const auto g = random_weighted(200, 800, 77);
  const auto r = delta_stepping(g, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (v == 0 || std::isinf(r.dist[v])) continue;
    EXPECT_NE(r.parent[v], kInvalidVid);
    // Shortest-path optimality: some neighbor achieves dist[v] exactly.
    const auto nb = g.neighbors(v);
    const auto ws = g.weights(v);
    bool found = false;
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (std::abs(r.dist[nb[i]] + ws[i] - r.dist[v]) < 1e-9) found = true;
    }
    EXPECT_TRUE(found) << "vertex " << v;
  }
}

TEST(DeltaStepping, UnweightedMatchesBfsDistances) {
  const auto g = gen::grid_road(20, 20, 0.0, 0.0, 1);
  const auto r = delta_stepping(g, 0);
  const auto ref = dijkstra(g, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_DOUBLE_EQ(r.dist[v], ref.dist[v]);
}

}  // namespace
}  // namespace snap
