// Differential tests for the parallel Louvain engine: the parallel move
// phase (per-thread move lists merged in ascending vertex order against
// frozen sub-round state) must produce a bitwise-identical hierarchy to the
// serial reference path — same levels, same memberships, same volume
// tables, same dendrogram, same modularity — at every thread count.  The
// two paths share the ΔQ arithmetic but orchestrate independently, so the
// comparison tests the orchestration (bucketing, scratch reuse, delta
// merging), which is where scheduling bugs live.
//
// Label propagation is held to its own contract: a converged run must be a
// plurality fixed point (no vertex sees a strictly heavier neighboring
// label), and serial and parallel paths must still agree bitwise since both
// replay the same frozen-state update sequence.
//
// The statistical acceptance tests pin recovery quality on a fixed-seed
// planted-partition instance: NMI against the planted ground truth above a
// threshold, and Louvain modularity at least pLA's on the same instance.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "snap/community/compare.hpp"
#include "snap/community/label_prop.hpp"
#include "snap/community/louvain.hpp"
#include "snap/community/pla.hpp"
#include "snap/gen/generators.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/util/parallel.hpp"

namespace snap {
namespace {

CSRGraph rmat_graph(int scale, int edge_factor, std::uint64_t seed) {
  gen::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return gen::rmat(p);
}

/// The four-instance family of the differential sweep: a random graph (no
/// real community structure — moves are gain-marginal, the hardest case for
/// tie handling), a skewed small-world graph, a planted-partition graph
/// (clear structure, multiple coarsening levels), and two cliques joined by
/// a bridge (a clean two-community instance).
std::vector<std::pair<std::string, CSRGraph>> instances() {
  std::vector<std::pair<std::string, CSRGraph>> out;
  out.emplace_back("er", gen::erdos_renyi(240, 720, /*directed=*/false, 5));
  out.emplace_back("rmat", rmat_graph(/*scale=*/7, /*edge_factor=*/5, 7));
  out.emplace_back("planted",
                   gen::planted_partition(400, 8, /*deg_in=*/10.0,
                                          /*deg_out=*/1.5, 11));
  out.emplace_back("two-cliques", gen::barbell_graph(8));
  return out;
}

void expect_identical_hierarchies(const LouvainResult& a,
                                  const LouvainResult& b,
                                  const std::string& what) {
  ASSERT_EQ(a.levels.size(), b.levels.size()) << what;
  for (std::size_t l = 0; l < a.levels.size(); ++l) {
    const LouvainLevel& la = a.levels[l];
    const LouvainLevel& lb = b.levels[l];
    EXPECT_EQ(la.membership(), lb.membership()) << what << " level " << l;
    EXPECT_EQ(la.community_volume(), lb.community_volume())
        << what << " level " << l;
    EXPECT_EQ(la.num_communities(), lb.num_communities())
        << what << " level " << l;
    // Bitwise: both paths must run the identical fixed-order arithmetic.
    EXPECT_EQ(la.modularity(), lb.modularity()) << what << " level " << l;
    EXPECT_EQ(la.sweeps(), lb.sweeps()) << what << " level " << l;
    EXPECT_EQ(la.moves(), lb.moves()) << what << " level " << l;
  }
  const auto& ma = a.community.dendrogram.merges();
  const auto& mb = b.community.dendrogram.merges();
  ASSERT_EQ(ma.size(), mb.size()) << what;
  for (std::size_t i = 0; i < ma.size(); ++i) {
    EXPECT_EQ(ma[i].a, mb[i].a) << what << " merge " << i;
    EXPECT_EQ(ma[i].b, mb[i].b) << what << " merge " << i;
    EXPECT_EQ(ma[i].modularity, mb[i].modularity) << what << " merge " << i;
  }
  EXPECT_EQ(a.community.dendrogram.baseline(), b.community.dendrogram.baseline())
      << what;
  EXPECT_EQ(a.refine_moves, b.refine_moves) << what;
  EXPECT_EQ(a.community.clustering.membership, b.community.clustering.membership)
      << what;
  EXPECT_EQ(a.community.clustering.num_clusters,
            b.community.clustering.num_clusters)
      << what;
  EXPECT_EQ(a.community.modularity, b.community.modularity) << what;
  EXPECT_EQ(a.community.iterations, b.community.iterations) << what;
}

class LouvainDifferential : public ::testing::TestWithParam<int> {};

TEST_P(LouvainDifferential, ParallelMatchesSerialOracle) {
  parallel::ThreadScope scope(GetParam());
  for (const auto& [name, g] : instances()) {
    LouvainParams serial;
    serial.path = LouvainPath::kSerial;
    LouvainParams parallel_p = serial;
    parallel_p.path = LouvainPath::kParallel;
    const LouvainResult a = louvain(g, serial);
    const LouvainResult b = louvain(g, parallel_p);
    expect_identical_hierarchies(a, b, name);
  }
}

TEST_P(LouvainDifferential, RefinementOffStillMatches) {
  parallel::ThreadScope scope(GetParam());
  for (const auto& [name, g] : instances()) {
    LouvainParams serial;
    serial.path = LouvainPath::kSerial;
    serial.refine = false;
    LouvainParams parallel_p = serial;
    parallel_p.path = LouvainPath::kParallel;
    expect_identical_hierarchies(louvain(g, serial), louvain(g, parallel_p),
                                 name);
  }
}

TEST_P(LouvainDifferential, LouvainFindsObviousStructure) {
  parallel::ThreadScope scope(GetParam());
  const CSRGraph g = gen::barbell_graph(8);
  const LouvainResult r = louvain(g);
  // Two cliques joined by one bridge: the optimum is the two cliques.
  EXPECT_EQ(r.community.clustering.num_clusters, 2);
  EXPECT_GT(r.community.modularity, 0.3);
}

TEST_P(LouvainDifferential, PlpConvergesToPluralityFixedPoint) {
  parallel::ThreadScope scope(GetParam());
  for (const auto& [name, g] : instances()) {
    LabelPropParams p;
    p.path = LabelPropPath::kParallel;
    const LabelPropResult r = label_propagation(g, p);
    ASSERT_TRUE(r.converged) << name << ": no fixed point within "
                             << p.max_sweeps << " sweeps";
    // Fixed-point contract: converged means no vertex sees a strictly
    // heavier label.  Checked on the raw (pre-normalization) semantics via
    // a fresh serial run — normalize_labels relabels but preserves the
    // partition, so the check runs on the membership directly.
    EXPECT_TRUE(is_plurality_fixed_point(g, r.community.clustering.membership))
        << name;
  }
}

TEST_P(LouvainDifferential, PlpParallelMatchesSerial) {
  parallel::ThreadScope scope(GetParam());
  for (const auto& [name, g] : instances()) {
    LabelPropParams serial;
    serial.path = LabelPropPath::kSerial;
    LabelPropParams parallel_p = serial;
    parallel_p.path = LabelPropPath::kParallel;
    const LabelPropResult a = label_propagation(g, serial);
    const LabelPropResult b = label_propagation(g, parallel_p);
    EXPECT_EQ(a.community.clustering.membership,
              b.community.clustering.membership)
        << name;
    EXPECT_EQ(a.community.modularity, b.community.modularity) << name;
    EXPECT_EQ(a.sweeps, b.sweeps) << name;
    EXPECT_EQ(a.converged, b.converged) << name;
    EXPECT_EQ(a.community.iterations, b.community.iterations) << name;
  }
}

TEST_P(LouvainDifferential, ShardedMatchesSerialOracleAtEveryShardCount) {
  parallel::ThreadScope scope(GetParam());
  for (const auto& [name, g] : instances()) {
    LouvainParams serial;
    serial.path = LouvainPath::kSerial;
    const LouvainResult oracle = louvain(g, serial);
    for (const int k : {1, 2, 4, 7}) {
      LouvainParams sharded = serial;
      sharded.path = LouvainPath::kSharded;
      sharded.num_shards = k;
      expect_identical_hierarchies(louvain(g, sharded), oracle,
                                   name + " shards=" + std::to_string(k));
    }
  }
}

TEST_P(LouvainDifferential, ShardedDefaultShardCountMatchesSerial) {
  // num_shards = 0 derives the shard count from the thread pool — the
  // hierarchy must still be the oracle's whatever that resolves to.
  parallel::ThreadScope scope(GetParam());
  for (const auto& [name, g] : instances()) {
    LouvainParams serial;
    serial.path = LouvainPath::kSerial;
    LouvainParams sharded = serial;
    sharded.path = LouvainPath::kSharded;
    expect_identical_hierarchies(louvain(g, sharded), louvain(g, serial),
                                 name);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, LouvainDifferential,
                         ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------- statistical
// Fixed-seed planted-partition recovery.  The thresholds are calibrated with
// slack against the measured values (see CHANGES.md PR 6): they pin "the
// engine recovers obvious planted structure", not an exact score.

TEST(LouvainStatistical, RecoversPlantedPartition) {
  std::vector<vid_t> truth;
  const CSRGraph g = gen::planted_partition(4000, 10, /*deg_in=*/12.0,
                                            /*deg_out=*/2.0, 97, &truth);
  const LouvainResult r = louvain(g);
  const double nmi =
      normalized_mutual_information(r.community.clustering.membership, truth);
  EXPECT_GE(nmi, 0.85) << "Louvain NMI vs planted ground truth collapsed";
  const CommunityResult greedy = pla(g);
  EXPECT_GE(r.community.modularity, greedy.modularity)
      << "Louvain modularity fell below pLA's on the same instance";
}

TEST(LouvainStatistical, PlpRecoversPlantedPartition) {
  std::vector<vid_t> truth;
  const CSRGraph g = gen::planted_partition(4000, 10, /*deg_in=*/12.0,
                                            /*deg_out=*/2.0, 97, &truth);
  const LabelPropResult r = label_propagation(g);
  const double nmi =
      normalized_mutual_information(r.community.clustering.membership, truth);
  EXPECT_GE(nmi, 0.70) << "PLP NMI vs planted ground truth collapsed";
}

}  // namespace
}  // namespace snap
