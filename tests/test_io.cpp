#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "snap/gen/generators.hpp"
#include "snap/io/binary_io.hpp"
#include "snap/io/dimacs_io.hpp"
#include "snap/io/edge_list_io.hpp"
#include "snap/io/metis_io.hpp"
#include "snap/util/parallel.hpp"

namespace snap {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) {
    return (std::filesystem::temp_directory_path() / ("snap_io_" + name))
        .string();
  }
  void TearDown() override {
    for (const auto& p : created_) std::filesystem::remove(p);
  }
  std::string track(const std::string& p) {
    created_.push_back(p);
    return p;
  }
  std::vector<std::string> created_;
};

void expect_same_graph(const CSRGraph& a, const CSRGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (const Edge& e : a.edges()) {
    EXPECT_TRUE(b.has_edge(e.u, e.v)) << e.u << "-" << e.v;
  }
}

TEST_F(IoTest, EdgeListRoundtrip) {
  const auto g = gen::karate_club();
  const auto p = track(path("karate.txt"));
  io::write_edge_list(g, p);
  const auto back = io::read_edge_list_graph(p, /*directed=*/false);
  expect_same_graph(g, back);
}

TEST_F(IoTest, EdgeListParsesCommentsAndWeights) {
  const auto p = track(path("mini.txt"));
  {
    std::ofstream out(p);
    out << "# a comment\n# nodes: 6\n0 1 2.5\n1 2\n";
  }
  const auto parsed = io::read_edge_list(p);
  EXPECT_EQ(parsed.n, 6);
  ASSERT_EQ(parsed.edges.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.edges[0].w, 2.5);
  EXPECT_DOUBLE_EQ(parsed.edges[1].w, 1.0);
}

TEST_F(IoTest, EdgeListSkipsPercentComments) {
  const auto p = track(path("konect.txt"));
  {
    std::ofstream out(p);
    out << "% KONECT header\n%\n0 1\n  % indented comment\n1 2\n";
  }
  const auto parsed = io::read_edge_list(p);
  ASSERT_EQ(parsed.edges.size(), 2u);
  EXPECT_EQ(parsed.n, 3);
}

TEST_F(IoTest, CommentsAcrossChunkBoundariesParseIdentically) {
  // Build a file comfortably above the parallel-parse cutoff (64 KiB) with
  // '#' and '%' comment lines and blanks sprinkled densely, so for every
  // thread count some chunk boundary lands inside or right next to a comment.
  const auto p = track(path("chunky.txt"));
  eid_t expected_edges = 0;
  {
    std::ofstream out(p);
    out << "# nodes: 5000\n";
    for (int i = 0; i < 12000; ++i) {
      if (i % 5 == 0) out << "# comment line " << i << " with some padding\n";
      if (i % 7 == 0) out << "% konect-style comment " << i << "\n";
      if (i % 11 == 0) out << "\n";
      out << i % 4000 << ' ' << (i + 1) % 4000 << '\n';
      ++expected_edges;
    }
  }
  ASSERT_GT(std::filesystem::file_size(p), 65536u) << "below parallel cutoff";

  parallel::ThreadScope serial_scope(1);
  const auto ref = io::read_edge_list(p);
  ASSERT_EQ(ref.edges.size(), static_cast<std::size_t>(expected_edges));
  EXPECT_EQ(ref.n, 5000);
  for (int t : {2, 4, 8}) {
    parallel::ThreadScope scope(t);
    const auto got = io::read_edge_list(p);
    ASSERT_EQ(got.n, ref.n) << "threads=" << t;
    ASSERT_EQ(got.edges.size(), ref.edges.size()) << "threads=" << t;
    for (std::size_t i = 0; i < ref.edges.size(); ++i) {
      ASSERT_EQ(got.edges[i].u, ref.edges[i].u) << "i=" << i;
      ASSERT_EQ(got.edges[i].v, ref.edges[i].v) << "i=" << i;
    }
  }
}

TEST_F(IoTest, EdgeListMissingFileThrows) {
  EXPECT_THROW(io::read_edge_list("/nonexistent/file.txt"),
               std::runtime_error);
}

TEST_F(IoTest, EdgeListNoTrailingNewlineAndCrLf) {
  const auto p = track(path("crlf.txt"));
  {
    std::ofstream out(p, std::ios::binary);
    out << "0 1 2.0\r\n1 2\r\n2 3 0.5";  // CRLF endings, no final newline
  }
  const auto parsed = io::read_edge_list(p);
  ASSERT_EQ(parsed.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.edges[0].w, 2.0);
  EXPECT_DOUBLE_EQ(parsed.edges[1].w, 1.0);
  EXPECT_DOUBLE_EQ(parsed.edges[2].w, 0.5);
  EXPECT_EQ(parsed.n, 4);
}

TEST_F(IoTest, EdgeListMalformedLineThrows) {
  const auto p = track(path("bad_line.txt"));
  {
    std::ofstream out(p);
    out << "0 1\nnot an edge\n2 3\n";
  }
  EXPECT_THROW(io::read_edge_list(p), std::runtime_error);
}

TEST_F(IoTest, ChunkParallelParseMatchesSerialParse) {
  // A file big enough to engage the chunk-parallel parser (> 64 KiB), with
  // comments sprinkled through it; every thread count must parse the exact
  // same edges in the exact same order.
  const auto p = track(path("big.txt"));
  constexpr int kLines = 20000;
  {
    std::ofstream out(p);
    out << "# nodes: 5000\n";
    for (int i = 0; i < kLines; ++i) {
      if (i % 500 == 0) out << "# checkpoint " << i << "\n";
      out << (i % 5000) << ' ' << ((i * 7 + 1) % 5000) << ' '
          << (1.0 + i % 3) << "\n";
    }
  }
  parallel::ThreadScope serial_scope(1);
  const auto ref = io::read_edge_list(p);
  ASSERT_EQ(ref.edges.size(), static_cast<std::size_t>(kLines));
  EXPECT_EQ(ref.n, 5000);
  for (int t : {2, 4, 8}) {
    parallel::ThreadScope scope(t);
    const auto got = io::read_edge_list(p);
    ASSERT_EQ(got.edges.size(), ref.edges.size()) << "threads " << t;
    EXPECT_EQ(got.n, ref.n) << "threads " << t;
    for (std::size_t i = 0; i < ref.edges.size(); ++i)
      ASSERT_EQ(got.edges[i], ref.edges[i]) << "threads " << t << " line " << i;
  }
}

TEST_F(IoTest, LargeRoundtripThroughParallelReader) {
  const auto g = gen::erdos_renyi(2000, 30000, /*directed=*/false, 17);
  const auto p = track(path("roundtrip_big.txt"));
  io::write_edge_list(g, p);
  parallel::ThreadScope scope(8);
  const auto back = io::read_edge_list_graph(p, /*directed=*/false);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  expect_same_graph(g, back);
}

TEST_F(IoTest, DimacsRoundtrip) {
  EdgeList edges{{0, 1, 3.0}, {1, 2, 1.0}, {2, 3, 7.0}};
  const auto g = CSRGraph::from_edges(4, edges, /*directed=*/true);
  const auto p = track(path("g.dimacs"));
  io::write_dimacs(g, p);
  const auto back = io::read_dimacs(p, /*directed=*/true);
  expect_same_graph(g, back);
  EXPECT_DOUBLE_EQ(back.total_edge_weight(), 11.0);
}

TEST_F(IoTest, DimacsMissingHeaderThrows) {
  const auto p = track(path("bad.dimacs"));
  {
    std::ofstream out(p);
    out << "a 1 2 3\n";
  }
  EXPECT_THROW(io::read_dimacs(p), std::runtime_error);
}

TEST_F(IoTest, MetisRoundtrip) {
  const auto g = gen::karate_club();
  const auto p = track(path("karate.graph"));
  io::write_metis(g, p);
  const auto back = io::read_metis(p);
  expect_same_graph(g, back);
}

TEST_F(IoTest, MetisWeightedRoundtrip) {
  EdgeList edges{{0, 1, 3.0}, {1, 2, 2.0}};
  const auto g = CSRGraph::from_edges(3, edges, false);
  const auto p = track(path("w.graph"));
  io::write_metis(g, p);
  const auto back = io::read_metis(p);
  expect_same_graph(g, back);
  EXPECT_DOUBLE_EQ(back.total_edge_weight(), 5.0);
}

TEST_F(IoTest, MetisRejectsDirected) {
  const auto g =
      CSRGraph::from_edges(2, {{0, 1, 1.0}}, /*directed=*/true);
  EXPECT_THROW(io::write_metis(g, path("d.graph")), std::invalid_argument);
}

TEST_F(IoTest, BinaryRoundtripLarge) {
  gen::RmatParams rp;
  rp.scale = 10;
  rp.edge_factor = 8;
  const auto g = gen::rmat(rp);
  const auto p = track(path("rmat.bin"));
  io::write_binary(g, p);
  const auto back = io::read_binary(p);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.directed(), g.directed());
  expect_same_graph(g, back);
}

TEST_F(IoTest, BinaryRejectsGarbage) {
  const auto p = track(path("garbage.bin"));
  {
    std::ofstream out(p, std::ios::binary);
    out << "not a snap binary file at all";
  }
  EXPECT_THROW(io::read_binary(p), std::runtime_error);
}

TEST_F(IoTest, BinaryPreservesDirectedness) {
  const auto g = CSRGraph::from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}},
                                      /*directed=*/true);
  const auto p = track(path("dir.bin"));
  io::write_binary(g, p);
  EXPECT_TRUE(io::read_binary(p).directed());
}

// ----------------------------------------------------- malformed inputs

TEST_F(IoTest, EdgeListGarbageLineThrows) {
  const auto p = track(path("garbage.txt"));
  {
    std::ofstream out(p);
    out << "0 1\nnot numbers at all\n";
  }
  EXPECT_THROW(io::read_edge_list(p), std::runtime_error);
}

TEST_F(IoTest, MetisTruncatedThrows) {
  const auto p = track(path("trunc.graph"));
  {
    std::ofstream out(p);
    out << "5 4\n2 3\n";  // promises 5 vertex lines, delivers 1
  }
  EXPECT_THROW(io::read_metis(p), std::runtime_error);
}

TEST_F(IoTest, BinaryTruncatedThrows) {
  const auto g = gen::karate_club();
  const auto p = track(path("short.bin"));
  io::write_binary(g, p);
  // Chop the file in half.
  const auto full = std::filesystem::file_size(p);
  std::filesystem::resize_file(p, full / 2);
  EXPECT_THROW(io::read_binary(p), std::runtime_error);
}

TEST_F(IoTest, EmptyGraphRoundtrips) {
  const auto g = CSRGraph::from_edges(7, {}, false);
  const auto p = track(path("empty.txt"));
  io::write_edge_list(g, p);
  const auto back = io::read_edge_list_graph(p, false);
  EXPECT_EQ(back.num_vertices(), 7);
  EXPECT_EQ(back.num_edges(), 0);
}

// ------------------------------------------- binary v2 format specifics

TEST_F(IoTest, BinaryV2PreservesWeightsAndEdgeIds) {
  EdgeList edges{{0, 2, 3.5}, {1, 2, 0.25}, {0, 1, -1.0}};
  const auto g = CSRGraph::from_edges(4, edges, false);
  const auto p = track(path("v2w.bin"));
  io::write_binary(g, p);
  const auto back = io::read_binary(p);
  expect_same_graph(g, back);
  EXPECT_TRUE(back.weighted());
  EXPECT_DOUBLE_EQ(back.total_edge_weight(), g.total_edge_weight());
  // Edge ids and per-arc weights survive the raw-array round trip.
  ASSERT_EQ(back.edges().size(), g.edges().size());
  for (std::size_t e = 0; e < g.edges().size(); ++e) {
    EXPECT_EQ(back.edges()[e].u, g.edges()[e].u);
    EXPECT_EQ(back.edges()[e].v, g.edges()[e].v);
    EXPECT_DOUBLE_EQ(back.edges()[e].w, g.edges()[e].w);
  }
}

TEST_F(IoTest, BinaryV2ChecksumCorruptionRejected) {
  gen::RmatParams rp;
  rp.scale = 8;
  rp.edge_factor = 8;
  const auto g = gen::rmat(rp);
  const auto p = track(path("corrupt.bin"));
  io::write_binary(g, p);
  {
    // Flip one payload byte past the 48-byte v2 header.
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(48 + 100);
    char c = 0;
    f.read(&c, 1);
    f.seekp(48 + 100);
    c = static_cast<char>(c ^ 0x40);
    f.write(&c, 1);
  }
  try {
    io::read_binary(p);
    FAIL() << "corrupted file was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST_F(IoTest, BinaryV2FutureVersionRejected) {
  const auto g = gen::path_graph(5);
  const auto p = track(path("future.bin"));
  io::write_binary(g, p);
  {
    // Bump the version field (bytes 8..11 of the header).
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    const std::uint32_t future = 99;
    f.seekp(8);
    f.write(reinterpret_cast<const char*>(&future), sizeof(future));
  }
  try {
    io::read_binary(p);
    FAIL() << "future-version file was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST_F(IoTest, BinaryLegacyV1StillReads) {
  // Hand-crafted SNAPB1 bytes: 32-byte header {magic, n, m, directed, pad}
  // followed by m {i64 u, i64 v, f64 w} records — the exact layout every
  // pre-v2 snapshot on disk has.
  const auto p = track(path("legacy.bin"));
  {
    std::ofstream out(p, std::ios::binary);
    const char magic[8] = {'S', 'N', 'A', 'P', 'B', '1', '\n', '\0'};
    out.write(magic, 8);
    const std::int64_t n = 3, m = 2;
    out.write(reinterpret_cast<const char*>(&n), 8);
    out.write(reinterpret_cast<const char*>(&m), 8);
    const char directed_and_pad[8] = {0};
    out.write(directed_and_pad, 8);
    const std::int64_t e0[2] = {0, 1}, e1[2] = {1, 2};
    const double w0 = 1.0, w1 = 2.5;
    out.write(reinterpret_cast<const char*>(e0), 16);
    out.write(reinterpret_cast<const char*>(&w0), 8);
    out.write(reinterpret_cast<const char*>(e1), 16);
    out.write(reinterpret_cast<const char*>(&w1), 8);
  }
  const auto g = io::read_binary(p);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_FALSE(g.directed());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 3.5);
}

TEST_F(IoTest, BinaryV2EmptyAndEdgelessGraphs) {
  const auto g = CSRGraph::from_edges(9, {}, false);
  const auto p = track(path("v2empty.bin"));
  io::write_binary(g, p);
  const auto back = io::read_binary(p);
  EXPECT_EQ(back.num_vertices(), 9);
  EXPECT_EQ(back.num_edges(), 0);
}

TEST_F(IoTest, LargeIdsSurviveAllFormats) {
  // Sparse ids near the top of the declared range.
  EdgeList edges{{99998, 99999, 2.0}, {0, 99999, 1.0}};
  const auto g = CSRGraph::from_edges(100000, edges, false);
  const auto p1 = track(path("big.txt"));
  io::write_edge_list(g, p1);
  EXPECT_EQ(io::read_edge_list_graph(p1, false).num_edges(), 2);
  const auto p2 = track(path("big.bin"));
  io::write_binary(g, p2);
  EXPECT_EQ(io::read_binary(p2).num_vertices(), 100000);
}

}  // namespace
}  // namespace snap
