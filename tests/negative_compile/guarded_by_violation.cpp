// Negative-compile fixture: reading a GUARDED_BY field without holding its
// mutex.  Under Clang -Werror=thread-safety this must NOT compile; under
// GCC the annotations are no-ops and it must compile cleanly.
#include "snap/util/sync.hpp"

namespace {

class Account {
 public:
  int unlocked_read() {
    return balance_;  // violation: balance_ requires mu_
  }

 private:
  snap::sync::Mutex mu_;  // guards: balance_
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  return a.unlocked_read();
}
