// Negative-compile fixture: acquiring a capability that is already held
// (self-deadlock on a non-recursive mutex).  Under Clang
// -Werror=thread-safety this must NOT compile; under GCC the annotations
// are no-ops and it must compile cleanly (though it would deadlock if run
// — it never is; the harness only compiles it).
#include "snap/util/sync.hpp"

namespace {
snap::sync::Mutex g_mu;  // guards: g_state
int g_state GUARDED_BY(g_mu) = 0;
}  // namespace

int main() {
  g_mu.lock();
  g_mu.lock();  // violation: acquiring a mutex already held
  ++g_state;
  g_mu.unlock();
  g_mu.unlock();
  return g_state;
}
