// Negative-compile fixture (the control): correctly disciplined locking.
// Must compile under every compiler, with and without -Werror=thread-safety
// — if this breaks, the harness is asserting the wrong thing.
#include "snap/util/sync.hpp"

namespace {

class Counter {
 public:
  void bump() {
    snap::sync::MutexLock lk(mu_);
    ++value_;
    cv_.notify_all();
  }

  int read() {
    snap::sync::MutexLock lk(mu_);
    return value_;
  }

  void wait_for_positive() {
    snap::sync::MutexLock lk(mu_);
    while (value_ <= 0) cv_.wait(mu_);
  }

  void manual_lock_cycle() {
    mu_.lock();
    ++value_;
    mu_.unlock();
  }

 private:
  snap::sync::Mutex mu_;  // guards: value_
  int value_ GUARDED_BY(mu_) = 0;
  snap::sync::CondVar cv_;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  c.manual_lock_cycle();
  return c.read() == 2 ? 0 : 1;
}
