// CompressedCSR coverage: the varint/zigzag codec round-trips adversarial
// values, and — the load-bearing guarantee — decoding replays the source
// graph's adjacency value for value on every corpus generator family, at
// every thread count the encode might have run under.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "snap/gen/generators.hpp"
#include "snap/graph/compressed_csr.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

// ------------------------------------------------------------ codec level

TEST(VarintCodec, RoundTripsBoundaryValues) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 0x7f,
                                 0x80,
                                 0x3fff,
                                 0x4000,
                                 (1ULL << 32) - 1,
                                 1ULL << 32,
                                 (1ULL << 63) - 1,
                                 1ULL << 63,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t u : cases) {
    std::uint8_t buf[10];
    std::uint8_t* end = detail::varint_write(buf, u);
    ASSERT_EQ(static_cast<std::size_t>(end - buf), detail::varint_length(u))
        << u;
    const std::uint8_t* p = buf;
    EXPECT_EQ(detail::varint_read(p), u);
    EXPECT_EQ(p, end) << "read did not consume exactly the written bytes";
  }
}

TEST(VarintCodec, FuzzRoundTrip) {
  SplitMix64 rng(12345);
  std::uint8_t buf[10];
  for (int i = 0; i < 200000; ++i) {
    // Bias towards small values and values near power-of-two boundaries —
    // the distributions deltas of sorted adjacency actually produce.
    std::uint64_t u = rng();
    const int shift = static_cast<int>(rng.next_bounded(64));
    u >>= shift;
    std::uint8_t* end = detail::varint_write(buf, u);
    const std::uint8_t* p = buf;
    ASSERT_EQ(detail::varint_read(p), u);
    ASSERT_EQ(p, end);
  }
}

TEST(VarintCodec, ZigzagRoundTripsSignedDeltas) {
  const std::int64_t cases[] = {0,
                                1,
                                -1,
                                63,
                                -64,
                                64,
                                -65,
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t x : cases) {
    EXPECT_EQ(detail::zigzag_decode(detail::zigzag_encode(x)), x) << x;
    // Small magnitudes must stay small: that is the whole point.
    if (x >= -64 && x < 64) {
      EXPECT_EQ(detail::varint_length(detail::zigzag_encode(x)), 1u) << x;
    }
  }
  SplitMix64 rng(777);
  for (int i = 0; i < 100000; ++i) {
    const auto x = static_cast<std::int64_t>(rng());
    ASSERT_EQ(detail::zigzag_decode(detail::zigzag_encode(x)), x);
  }
}

// ------------------------------------------------------ graph-level decode

void expect_decodes_identically(const CSRGraph& g, const std::string& what) {
  const CompressedCSR c = CompressedCSR::from_graph(g);
  ASSERT_EQ(c.num_vertices(), g.num_vertices()) << what;
  ASSERT_EQ(c.num_arcs(), g.num_arcs()) << what;
  std::vector<vid_t> decoded;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto expected = g.neighbors(v);
    ASSERT_EQ(c.degree(v), static_cast<eid_t>(expected.size()))
        << what << " vertex " << v;
    c.decode_neighbors(v, decoded);
    ASSERT_EQ(decoded.size(), expected.size()) << what << " vertex " << v;
    for (std::size_t i = 0; i < expected.size(); ++i)
      ASSERT_EQ(decoded[i], expected[i])
          << what << " vertex " << v << " slot " << i;
    // The block cursor must replay the same values in the same order.
    auto cursor = c.neighbors(v);
    std::size_t at = 0;
    for (auto block = cursor.next(); !block.empty(); block = cursor.next())
      for (const vid_t w : block) ASSERT_EQ(w, expected[at++]) << what;
    ASSERT_EQ(at, expected.size()) << what << " vertex " << v;
  }
}

std::vector<std::pair<std::string, CSRGraph>> generator_corpus() {
  std::vector<std::pair<std::string, CSRGraph>> out;
  gen::RmatParams rp;
  rp.scale = 11;
  rp.edge_factor = 8;
  rp.seed = 5;
  out.emplace_back("rmat", gen::rmat(rp));
  out.emplace_back("erdos_renyi", gen::erdos_renyi(3000, 15000, false, 6));
  out.emplace_back("grid_road", gen::grid_road(50, 60, 0.05, 0.05, 7));
  out.emplace_back("watts_strogatz", gen::watts_strogatz(2000, 8, 0.1, 8));
  out.emplace_back("planted_partition",
                   gen::planted_partition(2500, 25, 8.0, 2.0, 9));
  out.emplace_back("barabasi_albert", gen::barabasi_albert(2000, 4, 10));
  // Adversarial degree shapes: one huge row, all-tiny rows, empty rows.
  out.emplace_back("star", gen::star_graph(5000));
  out.emplace_back("path", gen::path_graph(1000));
  out.emplace_back("isolated",
                   CSRGraph::from_edges(100, {{0, 99, 1.0}}, false));
  out.emplace_back("empty", CSRGraph::from_edges(50, {}, false));
  // Directed: asymmetric adjacency, including back-edges (negative deltas
  // after the first neighbor never happen on sorted rows, but the first
  // delta w - v is frequently negative).
  out.emplace_back("rmat_directed", [] {
    gen::RmatParams p;
    p.scale = 10;
    p.edge_factor = 6;
    p.directed = true;
    p.seed = 11;
    return gen::rmat(p);
  }());
  return out;
}

TEST(CompressedCSR, DecodesIdenticallyOnAllGeneratorsAndThreadCounts) {
  for (const auto& [name, g] : generator_corpus()) {
    for (const int t : {1, 2, 4, 8}) {
      parallel::ThreadScope scope(t);
      expect_decodes_identically(g, name + " @t=" + std::to_string(t));
    }
  }
}

TEST(CompressedCSR, EncodeIsByteIdenticalAcrossThreadCounts) {
  gen::RmatParams rp;
  rp.scale = 12;
  rp.edge_factor = 8;
  rp.seed = 13;
  const CSRGraph g = gen::rmat(rp);
  std::vector<std::uint8_t> reference;
  for (const int t : {1, 2, 4, 8}) {
    parallel::ThreadScope scope(t);
    const CompressedCSR c = CompressedCSR::from_graph(g);
    const std::vector<std::uint8_t> bytes(c.bytes().begin(),
                                          c.bytes().end());
    if (t == 1)
      reference = bytes;
    else
      ASSERT_EQ(bytes, reference) << "threads=" << t;
  }
}

TEST(CompressedCSR, CompressesSortedSmallWorldAdjacency) {
  gen::RmatParams rp;
  rp.scale = 12;
  rp.edge_factor = 8;
  rp.seed = 17;
  const CSRGraph g = gen::rmat(rp);
  const CompressedCSR c = CompressedCSR::from_graph(g);
  // Sorted neighbor lists delta-encode well below the flat 8 bytes/arc.
  EXPECT_LT(c.byte_size(),
            static_cast<std::size_t>(g.num_arcs()) * sizeof(vid_t) / 2);
}

TEST(CompressedCSR, BfsMatchesSerialReference) {
  for (const auto& [name, g] : {std::pair<std::string, CSRGraph>{
                                    "rmat",
                                    [] {
                                      gen::RmatParams p;
                                      p.scale = 11;
                                      p.edge_factor = 8;
                                      p.seed = 23;
                                      return gen::rmat(p);
                                    }()},
                                {"grid", gen::grid_road(40, 40, 0.05, 0.05,
                                                        24)}}) {
    const CompressedCSR c = CompressedCSR::from_graph(g);
    const BFSResult ref = bfs_serial(g, 0);
    for (const int t : {1, 2, 4, 8}) {
      parallel::ThreadScope scope(t);
      const BFSResult got = bfs_compressed(c, 0);
      ASSERT_EQ(got.dist, ref.dist) << name << " threads=" << t;
      EXPECT_EQ(got.num_visited, ref.num_visited) << name;
      EXPECT_EQ(got.num_levels, ref.num_levels) << name;
      // Parents form a valid BFS tree: parent's distance is one less.
      for (vid_t v = 0; v < g.num_vertices(); ++v) {
        if (got.dist[static_cast<std::size_t>(v)] <= 0) continue;
        const vid_t p = got.parent[static_cast<std::size_t>(v)];
        ASSERT_NE(p, kInvalidVid) << name << " vertex " << v;
        EXPECT_EQ(got.dist[static_cast<std::size_t>(p)],
                  got.dist[static_cast<std::size_t>(v)] - 1)
            << name << " vertex " << v;
      }
    }
  }
}

}  // namespace
}  // namespace snap
