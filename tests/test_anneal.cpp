// Tests for the simulated-annealing modularity optimizer (the paper's
// "best known" reference family).
#include <gtest/gtest.h>

#include "snap/community/anneal.hpp"
#include "snap/community/compare.hpp"
#include "snap/community/pma.hpp"
#include "snap/gen/generators.hpp"

namespace snap {
namespace {

TEST(Anneal, KarateReachesBestKnownOptimum) {
  // The global modularity optimum of the karate club is 0.4198 (Brandes et
  // al. 2007) — the "best known" Table 2 cites as 0.431 under a slightly
  // different convention; SA with restarts finds the 0.4198 partition.
  const auto g = gen::karate_club();
  AnnealParams p;
  p.restarts = 5;
  const auto r = anneal_modularity(g, p);
  EXPECT_NEAR(r.modularity, 0.4198, 0.002);
  EXPECT_EQ(r.clustering.num_clusters, 4);
}

TEST(Anneal, BarbellPerfectSplit) {
  const auto g = gen::barbell_graph(6);
  const auto r = anneal_modularity(g);
  EXPECT_EQ(r.clustering.num_clusters, 2);
  EXPECT_GT(r.modularity, 0.45);
}

TEST(Anneal, MatchesOrBeatsGreedyOnPlanted) {
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(400, 4, 10.0, 1.0, 3, &truth);
  const auto sa = anneal_modularity(g);
  const auto greedy = pma(g);
  EXPECT_GE(sa.modularity, greedy.modularity - 1e-6);
  EXPECT_GT(adjusted_rand_index(sa.clustering.membership, truth), 0.8);
}

TEST(Anneal, WarmStartFromGreedyNeverLosesQuality) {
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(300, 3, 10.0, 1.5, 7, &truth);
  const auto greedy = pma(g);
  AnnealParams p;
  p.initial = greedy.clustering.membership;
  p.restarts = 1;
  const auto r = anneal_modularity(g, p);
  EXPECT_GE(r.modularity, greedy.modularity - 1e-9);
}

TEST(Anneal, DeterministicForFixedSeed) {
  const auto g = gen::karate_club();
  AnnealParams p;
  p.seed = 9;
  const auto a = anneal_modularity(g, p);
  const auto b = anneal_modularity(g, p);
  EXPECT_EQ(a.clustering.membership, b.clustering.membership);
}

TEST(Anneal, WarmStartSizeMismatchThrows) {
  const auto g = gen::karate_club();
  AnnealParams p;
  p.initial = {0, 1, 2};
  EXPECT_THROW(anneal_modularity(g, p), std::invalid_argument);
}

TEST(Anneal, DirectedThrows) {
  const auto g = CSRGraph::from_edges(2, {{0, 1, 1.0}}, /*directed=*/true);
  EXPECT_THROW(anneal_modularity(g), std::invalid_argument);
}

}  // namespace
}  // namespace snap
