#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "snap/community/gn.hpp"
#include "snap/community/modularity.hpp"
#include "snap/community/pbd.hpp"
#include "snap/community/pla.hpp"
#include "snap/community/pma.hpp"
#include "snap/gen/generators.hpp"
#include "snap/util/parallel.hpp"

namespace snap {
namespace {

/// Fraction of vertex pairs on which two clusterings agree (Rand index).
double rand_index(const std::vector<vid_t>& a, const std::vector<vid_t>& b) {
  std::int64_t agree = 0, total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      const bool sa = a[i] == a[j];
      const bool sb = b[i] == b[j];
      agree += (sa == sb);
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

TEST(GirvanNewman, KarateReachesPublishedModularity) {
  const auto g = gen::karate_club();
  const auto r = girvan_newman(g);
  // Paper Table 2: GN on Karate = 0.401.
  EXPECT_NEAR(r.modularity, 0.401, 0.015);
  EXPECT_GE(r.clustering.num_clusters, 2);
  EXPECT_EQ(r.clustering.membership.size(), 34u);
}

TEST(GirvanNewman, BarbellCutsTheBridgeFirst) {
  const auto g = gen::barbell_graph(6);
  DivisiveParams p;
  p.max_iterations = 1;
  const auto r = girvan_newman(g, p);
  ASSERT_EQ(r.divisive_trace.steps().size(), 1u);
  const auto& step = r.divisive_trace.steps()[0];
  EXPECT_TRUE((step.removed_u == 5 && step.removed_v == 6));
  EXPECT_EQ(step.num_clusters, 2);
  // Perfect two-clique split.
  EXPECT_EQ(r.clustering.num_clusters, 2);
  EXPECT_NE(r.clustering.membership[0], r.clustering.membership[11]);
}

TEST(GirvanNewman, TargetClustersStops) {
  const auto g = gen::karate_club();
  DivisiveParams p;
  p.target_clusters = 2;
  const auto r = girvan_newman(g, p);
  EXPECT_LT(r.iterations, g.num_edges());
}

TEST(Pbd, KarateComparableToGN) {
  const auto g = gen::karate_club();
  const auto gn = girvan_newman(g);
  PBDParams p;
  p.exact_threshold = 64;  // exact scores on this tiny instance
  const auto r = pbd(g, p);
  // Paper Table 2: pBD 0.397 vs GN 0.401 — "comparable quality".
  EXPECT_NEAR(r.modularity, gn.modularity, 0.05);
  EXPECT_GT(r.modularity, 0.35);
}

TEST(Pbd, BarbellSplitsAtBridge) {
  const auto g = gen::barbell_graph(8);
  PBDParams p;
  p.stop.target_clusters = 2;
  const auto r = pbd(g, p);
  EXPECT_EQ(r.clustering.num_clusters, 2);
  for (vid_t v = 0; v < 8; ++v)
    EXPECT_EQ(r.clustering.membership[v], r.clustering.membership[0]);
  for (vid_t v = 8; v < 16; ++v)
    EXPECT_EQ(r.clustering.membership[v], r.clustering.membership[8]);
}

TEST(Pbd, SampledModeRecoversPlantedPartition) {
  std::vector<vid_t> truth;
  // ~150 inter-community edges; a divisive scheme must delete essentially
  // all of them before the components (and hence modularity) move, so the
  // iteration budget has to exceed that with slack for sampling error.
  const auto g = gen::planted_partition(300, 3, 14.0, 1.0, 7, &truth);
  PBDParams p;
  p.exact_threshold = 32;      // forces the sampled path on the big component
  p.sample_fraction = 0.15;
  p.stop.max_iterations = 500;
  p.stop.target_clusters = 3;
  const auto r = pbd(g, p);
  EXPECT_GT(r.modularity, 0.4);
  EXPECT_GT(rand_index(r.clustering.membership, truth), 0.8);
}

TEST(Pbd, PrefilterOnAndOffBothWork) {
  const auto g = gen::karate_club();
  PBDParams with;
  with.bicc_prefilter = true;
  PBDParams without;
  without.bicc_prefilter = false;
  EXPECT_GT(pbd(g, with).modularity, 0.3);
  EXPECT_GT(pbd(g, without).modularity, 0.3);
}

TEST(Pbd, DirectedThrows) {
  const auto g = CSRGraph::from_edges(2, {{0, 1, 1.0}}, /*directed=*/true);
  EXPECT_THROW(pbd(g), std::invalid_argument);
}

TEST(Pma, KarateNearPublishedValue) {
  const auto g = gen::karate_club();
  const auto r = pma(g);
  // Paper Table 2: pMA on Karate = 0.381 (CNM).
  EXPECT_NEAR(r.modularity, 0.381, 0.015);
  EXPECT_EQ(r.clustering.num_clusters, 3);
}

TEST(Pma, TwoCliquesPerfectSplit) {
  const auto g = gen::barbell_graph(6);
  const auto r = pma(g);
  EXPECT_EQ(r.clustering.num_clusters, 2);
  EXPECT_GT(r.modularity, 0.4);
}

TEST(Pma, DendrogramTraceIsConsistent) {
  const auto g = gen::karate_club();
  const auto r = pma(g);
  // Replaying the dendrogram at its best step must reproduce the clustering.
  const auto replay = r.dendrogram.cut_at_best();
  const auto norm = normalize_labels(replay);
  EXPECT_EQ(norm.num_clusters, r.clustering.num_clusters);
  EXPECT_NEAR(modularity(g, norm.membership), r.modularity, 1e-9);
  // Trace modularity at the best step must equal the final score.
  const auto best = r.dendrogram.best_step();
  ASSERT_GE(best, 0);
  EXPECT_NEAR(r.dendrogram.merges()[static_cast<std::size_t>(best)].modularity,
              r.modularity, 1e-9);
}

TEST(Pma, DisconnectedGraphStopsAtComponents) {
  // Two disjoint triangles: no inter-component ΔQ entries exist.
  EdgeList edges{{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
                 {3, 4, 1}, {4, 5, 1}, {3, 5, 1}};
  const auto g = CSRGraph::from_edges(6, edges, false);
  const auto r = pma(g);
  EXPECT_EQ(r.clustering.num_clusters, 2);
}

TEST(Pma, PlantedPartitionRecovery) {
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(600, 6, 12.0, 1.0, 13, &truth);
  const auto r = pma(g);
  EXPECT_GT(r.modularity, 0.5);
  EXPECT_GT(rand_index(r.clustering.membership, truth), 0.8);
}

TEST(Pma, TargetClustersStopsEarly) {
  const auto g = gen::karate_club();
  PMAParams p;
  p.target_clusters = 10;
  const auto r = pma(g, p);
  EXPECT_GE(r.clustering.num_clusters, 10);
}

TEST(Pma, DirectedThrows) {
  const auto g = CSRGraph::from_edges(2, {{0, 1, 1.0}}, /*directed=*/true);
  EXPECT_THROW(pma(g), std::invalid_argument);
}

TEST(Pla, KarateFindsCommunities) {
  const auto g = gen::karate_club();
  const auto r = pla(g);
  // Paper Table 2: pLA on Karate = 0.397.
  EXPECT_GT(r.modularity, 0.3);
  EXPECT_GE(r.clustering.num_clusters, 2);
}

TEST(Pla, BarbellPerfectSplit) {
  const auto g = gen::barbell_graph(6);
  const auto r = pla(g);
  EXPECT_EQ(r.clustering.num_clusters, 2);
  EXPECT_GT(r.modularity, 0.4);
}

TEST(Pla, PlantedPartitionRecovery) {
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(600, 6, 12.0, 1.0, 21, &truth);
  const auto r = pla(g);
  EXPECT_GT(r.modularity, 0.45);
  EXPECT_GT(rand_index(r.clustering.membership, truth), 0.75);
}

TEST(Pla, DeterministicForFixedSeed) {
  const auto g = gen::karate_club();
  PLAParams p;
  p.seed = 5;
  const auto a = pla(g, p);
  const auto b = pla(g, p);
  EXPECT_EQ(a.clustering.membership, b.clustering.membership);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(Pla, MetricAndSeedOrderVariants) {
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(300, 3, 12.0, 1.0, 9, &truth);
  PLAParams cc;
  cc.metric = PLAMetric::kClusteringCoeff;
  PLAParams bfs;
  bfs.bfs_seed_order = true;
  EXPECT_GT(pla(g, cc).modularity, 0.3);
  EXPECT_GT(pla(g, bfs).modularity, 0.3);
}

TEST(Pla, MaxClusterSizeRespectedBeforeAmalgamation) {
  const auto g = gen::complete_graph(20);
  PLAParams p;
  p.max_cluster_size = 5;
  p.amalgamate = false;
  const auto r = pla(g, p);
  std::map<vid_t, int> sizes;
  for (vid_t c : r.clustering.membership) ++sizes[c];
  for (const auto& [c, s] : sizes) EXPECT_LE(s, 5);
}

TEST(Pla, DirectedThrows) {
  const auto g = CSRGraph::from_edges(2, {{0, 1, 1.0}}, /*directed=*/true);
  EXPECT_THROW(pla(g), std::invalid_argument);
}

// ------------------------------ cross-algorithm comparisons (Table 2 shape)

TEST(AllThree, ComparableQualityOnEmailSizedSynthetic) {
  // Synthetic stand-in for the paper's E-mail network (n=1133): all three
  // schemes should find significant community structure and land within a
  // modest band of each other, as in Table 2.
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(1133, 12, 8.0, 0.75, 99, &truth);
  PBDParams bp;
  // No cluster-count target: divisive splits peel stray vertices long before
  // whole communities separate, so only an edge-removal budget larger than
  // the ~420 inter-community edges lets modularity develop.
  bp.stop.max_iterations = 1000;
  bp.exact_threshold = 128;
  const auto q_pbd = pbd(g, bp).modularity;
  const auto q_pma = pma(g).modularity;
  const auto q_pla = pla(g).modularity;
  EXPECT_GT(q_pbd, 0.3);
  EXPECT_GT(q_pma, 0.3);
  EXPECT_GT(q_pla, 0.3);
  EXPECT_LT(std::abs(q_pma - q_pla), 0.25);
}

TEST(ThreadsDontChangePmaResultShape, MultithreadedRun) {
  std::vector<vid_t> truth;
  const auto g = gen::planted_partition(400, 4, 10.0, 1.0, 31, &truth);
  double q1, q4;
  {
    parallel::ThreadScope scope(1);
    q1 = pma(g).modularity;
  }
  {
    parallel::ThreadScope scope(4);
    q4 = pma(g).modularity;
  }
  // The greedy sequence is deterministic regardless of thread count.
  EXPECT_NEAR(q1, q4, 1e-9);
}

}  // namespace
}  // namespace snap
