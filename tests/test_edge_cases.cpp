// Degenerate-input behaviour across the public API: empty graphs, single
// vertices, edgeless graphs, self-loops — the inputs user pipelines feed in
// by accident must degrade gracefully, not crash.
#include <gtest/gtest.h>

#include "snap/centrality/betweenness.hpp"
#include "snap/centrality/closeness.hpp"
#include "snap/community/gn.hpp"
#include "snap/community/modularity.hpp"
#include "snap/community/pbd.hpp"
#include "snap/community/pla.hpp"
#include "snap/community/pma.hpp"
#include "snap/community/spectral_modularity.hpp"
#include "snap/gen/generators.hpp"
#include "snap/kernels/biconnected.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/kernels/kcore.hpp"
#include "snap/kernels/mst.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/partition/multilevel.hpp"

namespace snap {
namespace {

CSRGraph empty_graph() { return CSRGraph::from_edges(0, {}, false); }
CSRGraph edgeless(vid_t n) { return CSRGraph::from_edges(n, {}, false); }

TEST(EdgeCases, EmptyGraphEverywhere) {
  const auto g = empty_graph();
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(connected_components(g).count, 0);
  EXPECT_EQ(connected_components(g).giant(), kInvalidVid);
  EXPECT_EQ(boruvka_mst(g).num_trees, 0);
  EXPECT_TRUE(betweenness_centrality(g).vertex.empty());
  EXPECT_TRUE(closeness_centrality(g).empty());
  EXPECT_DOUBLE_EQ(average_degree(g), 0.0);
  EXPECT_DOUBLE_EQ(assortativity_coefficient(g), 0.0);
}

TEST(EdgeCases, EmptyGraphCommunityAlgorithms) {
  const auto g = empty_graph();
  EXPECT_EQ(pma(g).clustering.num_clusters, 0);
  EXPECT_EQ(pla(g).clustering.num_clusters, 0);
  EXPECT_EQ(spectral_modularity(g).clustering.num_clusters, 0);
}

TEST(EdgeCases, EdgelessGraphIsAllSingletons) {
  const auto g = edgeless(10);
  EXPECT_EQ(connected_components(g).count, 10);
  const auto r = pma(g);
  EXPECT_EQ(r.clustering.num_clusters, 10);
  EXPECT_DOUBLE_EQ(r.modularity, 0.0);  // no edges: q defined as 0
  const auto kc = kcore_decomposition(g);
  for (eid_t c : kc.core) EXPECT_EQ(c, 0);
}

TEST(EdgeCases, EdgelessDivisive) {
  const auto g = edgeless(5);
  const auto gn = girvan_newman(g);
  EXPECT_EQ(gn.iterations, 0);
  EXPECT_EQ(gn.clustering.num_clusters, 5);
  const auto bd = pbd(g);
  EXPECT_EQ(bd.iterations, 0);
}

TEST(EdgeCases, SingleVertex) {
  const auto g = edgeless(1);
  EXPECT_EQ(connected_components(g).count, 1);
  EXPECT_EQ(biconnected_components(g).num_bicomps, 0);
  EXPECT_EQ(pma(g).clustering.num_clusters, 1);
  EXPECT_TRUE(multilevel_kway(g, 1).success);
}

TEST(EdgeCases, SingleEdge) {
  const auto g = CSRGraph::from_edges(2, {{0, 1, 1.0}}, false);
  const auto r = pma(g);
  EXPECT_EQ(r.clustering.num_clusters, 1);  // merging is the only option
  const auto gn = girvan_newman(g);
  EXPECT_EQ(gn.iterations, 1);
  const auto bc = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(bc.vertex[0], 0.0);
  EXPECT_DOUBLE_EQ(bc.edge[0], 1.0);
}

TEST(EdgeCases, SelfLoopsKeptDoNotBreakCommunity) {
  BuildOptions opts;
  opts.remove_self_loops = false;
  const EdgeList edges{{0, 0, 2.0}, {0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}};
  const auto g = CSRGraph::from_edges(3, edges, false, opts);
  const auto r = pma(g);
  // The heavy self-loop on 0 makes splitting {0} | {1,2} optimal:
  // q = 3/5 − 0.6² − 0.4² = 0.08.
  EXPECT_EQ(r.clustering.num_clusters, 2);
  EXPECT_NEAR(r.modularity, 0.08, 1e-9);
}

TEST(EdgeCases, PartitionMoreWaysThanVertices) {
  const auto g = gen::path_graph(3);
  const auto r = multilevel_recursive_bisection(g, 8);
  EXPECT_TRUE(r.success);
  // Every vertex somewhere in [0, 8); no crash is the main assertion.
  for (auto p : r.part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 8);
  }
}

TEST(EdgeCases, ModularityOfEmptyMembership) {
  const auto g = empty_graph();
  EXPECT_DOUBLE_EQ(modularity(g, {}), 0.0);
}

TEST(EdgeCases, StarWithDuplicateAndReversedEdges) {
  // Messy real-world input: duplicates and both orientations.
  const EdgeList edges{{0, 1, 1.0}, {1, 0, 1.0}, {0, 1, 1.0},
                       {0, 2, 1.0}, {2, 0, 1.0}};
  const auto g = CSRGraph::from_edges(3, edges, false);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(0), 2);
}

}  // namespace
}  // namespace snap
